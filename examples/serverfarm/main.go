// Serverfarm: a latency experiment on a batch server, after Section VI of
// the paper. Jobs of four types arrive as a Poisson stream at a
// configurable fraction of the server's maximum throughput; four online
// schedulers (FCFS, MAXIT, SRPT, MAXTP) are compared on turnaround time,
// utilisation and empty fraction — showing how a tiny throughput
// improvement becomes a large turnaround reduction near saturation.
//
// The experiment runs through internal/farm as a farm of one server: the
// single-server scenario of the paper is the N=1 special case of the farm
// simulator (and reproduces the direct eventsim.Latency call bit for bit).
// Pass -servers 4 to see the same contest on a four-server farm behind a
// symbiosis-aware dispatcher.
//
// Run with: go run ./examples/serverfarm [-load 0.95] [-jobs 30000] [-servers 1]
package main

import (
	"flag"
	"fmt"

	"symbiosched/internal/core"
	"symbiosched/internal/farm"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/sched"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

func main() {
	load := flag.Float64("load", 0.95, "offered load relative to FCFS maximum throughput")
	jobs := flag.Int("jobs", 30000, "jobs per experiment")
	servers := flag.Int("servers", 1, "number of servers in the farm")
	flag.Parse()

	table := perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, program.Suite())
	var w workload.Workload
	for _, id := range []string{"perlbench.diffmail", "gcc.g23", "h264ref.foreman", "xalancbmk.ref"} {
		_, idx, _ := program.ByID(id)
		w = append(w, idx)
	}

	// Calibrate the arrival rate against the aggregate FCFS maximum
	// throughput.
	maxTP := core.FCFS(table, w, core.FCFSConfig{Jobs: 30000}).Throughput
	lambda := *load * maxTP * float64(*servers)
	fmt.Printf("farm: %d x %s   workload: perlbench+gcc+h264ref+xalancbmk\n", *servers, table.Name())
	fmt.Printf("FCFS max throughput %.3f/server, offered load %.0f%% -> lambda = %.3f jobs/unit time\n\n",
		maxTP, 100**load, lambda)

	fmt.Printf("%-7s %12s %12s %12s %12s %12s\n", "sched", "turnaround", "p95", "vs FCFS", "utilisation", "empty frac")
	var base float64
	for _, name := range sched.Names {
		mk := func(rs online.RateSource) (sched.Scheduler, error) { return sched.New(name, rs, w) }
		specs := make([]farm.ServerSpec, *servers)
		for i := range specs {
			specs[i] = farm.ServerSpec{Table: table, Sched: mk}
		}
		// The symbiosis-aware dispatcher reduces to "the one server" at
		// N=1, so the farm-of-1 runs are exactly the paper's scenario.
		res, err := farm.Simulate(specs, &farm.LeastInterference{}, w, farm.Config{
			Lambda:    lambda,
			Jobs:      *jobs,
			SizeShape: 4, // jobs of "approximately the same size"
		})
		if err != nil {
			panic(err)
		}
		if name == "FCFS" {
			base = res.MeanTurnaround
		}
		fmt.Printf("%-7s %12.3f %12.3f %11.1f%% %12.3f %12.4f\n",
			name, res.MeanTurnaround, res.P95Turnaround, 100*(res.MeanTurnaround/base-1),
			res.Utilisation*float64(table.K()), res.EmptyFraction)
	}
	fmt.Println("\nNear saturation, schedulers with slightly higher maximum throughput")
	fmt.Println("(MAXTP) cut turnaround disproportionately; SRPT cuts turnaround")
	fmt.Println("without any throughput gain by reordering jobs (Section VI).")
}
