// Serverfarm: a latency experiment on a batch server, after Section VI of
// the paper. Jobs of four types arrive as a Poisson stream at a
// configurable fraction of the server's maximum throughput; four online
// schedulers (FCFS, MAXIT, SRPT, MAXTP) are compared on turnaround time,
// utilisation and empty fraction — showing how a tiny throughput
// improvement becomes a large turnaround reduction near saturation.
//
// Run with: go run ./examples/serverfarm [-load 0.95] [-jobs 30000]
package main

import (
	"flag"
	"fmt"

	"symbiosched/internal/core"
	"symbiosched/internal/eventsim"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/sched"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

func main() {
	load := flag.Float64("load", 0.95, "offered load relative to FCFS maximum throughput")
	jobs := flag.Int("jobs", 30000, "jobs per experiment")
	flag.Parse()

	table := perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, program.Suite())
	var w workload.Workload
	for _, id := range []string{"perlbench.diffmail", "gcc.g23", "h264ref.foreman", "xalancbmk.ref"} {
		_, idx, _ := program.ByID(id)
		w = append(w, idx)
	}

	// Calibrate the arrival rate against the FCFS maximum throughput.
	maxTP := core.FCFS(table, w, core.FCFSConfig{Jobs: 30000}).Throughput
	lambda := *load * maxTP
	fmt.Printf("server: %s   workload: perlbench+gcc+h264ref+xalancbmk\n", table.Name())
	fmt.Printf("FCFS max throughput %.3f, offered load %.0f%% -> lambda = %.3f jobs/unit time\n\n",
		maxTP, 100**load, lambda)

	schedulers := []func() (sched.Scheduler, error){
		func() (sched.Scheduler, error) { return sched.FCFS{}, nil },
		func() (sched.Scheduler, error) { return &sched.MAXIT{Table: table}, nil },
		func() (sched.Scheduler, error) { return &sched.SRPT{Table: table}, nil },
		func() (sched.Scheduler, error) { return sched.NewMAXTP(table, w) },
	}
	fmt.Printf("%-7s %12s %12s %12s %12s\n", "sched", "turnaround", "vs FCFS", "utilisation", "empty frac")
	var base float64
	for _, mk := range schedulers {
		s, err := mk()
		if err != nil {
			panic(err)
		}
		res, err := eventsim.Latency(table, w, s, eventsim.LatencyConfig{
			Lambda:    lambda,
			Jobs:      *jobs,
			SizeShape: 4, // jobs of "approximately the same size"
		})
		if err != nil {
			panic(err)
		}
		if s.Name() == "FCFS" {
			base = res.MeanTurnaround
		}
		fmt.Printf("%-7s %12.3f %11.1f%% %12.3f %12.4f\n",
			s.Name(), res.MeanTurnaround, 100*(res.MeanTurnaround/base-1),
			res.Utilisation, res.EmptyFraction)
	}
	fmt.Println("\nNear saturation, schedulers with slightly higher maximum throughput")
	fmt.Println("(MAXTP) cut turnaround disproportionately; SRPT cuts turnaround")
	fmt.Println("without any throughput gain by reordering jobs (Section VI).")
}
