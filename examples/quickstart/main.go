// Quickstart: compute how much an ideal symbiosis-aware scheduler could
// speed up a fixed workload on a 4-way SMT core, reproducing the paper's
// core methodology end-to-end:
//
//  1. build the per-coschedule performance database for the machine,
//  2. pick a workload of N = 4 job types,
//  3. solve the Section IV linear program for the optimal and worst
//     schedules, and simulate the FCFS baseline,
//  4. inspect which coschedules the optimal schedule actually uses.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"symbiosched/internal/core"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

func main() {
	// 1. The machine and its performance database. Build covers all 1,819
	// coschedules of 1..4 jobs over the 12-benchmark suite (Table I).
	machine := uarch.DefaultSMT()
	suite := program.Suite()
	table := perfdb.Build(perfdb.SMTModel{Machine: machine}, suite)
	fmt.Printf("machine: %s, %d coschedules simulated\n\n", machine, table.Size())

	// 2. A mixed workload: two compute-bound and two memory-bound types.
	var w workload.Workload
	for _, id := range []string{"hmmer.nph3", "calculix.ref", "mcf.ref", "libquantum.ref"} {
		_, idx, ok := program.ByID(id)
		if !ok {
			panic("unknown benchmark " + id)
		}
		w = append(w, idx)
	}
	fmt.Printf("workload: hmmer + calculix + mcf + libquantum (N=%d types, K=%d contexts)\n\n", len(w), table.K())

	// 3. The three schedulers of Figure 1.
	opt, err := core.Optimal(table, w)
	check(err)
	worst, err := core.Worst(table, w)
	check(err)
	fcfs := core.FCFS(table, w, core.FCFSConfig{})

	fmt.Printf("throughput (weighted instructions per cycle):\n")
	fmt.Printf("  optimal scheduler: %.4f  (%+.1f%% vs FCFS)\n", opt.Throughput, 100*(opt.Throughput/fcfs.Throughput-1))
	fmt.Printf("  FCFS scheduler:    %.4f\n", fcfs.Throughput)
	fmt.Printf("  worst scheduler:   %.4f  (%+.1f%% vs FCFS)\n\n", worst.Throughput, 100*(worst.Throughput/fcfs.Throughput-1))

	// 4. What the optimal scheduler runs: at most N coschedules (a basic
	// LP solution), weighted so every job type gets equal work.
	fmt.Println("optimal schedule (coschedule -> fraction of machine time):")
	names := map[int]string{}
	for i := range suite {
		names[i] = suite[i].Name
	}
	for _, f := range opt.NonZero(1e-6) {
		fmt.Printf("  ")
		for _, typ := range f.Cos {
			fmt.Printf("%-11s", names[typ])
		}
		fmt.Printf(" x = %.3f  (inst. TP %.3f)\n", f.X, table.InstTP(f.Cos))
	}
	fmt.Println("\nThe headline result of the paper: even the theoretically optimal")
	fmt.Println("scheduler gains only a few percent over symbiosis-unaware FCFS,")
	fmt.Println("because the fixed-work constraint forces every job type to run.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
