// Custombench: analysing the symbiosis of your own application against
// the stock suite. A user-defined benchmark profile (here: an in-memory
// key-value store — modest ILP, large cache footprint, high MLP) is added
// as a 13th job type, and the example reports its best and worst
// co-runners on both machine configurations, plus the scheduling headroom
// of a workload built around it.
//
// Run with: go run ./examples/custombench
package main

import (
	"fmt"
	"sort"

	"symbiosched/internal/core"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

func main() {
	kvstore := program.Profile{
		Name: "kvstore", Input: "zipf",
		IPCInf: 2.2, WindowHalf: 45,
		BranchMPKI: 3.0,
		CacheAPKI:  25, MemMPKIMax: 12.0, MemMPKIMin: 1.5,
		CacheHalfKB: 1536, CurveGamma: 1.1,
		MLPMax: 2.6,
	}
	if err := kvstore.Validate(); err != nil {
		panic(err)
	}
	suite := append(program.Suite(), kvstore)
	kv := len(suite) - 1

	table := perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, suite)
	fmt.Printf("added %s to the suite (solo IPC %.3f on %s)\n\n", kvstore.ID(), table.Solo[kv], table.Name())

	// Rank co-runners by how well kvstore performs next to three copies of
	// each candidate.
	type pairing struct {
		partner string
		wipc    float64
	}
	var pairings []pairing
	for b := 0; b < kv; b++ {
		c := workload.NewCoschedule(kv, b, b, b)
		pairings = append(pairings, pairing{suite[b].ID(), table.JobWIPC(c, kv)})
	}
	sort.Slice(pairings, func(i, j int) bool { return pairings[i].wipc > pairings[j].wipc })
	fmt.Println("kvstore WIPC when coscheduled with three copies of:")
	for i, p := range pairings {
		marker := ""
		if i == 0 {
			marker = "   <- best symbiosis"
		}
		if i == len(pairings)-1 {
			marker = "   <- worst symbiosis"
		}
		fmt.Printf("  %-22s %.3f%s\n", p.partner, p.wipc, marker)
	}

	// Scheduling headroom of a workload containing kvstore.
	_, hm, _ := program.ByID("hmmer.nph3")
	_, mcf, _ := program.ByID("mcf.ref")
	_, xa, _ := program.ByID("xalancbmk.ref")
	w := workload.Workload{hm, mcf, xa, kv}
	opt, err := core.Optimal(table, w)
	if err != nil {
		panic(err)
	}
	worst, err := core.Worst(table, w)
	if err != nil {
		panic(err)
	}
	fcfs := core.FCFS(table, w, core.FCFSConfig{})
	fmt.Printf("\nworkload hmmer+mcf+xalancbmk+kvstore:\n")
	fmt.Printf("  optimal %+.1f%% vs FCFS; worst %+.1f%% vs FCFS\n",
		100*(opt.Throughput/fcfs.Throughput-1), 100*(worst.Throughput/fcfs.Throughput-1))
	fmt.Printf("  per-job WIPC spread of kvstore across coschedules: ")
	var lo, hi float64
	first := true
	for _, c := range workload.LocalCoschedules(w, table.K()) {
		if c.Count(kv) == 0 {
			continue
		}
		v := table.JobWIPC(c, kv)
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	fmt.Printf("%.3f .. %.3f\n", lo, hi)
}
