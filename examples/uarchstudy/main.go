// Uarchstudy: using optimal throughput as a metric in a microarchitecture
// study (Section VII of the paper). Four SMT front-end designs — round-
// robin vs ICOUNT fetch, static vs dynamic ROB partitioning — are compared
// under both a FCFS scheduler and the theoretically optimal scheduler,
// without implementing either scheduler on real hardware: only the
// per-coschedule performance database is needed.
//
// Run with: go run ./examples/uarchstudy
package main

import (
	"fmt"

	"symbiosched/internal/core"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

func main() {
	suite := program.Suite()
	// A representative mixed workload; run `symbiosim uarch` for the full
	// 495-workload study.
	var w workload.Workload
	for _, id := range []string{"hmmer.nph3", "sjeng.ref", "gcc.g23", "mcf.ref"} {
		_, idx, _ := program.ByID(id)
		w = append(w, idx)
	}

	policies := []struct {
		fetch uarch.FetchPolicy
		rob   uarch.ROBPolicy
	}{
		{uarch.RoundRobin, uarch.StaticROB},
		{uarch.RoundRobin, uarch.DynamicROB},
		{uarch.ICOUNT, uarch.StaticROB},
		{uarch.ICOUNT, uarch.DynamicROB},
	}

	fmt.Println("workload: hmmer + sjeng + gcc.g23 + mcf")
	fmt.Printf("%-18s %10s %10s %10s\n", "policy", "FCFS TP", "opt TP", "opt gain")
	for _, pol := range policies {
		machine := uarch.DefaultSMT()
		machine.Fetch = pol.fetch
		machine.ROB = pol.rob
		table := perfdb.Build(perfdb.SMTModel{Machine: machine}, suite)
		fcfs, err := core.MarkovFCFS(table, w)
		if err != nil {
			panic(err)
		}
		opt, err := core.Optimal(table, w)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-18s %10.4f %10.4f %+9.1f%%\n",
			fmt.Sprintf("%s/%s", pol.fetch, pol.rob), fcfs, opt.Throughput,
			100*(opt.Throughput/fcfs-1))
	}
	fmt.Println("\nThe paper's Section VII point: the scheduler assumption can matter as")
	fmt.Println("much as the microarchitectural feature being evaluated, and the LP")
	fmt.Println("bound lets a study include it without building a scheduler.")
}
