package multicore

import (
	"testing"

	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
)

func prof(t *testing.T, id string) *program.Profile {
	t.Helper()
	p, _, ok := program.ByID(id)
	if !ok {
		t.Fatalf("unknown benchmark %s", id)
	}
	return &p
}

func TestSoloUsesWholeLLC(t *testing.T) {
	m := uarch.DefaultMulticore()
	res := Rates(m, []*program.Profile{prof(t, "mcf.ref")})
	if diff := res.LLCShareKB[0] - float64(m.SharedLLCKB); diff > 1 || diff < -1 {
		t.Errorf("solo LLC share %v, want full %v", res.LLCShareKB[0], m.SharedLLCKB)
	}
}

func TestInterferenceMilderThanSMT(t *testing.T) {
	// The paper's quad-core shows milder, fairer interference than SMT:
	// compute-bound jobs barely slow down when sharing only the LLC/bus.
	m := uarch.DefaultMulticore()
	p := prof(t, "hmmer.nph3")
	solo := Rates(m, []*program.Profile{p}).IPC[0]
	shared := Rates(m, []*program.Profile{p, p, p, p}).IPC[0]
	if shared < 0.9*solo {
		t.Errorf("hmmer slows to %v from %v on quad-core; should be nearly unaffected", shared, solo)
	}
}

func TestCacheSensitiveJobsSuffer(t *testing.T) {
	m := uarch.DefaultMulticore()
	p := prof(t, "mcf.ref")
	solo := Rates(m, []*program.Profile{p}).IPC[0]
	shared := Rates(m, []*program.Profile{p, p, p, p}).IPC[0]
	if shared > 0.95*solo {
		t.Errorf("4x mcf should thrash the shared LLC: %v vs solo %v", shared, solo)
	}
}

func TestSymmetryAndDeterminism(t *testing.T) {
	m := uarch.DefaultMulticore()
	a, b := prof(t, "xalancbmk.ref"), prof(t, "libquantum.ref")
	r1 := Rates(m, []*program.Profile{a, b})
	r2 := Rates(m, []*program.Profile{b, a})
	if diff := r1.IPC[0] - r2.IPC[1]; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("permutation changed rates: %v vs %v", r1.IPC, r2.IPC)
	}
	r3 := Rates(m, []*program.Profile{a, b})
	for i := range r1.IPC {
		if r1.IPC[i] != r3.IPC[i] {
			t.Error("model is not deterministic")
		}
	}
}

func TestSharesSumToLLC(t *testing.T) {
	m := uarch.DefaultMulticore()
	jobs := []*program.Profile{
		prof(t, "mcf.ref"), prof(t, "xalancbmk.ref"),
		prof(t, "gcc.g23"), prof(t, "libquantum.ref"),
	}
	res := Rates(m, jobs)
	var sum float64
	for _, s := range res.LLCShareKB {
		sum += s
	}
	if diff := sum - float64(m.SharedLLCKB); diff > 1 || diff < -1 {
		t.Errorf("LLC shares sum to %v, want %v", sum, m.SharedLLCKB)
	}
}

func TestBandwidthGangSaturatesBus(t *testing.T) {
	m := uarch.DefaultMulticore()
	p := prof(t, "libquantum.ref")
	solo := Rates(m, []*program.Profile{p})
	gang := Rates(m, []*program.Profile{p, p, p, p})
	if gang.BusUtilisation <= solo.BusUtilisation {
		t.Errorf("bus utilisation should rise with 4 streamers: %v vs %v",
			gang.BusUtilisation, solo.BusUtilisation)
	}
	if gang.MemLatency <= solo.MemLatency {
		t.Errorf("loaded latency should rise with 4 streamers: %v vs %v",
			gang.MemLatency, solo.MemLatency)
	}
	if gang.IPC[0] >= 0.9*solo.IPC[0] {
		t.Errorf("4x libquantum should be bandwidth-throttled: %v vs solo %v",
			gang.IPC[0], solo.IPC[0])
	}
}

func TestInsensitivePlusSensitivePairing(t *testing.T) {
	// mcf paired with tiny-footprint hmmer keeps most of the LLC and runs
	// faster than when paired with the streaming libquantum, which steals
	// occupancy — the pairing asymmetry the optimal scheduler exploits.
	m := uarch.DefaultMulticore()
	mcf := prof(t, "mcf.ref")
	withHmmer := Rates(m, []*program.Profile{mcf, prof(t, "hmmer.nph3"), prof(t, "hmmer.nph3"), prof(t, "hmmer.nph3")})
	withLibq := Rates(m, []*program.Profile{mcf, prof(t, "libquantum.ref"), prof(t, "libquantum.ref"), prof(t, "libquantum.ref")})
	if withHmmer.IPC[0] <= withLibq.IPC[0] {
		t.Errorf("mcf should prefer hmmer partners (%v) over libquantum partners (%v)",
			withHmmer.IPC[0], withLibq.IPC[0])
	}
}

func TestPanicsOnInvalidInput(t *testing.T) {
	m := uarch.DefaultMulticore()
	assertPanic(t, "no jobs", func() { Rates(m, nil) })
	assertPanic(t, "too many jobs", func() {
		p := prof(t, "mcf.ref")
		Rates(m, []*program.Profile{p, p, p, p, p})
	})
	assertPanic(t, "nil profile", func() { Rates(m, []*program.Profile{nil}) })
}

func assertPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
