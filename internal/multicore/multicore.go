// Package multicore computes per-thread execution rates for a coschedule
// on the paper's second configuration: four identical out-of-order cores
// with private L2 caches, a shared last-level cache and a shared memory
// bus (Section V-A).
//
// Unlike the SMT configuration there is no front-end or window sharing —
// each job owns a full core — so interference flows only through the
// shared LLC (occupancy model, internal/cachemodel) and the memory bus
// (queueing model, internal/membus). This produces the behaviour the paper
// reports for the quad-core: milder interference than SMT, distributed
// more fairly across co-runners.
package multicore

import (
	"fmt"

	"symbiosched/internal/cachemodel"
	"symbiosched/internal/interval"
	"symbiosched/internal/membus"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
)

const (
	iterations = 40
	damping    = 0.55
)

// Result holds the converged per-core operating point of a coschedule.
type Result struct {
	// IPC is each job's instructions per cycle on its core.
	IPC []float64
	// LLCShareKB is each job's shared-LLC occupancy in KB.
	LLCShareKB []float64
	// MemLatency is the converged loaded DRAM latency in cycles.
	MemLatency float64
	// BusUtilisation is the converged memory-bus utilisation in [0, 1).
	BusUtilisation float64
}

// Rates returns the converged Result for the given jobs (1 to
// machine.Cores profiles) on the multicore machine.
func Rates(m uarch.MulticoreMachine, jobs []*program.Profile) Result {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("multicore: invalid machine: %v", err))
	}
	n := len(jobs)
	if n == 0 || n > m.Cores {
		panic(fmt.Sprintf("multicore: %d jobs on a %d-core machine", n, m.Cores))
	}
	for _, p := range jobs {
		if p == nil {
			panic("multicore: nil profile")
		}
	}

	bus := membus.New(m.Bus.ServiceCycles)
	totalLLC := float64(m.SharedLLCKB)
	privL2 := float64(m.PrivateL2KB)

	share := make([]float64, n)
	ipc := make([]float64, n)
	memLat := m.Core.MemLatency
	for i := range share {
		share[i] = totalLLC / float64(n)
	}

	for it := 0; it < iterations; it++ {
		// Per-job stacks: full window, private L2 plus LLC share.
		for i, p := range jobs {
			st := interval.Evaluate(p, m.Core, interval.Params{
				WindowSize: float64(m.Core.ROBSize),
				CacheKB:    privL2 + share[i],
				MemLatency: memLat,
			})
			ipc[i] = st.IPC()
		}
		// LLC occupancy at the new rates. The occupancy model sees only
		// the capacity under contention (the shared LLC): a job's
		// insertion pressure is its miss rate out of the private L2,
		// approximated by the curve at (privL2 + share).
		demands := make([]cachemodel.Demand, n)
		for i, p := range jobs {
			demands[i] = cachemodel.Demand{Profile: p, IPC: ipc[i]}
		}
		// The cache model evaluates MemMPKI at the share it assigns, so
		// fold the private L2 in by shifting the curve: pass the total
		// capacity through a wrapper profile.
		shifted := make([]program.Profile, n)
		for i, p := range jobs {
			shifted[i] = *p
			// Shifting CacheHalfKB down by the private L2 approximates
			// evaluating the curve at (privL2 + share): the L2 absorbs
			// the first privL2 KB of the working set.
			if shifted[i].CacheHalfKB > privL2 {
				shifted[i].CacheHalfKB -= privL2
			} else {
				shifted[i].CacheHalfKB = 1
			}
			demands[i].Profile = &shifted[i]
		}
		newShare := cachemodel.Shares(demands, totalLLC)
		for i := range share {
			share[i] = damping*share[i] + (1-damping)*newShare[i]
		}
		// Bus queueing.
		var lineRate float64
		for i, p := range jobs {
			lineRate += ipc[i] * p.MemMPKI(privL2+share[i]) / 1000
		}
		memLat = damping*memLat + (1-damping)*bus.LoadedLatency(m.Core.MemLatency, lineRate)
	}

	var lineRate float64
	for i, p := range jobs {
		lineRate += ipc[i] * p.MemMPKI(privL2+share[i]) / 1000
	}
	return Result{
		IPC:            ipc,
		LLCShareKB:     share,
		MemLatency:     memLat,
		BusUtilisation: bus.Utilisation(lineRate),
	}
}

// SoloIPC returns the IPC of a job running alone on the machine with the
// whole LLC and an unloaded bus — the reference execution rate used for
// weighted instructions (paper Section III-B: the baseline 4-wide
// out-of-order core).
func SoloIPC(m uarch.MulticoreMachine, p *program.Profile) float64 {
	res := Rates(m, []*program.Profile{p})
	return res.IPC[0]
}
