package membus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroLoadZeroDelay(t *testing.T) {
	b := New(32)
	if d := b.QueueDelay(0); d != 0 {
		t.Errorf("QueueDelay(0) = %v, want 0", d)
	}
	if l := b.LoadedLatency(230, 0); l != 230 {
		t.Errorf("LoadedLatency = %v, want 230", l)
	}
}

func TestDelayMatchesMD1(t *testing.T) {
	// rho = 0.5: Wq = 0.5*S/(2*0.5) = S/2.
	b := New(32)
	rate := 0.5 / 32
	if d := b.QueueDelay(rate); math.Abs(d-16) > 1e-9 {
		t.Errorf("QueueDelay at rho=0.5 = %v, want 16", d)
	}
}

func TestDelayMonotone(t *testing.T) {
	b := New(32)
	prev := -1.0
	for rate := 0.0; rate < 0.06; rate += 0.002 {
		d := b.QueueDelay(rate)
		if d < prev {
			t.Errorf("delay not monotone at rate %v", rate)
		}
		prev = d
	}
}

func TestUtilisationClamp(t *testing.T) {
	b := New(32)
	if u := b.Utilisation(10); u > 0.98+1e-12 {
		t.Errorf("utilisation %v exceeds clamp", u)
	}
	if u := b.Utilisation(-1); u != 0 {
		t.Errorf("negative rate should clamp to 0, got %v", u)
	}
	if d := b.QueueDelay(10); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("delay at saturation must stay finite, got %v", d)
	}
}

func TestSaturationRate(t *testing.T) {
	b := New(40)
	if got := b.SaturationRate(); math.Abs(got-1.0/40) > 1e-15 {
		t.Errorf("SaturationRate = %v", got)
	}
	if got := (Bus{}).SaturationRate(); got != 0 {
		t.Errorf("zero bus saturation = %v", got)
	}
}

func TestDefaultClampApplied(t *testing.T) {
	// A Bus built without New gets the default clamp applied internally.
	b := Bus{ServiceCycles: 32}
	if u := b.Utilisation(10); u > 0.99 {
		t.Errorf("default clamp not applied: %v", u)
	}
}

// Property: delay is non-negative and finite for any rate.
func TestDelayFiniteProperty(t *testing.T) {
	f := func(rate float64) bool {
		b := New(32)
		d := b.QueueDelay(math.Abs(rate))
		return d >= 0 && !math.IsInf(d, 0) && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
