// Package membus models contention for the shared memory bus.
//
// Cache lines from all threads/cores are serviced by a single channel with
// deterministic service time S cycles per line. Treating arrivals as
// Poisson gives an M/D/1 queue whose mean waiting time is
//
//	Wq = rho * S / (2 * (1 - rho)),   rho = lambda * S
//
// (Pollaczek–Khinchine with zero service-time variance). Wq is added to
// the unloaded DRAM latency seen by every thread. Near saturation the
// formula diverges, so utilisation is clamped just below 1; the outer
// fixed point (higher latency -> lower IPC -> lower line rate) then
// settles at a bandwidth-limited operating point — exactly the "linear
// bottleneck" behaviour of Section V-C.1b of the paper.
package membus

// Bus is a shared memory channel.
type Bus struct {
	// ServiceCycles is the occupancy of one cache-line transfer in cycles.
	ServiceCycles float64
	// MaxUtilisation clamps rho to keep the M/D/1 delay finite; the
	// default 0.98 bounds the queueing delay at ~24.5 service times.
	MaxUtilisation float64
}

// New returns a Bus with the given per-line service time and the default
// utilisation clamp.
func New(serviceCycles float64) Bus {
	return Bus{ServiceCycles: serviceCycles, MaxUtilisation: 0.98}
}

// Utilisation returns rho for an aggregate line rate (lines per cycle),
// clamped to [0, MaxUtilisation].
func (b Bus) Utilisation(lineRate float64) float64 {
	max := b.MaxUtilisation
	if max <= 0 || max >= 1 {
		max = 0.98
	}
	rho := lineRate * b.ServiceCycles
	if rho < 0 {
		rho = 0
	}
	if rho > max {
		rho = max
	}
	return rho
}

// QueueDelay returns the mean M/D/1 waiting time in cycles for an
// aggregate line rate (lines per cycle, summed over all threads).
func (b Bus) QueueDelay(lineRate float64) float64 {
	rho := b.Utilisation(lineRate)
	return rho * b.ServiceCycles / (2 * (1 - rho))
}

// LoadedLatency returns the effective DRAM latency: unloaded latency plus
// queueing delay at the given aggregate line rate.
func (b Bus) LoadedLatency(unloaded, lineRate float64) float64 {
	return unloaded + b.QueueDelay(lineRate)
}

// SaturationRate returns the line rate (lines/cycle) at which the bus
// saturates (rho = 1); aggregate demand beyond this is not sustainable and
// the outer model's fixed point will throttle thread IPCs to match.
func (b Bus) SaturationRate() float64 {
	if b.ServiceCycles <= 0 {
		return 0
	}
	return 1 / b.ServiceCycles
}
