package workload

import (
	"sort"
	"testing"

	"symbiosched/internal/stats"
)

// The farm's coschedule keying (perfdb.Key over canonical multisets)
// silently depends on three invariants of this package: Multisets
// enumerates exactly MultisetCount sorted multisets, without duplicates,
// and Remap preserves multiset identity across local/global index spaces.
// These property tests pin them over a grid of (n, k).

func TestMultisetsCountMatchesFormula(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for k := 0; k <= 6; k++ {
			got := len(Multisets(n, k))
			want := MultisetCount(n, k)
			if got != want {
				t.Errorf("len(Multisets(%d,%d)) = %d, want C(%d,%d) = %d",
					n, k, got, n+k-1, k, want)
			}
		}
	}
}

func TestMultisetsSortedAndDuplicateFree(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for k := 1; k <= 5; k++ {
			seen := map[string]bool{}
			for _, c := range Multisets(n, k) {
				if len(c) != k {
					t.Fatalf("Multisets(%d,%d): entry %v has size %d", n, k, c, len(c))
				}
				if !sort.IntsAreSorted(c) {
					t.Errorf("Multisets(%d,%d): entry %v not sorted", n, k, c)
				}
				for _, x := range c {
					if x < 0 || x >= n {
						t.Errorf("Multisets(%d,%d): entry %v outside [0,%d)", n, k, c, n)
					}
				}
				if key := c.Key(); seen[key] {
					t.Errorf("Multisets(%d,%d): duplicate entry %v", n, k, c)
				} else {
					seen[key] = true
				}
			}
		}
	}
}

// TestRemapRoundTrips: remapping a local coschedule through a workload's
// local-to-global table and back through the inverse recovers the
// original, for random strictly increasing tables (the Workload case).
func TestRemapRoundTrips(t *testing.T) {
	rng := stats.NewRNG(42)
	const suite = 16
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(5)
		// Random workload: n distinct global types, sorted.
		perm := rng.Perm(suite)
		w := append(Workload(nil), perm[:n]...)
		sort.Ints(w)
		inverse := map[int]int{}
		for li, g := range w {
			inverse[g] = li
		}
		for _, lc := range Multisets(n, k) {
			global := lc.Remap(w)
			back := make(Coschedule, len(global))
			for i, g := range global {
				back[i] = inverse[g]
			}
			sort.Ints(back)
			if back.Key() != lc.Key() {
				t.Fatalf("w=%v: Remap(%v) = %v, inverse %v != original", w, lc, global, back)
			}
			// A strictly increasing table also preserves counts per type.
			for _, typ := range lc.Types() {
				if global.Count(w[typ]) != lc.Count(typ) {
					t.Fatalf("w=%v: Remap(%v) count mismatch for type %d", w, lc, typ)
				}
			}
		}
	}
}

// TestLocalCoschedulesMatchMultisetCount ties the two enumerations
// together the way perfdb consumes them.
func TestLocalCoschedulesMatchMultisetCount(t *testing.T) {
	w := Workload{2, 5, 9, 11}
	cs := LocalCoschedules(w, 4)
	if len(cs) != MultisetCount(len(w), 4) {
		t.Fatalf("LocalCoschedules: %d coschedules, want %d", len(cs), MultisetCount(len(w), 4))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.Key()] {
			t.Errorf("duplicate global coschedule %v", c)
		}
		seen[c.Key()] = true
		for _, g := range c {
			if w2 := (Workload{2, 5, 9, 11}); Coschedule(w2).Count(g) == 0 {
				t.Errorf("coschedule %v uses type %d outside workload %v", c, g, w)
			}
		}
	}
}
