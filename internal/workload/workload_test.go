package workload

import (
	"sort"
	"testing"
	"testing/quick"

	"symbiosched/internal/stats"
)

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{12, 4, 495},
		{15, 4, 1365}, // C(12+4-1, 4): the paper's coschedule count
		{7, 4, 35},    // C(4+4-1, 4): coschedules per N=4 workload
		{11, 4, 330},  // coschedules per N=8 workload
		{5, 0, 1},
		{5, 5, 1},
		{5, 6, 0},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestCombinationsCount(t *testing.T) {
	if got := len(Combinations(12, 4)); got != 495 {
		t.Errorf("len(Combinations(12,4)) = %d, want 495 (paper Section V-A)", got)
	}
	if got := len(Combinations(12, 8)); got != 495 {
		t.Errorf("len(Combinations(12,8)) = %d, want 495 (N=8 study)", got)
	}
}

func TestCombinationsProperties(t *testing.T) {
	combos := Combinations(6, 3)
	seen := map[string]bool{}
	for _, c := range combos {
		if !sort.IntsAreSorted(c) {
			t.Errorf("combination %v not sorted", c)
		}
		for i := 1; i < len(c); i++ {
			if c[i] == c[i-1] {
				t.Errorf("combination %v has repeats", c)
			}
		}
		k := Workload(c).Key()
		if seen[k] {
			t.Errorf("duplicate combination %v", c)
		}
		seen[k] = true
	}
	if len(combos) != Binomial(6, 3) {
		t.Errorf("count = %d, want %d", len(combos), Binomial(6, 3))
	}
}

func TestMultisetsCount(t *testing.T) {
	if got := len(Multisets(12, 4)); got != 1365 {
		t.Errorf("len(Multisets(12,4)) = %d, want 1365 (paper Section V-A)", got)
	}
	if got := len(Multisets(4, 4)); got != 35 {
		t.Errorf("len(Multisets(4,4)) = %d, want 35 (paper Section V-A)", got)
	}
}

func TestMultisetsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 1 + r.Intn(6)
		k := 1 + r.Intn(4)
		ms := Multisets(n, k)
		if len(ms) != MultisetCount(n, k) {
			return false
		}
		seen := map[string]bool{}
		for _, m := range ms {
			if len(m) != k || !sort.IntsAreSorted(m) {
				return false
			}
			if seen[m.Key()] {
				return false
			}
			seen[m.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoscheduleHeterogeneity(t *testing.T) {
	cases := []struct {
		cs   Coschedule
		want int
	}{
		{NewCoschedule(0, 0, 0, 0), 1},
		{NewCoschedule(0, 0, 0, 1), 2},
		{NewCoschedule(0, 1, 2, 2), 3},
		{NewCoschedule(3, 1, 0, 2), 4},
		{NewCoschedule(), 0},
	}
	for _, c := range cases {
		if got := c.cs.Heterogeneity(); got != c.want {
			t.Errorf("Heterogeneity(%v) = %d, want %d", c.cs, got, c.want)
		}
	}
}

func TestCoscheduleCountAndTypes(t *testing.T) {
	c := NewCoschedule(2, 0, 2, 5)
	if got := c.Count(2); got != 2 {
		t.Errorf("Count(2) = %d, want 2", got)
	}
	if got := c.Count(7); got != 0 {
		t.Errorf("Count(7) = %d, want 0", got)
	}
	types := c.Types()
	want := []int{0, 2, 5}
	if len(types) != len(want) {
		t.Fatalf("Types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("Types = %v, want %v", types, want)
		}
	}
}

func TestCoscheduleKeyCanonical(t *testing.T) {
	a := NewCoschedule(3, 1, 2, 1)
	b := NewCoschedule(1, 1, 2, 3)
	if a.Key() != b.Key() {
		t.Errorf("keys differ for the same multiset: %q vs %q", a.Key(), b.Key())
	}
	// Keys must distinguish multi-digit types ("1,11" vs "11,1" ordering).
	c := NewCoschedule(1, 11)
	d := NewCoschedule(11, 1)
	if c.Key() != d.Key() {
		t.Errorf("multi-digit keys differ: %q vs %q", c.Key(), d.Key())
	}
}

func TestRemapAndLocalCoschedules(t *testing.T) {
	w := Workload{2, 5, 7, 11}
	cs := LocalCoschedules(w, 4)
	if len(cs) != 35 {
		t.Fatalf("len = %d, want 35", len(cs))
	}
	// Every coschedule uses only the workload's global types.
	allowed := map[int]bool{2: true, 5: true, 7: true, 11: true}
	for _, c := range cs {
		for _, typ := range c {
			if !allowed[typ] {
				t.Fatalf("coschedule %v uses type outside workload %v", c, w)
			}
		}
	}
	// First (all smallest) and last (all largest) in lexicographic order.
	if cs[0].Key() != NewCoschedule(2, 2, 2, 2).Key() {
		t.Errorf("first coschedule = %v", cs[0])
	}
	if cs[len(cs)-1].Key() != NewCoschedule(11, 11, 11, 11).Key() {
		t.Errorf("last coschedule = %v", cs[len(cs)-1])
	}
}

func TestEnumerateWorkloads(t *testing.T) {
	ws := EnumerateWorkloads(12, 4)
	if len(ws) != 495 {
		t.Fatalf("len = %d, want 495", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if len(w) != 4 {
			t.Fatalf("workload %v has wrong size", w)
		}
		if seen[w.Key()] {
			t.Fatalf("duplicate workload %v", w)
		}
		seen[w.Key()] = true
	}
}
