// Package workload provides the combinatorial machinery of the study:
// enumeration of workloads (combinations of N job types without repetition
// out of the benchmark suite) and coschedules (multisets of K jobs drawn
// from the N job types of a workload, i.e. combinations with repetition).
//
// For the paper's default setup — 12 benchmarks, N = 4 job types, K = 4
// hardware contexts — there are C(12,4) = 495 workloads and, per workload,
// C(N+K-1, K) = 35 coschedules; across the whole suite there are
// C(12+4-1, 4) = 1,365 distinct coschedules to simulate.
package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Coschedule is a multiset of job-type indices of size K, stored sorted
// ascending. Indices refer to whatever universe the caller uses (the global
// benchmark suite or a workload's local job types).
type Coschedule []int

// NewCoschedule copies and canonicalises (sorts) the given job-type indices.
func NewCoschedule(types ...int) Coschedule {
	c := append(Coschedule(nil), types...)
	sort.Ints(c)
	return c
}

// Key returns a canonical string key ("0,3,3,7") usable as a map key.
func (c Coschedule) Key() string {
	parts := make([]string, len(c))
	for i, t := range c {
		parts[i] = fmt.Sprint(t)
	}
	return strings.Join(parts, ",")
}

// Count returns how many slots of the coschedule run job type t.
func (c Coschedule) Count(t int) int {
	n := 0
	for _, x := range c {
		if x == t {
			n++
		}
	}
	return n
}

// Heterogeneity returns the number of distinct job types in the coschedule
// (Table II groups coschedules by this quantity).
func (c Coschedule) Heterogeneity() int {
	if len(c) == 0 {
		return 0
	}
	h := 1
	for i := 1; i < len(c); i++ {
		if c[i] != c[i-1] {
			h++
		}
	}
	return h
}

// Types returns the sorted distinct job types present.
func (c Coschedule) Types() []int {
	var ts []int
	for i, x := range c {
		if i == 0 || x != c[i-1] {
			ts = append(ts, x)
		}
	}
	return ts
}

// Remap translates the coschedule through a local-to-global index table.
func (c Coschedule) Remap(table []int) Coschedule {
	out := make(Coschedule, len(c))
	for i, t := range c {
		out[i] = table[t]
	}
	sort.Ints(out)
	return out
}

// Workload is a set of N distinct job types (global benchmark indices),
// sorted ascending. Per the paper's assumptions the job types are
// equiprobable and contribute equal total work.
type Workload []int

// Key returns a canonical string key for the workload.
func (w Workload) Key() string { return Coschedule(w).Key() }

// Combinations enumerates all combinations without repetition of k elements
// out of [0, n), in lexicographic order. It panics for invalid arguments.
func Combinations(n, k int) [][]int {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("workload: Combinations(%d, %d) invalid", n, k))
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	if k == 0 {
		return [][]int{{}}
	}
	return out
}

// Multisets enumerates all combinations WITH repetition of k elements out
// of [0, n) (i.e. sorted multisets), in lexicographic order. This is the
// coschedule space: Multisets(N, K) has C(N+K-1, K) elements.
func Multisets(n, k int) []Coschedule {
	if k < 0 || n <= 0 {
		panic(fmt.Sprintf("workload: Multisets(%d, %d) invalid", n, k))
	}
	var out []Coschedule
	cur := make([]int, k)
	var rec func(pos, min int)
	rec = func(pos, min int) {
		if pos == k {
			out = append(out, append(Coschedule(nil), cur...))
			return
		}
		for t := min; t < n; t++ {
			cur[pos] = t
			rec(pos+1, t)
		}
	}
	rec(0, 0)
	return out
}

// Binomial returns C(n, k) as an int; it panics on overflow of int64.
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := int64(1)
	for i := 0; i < k; i++ {
		res = res * int64(n-i)
		if res < 0 {
			panic("workload: Binomial overflow")
		}
		res /= int64(i + 1)
	}
	return int(res)
}

// MultisetCount returns the number of multisets of size k over n types,
// C(n+k-1, k).
func MultisetCount(n, k int) int { return Binomial(n+k-1, k) }

// EnumerateWorkloads returns all workloads of n distinct job types drawn
// from a suite of `suite` benchmarks (C(suite, n) workloads).
func EnumerateWorkloads(suite, n int) []Workload {
	combos := Combinations(suite, n)
	out := make([]Workload, len(combos))
	for i, c := range combos {
		out[i] = Workload(c)
	}
	return out
}

// LocalCoschedules enumerates the coschedules of a workload with k slots,
// expressed in *global* benchmark indices. For the default N=4, K=4 this
// yields the 35 coschedules the paper describes (AAAA, AAAB, ..., DDDD).
func LocalCoschedules(w Workload, k int) []Coschedule {
	locals := Multisets(len(w), k)
	out := make([]Coschedule, len(locals))
	for i, lc := range locals {
		out[i] = lc.Remap(w)
	}
	return out
}
