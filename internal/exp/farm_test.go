package exp

import (
	"context"
	"strings"
	"testing"
)

func TestFarmDriverHetero(t *testing.T) {
	e := tinyEnv(0)
	r, err := Farm(context.Background(), e, FarmOptions{
		Servers:      3,
		Hetero:       true,
		Dispatchers:  []string{"rr", "li"},
		Loads:        []float64{0.6},
		Replications: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("got %d cells, want 2 (2 dispatchers x 1 load)", len(r.Cells))
	}
	if r.Capacity <= 0 {
		t.Errorf("capacity = %v, want > 0", r.Capacity)
	}
	if !strings.Contains(r.Name, "smt+quad") {
		t.Errorf("hetero farm named %q", r.Name)
	}
	cell, ok := r.Cell("li", 0.6)
	if !ok {
		t.Fatal("Cell(li, 0.6) missing")
	}
	if cell.MeanTurnaround <= 0 || cell.P95Turnaround < cell.MeanTurnaround {
		t.Errorf("implausible cell %+v", cell)
	}
	if out := r.Format(); !strings.Contains(out, "load=0.60") || !strings.Contains(out, "li") {
		t.Errorf("Format missing grid content:\n%s", out)
	}
}

func TestFarmDriverErrors(t *testing.T) {
	e := tinyEnv(0)
	if _, err := Farm(context.Background(), e, FarmOptions{Sched: "NOPE", Loads: []float64{0.5}, Replications: 1}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := Farm(context.Background(), e, FarmOptions{Dispatchers: []string{"bogus"}, Loads: []float64{0.5}, Replications: 1}); err == nil {
		t.Error("unknown dispatcher accepted")
	}
}
