package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/core"
	"symbiosched/internal/runner"
	"symbiosched/internal/workload"
)

// FairnessResult reproduces the Section V-D counterfactual: equalising the
// per-job rates inside each workload's fully heterogeneous coschedule
// (keeping its instantaneous throughput) lets the optimal scheduler select
// it most of the time and raises optimal throughput substantially, while
// FCFS and worst remain (nearly) unchanged.
type FairnessResult struct {
	Name      string
	Workloads int
	// Mean throughput changes after equalisation.
	OptGain, FCFSChange, WorstChange float64
	// HeteroFractionBefore/After is the mean time fraction the optimal
	// scheduler gives the heterogeneous coschedule.
	HeteroFractionBefore, HeteroFractionAfter float64
}

// Fairness runs the counterfactual over the (sampled) N=4 workloads on the
// SMT configuration.
func Fairness(e *Env) (*FairnessResult, error) {
	t := e.SMTTable()
	ws := e.sampledWorkloads()
	n := float64(len(ws))
	// One counterfactual per workload in parallel; the means fold in
	// workload order, exactly as the former sequential loop summed them.
	r, err := runner.Reduce(context.Background(), e.runCfg("fairness"), len(ws),
		&FairnessResult{Name: t.Name(), Workloads: len(ws)},
		func(_ context.Context, wi int) (*core.FairnessOutcome, error) {
			out, err := core.FairnessExperiment(t, ws[wi], core.FCFSConfig{
				Jobs: e.Cfg.FCFSJobs,
				Seed: e.Cfg.Seed + uint64(wi),
			})
			if err != nil {
				return nil, fmt.Errorf("workload %v: %w", ws[wi], err)
			}
			return out, nil
		},
		func(r *FairnessResult, _ int, out *core.FairnessOutcome) *FairnessResult {
			r.OptGain += (out.EqualizedOpt/out.BaselineOpt - 1) / n
			r.FCFSChange += (out.EqualizedFCFS/out.BaselineFCFS - 1) / n
			r.WorstChange += (out.EqualizedWorst/out.BaselineWorst - 1) / n
			r.HeteroFractionBefore += out.HeteroFractionBefore / n
			r.HeteroFractionAfter += out.HeteroFractionAfter / n
			return r
		})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Format renders the counterfactual outcome.
func (r *FairnessResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section V-D fairness counterfactual (%s, %d workloads):\n", r.Name, r.Workloads)
	fmt.Fprintf(&b, "  equalising rates in the fully heterogeneous coschedule (same inst. TP):\n")
	fmt.Fprintf(&b, "  optimal TP %+.1f%%, FCFS %+.1f%%, worst %+.1f%%   [paper: optimal up substantially, FCFS/worst unchanged]\n",
		100*r.OptGain, 100*r.FCFSChange, 100*r.WorstChange)
	fmt.Fprintf(&b, "  optimal scheduler's time in the heterogeneous coschedule: %.0f%% -> %.0f%%   [paper: \"most of the time\" after]\n",
		100*r.HeteroFractionBefore, 100*r.HeteroFractionAfter)
	return b.String()
}

// FairnessForWorkload runs the counterfactual for a single workload —
// useful for inspecting the mechanism (examples/quickstart uses it).
func FairnessForWorkload(e *Env, w workload.Workload) (*core.FairnessOutcome, error) {
	return core.FairnessExperiment(e.SMTTable(), w, core.FCFSConfig{Jobs: e.Cfg.FCFSJobs, Seed: e.Cfg.Seed})
}
