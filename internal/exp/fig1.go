package exp

import (
	"fmt"
	"strings"

	"symbiosched/internal/core"
)

// Fig1Result reproduces Figure 1: the variation of per-job IPC,
// per-coschedule instantaneous throughput and scheduler average throughput
// for both configurations, N = 4 job types.
type Fig1Result struct {
	SMT, Quad ConfigVariability
}

// ConfigVariability is one configuration's three bars.
type ConfigVariability struct {
	Name   string
	JobIPC core.SpreadStats // zero line: per-workload average job IPC
	InstTP core.SpreadStats // zero line: per-workload average it(s)
	AvgTP  core.SpreadStats // zero line: FCFS average throughput
}

// Fig1 runs (or reuses) the N=4 suite sweeps on both configurations.
func Fig1(e *Env) (*Fig1Result, error) {
	smt, err := e.SMTSweep()
	if err != nil {
		return nil, err
	}
	quad, err := e.QuadSweep()
	if err != nil {
		return nil, err
	}
	return &Fig1Result{
		SMT:  ConfigVariability{Name: e.SMTTable().Name(), JobIPC: smt.JobIPC, InstTP: smt.InstTP, AvgTP: smt.AvgTP},
		Quad: ConfigVariability{Name: e.QuadTable().Name(), JobIPC: quad.JobIPC, InstTP: quad.InstTP, AvgTP: quad.AvgTP},
	}, nil
}

// Format renders the figure's bars as text, with the paper's values quoted.
func (r *Fig1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: variability of per-job IPC, instantaneous TP and average TP (N=4)\n")
	row := func(label string, s core.SpreadStats, paper string) {
		fmt.Fprintf(&b, "  %-16s avg %+6.1f%% / %+6.1f%%   extremes %+6.1f%% / %+6.1f%%   variability %5.1f%%   [paper: %s]\n",
			label, 100*s.AvgBest, 100*s.AvgWorst, 100*s.MaxBest, 100*s.MinWorst, 100*s.Variability(), paper)
	}
	fmt.Fprintf(&b, "%s\n", r.SMT.Name)
	row("per-job IPC", r.SMT.JobIPC, "+23/-14, +108/-40, var 37%")
	row("instantaneous TP", r.SMT.InstTP, "+35/-35, +69/-56, var 69%")
	row("average TP", r.SMT.AvgTP, "opt +3 (max +12), worst -9 (min -18), var 12%")
	fmt.Fprintf(&b, "%s\n", r.Quad.Name)
	row("per-job IPC", r.Quad.JobIPC, "var 35%")
	row("instantaneous TP", r.Quad.InstTP, "var 48%")
	row("average TP", r.Quad.AvgTP, "opt +6%")
	return b.String()
}
