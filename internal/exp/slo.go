package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/farm"
	"symbiosched/internal/scenario"
)

// sloLoads is the load sweep of the SLO scenario — finer than the farm
// grid's three points, because attainment curves bend sharply near
// saturation.
var sloLoads = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

// sloTarget is the turnaround objective in simulated time units (job
// sizes average one unit of work, so this is roughly five solo service
// times).
const sloTarget = 5.0

// SLOScenario is the tail-latency view the paper's turnaround plots
// stop short of: for each dispatcher, how do the P50/P95/P99 turnaround
// quantiles — and the fraction of jobs meeting a fixed turnaround SLO —
// degrade as load approaches saturation? Common random numbers across
// dispatchers (the seed derives from load and replication only) make the
// per-load comparison paired.
func SLOScenario() *scenario.Scenario {
	return gridScenario("slo",
		"tail latency: turnaround quantiles and SLO attainment vs load, jsq vs li dispatch",
		sloPlan)
}

func sloPlan(e *Env) (*scenario.Plan, error) {
	const servers = 4
	const reps = 3
	dispatchers := []string{"jsq", "li"}
	w := farmWorkload(e)
	specs, capacity, err := fcfsFarm(e, servers, false)
	if err != nil {
		return nil, err
	}

	return &scenario.Plan{
		Axes: []scenario.Axis{
			{Name: "dispatcher", Values: dispatchers},
			{Name: "load", Values: floatLabels(sloLoads)},
			{Name: "rep", Values: repLabels(reps)},
		},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			disp := pt.Value("dispatcher")
			load := sloLoads[pt.Index("load")]
			rep, err := farm.Replicate(specs, disp, w, farm.Config{
				Lambda:    load * capacity,
				Jobs:      e.Cfg.SimJobs,
				SizeShape: 4,
				SLO:       sloTarget,
				Seed:      pt.Seed(e.Cfg.Seed, "load"),
			}, pt.Index("rep"))
			if err != nil {
				return nil, fmt.Errorf("slo %s load %.2f: %w", disp, load, err)
			}
			return rep, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			tbl := scenario.NewTable("slo",
				scenario.StrCol("dispatcher"), scenario.FloatCol("load"),
				scenario.FloatCol("mean_turnaround"), scenario.FloatCol("p50_turnaround"),
				scenario.FloatCol("p95_turnaround"), scenario.FloatCol("p99_turnaround"),
				scenario.FloatCol("slo_attainment"))
			aggs := foldReps(cells, reps)
			// attainedTo[disp] is the highest load of the unbroken
			// ascending prefix holding attainment at or above 95% — a dip
			// at a lower load ends the held range even if a later load
			// recovers.
			attainedTo := map[string]float64{}
			ci := 0
			for _, disp := range dispatchers {
				holding := true
				for _, load := range sloLoads {
					a := aggs[ci]
					ci++
					tbl.Add(disp, load, a.MeanTurnaround, a.P50Turnaround,
						a.P95Turnaround, a.P99Turnaround, a.SLOAttainment)
					if holding && a.SLOAttainment >= 0.95 {
						attainedTo[disp] = load
					} else {
						holding = false
					}
				}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Tail-latency SLO (%d SMT servers, FCFS per server, objective: turnaround <= %g, %d replications/cell)\n",
				servers, sloTarget, reps)
			b.WriteString(tbl.Text())
			for _, disp := range dispatchers {
				if l, ok := attainedTo[disp]; ok {
					fmt.Fprintf(&b, "  %s: holds 95%% attainment up to load %.2f\n", disp, l)
				} else {
					fmt.Fprintf(&b, "  %s: never reaches 95%% attainment on this grid\n", disp)
				}
			}
			return &scenario.Result{Value: tbl, Text: b.String(), Tables: []*scenario.Table{tbl}}, nil
		},
	}, nil
}
