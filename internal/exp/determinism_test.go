package exp

import (
	"context"
	"testing"

	"symbiosched/internal/program"
	"symbiosched/internal/scenario"
)

// tinyEnv builds a fresh (uncached) Env at the given parallelism: 5
// benchmarks, 5 N=4 workloads, small simulations.
func tinyEnv(p int) *Env {
	suite := program.Suite()
	cfg := DefaultConfig()
	cfg.Suite = []program.Profile{suite[1], suite[5], suite[6], suite[7], suite[11]}
	cfg.FCFSJobs = 2000
	cfg.SimJobs = 1500
	cfg.Parallelism = p
	return NewEnv(cfg)
}

// TestDriversDeterministicAcrossParallelism pins the PR's headline
// guarantee end to end: every driver's Format() output — perfdb build,
// suite sweep and Section VI event simulations included — is byte-
// identical at Parallelism 1 and 8.
func TestDriversDeterministicAcrossParallelism(t *testing.T) {
	type driver struct {
		name string
		run  func(e *Env) (string, error)
	}
	drivers := []driver{
		{"fig1", func(e *Env) (string, error) {
			r, err := Fig1(e)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"fig5", func(e *Env) (string, error) {
			r, err := Fig5(e)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"fig6", func(e *Env) (string, error) {
			r, err := Fig6(e)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"fairness", func(e *Env) (string, error) {
			r, err := Fairness(e)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"makespan", func(e *Env) (string, error) {
			r, err := MakespanExperiment(e, 8)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"online", func(e *Env) (string, error) {
			r, err := Online(e, OnlineOptions{Workloads: 2})
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
	}
	outputs := map[int]map[string]string{}
	for _, p := range []int{1, 8} {
		e := tinyEnv(p)
		outputs[p] = map[string]string{}
		for _, d := range drivers {
			out, err := d.run(e)
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, d.name, err)
			}
			outputs[p][d.name] = out
		}
	}
	for _, d := range drivers {
		if outputs[1][d.name] != outputs[8][d.name] {
			t.Errorf("%s: output differs between Parallelism=1 and Parallelism=8\n--- p=1 ---\n%s\n--- p=8 ---\n%s",
				d.name, outputs[1][d.name], outputs[8][d.name])
		}
	}
}

// TestNewScenariosDeterministicAcrossParallelism is the determinism
// driver for the extension scenarios: the full Result — report text and
// every CSV table's bytes — must be identical at Parallelism 1 and 8.
// (The golden test additionally pins the table bytes against committed
// files at 1 and NumCPU.)
func TestNewScenariosDeterministicAcrossParallelism(t *testing.T) {
	for _, name := range []string{"hetfarm", "megafarm", "burst", "slo"} {
		s, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		render := func(p int) string {
			e := tinyEnv(p)
			res, err := s.Run(context.Background(), e, e.runCfg(name))
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			out := res.Text
			for _, tbl := range res.Tables {
				out += "\n--- " + tbl.Name + " ---\n" + tbl.Text()
			}
			return out
		}
		if one, eight := render(1), render(8); one != eight {
			t.Errorf("%s: output differs between Parallelism=1 and 8\n--- p=1 ---\n%s\n--- p=8 ---\n%s",
				name, one, eight)
		}
	}
}

// TestPerfdbCachePlumbs verifies the Env-level cache: a second Env pointed
// at the same directory reloads the tables instead of rebuilding, and the
// loaded table drives drivers to identical output.
func TestPerfdbCachePlumbs(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Env {
		e := tinyEnv(0)
		e.Cfg.CacheDir = dir
		return e
	}
	e1 := mk()
	t1 := Table1(e1)
	e2 := mk()
	t2 := Table1(e2)
	out1, out2 := FormatTable1(t1), FormatTable1(t2)
	if out1 != out2 {
		t.Fatalf("cached table changed Table 1 output:\n%s\nvs\n%s", out1, out2)
	}
}
