package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/scenario"
	"symbiosched/internal/sched"
	"symbiosched/internal/workload"
)

// Fig5Loads are the offered loads of Figure 5, relative to the FCFS
// maximum throughput.
var Fig5Loads = []float64{0.8, 0.9, 0.95}

// Fig5Cell is one (scheduler, load) aggregate of Figure 5.
type Fig5Cell struct {
	Scheduler string
	Load      float64
	// TurnaroundVsFCFS is the mean turnaround normalised to FCFS at the
	// same load (paper: MAXTP reaches ~0.77 at load 0.95).
	TurnaroundVsFCFS float64
	// Utilisation is the mean number of busy contexts (paper plots
	// ~2.5-3.7).
	Utilisation float64
	// EmptyFraction is the mean fraction of time the system is empty.
	EmptyFraction float64
}

// Fig5Result reproduces Figure 5 on the SMT configuration: turnaround,
// utilisation and empty fraction for the four schedulers at three loads,
// averaged over the (sampled) N=4 workloads.
type Fig5Result struct {
	Name      string
	Workloads int
	Cells     []Fig5Cell // ordered scheduler-major, load-minor
}

// SchedulerNames lists the Section VI schedulers in the paper's order.
var SchedulerNames = sched.Names

// newScheduler builds a fresh scheduler instance over a rate source — the
// oracle table in the paper's experiments, a learned estimator in the
// online ones (MAXTP carries state and must not be shared across runs).
func newScheduler(name string, rs online.RateSource, w workload.Workload) (sched.Scheduler, error) {
	return sched.New(name, rs, w)
}

// sampledWorkloads returns the N=4 workloads of the sweep, thinned to
// cfg.SampleWorkloads when set.
func (e *Env) sampledWorkloads() []workload.Workload {
	all := workload.EnumerateWorkloads(len(e.Cfg.Suite), 4)
	n := e.Cfg.SampleWorkloads
	if n <= 0 || n >= len(all) {
		return all
	}
	step := len(all) / n
	var out []workload.Workload
	for i := 0; i < len(all) && len(out) < n; i += step {
		out = append(out, all[i])
	}
	return out
}

// fig5Acc is one (scheduler, load) cell's running sum while folding
// workloads.
type fig5Acc struct {
	turnaround, util, empty float64
}

// fig5Plan lays Figure 5 out on the scenario engine: the grid is the
// sampled-workload axis (each cell runs all scheduler x load simulations
// for one workload, normalised to that workload's own FCFS run), and the
// reduction folds the cells in workload order — so float sums, and hence
// the golden CSV, are identical at every parallelism level.
func fig5Plan(e *Env) (*scenario.Plan, error) {
	t := e.SMTTable()
	ws := e.sampledWorkloads()
	sweep, err := e.SMTSweep()
	if err != nil {
		return nil, err
	}
	// Keyed by the packed uint64 workload signature: this lookup sits in
	// the per-workload sweep path, where string keys would re-format the
	// workload on every probe. Workload.Key() remains the CSV/report
	// label form.
	fcfsTP := make(map[uint64]float64, len(sweep.Workloads))
	for _, a := range sweep.Workloads {
		fcfsTP[perfdb.Key(workload.Coschedule(a.Workload))] = a.FCFSTP
	}

	// One workload's contribution: [scheduler][load], turnaround already
	// normalised to the workload's own FCFS run.
	perWorkload := func(wi int) ([][]fig5Acc, error) {
		w := ws[wi]
		base, ok := fcfsTP[perfdb.Key(workload.Coschedule(w))]
		if !ok || base <= 0 {
			return nil, nil // skipped workloads contribute nothing
		}
		local := make([][]fig5Acc, len(SchedulerNames))
		for i := range local {
			local[i] = make([]fig5Acc, len(Fig5Loads))
		}
		fcfsTurn := make([]float64, len(Fig5Loads))
		for li, load := range Fig5Loads {
			for si, name := range SchedulerNames {
				s, err := newScheduler(name, t, w)
				if err != nil {
					return nil, fmt.Errorf("workload %v %s load %.2f: %w", w, name, load, err)
				}
				// Job sizes are Erlang-4 around mean 1: jobs of
				// "approximately the same size" (Section VI) with
				// enough variance for the queueing behaviour a
				// latency experiment near saturation is about.
				res, err := eventsim.Latency(t, w, s, eventsim.LatencyConfig{
					Lambda:    load * base,
					Jobs:      e.Cfg.SimJobs,
					SizeShape: 4,
					Seed:      e.Cfg.Seed + uint64(wi)*31 + uint64(li),
				})
				if err != nil {
					return nil, fmt.Errorf("workload %v %s load %.2f: %w", w, name, load, err)
				}
				if name == "FCFS" {
					fcfsTurn[li] = res.MeanTurnaround
				}
				local[si][li] = fig5Acc{res.MeanTurnaround, res.Utilisation, res.EmptyFraction}
			}
		}
		for si := range local {
			for li := range local[si] {
				if fcfsTurn[li] > 0 {
					local[si][li].turnaround /= fcfsTurn[li]
				} else {
					local[si][li].turnaround = 1
				}
			}
		}
		return local, nil
	}

	return &scenario.Plan{
		Axes: []scenario.Axis{{Name: "workload", Values: workloadLabels(ws)}},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			local, err := perWorkload(pt.Index("workload"))
			if err != nil {
				return nil, err
			}
			return local, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			// accs[scheduler][load], folded in workload order.
			accs := make([][]fig5Acc, len(SchedulerNames))
			for i := range accs {
				accs[i] = make([]fig5Acc, len(Fig5Loads))
			}
			for _, c := range cells {
				local := c.([][]fig5Acc)
				for si := range local {
					for li := range local[si] {
						accs[si][li].turnaround += local[si][li].turnaround
						accs[si][li].util += local[si][li].util
						accs[si][li].empty += local[si][li].empty
					}
				}
			}
			r := &Fig5Result{Name: t.Name(), Workloads: len(ws)}
			n := float64(len(ws))
			for si, name := range SchedulerNames {
				for li, load := range Fig5Loads {
					a := accs[si][li]
					r.Cells = append(r.Cells, Fig5Cell{
						Scheduler:        name,
						Load:             load,
						TurnaroundVsFCFS: a.turnaround / n,
						Utilisation:      a.util / n,
						EmptyFraction:    a.empty / n,
					})
				}
			}
			tbl, err := resultTable("fig5", r)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: r, Text: r.Format(), Tables: []*scenario.Table{tbl}}, nil
		},
	}, nil
}

// Fig5 runs the latency experiments on the SMT configuration.
func Fig5(e *Env) (*Fig5Result, error) {
	p, err := fig5Plan(e)
	if err != nil {
		return nil, err
	}
	res, err := p.Execute(context.Background(), e.runCfg("fig5"))
	if err != nil {
		return nil, err
	}
	return res.Value.(*Fig5Result), nil
}

// workloadLabels renders a workload axis with the canonical Key labels.
func workloadLabels(ws []workload.Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Key()
	}
	return out
}

// Cell returns the aggregate for a scheduler and load.
func (r *Fig5Result) Cell(scheduler string, load float64) (Fig5Cell, bool) {
	for _, c := range r.Cells {
		if c.Scheduler == scheduler && c.Load == load {
			return c, true
		}
	}
	return Fig5Cell{}, false
}

// Format renders the three panels of Figure 5.
func (r *Fig5Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (%s, %d workloads): latency experiment, loads relative to FCFS max throughput\n", r.Name, r.Workloads)
	panel := func(title string, get func(Fig5Cell) float64, format string) {
		fmt.Fprintf(&b, "  %s\n        ", title)
		for _, l := range Fig5Loads {
			fmt.Fprintf(&b, "  load=%.2f", l)
		}
		fmt.Fprintln(&b)
		for _, name := range SchedulerNames {
			fmt.Fprintf(&b, "  %-6s", name)
			for _, l := range Fig5Loads {
				c, _ := r.Cell(name, l)
				fmt.Fprintf(&b, format, get(c))
			}
			fmt.Fprintln(&b)
		}
	}
	panel("turnaround time normalised to FCFS [paper: SRPT lowest at 0.8/0.9; MAXTP ~0.77 at 0.95]",
		func(c Fig5Cell) float64 { return c.TurnaroundVsFCFS }, "  %9.3f")
	panel("processor utilisation (busy contexts) [paper: ~2.5-3.7, MAXTP lowest]",
		func(c Fig5Cell) float64 { return c.Utilisation }, "  %9.3f")
	panel("processor empty fraction [paper: ~0.02-0.13, MAXTP highest]",
		func(c Fig5Cell) float64 { return c.EmptyFraction }, "  %9.4f")
	return b.String()
}
