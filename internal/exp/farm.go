package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/core"
	"symbiosched/internal/farm"
	"symbiosched/internal/fault"
	"symbiosched/internal/metrics"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/scenario"
	"symbiosched/internal/sched"
	"symbiosched/internal/workload"
)

// FarmLoads are the default offered loads of the farm experiment,
// relative to the farm's aggregate FCFS maximum throughput.
var FarmLoads = []float64{0.5, 0.8, 0.95}

// FarmOptions parameterises the farm experiment grid.
type FarmOptions struct {
	// Servers is the farm size (default 4).
	Servers int
	// Hetero alternates SMT and quad-core servers; all-SMT otherwise.
	Hetero bool
	// Sched names the per-server scheduler (default "FCFS").
	Sched string
	// Estimator names the per-server rate knowledge: "oracle" (default)
	// decides over the true performance table; "sampler" and "pairwise"
	// learn co-run rates online (internal/online) — schedulers and the
	// li dispatcher then run on estimates instead of the oracle.
	Estimator string
	// Dispatchers defaults to every built-in policy.
	Dispatchers []string
	// Loads defaults to FarmLoads.
	Loads []float64
	// Replications is the number of seeds per cell (default 3).
	Replications int
	// Shards, when positive, runs every cell on the sharded time-slab
	// engine (farm.SimulateSharded) with that many shards; zero keeps the
	// serial engine. The sharded engine's output is byte-identical at any
	// shard/worker/slab setting, but differs from the serial engine by
	// float-advance partitioning, so flipping it is a golden-visible
	// engine choice, not a tuning knob.
	Shards int
	// Slab optionally caps the sharded engine's synchronization slab
	// length in simulated time (only meaningful with Shards > 0).
	Slab float64
	// Faults, when enabled (MTBF > 0), injects deterministic server
	// failure/repair into every cell (internal/fault). The fault streams
	// derive from the replication seeds, so every dispatcher and load
	// faces the same outage trajectory — and the grid grows the
	// availability/goodput columns in its report.
	Faults fault.Config
}

func (o FarmOptions) withDefaults() FarmOptions {
	if o.Servers <= 0 {
		o.Servers = 4
	}
	if o.Sched == "" {
		o.Sched = "FCFS"
	}
	if o.Estimator == "" {
		o.Estimator = "oracle"
	}
	if len(o.Dispatchers) == 0 {
		o.Dispatchers = farm.DispatcherNames
	}
	if len(o.Loads) == 0 {
		o.Loads = FarmLoads
	}
	if o.Replications <= 0 {
		o.Replications = 3
	}
	return o
}

// FarmCell is one (dispatcher, load) aggregate of the farm experiment.
type FarmCell struct {
	Dispatcher string
	Load       float64
	// MeanTurnaround and the P50/P95/P99 quantiles are means over
	// replications.
	MeanTurnaround float64
	P50Turnaround  float64
	P95Turnaround  float64
	P99Turnaround  float64
	// TurnaroundStd is the across-replication standard deviation of the
	// mean turnaround.
	TurnaroundStd float64
	Utilisation   float64
	EmptyFraction float64
	Throughput    float64
	// Fault-injection aggregates (farm.SweepResult): means over
	// replications for the floats, totals for the counts. All trivial —
	// availability 1, counts 0 — when FarmOptions.Faults is disabled;
	// they appear in Format's fault panel but not in the pinned farm CSV
	// (the resilience scenario owns the fault-column table).
	Availability float64
	Goodput      float64
	WastedWork   float64
	Redispatches int
	Dropped      int
	Parked       int
}

// FarmResult is the full dispatcher-by-load grid.
type FarmResult struct {
	// Name describes the farm (server count, machine mix, scheduler).
	Name string
	// Workload is the jobs' workload key over the suite.
	Workload string
	// Capacity is the aggregate FCFS maximum throughput the loads are
	// calibrated against.
	Capacity     float64
	Servers      int
	Replications int
	// Faulted records whether the grid ran under fault injection — it
	// gates the availability/goodput panels in Format.
	Faulted bool
	// Cells are ordered dispatcher-major, load-minor.
	Cells []FarmCell
	// Metrics is the whole grid's merged instrumentation snapshot (nil
	// unless exp.Config.Metrics): the per-cell sweep snapshots merged in
	// cell enumeration order, so it is bit-identical at any parallelism.
	Metrics *metrics.Snapshot
}

// farmWorkload picks the experiment's workload: the first four suite
// benchmarks (or fewer for tiny suites).
func farmWorkload(e *Env) workload.Workload {
	n := 4
	if len(e.Cfg.Suite) < n {
		n = len(e.Cfg.Suite)
	}
	w := make(workload.Workload, n)
	for i := range w {
		w[i] = i
	}
	return w
}

// farmSpecs builds the server list: all-SMT, or alternating SMT/quad when
// hetero is set. MAXTP and the online estimators are constructed per
// simulation via the spec factories (they carry run state); the offline
// LP phase MAXTP needs runs inside the factory, once per replication.
func farmSpecs(e *Env, opt FarmOptions, w workload.Workload) ([]farm.ServerSpec, error) {
	tables := []*perfdb.Table{e.SMTTable()}
	if opt.Hetero {
		tables = append(tables, e.QuadTable())
	}
	specs := make([]farm.ServerSpec, opt.Servers)
	for i := range specs {
		t := tables[i%len(tables)]
		specs[i] = farm.ServerSpec{
			Table: t,
			Sched: func(rs online.RateSource) (sched.Scheduler, error) { return newScheduler(opt.Sched, rs, w) },
		}
		if opt.Estimator != "oracle" {
			specs[i].Estimator = func(seed uint64) (online.Estimator, error) { return online.New(opt.Estimator, t, seed) }
		}
	}
	// Validate the names once, eagerly — including combinations the
	// factories would only reject mid-sweep (MAXTP over a learner).
	val, err := online.New(opt.Estimator, tables[0], 1)
	if err != nil {
		return nil, err
	}
	if _, err := newScheduler(opt.Sched, val, w); err != nil {
		return nil, err
	}
	return specs, nil
}

// farmCapacity calibrates offered loads against the farm's aggregate
// capacity: the sum over servers of the per-table FCFS maximum
// throughput.
func farmCapacity(e *Env, specs []farm.ServerSpec, w workload.Workload) float64 {
	capacity := 0.0
	perTable := map[*perfdb.Table]float64{}
	for _, sp := range specs {
		tp, ok := perTable[sp.Table]
		if !ok {
			tp = core.FCFS(sp.Table, w, core.FCFSConfig{Jobs: e.Cfg.FCFSJobs, Seed: e.Cfg.Seed}).Throughput
			perTable[sp.Table] = tp
		}
		capacity += tp
	}
	return capacity
}

// farmPlan lays the dispatcher x load x replication grid out on the
// scenario engine: every cell is one farm simulation, enumerated
// dispatcher-major with the replication innermost — exactly the flattened
// sweep the pre-engine driver ran, so the grid (and the golden CSV) is
// bit-identical at any parallelism level. tableName is the CSV stem
// ("farm" for the registered scenario).
func farmPlan(e *Env, opt FarmOptions, tableName string) (*scenario.Plan, error) {
	opt = opt.withDefaults()
	w := farmWorkload(e)
	specs, err := farmSpecs(e, opt, w)
	if err != nil {
		return nil, err
	}
	capacity := farmCapacity(e, specs, w)

	mix := "smt"
	if opt.Hetero {
		mix = "smt+quad"
	}
	name := fmt.Sprintf("%d x %s / %s", opt.Servers, mix, opt.Sched)
	if opt.Estimator != "oracle" {
		name += " @ " + opt.Estimator
	}
	if opt.Shards > 0 {
		name += fmt.Sprintf(" [sharded x%d]", opt.Shards)
	}
	if opt.Faults.Enabled() {
		name += fmt.Sprintf(" !mtbf=%g", opt.Faults.MTBF)
	}
	reps := opt.Replications
	return &scenario.Plan{
		Axes: []scenario.Axis{
			{Name: "dispatcher", Values: opt.Dispatchers},
			{Name: "load", Values: floatLabels(opt.Loads)},
			{Name: "rep", Values: repLabels(reps)},
		},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			disp := opt.Dispatchers[pt.Index("dispatcher")]
			load := opt.Loads[pt.Index("load")]
			// The replication seed derives from the in-cell index alone:
			// every (dispatcher, load) cell sees the same arrival streams
			// (common random numbers), as the pre-engine sweep did.
			cfg := farm.Config{
				Lambda:    load * capacity,
				Jobs:      e.Cfg.SimJobs,
				SizeShape: 4, // jobs of "approximately the same size"
				Seed:      e.Cfg.Seed,
				Metrics:   e.Cfg.Metrics,
				Faults:    opt.Faults,
			}
			var rep farm.Replication
			var err error
			if opt.Shards > 0 {
				rep, err = farm.ReplicateSharded(specs, disp, w, cfg,
					farm.ShardConfig{Shards: opt.Shards, Workers: e.Cfg.Parallelism, Slab: opt.Slab},
					pt.Index("rep"))
			} else {
				rep, err = farm.Replicate(specs, disp, w, cfg, pt.Index("rep"))
			}
			if err != nil {
				return nil, fmt.Errorf("farm %s load %.2f: %w", disp, load, err)
			}
			return rep, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			r := &FarmResult{
				Name:         name,
				Workload:     w.Key(),
				Capacity:     capacity,
				Servers:      opt.Servers,
				Replications: reps,
				Faulted:      opt.Faults.Enabled(),
			}
			aggs := foldReps(cells, reps)
			for _, agg := range aggs {
				if agg.Metrics == nil {
					continue
				}
				if r.Metrics == nil {
					r.Metrics = &metrics.Snapshot{}
				}
				r.Metrics.Merge(agg.Metrics)
			}
			ci := 0
			for _, disp := range opt.Dispatchers {
				for _, load := range opt.Loads {
					cell := aggs[ci]
					ci++
					r.Cells = append(r.Cells, FarmCell{
						Dispatcher:     disp,
						Load:           load,
						MeanTurnaround: cell.MeanTurnaround,
						P50Turnaround:  cell.P50Turnaround,
						P95Turnaround:  cell.P95Turnaround,
						P99Turnaround:  cell.P99Turnaround,
						TurnaroundStd:  cell.TurnaroundStd,
						Utilisation:    cell.Utilisation,
						EmptyFraction:  cell.EmptyFraction,
						Throughput:     cell.Throughput,
						Availability:   cell.Availability,
						Goodput:        cell.Goodput,
						WastedWork:     cell.WastedWork,
						Redispatches:   cell.Redispatches,
						Dropped:        cell.Dropped,
						Parked:         cell.Parked,
					})
				}
			}
			tbl, err := resultTable(tableName, r)
			if err != nil {
				return nil, err
			}
			tables := []*scenario.Table{tbl}
			if r.Metrics != nil {
				tables = append(tables, MetricsTable(tableName+"_metrics", r.Metrics))
			}
			return &scenario.Result{Value: r, Text: r.Format(), Tables: tables}, nil
		},
	}, nil
}

// foldReps groups a scenario grid's cell stream — replications innermost
// — into one aggregated SweepResult per grid row, folding in enumeration
// order so the aggregates are bit-identical at any parallelism level.
func foldReps(cells []any, reps int) []*farm.SweepResult {
	out := make([]*farm.SweepResult, 0, len(cells)/reps)
	for i := 0; i < len(cells); i += reps {
		runs := make([]farm.Replication, reps)
		for k := range runs {
			runs[k] = cells[i+k].(farm.Replication)
		}
		out = append(out, farm.Aggregate(runs))
	}
	return out
}

// MetricsTable renders a merged metrics snapshot as a scenario table.
// Value cells carry the rows' canonical formatted bytes (integers for
// counters, 'g'/10 floats otherwise), so the CSV is the snapshot's exact
// deterministic serialisation.
func MetricsTable(name string, snap *metrics.Snapshot) *scenario.Table {
	t := scenario.NewTable(name,
		scenario.StrCol("metric"), scenario.StrCol("kind"),
		scenario.StrCol("field"), scenario.StrCol("value"))
	for _, r := range snap.Rows {
		t.Add(r.Metric, r.Kind, r.Field, r.FormatValue())
	}
	return t
}

// fcfsFarm builds the stock farm of the extension scenarios — n FCFS
// servers over the oracle tables, all-SMT or alternating SMT/quad — plus
// its calibrated aggregate capacity.
func fcfsFarm(e *Env, n int, hetero bool) ([]farm.ServerSpec, float64, error) {
	opt := FarmOptions{Servers: n, Hetero: hetero}.withDefaults()
	w := farmWorkload(e)
	specs, err := farmSpecs(e, opt, w)
	if err != nil {
		return nil, 0, err
	}
	return specs, farmCapacity(e, specs, w), nil
}

// Farm runs the dispatcher-by-load grid through the scenario engine:
// every cell averages opt.Replications independent farm simulations, and
// the grid is bit-identical at any parallelism level. A cancelled ctx
// (e.g. farmsim's SIGINT handler) aborts the sweep mid-grid and returns
// the context's error; no partial result is produced.
func Farm(ctx context.Context, e *Env, opt FarmOptions) (*FarmResult, error) {
	p, err := farmPlan(e, opt, "farm")
	if err != nil {
		return nil, err
	}
	res, err := p.Execute(ctx, e.runCfg("farm"))
	if err != nil {
		return nil, err
	}
	return res.Value.(*FarmResult), nil
}

// Cell returns the aggregate for a dispatcher and load.
func (r *FarmResult) Cell(dispatcher string, load float64) (FarmCell, bool) {
	for _, c := range r.Cells {
		if c.Dispatcher == dispatcher && c.Load == load {
			return c, true
		}
	}
	return FarmCell{}, false
}

// loads returns the distinct loads in first-seen order.
func (r *FarmResult) loads() []float64 {
	return scenario.Distinct(r.Cells, func(c FarmCell) float64 { return c.Load })
}

// dispatchers returns the distinct dispatchers in first-seen order.
func (r *FarmResult) dispatchers() []string {
	return scenario.Distinct(r.Cells, func(c FarmCell) string { return c.Dispatcher })
}

// Format renders the grid: turnaround (mean and p95), utilisation and
// empty fraction per dispatcher and load.
func (r *FarmResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Server farm (%s): workload %s, aggregate FCFS capacity %.3f, %d replications/cell\n",
		r.Name, r.Workload, r.Capacity, r.Replications)
	loads := r.loads()
	panel := func(title string, get func(FarmCell) float64, format string) {
		fmt.Fprintf(&b, "  %s\n          ", title)
		for _, l := range loads {
			fmt.Fprintf(&b, "  load=%.2f", l)
		}
		fmt.Fprintln(&b)
		for _, d := range r.dispatchers() {
			fmt.Fprintf(&b, "  %-8s", d)
			for _, l := range loads {
				c, _ := r.Cell(d, l)
				fmt.Fprintf(&b, format, get(c))
			}
			fmt.Fprintln(&b)
		}
	}
	panel("mean turnaround time (± std across replications below)",
		func(c FarmCell) float64 { return c.MeanTurnaround }, "  %9.3f")
	panel("p95 turnaround time",
		func(c FarmCell) float64 { return c.P95Turnaround }, "  %9.3f")
	panel("turnaround std across replications",
		func(c FarmCell) float64 { return c.TurnaroundStd }, "  %9.3f")
	panel("farm utilisation (busy contexts / total contexts)",
		func(c FarmCell) float64 { return c.Utilisation }, "  %9.3f")
	panel("per-server empty fraction (mean over servers)",
		func(c FarmCell) float64 { return c.EmptyFraction }, "  %9.4f")
	if r.Faulted {
		panel("availability (1 - down server-time fraction)",
			func(c FarmCell) float64 { return c.Availability }, "  %9.4f")
		panel("goodput (completed work per time unit)",
			func(c FarmCell) float64 { return c.Goodput }, "  %9.3f")
		panel("redispatches (total across replications)",
			func(c FarmCell) float64 { return float64(c.Redispatches) }, "  %9.0f")
	}
	return b.String()
}

// FormatQuantiles renders the turnaround quantile panels (P50/P99) that
// farmsim -quantiles appends to the standard grid — the latency-SLO view
// of the same replications.
func (r *FarmResult) FormatQuantiles() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Turnaround quantiles (%s), mean over %d replications/cell\n", r.Name, r.Replications)
	loads := r.loads()
	panel := func(title string, get func(FarmCell) float64) {
		fmt.Fprintf(&b, "  %s\n          ", title)
		for _, l := range loads {
			fmt.Fprintf(&b, "  load=%.2f", l)
		}
		fmt.Fprintln(&b)
		for _, d := range r.dispatchers() {
			fmt.Fprintf(&b, "  %-8s", d)
			for _, l := range loads {
				c, _ := r.Cell(d, l)
				fmt.Fprintf(&b, "  %9.3f", get(c))
			}
			fmt.Fprintln(&b)
		}
	}
	panel("p50 turnaround time (median)", func(c FarmCell) float64 { return c.P50Turnaround })
	panel("p99 turnaround time (tail SLO)", func(c FarmCell) float64 { return c.P99Turnaround })
	return b.String()
}
