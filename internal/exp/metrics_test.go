package exp

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestGoldenIdenticalWithMetricsOn pins the zero-interference half of the
// observability tentpole at the scenario level: with Config.Metrics on,
// every golden CSV is still byte-identical to the committed files — the
// instrumentation only adds *_metrics tables, it never perturbs a result.
func TestGoldenIdenticalWithMetricsOn(t *testing.T) {
	goldenDir := filepath.Join("testdata", "golden")
	e := tinyEnv(4)
	e.Cfg.Metrics = true
	dir := t.TempDir()
	sawMetrics := false
	for _, s := range goldenScenarios() {
		res, err := s.Run(context.Background(), e, e.runCfg(s.Name))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, tbl := range res.Tables {
			if strings.HasSuffix(tbl.Name, "_metrics") {
				sawMetrics = true
				continue // extra table, not part of the golden contract
			}
			if err := tbl.WriteFile(dir); err != nil {
				t.Fatalf("%s: %v", tbl.Name, err)
			}
			got, err := os.ReadFile(filepath.Join(dir, tbl.Name+".csv"))
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(goldenDir, tbl.Name+".csv"))
			if err != nil {
				t.Fatalf("%s: %v", tbl.Name, err)
			}
			if string(got) != string(want) {
				t.Errorf("%s.csv differs from golden with Metrics on", tbl.Name)
			}
		}
	}
	if !sawMetrics {
		t.Error("no scenario produced a *_metrics table with Metrics on")
	}
}

// TestFarmMetricsTableDeterministic pins the snapshot-ordering contract
// through the scenario layer: the farm scenario's farm_metrics.csv is
// byte-identical at Parallelism 1 and NumCPU (at least 8).
func TestFarmMetricsTableDeterministic(t *testing.T) {
	wide := runtime.NumCPU()
	if wide < 8 {
		wide = 8
	}
	var csvs []string
	for _, p := range []int{1, wide} {
		e := tinyEnv(p)
		e.Cfg.Metrics = true
		s := FarmScenario(FarmOptions{Servers: 2, Replications: 2})
		res, err := s.Run(context.Background(), e, e.runCfg(s.Name))
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		found := false
		for _, tbl := range res.Tables {
			if !strings.HasSuffix(tbl.Name, "_metrics") {
				continue
			}
			found = true
			if err := tbl.WriteFile(dir); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(filepath.Join(dir, tbl.Name+".csv"))
			if err != nil {
				t.Fatal(err)
			}
			csvs = append(csvs, string(data))
		}
		if !found {
			t.Fatal("farm scenario produced no *_metrics table")
		}
	}
	if csvs[0] != csvs[1] {
		t.Errorf("farm metrics CSV differs across parallelism:\n--- p=1 ---\n%s\n--- wide ---\n%s", csvs[0], csvs[1])
	}
}
