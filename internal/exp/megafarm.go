package exp

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"symbiosched/internal/farm"
	"symbiosched/internal/scenario"
)

// MegafarmScenario exercises the regime the serial farm engine cannot
// reach: farms large enough that probing every server per arrival (li,
// jsq) is off the table and the O(N)-per-event lockstep advance dominates
// the wall clock. Every cell runs on the sharded time-slab engine
// (farm.SimulateSharded) under power-of-d-choices dispatch, sweeping farm
// size x probe count x load. The d axis is the supermarket-model story at
// farm scale: d = 1 is random splitting, d = 2 already buys most of the
// queue-length collapse, larger d closes in on full information at fixed
// O(d) probe cost. Seeds derive from the servers and load axes only, so
// every d competes under common random numbers.
func MegafarmScenario() *scenario.Scenario {
	return gridScenario("megafarm",
		"mega-farm: power-of-d dispatch on the sharded engine, servers x d x load",
		megafarmPlan)
}

func megafarmPlan(e *Env) (*scenario.Plan, error) {
	sizes := []int{64, 256}
	ds := []int{1, 2, 4}
	loads := []float64{0.7, 0.9}
	w := farmWorkload(e)

	specs := make([][]farm.ServerSpec, len(sizes))
	caps := make([]float64, len(sizes))
	for si, n := range sizes {
		sp, c, err := fcfsFarm(e, n, false)
		if err != nil {
			return nil, err
		}
		specs[si], caps[si] = sp, c
	}

	sizeLabels := make([]string, len(sizes))
	for i, n := range sizes {
		sizeLabels[i] = strconv.Itoa(n)
	}
	dLabels := make([]string, len(ds))
	for i, d := range ds {
		dLabels[i] = strconv.Itoa(d)
	}

	return &scenario.Plan{
		Axes: []scenario.Axis{
			{Name: "servers", Values: sizeLabels},
			{Name: "d", Values: dLabels},
			{Name: "load", Values: floatLabels(loads)},
		},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			si := pt.Index("servers")
			d := ds[pt.Index("d")]
			load := loads[pt.Index("load")]
			disp, err := farm.NewDispatcher("pd" + strconv.Itoa(d))
			if err != nil {
				return nil, err
			}
			// The sharded engine's Result is byte-identical at any
			// Shards/Workers/Slab, so tying Workers to the Env's
			// parallelism cannot perturb the golden CSV.
			res, err := farm.SimulateSharded(specs[si], disp, w, farm.Config{
				Lambda:    load * caps[si],
				Jobs:      e.Cfg.SimJobs,
				SizeShape: 4,
				Seed:      pt.Seed(e.Cfg.Seed, "servers", "load"),
			}, farm.ShardConfig{Shards: 8, Workers: e.Cfg.Parallelism, Slab: e.Cfg.Slab})
			if err != nil {
				return nil, fmt.Errorf("megafarm n=%d pd%d load %.2f: %w", sizes[si], d, load, err)
			}
			return res, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			tbl := scenario.NewTable("megafarm",
				scenario.IntCol("servers"), scenario.IntCol("d"), scenario.FloatCol("load"),
				scenario.FloatCol("mean_turnaround"), scenario.FloatCol("p99_turnaround"),
				scenario.FloatCol("utilisation"), scenario.FloatCol("throughput"),
				scenario.FloatCol("mean_jobs_in_system"))
			// turn[si][d index] is the mean turnaround at the highest load,
			// for the probe-count payoff lines below.
			turn := make([][]float64, len(sizes))
			ci := 0
			for si, n := range sizes {
				turn[si] = make([]float64, len(ds))
				for di := range ds {
					for li, load := range loads {
						r := cells[ci].(*farm.Result)
						ci++
						tbl.Add(n, ds[di], load, r.MeanTurnaround, r.P99Turnaround,
							r.Utilisation, r.Throughput, r.MeanJobsInSystem)
						if li == len(loads)-1 {
							turn[si][di] = r.MeanTurnaround
						}
					}
				}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Mega-farm (FCFS servers, sharded engine, pd dispatch, %d jobs/cell)\n", e.Cfg.SimJobs)
			for si, n := range sizes {
				fmt.Fprintf(&b, "  capacity n=%d: %.3f\n", n, caps[si])
			}
			b.WriteString(tbl.Text())
			for si, n := range sizes {
				if turn[si][0] > 0 {
					fmt.Fprintf(&b, "  n=%d at load %.2f: pd2 mean turnaround is %.1f%% of pd1, pd4 is %.1f%%\n",
						n, loads[len(loads)-1], 100*turn[si][1]/turn[si][0], 100*turn[si][2]/turn[si][0])
				}
			}
			return &scenario.Result{Value: tbl, Text: b.String(), Tables: []*scenario.Table{tbl}}, nil
		},
	}, nil
}
