package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	e := miniEnv(t)
	dir := t.TempDir()
	smt, _, err := Fig2(e)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := WriteCSV(dir, "fig2_smt", smt)
	if err != nil || !ok {
		t.Fatalf("WriteCSV: ok=%v err=%v", ok, err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2_smt.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "workload,opt_vs_worst,fcfs_vs_worst" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines)-1 != len(smt.Points) {
		t.Errorf("%d data rows, want %d", len(lines)-1, len(smt.Points))
	}
}

func TestWriteCSVUnsupportedType(t *testing.T) {
	ok, err := WriteCSV(t.TempDir(), "x", 42)
	if err != nil || ok {
		t.Errorf("unsupported type: ok=%v err=%v", ok, err)
	}
}

func TestCSVNames(t *testing.T) {
	if CSVName("fig2", "smt") != "fig2_smt" || CSVName("fig4", "") != "fig4" {
		t.Error("CSVName format broken")
	}
}

func TestWriteCSVAllFigureTypes(t *testing.T) {
	e := miniEnv(t)
	dir := t.TempDir()
	f4, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := MakespanExperiment(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]any{"fig4": f4, "fig5": f5, "makespan": mk} {
		ok, err := WriteCSV(dir, name, r)
		if err != nil || !ok {
			t.Errorf("%s: ok=%v err=%v", name, ok, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".csv")); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
