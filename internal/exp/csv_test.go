package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	e := miniEnv(t)
	dir := t.TempDir()
	smt, _, err := Fig2(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(dir, "fig2_smt", smt); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2_smt.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "workload,opt_vs_worst,fcfs_vs_worst" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines)-1 != len(smt.Points) {
		t.Errorf("%d data rows, want %d", len(lines)-1, len(smt.Points))
	}
}

// TestWriteCSVUnsupportedType pins the hard-error contract: a result
// type without a CSV serialisation must fail loudly (and write nothing),
// not be skipped.
func TestWriteCSVUnsupportedType(t *testing.T) {
	dir := t.TempDir()
	err := WriteCSV(dir, "x", 42)
	if err == nil {
		t.Fatal("unsupported type accepted")
	}
	if !strings.Contains(err.Error(), "int") {
		t.Errorf("error %q does not name the offending type", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "x.csv")); serr == nil {
		t.Error("a file was written for the unsupported type")
	}
	// A typed nil inside the any is just as unknown.
	if err := WriteCSV(dir, "y", (*struct{ X int })(nil)); err == nil {
		t.Error("unsupported pointer type accepted")
	}
}

func TestWriteCSVAllFigureTypes(t *testing.T) {
	e := miniEnv(t)
	dir := t.TempDir()
	f4, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := MakespanExperiment(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]any{"fig4": f4, "fig5": f5, "makespan": mk} {
		if err := WriteCSV(dir, name, r); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".csv")); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
