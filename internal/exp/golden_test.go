package exp

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"symbiosched/internal/scenario"
)

// Regenerate the golden CSVs with:
//
//	go test ./internal/exp -run TestCSVGolden -update
var update = flag.Bool("update", false, "rewrite the golden CSV files")

// goldenScenarios lists the CSV-producing scenarios the golden files pin,
// in registry order: the paper's figures and tables, the farm/online
// extensions (tiny grids, matching the historical golden content), and
// the hetfarm/burst/slo scenarios.
func goldenScenarios() []*scenario.Scenario {
	var out []*scenario.Scenario
	for _, name := range scenario.Names() {
		switch name {
		case "n8", "fairness", "uarch":
			continue // text-only, and far too slow for a golden run
		case "farm":
			out = append(out, FarmScenario(FarmOptions{Servers: 2, Replications: 2}))
		case "online":
			out = append(out, OnlineScenario(OnlineOptions{Workloads: 3}))
		default:
			s, _ := scenario.Lookup(name)
			out = append(out, s)
		}
	}
	return out
}

// goldenCSVs runs every golden scenario through the engine on a fresh
// tiny Env at the given parallelism, writes every result table into dir,
// and returns the file names.
func goldenCSVs(t *testing.T, dir string, parallelism int) []string {
	t.Helper()
	e := tinyEnv(parallelism)
	var names []string
	for _, s := range goldenScenarios() {
		res, err := s.Run(context.Background(), e, e.runCfg(s.Name))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(res.Tables) == 0 {
			t.Fatalf("%s: golden scenario produced no tables", s.Name)
		}
		for _, tbl := range res.Tables {
			if err := tbl.WriteFile(dir); err != nil {
				t.Fatalf("%s: %v", tbl.Name, err)
			}
			names = append(names, tbl.Name+".csv")
		}
	}
	return names
}

// TestCSVGolden pins the actual figure content, not just its determinism:
// every scenario's tables must be byte-identical to the committed golden
// files, at Parallelism 1 and at NumCPU. A real change to the models or
// simulators shows up as a golden diff to be reviewed and regenerated
// with -update.
func TestCSVGolden(t *testing.T) {
	goldenDir := filepath.Join("testdata", "golden")

	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		goldenCSVs(t, goldenDir, 1)
		t.Log("golden CSVs rewritten")
		return
	}

	// Pool of NumCPU, but at least 8 so single-core machines still
	// exercise a genuinely concurrent pool.
	wide := runtime.NumCPU()
	if wide < 8 {
		wide = 8
	}
	for _, p := range []int{1, wide} {
		t.Run(fmt.Sprintf("parallel=%d", p), func(t *testing.T) {
			dir := t.TempDir()
			for _, name := range goldenCSVs(t, dir, p) {
				got, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(filepath.Join(goldenDir, name))
				if err != nil {
					t.Fatalf("%s: %v (regenerate with -update)", name, err)
				}
				if string(got) != string(want) {
					t.Errorf("%s differs from golden file (regenerate with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
						name, got, want)
				}
			}
		})
	}
}

// TestRegistryComplete pins the registry surface the CLI dispatches over:
// every legacy experiment name plus the three extension scenarios.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig2", "fig3", "table2", "n8", "fairness",
		"fig4", "fig5", "fig6", "uarch", "makespan", "farm", "online",
		"hetfarm", "megafarm", "burst", "slo", "resilience",
	}
	got := map[string]bool{}
	for _, name := range scenario.Names() {
		got[name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("scenario %q not registered", name)
		}
		s, _ := scenario.Lookup(name)
		if s == nil || s.Desc == "" {
			t.Errorf("scenario %q has no description for `symbiosim list`", name)
		}
	}
}
