package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// Regenerate the golden CSVs with:
//
//	go test ./internal/exp -run TestCSVGolden -update
var update = flag.Bool("update", false, "rewrite the golden CSV files")

// goldenCSVs runs every CSV-capable driver on a fresh tiny Env at the
// given parallelism and writes the files into dir. The driver set covers
// fig1-fig6, both tables, makespan, the farm grid and the online
// knowledge-gap sweep.
func goldenCSVs(t *testing.T, dir string, parallelism int) []string {
	t.Helper()
	e := tinyEnv(parallelism)

	var names []string
	emit := func(name string, result any) {
		t.Helper()
		ok, err := WriteCSV(dir, name, result)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Fatalf("%s: type %T not CSV-capable", name, result)
		}
		names = append(names, name+".csv")
	}

	f1, err := Fig1(e)
	if err != nil {
		t.Fatal(err)
	}
	emit("fig1", f1)
	f2s, f2q, err := Fig2(e)
	if err != nil {
		t.Fatal(err)
	}
	emit(CSVName("fig2", "smt"), f2s)
	emit(CSVName("fig2", "quad"), f2q)
	f3s, f3q, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	emit(CSVName("fig3", "smt"), f3s)
	emit(CSVName("fig3", "quad"), f3q)
	f4, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	emit("fig4", f4)
	f5, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	emit("fig5", f5)
	f6, err := Fig6(e)
	if err != nil {
		t.Fatal(err)
	}
	emit("fig6", f6)
	emit("table1", Table1(e))
	t2s, t2q, err := Table2(e)
	if err != nil {
		t.Fatal(err)
	}
	emit(CSVName("table2", "smt"), t2s)
	emit(CSVName("table2", "quad"), t2q)
	mk, err := MakespanExperiment(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	emit("makespan8", mk)
	fr, err := Farm(e, FarmOptions{Servers: 2, Replications: 2})
	if err != nil {
		t.Fatal(err)
	}
	emit("farm", fr)
	on, err := Online(e, OnlineOptions{Workloads: 3})
	if err != nil {
		t.Fatal(err)
	}
	emit("online", on)
	return names
}

// TestCSVGolden pins the actual figure content, not just its determinism:
// every CSV driver's output must be byte-identical to the committed golden
// files, at Parallelism 1 and at NumCPU. A real change to the models or
// simulators shows up as a golden diff to be reviewed and regenerated
// with -update.
func TestCSVGolden(t *testing.T) {
	goldenDir := filepath.Join("testdata", "golden")

	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		goldenCSVs(t, goldenDir, 1)
		t.Log("golden CSVs rewritten")
		return
	}

	// Pool of NumCPU, but at least 8 so single-core machines still
	// exercise a genuinely concurrent pool.
	wide := runtime.NumCPU()
	if wide < 8 {
		wide = 8
	}
	for _, p := range []int{1, wide} {
		t.Run(fmt.Sprintf("parallel=%d", p), func(t *testing.T) {
			dir := t.TempDir()
			for _, name := range goldenCSVs(t, dir, p) {
				got, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(filepath.Join(goldenDir, name))
				if err != nil {
					t.Fatalf("%s: %v (regenerate with -update)", name, err)
				}
				if string(got) != string(want) {
					t.Errorf("%s differs from golden file (regenerate with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
						name, got, want)
				}
			}
		})
	}
}
