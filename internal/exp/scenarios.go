package exp

import (
	"context"
	"fmt"

	"symbiosched/internal/scenario"
)

// planner adapts an Env-typed plan builder to the engine's opaque-Env
// signature with one cast at the boundary.
func planner(build func(e *Env) (*scenario.Plan, error)) func(context.Context, scenario.Env) (*scenario.Plan, error) {
	return func(_ context.Context, env scenario.Env) (*scenario.Plan, error) {
		e, ok := env.(*Env)
		if !ok {
			return nil, fmt.Errorf("exp: scenario environment is %T, want *exp.Env", env)
		}
		return build(e)
	}
}

// simple wraps a driver without a swept grid as a one-cell scenario: the
// driver's own fan-outs (suite sweeps, perfdb builds) already run through
// the Env's runner configuration, so the engine contributes the uniform
// Result, registry dispatch and CSV path. tables lists the driver's CSV
// outputs (nil for text-only studies).
func simple(name, desc string, run func(e *Env) (*scenario.Result, error)) *scenario.Scenario {
	return &scenario.Scenario{
		Name: name,
		Desc: desc,
		Plan: planner(func(e *Env) (*scenario.Plan, error) {
			return &scenario.Plan{
				Cell: func(context.Context, scenario.Point) (any, error) {
					return run(e)
				},
				Reduce: func(cells []any) (*scenario.Result, error) {
					return cells[0].(*scenario.Result), nil
				},
			}, nil
		}),
	}
}

// tabled builds a one-table Result from a typed driver result.
func tabled(value any, text, tableName string) (*scenario.Result, error) {
	tbl, err := resultTable(tableName, value)
	if err != nil {
		return nil, err
	}
	return &scenario.Result{Value: value, Text: text, Tables: []*scenario.Table{tbl}}, nil
}

// gridScenario wraps an Env-typed plan builder (whose Reduce already
// produces the full Result) under a registry name.
func gridScenario(name, desc string, build func(e *Env) (*scenario.Plan, error)) *scenario.Scenario {
	return &scenario.Scenario{Name: name, Desc: desc, Plan: planner(build)}
}

// FarmScenario is the server-farm grid under configurable options; the
// registered "farm" scenario uses the defaults, tests pin tiny variants.
func FarmScenario(opt FarmOptions) *scenario.Scenario {
	return gridScenario("farm",
		"server farm: dispatcher x load grid, mean/P95 turnaround and utilisation",
		func(e *Env) (*scenario.Plan, error) { return farmPlan(e, opt, "farm") })
}

// OnlineScenario is the knowledge-gap grid under configurable options.
func OnlineScenario(opt OnlineOptions) *scenario.Scenario {
	return gridScenario("online",
		"knowledge gap: online estimators (sampler, pairwise) vs the oracle table",
		func(e *Env) (*scenario.Plan, error) { return onlinePlan(e, opt) })
}

// Fig5Scenario is the Section VI latency grid.
func Fig5Scenario() *scenario.Scenario {
	return gridScenario("fig5",
		"Figure 5: latency experiment, four schedulers at three loads (SMT)",
		fig5Plan)
}

// Fig6Scenario is the max-throughput grid.
func Fig6Scenario() *scenario.Scenario {
	return gridScenario("fig6",
		"Figure 6: max-throughput experiment vs the LP bounds (SMT)",
		fig6Plan)
}

// RunScenario looks the named scenario up in the registry and executes it
// over e with the Env's parallelism and progress wiring.
func RunScenario(ctx context.Context, e *Env, name string) (*scenario.Result, error) {
	s, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown scenario %q", name)
	}
	return s.Run(ctx, e, e.runCfg(name))
}

// init registers every study — the paper's tables and figures first, then
// the extensions — so cmd/symbiosim, the golden CSV tests and any other
// consumer dispatch off one list.
func init() {
	scenario.Register(simple("table1",
		"Table I: the selected benchmarks and their characteristics",
		func(e *Env) (*scenario.Result, error) {
			rows := Table1(e)
			return tabled(rows, FormatTable1(rows), "table1")
		}))
	scenario.Register(simple("fig1",
		"Figure 1: variability of job IPC, instantaneous and average throughput",
		func(e *Env) (*scenario.Result, error) {
			r, err := Fig1(e)
			if err != nil {
				return nil, err
			}
			return tabled(r, r.Format(), "fig1")
		}))
	scenario.Register(simple("fig2",
		"Figure 2: FCFS vs optimal scheduling, one point per workload",
		func(e *Env) (*scenario.Result, error) {
			smt, quad, err := Fig2(e)
			if err != nil {
				return nil, err
			}
			ts, err := resultTable("fig2_smt", smt)
			if err != nil {
				return nil, err
			}
			tq, err := resultTable("fig2_quad", quad)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: []*Fig2Result{smt, quad},
				Text: smt.Format() + quad.Format(), Tables: []*scenario.Table{ts, tq}}, nil
		}))
	scenario.Register(simple("fig3",
		"Figure 3: throughput spread vs the linear-bottleneck model error",
		func(e *Env) (*scenario.Result, error) {
			smt, quad, err := Fig3(e)
			if err != nil {
				return nil, err
			}
			ts, err := resultTable("fig3_smt", smt)
			if err != nil {
				return nil, err
			}
			tq, err := resultTable("fig3_quad", quad)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: []*Fig3Result{smt, quad},
				Text: smt.Format() + quad.Format(), Tables: []*scenario.Table{ts, tq}}, nil
		}))
	scenario.Register(simple("table2",
		"Table II: throughput and scheduler time fractions by heterogeneity",
		func(e *Env) (*scenario.Result, error) {
			smt, quad, err := Table2(e)
			if err != nil {
				return nil, err
			}
			ts, err := resultTable("table2_smt", smt)
			if err != nil {
				return nil, err
			}
			tq, err := resultTable("table2_quad", quad)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: []*Table2Result{smt, quad},
				Text: smt.Format() + quad.Format(), Tables: []*scenario.Table{ts, tq}}, nil
		}))
	scenario.Register(simple("n8",
		"Section V-B: optimal-scheduler gains with eight job types",
		func(e *Env) (*scenario.Result, error) {
			r, err := N8(e)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: r, Text: r.Format()}, nil
		}))
	scenario.Register(simple("fairness",
		"Section V-D: the fairness counterfactual (equalised co-run rates)",
		func(e *Env) (*scenario.Result, error) {
			r, err := Fairness(e)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: r, Text: r.Format()}, nil
		}))
	scenario.Register(simple("fig4",
		"Figure 4: analytic M/M/4 turnaround-vs-arrival-rate curves",
		func(e *Env) (*scenario.Result, error) {
			r, err := Fig4(e)
			if err != nil {
				return nil, err
			}
			return tabled(r, r.Format(), "fig4")
		}))
	scenario.Register(Fig5Scenario())
	scenario.Register(Fig6Scenario())
	scenario.Register(simple("uarch",
		"Section VII: SMT fetch/ROB policy study under optimal throughput",
		func(e *Env) (*scenario.Result, error) {
			r, err := Uarch(e)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: r, Text: r.Format()}, nil
		}))
	scenario.Register(simple("makespan",
		"makespan extension: small-batch scheduling a la Settle/Xu",
		func(e *Env) (*scenario.Result, error) {
			small, err := MakespanExperiment(e, 8)
			if err != nil {
				return nil, err
			}
			large, err := MakespanExperiment(e, 16)
			if err != nil {
				return nil, err
			}
			tbl, err := resultTable("makespan8", small)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: small,
				Text: small.Format() + large.Format(), Tables: []*scenario.Table{tbl}}, nil
		}))
	scenario.Register(FarmScenario(FarmOptions{}))
	scenario.Register(OnlineScenario(OnlineOptions{}))
	scenario.Register(HetfarmScenario())
	scenario.Register(MegafarmScenario())
	scenario.Register(BurstScenario())
	scenario.Register(SLOScenario())
	scenario.Register(ResilienceScenario())
}
