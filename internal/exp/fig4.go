package exp

import (
	"fmt"
	"strings"

	"symbiosched/internal/queueing"
)

// Fig4Result reproduces Figure 4 and the Section VI M/M/4 example: the
// turnaround-time-vs-arrival-rate curve with its asymptote at the maximum
// throughput, and how a small service-rate increase shifts it.
type Fig4Result struct {
	// Base and Improved are the curves for mu = 1 and mu = 1.03 (the
	// paper's "3% increase in maximum throughput").
	Base, Improved []queueing.TurnaroundCurvePoint
	// Example reproduces the quoted numbers: lambda=3.5, mu=1 vs mu=1.03.
	ExampleBaseJobs, ExampleBaseTurnaround         float64
	ExampleImprovedJobs, ExampleImprovedTurnaround float64
	// TurnaroundReduction is the relative turnaround reduction at fixed
	// lambda (paper: 16%).
	TurnaroundReduction float64
}

// Fig4 evaluates the analytic M/M/4 model.
func Fig4(e *Env) (*Fig4Result, error) {
	const c = 4
	base, err := queueing.TurnaroundCurve(1.0, c, 30, 0.05, 0.97)
	if err != nil {
		return nil, err
	}
	improved, err := queueing.TurnaroundCurve(1.03, c, 30, 0.05, 0.97)
	if err != nil {
		return nil, err
	}
	r := &Fig4Result{Base: base, Improved: improved}
	q1 := queueing.MMC{Lambda: 3.5, Mu: 1, C: c}
	q2 := queueing.MMC{Lambda: 3.5, Mu: 1.03, C: c}
	if r.ExampleBaseJobs, err = q1.MeanJobs(); err != nil {
		return nil, err
	}
	if r.ExampleBaseTurnaround, err = q1.MeanTurnaround(); err != nil {
		return nil, err
	}
	if r.ExampleImprovedJobs, err = q2.MeanJobs(); err != nil {
		return nil, err
	}
	if r.ExampleImprovedTurnaround, err = q2.MeanTurnaround(); err != nil {
		return nil, err
	}
	r.TurnaroundReduction = 1 - r.ExampleImprovedTurnaround/r.ExampleBaseTurnaround
	return r, nil
}

// Format renders the curve and the worked example.
func (r *Fig4Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: turnaround time vs arrival rate (M/M/4)\n")
	fmt.Fprintf(&b, "  lambda   W(mu=1)   W(mu=1.03)\n")
	for i := range r.Base {
		if i%3 != 0 {
			continue
		}
		fmt.Fprintf(&b, "  %6.3f  %8.3f  %8.3f\n", r.Base[i].Lambda, r.Base[i].Turnaround, r.Improved[i].Turnaround)
	}
	fmt.Fprintf(&b, "Section VI example (lambda=3.5, mu=1 -> 1.03):\n")
	fmt.Fprintf(&b, "  jobs in system: %.1f -> %.1f   [paper: 8.7 -> 7.3]\n", r.ExampleBaseJobs, r.ExampleImprovedJobs)
	fmt.Fprintf(&b, "  turnaround:     %.1f -> %.1f   [paper: 2.5 -> 2.1]\n", r.ExampleBaseTurnaround, r.ExampleImprovedTurnaround)
	fmt.Fprintf(&b, "  reduction:      %.0f%%          [paper: 16%%]\n", 100*r.TurnaroundReduction)
	return b.String()
}
