package exp

import (
	"fmt"
	"strings"
)

// Table1Row characterises one benchmark of Table I on both machines.
type Table1Row struct {
	ID               string
	SoloIPCSMT       float64
	SoloIPCQuad      float64
	BranchMPKI       float64
	MemMPKISolo      float64 // misses to memory at the full SMT cache
	CacheSensitivity float64 // miss-rate reduction from a 1/4 share to full cache
}

// Table1 lists the selected benchmarks with their key characteristics —
// the paper's Table I plus the interference-coverage data the selection
// was based on.
func Table1(e *Env) []Table1Row {
	smt := e.SMTTable()
	quad := e.QuadTable()
	suite := e.Cfg.Suite
	full := float64(e.Cfg.SMT.SharedCacheKB)
	rows := make([]Table1Row, len(suite))
	for i := range suite {
		p := &suite[i]
		rows[i] = Table1Row{
			ID:               p.ID(),
			SoloIPCSMT:       smt.Solo[i],
			SoloIPCQuad:      quad.Solo[i],
			BranchMPKI:       p.BranchMPKI,
			MemMPKISolo:      p.MemMPKI(full),
			CacheSensitivity: p.CacheSensitivity(full/4, full),
		}
	}
	return rows
}

// FormatTable1 renders the benchmark table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: selected SPEC CPU 2006 benchmarks (synthetic profiles)\n")
	fmt.Fprintf(&b, "  %-22s %9s %9s %8s %8s %9s\n", "benchmark", "soloIPC", "soloIPC", "brMPKI", "memMPKI", "cacheSens")
	fmt.Fprintf(&b, "  %-22s %9s %9s %8s %8s %9s\n", "", "(SMT)", "(quad)", "", "(solo)", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %9.3f %9.3f %8.1f %8.1f %8.0f%%\n",
			r.ID, r.SoloIPCSMT, r.SoloIPCQuad, r.BranchMPKI, r.MemMPKISolo, 100*r.CacheSensitivity)
	}
	return b.String()
}
