package exp

import (
	"fmt"
	"strings"

	"symbiosched/internal/core"
	"symbiosched/internal/stats"
)

// Fig3Point is one workload in the Figure 3 scatter: throughput
// variability against the linear-bottleneck least-squares error, coloured
// by the per-type WIPC difference.
type Fig3Point struct {
	Workload      string
	BottleneckErr float64 // X axis
	OptVsWorst    float64 // Y axis
	TypeWIPCDiff  float64 // colour
}

// Fig3Result reproduces Figure 3 for one configuration.
type Fig3Result struct {
	Name string
	// Corr is the Pearson correlation between the X and Y axes; the paper
	// reports "a fairly good correlation, more so for the quad-core".
	Corr float64
	// LowDiffCorr restricts the correlation to the workloads whose
	// per-type WIPC difference is below the suite median — the paper notes
	// "points with smaller IPC differences show good correlation".
	LowDiffCorr float64
	Points      []Fig3Point
}

// Fig3 computes the bottleneck scatter for both configurations.
func Fig3(e *Env) (smt, quad *Fig3Result, err error) {
	ssweep, err := e.SMTSweep()
	if err != nil {
		return nil, nil, err
	}
	qsweep, err := e.QuadSweep()
	if err != nil {
		return nil, nil, err
	}
	smt = buildFig3(e.SMTTable().Name(), ssweep)
	quad = buildFig3(e.QuadTable().Name(), qsweep)
	return smt, quad, nil
}

func buildFig3(name string, sa *core.SuiteAnalysis) *Fig3Result {
	r := &Fig3Result{Name: name, Corr: sa.BottleneckCorr}
	var diffs []float64
	for _, a := range sa.Workloads {
		r.Points = append(r.Points, Fig3Point{
			Workload:      a.Workload.Key(),
			BottleneckErr: a.BottleneckErr,
			OptVsWorst:    a.OptimalTP / a.WorstTP,
			TypeWIPCDiff:  a.TypeWIPCDiff,
		})
		diffs = append(diffs, a.TypeWIPCDiff)
	}
	median := stats.Quantile(diffs, 0.5)
	var xs, ys []float64
	for _, p := range r.Points {
		if p.TypeWIPCDiff <= median {
			xs = append(xs, p.BottleneckErr)
			ys = append(ys, p.OptVsWorst)
		}
	}
	if len(xs) >= 2 {
		_, _, r.LowDiffCorr = stats.LinearFit(xs, ys)
	}
	return r
}

// Format renders the correlation summary and binned scatter.
func (r *Fig3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (%s): opt/worst throughput vs linear-bottleneck least-squares error\n", r.Name)
	fmt.Fprintf(&b, "  correlation: %.2f (low per-type-WIPC-diff workloads: %.2f)   [paper: \"fairly good correlation, more so for the quad-core\"]\n",
		r.Corr, r.LowDiffCorr)
	var maxErr float64
	for _, p := range r.Points {
		if p.BottleneckErr > maxErr {
			maxErr = p.BottleneckErr
		}
	}
	const bins = 8
	if maxErr == 0 {
		maxErr = 1e-12
	}
	sum := make([]float64, bins)
	diff := make([]float64, bins)
	cnt := make([]int, bins)
	for _, p := range r.Points {
		bin := int(float64(bins) * p.BottleneckErr / maxErr)
		if bin == bins {
			bin--
		}
		sum[bin] += p.OptVsWorst
		diff[bin] += p.TypeWIPCDiff
		cnt[bin]++
	}
	fmt.Fprintf(&b, "  eps^2 bin -> mean opt/worst, mean WIPC diff (n)\n")
	for i := 0; i < bins; i++ {
		if cnt[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  [%.4f, %.4f): %.3f, %.3f (%d)\n",
			maxErr*float64(i)/bins, maxErr*float64(i+1)/bins,
			sum[i]/float64(cnt[i]), diff[i]/float64(cnt[i]), cnt[i])
	}
	return b.String()
}
