package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/core"
	"symbiosched/internal/eventsim"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/scenario"
	"symbiosched/internal/sched"
)

// OnlineLoads are the default offered loads of the knowledge-gap
// experiment, relative to each workload's FCFS maximum throughput.
var OnlineLoads = []float64{0.5, 0.8, 0.9}

// OnlineOptions parameterises the knowledge-gap experiment grid.
type OnlineOptions struct {
	// Estimators defaults to every built-in estimator (online.Names).
	Estimators []string
	// Loads defaults to OnlineLoads.
	Loads []float64
	// Workloads caps the number of sampled N=4 workloads per machine
	// (default 8); each grid cell averages over them.
	Workloads int
	// Sched is the scheduler run over each estimator (default "MAXIT",
	// the paper's throughput-greedy policy and the one whose quality
	// depends entirely on the rate knowledge).
	Sched string
}

func (o OnlineOptions) withDefaults() OnlineOptions {
	if len(o.Estimators) == 0 {
		o.Estimators = online.Names
	}
	if len(o.Loads) == 0 {
		o.Loads = OnlineLoads
	}
	if o.Workloads <= 0 {
		o.Workloads = 8
	}
	if o.Sched == "" {
		o.Sched = "MAXIT"
	}
	return o
}

// OnlineCell is one (machine, estimator, load) aggregate.
type OnlineCell struct {
	Machine   string
	Estimator string
	Load      float64
	// Turnaround and Throughput are means over workloads.
	Turnaround float64
	Throughput float64
	// TurnaroundVsOracle and ThroughputVsOracle are the same runs
	// normalised, per workload, to the oracle estimator under identical
	// arrivals (common random numbers): the price of learning.
	TurnaroundVsOracle float64
	ThroughputVsOracle float64
}

// OnlineResult is the knowledge-gap experiment: how close schedulers that
// must discover co-run rates at run time come to the paper's
// perfect-knowledge oracle, as load grows.
type OnlineResult struct {
	Sched     string
	Workloads int
	// Cells are ordered machine-major (smt then quad), then estimator,
	// then load.
	Cells []OnlineCell
}

// onlineAcc is one (estimator, load) cell's contribution while folding
// (machine, workload) items.
type onlineAcc struct{ turn, tp, turnRel, tpRel float64 }

// onlinePlan lays the knowledge-gap experiment out on the scenario
// engine: the grid is machine x sampled workload (each cell runs the
// scheduler once per estimator and load under identical arrivals), and
// the reduction folds cells in enumeration order, so the grid — and the
// golden CSV — is byte-identical at any parallelism level.
func onlinePlan(e *Env, opt OnlineOptions) (*scenario.Plan, error) {
	opt = opt.withDefaults()
	type machine struct {
		name string
		t    *perfdb.Table
	}
	machines := []machine{{"smt", e.SMTTable()}, {"quad", e.QuadTable()}}

	ws := e.sampledWorkloads()
	if len(ws) > opt.Workloads {
		step := len(ws) / opt.Workloads
		thinned := ws[:0:0]
		for i := 0; i < len(ws) && len(thinned) < opt.Workloads; i += step {
			thinned = append(thinned, ws[i])
		}
		ws = thinned
	}

	// One (machine, workload) item's contribution: [estimator][load]. The
	// linear index idx = mi*len(ws)+wi matches the engine's row-major
	// enumeration of the (machine, workload) axes, so the legacy
	// idx-derived seeds are unchanged.
	perItem := func(idx int) ([][]onlineAcc, error) {
		mi, wi := idx/len(ws), idx%len(ws)
		m, w := machines[mi], ws[wi]
		base := core.FCFS(m.t, w, core.FCFSConfig{Jobs: e.Cfg.FCFSJobs, Seed: e.Cfg.Seed}).Throughput
		if base <= 0 {
			return nil, fmt.Errorf("online: workload %v has no FCFS throughput", w)
		}
		local := make([][]onlineAcc, len(opt.Estimators))
		for i := range local {
			local[i] = make([]onlineAcc, len(opt.Loads))
		}
		for li, load := range opt.Loads {
			runOne := func(name string) (*eventsim.Result, error) {
				est, err := online.New(name, m.t, e.Cfg.Seed+uint64(idx)*0x9e3779b97f4a7c15+uint64(li))
				if err != nil {
					return nil, err
				}
				s, err := sched.New(opt.Sched, est, w)
				if err != nil {
					return nil, err
				}
				// Identical arrival/job streams for every estimator
				// (common random numbers): the seed depends only on the
				// grid position, never on the estimator.
				return eventsim.LatencyObserved(m.t, w, s, est, eventsim.LatencyConfig{
					Lambda:    load * base,
					Jobs:      e.Cfg.SimJobs,
					SizeShape: 4,
					Seed:      e.Cfg.Seed + uint64(idx)*31 + uint64(li),
				})
			}
			oracle, err := runOne("oracle")
			if err != nil {
				return nil, fmt.Errorf("online %s %v load %.2f oracle: %w", m.name, w, load, err)
			}
			for ei, name := range opt.Estimators {
				res := oracle
				if name != "oracle" {
					if res, err = runOne(name); err != nil {
						return nil, fmt.Errorf("online %s %v load %.2f %s: %w", m.name, w, load, name, err)
					}
				}
				a := onlineAcc{turn: res.MeanTurnaround, tp: res.Throughput, turnRel: 1, tpRel: 1}
				if oracle.MeanTurnaround > 0 {
					a.turnRel = res.MeanTurnaround / oracle.MeanTurnaround
				}
				if oracle.Throughput > 0 {
					a.tpRel = res.Throughput / oracle.Throughput
				}
				local[ei][li] = a
			}
		}
		return local, nil
	}

	machineNames := make([]string, len(machines))
	for i, m := range machines {
		machineNames[i] = m.name
	}
	return &scenario.Plan{
		Axes: []scenario.Axis{
			{Name: "machine", Values: machineNames},
			{Name: "workload", Values: workloadLabels(ws)},
		},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			local, err := perItem(pt.Index("machine")*len(ws) + pt.Index("workload"))
			if err != nil {
				return nil, err
			}
			return local, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			// accs[machine][estimator][load], folded in item order.
			accs := make([][][]onlineAcc, len(machines))
			for mi := range accs {
				accs[mi] = make([][]onlineAcc, len(opt.Estimators))
				for ei := range accs[mi] {
					accs[mi][ei] = make([]onlineAcc, len(opt.Loads))
				}
			}
			for idx, c := range cells {
				mi := idx / len(ws)
				local := c.([][]onlineAcc)
				for ei := range local {
					for li := range local[ei] {
						accs[mi][ei][li].turn += local[ei][li].turn
						accs[mi][ei][li].tp += local[ei][li].tp
						accs[mi][ei][li].turnRel += local[ei][li].turnRel
						accs[mi][ei][li].tpRel += local[ei][li].tpRel
					}
				}
			}
			r := &OnlineResult{Sched: opt.Sched, Workloads: len(ws)}
			n := float64(len(ws))
			for mi, m := range machines {
				for ei, name := range opt.Estimators {
					for li, load := range opt.Loads {
						a := accs[mi][ei][li]
						r.Cells = append(r.Cells, OnlineCell{
							Machine:            m.name,
							Estimator:          name,
							Load:               load,
							Turnaround:         a.turn / n,
							Throughput:         a.tp / n,
							TurnaroundVsOracle: a.turnRel / n,
							ThroughputVsOracle: a.tpRel / n,
						})
					}
				}
			}
			tbl, err := resultTable("online", r)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: r, Text: r.Format(), Tables: []*scenario.Table{tbl}}, nil
		},
	}, nil
}

// Online runs the knowledge-gap experiment on the SMT and quad-core
// machines: for every sampled workload and load, the chosen scheduler is
// run once per estimator — oracle knowledge, SOS-style sampling, and the
// pairwise interference model — under identical Poisson arrivals, and
// turnaround/throughput are reported relative to the oracle run.
func Online(e *Env, opt OnlineOptions) (*OnlineResult, error) {
	p, err := onlinePlan(e, opt)
	if err != nil {
		return nil, err
	}
	res, err := p.Execute(context.Background(), e.runCfg("online"))
	if err != nil {
		return nil, err
	}
	return res.Value.(*OnlineResult), nil
}

// Cell returns the aggregate for a machine, estimator and load.
func (r *OnlineResult) Cell(machine, estimator string, load float64) (OnlineCell, bool) {
	for _, c := range r.Cells {
		if c.Machine == machine && c.Estimator == estimator && c.Load == load {
			return c, true
		}
	}
	return OnlineCell{}, false
}

// machines returns the distinct machines in first-seen order.
func (r *OnlineResult) machines() []string {
	return scenario.Distinct(r.Cells, func(c OnlineCell) string { return c.Machine })
}

// estimators returns the distinct estimators in first-seen order.
func (r *OnlineResult) estimators() []string {
	return scenario.Distinct(r.Cells, func(c OnlineCell) string { return c.Estimator })
}

// loads returns the distinct loads in first-seen order.
func (r *OnlineResult) loads() []float64 {
	return scenario.Distinct(r.Cells, func(c OnlineCell) float64 { return c.Load })
}

// Format renders the knowledge-gap grids: per machine, turnaround and
// throughput relative to the perfect-knowledge oracle.
func (r *OnlineResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Knowledge gap (%s over learned rates, %d workloads): online estimators vs the oracle table\n",
		r.Sched, r.Workloads)
	loads := r.loads()
	for _, m := range r.machines() {
		fmt.Fprintf(&b, "  %s machine\n", m)
		panel := func(title string, get func(OnlineCell) float64) {
			fmt.Fprintf(&b, "    %s\n            ", title)
			for _, l := range loads {
				fmt.Fprintf(&b, "  load=%.2f", l)
			}
			fmt.Fprintln(&b)
			for _, est := range r.estimators() {
				fmt.Fprintf(&b, "    %-8s", est)
				for _, l := range loads {
					c, _ := r.Cell(m, est, l)
					fmt.Fprintf(&b, "  %9.3f", get(c))
				}
				fmt.Fprintln(&b)
			}
		}
		panel("turnaround vs oracle (1 = perfect knowledge; lower is better)",
			func(c OnlineCell) float64 { return c.TurnaroundVsOracle })
		panel("throughput vs oracle (1 = perfect knowledge; higher is better)",
			func(c OnlineCell) float64 { return c.ThroughputVsOracle })
	}
	return b.String()
}
