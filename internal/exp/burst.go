package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/farm"
	"symbiosched/internal/scenario"
)

// burstPatterns are the arrival-rate shapes of the burst scenario. All
// patterns offer the same mean load; a factor-f burst concentrates it
// into on-phases of rate f times the mean covering 1/f of each cycle,
// with silence in between.
var burstPatterns = []struct {
	Name   string
	Factor float64
}{
	{"steady", 1},
	{"burst2", 2},
	{"burst4", 4},
}

// burstCycle is the schedule period in simulated time units — long
// enough that an on-phase spans many job services, so bursts build real
// queues rather than averaging out.
const burstCycle = 40.0

// burstLoad is the mean offered load relative to farm capacity.
const burstLoad = 0.7

// BurstScenario opens the time-varying-load question: how much do bursty
// arrivals — the same mean load concentrated into on/off cycles — inflate
// mean and tail turnaround, and does symbiosis-aware dispatch (li) retain
// its edge over queue-length dispatch (jsq) under them? It exercises the
// farm.Config.Schedule rate schedule threaded through the arrival loop.
func BurstScenario() *scenario.Scenario {
	return gridScenario("burst",
		"time-varying load: on/off arrival bursts at equal mean load, jsq vs li dispatch",
		burstPlan)
}

func burstPlan(e *Env) (*scenario.Plan, error) {
	const servers = 4
	const reps = 3
	dispatchers := []string{"jsq", "li"}
	w := farmWorkload(e)
	specs, capacity, err := fcfsFarm(e, servers, false)
	if err != nil {
		return nil, err
	}
	lambda := burstLoad * capacity
	patternNames := make([]string, len(burstPatterns))
	for i, p := range burstPatterns {
		patternNames[i] = p.Name
	}

	return &scenario.Plan{
		Axes: []scenario.Axis{
			{Name: "pattern", Values: patternNames},
			{Name: "dispatcher", Values: dispatchers},
			{Name: "rep", Values: repLabels(reps)},
		},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			pat := burstPatterns[pt.Index("pattern")]
			cfg := farm.Config{
				Lambda:    lambda,
				Jobs:      e.Cfg.SimJobs,
				SizeShape: 4,
				// The base seed carries no axis at all — Replicate derives
				// the per-replication stream from the rep index — so every
				// (pattern, dispatcher) cell of a replication draws from
				// the same streams and pattern effects are paired, not
				// confounded with noise.
				Seed: e.Cfg.Seed,
			}
			if pat.Factor > 1 {
				on := burstCycle / pat.Factor
				cfg.Schedule = []farm.Phase{
					{Duration: on, Rate: pat.Factor * lambda},
					{Duration: burstCycle - on, Rate: 0},
				}
			}
			rep, err := farm.Replicate(specs, pt.Value("dispatcher"), w, cfg, pt.Index("rep"))
			if err != nil {
				return nil, fmt.Errorf("burst %s %s: %w", pat.Name, pt.Value("dispatcher"), err)
			}
			return rep, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			tbl := scenario.NewTable("burst",
				scenario.StrCol("pattern"), scenario.StrCol("dispatcher"),
				scenario.FloatCol("mean_turnaround"), scenario.FloatCol("p50_turnaround"),
				scenario.FloatCol("p99_turnaround"), scenario.FloatCol("turnaround_std"),
				scenario.FloatCol("utilisation"))
			aggs := foldReps(cells, reps)
			p99 := map[string]map[string]float64{}
			ci := 0
			for _, pat := range burstPatterns {
				p99[pat.Name] = map[string]float64{}
				for _, disp := range dispatchers {
					a := aggs[ci]
					ci++
					tbl.Add(pat.Name, disp, a.MeanTurnaround, a.P50Turnaround,
						a.P99Turnaround, a.TurnaroundStd, a.Utilisation)
					p99[pat.Name][disp] = a.P99Turnaround
				}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Bursty arrivals (%d SMT servers, FCFS per server, mean load %.2f, cycle %g, %d replications/cell)\n",
				servers, burstLoad, burstCycle, reps)
			b.WriteString(tbl.Text())
			for _, disp := range dispatchers {
				if base := p99["steady"][disp]; base > 0 {
					fmt.Fprintf(&b, "  %s: p99 turnaround inflates %.1fx under burst2, %.1fx under burst4\n",
						disp, p99["burst2"][disp]/base, p99["burst4"][disp]/base)
				}
			}
			return &scenario.Result{Value: tbl, Text: b.String(), Tables: []*scenario.Table{tbl}}, nil
		},
	}, nil
}
