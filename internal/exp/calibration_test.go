package exp

import (
	"sync"
	"testing"

	"symbiosched/internal/core"
)

// Calibration tests: run the full 495-workload sweep (with the fast Markov
// FCFS reference) on the real 12-benchmark suite and pin the paper-shape
// properties of the headline statistics. These are deliberately loose
// bands — they catch regressions that would invert the paper's findings,
// not absolute-number drift. EXPERIMENTS.md records the precise values.

var (
	calOnce             sync.Once
	calSMT, calQuad     *core.SuiteAnalysis
	calSMTT2, calQuadT2 []core.HeteroClass
	calErr              error
)

func calibration(t *testing.T) (*core.SuiteAnalysis, *core.SuiteAnalysis) {
	t.Helper()
	if testing.Short() {
		t.Skip("full-suite calibration sweep is slow")
	}
	calOnce.Do(func() {
		e := NewEnv(DefaultConfig())
		calSMT, calErr = core.AnalyzeSuite(e.SMTTable(), 4, core.AnalyzeConfig{UseMarkovFCFS: true})
		if calErr != nil {
			return
		}
		calQuad, calErr = core.AnalyzeSuite(e.QuadTable(), 4, core.AnalyzeConfig{UseMarkovFCFS: true})
		if calErr != nil {
			return
		}
		calSMTT2 = core.HeterogeneityTable(e.SMTTable(), calSMT.Workloads)
		calQuadT2 = core.HeterogeneityTable(e.QuadTable(), calQuad.Workloads)
	})
	if calErr != nil {
		t.Fatal(calErr)
	}
	return calSMT, calQuad
}

func TestCalibrationHeadlineFinding(t *testing.T) {
	smt, quad := calibration(t)
	for name, sa := range map[string]*core.SuiteAnalysis{"SMT": smt, "quad": quad} {
		// The paper's headline: per-job and per-coschedule variability far
		// exceed the scheduler's impact on average throughput.
		if sa.JobIPC.Variability() < 2*sa.AvgTP.Variability() {
			t.Errorf("%s: job IPC variability %.1f%% not >> avg TP variability %.1f%%",
				name, 100*sa.JobIPC.Variability(), 100*sa.AvgTP.Variability())
		}
		if sa.InstTP.Variability() < 2*sa.AvgTP.Variability() {
			t.Errorf("%s: inst TP variability %.1f%% not >> avg TP variability %.1f%%",
				name, 100*sa.InstTP.Variability(), 100*sa.AvgTP.Variability())
		}
		// Optimal gain over FCFS is positive but small (paper: 3-6%).
		if sa.AvgTP.AvgBest <= 0 || sa.AvgTP.AvgBest > 0.10 {
			t.Errorf("%s: optimal gain %.1f%% outside the paper's small-gain regime",
				name, 100*sa.AvgTP.AvgBest)
		}
		// The worst scheduler loses more than the optimal gains (paper:
		// -9% vs +3% on SMT).
		if -sa.AvgTP.AvgWorst < sa.AvgTP.AvgBest {
			t.Errorf("%s: worst loss %.1f%% should exceed optimal gain %.1f%%",
				name, -100*sa.AvgTP.AvgWorst, 100*sa.AvgTP.AvgBest)
		}
	}
}

func TestCalibrationFCFSBridgesGap(t *testing.T) {
	smt, quad := calibration(t)
	// Paper: FCFS closes 76% (SMT) / 63% (quad) of the worst-to-best gap,
	// with Figure 2 slopes 0.73 / 0.56.
	for name, sa := range map[string]*core.SuiteAnalysis{"SMT": smt, "quad": quad} {
		if sa.GapBridge < 0.55 || sa.GapBridge > 0.95 {
			t.Errorf("%s: FCFS bridges %.0f%% of the gap, paper band 55-95%%", name, 100*sa.GapBridge)
		}
		if sa.Slope < 0.45 || sa.Slope > 0.95 {
			t.Errorf("%s: Figure 2 slope %.2f outside the paper band", name, sa.Slope)
		}
	}
}

func TestCalibrationBottleneckCorrelation(t *testing.T) {
	smt, quad := calibration(t)
	// Paper: "fairly good correlation, and more so for the quad-core".
	if smt.BottleneckCorr < 0.5 {
		t.Errorf("SMT bottleneck correlation %.2f too weak", smt.BottleneckCorr)
	}
	if quad.BottleneckCorr < smt.BottleneckCorr-0.05 {
		t.Errorf("quad correlation %.2f should be at least SMT's %.2f",
			quad.BottleneckCorr, smt.BottleneckCorr)
	}
}

func TestCalibrationHeterogeneityMonotone(t *testing.T) {
	calibration(t)
	for name, rows := range map[string][]core.HeteroClass{"SMT": calSMTT2, "quad": calQuadT2} {
		// Table II: instantaneous throughput rises with heterogeneity.
		for i := 1; i < len(rows); i++ {
			if rows[i].AvgInstTP < rows[i-1].AvgInstTP {
				t.Errorf("%s: inst TP not monotone in heterogeneity: %+v", name, rows)
				break
			}
		}
		// The worst scheduler lives in homogeneous coschedules; the
		// optimal avoids them.
		if rows[0].Worst < 0.4 {
			t.Errorf("%s: worst scheduler uses homogeneous coschedules only %.0f%%",
				name, 100*rows[0].Worst)
		}
		if rows[0].Optimal > rows[0].Worst {
			t.Errorf("%s: optimal uses homogeneous coschedules more than worst", name)
		}
		// The worst scheduler never needs high-heterogeneity coschedules.
		if rows[3].Worst > 0.05 {
			t.Errorf("%s: worst scheduler uses 4-heterogeneous coschedules %.0f%%",
				name, 100*rows[3].Worst)
		}
	}
}

func TestCalibrationSMTInterferenceExceedsQuad(t *testing.T) {
	smt, quad := calibration(t)
	// Section V-C: the SMT core has more sharing, hence more per-job
	// sensitivity than the quad-core.
	if smt.JobIPC.Variability() < quad.JobIPC.Variability() {
		t.Errorf("SMT per-job variability %.1f%% should exceed quad's %.1f%%",
			100*smt.JobIPC.Variability(), 100*quad.JobIPC.Variability())
	}
}
