package exp

import (
	"fmt"
	"strings"
)

// Fig2Point is one workload's point in the Figure 2 scatter plot:
// both axes normalised to the worst scheduler's throughput.
type Fig2Point struct {
	Workload     string
	OptVsWorst   float64 // X axis
	FCFSVsWorst  float64 // Y axis
	FCFSVsOpt    float64
	GapBridgePct float64 // (FCFS-worst)/(opt-worst)
}

// Fig2Result reproduces Figure 2 for one configuration.
type Fig2Result struct {
	Name string
	// Slope is the least-squares slope of FCFS/worst against opt/worst
	// through the point (1,1) (paper: 0.73 SMT, 0.56 quad).
	Slope float64
	// GapBridge is the mean fraction of the worst-to-best gap FCFS closes
	// (paper: 76% SMT, 63% quad).
	GapBridge float64
	Points    []Fig2Point
}

// Fig2 computes the scatter for both configurations.
func Fig2(e *Env) (smt, quad *Fig2Result, err error) {
	ssweep, err := e.SMTSweep()
	if err != nil {
		return nil, nil, err
	}
	qsweep, err := e.QuadSweep()
	if err != nil {
		return nil, nil, err
	}
	smt = &Fig2Result{Name: e.SMTTable().Name(), Slope: ssweep.Slope, GapBridge: ssweep.GapBridge}
	for _, a := range ssweep.Workloads {
		smt.Points = append(smt.Points, Fig2Point{
			Workload:    a.Workload.Key(),
			OptVsWorst:  a.OptimalTP / a.WorstTP,
			FCFSVsWorst: a.FCFSTP / a.WorstTP,
			FCFSVsOpt:   a.FCFSTP / a.OptimalTP,
		})
	}
	quad = &Fig2Result{Name: e.QuadTable().Name(), Slope: qsweep.Slope, GapBridge: qsweep.GapBridge}
	for _, a := range qsweep.Workloads {
		quad.Points = append(quad.Points, Fig2Point{
			Workload:    a.Workload.Key(),
			OptVsWorst:  a.OptimalTP / a.WorstTP,
			FCFSVsWorst: a.FCFSTP / a.WorstTP,
			FCFSVsOpt:   a.FCFSTP / a.OptimalTP,
		})
	}
	return smt, quad, nil
}

// Format renders the regression summary and a coarse text scatter.
func (r *Fig2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 (%s): FCFS vs worst against optimal vs worst, one point per workload\n", r.Name)
	fmt.Fprintf(&b, "  slope through (1,1): %.2f   gap bridged by FCFS: %.0f%%   [paper: slope 0.73 (SMT) / 0.56 (quad); bridge 76%% / 63%%]\n",
		r.Slope, 100*r.GapBridge)
	// Coarse text scatter: bucket X into bins, print mean Y.
	const bins = 8
	minX, maxX := 1.0, 1.0
	for _, p := range r.Points {
		if p.OptVsWorst > maxX {
			maxX = p.OptVsWorst
		}
	}
	if maxX == minX {
		maxX = minX + 1e-9
	}
	sum := make([]float64, bins)
	cnt := make([]int, bins)
	for _, p := range r.Points {
		bin := int(float64(bins) * (p.OptVsWorst - minX) / (maxX - minX))
		if bin == bins {
			bin--
		}
		sum[bin] += p.FCFSVsWorst
		cnt[bin]++
	}
	fmt.Fprintf(&b, "  opt/worst bin -> mean FCFS/worst (n)\n")
	for i := 0; i < bins; i++ {
		lo := minX + (maxX-minX)*float64(i)/bins
		hi := minX + (maxX-minX)*float64(i+1)/bins
		if cnt[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  [%.3f, %.3f): %.3f (%d)\n", lo, hi, sum[i]/float64(cnt[i]), cnt[i])
	}
	return b.String()
}
