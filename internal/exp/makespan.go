package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/runner"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// MakespanResult is an extension experiment reproducing the related-work
// observation the paper quotes from Xu et al. (PACT 2010): "when jobs are
// SPEC benchmarks run to completion, a simple symbiosis-unaware long-job-
// first scheduler outperforms their symbiosis-aware scheduler" — because
// with small job sets (8-16 jobs) the idle tail dominates and makespan, not
// instantaneous symbiosis, is what matters.
type MakespanResult struct {
	Name      string
	Batch     int
	Workloads int
	// MeanMakespan maps scheduler name to its mean makespan normalised to
	// FCFS; MeanTailIdle to its mean tail-idle fraction.
	MeanMakespan map[string]float64
	MeanTailIdle map[string]float64
}

// MakespanSchedulers lists the compared schedulers.
var MakespanSchedulers = []string{"FCFS", "LJF", "SRPT", "MAXIT", "MAXTP", "Random"}

// MakespanExperiment runs small-batch makespan comparisons on the SMT
// configuration with heterogeneous (exponential) job sizes.
func MakespanExperiment(e *Env, batch int) (*MakespanResult, error) {
	if batch <= 0 {
		batch = 8
	}
	t := e.SMTTable()
	ws := e.sampledWorkloads()
	r := &MakespanResult{
		Name: t.Name(), Batch: batch, Workloads: len(ws),
		MeanMakespan: map[string]float64{},
		MeanTailIdle: map[string]float64{},
	}
	n := float64(len(ws))
	type perWorkload struct {
		makespan, tailIdle []float64 // indexed like MakespanSchedulers
	}
	// Simulate workloads in parallel; fold the per-scheduler means in
	// workload order so the sums match the former sequential loop exactly.
	_, err := runner.Reduce(context.Background(), e.runCfg("makespan"), len(ws), r,
		func(_ context.Context, wi int) (perWorkload, error) {
			w := ws[wi]
			cfg := eventsim.MakespanConfig{Batch: batch, SizeShape: 1, Seed: e.Cfg.Seed + uint64(wi)}
			pw := perWorkload{
				makespan: make([]float64, len(MakespanSchedulers)),
				tailIdle: make([]float64, len(MakespanSchedulers)),
			}
			var base float64
			for si, name := range MakespanSchedulers {
				s, err := makespanScheduler(name, e, w)
				if err != nil {
					return perWorkload{}, err
				}
				res, err := eventsim.Makespan(t, w, s, cfg)
				if err != nil {
					return perWorkload{}, fmt.Errorf("workload %v %s: %w", w, name, err)
				}
				if name == "FCFS" {
					base = res.Makespan
				}
				pw.makespan[si] = res.Makespan / base
				pw.tailIdle[si] = res.TailIdleFraction
			}
			return pw, nil
		},
		func(r *MakespanResult, _ int, pw perWorkload) *MakespanResult {
			for si, name := range MakespanSchedulers {
				r.MeanMakespan[name] += pw.makespan[si] / n
				r.MeanTailIdle[name] += pw.tailIdle[si] / n
			}
			return r
		})
	if err != nil {
		return nil, err
	}
	return r, nil
}

func makespanScheduler(name string, e *Env, w workload.Workload) (sched.Scheduler, error) {
	if name == "LJF" {
		return sched.LJF{}, nil
	}
	if name == "Random" {
		return &sched.Random{RNG: stats.NewRNG(e.Cfg.Seed)}, nil
	}
	return newScheduler(name, e.SMTTable(), w)
}

// Format renders the comparison.
func (r *MakespanResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Makespan extension (%s, %d-job batches, %d workloads): small-set evaluation a la Settle/Xu\n",
		r.Name, r.Batch, r.Workloads)
	fmt.Fprintf(&b, "  %-8s %18s %14s\n", "sched", "makespan vs FCFS", "tail idle")
	for _, name := range MakespanSchedulers {
		fmt.Fprintf(&b, "  %-8s %17.3f %13.1f%%\n", name, r.MeanMakespan[name], 100*r.MeanTailIdle[name])
	}
	fmt.Fprintf(&b, "  [paper Section II: with small job sets the idle tail dominates; symbiosis-unaware LJF\n")
	fmt.Fprintf(&b, "   outperforms symbiosis-aware scheduling (Xu et al.)]\n")
	return b.String()
}
