package exp

import (
	"strings"
	"testing"

	"symbiosched/internal/program"
)

func TestN8(t *testing.T) {
	if testing.Short() {
		t.Skip("N=8 sweep is slow")
	}
	// Needs at least 8 job types; use 8 so there is exactly one N=8
	// workload (C(8,8) = 1) and the sweep stays fast.
	suite := program.Suite()
	cfg := DefaultConfig()
	cfg.Suite = suite[:8]
	cfg.FCFSJobs = 6000
	e := NewEnv(cfg)
	r, err := N8(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkloadsN8 != 1 {
		t.Fatalf("expected 1 N=8 workload, got %d", r.WorkloadsN8)
	}
	if r.OptGainN8 < -1e-9 {
		t.Errorf("optimal gain %v negative", r.OptGainN8)
	}
	// Section V-B: widening type choice helps, but only a little. With a
	// larger pool of types the optimal scheduler cannot do worse.
	if r.OptGainN8 > 0.5 {
		t.Errorf("N=8 optimal gain %v implausibly large", r.OptGainN8)
	}
	if out := r.Format(); !strings.Contains(out, "N=8") {
		t.Error("Format missing header")
	}
}
