package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/farm"
	"symbiosched/internal/fault"
	"symbiosched/internal/scenario"
)

// ResilienceScenario is the fault-injection study: an 8-server FCFS farm
// on the sharded engine at fixed load, swept over a failure-rate grid
// (MTBF), the dispatch policies that matter under degradation (li, pd2,
// jsq) and both checkpoint policies. Seeds derive from the MTBF axis
// only, so every (dispatcher, checkpoint) pair competes under common
// random numbers — the same arrivals AND the same failure/repair
// trajectory (fault streams are per server index, shape-independent).
// The headline is the cost of crashes: availability, goodput vs wasted
// work, re-dispatch pressure and the turnaround tail, and how the
// symbiosis-aware dispatchers hold up as servers blink in and out of
// the up-set.
func ResilienceScenario() *scenario.Scenario {
	return gridScenario("resilience",
		"fault injection: MTBF grid x dispatcher x checkpoint, availability and goodput",
		resiliencePlan)
}

func resiliencePlan(e *Env) (*scenario.Plan, error) {
	mtbfs := []float64{25, 100, 400}
	dispatchers := []string{"li", "pd2", "jsq"}
	checkpoints := []string{string(fault.Restart), string(fault.Resume)}
	const (
		load       = 0.8
		mttr       = 2.5
		maxRetries = 5
		retryDelay = 0.5
	)
	w := farmWorkload(e)
	specs, capacity, err := fcfsFarm(e, 8, false)
	if err != nil {
		return nil, err
	}

	return &scenario.Plan{
		Axes: []scenario.Axis{
			{Name: "mtbf", Values: floatLabels(mtbfs)},
			{Name: "dispatcher", Values: dispatchers},
			{Name: "checkpoint", Values: checkpoints},
		},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			mtbf := mtbfs[pt.Index("mtbf")]
			disp := dispatchers[pt.Index("dispatcher")]
			cp := fault.Policy(checkpoints[pt.Index("checkpoint")])
			d, err := farm.NewDispatcher(disp)
			if err != nil {
				return nil, err
			}
			// The sharded engine's Result is byte-identical at any
			// Shards/Workers/Slab, so tying Workers to the Env's
			// parallelism cannot perturb the golden CSV.
			res, err := farm.SimulateSharded(specs, d, w, farm.Config{
				Lambda:    load * capacity,
				Jobs:      e.Cfg.SimJobs,
				SizeShape: 4,
				Seed:      pt.Seed(e.Cfg.Seed, "mtbf"),
				Faults: fault.Config{
					MTBF:       mtbf,
					MTTR:       mttr,
					MaxRetries: maxRetries,
					RetryDelay: retryDelay,
					Checkpoint: cp,
				},
			}, farm.ShardConfig{Shards: 8, Workers: e.Cfg.Parallelism, Slab: e.Cfg.Slab})
			if err != nil {
				return nil, fmt.Errorf("resilience mtbf=%g %s/%s: %w", mtbf, disp, cp, err)
			}
			return res, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			tbl := scenario.NewTable("resilience",
				scenario.FloatCol("mtbf"), scenario.StrCol("dispatcher"), scenario.StrCol("checkpoint"),
				scenario.FloatCol("availability"), scenario.FloatCol("goodput"), scenario.FloatCol("wasted_work"),
				scenario.IntCol("redispatches"), scenario.IntCol("dropped"), scenario.IntCol("parked"),
				scenario.FloatCol("mean_turnaround"), scenario.FloatCol("p99_turnaround"),
				scenario.FloatCol("retry_p50"), scenario.FloatCol("retry_p99"))
			// wasted/turn[mtbf index][checkpoint index] under li, for the
			// checkpoint-policy payoff lines below.
			wasted := make([][]float64, len(mtbfs))
			turn := make([][]float64, len(mtbfs))
			for i := range wasted {
				wasted[i] = make([]float64, len(checkpoints))
				turn[i] = make([]float64, len(checkpoints))
			}
			var availMin, availMax float64 = 1, 0
			ci := 0
			for mi, mtbf := range mtbfs {
				for _, disp := range dispatchers {
					for cpi, cp := range checkpoints {
						r := cells[ci].(*farm.Result)
						ci++
						tbl.Add(mtbf, disp, cp, r.Availability, r.Goodput, r.WastedWork,
							r.Redispatches, r.Dropped, r.Parked,
							r.MeanTurnaround, r.P99Turnaround, r.RetryP50, r.RetryP99)
						if disp == "li" {
							wasted[mi][cpi] = r.WastedWork
							turn[mi][cpi] = r.MeanTurnaround
						}
						if r.Availability < availMin {
							availMin = r.Availability
						}
						if r.Availability > availMax {
							availMax = r.Availability
						}
					}
				}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Resilience (8 x smt/FCFS, sharded engine, load %.2f, MTTR %g, %d retries, backoff %g, %d jobs/cell)\n",
				load, mttr, maxRetries, retryDelay, e.Cfg.SimJobs)
			fmt.Fprintf(&b, "  capacity: %.3f\n", capacity)
			b.WriteString(tbl.Text())
			fmt.Fprintf(&b, "  availability spans %.4f (MTBF %g) to %.4f (MTBF %g)\n",
				availMin, mtbfs[0], availMax, mtbfs[len(mtbfs)-1])
			for mi, mtbf := range mtbfs {
				if wasted[mi][0] > 0 && turn[mi][1] > 0 {
					// Job sizes have mean 1, so SimJobs ~= the useful work.
					fmt.Fprintf(&b, "  MTBF %g under li: restart re-executes %.1f%% of the useful work; resume cuts mean turnaround %.1f%%\n",
						mtbf, 100*wasted[mi][0]/float64(e.Cfg.SimJobs), 100*(1-turn[mi][1]/turn[mi][0]))
				}
			}
			return &scenario.Result{Value: tbl, Text: b.String(), Tables: []*scenario.Table{tbl}}, nil
		},
	}, nil
}
