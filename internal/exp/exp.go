// Package exp contains one driver per table and figure of the paper's
// evaluation, each reproducing the corresponding rows/series from the
// performance database and the analyses in internal/core, internal/sched,
// internal/eventsim and internal/queueing. The cmd/symbiosim binary and
// the root-level benchmarks are thin wrappers over these drivers.
//
// Every driver returns a structured result plus a Format() string that
// prints the same quantities the paper reports, with the paper's numbers
// quoted alongside for comparison (also recorded in EXPERIMENTS.md).
package exp

import (
	"sync"

	"symbiosched/internal/core"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
)

// Config parameterises the experiment environment.
type Config struct {
	// Suite is the benchmark suite (default program.Suite()).
	Suite []program.Profile
	// SMT and Quad are the two machine configurations of Section V-A.
	SMT  uarch.SMTMachine
	Quad uarch.MulticoreMachine
	// FCFSJobs sizes the FCFS throughput simulations (default 20_000).
	FCFSJobs int
	// SimJobs sizes the Section VI event simulations (default 20_000).
	SimJobs int
	// SampleWorkloads, when > 0, uses only every (total/Sample)-th
	// workload in the heavyweight Section VI sweeps.
	SampleWorkloads int
	// Seed drives all randomness (default 1).
	Seed uint64
}

// DefaultConfig returns the paper's default setup.
func DefaultConfig() Config {
	return Config{
		Suite:    program.Suite(),
		SMT:      uarch.DefaultSMT(),
		Quad:     uarch.DefaultMulticore(),
		FCFSJobs: 20_000,
		SimJobs:  20_000,
		Seed:     1,
	}
}

// Env carries lazily built, cached performance tables and suite analyses
// so that drivers sharing inputs (Figures 1-3, Table II) compute them once.
type Env struct {
	Cfg Config

	mu        sync.Mutex
	smtTable  *perfdb.Table
	quadTable *perfdb.Table
	smtSweep  *core.SuiteAnalysis
	quadSweep *core.SuiteAnalysis
}

// NewEnv returns an Env over the given config (zero-value fields are
// filled with defaults).
func NewEnv(cfg Config) *Env {
	def := DefaultConfig()
	if cfg.Suite == nil {
		cfg.Suite = def.Suite
	}
	if cfg.SMT.Threads == 0 {
		cfg.SMT = def.SMT
	}
	if cfg.Quad.Cores == 0 {
		cfg.Quad = def.Quad
	}
	if cfg.FCFSJobs == 0 {
		cfg.FCFSJobs = def.FCFSJobs
	}
	if cfg.SimJobs == 0 {
		cfg.SimJobs = def.SimJobs
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	return &Env{Cfg: cfg}
}

// SMTTable returns (building once) the SMT performance database.
func (e *Env) SMTTable() *perfdb.Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.smtTable == nil {
		e.smtTable = perfdb.Build(perfdb.SMTModel{Machine: e.Cfg.SMT}, e.Cfg.Suite)
	}
	return e.smtTable
}

// QuadTable returns (building once) the quad-core performance database.
func (e *Env) QuadTable() *perfdb.Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quadTable == nil {
		e.quadTable = perfdb.Build(perfdb.MulticoreModel{Machine: e.Cfg.Quad}, e.Cfg.Suite)
	}
	return e.quadTable
}

// SMTSweep returns (running once) the N=4 all-workloads analysis on the
// SMT table.
func (e *Env) SMTSweep() (*core.SuiteAnalysis, error) {
	t := e.SMTTable()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.smtSweep == nil {
		sa, err := core.AnalyzeSuite(t, 4, core.AnalyzeConfig{FCFS: core.FCFSConfig{Jobs: e.Cfg.FCFSJobs}})
		if err != nil {
			return nil, err
		}
		e.smtSweep = sa
	}
	return e.smtSweep, nil
}

// QuadSweep returns (running once) the N=4 all-workloads analysis on the
// quad-core table.
func (e *Env) QuadSweep() (*core.SuiteAnalysis, error) {
	t := e.QuadTable()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quadSweep == nil {
		sa, err := core.AnalyzeSuite(t, 4, core.AnalyzeConfig{FCFS: core.FCFSConfig{Jobs: e.Cfg.FCFSJobs}})
		if err != nil {
			return nil, err
		}
		e.quadSweep = sa
	}
	return e.quadSweep, nil
}
