// Package exp contains the paper's evaluation as registered scenarios:
// one per table and figure, each reproducing the corresponding
// rows/series from the performance database and the analyses in
// internal/core, internal/sched, internal/eventsim and
// internal/queueing, plus the extension studies (farm, online, hetfarm,
// burst, slo) the same models support. Every study registers itself in
// the internal/scenario registry (scenarios.go); cmd/symbiosim is
// registry dispatch (`run <name>`, `list`) and the root-level benchmarks
// are thin wrappers over the same drivers.
//
// Every driver returns a structured result plus a Format() string that
// prints the same quantities the paper reports, with the paper's numbers
// quoted alongside for comparison (also recorded in EXPERIMENTS.md); the
// scenario layer carries the same data as typed-column tables whose CSV
// bytes the golden tests pin.
//
// Sweeps run on internal/runner: Config.Parallelism bounds every worker
// pool (perfdb builds, suite analyses, Section VI simulations) without
// changing any result — item seeds derive from enumeration indices and
// reductions fold in index order, so output is bit-identical at any
// parallelism level. Config.CacheDir enables the on-disk perfdb table
// cache, and Config.Progress observes per-sweep progress.
package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"symbiosched/internal/core"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/runner"
	"symbiosched/internal/uarch"
)

// Config parameterises the experiment environment.
type Config struct {
	// Suite is the benchmark suite (default program.Suite()).
	Suite []program.Profile
	// SMT and Quad are the two machine configurations of Section V-A.
	SMT  uarch.SMTMachine
	Quad uarch.MulticoreMachine
	// FCFSJobs sizes the FCFS throughput simulations (default 20_000).
	FCFSJobs int
	// SimJobs sizes the Section VI event simulations (default 20_000).
	SimJobs int
	// SampleWorkloads, when > 0, uses only every (total/Sample)-th
	// workload in the heavyweight Section VI sweeps.
	SampleWorkloads int
	// Seed drives all randomness (default 1).
	Seed uint64
	// Parallelism bounds every sweep's worker pool (perfdb builds, suite
	// sweeps, Section VI simulations). Zero means all CPUs. Results are
	// independent of the value; only wall time changes.
	Parallelism int
	// Slab caps the sharded engine's slab length in simulated time for
	// the megafarm and resilience scenarios. Zero means adaptive sizing
	// (the engine tunes the cap to the observed event density). Results
	// are independent of the value; only wall time changes.
	Slab float64
	// CacheDir, when non-empty, caches built perfdb tables as gob files
	// in this directory so the expensive database build amortises across
	// runs.
	CacheDir string
	// Progress, when set, receives per-sweep progress: the sweep's name
	// and how many of its items have completed.
	Progress func(sweep string, done, total int)
	// Metrics, when set, instruments the simulation-backed scenarios
	// (internal/metrics): instrumented results carry a merged snapshot
	// and their scenarios emit an extra "<table>_metrics" CSV table.
	// Instruments only observe — the scenario tables and Format() text
	// are byte-identical with Metrics on or off (pinned by test).
	Metrics bool
}

// DefaultConfig returns the paper's default setup.
func DefaultConfig() Config {
	return Config{
		Suite:    program.Suite(),
		SMT:      uarch.DefaultSMT(),
		Quad:     uarch.DefaultMulticore(),
		FCFSJobs: 20_000,
		SimJobs:  20_000,
		Seed:     1,
	}
}

// Env carries lazily built, cached performance tables and suite analyses
// so that drivers sharing inputs (Figures 1-3, Table II) compute them once.
type Env struct {
	Cfg Config

	mu        sync.Mutex
	smtTable  *perfdb.Table
	quadTable *perfdb.Table
	smtSweep  *core.SuiteAnalysis
	quadSweep *core.SuiteAnalysis
}

// NewEnv returns an Env over the given config (zero-value fields are
// filled with defaults).
func NewEnv(cfg Config) *Env {
	def := DefaultConfig()
	if cfg.Suite == nil {
		cfg.Suite = def.Suite
	}
	if cfg.SMT.Threads == 0 {
		cfg.SMT = def.SMT
	}
	if cfg.Quad.Cores == 0 {
		cfg.Quad = def.Quad
	}
	if cfg.FCFSJobs == 0 {
		cfg.FCFSJobs = def.FCFSJobs
	}
	if cfg.SimJobs == 0 {
		cfg.SimJobs = def.SimJobs
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	return &Env{Cfg: cfg}
}

// runCfg returns the runner configuration for one named sweep, wiring the
// Parallelism knob and the Progress callback.
func (e *Env) runCfg(sweep string) runner.Config {
	rc := runner.Config{Parallelism: e.Cfg.Parallelism}
	if p := e.Cfg.Progress; p != nil {
		var done, total int
		rc.Hooks.Start = func(n int) { total = n; p(sweep, 0, n) }
		rc.Hooks.Item = func(int, time.Duration) { // serialised by the runner
			done++
			p(sweep, done, total)
		}
	}
	return rc
}

// SMTTable returns (building once) the SMT performance database, loading
// it from Cfg.CacheDir when enabled.
func (e *Env) SMTTable() *perfdb.Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.smtTable == nil {
		e.smtTable = e.table(perfdb.SMTModel{Machine: e.Cfg.SMT}, fmt.Sprintf("%+v", e.Cfg.SMT), "perfdb/smt")
	}
	return e.smtTable
}

// QuadTable returns (building once) the quad-core performance database,
// loading it from Cfg.CacheDir when enabled.
func (e *Env) QuadTable() *perfdb.Table {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quadTable == nil {
		e.quadTable = e.table(perfdb.MulticoreModel{Machine: e.Cfg.Quad}, fmt.Sprintf("%+v", e.Cfg.Quad), "perfdb/quad")
	}
	return e.quadTable
}

// table builds (or loads from the cache directory) one perfdb table. The
// fingerprint must encode every machine parameter so a config change can
// never resurrect a stale cache entry.
func (e *Env) table(m perfdb.Model, fingerprint, sweep string) *perfdb.Table {
	rc := e.runCfg(sweep)
	if e.Cfg.CacheDir == "" {
		t, err := perfdb.BuildWith(context.Background(), rc, m, e.Cfg.Suite)
		if err != nil {
			panic(err) // unreachable: the background context never cancels
		}
		return t
	}
	t, _, err := perfdb.LoadOrBuild(context.Background(), rc, m, e.Cfg.Suite, e.Cfg.CacheDir, fingerprint)
	if err != nil {
		panic(fmt.Sprintf("exp: perfdb cache %s: %v", e.Cfg.CacheDir, err))
	}
	return t
}

// SMTSweep returns (running once) the N=4 all-workloads analysis on the
// SMT table.
func (e *Env) SMTSweep() (*core.SuiteAnalysis, error) {
	t := e.SMTTable()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.smtSweep == nil {
		sa, err := core.AnalyzeSuite(t, 4, core.AnalyzeConfig{
			FCFS:   core.FCFSConfig{Jobs: e.Cfg.FCFSJobs},
			Runner: e.runCfg("sweep/smt"),
		})
		if err != nil {
			return nil, err
		}
		e.smtSweep = sa
	}
	return e.smtSweep, nil
}

// QuadSweep returns (running once) the N=4 all-workloads analysis on the
// quad-core table.
func (e *Env) QuadSweep() (*core.SuiteAnalysis, error) {
	t := e.QuadTable()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quadSweep == nil {
		sa, err := core.AnalyzeSuite(t, 4, core.AnalyzeConfig{
			FCFS:   core.FCFSConfig{Jobs: e.Cfg.FCFSJobs},
			Runner: e.runCfg("sweep/quad"),
		})
		if err != nil {
			return nil, err
		}
		e.quadSweep = sa
	}
	return e.quadSweep, nil
}
