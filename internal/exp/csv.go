package exp

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"symbiosched/internal/core"
)

// WriteCSV saves an experiment's plottable series as CSV files under dir
// (created if needed), so the figures can be regenerated with any plotting
// tool. Supported results: Fig1Result, Fig2Result, Fig3Result, Fig4Result,
// Fig5Result, Fig6Result, []Table1Row, Table2Result, MakespanResult,
// FarmResult and OnlineResult; other types are ignored with ok=false.
func WriteCSV(dir string, name string, result any) (ok bool, err error) {
	rows, header := csvRows(result)
	if rows == nil {
		return false, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return false, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return false, err
	}
	if err := w.WriteAll(rows); err != nil {
		return false, err
	}
	w.Flush()
	return true, w.Error()
}

func csvRows(result any) (rows [][]string, header []string) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	switch r := result.(type) {
	case *Fig1Result:
		header = []string{"config", "metric", "avg_best", "avg_worst", "max_best", "min_worst", "variability"}
		for _, cv := range []ConfigVariability{r.SMT, r.Quad} {
			for _, m := range []struct {
				name string
				s    core.SpreadStats
			}{{"job_ipc", cv.JobIPC}, {"inst_tp", cv.InstTP}, {"avg_tp", cv.AvgTP}} {
				rows = append(rows, []string{cv.Name, m.name,
					f(m.s.AvgBest), f(m.s.AvgWorst), f(m.s.MaxBest), f(m.s.MinWorst), f(m.s.Variability())})
			}
		}
	case []Table1Row:
		header = []string{"benchmark", "solo_ipc_smt", "solo_ipc_quad", "branch_mpki", "mem_mpki_solo", "cache_sensitivity"}
		for _, row := range r {
			rows = append(rows, []string{row.ID,
				f(row.SoloIPCSMT), f(row.SoloIPCQuad), f(row.BranchMPKI), f(row.MemMPKISolo), f(row.CacheSensitivity)})
		}
	case *Table2Result:
		header = []string{"heterogeneity", "avg_inst_tp", "fcfs", "optimal", "worst", "theoretical_fcfs"}
		for i, row := range r.Rows {
			rows = append(rows, []string{strconv.Itoa(row.Heterogeneity),
				f(row.AvgInstTP), f(row.FCFS), f(row.Optimal), f(row.Worst), f(r.TheoreticalFCFS[i])})
		}
	case *FarmResult:
		header = []string{"dispatcher", "load", "mean_turnaround", "p50_turnaround", "p95_turnaround", "p99_turnaround", "turnaround_std", "utilisation", "empty_fraction", "throughput"}
		for _, c := range r.Cells {
			rows = append(rows, []string{c.Dispatcher, f(c.Load),
				f(c.MeanTurnaround), f(c.P50Turnaround), f(c.P95Turnaround), f(c.P99Turnaround), f(c.TurnaroundStd),
				f(c.Utilisation), f(c.EmptyFraction), f(c.Throughput)})
		}
	case *OnlineResult:
		header = []string{"machine", "estimator", "load", "turnaround", "throughput", "turnaround_vs_oracle", "throughput_vs_oracle"}
		for _, c := range r.Cells {
			rows = append(rows, []string{c.Machine, c.Estimator, f(c.Load),
				f(c.Turnaround), f(c.Throughput), f(c.TurnaroundVsOracle), f(c.ThroughputVsOracle)})
		}
	case *Fig2Result:
		header = []string{"workload", "opt_vs_worst", "fcfs_vs_worst"}
		for _, p := range r.Points {
			rows = append(rows, []string{p.Workload, f(p.OptVsWorst), f(p.FCFSVsWorst)})
		}
	case *Fig3Result:
		header = []string{"workload", "bottleneck_err", "opt_vs_worst", "type_wipc_diff"}
		for _, p := range r.Points {
			rows = append(rows, []string{p.Workload, f(p.BottleneckErr), f(p.OptVsWorst), f(p.TypeWIPCDiff)})
		}
	case *Fig4Result:
		header = []string{"lambda", "turnaround_mu1", "turnaround_mu1.03"}
		for i := range r.Base {
			rows = append(rows, []string{f(r.Base[i].Lambda), f(r.Base[i].Turnaround), f(r.Improved[i].Turnaround)})
		}
	case *Fig5Result:
		header = []string{"scheduler", "load", "turnaround_vs_fcfs", "utilisation", "empty_fraction"}
		for _, c := range r.Cells {
			rows = append(rows, []string{c.Scheduler, f(c.Load), f(c.TurnaroundVsFCFS), f(c.Utilisation), f(c.EmptyFraction)})
		}
	case *Fig6Result:
		header = []string{"workload", "theoretical_max", "maxtp", "srpt", "maxit", "theoretical_min"}
		for _, p := range r.Points {
			rows = append(rows, []string{p.Workload, f(p.TheoreticalMax), f(p.MAXTP), f(p.SRPT), f(p.MAXIT), f(p.TheoreticalMin)})
		}
	case *MakespanResult:
		header = []string{"scheduler", "makespan_vs_fcfs", "tail_idle"}
		for _, name := range MakespanSchedulers {
			rows = append(rows, []string{name, f(r.MeanMakespan[name]), f(r.MeanTailIdle[name])})
		}
	default:
		return nil, nil
	}
	if len(rows) == 0 {
		// Emit the header anyway for structurally empty results.
		rows = [][]string{}
	}
	return rows, header
}

// CSVName returns the canonical file stem for an experiment name and
// configuration (e.g. "fig2_smt").
func CSVName(experiment, config string) string {
	if config == "" {
		return experiment
	}
	return fmt.Sprintf("%s_%s", experiment, config)
}
