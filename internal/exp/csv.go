package exp

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV saves an experiment's plottable series as CSV files under dir
// (created if needed), so the figures can be regenerated with any plotting
// tool. Supported results: Fig2Result, Fig3Result, Fig4Result, Fig5Result,
// Fig6Result and MakespanResult; other types are ignored with ok=false.
func WriteCSV(dir string, name string, result any) (ok bool, err error) {
	rows, header := csvRows(result)
	if rows == nil {
		return false, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return false, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return false, err
	}
	if err := w.WriteAll(rows); err != nil {
		return false, err
	}
	w.Flush()
	return true, w.Error()
}

func csvRows(result any) (rows [][]string, header []string) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	switch r := result.(type) {
	case *Fig2Result:
		header = []string{"workload", "opt_vs_worst", "fcfs_vs_worst"}
		for _, p := range r.Points {
			rows = append(rows, []string{p.Workload, f(p.OptVsWorst), f(p.FCFSVsWorst)})
		}
	case *Fig3Result:
		header = []string{"workload", "bottleneck_err", "opt_vs_worst", "type_wipc_diff"}
		for _, p := range r.Points {
			rows = append(rows, []string{p.Workload, f(p.BottleneckErr), f(p.OptVsWorst), f(p.TypeWIPCDiff)})
		}
	case *Fig4Result:
		header = []string{"lambda", "turnaround_mu1", "turnaround_mu1.03"}
		for i := range r.Base {
			rows = append(rows, []string{f(r.Base[i].Lambda), f(r.Base[i].Turnaround), f(r.Improved[i].Turnaround)})
		}
	case *Fig5Result:
		header = []string{"scheduler", "load", "turnaround_vs_fcfs", "utilisation", "empty_fraction"}
		for _, c := range r.Cells {
			rows = append(rows, []string{c.Scheduler, f(c.Load), f(c.TurnaroundVsFCFS), f(c.Utilisation), f(c.EmptyFraction)})
		}
	case *Fig6Result:
		header = []string{"workload", "theoretical_max", "maxtp", "srpt", "maxit", "theoretical_min"}
		for _, p := range r.Points {
			rows = append(rows, []string{p.Workload, f(p.TheoreticalMax), f(p.MAXTP), f(p.SRPT), f(p.MAXIT), f(p.TheoreticalMin)})
		}
	case *MakespanResult:
		header = []string{"scheduler", "makespan_vs_fcfs", "tail_idle"}
		for _, name := range MakespanSchedulers {
			rows = append(rows, []string{name, f(r.MeanMakespan[name]), f(r.MeanTailIdle[name])})
		}
	default:
		return nil, nil
	}
	if len(rows) == 0 {
		// Emit the header anyway for structurally empty results.
		rows = [][]string{}
	}
	return rows, header
}

// CSVName returns the canonical file stem for an experiment name and
// configuration (e.g. "fig2_smt").
func CSVName(experiment, config string) string {
	if config == "" {
		return experiment
	}
	return fmt.Sprintf("%s_%s", experiment, config)
}
