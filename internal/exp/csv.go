package exp

import (
	"fmt"
	"strconv"

	"symbiosched/internal/core"
	"symbiosched/internal/scenario"
)

// resultTable converts a driver result into its scenario table under the
// given CSV name. The column set and cell formatting are the byte
// contract the golden files pin. Unknown result types are an error: a
// result that silently serialises to nothing is a bug at the call site,
// not a feature.
func resultTable(name string, result any) (*scenario.Table, error) {
	str, flt, intc := scenario.StrCol, scenario.FloatCol, scenario.IntCol
	switch r := result.(type) {
	case *Fig1Result:
		t := scenario.NewTable(name, str("config"), str("metric"),
			flt("avg_best"), flt("avg_worst"), flt("max_best"), flt("min_worst"), flt("variability"))
		for _, cv := range []ConfigVariability{r.SMT, r.Quad} {
			for _, m := range []struct {
				name string
				s    core.SpreadStats
			}{{"job_ipc", cv.JobIPC}, {"inst_tp", cv.InstTP}, {"avg_tp", cv.AvgTP}} {
				t.Add(cv.Name, m.name, m.s.AvgBest, m.s.AvgWorst, m.s.MaxBest, m.s.MinWorst, m.s.Variability())
			}
		}
		return t, nil
	case []Table1Row:
		t := scenario.NewTable(name, str("benchmark"),
			flt("solo_ipc_smt"), flt("solo_ipc_quad"), flt("branch_mpki"), flt("mem_mpki_solo"), flt("cache_sensitivity"))
		for _, row := range r {
			t.Add(row.ID, row.SoloIPCSMT, row.SoloIPCQuad, row.BranchMPKI, row.MemMPKISolo, row.CacheSensitivity)
		}
		return t, nil
	case *Table2Result:
		t := scenario.NewTable(name, intc("heterogeneity"),
			flt("avg_inst_tp"), flt("fcfs"), flt("optimal"), flt("worst"), flt("theoretical_fcfs"))
		for i, row := range r.Rows {
			t.Add(row.Heterogeneity, row.AvgInstTP, row.FCFS, row.Optimal, row.Worst, r.TheoreticalFCFS[i])
		}
		return t, nil
	case *FarmResult:
		t := scenario.NewTable(name, str("dispatcher"), flt("load"),
			flt("mean_turnaround"), flt("p50_turnaround"), flt("p95_turnaround"), flt("p99_turnaround"),
			flt("turnaround_std"), flt("utilisation"), flt("empty_fraction"), flt("throughput"))
		for _, c := range r.Cells {
			t.Add(c.Dispatcher, c.Load, c.MeanTurnaround, c.P50Turnaround, c.P95Turnaround, c.P99Turnaround,
				c.TurnaroundStd, c.Utilisation, c.EmptyFraction, c.Throughput)
		}
		return t, nil
	case *OnlineResult:
		t := scenario.NewTable(name, str("machine"), str("estimator"), flt("load"),
			flt("turnaround"), flt("throughput"), flt("turnaround_vs_oracle"), flt("throughput_vs_oracle"))
		for _, c := range r.Cells {
			t.Add(c.Machine, c.Estimator, c.Load, c.Turnaround, c.Throughput, c.TurnaroundVsOracle, c.ThroughputVsOracle)
		}
		return t, nil
	case *Fig2Result:
		t := scenario.NewTable(name, str("workload"), flt("opt_vs_worst"), flt("fcfs_vs_worst"))
		for _, p := range r.Points {
			t.Add(p.Workload, p.OptVsWorst, p.FCFSVsWorst)
		}
		return t, nil
	case *Fig3Result:
		t := scenario.NewTable(name, str("workload"), flt("bottleneck_err"), flt("opt_vs_worst"), flt("type_wipc_diff"))
		for _, p := range r.Points {
			t.Add(p.Workload, p.BottleneckErr, p.OptVsWorst, p.TypeWIPCDiff)
		}
		return t, nil
	case *Fig4Result:
		t := scenario.NewTable(name, flt("lambda"), flt("turnaround_mu1"), flt("turnaround_mu1.03"))
		for i := range r.Base {
			t.Add(r.Base[i].Lambda, r.Base[i].Turnaround, r.Improved[i].Turnaround)
		}
		return t, nil
	case *Fig5Result:
		t := scenario.NewTable(name, str("scheduler"), flt("load"),
			flt("turnaround_vs_fcfs"), flt("utilisation"), flt("empty_fraction"))
		for _, c := range r.Cells {
			t.Add(c.Scheduler, c.Load, c.TurnaroundVsFCFS, c.Utilisation, c.EmptyFraction)
		}
		return t, nil
	case *Fig6Result:
		t := scenario.NewTable(name, str("workload"),
			flt("theoretical_max"), flt("maxtp"), flt("srpt"), flt("maxit"), flt("theoretical_min"))
		for _, p := range r.Points {
			t.Add(p.Workload, p.TheoreticalMax, p.MAXTP, p.SRPT, p.MAXIT, p.TheoreticalMin)
		}
		return t, nil
	case *MakespanResult:
		t := scenario.NewTable(name, str("scheduler"), flt("makespan_vs_fcfs"), flt("tail_idle"))
		for _, sn := range MakespanSchedulers {
			t.Add(sn, r.MeanMakespan[sn], r.MeanTailIdle[sn])
		}
		return t, nil
	default:
		return nil, fmt.Errorf("exp: no CSV serialisation for result type %T", result)
	}
}

// WriteCSV saves an experiment result's plottable series as dir/name.csv
// (dir is created if needed). Results without a CSV serialisation are a
// hard error — callers name what they expect to write, so an unknown
// type means the experiment and the exporter have drifted apart.
func WriteCSV(dir string, name string, result any) error {
	t, err := resultTable(name, result)
	if err != nil {
		return err
	}
	return t.WriteFile(dir)
}

// floatLabels renders axis labels for a float-valued sweep dimension with
// the canonical float format, so grid labels, CSV cells and seeds agree.
func floatLabels(vals []float64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = scenario.FormatFloat(v)
	}
	return out
}

// repLabels labels a replication axis "0".."n-1".
func repLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}
