package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/core"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/runner"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

// UarchPolicy is one of the four Section VII SMT policies.
type UarchPolicy struct {
	Fetch uarch.FetchPolicy
	ROB   uarch.ROBPolicy
}

// Name returns e.g. "ICOUNT/dynamic".
func (p UarchPolicy) Name() string { return fmt.Sprintf("%s/%s", p.Fetch, p.ROB) }

// UarchPolicies lists the four fetch × ROB-partitioning combinations.
var UarchPolicies = []UarchPolicy{
	{uarch.RoundRobin, uarch.StaticROB},
	{uarch.RoundRobin, uarch.DynamicROB},
	{uarch.ICOUNT, uarch.StaticROB},
	{uarch.ICOUNT, uarch.DynamicROB},
}

// UarchResult reproduces the Section VII microarchitecture study: optimal
// throughput as a metric for comparing SMT fetch/ROB policies without
// implementing a scheduler.
type UarchResult struct {
	// MeanFCFS and MeanOptimal are the mean throughputs per policy,
	// indexed like UarchPolicies.
	MeanFCFS, MeanOptimal []float64
	// BestPolicyFCFS/BestPolicyOptimal name the winners under each
	// scheduler assumption.
	BestPolicyFCFS, BestPolicyOptimal string
	// GainOverRRStaticFCFS/Optimal is ICOUNT+dynamic's mean gain over
	// RR+static (paper: +1.7% FCFS, +1.5% optimal).
	GainOverRRStaticFCFS, GainOverRRStaticOptimal float64
	// RankingChanged is the fraction of workloads whose best policy under
	// the optimal scheduler differs from the best under FCFS (paper: ~10%).
	RankingChanged float64
	// SchedulingGain is the mean optimal-vs-FCFS gain on the RR+static
	// baseline, which the paper contrasts with the policy gain (3.3% vs
	// 1.7%).
	SchedulingGain float64
	Workloads      int
}

// Uarch runs the study: 4 policies x all N=4 workloads, FCFS (Markov) and
// optimal throughput for each.
func Uarch(e *Env) (*UarchResult, error) {
	ws := workload.EnumerateWorkloads(len(e.Cfg.Suite), 4)
	np := len(UarchPolicies)
	res := &UarchResult{
		MeanFCFS:    make([]float64, np),
		MeanOptimal: make([]float64, np),
		Workloads:   len(ws),
	}
	// fcfs[p][w], opt[p][w]. Policies run one at a time — each item is
	// itself a perfdb build plus a suite sweep that parallelise
	// internally, so running the outer level sequentially keeps the total
	// worker count at the configured Parallelism bound.
	fcfs := make([][]float64, np)
	opt := make([][]float64, np)
	rc := e.runCfg("uarch")
	rc.Parallelism = 1
	err := runner.ForEach(context.Background(), rc, np, func(ctx context.Context, pi int) error {
		pol := UarchPolicies[pi]
		machine := e.Cfg.SMT
		machine.Fetch = pol.Fetch
		machine.ROB = pol.ROB
		table, err := perfdb.BuildWith(ctx, runner.Config{Parallelism: e.Cfg.Parallelism}, perfdb.SMTModel{Machine: machine}, e.Cfg.Suite)
		if err != nil {
			return err
		}
		sweep, err := core.AnalyzeSuite(table, 4, core.AnalyzeConfig{
			UseMarkovFCFS: true,
			Runner:        runner.Config{Parallelism: e.Cfg.Parallelism},
		})
		if err != nil {
			return err
		}
		fcfs[pi] = make([]float64, len(ws))
		opt[pi] = make([]float64, len(ws))
		for wi, a := range sweep.Workloads {
			fcfs[pi][wi] = a.FCFSTP
			opt[pi][wi] = a.OptimalTP
			res.MeanFCFS[pi] += a.FCFSTP / float64(len(ws))
			res.MeanOptimal[pi] += a.OptimalTP / float64(len(ws))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bestIdx := func(means []float64) int {
		b := 0
		for i, v := range means {
			if v > means[b] {
				b = i
			}
			_ = v
		}
		return b
	}
	res.BestPolicyFCFS = UarchPolicies[bestIdx(res.MeanFCFS)].Name()
	res.BestPolicyOptimal = UarchPolicies[bestIdx(res.MeanOptimal)].Name()
	// RR+static is index 0; ICOUNT+dynamic is index 3.
	res.GainOverRRStaticFCFS = res.MeanFCFS[3]/res.MeanFCFS[0] - 1
	res.GainOverRRStaticOptimal = res.MeanOptimal[3]/res.MeanOptimal[0] - 1
	var changed int
	var schedGain float64
	for wi := range ws {
		bf, bo := 0, 0
		for pi := 0; pi < np; pi++ {
			if fcfs[pi][wi] > fcfs[bf][wi] {
				bf = pi
			}
			if opt[pi][wi] > opt[bo][wi] {
				bo = pi
			}
		}
		if bf != bo {
			changed++
		}
		schedGain += opt[0][wi]/fcfs[0][wi] - 1
	}
	res.RankingChanged = float64(changed) / float64(len(ws))
	res.SchedulingGain = schedGain / float64(len(ws))
	return res, nil
}

// Format renders the study.
func (r *UarchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VII: SMT fetch/ROB policy study with optimal throughput as the metric (%d workloads)\n", r.Workloads)
	fmt.Fprintf(&b, "  policy           FCFS TP   optimal TP\n")
	for i, p := range UarchPolicies {
		fmt.Fprintf(&b, "  %-15s  %7.3f   %7.3f\n", p.Name(), r.MeanFCFS[i], r.MeanOptimal[i])
	}
	fmt.Fprintf(&b, "  best policy: FCFS %s, optimal %s   [paper: ICOUNT/dynamic under both]\n", r.BestPolicyFCFS, r.BestPolicyOptimal)
	fmt.Fprintf(&b, "  ICOUNT/dynamic vs RR/static: FCFS %+.1f%%, optimal %+.1f%%   [paper: +1.7%% / +1.5%%]\n",
		100*r.GainOverRRStaticFCFS, 100*r.GainOverRRStaticOptimal)
	fmt.Fprintf(&b, "  workloads changing best policy under optimal scheduling: %.0f%%   [paper: ~10%%]\n", 100*r.RankingChanged)
	fmt.Fprintf(&b, "  scheduling gain on RR/static baseline: %+.1f%%   [paper: +3.3%%, vs +1.7%% from the policy]\n", 100*r.SchedulingGain)
	return b.String()
}
