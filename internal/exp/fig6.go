package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"symbiosched/internal/core"
	"symbiosched/internal/eventsim"
	"symbiosched/internal/scenario"
)

// Fig6Point is one workload in Figure 6: the throughput each online
// scheduler achieves in a maximum-throughput experiment, relative to FCFS,
// together with the theoretical LP bounds.
type Fig6Point struct {
	Workload string
	// TheoreticalMax/Min are the LP bounds relative to FCFS.
	TheoreticalMax, TheoreticalMin float64
	// MAXIT, SRPT and MAXTP are achieved throughputs relative to FCFS.
	MAXIT, SRPT, MAXTP float64
}

// Fig6Result reproduces Figure 6 on the SMT configuration.
type Fig6Result struct {
	Name   string
	Points []Fig6Point // ordered by increasing theoretical max
	// Means over workloads (paper: SRPT ~ FCFS, MAXIT slightly below,
	// MAXTP ~ theoretical max).
	MeanMAXIT, MeanSRPT, MeanMAXTP, MeanTheoreticalMax, MeanTheoreticalMin float64
	// MAXTPGapToOptimal is the mean of (optimal - MAXTP)/optimal; the
	// paper finds MAXTP "almost exactly matches" the LP optimum.
	MAXTPGapToOptimal float64
}

// fig6Plan lays Figure 6 out on the scenario engine: one cell per sampled
// workload (LP bounds plus one max-throughput simulation per scheduler),
// reduced in workload order into the sorted point list and its means.
func fig6Plan(e *Env) (*scenario.Plan, error) {
	t := e.SMTTable()
	ws := e.sampledWorkloads()
	perWorkload := func(wi int) (Fig6Point, error) {
		w := ws[wi]
		opt, err := core.Optimal(t, w)
		if err != nil {
			return Fig6Point{}, fmt.Errorf("workload %v: %w", w, err)
		}
		worst, err := core.Worst(t, w)
		if err != nil {
			return Fig6Point{}, fmt.Errorf("workload %v: %w", w, err)
		}
		cfg := eventsim.MaxThroughputConfig{Jobs: e.Cfg.SimJobs, Seed: e.Cfg.Seed + uint64(wi)}
		tps := map[string]float64{}
		for _, name := range SchedulerNames {
			s, err := newScheduler(name, t, w)
			if err != nil {
				return Fig6Point{}, fmt.Errorf("workload %v: %w", w, err)
			}
			res, err := eventsim.MaxThroughput(t, w, s, cfg)
			if err != nil {
				return Fig6Point{}, fmt.Errorf("workload %v: %w", w, err)
			}
			tps[name] = res.Throughput
		}
		base := tps["FCFS"]
		return Fig6Point{
			Workload:       w.Key(),
			TheoreticalMax: opt.Throughput / base,
			TheoreticalMin: worst.Throughput / base,
			MAXIT:          tps["MAXIT"] / base,
			SRPT:           tps["SRPT"] / base,
			MAXTP:          tps["MAXTP"] / base,
		}, nil
	}

	return &scenario.Plan{
		Axes: []scenario.Axis{{Name: "workload", Values: workloadLabels(ws)}},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			p, err := perWorkload(pt.Index("workload"))
			if err != nil {
				return nil, err
			}
			return p, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			r := &Fig6Result{Name: t.Name()}
			r.Points = make([]Fig6Point, len(cells))
			for i, c := range cells {
				r.Points[i] = c.(Fig6Point)
			}
			sort.Slice(r.Points, func(i, j int) bool { return r.Points[i].TheoreticalMax < r.Points[j].TheoreticalMax })
			n := float64(len(r.Points))
			for _, p := range r.Points {
				r.MeanMAXIT += p.MAXIT / n
				r.MeanSRPT += p.SRPT / n
				r.MeanMAXTP += p.MAXTP / n
				r.MeanTheoreticalMax += p.TheoreticalMax / n
				r.MeanTheoreticalMin += p.TheoreticalMin / n
				r.MAXTPGapToOptimal += (p.TheoreticalMax - p.MAXTP) / p.TheoreticalMax / n
			}
			tbl, err := resultTable("fig6", r)
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Value: r, Text: r.Format(), Tables: []*scenario.Table{tbl}}, nil
		},
	}, nil
}

// Fig6 runs the maximum-throughput experiments.
func Fig6(e *Env) (*Fig6Result, error) {
	p, err := fig6Plan(e)
	if err != nil {
		return nil, err
	}
	res, err := p.Execute(context.Background(), e.runCfg("fig6"))
	if err != nil {
		return nil, err
	}
	return res.Value.(*Fig6Result), nil
}

// Format renders the series summary and a down-sampled point list.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (%s, %d workloads): max-throughput experiment, relative to FCFS\n", r.Name, len(r.Points))
	fmt.Fprintf(&b, "  means: theoretical max %.3f, MAXTP %.3f, SRPT %.3f, MAXIT %.3f, theoretical min %.3f\n",
		r.MeanTheoreticalMax, r.MeanMAXTP, r.MeanSRPT, r.MeanMAXIT, r.MeanTheoreticalMin)
	fmt.Fprintf(&b, "  MAXTP gap to LP optimum: %.1f%%   [paper: MAXTP almost exactly matches the maximum; SRPT = FCFS; MAXIT slightly below]\n",
		100*r.MAXTPGapToOptimal)
	step := len(r.Points)/20 + 1
	fmt.Fprintf(&b, "  workload (ordered by theoretical max): max / MAXTP / SRPT / MAXIT / min\n")
	for i := 0; i < len(r.Points); i += step {
		p := r.Points[i]
		fmt.Fprintf(&b, "  %-12s %.3f / %.3f / %.3f / %.3f / %.3f\n",
			p.Workload, p.TheoreticalMax, p.MAXTP, p.SRPT, p.MAXIT, p.TheoreticalMin)
	}
	return b.String()
}
