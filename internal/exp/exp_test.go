package exp

import (
	"math"
	"strings"
	"sync"
	"testing"

	"symbiosched/internal/program"
)

// miniEnv uses a 6-benchmark suite (15 N=4 workloads) and small simulation
// sizes so the whole experiment stack runs in seconds.
var (
	envOnce sync.Once
	envMini *Env
)

func miniEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		suite := program.Suite()
		cfg := DefaultConfig()
		cfg.Suite = []program.Profile{suite[1], suite[3], suite[5], suite[6], suite[7], suite[11]}
		cfg.FCFSJobs = 6000
		cfg.SimJobs = 4000
		cfg.SampleWorkloads = 6
		envMini = NewEnv(cfg)
	})
	return envMini
}

func TestTable1(t *testing.T) {
	e := miniEnv(t)
	rows := Table1(e)
	if len(rows) != len(e.Cfg.Suite) {
		t.Fatalf("got %d rows, want %d", len(rows), len(e.Cfg.Suite))
	}
	for _, r := range rows {
		if r.SoloIPCSMT <= 0 || r.SoloIPCQuad <= 0 {
			t.Errorf("%s: non-positive solo IPC", r.ID)
		}
		if r.CacheSensitivity < 0 || r.CacheSensitivity > 1 {
			t.Errorf("%s: sensitivity %v outside [0,1]", r.ID, r.CacheSensitivity)
		}
	}
	if out := FormatTable1(rows); !strings.Contains(out, "Table I") {
		t.Error("FormatTable1 missing header")
	}
}

func TestFig1Structure(t *testing.T) {
	e := miniEnv(t)
	r, err := Fig1(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []ConfigVariability{r.SMT, r.Quad} {
		if cfg.JobIPC.AvgBest < 0 || cfg.JobIPC.AvgWorst > 0 {
			t.Errorf("%s: job IPC spread inverted: %+v", cfg.Name, cfg.JobIPC)
		}
		if cfg.InstTP.AvgBest < 0 || cfg.InstTP.AvgWorst > 0 {
			t.Errorf("%s: inst TP spread inverted: %+v", cfg.Name, cfg.InstTP)
		}
		// The paper's core finding: average-TP variability is far below
		// per-job and per-coschedule variability.
		if cfg.AvgTP.Variability() > cfg.JobIPC.Variability() {
			t.Errorf("%s: avg TP variability %v exceeds job IPC variability %v — paper's finding inverted",
				cfg.Name, cfg.AvgTP.Variability(), cfg.JobIPC.Variability())
		}
	}
	if out := r.Format(); !strings.Contains(out, "Figure 1") {
		t.Error("Format missing header")
	}
}

func TestFig2Structure(t *testing.T) {
	e := miniEnv(t)
	smt, quad, err := Fig2(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Fig2Result{smt, quad} {
		if len(r.Points) == 0 {
			t.Fatalf("%s: no points", r.Name)
		}
		for _, p := range r.Points {
			if p.OptVsWorst < 1-1e-9 {
				t.Errorf("%s: optimal below worst for %s", r.Name, p.Workload)
			}
			// FCFS must lie between worst (1.0) and optimal.
			if p.FCFSVsWorst < 0.99 || p.FCFSVsWorst > p.OptVsWorst*1.01 {
				t.Errorf("%s: FCFS/worst %v outside [1, %v] for %s",
					r.Name, p.FCFSVsWorst, p.OptVsWorst, p.Workload)
			}
		}
		if r.GapBridge < 0 || r.GapBridge > 1.05 {
			t.Errorf("%s: gap bridge %v", r.Name, r.GapBridge)
		}
		if out := r.Format(); !strings.Contains(out, "Figure 2") {
			t.Error("Format missing header")
		}
	}
}

func TestFig3Structure(t *testing.T) {
	e := miniEnv(t)
	smt, quad, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Fig3Result{smt, quad} {
		for _, p := range r.Points {
			if p.BottleneckErr < 0 || p.TypeWIPCDiff < 0 {
				t.Errorf("%s: negative axis value %+v", r.Name, p)
			}
		}
		if math.IsNaN(r.Corr) {
			t.Errorf("%s: NaN correlation", r.Name)
		}
		if out := r.Format(); !strings.Contains(out, "Figure 3") {
			t.Error("Format missing header")
		}
	}
}

func TestTable2Structure(t *testing.T) {
	e := miniEnv(t)
	smt, _, err := Table2(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(smt.Rows) != 4 {
		t.Fatalf("got %d rows", len(smt.Rows))
	}
	var fcfs, opt, worst float64
	for _, row := range smt.Rows {
		fcfs += row.FCFS
		opt += row.Optimal
		worst += row.Worst
		if row.AvgInstTP <= 0 {
			t.Errorf("class %d: non-positive inst TP", row.Heterogeneity)
		}
	}
	for name, sum := range map[string]float64{"FCFS": fcfs, "optimal": opt, "worst": worst} {
		if math.Abs(sum-1) > 0.03 {
			t.Errorf("%s fractions sum to %v", name, sum)
		}
	}
	// The paper's worst scheduler lives in homogeneous coschedules.
	if smt.Rows[0].Worst < smt.Rows[3].Worst {
		t.Errorf("worst scheduler should prefer homogeneous coschedules: %+v", smt.Rows)
	}
	if out := smt.Format(); !strings.Contains(out, "Table II") {
		t.Error("Format missing header")
	}
}

func TestFig4PaperExample(t *testing.T) {
	e := miniEnv(t)
	r, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ExampleBaseJobs-8.7) > 0.1 || math.Abs(r.ExampleBaseTurnaround-2.5) > 0.05 {
		t.Errorf("base example: L=%v W=%v, paper: 8.7 / 2.5", r.ExampleBaseJobs, r.ExampleBaseTurnaround)
	}
	if math.Abs(r.TurnaroundReduction-0.16) > 0.01 {
		t.Errorf("reduction %v, paper: 16%%", r.TurnaroundReduction)
	}
	if len(r.Base) != len(r.Improved) || len(r.Base) == 0 {
		t.Fatal("curves missing")
	}
	if out := r.Format(); !strings.Contains(out, "Figure 4") {
		t.Error("Format missing header")
	}
}

func TestFig5Structure(t *testing.T) {
	e := miniEnv(t)
	r, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(SchedulerNames)*len(Fig5Loads) {
		t.Fatalf("got %d cells", len(r.Cells))
	}
	for _, load := range Fig5Loads {
		c, ok := r.Cell("FCFS", load)
		if !ok {
			t.Fatalf("missing FCFS cell at load %v", load)
		}
		if math.Abs(c.TurnaroundVsFCFS-1) > 1e-9 {
			t.Errorf("FCFS normalised turnaround %v != 1", c.TurnaroundVsFCFS)
		}
		for _, name := range SchedulerNames {
			c, _ := r.Cell(name, load)
			if c.Utilisation <= 0 || c.Utilisation > 4 {
				t.Errorf("%s@%v: utilisation %v", name, load, c.Utilisation)
			}
			if c.EmptyFraction < 0 || c.EmptyFraction > 1 {
				t.Errorf("%s@%v: empty fraction %v", name, load, c.EmptyFraction)
			}
		}
	}
	// Higher load -> lower empty fraction (FCFS).
	lo, _ := r.Cell("FCFS", 0.8)
	hi, _ := r.Cell("FCFS", 0.95)
	if hi.EmptyFraction >= lo.EmptyFraction {
		t.Errorf("empty fraction should fall with load: %v -> %v", lo.EmptyFraction, hi.EmptyFraction)
	}
	if out := r.Format(); !strings.Contains(out, "Figure 5") {
		t.Error("Format missing header")
	}
}

func TestFig6Structure(t *testing.T) {
	e := miniEnv(t)
	r, err := Fig6(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		if p.TheoreticalMin > 1.02 {
			t.Errorf("%s: theoretical min %v above FCFS", p.Workload, p.TheoreticalMin)
		}
		if p.MAXTP > p.TheoreticalMax*1.02 {
			t.Errorf("%s: MAXTP %v above the theoretical max %v", p.Workload, p.MAXTP, p.TheoreticalMax)
		}
	}
	// Paper: MAXTP ~ LP max; SRPT ~ FCFS.
	if r.MAXTPGapToOptimal > 0.03 {
		t.Errorf("MAXTP gap to optimal %v too large", r.MAXTPGapToOptimal)
	}
	if math.Abs(r.MeanSRPT-1) > 0.03 {
		t.Errorf("SRPT mean %v should be ~1 (= FCFS)", r.MeanSRPT)
	}
	if out := r.Format(); !strings.Contains(out, "Figure 6") {
		t.Error("Format missing header")
	}
}

func TestFairnessStructure(t *testing.T) {
	e := miniEnv(t)
	r, err := Fairness(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.OptGain < -1e-9 {
		t.Errorf("equalisation should not reduce mean optimal TP: %v", r.OptGain)
	}
	if r.HeteroFractionAfter < r.HeteroFractionBefore {
		t.Errorf("hetero fraction should rise: %v -> %v", r.HeteroFractionBefore, r.HeteroFractionAfter)
	}
	if math.Abs(r.WorstChange) > 0.02 {
		t.Errorf("worst scheduler should be (nearly) unchanged, moved %v", r.WorstChange)
	}
	if out := r.Format(); !strings.Contains(out, "fairness") {
		t.Error("Format missing header")
	}
}

func TestUarchStudy(t *testing.T) {
	e := miniEnv(t)
	r, err := Uarch(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MeanFCFS) != 4 || len(r.MeanOptimal) != 4 {
		t.Fatal("wrong policy count")
	}
	for i := range r.MeanFCFS {
		if r.MeanOptimal[i] < r.MeanFCFS[i]-1e-9 {
			t.Errorf("policy %s: optimal %v below FCFS %v",
				UarchPolicies[i].Name(), r.MeanOptimal[i], r.MeanFCFS[i])
		}
	}
	// Section VII: ICOUNT/dynamic wins under both scheduler assumptions.
	if r.BestPolicyFCFS != "ICOUNT/dynamic" {
		t.Errorf("best FCFS policy %s, paper: ICOUNT/dynamic", r.BestPolicyFCFS)
	}
	if r.GainOverRRStaticFCFS <= 0 {
		t.Errorf("ICOUNT/dynamic gain over RR/static %v should be positive", r.GainOverRRStaticFCFS)
	}
	if r.RankingChanged < 0 || r.RankingChanged > 1 {
		t.Errorf("ranking-changed fraction %v", r.RankingChanged)
	}
	if out := r.Format(); !strings.Contains(out, "Section VII") {
		t.Error("Format missing header")
	}
}

func TestEnvCaching(t *testing.T) {
	e := miniEnv(t)
	if e.SMTTable() != e.SMTTable() {
		t.Error("SMT table not cached")
	}
	s1, err := e.SMTSweep()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := e.SMTSweep()
	if s1 != s2 {
		t.Error("sweep not cached")
	}
}

func TestMakespanExperiment(t *testing.T) {
	e := miniEnv(t)
	r, err := MakespanExperiment(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MeanMakespan["FCFS"]-1) > 1e-9 {
		t.Errorf("FCFS normalised makespan %v != 1", r.MeanMakespan["FCFS"])
	}
	// The Xu et al. observation: symbiosis-unaware LJF beats the
	// symbiosis-aware schedulers on small-set makespan.
	if r.MeanMakespan["LJF"] > r.MeanMakespan["MAXIT"] {
		t.Errorf("LJF makespan %v should beat MAXIT %v on small batches",
			r.MeanMakespan["LJF"], r.MeanMakespan["MAXIT"])
	}
	// SRPT trades makespan for turnaround: highest tail idle.
	if r.MeanTailIdle["SRPT"] < r.MeanTailIdle["LJF"] {
		t.Errorf("SRPT tail idle %v should exceed LJF's %v",
			r.MeanTailIdle["SRPT"], r.MeanTailIdle["LJF"])
	}
	if out := r.Format(); !strings.Contains(out, "Makespan") {
		t.Error("Format missing header")
	}
}
