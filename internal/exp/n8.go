package exp

import (
	"fmt"
	"strings"

	"symbiosched/internal/core"
)

// N8Result reproduces the Section V-B observation that increasing the
// number of job types barely helps the optimal scheduler: "for 8 job types
// (N = 8), the average throughput increase of an optimal scheduler is only
// 4.5% for the SMT configuration".
type N8Result struct {
	Name string
	// OptGainN4 and OptGainN8 are the mean optimal-vs-FCFS gains.
	OptGainN4, OptGainN8 float64
	// AvgTPN8 is the N=8 average-throughput spread.
	AvgTPN8 core.SpreadStats
	// WorkloadsN8 is the number of N=8 workloads analysed (C(12,8) = 495).
	WorkloadsN8 int
}

// N8 runs the N=8 sweep on the SMT configuration (the paper quotes SMT
// numbers; pass the quad table via env customisation if desired). The N=8
// LPs have C(11,4) = 330 variables each; the FCFS reference uses the
// Markov approximation to keep the sweep fast.
func N8(e *Env) (*N8Result, error) {
	t := e.SMTTable()
	sweep4, err := e.SMTSweep()
	if err != nil {
		return nil, err
	}
	sweep8, err := core.AnalyzeSuite(t, 8, core.AnalyzeConfig{
		FCFS:   core.FCFSConfig{Jobs: e.Cfg.FCFSJobs},
		Runner: e.runCfg("sweep/n8"),
	})
	if err != nil {
		return nil, err
	}
	return &N8Result{
		Name:        t.Name(),
		OptGainN4:   sweep4.AvgTP.AvgBest,
		OptGainN8:   sweep8.AvgTP.AvgBest,
		AvgTPN8:     sweep8.AvgTP,
		WorkloadsN8: len(sweep8.Workloads),
	}, nil
}

// Format renders the comparison.
func (r *N8Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section V-B, N=8 (%s, %d workloads):\n", r.Name, r.WorkloadsN8)
	fmt.Fprintf(&b, "  optimal gain over FCFS: N=4 %+.1f%%  ->  N=8 %+.1f%%   [paper: +3%% -> +4.5%%]\n",
		100*r.OptGainN4, 100*r.OptGainN8)
	fmt.Fprintf(&b, "  N=8 average TP: %s\n", r.AvgTPN8)
	return b.String()
}
