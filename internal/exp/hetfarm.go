package exp

import (
	"context"
	"fmt"
	"strings"

	"symbiosched/internal/farm"
	"symbiosched/internal/scenario"
)

// HetfarmScenario opens the heterogeneous-farm question the paper's
// framework invites but the per-figure drivers could not express: does
// symbiosis-aware dispatch buy more on a mixed SMT/quad-core farm — where
// routing decides which microarchitecture a job lands on, not just which
// queue — than on a uniform one? The grid sweeps machine mix x dispatcher
// x load, with common random numbers across dispatchers (the seed derives
// from the load and replication axes only), and reports each mix's
// dispatch policies side by side.
func HetfarmScenario() *scenario.Scenario {
	return gridScenario("hetfarm",
		"heterogeneous farm: uniform vs mixed SMT/quad under naive and symbiosis-aware dispatch",
		hetfarmPlan)
}

func hetfarmPlan(e *Env) (*scenario.Plan, error) {
	const servers = 4
	const reps = 3
	mixes := []string{"smt", "smt+quad"}
	dispatchers := farm.DispatcherNames
	loads := FarmLoads
	w := farmWorkload(e)

	specs := make([][]farm.ServerSpec, len(mixes))
	caps := make([]float64, len(mixes))
	for mi := range mixes {
		sp, c, err := fcfsFarm(e, servers, mi == 1)
		if err != nil {
			return nil, err
		}
		specs[mi], caps[mi] = sp, c
	}

	return &scenario.Plan{
		Axes: []scenario.Axis{
			{Name: "mix", Values: mixes},
			{Name: "dispatcher", Values: dispatchers},
			{Name: "load", Values: floatLabels(loads)},
			{Name: "rep", Values: repLabels(reps)},
		},
		Cell: func(_ context.Context, pt scenario.Point) (any, error) {
			mi := pt.Index("mix")
			disp := pt.Value("dispatcher")
			load := loads[pt.Index("load")]
			// Loads are offered relative to each mix's own capacity, so
			// the two farms face the same relative pressure. The seed
			// omits the mix and dispatcher axes: every policy (on either
			// farm) sees the same arrival and job streams.
			rep, err := farm.Replicate(specs[mi], disp, w, farm.Config{
				Lambda:    load * caps[mi],
				Jobs:      e.Cfg.SimJobs,
				SizeShape: 4,
				Seed:      pt.Seed(e.Cfg.Seed, "load"),
			}, pt.Index("rep"))
			if err != nil {
				return nil, fmt.Errorf("hetfarm %s %s load %.2f: %w", pt.Value("mix"), disp, load, err)
			}
			return rep, nil
		},
		Reduce: func(cells []any) (*scenario.Result, error) {
			tbl := scenario.NewTable("hetfarm",
				scenario.StrCol("mix"), scenario.StrCol("dispatcher"), scenario.FloatCol("load"),
				scenario.FloatCol("mean_turnaround"), scenario.FloatCol("p99_turnaround"),
				scenario.FloatCol("turnaround_std"), scenario.FloatCol("utilisation"), scenario.FloatCol("throughput"))
			aggs := foldReps(cells, reps)
			// lastLoadTurn[mix][disp] is the per-dispatcher mean
			// turnaround at the highest load; the summary lines below
			// print the li/jsq ratio from it.
			lastLoadTurn := map[string]map[string]float64{}
			ci := 0
			for _, mix := range mixes {
				lastLoadTurn[mix] = map[string]float64{}
				for _, disp := range dispatchers {
					for li, load := range loads {
						a := aggs[ci]
						ci++
						tbl.Add(mix, disp, load, a.MeanTurnaround, a.P99Turnaround,
							a.TurnaroundStd, a.Utilisation, a.Throughput)
						if li == len(loads)-1 {
							lastLoadTurn[mix][disp] = a.MeanTurnaround
						}
					}
				}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Heterogeneous farm (%d servers, FCFS per server, %d replications/cell): %s\n",
				servers, reps, "uniform SMT vs alternating SMT/quad, loads relative to each mix's capacity")
			fmt.Fprintf(&b, "  capacity: smt %.3f, smt+quad %.3f\n", caps[0], caps[1])
			b.WriteString(tbl.Text())
			for _, mix := range mixes {
				if li, jsq := lastLoadTurn[mix]["li"], lastLoadTurn[mix]["jsq"]; li > 0 && jsq > 0 {
					fmt.Fprintf(&b, "  %s: li mean turnaround at load %.2f is %.1f%% of jsq\n",
						mix, loads[len(loads)-1], 100*li/jsq)
				}
			}
			return &scenario.Result{Value: tbl, Text: b.String(), Tables: []*scenario.Table{tbl}}, nil
		},
	}, nil
}
