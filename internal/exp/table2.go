package exp

import (
	"fmt"
	"strings"

	"symbiosched/internal/core"
)

// Table2Result reproduces Table II: instantaneous throughput and scheduler
// time fractions grouped by coschedule heterogeneity, for one
// configuration.
type Table2Result struct {
	Name string
	Rows []core.HeteroClass
	// TheoreticalFCFS is the random-draw heterogeneity distribution the
	// paper quotes (2%, 33%, 56%, 9% for N=K=4).
	TheoreticalFCFS []float64
}

// Table2 computes the heterogeneity tables for both configurations.
func Table2(e *Env) (smt, quad *Table2Result, err error) {
	ssweep, err := e.SMTSweep()
	if err != nil {
		return nil, nil, err
	}
	qsweep, err := e.QuadSweep()
	if err != nil {
		return nil, nil, err
	}
	theo := core.TheoreticalFCFSHeteroFractions(4, e.SMTTable().K())
	smt = &Table2Result{
		Name:            e.SMTTable().Name(),
		Rows:            core.HeterogeneityTable(e.SMTTable(), ssweep.Workloads),
		TheoreticalFCFS: theo,
	}
	quad = &Table2Result{
		Name:            e.QuadTable().Name(),
		Rows:            core.HeterogeneityTable(e.QuadTable(), qsweep.Workloads),
		TheoreticalFCFS: theo,
	}
	return smt, quad, nil
}

// Format renders the table with the paper's values quoted.
func (r *Table2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II (%s): per heterogeneity class\n", r.Name)
	fmt.Fprintf(&b, "  het  avgInstTP  FCFS    optimal  worst    theoretical-FCFS\n")
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "  %d    %8.2f  %5.1f%%  %6.1f%%  %5.1f%%   %5.1f%%\n",
			row.Heterogeneity, row.AvgInstTP, 100*row.FCFS, 100*row.Optimal, 100*row.Worst,
			100*r.TheoreticalFCFS[i])
	}
	fmt.Fprintf(&b, "  [paper SMT: instTP 1.74/1.83/1.91/1.97; FCFS 3/38/52/7; optimal 1/38/50/11; worst 80/20/0/0]\n")
	fmt.Fprintf(&b, "  [paper quad: instTP 3.36/3.40/3.46/3.53; FCFS 2/34/55/9; optimal 1/10/17/72; worst 65/35/0/0]\n")
	return b.String()
}
