package trace

import (
	"testing"

	"symbiosched/internal/program"
)

func gen(t *testing.T, id string, seed uint64) *Generator {
	t.Helper()
	p, _, ok := program.ByID(id)
	if !ok {
		t.Fatalf("unknown benchmark %s", id)
	}
	return New(&p, seed)
}

func TestDeterminism(t *testing.T) {
	a := gen(t, "mcf.ref", 9).Stream(1000)
	b := gen(t, "mcf.ref", 9).Stream(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give the same trace")
		}
	}
}

func TestInstructionMix(t *testing.T) {
	g := gen(t, "bzip2.input.program", 1)
	const n = 200_000
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	within := func(kind Kind, want float64) {
		got := float64(counts[kind]) / n
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("kind %d frequency %v, want ~%v", kind, got, want)
		}
	}
	within(Load, loadFrac)
	within(Store, storeFrac)
	within(Branch, branchFrac)
}

func TestBranchMispredictDensity(t *testing.T) {
	// sjeng has the suite's highest branch MPKI; its trace must carry
	// roughly BranchMPKI mispredicted branches per kilo-instruction.
	p, _, _ := program.ByID("sjeng.ref")
	g := New(&p, 3)
	const n = 500_000
	misp := 0
	for i := 0; i < n; i++ {
		if in := g.Next(); in.Kind == Branch && in.Mispredict {
			misp++
		}
	}
	mpki := float64(misp) / n * 1000
	if mpki < p.BranchMPKI*0.85 || mpki > p.BranchMPKI*1.15 {
		t.Errorf("trace misprediction MPKI %v, profile %v", mpki, p.BranchMPKI)
	}
}

func TestMemoryFootprintReflectsProfile(t *testing.T) {
	// mcf's trace must touch far more distinct lines than hmmer's.
	lines := func(id string) int {
		g := gen(t, id, 5)
		seen := map[uint64]bool{}
		for i := 0; i < 200_000; i++ {
			in := g.Next()
			if in.Kind == Load || in.Kind == Store {
				seen[in.Addr>>6] = true
			}
		}
		return len(seen)
	}
	mcf, hmmer := lines("mcf.ref"), lines("hmmer.nph3")
	if mcf < 3*hmmer {
		t.Errorf("mcf footprint %d lines should dwarf hmmer's %d", mcf, hmmer)
	}
}

func TestDependencyDensityTracksILP(t *testing.T) {
	serialFrac := func(id string) float64 {
		g := gen(t, id, 7)
		serial := 0
		const n = 100_000
		for i := 0; i < n; i++ {
			if g.Next().DepDist == 1 {
				serial++
			}
		}
		return float64(serial) / n
	}
	// mcf (IPCInf 1.0) must have far more serialising dependencies than
	// hmmer (IPCInf 3.4).
	if m, h := serialFrac("mcf.ref"), serialFrac("hmmer.nph3"); m < 2*h {
		t.Errorf("mcf serial fraction %v vs hmmer %v", m, h)
	}
}

func TestDepDistNonNegativeAndBounded(t *testing.T) {
	g := gen(t, "xalancbmk.ref", 11)
	for i := 0; i < 100_000; i++ {
		in := g.Next()
		if in.DepDist < 0 || in.DepDist > 200 {
			t.Fatalf("DepDist %d out of range", in.DepDist)
		}
	}
}

func TestColdRegionStreams(t *testing.T) {
	// libquantum's cold accesses must advance monotonically (streaming),
	// wrapping only at the region boundary.
	g := gen(t, "libquantum.ref", 13)
	var prev uint64
	seen := 0
	for i := 0; i < 50_000 && seen < 1000; i++ {
		in := g.Next()
		if (in.Kind == Load || in.Kind == Store) && in.Addr >= 1<<32 {
			if seen > 0 && in.Addr <= prev && in.Addr > (1<<32) {
				// wrapped; acceptable
			}
			prev = in.Addr
			seen++
		}
	}
	if seen < 100 {
		t.Errorf("libquantum produced only %d cold accesses", seen)
	}
}
