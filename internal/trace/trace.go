// Package trace generates deterministic synthetic instruction traces from
// benchmark profiles. The cycle-level simulator (internal/cyclesim)
// consumes these traces; the statistical structure of a trace — dependency
// distances, branch-misprediction density, and the locality of memory
// addresses — is derived from the same program.Profile parameters that
// drive the analytical models, so the two performance stacks can be
// cross-validated against each other.
//
// Memory addresses are drawn from three per-thread regions:
//
//   - a hot region that always fits in the L1,
//   - a warm region sized to the profile's CacheHalfKB, whose hit rate in
//     a given cache is what the miss-ratio curve models, and
//   - a cold streaming region that never fits anywhere (compulsory
//     misses), producing the profile's MemMPKIMin floor.
//
// Dependencies use a "serial chain" probability derived from IPCInf (low
// intrinsic ILP = frequent dependencies on the immediately preceding
// instruction) and memory-level parallelism uses a pointer-chase
// probability derived from MLPMax (low MLP = loads that depend on the
// previous load).
package trace

import (
	"symbiosched/internal/program"
	"symbiosched/internal/stats"
)

// Kind classifies an instruction.
type Kind uint8

// Instruction kinds.
const (
	ALU Kind = iota
	Load
	Store
	Branch
)

// Inst is one trace instruction.
type Inst struct {
	Kind Kind
	// Addr is the byte address touched by Load/Store instructions.
	Addr uint64
	// DepDist is the distance (in instructions, >= 1) to the in-flight
	// instruction this one depends on, or 0 for no register dependency.
	DepDist int32
	// Mispredict marks a branch the predictor will miss.
	Mispredict bool
}

// Instruction mix fractions (typical SPEC CPU integer/FP blend).
const (
	loadFrac   = 0.25
	storeFrac  = 0.10
	branchFrac = 0.18
)

// Generator produces the instruction stream of one thread.
type Generator struct {
	prof *program.Profile
	rng  *stats.RNG

	serialProb   float64 // P(depend on previous instruction)
	chaseProb    float64 // P(load depends on previous load)
	l1MissProb   float64 // P(memory access leaves the L1) = warm+cold
	coldProb     float64 // P(memory access is a compulsory/streaming miss)
	mispredProb  float64 // P(branch mispredicts)
	hotBytes     uint64
	warmBytes    uint64
	coldCursor   uint64
	lastLoadDist int32 // instructions since the previous load
}

// New returns a deterministic generator for profile p and the given seed.
func New(p *program.Profile, seed uint64) *Generator {
	memFrac := loadFrac + storeFrac
	l1Miss := p.CacheAPKI / 1000 / memFrac
	if l1Miss > 1 {
		l1Miss = 1
	}
	cold := p.MemMPKIMin / 1000 / memFrac
	if cold > l1Miss {
		cold = l1Miss
	}
	mispred := p.BranchMPKI / 1000 / branchFrac
	if mispred > 1 {
		mispred = 1
	}
	// IPCInf ~ width / (chain density): a thread that dispatches d
	// independent instructions per dependent one sustains ~d+1 IPC on a
	// wide machine. serialProb = 1/IPCInf reproduces that to first order.
	serial := 1 / p.IPCInf
	if serial > 1 {
		serial = 1
	}
	chase := 1 / p.MLPMax
	return &Generator{
		prof:        p,
		rng:         stats.NewRNG(seed),
		serialProb:  serial,
		chaseProb:   chase,
		l1MissProb:  l1Miss,
		coldProb:    cold,
		mispredProb: mispred,
		hotBytes:    16 << 10,
		warmBytes:   uint64(p.CacheHalfKB * 2 * 1024),
	}
}

// Next returns the next instruction of the stream.
func (g *Generator) Next() Inst {
	var in Inst
	r := g.rng.Float64()
	switch {
	case r < loadFrac:
		in.Kind = Load
	case r < loadFrac+storeFrac:
		in.Kind = Store
	case r < loadFrac+storeFrac+branchFrac:
		in.Kind = Branch
		in.Mispredict = g.rng.Float64() < g.mispredProb
	default:
		in.Kind = ALU
	}

	// Register dependency on the previous instruction with serialProb;
	// otherwise a longer-distance (parallel-friendly) dependency.
	if g.rng.Float64() < g.serialProb {
		in.DepDist = 1
	} else if g.rng.Float64() < 0.5 {
		in.DepDist = int32(2 + g.rng.Intn(14))
	}

	if in.Kind == Load || in.Kind == Store {
		in.Addr = g.address()
		if in.Kind == Load {
			// Pointer chasing: the load's address depends on the previous
			// load, serialising misses and destroying MLP.
			if g.lastLoadDist > 0 && g.rng.Float64() < g.chaseProb {
				in.DepDist = g.lastLoadDist
			}
			g.lastLoadDist = 0
		}
	}
	if g.lastLoadDist >= 0 {
		g.lastLoadDist++
	}
	return in
}

// address draws a byte address from the three-region locality model.
func (g *Generator) address() uint64 {
	r := g.rng.Float64()
	switch {
	case r >= g.l1MissProb:
		// Hot: always L1-resident.
		return g.rng.Uint64() % g.hotBytes
	case r < g.coldProb:
		// Cold: streaming through a region far larger than any cache.
		g.coldCursor += 64
		return (1 << 32) + (g.coldCursor % (256 << 20))
	default:
		// Warm: uniform over the profile's characteristic working set.
		if g.warmBytes == 0 {
			return (1 << 28) + g.rng.Uint64()%(64<<10)
		}
		return (1 << 28) + g.rng.Uint64()%g.warmBytes
	}
}

// Stream materialises the next n instructions (testing convenience).
func (g *Generator) Stream(n int) []Inst {
	out := make([]Inst, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
