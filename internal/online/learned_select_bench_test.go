package online_test

import (
	"fmt"
	"testing"

	"symbiosched/internal/online"
	"symbiosched/internal/sched"
)

// BenchmarkLearnedSelect measures the scheduler decision over *learned*
// rates — the combination the epoch-gated memo exists for. Before the
// epoch counter, MAXIT bypassed its decision memo whenever Rates was not
// the oracle table, so every Select over a learner re-enumerated the
// whole candidate space. Two regimes bracket the win:
//
//   - select-only: the estimator is quiet between decisions (dt=0 event
//     bursts, repeated Reschedules without a completed interval), so the
//     epoch holds and after the first call every Select is a memo hit.
//   - observe+select: every decision follows a fresh observation, so the
//     epoch moves and every Select pays the full (pruned) enumeration —
//     the memo's worst case, pinned here to show the gate costs nothing.
func BenchmarkLearnedSelect(b *testing.B) {
	tb := table(b)
	coschedules := allCoschedules(tb)
	progress := make([][]float64, len(coschedules))
	for i, c := range coschedules {
		progress[i] = make([]float64, len(c))
		for j, typ := range c {
			progress[i][j] = tb.JobWIPC(c, typ) * 0.25
		}
	}
	jobs := make([]*sched.Job, 12)
	for i := range jobs {
		jobs[i] = &sched.Job{ID: i, Type: i % 4, Size: 1, Remaining: 0.1 + float64(i)*0.07}
	}
	for _, name := range []string{"sampler", "pairwise"} {
		for _, observe := range []bool{false, true} {
			variant := "select-only"
			if observe {
				variant = "observe+select"
			}
			b.Run(fmt.Sprintf("MAXIT/%s/%s", name, variant), func(b *testing.B) {
				est, err := online.New(name, tb, 1)
				if err != nil {
					b.Fatal(err)
				}
				feed(est, tb, 2, 1)
				m := &sched.MAXIT{Rates: est}
				m.Select(jobs, 4)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if observe {
						ci := i % len(coschedules)
						est.ObserveInterval(coschedules[ci], 0.25, progress[ci])
					}
					m.Select(jobs, 4)
				}
			})
		}
	}
	b.Run("SRPT/pairwise/observe+select", func(b *testing.B) {
		est, err := online.New("pairwise", tb, 1)
		if err != nil {
			b.Fatal(err)
		}
		feed(est, tb, 2, 1)
		s := &sched.SRPT{Rates: est}
		s.Select(jobs, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ci := i % len(coschedules)
			est.ObserveInterval(coschedules[ci], 0.25, progress[ci])
			s.Select(jobs, 4)
		}
	})
}
