package online_test

import (
	"math"
	"sync"
	"testing"

	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

var (
	tabOnce sync.Once
	tab     *perfdb.Table
)

// table builds (once) a 4-benchmark SMT table — an interference-rich
// frozen oracle for the estimators to learn.
func table(t testing.TB) *perfdb.Table {
	t.Helper()
	tabOnce.Do(func() {
		suite := program.Suite()
		mini := []program.Profile{suite[1], suite[5], suite[6], suite[7]}
		tab = perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, mini)
	})
	return tab
}

// allCoschedules enumerates every coschedule of size 1..K over the mini
// suite — the full space a learner can be asked about.
func allCoschedules(tb *perfdb.Table) []workload.Coschedule {
	var all []workload.Coschedule
	for size := 1; size <= tb.K(); size++ {
		all = append(all, workload.Multisets(len(tb.Suite()), size)...)
	}
	return all
}

// feed drives the estimator with rounds of ground-truth observations of
// every coschedule, dt time units each — what the eventsim hook would
// report if the scheduler cycled through the whole space.
func feed(est online.Estimator, tb *perfdb.Table, rounds int, dt float64) {
	all := allCoschedules(tb)
	for r := 0; r < rounds; r++ {
		for _, c := range all {
			progress := make([]float64, len(c))
			for i, typ := range c {
				progress[i] = tb.JobWIPC(c, typ) * dt
			}
			est.ObserveInterval(c, dt, progress)
		}
	}
}

// TestSamplerConvergesToOracleRanking is the convergence property of the
// ISSUE: a sampler fed the frozen oracle's true rates reproduces, for
// every coschedule it measured, the oracle's WIPCs exactly — and hence the
// oracle's coschedule ranking. Noiseless measurements make the empirical
// mean exact, so the property is equality, not approximation.
func TestSamplerConvergesToOracleRanking(t *testing.T) {
	tb := table(t)
	s := online.NewSampler(tb.K(), online.SamplerConfig{Epsilon: 0, Seed: 3})
	feed(s, tb, 3, 1)
	if s.Exploring() {
		t.Fatal("sampler still exploring after epsilon-0 quantum rollover")
	}
	var bestEst, bestOracle workload.Coschedule
	bestEstTP, bestOracleTP := math.Inf(-1), math.Inf(-1)
	for _, c := range allCoschedules(tb) {
		for _, typ := range c.Types() {
			got, want := s.JobWIPC(c, typ), tb.JobWIPC(c, typ)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("JobWIPC(%v, %d) = %v, oracle %v", c, typ, got, want)
			}
		}
		// The oracle's stored InstTP sums raw per-slot IPCs, which can be
		// asymmetric across same-type slots at the ~1e-9 level; the
		// sampler reconstructs it from per-type WIPCs, so compare loosely.
		if got, want := s.InstTP(c), tb.InstTP(c); math.Abs(got-want) > 1e-6 {
			t.Fatalf("InstTP(%v) = %v, oracle %v", c, got, want)
		}
		if len(c) == tb.K() {
			if tp := s.InstTP(c); tp > bestEstTP {
				bestEstTP, bestEst = tp, c
			}
			if tp := tb.InstTP(c); tp > bestOracleTP {
				bestOracleTP, bestOracle = tp, c
			}
		}
	}
	if bestEst.Key() != bestOracle.Key() && math.Abs(bestEstTP-bestOracleTP) > 1e-6 {
		t.Errorf("sampler's best coschedule %v (%v) != oracle's %v (%v)",
			bestEst, bestEstTP, bestOracle, bestOracleTP)
	}
}

// TestSamplerSamplePhaseSteering: during a sample phase InstTP must (a)
// stay work-conserving — more slots always outscore fewer — and (b) rank
// the less-measured of two same-size coschedules higher, so an
// InstTP-maximising scheduler visits unmeasured mixes.
func TestSamplerSamplePhaseSteering(t *testing.T) {
	tb := table(t)
	s := online.NewSampler(tb.K(), online.SamplerConfig{Epsilon: 1, Seed: 1})
	if !s.Exploring() {
		t.Fatal("sampler must boot in a sample phase")
	}
	seen := workload.NewCoschedule(0, 1)
	progress := []float64{tb.JobWIPC(seen, 0) * 1, tb.JobWIPC(seen, 1) * 1}
	s.ObserveInterval(seen, 1, progress)
	if !s.Exploring() {
		t.Fatal("epsilon-1 sampler left the sample phase")
	}
	unseen := workload.NewCoschedule(2, 3)
	if s.InstTP(unseen) <= s.InstTP(seen) {
		t.Errorf("sample phase ranks measured %v (%v) above unmeasured %v (%v)",
			seen, s.InstTP(seen), unseen, s.InstTP(unseen))
	}
	bigger := workload.NewCoschedule(0, 1, 0, 1)
	if s.InstTP(bigger) <= s.InstTP(unseen) {
		t.Errorf("sample phase not work-conserving: size-4 %v <= size-2 %v",
			s.InstTP(bigger), s.InstTP(unseen))
	}
}

// TestSamplerEpsilonSplitsPhases: with epsilon strictly between 0 and 1
// the phase flag must actually alternate over many quanta.
func TestSamplerEpsilonSplitsPhases(t *testing.T) {
	tb := table(t)
	s := online.NewSampler(tb.K(), online.SamplerConfig{Epsilon: 0.5, Quantum: 1, Seed: 7})
	c := workload.NewCoschedule(0, 1)
	progress := []float64{tb.JobWIPC(c, 0), tb.JobWIPC(c, 1)}
	explore, exploit := 0, 0
	for i := 0; i < 200; i++ {
		s.ObserveInterval(c, 1, progress)
		if s.Exploring() {
			explore++
		} else {
			exploit++
		}
	}
	if explore == 0 || exploit == 0 {
		t.Errorf("epsilon 0.5 never alternated: %d explore vs %d exploit quanta", explore, exploit)
	}
}

// predictionError returns the mean absolute WIPC error of a rate source
// against the oracle over every (coschedule, type) pair of the given
// sizes.
func predictionError(rs online.RateSource, tb *perfdb.Table, sizes ...int) float64 {
	var sum float64
	n := 0
	for _, size := range sizes {
		for _, c := range workload.Multisets(len(tb.Suite()), size) {
			for _, typ := range c.Types() {
				sum += math.Abs(rs.JobWIPC(c, typ) - tb.JobWIPC(c, typ))
				n++
			}
		}
	}
	return sum / float64(n)
}

// noInterference is the prior baseline: every WIPC is the solo rate 1.
type noInterference struct{ k int }

func (noInterference) Name() string                             { return "prior" }
func (n noInterference) K() int                                 { return n.k }
func (noInterference) JobWIPC(workload.Coschedule, int) float64 { return 1 }
func (n noInterference) InstTP(c workload.Coschedule) float64   { return float64(len(c)) }
func (noInterference) Epoch() uint64                            { return 0 }

// TestPairwiseLearnsInterference: after seeing the whole coschedule
// space, the pairwise model's predictions must beat the no-interference
// prior by a wide margin (the SMT machine is not exactly pairwise-linear,
// so the property is a strong error reduction, not equality).
func TestPairwiseLearnsInterference(t *testing.T) {
	tb := table(t)
	p := online.NewPairwise(tb.K(), len(tb.Suite()), online.PairwiseConfig{})
	feed(p, tb, 2, 1)
	prior := predictionError(noInterference{tb.K()}, tb, 2, 3, 4)
	got := predictionError(p, tb, 2, 3, 4)
	if got > prior/3 {
		t.Errorf("pairwise error %.4f not well below prior %.4f", got, prior)
	}
	// The learned coefficients must be interference (negative) on average.
	var coefSum float64
	for b := 0; b < len(tb.Suite()); b++ {
		for u := 0; u < len(tb.Suite()); u++ {
			coefSum += p.Coef(b, u)
		}
	}
	if coefSum >= 0 {
		t.Errorf("mean learned coefficient %.4f not negative (co-runners must slow jobs)", coefSum)
	}
}

// TestPairwiseGeneralisesToUnseenMultisets is the model-based estimator's
// selling point: trained on pairs only (size-2 coschedules), it must
// predict the rates of size-3/4 multisets it never observed better than
// the no-interference prior does.
func TestPairwiseGeneralisesToUnseenMultisets(t *testing.T) {
	tb := table(t)
	p := online.NewPairwise(tb.K(), len(tb.Suite()), online.PairwiseConfig{})
	for r := 0; r < 2; r++ {
		for _, c := range workload.Multisets(len(tb.Suite()), 2) {
			progress := []float64{tb.JobWIPC(c, c[0]) * 1, tb.JobWIPC(c, c[1]) * 1}
			p.ObserveInterval(c, 1, progress)
		}
	}
	prior := predictionError(noInterference{tb.K()}, tb, 3, 4)
	got := predictionError(p, tb, 3, 4)
	if got >= prior {
		t.Errorf("pairs-only pairwise error %.4f no better than prior %.4f on unseen sizes", got, prior)
	}
}

// TestEstimatorsDeterministicPerSeed: two estimators fed the same
// observation sequence report identical estimates — the property that
// keeps online sweeps byte-identical at any parallelism.
func TestEstimatorsDeterministicPerSeed(t *testing.T) {
	tb := table(t)
	for _, name := range []string{"sampler", "pairwise"} {
		a, err := online.New(name, tb, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := online.New(name, tb, 42)
		if err != nil {
			t.Fatal(err)
		}
		feed(a, tb, 2, 0.7)
		feed(b, tb, 2, 0.7)
		for _, c := range allCoschedules(tb) {
			if a.InstTP(c) != b.InstTP(c) {
				t.Fatalf("%s: InstTP(%v) differs across identical runs", name, c)
			}
			for _, typ := range c.Types() {
				if a.JobWIPC(c, typ) != b.JobWIPC(c, typ) {
					t.Fatalf("%s: JobWIPC(%v, %d) differs across identical runs", name, c, typ)
				}
			}
		}
		if a.Observations() != b.Observations() {
			t.Fatalf("%s: observation counts differ", name)
		}
	}
}

// TestFactory covers names, the oracle pass-through and the error path.
func TestFactory(t *testing.T) {
	tb := table(t)
	for _, name := range online.Names {
		est, err := online.New(name, tb, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if est.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, est.Name())
		}
		if est.K() != tb.K() {
			t.Errorf("New(%q).K() = %d, want %d", name, est.K(), tb.K())
		}
	}
	if _, err := online.New("psychic", tb, 1); err == nil {
		t.Error("New(psychic) succeeded")
	}
	// The oracle serves the table's truth and ignores observations.
	o, _ := online.New("oracle", tb, 1)
	c := workload.NewCoschedule(0, 1, 2, 3)
	o.ObserveInterval(c, 1, []float64{9, 9, 9, 9})
	if o.InstTP(c) != tb.InstTP(c) {
		t.Error("oracle InstTP drifted from the table")
	}
}
