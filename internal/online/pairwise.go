package online

import (
	"symbiosched/internal/linalg"
	"symbiosched/internal/workload"
)

// PairwiseConfig parameterises the model-based estimator.
type PairwiseConfig struct {
	// Ridge is the L2 regularisation weight pulling interference
	// coefficients toward zero — the no-interference prior (default 1e-3).
	Ridge float64
	// MinRate and MaxRate clamp predicted WIPCs so a prediction can never
	// be non-positive or absurdly optimistic (defaults 0.05 and 1.5).
	MinRate, MaxRate float64
}

func (c PairwiseConfig) withDefaults() PairwiseConfig {
	if c.Ridge <= 0 {
		c.Ridge = 1e-3
	}
	if c.MinRate <= 0 {
		c.MinRate = 0.05
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 1.5
	}
	return c
}

// Pairwise learns a per-pair interference matrix from observed interval
// rates: the WIPC of a type-b job in coschedule c is modelled as
//
//	wipc_b(c) = 1 + sum over co-runner slots t of beta[b][t]
//
// with the intercept pinned at the solo rate (WIPC 1 by definition).
// Every observed interval contributes one dt-weighted sample per distinct
// type in the coschedule; the per-type normal equations are accumulated
// incrementally (an n-by-n Gram matrix per type, n the suite size) and
// re-solved lazily with ridge regularisation. Laziness is per type: an
// observation only marks the types it touched dirty, and a query
// re-solves just the queried type, once, however many observations
// arrived since its last solve — so the ridge cost scales with queries
// of stale types, not with observations. Because the model factors
// interference into pairwise terms, it predicts rates for multisets it
// has never run — the generalisation the sampler lacks — at the cost of a
// linear-superposition assumption the true machine only approximates.
type Pairwise struct {
	k, n int
	cfg  PairwiseConfig

	gram []*linalg.Matrix // per type: X' W X, n x n
	rhs  [][]float64      // per type: X' W (y - 1)
	beta [][]float64      // per type: solved coefficients (nil until seen)
	seen []bool
	obsT []float64 // per type: total observed time (sample weight mass)

	dirty     []bool // per type: observations newer than beta
	nobs      int
	epochBias uint64 // forced epoch advances (BumpEpoch) on top of nobs

	// met, when non-nil, receives the learning instruments. Nil — the
	// default — keeps the observe and solve paths uninstrumented.
	met *Metrics

	// ObserveInterval scratch, reused across intervals.
	typesBuf []int
	xsBuf    []float64
}

// NewPairwise returns a pairwise estimator for a k-context machine over a
// suite of n job types.
func NewPairwise(k, n int, cfg PairwiseConfig) *Pairwise {
	p := &Pairwise{
		k:     k,
		n:     n,
		cfg:   cfg.withDefaults(),
		gram:  make([]*linalg.Matrix, n),
		rhs:   make([][]float64, n),
		beta:  make([][]float64, n),
		seen:  make([]bool, n),
		obsT:  make([]float64, n),
		dirty: make([]bool, n),
	}
	return p
}

// Epoch implements RateSource: the observation count. Predictions drift
// only when ObserveInterval folds in an effective interval (degenerate
// intervals return before mutating anything), and the lazy per-type
// re-solve is a pure function of the accumulated normal equations —
// independent of query order — so within one epoch the model answers
// identically and decisions over it may be memoized until the next
// observation.
func (p *Pairwise) Epoch() uint64 { return uint64(p.nobs) + p.epochBias }

// BumpEpoch implements EpochBumper: force-advance the epoch so that
// decisions memoized over the model are re-derived even though no
// observation arrived — e.g. across a server outage, after which the
// fit may be stale. The fit itself is untouched.
func (p *Pairwise) BumpEpoch() { p.epochBias++ }

// MaxJobWIPC implements the pruning-bound capability: predictions are
// clamped to MaxRate, so the clamp is an admissible per-slot bound (and
// InstTP is the plain sum of the per-slot predictions).
func (p *Pairwise) MaxJobWIPC(int, int) float64 { return p.cfg.MaxRate }

// Name implements RateSource.
func (p *Pairwise) Name() string { return "pairwise" }

// K implements RateSource.
func (p *Pairwise) K() int { return p.k }

// Observations implements Estimator.
func (p *Pairwise) Observations() int { return p.nobs }

// ObserveInterval implements IntervalObserver: fold the interval's
// measured per-type rates into the normal equations.
func (p *Pairwise) ObserveInterval(cos workload.Coschedule, dt float64, progress []float64) {
	if dt <= 0 || len(cos) == 0 {
		return
	}
	// Interval-invariant feature scratch, built once per interval: the
	// distinct types of the (canonical, sorted) coschedule and their slot
	// counts. The observe path runs at every simulated interval and must
	// not allocate.
	p.typesBuf = p.typesBuf[:0]
	for j, t := range cos {
		if j == 0 || t != cos[j-1] {
			p.typesBuf = append(p.typesBuf, t)
		}
	}
	types := p.typesBuf
	if cap(p.xsBuf) < len(types) {
		p.xsBuf = make([]float64, len(types))
	}
	xs := p.xsBuf[:len(types)]
	for i := 0; i < len(cos); i++ {
		b := cos[i]
		if i > 0 && b == cos[i-1] {
			continue // same-type slots are symmetric: one sample per type
		}
		// Measured WIPC of one type-b job, averaged over its slots.
		var work float64
		cnt := 0
		for j, typ := range cos {
			if typ == b {
				work += progress[j]
				cnt++
			}
		}
		y := work / (float64(cnt) * dt)
		if p.gram[b] == nil {
			p.gram[b] = linalg.NewMatrix(p.n, p.n)
			p.rhs[b] = make([]float64, p.n)
		}
		// Feature vector: co-runner counts (x[t] = count_t minus one for
		// b itself). Only the coschedule's types are non-zero, so the
		// rank-1 Gram update touches at most k*k entries.
		for ti, t := range types {
			x := float64(cos.Count(t))
			if t == b {
				x--
			}
			xs[ti] = x
		}
		g, r := p.gram[b], p.rhs[b]
		for ti, t := range types {
			if xs[ti] == 0 {
				continue
			}
			r[t] += dt * (y - 1) * xs[ti]
			for tj, u := range types {
				if xs[tj] == 0 {
					continue
				}
				g.Set(t, u, g.At(t, u)+dt*xs[ti]*xs[tj])
			}
		}
		p.seen[b] = true
		p.obsT[b] += dt
		p.dirty[b] = true
	}
	p.nobs++
	p.met.observed()
}

// solve refits type b's coefficients from its accumulated normal
// equations, if observations arrived since the last fit. The ridge term
// keeps the system positive definite even before every pair has been
// observed, shrinking unidentified coefficients to the no-interference
// prior. Solving per queried type is what makes the laziness genuine: a
// burst of observations costs one re-solve per type at its next query,
// not one per observation.
func (p *Pairwise) solve(b int) {
	if !p.dirty[b] || !p.seen[b] {
		return
	}
	p.dirty[b] = false
	if p.met != nil {
		p.met.Solves.Inc()
	}
	a := p.gram[b].Clone()
	// Scale the ridge with the accumulated weight so regularisation
	// stays a prior, not a cap, as evidence grows.
	lambda := p.cfg.Ridge * (1 + p.obsT[b])
	for i := 0; i < p.n; i++ {
		a.Set(i, i, a.At(i, i)+lambda)
	}
	x, err := linalg.Solve(a, p.rhs[b])
	if err != nil {
		return // keep the previous fit; ridge makes this unreachable
	}
	p.beta[b] = x
}

// Coef returns the fitted interference coefficient of co-runner type t on
// type b (0 until observed) — the learned pairwise matrix entry.
func (p *Pairwise) Coef(b, t int) float64 {
	p.solve(b)
	if p.beta[b] == nil {
		return 0
	}
	return p.beta[b][t]
}

// JobWIPC implements RateSource: the model prediction, clamped to a
// positive range; types never observed fall back to the solo prior.
func (p *Pairwise) JobWIPC(c workload.Coschedule, b int) float64 {
	p.solve(b)
	pred := 1.0
	if beta := p.beta[b]; beta != nil {
		for _, t := range c {
			pred += beta[t]
		}
		pred -= beta[b] // b's own slot is not a co-runner
	}
	if pred < p.cfg.MinRate {
		return p.cfg.MinRate
	}
	if pred > p.cfg.MaxRate {
		return p.cfg.MaxRate
	}
	return pred
}

// InstTP implements RateSource: the sum of the per-slot predictions.
func (p *Pairwise) InstTP(c workload.Coschedule) float64 {
	var sum float64
	for _, typ := range c {
		sum += p.JobWIPC(c, typ)
	}
	return sum
}
