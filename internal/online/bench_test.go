package online_test

import (
	"testing"

	"symbiosched/internal/online"
	"symbiosched/internal/workload"
)

// BenchmarkOnlineEstimator measures the estimators' hot path as the event
// loop exercises it: one interval observation followed by one InstTP
// query (the quantity MAXIT evaluates per candidate coschedule). The
// baseline is recorded in BENCH_online.json.
func BenchmarkOnlineEstimator(b *testing.B) {
	tb := table(b)
	coschedules := allCoschedules(tb)
	progress := make([][]float64, len(coschedules))
	for i, c := range coschedules {
		progress[i] = make([]float64, len(c))
		for j, typ := range c {
			progress[i][j] = tb.JobWIPC(c, typ) * 0.25
		}
	}
	for _, name := range []string{"oracle", "sampler", "pairwise"} {
		b.Run(name, func(b *testing.B) {
			est, err := online.New(name, tb, 1)
			if err != nil {
				b.Fatal(err)
			}
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ci := i % len(coschedules)
				est.ObserveInterval(coschedules[ci], 0.25, progress[ci])
				sink += est.InstTP(coschedules[(i*7+3)%len(coschedules)])
			}
			_ = sink
		})
	}
	b.Run("sampler/query-only", func(b *testing.B) {
		est, _ := online.New("sampler", tb, 1)
		for i, c := range coschedules {
			est.ObserveInterval(c, 1, progress[i])
		}
		benchQueries(b, est, coschedules)
	})
	b.Run("pairwise/query-only", func(b *testing.B) {
		est, _ := online.New("pairwise", tb, 1)
		for i, c := range coschedules {
			est.ObserveInterval(c, 1, progress[i])
		}
		benchQueries(b, est, coschedules)
	})
}

func benchQueries(b *testing.B, rs online.RateSource, coschedules []workload.Coschedule) {
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += rs.InstTP(coschedules[i%len(coschedules)])
	}
	_ = sink
}
