package online

import (
	"symbiosched/internal/perfdb"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// SamplerConfig parameterises the SOS-style sampling estimator.
type SamplerConfig struct {
	// Epsilon is the probability that a phase quantum is a sample phase
	// rather than a symbiosis phase — the long-run fraction of time spent
	// measuring instead of exploiting (0 disables sampling after the
	// bootstrap quantum; New uses 0.1).
	Epsilon float64
	// Quantum is the observed-time length of one phase (default 4).
	Quantum float64
	// MinSample is the observed time under which a coschedule still counts
	// as unmeasured and is served the optimistic Prior (default 0.5).
	MinSample float64
	// Prior is the optimistic per-job WIPC assumed for unmeasured
	// coschedules: 1 means "no interference", which makes unexplored mixes
	// attractive and bootstraps exploration (default 1).
	Prior float64
	// Seed drives the phase draws (default 1).
	Seed uint64
}

func (c SamplerConfig) withDefaults() SamplerConfig {
	if c.Quantum <= 0 {
		c.Quantum = 4
	}
	if c.MinSample <= 0 {
		c.MinSample = 0.5
	}
	if c.Prior <= 0 {
		c.Prior = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// sampleAcc accumulates one coschedule's measurements: total observed time
// and total progress per job type.
type sampleAcc struct {
	time float64
	work map[int]float64
}

// Sampler learns co-run rates the way Snavely & Tullsen's SOS scheduler
// does: by running coschedules and measuring them. Phases alternate on the
// observed clock — during a sample phase InstTP ranks feasible coschedules
// by how little they have been measured, steering a MAXIT-style scheduler
// toward the least-known mix; during a symbiosis phase it reports the
// empirical rates (optimistic Prior for unmeasured mixes). The estimate
// for a measured coschedule is its exact empirical WIPC, so with full
// coverage the sampler reproduces the oracle's ranking.
type Sampler struct {
	k    int
	cfg  SamplerConfig
	rng  *stats.RNG
	accs map[uint64]*sampleAcc

	clock     float64 // total observed time
	phaseLeft float64 // time left in the current quantum
	exploring bool
	nobs      int
	epochBias uint64 // forced epoch advances (BumpEpoch) on top of nobs

	// met, when non-nil, receives the learning instruments. Nil — the
	// default — keeps the observe path uninstrumented.
	met *Metrics
}

// NewSampler returns a sampler for a k-context machine. The first quantum
// is always a sample phase, bootstrapping measurements; afterwards each
// quantum is a sample phase with probability cfg.Epsilon. Unlike New,
// NewSampler takes cfg.Epsilon literally (0 means no sampling phases
// beyond the bootstrap).
func NewSampler(k int, cfg SamplerConfig) *Sampler {
	cfg = cfg.withDefaults()
	return &Sampler{
		k:         k,
		cfg:       cfg,
		rng:       stats.NewRNG(cfg.Seed),
		accs:      make(map[uint64]*sampleAcc),
		phaseLeft: cfg.Quantum,
		exploring: true,
	}
}

// Name implements RateSource.
func (s *Sampler) Name() string { return "sampler" }

// K implements RateSource.
func (s *Sampler) K() int { return s.k }

// Epoch implements RateSource: the observation count. Every effective
// ObserveInterval mutates the estimates (and possibly the phase), and
// nothing else does — the degenerate intervals it ignores (dt <= 0,
// empty coschedule) leave both the counter and the state untouched — so
// between observations the sampler is a fixed function and decisions
// over it may be memoized for exactly that long. Note the sampler does
// NOT implement the MaxJobWIPC pruning bound: its sample-phase InstTP is
// an exploration score, not a sum of per-slot rates, so no per-slot
// bound is admissible for it.
func (s *Sampler) Epoch() uint64 { return uint64(s.nobs) + s.epochBias }

// BumpEpoch implements EpochBumper: force-advance the epoch so that
// decisions memoized over the sampler are re-derived even though no
// observation arrived — e.g. across a server outage, after which the
// estimates may be stale. The estimates themselves are untouched.
func (s *Sampler) BumpEpoch() { s.epochBias++ }

// Observations implements Estimator.
func (s *Sampler) Observations() int { return s.nobs }

// Exploring reports whether the sampler is currently in a sample phase.
func (s *Sampler) Exploring() bool { return s.exploring }

// ObservedTime returns how long coschedule c has been measured.
func (s *Sampler) ObservedTime(c workload.Coschedule) float64 {
	if acc := s.accs[perfdb.Key(c)]; acc != nil {
		return acc.time
	}
	return 0
}

// ObserveInterval implements IntervalObserver: accumulate the interval
// into the coschedule's empirical rates and advance the phase clock.
func (s *Sampler) ObserveInterval(cos workload.Coschedule, dt float64, progress []float64) {
	if dt <= 0 || len(cos) == 0 {
		return
	}
	key := perfdb.Key(cos)
	acc := s.accs[key]
	if acc == nil {
		acc = &sampleAcc{work: make(map[int]float64, len(cos))}
		s.accs[key] = acc
	}
	acc.time += dt
	for i, typ := range cos {
		acc.work[typ] += progress[i]
	}
	s.nobs++
	s.met.observed()
	s.clock += dt
	s.phaseLeft -= dt
	for s.phaseLeft <= 0 {
		s.phaseLeft += s.cfg.Quantum
		s.exploring = s.rng.Float64() < s.cfg.Epsilon
	}
}

// JobWIPC implements RateSource: the empirical per-job rate once the
// coschedule has been measured for MinSample time, the optimistic Prior
// before that.
func (s *Sampler) JobWIPC(c workload.Coschedule, b int) float64 {
	if acc := s.accs[perfdb.Key(c)]; acc != nil && acc.time >= s.cfg.MinSample {
		if n := c.Count(b); n > 0 {
			return acc.work[b] / (float64(n) * acc.time)
		}
	}
	return s.cfg.Prior
}

// InstTP implements RateSource. During a symbiosis phase it is the sum of
// the per-slot estimated WIPCs. During a sample phase it ranks coschedules
// so that an InstTP-maximising scheduler implements SOS sampling: the
// slot-count term keeps selection work-conserving (more jobs always beat
// fewer) and the 1/(1+observed) term steers same-size choices toward the
// least-measured mix.
func (s *Sampler) InstTP(c workload.Coschedule) float64 {
	if len(c) == 0 {
		return 0
	}
	if s.exploring {
		return 2*s.cfg.Prior*float64(len(c)) + 1/(1+s.ObservedTime(c))
	}
	var sum float64
	for _, typ := range c {
		sum += s.JobWIPC(c, typ)
	}
	return sum
}
