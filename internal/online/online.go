// Package online closes the paper's "perfect knowledge" gap: every
// scheduler and dispatcher in the repo decides over a RateSource — the
// per-coschedule WIPC/IPC knowledge the paper assumes comes from an
// oracle performance database — and this package supplies RateSources
// that *learn* those rates at run time instead.
//
// Three estimators are provided:
//
//   - Oracle wraps the perfdb table: the paper's idealised setting, and
//     the baseline every learner is measured against.
//   - Sampler is an SOS-style sampling learner (after Snavely & Tullsen):
//     it alternates sample phases, which steer the scheduler toward the
//     least-measured feasible coschedule, with symbiosis phases that
//     exploit the rates measured so far; an epsilon-greedy knob sets the
//     long-run fraction of time spent sampling.
//   - Pairwise is the model-based learner: it fits a per-pair interference
//     matrix to the observed interval rates by incrementally accumulated
//     least squares, so it generalises to coschedules it has never run.
//
// Estimators are fed by the measurement hook in eventsim.Server.Advance,
// which reports the ground-truth (coschedule, dt, per-slot progress) of
// every simulated interval — the information hardware counters would give
// a real symbiotic scheduler. All estimators are deterministic per seed
// and mutate state only inside the (single-threaded) event loop, so
// runner sweeps over online simulations stay byte-identical at any
// parallelism level.
package online

import (
	"fmt"
	"strings"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// RateSource is the per-coschedule performance knowledge that schedulers
// (sched.MAXIT, sched.SRPT) and dispatchers (farm.LeastInterference)
// decide over. The oracle *perfdb.Table satisfies it directly; estimators
// in this package substitute learned rates for the oracle's.
type RateSource interface {
	// Name identifies the source in reports.
	Name() string
	// K is the number of contexts of the machine the rates describe.
	K() int
	// JobWIPC returns the (estimated) WIPC of one job of global type b in
	// coschedule c. Implementations must return a positive rate for any
	// b in c, even for coschedules never observed.
	JobWIPC(c workload.Coschedule, b int) float64
	// InstTP returns the (estimated) instantaneous throughput of
	// coschedule c — the score MAXIT-style schedulers maximise.
	InstTP(c workload.Coschedule) float64
	// Epoch is the source's rate-revision counter: within one epoch the
	// source answers every query for one multiset identically, so
	// schedulers may memoize decisions made over it and keep the memo
	// until the epoch changes. Static sources (the oracle table and its
	// wrapper) return a constant; learners bump the counter whenever an
	// observation moves their estimates (Sampler and Pairwise bump it in
	// ObserveInterval), which is what lets online runs share the oracle's
	// decision memo between observations.
	Epoch() uint64
}

// The oracle table is one RateSource implementation.
var _ RateSource = (*perfdb.Table)(nil)

// EpochBumper is the optional capability of rate sources whose Epoch
// can be force-advanced without an observation. The farm bumps a
// repaired server's source so every epoch-gated decision cache — the
// MAXIT decision memo, the server's marginal-InstTP dispatch cache —
// drops whatever it memoized before the outage: a learner's estimates
// may have gone stale relative to the reality the server returns to.
// Static sources (the oracle table and its wrapper) deliberately do not
// implement it — their rates cannot go stale, so their memos stay sound
// across a repair.
type EpochBumper interface{ BumpEpoch() }

// Sampler and Pairwise are the bumpable sources.
var (
	_ EpochBumper = (*Sampler)(nil)
	_ EpochBumper = (*Pairwise)(nil)
)

// IntervalObserver receives ground-truth interval measurements from the
// event loop: canonical coschedule cos ran for dt time units and the job
// in slot i progressed by progress[i] WIPC-units of work (progress[i]/dt
// is slot i's measured WIPC). Callers may reuse both the cos and progress
// slices across calls; implementations must copy whatever they retain.
type IntervalObserver interface {
	ObserveInterval(cos workload.Coschedule, dt float64, progress []float64)
}

// Estimator is a RateSource that learns from interval observations.
type Estimator interface {
	RateSource
	IntervalObserver
	// Observations returns how many intervals have been recorded.
	Observations() int
}

// Names lists the built-in estimators in presentation order.
var Names = []string{"oracle", "sampler", "pairwise"}

// New builds a fresh estimator by name for the machine described by the
// oracle table t (the table supplies K and the suite size; only "oracle"
// retains the table's rates). Estimators carry run state and must not be
// shared across simulations; seed drives the sampler's phase draws.
func New(name string, t *perfdb.Table, seed uint64) (Estimator, error) {
	switch name {
	case "oracle":
		return Oracle{Table: t}, nil
	case "sampler":
		return NewSampler(t.K(), SamplerConfig{Epsilon: 0.1, Seed: seed}), nil
	case "pairwise":
		return NewPairwise(t.K(), len(t.Suite()), PairwiseConfig{}), nil
	default:
		return nil, fmt.Errorf("online: unknown estimator %q (want one of %s)",
			name, strings.Join(Names, ", "))
	}
}

// Oracle is the perfect-knowledge estimator: it serves the table's true
// rates and learns nothing. It is the baseline of the knowledge-gap
// experiment and the default rate source everywhere.
type Oracle struct{ Table *perfdb.Table }

// Name implements RateSource.
func (Oracle) Name() string { return "oracle" }

// K implements RateSource.
func (o Oracle) K() int { return o.Table.K() }

// JobWIPC implements RateSource.
func (o Oracle) JobWIPC(c workload.Coschedule, b int) float64 { return o.Table.JobWIPC(c, b) }

// InstTP implements RateSource.
func (o Oracle) InstTP(c workload.Coschedule) float64 { return o.Table.InstTP(c) }

// Epoch implements RateSource: the oracle's rates never drift.
func (Oracle) Epoch() uint64 { return 0 }

// MaxJobWIPC exposes the table's admissible per-slot rate bound, so
// schedulers prune over the wrapper exactly as over the bare table.
func (o Oracle) MaxJobWIPC(b, slots int) float64 { return o.Table.MaxJobWIPC(b, slots) }

// JobWIPCByKey exposes the table's uint64-keyed probe, so schedulers take
// the same fast path over the wrapper as over the bare table.
func (o Oracle) JobWIPCByKey(k uint64, b int) float64 { return o.Table.JobWIPCByKey(k, b) }

// InstTPByKey exposes the table's uint64-keyed probe.
func (o Oracle) InstTPByKey(k uint64) float64 { return o.Table.InstTPByKey(k) }

// TypeWIPCsByKey exposes the table's dense batch rate probe.
func (o Oracle) TypeWIPCsByKey(k uint64) []float64 { return o.Table.TypeWIPCsByKey(k) }

// ObserveInterval implements IntervalObserver: the oracle has nothing to
// learn.
func (Oracle) ObserveInterval(workload.Coschedule, float64, []float64) {}

// Observations implements Estimator.
func (Oracle) Observations() int { return 0 }
