package online_test

import (
	"testing"

	"symbiosched/internal/core"
	"symbiosched/internal/eventsim"
	"symbiosched/internal/online"
	"symbiosched/internal/sched"
	"symbiosched/internal/workload"
)

// TestLearnedMAXITReachesOracleThroughput pins the PR's acceptance
// criterion end to end: MAXIT deciding over each learned estimator, on
// the SMT machine at offered load 0.9 of the FCFS maximum throughput,
// must reach at least 90% of the throughput of MAXIT with the oracle
// table — under identical arrivals, with the estimator fed only by the
// simulation's own interval measurements.
func TestLearnedMAXITReachesOracleThroughput(t *testing.T) {
	tb := table(t)
	w := workload.Workload{0, 1, 2, 3}
	base := core.FCFS(tb, w, core.FCFSConfig{Jobs: 5000}).Throughput
	cfg := eventsim.LatencyConfig{Lambda: 0.9 * base, Jobs: 8000, SizeShape: 4, Seed: 11}

	run := func(estimator string) *eventsim.Result {
		t.Helper()
		est, err := online.New(estimator, tb, 5)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.New("MAXIT", est, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eventsim.LatencyObserved(tb, w, s, est, cfg)
		if err != nil {
			t.Fatalf("%s: %v", estimator, err)
		}
		return res
	}

	oracle := run("oracle")
	if oracle.Throughput <= 0 {
		t.Fatalf("oracle throughput %v", oracle.Throughput)
	}
	for _, name := range []string{"sampler", "pairwise"} {
		res := run(name)
		if ratio := res.Throughput / oracle.Throughput; ratio < 0.9 {
			t.Errorf("%s-MAXIT throughput %.4f is %.1f%% of oracle-MAXIT %.4f (want >= 90%%)",
				name, res.Throughput, 100*ratio, oracle.Throughput)
		}
		// A learner that "keeps up" by letting the queue explode would
		// still pass a throughput check at sub-saturation load; bound the
		// turnaround blow-up too.
		if rel := res.MeanTurnaround / oracle.MeanTurnaround; rel > 1.5 {
			t.Errorf("%s-MAXIT turnaround %.3f is %.2fx oracle's %.3f (want <= 1.5x)",
				name, res.MeanTurnaround, rel, oracle.MeanTurnaround)
		}
	}
}

// TestObservedOracleMatchesLatency: LatencyObserved with the no-op oracle
// observer is the plain Latency experiment, bit for bit — installing the
// measurement hook must not perturb the simulation.
func TestObservedOracleMatchesLatency(t *testing.T) {
	tb := table(t)
	w := workload.Workload{0, 1, 2, 3}
	cfg := eventsim.LatencyConfig{Lambda: 1.2, Jobs: 3000, SizeShape: 4, Seed: 4}
	s1, err := sched.New("MAXIT", tb, w)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eventsim.Latency(tb, w, s1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, _ := online.New("oracle", tb, 1)
	s2, err := sched.New("MAXIT", est, w)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := eventsim.LatencyObserved(tb, w, s2, est, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MeanTurnaround != observed.MeanTurnaround || plain.Throughput != observed.Throughput ||
		plain.Utilisation != observed.Utilisation {
		t.Errorf("observed-oracle run differs from plain Latency: %+v vs %+v", observed, plain)
	}
}
