package online

import "symbiosched/internal/metrics"

// Metrics is the learning-layer instrument set. A nil *Metrics (the
// default) is the disabled state; the estimators guard their hooks
// behind one nil check, keeping the allocation-free observe path intact.
type Metrics struct {
	// Observations counts effective ObserveInterval calls (degenerate
	// zero-length or empty intervals are dropped before counting, exactly
	// as they are dropped before updating the model).
	Observations *metrics.Counter
	// EpochBumps counts rate-epoch increments — every one invalidates
	// downstream decision memos and marginal caches, so the ratio of
	// bumps to decisions bounds how much memoization can ever help over a
	// learning source.
	EpochBumps *metrics.Counter
	// Solves counts actual lazy refits (Pairwise ridge solves); queries
	// answered by a clean fit don't count.
	Solves *metrics.Counter
}

// NewMetrics registers the learning instruments on c (nil c → nil
// Metrics, the disabled state).
func NewMetrics(c *metrics.Collector) *Metrics {
	if c == nil {
		return nil
	}
	return &Metrics{
		Observations: c.Counter("online_observations"),
		EpochBumps:   c.Counter("online_epoch_bumps"),
		Solves:       c.Counter("online_solves"),
	}
}

// observed is the nil-receiver-safe hook the estimators call where they
// bump nobs: one effective observation, one epoch bump.
func (m *Metrics) observed() {
	if m != nil {
		m.Observations.Inc()
		m.EpochBumps.Inc()
	}
}

// SetMetrics installs (or, with nil, removes) the sampler's instrument
// set.
func (s *Sampler) SetMetrics(m *Metrics) { s.met = m }

// SetMetrics installs (or, with nil, removes) the pairwise estimator's
// instrument set.
func (p *Pairwise) SetMetrics(m *Metrics) { p.met = m }

// AttachMetrics hands the instrument set to a rate source, when it is an
// estimator that learns (the oracle table and Oracle wrapper neither
// observe nor solve, so there is nothing to count). Attaching nil
// restores the disabled state.
func AttachMetrics(rs RateSource, m *Metrics) {
	switch es := rs.(type) {
	case *Sampler:
		es.SetMetrics(m)
	case *Pairwise:
		es.SetMetrics(m)
	}
}
