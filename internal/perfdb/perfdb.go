// Package perfdb builds and serves the per-coschedule performance database
// the study consumes: for every multiset of 1..K jobs drawn from the
// benchmark suite, the per-job execution rates on a given machine.
//
// The paper simulated "all 1,365 combinations (with repetition) of 4
// benchmarks out of the 12 selected" per configuration with Sniper; here a
// Model (the mechanistic SMT or multicore model, or the cycle-level
// simulator) plays Sniper's role. Coschedules smaller than K are included
// too because the latency experiments of Section VI run partially loaded.
//
// Rates are expressed both as raw IPC and as WIPC (weighted instructions
// per cycle): a job's IPC divided by its solo IPC on the same machine,
// the paper's unit of work (Section III-B). A job "sized 1" thus takes
// exactly one time unit when run alone, and per-coschedule instantaneous
// throughput it(s) is the sum of its jobs' WIPCs.
package perfdb

import (
	"context"
	"fmt"

	"symbiosched/internal/multicore"
	"symbiosched/internal/program"
	"symbiosched/internal/runner"
	"symbiosched/internal/smtmodel"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

// Model maps a list of co-running jobs (1..K profiles) to their per-slot
// IPCs. Implementations must be symmetric: permuting the input permutes
// the output. They must be safe for concurrent use.
type Model interface {
	// Name identifies the model/machine (used in reports).
	Name() string
	// Contexts is K, the number of cores or hardware thread contexts.
	Contexts() int
	// SlotIPC returns the IPC of each job in the coschedule, aligned
	// with the input slice.
	SlotIPC(jobs []*program.Profile) []float64
}

// SMTModel adapts the mechanistic SMT sharing model to the Model interface.
type SMTModel struct{ Machine uarch.SMTMachine }

// Name implements Model.
func (m SMTModel) Name() string { return m.Machine.String() }

// Contexts implements Model.
func (m SMTModel) Contexts() int { return m.Machine.Threads }

// SlotIPC implements Model.
func (m SMTModel) SlotIPC(jobs []*program.Profile) []float64 {
	return smtmodel.Rates(m.Machine, jobs).IPC
}

// MulticoreModel adapts the multicore model to the Model interface.
type MulticoreModel struct{ Machine uarch.MulticoreMachine }

// Name implements Model.
func (m MulticoreModel) Name() string { return m.Machine.String() }

// Contexts implements Model.
func (m MulticoreModel) Contexts() int { return m.Machine.Cores }

// SlotIPC implements Model.
func (m MulticoreModel) SlotIPC(jobs []*program.Profile) []float64 {
	return multicore.Rates(m.Machine, jobs).IPC
}

// UniformModel is a synthetic machine with K symmetric contexts and no
// interference: every job runs at IPC 1 regardless of its co-runners, so
// every WIPC in the resulting table is exactly 1. With exponential job
// sizes the event simulation over such a table is a textbook M/M/K queue,
// which makes the model the analytic cross-validation oracle for the
// simulators (internal/farm pins itself to queueing.MMC through it).
type UniformModel struct{ K int }

// Name implements Model.
func (m UniformModel) Name() string { return fmt.Sprintf("uniform-%d", m.K) }

// Contexts implements Model.
func (m UniformModel) Contexts() int { return m.K }

// SlotIPC implements Model.
func (m UniformModel) SlotIPC(jobs []*program.Profile) []float64 {
	ipc := make([]float64, len(jobs))
	for i := range ipc {
		ipc[i] = 1
	}
	return ipc
}

// Entry is the stored performance of one coschedule.
type Entry struct {
	// Cos is the canonical (sorted) coschedule in global type indices.
	Cos workload.Coschedule
	// SlotIPC is the raw IPC per slot, aligned with Cos.
	SlotIPC []float64
	// TypeWIPC[b] is the WIPC of one job of global type b in this
	// coschedule (0 when the type is absent). Jobs of the same type are
	// symmetric, so one number per type suffices.
	TypeWIPC map[int]float64
	// InstTP is the instantaneous throughput it(s): the sum over slots of
	// WIPC, i.e. sum over types of r_b(s) in the paper's Eq. (1).
	InstTP float64

	// wipc mirrors TypeWIPC as a dense suite-indexed slice (0 for absent
	// types), so per-candidate scoring loops read an array element per
	// type instead of paying a map probe. Maintained by the table
	// alongside its rate bounds (build, load, clone, override).
	wipc []float64
}

// Table is the complete performance database for one machine.
type Table struct {
	name  string
	k     int
	suite []program.Profile
	// Solo[b] is the solo IPC of benchmark b on this machine (the WIPC
	// reference).
	Solo    []float64
	entries map[uint64]*Entry
	// maxWIPCBySize[s-1][b] is the maximum WIPC a type-b job attains over
	// every stored s-slot coschedule — the admissible per-slot rate bound
	// MaxJobWIPC serves. The size axis matters: WIPC is normalized, so the
	// all-sizes maximum is 1 for every type (its solo entry attains it) and
	// would never prune anything; but within one Select every candidate has
	// the same slot count, so the exact size class applies, and interference
	// makes it tighten sharply as coschedules fill up. Derived eagerly
	// (build, load, clone, override) because tables are shared read-only
	// across sweep goroutines.
	maxWIPCBySize [][]float64
}

// Key encodes a canonical coschedule (len <= 8, types < 256) as a uint64.
func Key(c workload.Coschedule) uint64 {
	if len(c) > 8 {
		panic("perfdb: coschedule longer than 8")
	}
	k := EmptyKey
	for _, t := range c {
		if t < 0 || t > 255 {
			panic(fmt.Sprintf("perfdb: type %d out of key range", t))
		}
		k = KeyAppend(k, t)
	}
	return k
}

// EmptyKey is Key of the empty coschedule — the fold's starting value
// (a leading 1 distinguishes lengths).
const EmptyKey uint64 = 1

// KeyAppend folds one more type into a key built left to right over a
// canonical (sorted) coschedule: KeyAppend(Key(c), t) == Key(append(c, t))
// for t >= the last type of c. Hot paths that build coschedules
// incrementally use it to keep a running key instead of re-deriving the
// key per probe; unlike Key it performs no bounds checks, so callers
// outside the table's validated universe must check types themselves.
func KeyAppend(k uint64, t int) uint64 { return k<<8 | uint64(t+1) }

// Build runs the model over every coschedule of size 1..K over the suite
// and returns the populated table. Work is spread over all CPUs; use
// BuildWith to bound parallelism, observe progress or cancel.
func Build(m Model, suite []program.Profile) *Table {
	t, err := BuildWith(context.Background(), runner.Config{}, m, suite)
	if err != nil {
		panic(err) // unreachable: the background context never cancels
	}
	return t
}

// BuildWith is Build with an explicit context and runner configuration.
// The table contents are independent of rc.Parallelism: every coschedule's
// rates land in their enumeration slot and derived quantities are folded
// in enumeration order.
func BuildWith(ctx context.Context, rc runner.Config, m Model, suite []program.Profile) (*Table, error) {
	k := m.Contexts()
	if k < 1 {
		panic("perfdb: model with no contexts")
	}
	if len(suite) == 0 {
		panic("perfdb: empty suite")
	}
	t := &Table{
		name:    m.Name(),
		k:       k,
		suite:   suite,
		Solo:    make([]float64, len(suite)),
		entries: make(map[uint64]*Entry),
	}
	// Enumerate all coschedules of every size.
	var all []workload.Coschedule
	for size := 1; size <= k; size++ {
		all = append(all, workload.Multisets(len(suite), size)...)
	}
	results, err := runner.Map(ctx, rc, len(all), func(_ context.Context, i int) ([]float64, error) {
		jobs := make([]*program.Profile, len(all[i]))
		for j, typ := range all[i] {
			jobs[j] = &suite[typ]
		}
		return m.SlotIPC(jobs), nil
	})
	if err != nil {
		return nil, err
	}

	// Solo rates first (they are the size-1 coschedules).
	for i, c := range all {
		if len(c) == 1 {
			t.Solo[c[0]] = results[i][0]
		}
	}
	for b, s := range t.Solo {
		if s <= 0 {
			panic(fmt.Sprintf("perfdb: benchmark %s has non-positive solo IPC", suite[b].ID()))
		}
	}
	for i, c := range all {
		e := &Entry{
			Cos:      c,
			SlotIPC:  results[i],
			TypeWIPC: make(map[int]float64, c.Heterogeneity()),
		}
		for j, typ := range c {
			w := results[i][j] / t.Solo[typ]
			e.TypeWIPC[typ] = w // same-type slots are symmetric
			e.InstTP += w
			_ = j
		}
		t.entries[Key(c)] = e
	}
	t.recomputeMaxWIPC()
	return t, nil
}

// recomputeMaxWIPC rebuilds the per-type rate bounds from the stored
// entries.
func (t *Table) recomputeMaxWIPC() {
	t.maxWIPCBySize = make([][]float64, t.k)
	for s := range t.maxWIPCBySize {
		t.maxWIPCBySize[s] = make([]float64, len(t.suite))
	}
	for _, e := range t.entries {
		m := t.maxWIPCBySize[len(e.Cos)-1]
		e.wipc = make([]float64, len(t.suite))
		for b, w := range e.TypeWIPC {
			e.wipc[b] = w
			if w > m[b] {
				m[b] = w
			}
		}
	}
}

// Name returns the model/machine name the table was built with.
func (t *Table) Name() string { return t.name }

// K returns the number of contexts.
func (t *Table) K() int { return t.k }

// Suite returns the benchmark suite the table was built over.
func (t *Table) Suite() []program.Profile { return t.suite }

// Entry returns the stored entry for a coschedule (which must be one of
// the built sizes 1..K over the suite).
func (t *Table) Entry(c workload.Coschedule) *Entry {
	e, ok := t.entries[Key(c)]
	if !ok {
		panic(fmt.Sprintf("perfdb: unknown coschedule %v", c))
	}
	return e
}

// EntryByKey is Entry keyed by Key(c) — the uint64 route hot paths take
// when they already hold the canonical key and must not re-derive it per
// probe.
func (t *Table) EntryByKey(k uint64) *Entry {
	e, ok := t.entries[k]
	if !ok {
		panic(fmt.Sprintf("perfdb: unknown coschedule key %#x", k))
	}
	return e
}

// JobWIPC returns the WIPC of one job of global type b in coschedule c.
// It panics if b is not in c.
func (t *Table) JobWIPC(c workload.Coschedule, b int) float64 {
	w, ok := t.Entry(c).TypeWIPC[b]
	if !ok {
		panic(fmt.Sprintf("perfdb: type %d not in coschedule %v", b, c))
	}
	return w
}

// JobWIPCByKey is JobWIPC keyed by Key(c).
func (t *Table) JobWIPCByKey(k uint64, b int) float64 {
	w, ok := t.EntryByKey(k).TypeWIPC[b]
	if !ok {
		panic(fmt.Sprintf("perfdb: type %d not in coschedule key %#x", b, k))
	}
	return w
}

// InstTPByKey is InstTP keyed by Key(c).
func (t *Table) InstTPByKey(k uint64) float64 { return t.EntryByKey(k).InstTP }

// TypeWIPCsByKey returns the per-type WIPCs of the coschedule keyed by k
// as a dense suite-indexed slice (0 for absent types). It is the batch
// form of JobWIPCByKey: one map probe resolves every type's rate, and
// scoring loops index the returned slice. Callers must not mutate it, and
// may retain it only while the table's Epoch stands (overrides are
// build-time edits, so within a run that is forever).
func (t *Table) TypeWIPCsByKey(k uint64) []float64 { return t.EntryByKey(k).wipc }

// Epoch reports the table's rate-revision counter (online.RateSource):
// the oracle's rates never drift while a simulation runs, so the epoch is
// constant and per-multiset decisions made over the table stay memoized
// forever. Override is a build-time counterfactual edit: schedulers are
// constructed per run, after any overrides, so a memo never spans one.
func (t *Table) Epoch() uint64 { return 0 }

// MaxJobWIPC returns an upper bound on JobWIPC(c, b) over every stored
// coschedule c of exactly slots slots containing type b — and hence on
// any type-b slot's contribution to InstTP, since InstTP is the sum of
// its slots' WIPCs. Schedulers use it as the admissible bound for
// branch-and-bound pruning (sched's enumerator), which asks with the
// fixed candidate size of the current Select; interference makes the
// size-class maximum fall well below the normalized solo WIPC of 1 as
// coschedules fill up. The bound is exact by construction, not a model
// assumption. Out-of-range sizes clamp to the nearest stored class.
func (t *Table) MaxJobWIPC(b, slots int) float64 {
	s := min(max(slots, 1), t.k)
	return t.maxWIPCBySize[s-1][b]
}

// JobIPC returns the raw IPC of one job of global type b in coschedule c.
func (t *Table) JobIPC(c workload.Coschedule, b int) float64 {
	return t.JobWIPC(c, b) * t.Solo[b]
}

// TypeRate returns r_b(s), the total execution rate of all type-b jobs in
// coschedule c in WIPC units (paper Eq. (1) context): count_b(c) * WIPC_b(c).
// It returns 0 when the type is absent.
func (t *Table) TypeRate(c workload.Coschedule, b int) float64 {
	e := t.Entry(c)
	w, ok := e.TypeWIPC[b]
	if !ok {
		return 0
	}
	return float64(c.Count(b)) * w
}

// InstTP returns the instantaneous throughput it(s) of coschedule c in
// WIPC units.
func (t *Table) InstTP(c workload.Coschedule) float64 { return t.Entry(c).InstTP }

// Override replaces the stored per-type WIPCs of coschedule c and updates
// the entry's derived quantities. It is used by the Section V-D fairness
// counterfactual, which redistributes rates inside a coschedule without
// changing its instantaneous throughput. The override applies to this
// table only.
func (t *Table) Override(c workload.Coschedule, typeWIPC map[int]float64) {
	e := t.Entry(c)
	ne := &Entry{
		Cos:      e.Cos,
		SlotIPC:  append([]float64(nil), e.SlotIPC...),
		TypeWIPC: make(map[int]float64, len(typeWIPC)),
	}
	for b, w := range typeWIPC {
		if c.Count(b) == 0 {
			panic(fmt.Sprintf("perfdb: override type %d not in coschedule %v", b, c))
		}
		ne.TypeWIPC[b] = w
	}
	for j, typ := range c {
		w, ok := ne.TypeWIPC[typ]
		if !ok {
			panic(fmt.Sprintf("perfdb: override missing type %d of coschedule %v", typ, c))
		}
		ne.SlotIPC[j] = w * t.Solo[typ]
		ne.InstTP += w
	}
	ne.wipc = make([]float64, len(t.suite))
	for b, w := range ne.TypeWIPC {
		ne.wipc[b] = w
	}
	t.entries[Key(c)] = ne
	// Raise (never lower) the size class's rate bounds: recomputing the
	// true maxima would need a full scan, and a looser bound stays
	// admissible.
	m := t.maxWIPCBySize[len(c)-1]
	for b, w := range ne.TypeWIPC {
		if w > m[b] {
			m[b] = w
		}
	}
}

// Clone returns a deep copy of the table; counterfactual experiments
// mutate the copy and leave the original intact.
func (t *Table) Clone() *Table {
	nt := &Table{
		name:    t.name,
		k:       t.k,
		suite:   t.suite,
		Solo:    append([]float64(nil), t.Solo...),
		entries: make(map[uint64]*Entry, len(t.entries)),
	}
	nt.maxWIPCBySize = make([][]float64, len(t.maxWIPCBySize))
	for s, m := range t.maxWIPCBySize {
		nt.maxWIPCBySize[s] = append([]float64(nil), m...)
	}
	for k, e := range t.entries {
		ne := &Entry{
			Cos:      e.Cos,
			SlotIPC:  append([]float64(nil), e.SlotIPC...),
			TypeWIPC: make(map[int]float64, len(e.TypeWIPC)),
			InstTP:   e.InstTP,
			wipc:     append([]float64(nil), e.wipc...),
		}
		for b, w := range e.TypeWIPC {
			ne.TypeWIPC[b] = w
		}
		nt.entries[k] = ne
	}
	return nt
}

// Size returns the number of stored coschedules (all sizes).
func (t *Table) Size() int { return len(t.entries) }
