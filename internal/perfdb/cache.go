package perfdb

import (
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"symbiosched/internal/program"
	"symbiosched/internal/runner"
	"symbiosched/internal/workload"
)

// tableGob is the on-disk form of a Table. Only this mirror is gob-coded,
// keeping the in-memory representation free to change independently of
// the cache format (bump cacheVersion when the two diverge).
type tableGob struct {
	Version int
	Name    string
	K       int
	Suite   []program.Profile
	Solo    []float64
	Entries []entryGob
}

// entryGob is a map-free Entry: gob serialises map iteration order, which
// is random, so TypeWIPC is flattened into type-sorted parallel slices to
// keep identical tables byte-identical on disk.
type entryGob struct {
	Cos     workload.Coschedule
	SlotIPC []float64
	Types   []int
	WIPCs   []float64
	InstTP  float64
}

func toEntryGob(e *Entry) entryGob {
	g := entryGob{Cos: e.Cos, SlotIPC: e.SlotIPC, InstTP: e.InstTP}
	for b := range e.TypeWIPC {
		g.Types = append(g.Types, b)
	}
	sort.Ints(g.Types)
	for _, b := range g.Types {
		g.WIPCs = append(g.WIPCs, e.TypeWIPC[b])
	}
	return g
}

func (g entryGob) entry() *Entry {
	e := &Entry{Cos: g.Cos, SlotIPC: g.SlotIPC, InstTP: g.InstTP,
		TypeWIPC: make(map[int]float64, len(g.Types))}
	for i, b := range g.Types {
		e.TypeWIPC[b] = g.WIPCs[i]
	}
	return e
}

const cacheVersion = 1

// Save writes the table to path (gob, atomic rename). Entries are written
// in ascending key order so identical tables produce identical files.
func (t *Table) Save(path string) error {
	g := tableGob{
		Version: cacheVersion,
		Name:    t.name,
		K:       t.k,
		Suite:   t.suite,
		Solo:    t.Solo,
		Entries: t.sortedEntries(),
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(g); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("perfdb: encode %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// sortedEntries returns the entries ordered by coschedule key.
func (t *Table) sortedEntries() []entryGob {
	keys := make([]uint64, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]entryGob, 0, len(keys))
	for _, k := range keys {
		out = append(out, toEntryGob(t.entries[k]))
	}
	return out
}

// Load reads a table previously written by Save.
func Load(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var g tableGob
	if err := gob.NewDecoder(f).Decode(&g); err != nil {
		return nil, fmt.Errorf("perfdb: decode %s: %w", path, err)
	}
	if g.Version != cacheVersion {
		return nil, fmt.Errorf("perfdb: %s has cache version %d, want %d", path, g.Version, cacheVersion)
	}
	t := &Table{
		name:    g.Name,
		k:       g.K,
		suite:   g.Suite,
		Solo:    g.Solo,
		entries: make(map[uint64]*Entry, len(g.Entries)),
	}
	for _, eg := range g.Entries {
		t.entries[Key(eg.Cos)] = eg.entry()
	}
	t.recomputeMaxWIPC()
	return t, nil
}

// CacheKey derives a stable cache file name for a model + suite pair. The
// fingerprint must capture every machine parameter that influences rates
// (e.g. fmt.Sprintf("%+v", machine)); the suite profiles are hashed in
// full, so any profile change yields a different file.
func CacheKey(m Model, suite []program.Profile, fingerprint string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%s|%d|%s|", cacheVersion, m.Name(), m.Contexts(), fingerprint)
	for i := range suite {
		fmt.Fprintf(h, "%+v|", suite[i])
	}
	return fmt.Sprintf("perfdb-%016x.gob", h.Sum64())
}

// LoadOrBuild returns the cached table for (m, suite, fingerprint) from
// dir, or builds it with BuildWith and writes it back. An unreadable or
// mismatching cache file is treated as a miss and overwritten. The cache
// is best-effort: a failed write-back (full disk, lost permissions) does
// not discard the freshly built table — the build result is returned and
// only the persistence step is dropped. The bool reports whether the
// cache was hit.
func LoadOrBuild(ctx context.Context, rc runner.Config, m Model, suite []program.Profile, dir, fingerprint string) (*Table, bool, error) {
	path := filepath.Join(dir, CacheKey(m, suite, fingerprint))
	if t, err := Load(path); err == nil && t.matches(m, suite) {
		return t, true, nil
	}
	t, err := BuildWith(ctx, rc, m, suite)
	if err != nil {
		return nil, false, err
	}
	if err := os.MkdirAll(dir, 0o755); err == nil {
		_ = t.Save(path) // best-effort; the built table is the result
	}
	return t, false, nil
}

// matches sanity-checks a loaded table against the requesting model and
// suite (the hashed file name already encodes both; this guards against
// hand-renamed or corrupted files).
func (t *Table) matches(m Model, suite []program.Profile) bool {
	if t.name != m.Name() || t.k != m.Contexts() || len(t.suite) != len(suite) {
		return false
	}
	for i := range suite {
		if t.suite[i] != suite[i] {
			return false
		}
	}
	return true
}
