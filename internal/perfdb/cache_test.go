package perfdb

import (
	"bytes"
	"context"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"symbiosched/internal/runner"
	"symbiosched/internal/uarch"
)

// gobBytes serialises a table the same way Save does, for bit-level
// comparisons.
func gobBytes(t *testing.T, tab *Table) []byte {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.gob")
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildDeterministicAcrossParallelism(t *testing.T) {
	suite := miniSuite(t)
	model := SMTModel{Machine: uarch.DefaultSMT()}
	ref, err := BuildWith(context.Background(), runner.Config{Parallelism: 1}, model, suite)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := gobBytes(t, ref)
	for _, p := range []int{2, 8} {
		tab, err := BuildWith(context.Background(), runner.Config{Parallelism: p}, model, suite)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Solo, tab.Solo) {
			t.Fatalf("p=%d: solo rates differ: %v vs %v", p, ref.Solo, tab.Solo)
		}
		if !reflect.DeepEqual(ref.entries, tab.entries) {
			t.Fatalf("p=%d: entries differ from sequential build", p)
		}
		if !bytes.Equal(refBytes, gobBytes(t, tab)) {
			t.Fatalf("p=%d: serialised table not bit-identical to sequential build", p)
		}
	}
}

func TestCacheRoundTrip(t *testing.T) {
	suite := miniSuite(t)
	tab := Build(SMTModel{Machine: uarch.DefaultSMT()}, suite)
	path := filepath.Join(t.TempDir(), "table.gob")
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.name != tab.name || got.k != tab.k {
		t.Fatalf("identity mismatch: (%q, %d) vs (%q, %d)", got.name, got.k, tab.name, tab.k)
	}
	if !reflect.DeepEqual(got.suite, tab.suite) {
		t.Fatal("suite profiles differ after round trip")
	}
	if !reflect.DeepEqual(got.Solo, tab.Solo) {
		t.Fatal("solo rates differ after round trip")
	}
	if !reflect.DeepEqual(got.entries, tab.entries) {
		t.Fatal("entries differ after round trip")
	}
	// Bit-identical re-serialisation: Save(Load(Save(t))) == Save(t).
	if !bytes.Equal(gobBytes(t, tab), gobBytes(t, got)) {
		t.Fatal("re-serialised table not bit-identical")
	}
}

func TestLoadOrBuild(t *testing.T) {
	suite := miniSuite(t)
	model := SMTModel{Machine: uarch.DefaultSMT()}
	dir := t.TempDir()
	ctx := context.Background()

	built, hit, err := LoadOrBuild(ctx, runner.Config{}, model, suite, dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first call reported a cache hit on an empty directory")
	}
	cached, hit, err := LoadOrBuild(ctx, runner.Config{}, model, suite, dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second call missed the cache")
	}
	if !reflect.DeepEqual(built.entries, cached.entries) {
		t.Fatal("cached table differs from built table")
	}

	// A different fingerprint must not reuse the file.
	if _, hit, err = LoadOrBuild(ctx, runner.Config{}, model, suite, dir, "other"); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatal("different fingerprint hit the cache")
	}

	// A shorter suite maps to a different key, not a false hit.
	if _, hit, err = LoadOrBuild(ctx, runner.Config{}, model, suite[:3], dir, "fp"); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatal("different suite hit the cache")
	}
}

func TestLoadOrBuildSurvivesUnwritableDir(t *testing.T) {
	suite := miniSuite(t)
	model := SMTModel{Machine: uarch.DefaultSMT()}
	// A directory that cannot be created: the write-back fails, but the
	// built table must still be returned.
	dir := filepath.Join(os.DevNull, "sub")
	tab, hit, err := LoadOrBuild(context.Background(), runner.Config{}, model, suite, dir, "fp")
	if err != nil {
		t.Fatalf("write-back failure leaked as an error: %v", err)
	}
	if hit {
		t.Fatal("impossible cache hit")
	}
	if tab == nil || tab.Size() == 0 {
		t.Fatal("built table was discarded on write-back failure")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a corrupt file")
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(tableGob{Version: cacheVersion + 1}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a future cache version")
	}
}
