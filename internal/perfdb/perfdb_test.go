package perfdb

import (
	"sync"
	"testing"

	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

// miniSuite keeps table-building fast in tests.
func miniSuite(t *testing.T) []program.Profile {
	t.Helper()
	suite := program.Suite()
	return []program.Profile{suite[5], suite[7], suite[6], suite[1]} // hmmer, mcf, libq, calculix
}

var (
	tableOnce sync.Once
	tableSMT  *Table
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tableOnce.Do(func() {
		tableSMT = Build(SMTModel{Machine: uarch.DefaultSMT()}, miniSuite(t))
	})
	return tableSMT
}

func TestBuildSize(t *testing.T) {
	tab := testTable(t)
	// Sizes 1..4 over 4 types: 4 + 10 + 20 + 35 = 69.
	want := 0
	for k := 1; k <= 4; k++ {
		want += workload.MultisetCount(4, k)
	}
	if tab.Size() != want {
		t.Errorf("table size %d, want %d", tab.Size(), want)
	}
	if tab.K() != 4 {
		t.Errorf("K = %d", tab.K())
	}
}

func TestSoloWIPCIsOne(t *testing.T) {
	tab := testTable(t)
	for b := range miniSuite(t) {
		c := workload.NewCoschedule(b)
		if w := tab.JobWIPC(c, b); w < 0.999 || w > 1.001 {
			t.Errorf("type %d solo WIPC = %v, want 1", b, w)
		}
	}
}

func TestInstTPIsSumOfTypeRates(t *testing.T) {
	tab := testTable(t)
	c := workload.NewCoschedule(0, 1, 2, 3)
	var sum float64
	for b := 0; b < 4; b++ {
		sum += tab.TypeRate(c, b)
	}
	if diff := sum - tab.InstTP(c); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum of type rates %v != InstTP %v (paper Eq. 1)", sum, tab.InstTP(c))
	}
}

func TestTypeRateCountsMultiplicity(t *testing.T) {
	tab := testTable(t)
	c := workload.NewCoschedule(1, 1, 0, 2)
	per := tab.JobWIPC(c, 1)
	if diff := tab.TypeRate(c, 1) - 2*per; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("TypeRate should be count * per-job WIPC")
	}
	if tab.TypeRate(c, 3) != 0 {
		t.Errorf("absent type should have zero rate")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := []workload.Coschedule{
		workload.NewCoschedule(0),
		workload.NewCoschedule(0, 0, 0, 0),
		workload.NewCoschedule(1, 3, 5, 11),
		workload.NewCoschedule(2, 2),
	}
	seen := map[uint64]bool{}
	for _, c := range cases {
		k := Key(c)
		if seen[k] {
			t.Errorf("key collision for %v", c)
		}
		seen[k] = true
	}
	// Length must be encoded: [0] vs [0,0] differ.
	if Key(workload.NewCoschedule(0)) == Key(workload.NewCoschedule(0, 0)) {
		t.Error("keys must distinguish coschedule sizes")
	}
}

func TestEntryPanicsOnUnknown(t *testing.T) {
	tab := testTable(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-suite coschedule")
		}
	}()
	tab.Entry(workload.NewCoschedule(9, 9, 9, 9))
}

func TestJobWIPCPanicsOnAbsentType(t *testing.T) {
	tab := testTable(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for absent type")
		}
	}()
	tab.JobWIPC(workload.NewCoschedule(0, 0, 0, 0), 1)
}

func TestCloneAndOverrideIsolation(t *testing.T) {
	tab := testTable(t)
	clone := tab.Clone()
	c := workload.NewCoschedule(0, 1, 2, 3)
	orig := tab.JobWIPC(c, 0)
	// Equal-rate override preserving instTP.
	mean := tab.InstTP(c) / 4
	clone.Override(c, map[int]float64{0: mean, 1: mean, 2: mean, 3: mean})
	if got := clone.JobWIPC(c, 0); got != mean {
		t.Errorf("override not applied: %v, want %v", got, mean)
	}
	if diff := clone.InstTP(c) - tab.InstTP(c); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("equalising override changed instTP: %v vs %v", clone.InstTP(c), tab.InstTP(c))
	}
	if got := tab.JobWIPC(c, 0); got != orig {
		t.Errorf("override leaked into the original table")
	}
}

func TestOverrideValidation(t *testing.T) {
	tab := testTable(t).Clone()
	c := workload.NewCoschedule(0, 1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for override with missing type")
		}
	}()
	tab.Override(c, map[int]float64{0: 1}) // missing types 1..3
}

func TestModelAdapters(t *testing.T) {
	smt := SMTModel{Machine: uarch.DefaultSMT()}
	if smt.Contexts() != 4 || smt.Name() == "" {
		t.Errorf("SMTModel adapter broken: %d %q", smt.Contexts(), smt.Name())
	}
	quad := MulticoreModel{Machine: uarch.DefaultMulticore()}
	if quad.Contexts() != 4 || quad.Name() == "" {
		t.Errorf("MulticoreModel adapter broken")
	}
	suite := miniSuite(t)
	jobs := []*program.Profile{&suite[0], &suite[1]}
	if got := quad.SlotIPC(jobs); len(got) != 2 {
		t.Errorf("SlotIPC returned %d rates", len(got))
	}
}
