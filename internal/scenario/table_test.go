package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("sample", StrCol("sched"), FloatCol("load"), FloatCol("turnaround"), IntCol("jobs"))
	t.Add("FCFS", 0.8, 1.25, 2000)
	t.Add("MAXIT", 0.8, 1.0041875, 2000)
	t.Add("a,b", 0.95, 0.5, 1)
	return t
}

func TestTableCSVBytes(t *testing.T) {
	dir := t.TempDir()
	tbl := sampleTable()
	if err := tbl.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	// The byte contract: header + rows, floats in 'g'/10 form, fields
	// with commas quoted per RFC 4180, \n line endings.
	want := "sched,load,turnaround,jobs\n" +
		"FCFS,0.8,1.25,2000\n" +
		"MAXIT,0.8,1.0041875,2000\n" +
		"\"a,b\",0.95,0.5,1\n"
	if string(got) != want {
		t.Errorf("CSV bytes:\n%q\nwant\n%q", got, want)
	}
}

func TestTableEmptyWritesHeader(t *testing.T) {
	dir := t.TempDir()
	tbl := NewTable("empty", StrCol("x"))
	if err := tbl.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "empty.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "x\n" {
		t.Errorf("empty table bytes %q, want header only", got)
	}
}

func TestTableAddTypeChecks(t *testing.T) {
	tbl := NewTable("x", FloatCol("f"))
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("arity", func() { tbl.Add(1.0, 2.0) })
	expectPanic("kind", func() { tbl.Add("not a float") })
	expectPanic("int-for-float", func() { tbl.Add(1) })
}

func TestTableText(t *testing.T) {
	out := sampleTable().Text()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "sched") || !strings.Contains(lines[0], "turnaround") {
		t.Errorf("header line %q", lines[0])
	}
	// Numeric columns right-align: every line's last character is
	// non-space, and the float column's decimal points line up.
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Errorf("trailing space in %q", l)
		}
	}
}

func TestDistinct(t *testing.T) {
	type cell struct {
		d string
		l float64
	}
	cells := []cell{{"rr", 0.5}, {"rr", 0.8}, {"li", 0.5}, {"li", 0.8}, {"rr", 0.5}}
	if got := Distinct(cells, func(c cell) string { return c.d }); len(got) != 2 || got[0] != "rr" || got[1] != "li" {
		t.Errorf("Distinct dispatchers = %v", got)
	}
	if got := Distinct(cells, func(c cell) float64 { return c.l }); len(got) != 2 || got[0] != 0.5 || got[1] != 0.8 {
		t.Errorf("Distinct loads = %v", got)
	}

	tbl := sampleTable()
	if got := tbl.DistinctStrings("sched"); len(got) != 3 || got[0] != "FCFS" {
		t.Errorf("DistinctStrings = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown column did not panic")
		}
	}()
	tbl.DistinctStrings("nope")
}

// TestWriteFileAtomic pins the temp-file-and-rename contract: a
// successful write leaves exactly the final CSV, no .tmp residue, and
// overwriting an existing file goes through the same atomic path.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	tbl := NewTable("atomic", StrCol("k"), FloatCol("v"))
	tbl.Add("a", 1.5)
	for i := 0; i < 2; i++ { // second pass overwrites
		if err := tbl.WriteFile(dir); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "atomic.csv" {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("dir holds %v, want exactly atomic.csv", names)
	}
}
