// Package scenario is the repo's declarative experiment engine. A
// Scenario names one study (a figure, a table, or a new question the
// paper's framework invites) and plans it as a grid of independent cells
// — the cartesian product of its Axes — plus an index-ordered reduction
// into a uniform Result (human-readable text and typed-column Tables that
// serialise to CSV).
//
// The engine executes every grid through internal/runner: cells fan out
// over a bounded worker pool, results land in enumeration order, and the
// reduction folds them in that order, so a scenario's output is
// byte-identical at any parallelism level. Cells that need randomness
// derive their streams from the grid point itself (Point.Seed, or a
// legacy formula over the point's indices), never from execution order.
//
// A package-level registry maps scenario names to their specs;
// cmd/symbiosim dispatches `run <name>` and `list` off it, and the golden
// CSV tests pin every registered table's bytes.
package scenario

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"symbiosched/internal/runner"
)

// Env is the opaque experiment environment threaded through Plan. The
// engine never inspects it; the package registering a scenario and the
// caller executing it agree on the concrete type (the exp package passes
// *exp.Env).
type Env = any

// Axis is one swept dimension of a grid. Values are canonical labels:
// they name the coordinate in reports and CSV, and they are what
// Point.Seed hashes, so a point's seed depends only on where it is, never
// on how many other values the axis happens to carry.
type Axis struct {
	Name   string
	Values []string
}

// Point is one cell of a grid: an index into every axis, enumerated
// row-major (first axis outermost).
type Point struct {
	axes    []Axis
	indices []int
}

// Index returns the point's index along the named axis. Unknown axis
// names panic: they are programming errors in the scenario, not data.
func (p Point) Index(axis string) int {
	for i, a := range p.axes {
		if a.Name == axis {
			return p.indices[i]
		}
	}
	panic(fmt.Sprintf("scenario: point has no axis %q", axis))
}

// Value returns the point's label along the named axis.
func (p Point) Value(axis string) string {
	for i, a := range p.axes {
		if a.Name == axis {
			return a.Values[p.indices[i]]
		}
	}
	panic(fmt.Sprintf("scenario: point has no axis %q", axis))
}

// Seed derives the point's common-random-numbers stream from base and the
// named axes (all axes when none are named). The derivation hashes axis
// name=value pairs, so it depends only on the point's coordinates — not
// on the grid's shape, the point's enumeration index, or the values other
// points take. Two uses follow:
//
//   - Listing a subset pins the stream across the omitted axes: seeding
//     from ("load", "rep") gives every dispatcher the same arrival
//     process at a given load — the paper's common-random-numbers setup.
//   - Growing an axis (another load, another dispatcher) never reseeds
//     existing cells, so results are extendable without re-running.
func (p Point) Seed(base uint64, axes ...string) uint64 {
	h := fnv.New64a()
	use := func(a Axis, idx int) {
		h.Write([]byte(a.Name))
		h.Write([]byte{0})
		h.Write([]byte(a.Values[idx]))
		h.Write([]byte{0})
	}
	if len(axes) == 0 {
		for i, a := range p.axes {
			use(a, p.indices[i])
		}
	} else {
		for _, name := range axes {
			found := false
			for i, a := range p.axes {
				if a.Name == name {
					use(a, p.indices[i])
					found = true
					break
				}
			}
			if !found {
				panic(fmt.Sprintf("scenario: point has no axis %q", name))
			}
		}
	}
	return mix64(base ^ h.Sum64())
}

// mix64 is the splitmix64 finaliser: it decorrelates the seeds of nearby
// grid points so per-point RNG streams do not share low-bit structure.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// gridSize returns the number of points (1 for an axis-free plan).
func gridSize(axes []Axis) int {
	n := 1
	for _, a := range axes {
		n *= len(a.Values)
	}
	return n
}

// pointAt enumerates the grid row-major: the first axis is outermost, the
// last innermost, so index i maps to the same coordinates a nest of
// for-loops over the axes in declaration order would visit i-th.
func pointAt(axes []Axis, i int) Point {
	indices := make([]int, len(axes))
	for k := len(axes) - 1; k >= 0; k-- {
		n := len(axes[k].Values)
		indices[k] = i % n
		i /= n
	}
	return Point{axes: axes, indices: indices}
}

// Plan is one execution of a scenario: the grid, the cell function, and
// the reduction. Plans are built per run (Scenario.Plan), so Cell and
// Reduce may close over shared state — prebuilt tables, calibrated
// capacities — without the engine threading it.
type Plan struct {
	// Axes span the grid; an empty list means a single cell (a study
	// whose fan-out lives inside the cell, e.g. a whole-suite sweep).
	Axes []Axis
	// Cell computes one grid point. It must be safe for concurrent calls
	// and deterministic given the point (derive randomness from the
	// point, never from shared mutable state).
	Cell func(ctx context.Context, pt Point) (any, error)
	// Reduce folds the cells — delivered in enumeration order — into the
	// scenario's result. It runs once, serially.
	Reduce func(cells []any) (*Result, error)
}

// Result is the uniform output of every scenario.
type Result struct {
	// Value is the scenario's typed result, for programmatic consumers
	// (may be nil when the tables say everything).
	Value any
	// Text is the human-readable report.
	Text string
	// Tables are the plottable series; each serialises to <Name>.csv.
	Tables []*Table
}

// Execute runs the plan's grid through the runner engine and reduces it.
// Cells land in enumeration order regardless of rc.Parallelism, so the
// reduction — and therefore the Result — is byte-identical at any pool
// size.
func (p *Plan) Execute(ctx context.Context, rc runner.Config) (*Result, error) {
	if p.Cell == nil || p.Reduce == nil {
		return nil, fmt.Errorf("scenario: plan needs both Cell and Reduce")
	}
	for _, a := range p.Axes {
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("scenario: axis %q has no values", a.Name)
		}
	}
	cells, err := runner.Map(ctx, rc, gridSize(p.Axes), func(ctx context.Context, i int) (any, error) {
		return p.Cell(ctx, pointAt(p.Axes, i))
	})
	if err != nil {
		return nil, err
	}
	return p.Reduce(cells)
}

// Scenario is a registered study: a stable name, a one-line description
// for `symbiosim list`, and a planner that lays out one execution over
// the environment.
type Scenario struct {
	Name string
	Desc string
	Plan func(ctx context.Context, env Env) (*Plan, error)
}

// Run plans and executes the scenario over env.
func (s *Scenario) Run(ctx context.Context, env Env, rc runner.Config) (*Result, error) {
	if s.Plan == nil {
		return nil, fmt.Errorf("scenario %s: no planner", s.Name)
	}
	p, err := s.Plan(ctx, env)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return p.Execute(ctx, rc)
}

var (
	regMu     sync.RWMutex
	regByName = map[string]*Scenario{}
	regOrder  []string
)

// Register adds a scenario to the package registry. Empty names and
// duplicates panic: registration happens in init functions, where a bad
// name is a build-time bug.
func Register(s *Scenario) {
	if s == nil || s.Name == "" {
		panic("scenario: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	regByName[s.Name] = s
	regOrder = append(regOrder, s.Name)
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (*Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := regByName[name]
	return s, ok
}

// Names lists the registered scenario names in registration order (the
// paper's presentation order, then the extensions).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// All returns the registered scenarios in registration order.
func All() []*Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Scenario, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, regByName[name])
	}
	return out
}
