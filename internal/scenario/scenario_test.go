package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"symbiosched/internal/runner"
)

func axes2x3() []Axis {
	return []Axis{
		{Name: "sched", Values: []string{"FCFS", "MAXIT"}},
		{Name: "load", Values: []string{"0.8", "0.9", "0.95"}},
	}
}

func TestGridEnumerationRowMajor(t *testing.T) {
	axes := axes2x3()
	var got []string
	for i := 0; i < gridSize(axes); i++ {
		pt := pointAt(axes, i)
		got = append(got, pt.Value("sched")+"/"+pt.Value("load"))
	}
	want := []string{"FCFS/0.8", "FCFS/0.9", "FCFS/0.95", "MAXIT/0.8", "MAXIT/0.9", "MAXIT/0.95"}
	if len(got) != len(want) {
		t.Fatalf("grid size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %s, want %s (first axis must be outermost)", i, got[i], want[i])
		}
	}
}

func TestPointIndexAndValue(t *testing.T) {
	pt := pointAt(axes2x3(), 5) // MAXIT / 0.95
	if pt.Index("sched") != 1 || pt.Index("load") != 2 {
		t.Errorf("indices = %d/%d, want 1/2", pt.Index("sched"), pt.Index("load"))
	}
	if pt.Value("sched") != "MAXIT" || pt.Value("load") != "0.95" {
		t.Errorf("values = %s/%s", pt.Value("sched"), pt.Value("load"))
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown axis did not panic")
		}
	}()
	pt.Index("nope")
}

// TestSeedShapeIndependent pins the CRN contract: a grid point's seed
// depends only on its own coordinates, so reshaping the grid (more loads,
// more schedulers) or re-ordering the sweep never reseeds existing cells.
func TestSeedShapeIndependent(t *testing.T) {
	small := []Axis{
		{Name: "sched", Values: []string{"FCFS", "MAXIT"}},
		{Name: "load", Values: []string{"0.8", "0.9"}},
	}
	big := []Axis{
		{Name: "sched", Values: []string{"FCFS", "MAXIT", "SRPT", "MAXTP"}},
		{Name: "load", Values: []string{"0.5", "0.8", "0.9", "0.95"}},
	}
	// MAXIT/0.9 lives at index 3 in the small grid and index 6 in the big
	// one; its seed must not notice.
	a := pointAt(small, 3)
	b := pointAt(big, 1*4+2)
	if a.Value("sched") != "MAXIT" || a.Value("load") != "0.9" {
		t.Fatalf("small point mislocated: %s/%s", a.Value("sched"), a.Value("load"))
	}
	if b.Value("sched") != "MAXIT" || b.Value("load") != "0.9" {
		t.Fatalf("big point mislocated: %s/%s", b.Value("sched"), b.Value("load"))
	}
	if a.Seed(1) != b.Seed(1) {
		t.Errorf("same coordinates, different seeds: %x vs %x", a.Seed(1), b.Seed(1))
	}
	// Different coordinates must (very nearly always) give different
	// seeds; pin the specific pairs the grids above produce.
	seen := map[uint64]string{}
	for i := 0; i < gridSize(big); i++ {
		pt := pointAt(big, i)
		s := pt.Seed(1)
		key := pt.Value("sched") + "/" + pt.Value("load")
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %s and %s", prev, key)
		}
		seen[s] = key
	}
	// Different base, different stream.
	if a.Seed(1) == a.Seed(2) {
		t.Error("base seed ignored")
	}
}

// TestSeedAxisSubset pins the common-random-numbers use: seeding from a
// subset of axes shares the stream across the omitted ones.
func TestSeedAxisSubset(t *testing.T) {
	axes := axes2x3()
	fcfs := pointAt(axes, 1)  // FCFS / 0.9
	maxit := pointAt(axes, 4) // MAXIT / 0.9
	if fcfs.Seed(7, "load") != maxit.Seed(7, "load") {
		t.Error("load-only seed differs across schedulers (CRN broken)")
	}
	if fcfs.Seed(7) == maxit.Seed(7) {
		t.Error("full seed identical across schedulers")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown seed axis did not panic")
		}
	}()
	fcfs.Seed(7, "nope")
}

// TestSeedPinned freezes the derivation itself: a change to the hash or
// the mixing breaks every scenario that draws CRN streams from it, so it
// must be deliberate.
func TestSeedPinned(t *testing.T) {
	pt := pointAt(axes2x3(), 4) // MAXIT / 0.9
	if got := pt.Seed(1); got != pointAt(axes2x3(), 4).Seed(1) {
		t.Fatalf("seed not even self-consistent: %x", got)
	}
	want := pt.Seed(1)
	for i := 0; i < 3; i++ {
		if got := pointAt(axes2x3(), 4).Seed(1); got != want {
			t.Fatalf("seed unstable across calls: %x vs %x", got, want)
		}
	}
}

func TestExecuteDeterministicAcrossParallelism(t *testing.T) {
	mk := func() *Plan {
		return &Plan{
			Axes: axes2x3(),
			Cell: func(_ context.Context, pt Point) (any, error) {
				return fmt.Sprintf("%s@%s:%x", pt.Value("sched"), pt.Value("load"), pt.Seed(3)), nil
			},
			Reduce: func(cells []any) (*Result, error) {
				var b strings.Builder
				for _, c := range cells {
					b.WriteString(c.(string))
					b.WriteString("\n")
				}
				return &Result{Text: b.String()}, nil
			},
		}
	}
	var outs []string
	for _, p := range []int{1, 8} {
		r, err := mk().Execute(context.Background(), runner.Config{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, r.Text)
	}
	if outs[0] != outs[1] {
		t.Errorf("output differs across parallelism:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

func TestExecuteSingleCellAndErrors(t *testing.T) {
	ran := 0
	p := &Plan{
		Cell: func(context.Context, Point) (any, error) { ran++; return 41, nil },
		Reduce: func(cells []any) (*Result, error) {
			return &Result{Value: cells[0].(int) + 1}, nil
		},
	}
	r, err := p.Execute(context.Background(), runner.Config{})
	if err != nil || r.Value.(int) != 42 {
		t.Fatalf("single-cell plan: %v, %v", r, err)
	}
	if ran != 1 {
		t.Errorf("axis-free plan ran %d cells, want 1", ran)
	}

	boom := errors.New("boom")
	p = &Plan{
		Axes: axes2x3(),
		Cell: func(_ context.Context, pt Point) (any, error) {
			if pt.Value("load") == "0.9" {
				return nil, fmt.Errorf("%s: %w", pt.Value("sched"), boom)
			}
			return nil, nil
		},
		Reduce: func([]any) (*Result, error) { t.Error("reduce ran after cell error"); return nil, nil },
	}
	if _, err := p.Execute(context.Background(), runner.Config{Parallelism: 1}); !errors.Is(err, boom) {
		t.Errorf("cell error not propagated: %v", err)
	}

	if _, err := (&Plan{}).Execute(context.Background(), runner.Config{}); err == nil {
		t.Error("plan without Cell/Reduce accepted")
	}
	empty := &Plan{
		Axes:   []Axis{{Name: "x"}},
		Cell:   func(context.Context, Point) (any, error) { return nil, nil },
		Reduce: func([]any) (*Result, error) { return &Result{}, nil },
	}
	if _, err := empty.Execute(context.Background(), runner.Config{}); err == nil {
		t.Error("empty axis accepted")
	}
}

func TestRegistry(t *testing.T) {
	// The global registry is shared process state; use throwaway names.
	a := &Scenario{Name: "test_reg_a", Desc: "a", Plan: func(context.Context, Env) (*Plan, error) {
		return &Plan{
			Cell:   func(context.Context, Point) (any, error) { return "ok", nil },
			Reduce: func(cells []any) (*Result, error) { return &Result{Text: cells[0].(string)}, nil },
		}, nil
	}}
	b := &Scenario{Name: "test_reg_b", Desc: "b", Plan: a.Plan}
	Register(a)
	Register(b)

	s, ok := Lookup("test_reg_a")
	if !ok || s != a {
		t.Fatal("Lookup missed a registered scenario")
	}
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		if n == "test_reg_a" {
			ia = i
		}
		if n == "test_reg_b" {
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ib != ia+1 {
		t.Errorf("Names() lost registration order: %v", names)
	}
	if got := All(); len(got) != len(names) {
		t.Errorf("All() returned %d scenarios for %d names", len(got), len(names))
	}

	r, err := s.Run(context.Background(), nil, runner.Config{})
	if err != nil || r.Text != "ok" {
		t.Errorf("Run: %v, %v", r, err)
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(&Scenario{Name: "test_reg_a"})
}
