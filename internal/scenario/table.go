package scenario

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Kind is a column's value type.
type Kind int

const (
	// String cells hold labels (scheduler names, workload keys).
	String Kind = iota
	// Int cells hold counts and classes.
	Int
	// Float cells hold measurements, serialised with the repo-wide
	// canonical float format ('g', 10 significant digits).
	Float
)

// Column is one typed column of a Table.
type Column struct {
	Name string
	Kind Kind
}

// StrCol, IntCol and FloatCol build columns of the respective kinds.
func StrCol(name string) Column   { return Column{Name: name, Kind: String} }
func IntCol(name string) Column   { return Column{Name: name, Kind: Int} }
func FloatCol(name string) Column { return Column{Name: name, Kind: Float} }

// Table is a scenario's uniform plottable result: named, typed columns
// over formatted rows. Name is the CSV file stem (e.g. "fig2_smt").
type Table struct {
	Name    string
	Columns []Column
	// Rows hold the canonical cell strings (the exact CSV field bytes).
	Rows [][]string
}

// NewTable returns an empty table over the given columns.
func NewTable(name string, cols ...Column) *Table {
	return &Table{Name: name, Columns: cols}
}

// FormatFloat is the canonical float-to-CSV serialisation shared by every
// table ('g', 10 significant digits, 64-bit) — the byte contract the
// golden files pin.
func FormatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// Add appends one row. Values must match the column kinds (string, int,
// float64); a mismatch panics, because rows are appended by scenario code
// whose shape is fixed at compile time.
func (t *Table) Add(vals ...any) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("scenario: table %s: %d values for %d columns", t.Name, len(vals), len(t.Columns)))
	}
	row := make([]string, len(vals))
	for i, v := range vals {
		c := t.Columns[i]
		switch c.Kind {
		case String:
			s, ok := v.(string)
			if !ok {
				panic(fmt.Sprintf("scenario: table %s column %s wants string, got %T", t.Name, c.Name, v))
			}
			row[i] = s
		case Int:
			n, ok := v.(int)
			if !ok {
				panic(fmt.Sprintf("scenario: table %s column %s wants int, got %T", t.Name, c.Name, v))
			}
			row[i] = strconv.Itoa(n)
		case Float:
			f, ok := v.(float64)
			if !ok {
				panic(fmt.Sprintf("scenario: table %s column %s wants float64, got %T", t.Name, c.Name, v))
			}
			row[i] = FormatFloat(f)
		default:
			panic(fmt.Sprintf("scenario: table %s column %s has unknown kind %d", t.Name, c.Name, c.Kind))
		}
	}
	t.Rows = append(t.Rows, row)
}

// header returns the CSV header row.
func (t *Table) header() []string {
	h := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		h[i] = c.Name
	}
	return h
}

// WriteFile saves the table as dir/<Name>.csv (creating dir if needed):
// one header row, then the data rows, RFC-4180 via encoding/csv. The
// file is written to a temp name and renamed into place, so readers
// (and interrupted runs) never observe a partially written CSV.
func (t *Table) WriteFile(dir string) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.Name+".csv")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(t.header()); err != nil {
		return err
	}
	if err := w.WriteAll(t.Rows); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Text renders the table as aligned monospace columns for reports:
// left-aligned strings, right-aligned numbers, two-space gutters.
func (t *Table) Text() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c.Name)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	put := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := width[i] - len(cell)
			if t.Columns[i].Kind == String {
				b.WriteString(cell)
				if i < len(row)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	put(t.header())
	for _, row := range t.Rows {
		put(row)
	}
	return b.String()
}

// Distinct returns the distinct values of get over items, in first-seen
// order — the one sorted-unique-axis helper every grid formatter shares.
func Distinct[C any, V comparable](items []C, get func(C) V) []V {
	var out []V
	seen := map[V]bool{}
	for _, it := range items {
		v := get(it)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// DistinctStrings returns the distinct values of the named column in
// first-seen order (panics on unknown columns, like Point.Index).
func (t *Table) DistinctStrings(col string) []string {
	ci := -1
	for i, c := range t.Columns {
		if c.Name == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		panic(fmt.Sprintf("scenario: table %s has no column %q", t.Name, col))
	}
	return Distinct(t.Rows, func(row []string) string { return row[ci] })
}
