// Package stats provides the deterministic pseudo-random plumbing and the
// descriptive statistics used throughout the study. Every stochastic
// component of the reproduction (trace synthesis, FCFS job streams, Poisson
// arrival processes) draws from an explicitly seeded RNG so that every
// experiment is reproducible bit-for-bit.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** over a splitmix64-expanded seed). It is deliberately
// independent of math/rand so that results never change across Go releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Distinct seeds
// yield statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion, the standard seeding procedure for xoshiro.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not be seeded with all zeros; splitmix64 cannot produce
	// four zero words, but keep the guard for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with rate <= 0")
	}
	// Inverse CDF on (0,1]; 1-Float64() avoids log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Norm returns a standard normal sample via the polar Box-Muller method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p, counting the number of failures before the first success
// (support {0, 1, 2, ...}). It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent child generator; useful to give each
// simulated entity its own stream while preserving determinism.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}
