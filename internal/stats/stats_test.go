package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for b, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ~0.1", b, got)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	const rate, draws = 2.5, 200_000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / draws
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp mean = %v, want %v", mean, 1/rate)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(17)
	const draws = 200_000
	var sum, sq float64
	for i := 0; i < draws; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / draws
	variance := sq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(19)
	const p, draws = 0.25, 100_000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / draws
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric mean = %v, want %v", mean, want)
	}
	if got := r.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(29)
	child := r.Split()
	if r.Uint64() == child.Uint64() {
		t.Error("split stream should differ from parent")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("Summarize = %+v", s)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, wantStd)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("q0.5 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q0.25 = %v", got)
	}
}

func TestSpread(t *testing.T) {
	// (max-min)/mean = (6-2)/4 = 1.
	if got := Spread([]float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spread = %v, want 1", got)
	}
	if got := Spread(nil); got != 0 {
		t.Errorf("Spread(nil) = %v", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r := LinearFit(x, y)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 || math.Abs(r-1) > 1e-12 {
		t.Errorf("fit = (%v, %v, r=%v), want (1, 2, 1)", a, b, r)
	}
}

func TestSlopeThroughOne(t *testing.T) {
	// y - 1 = 0.5 (x - 1) exactly.
	x := []float64{1, 1.2, 1.4}
	y := []float64{1, 1.1, 1.2}
	if got := SlopeThroughOne(x, y); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("slope = %v, want 0.5", got)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("histogram shape %v %v", edges, counts)
	}
	if counts[0]+counts[1] != 5 {
		t.Errorf("counts %v must sum to 5", counts)
	}
}

// Property: Summarize min <= median <= max and mean within [min, max].
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			// Clamp magnitude so the sum cannot overflow float64.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
