package stats

import (
	"math"
	"sort"

	"symbiosched/internal/numeric"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var sum numeric.KahanSum
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		sum.Add(x)
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	mean := sum.Value() / float64(len(xs))
	var sq numeric.KahanSum
	for _, x := range xs {
		d := x - mean
		sq.Add(d * d)
	}
	std := 0.0
	if len(xs) > 1 {
		std = math.Sqrt(sq.Value() / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	return Summary{N: len(xs), Mean: mean, Std: std, Min: mn, Max: mx, Median: med}
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s numeric.KahanSum
	for _, x := range xs {
		s.Add(x)
	}
	return s.Value() / float64(len(xs))
}

// Quantile returns the q-quantile (0<=q<=1) using linear interpolation on
// the sorted sample. It panics on an empty sample or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SortedQuantile(sorted, q)
}

// SortedQuantile is Quantile over an already-sorted sample, skipping the
// copy and sort — for callers reading several order statistics from one
// sample. It panics on an empty sample or q outside [0,1].
func SortedQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile q outside [0,1]")
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	return numeric.Lerp(sorted[lo], sorted[hi], pos-float64(lo))
}

// Spread is the paper's "variability" metric for a set of observations of
// the same quantity: (max - min) / mean. The paper, Section V-B: "we define
// variability as the average spread (maximum minus minimum divided by
// average)".
func Spread(xs []float64) float64 {
	s := Summarize(xs)
	if s.N == 0 || s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a, slope b and the Pearson correlation coefficient r.
func LinearFit(x, y []float64) (a, b, r float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples of size >= 2")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy numeric.KahanSum
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx.Add(dx * dx)
		sxy.Add(dx * dy)
		syy.Add(dy * dy)
	}
	if sxx.Value() == 0 {
		return my, 0, 0
	}
	b = sxy.Value() / sxx.Value()
	a = my - b*mx
	den := math.Sqrt(sxx.Value() * syy.Value())
	if den > 0 {
		r = sxy.Value() / den
	}
	return a, b, r
}

// SlopeThroughOne fits y = 1 + b*(x-1) by least squares, i.e. a line forced
// through the point (1,1). Figure 2 of the paper normalises both axes to
// the worst throughput, so every workload with zero scheduling headroom
// sits exactly at (1,1) and the reported "slope" is the slope of a line
// anchored there.
func SlopeThroughOne(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		panic("stats: SlopeThroughOne needs two equal-length non-empty samples")
	}
	var num, den numeric.KahanSum
	for i := range x {
		dx, dy := x[i]-1, y[i]-1
		num.Add(dx * dy)
		den.Add(dx * dx)
	}
	if den.Value() == 0 {
		return 0
	}
	return num.Value() / den.Value()
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// the bin edges (nbins+1) and counts (nbins).
func Histogram(xs []float64, nbins int) (edges []float64, counts []int) {
	if nbins <= 0 {
		panic("stats: Histogram needs nbins > 0")
	}
	s := Summarize(xs)
	if s.N == 0 {
		return nil, nil
	}
	lo, hi := s.Min, s.Max
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, nbins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(nbins)
	}
	counts = make([]int, nbins)
	for _, x := range xs {
		b := int(float64(nbins) * (x - lo) / (hi - lo))
		if b == nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return edges, counts
}
