// Package metrics is the simulator's instrumentation core: counters,
// time-weighted gauges, fixed-log-bucket histograms and bounded
// decimating series, registered on a Collector and exported as
// deterministic, ordered Snapshots.
//
// The package is built around two contracts the hot layers demand:
//
//   - Zero cost when disabled. Every instrumented component holds nil
//     instrument pointers by default; all instrument methods are
//     nil-receiver no-ops, and the hottest loops batch their updates
//     behind a single nil guard. The 0 allocs/op pins on Select,
//     Server.Advance/Reschedule and the dispatcher Picks hold with
//     metrics off, and enabling them never changes a simulation result —
//     instruments only observe, they are never read back by decisions.
//
//   - Deterministic snapshots. A Snapshot's rows are ordered by
//     (metric name, field order), values are serialised with the
//     repo-wide canonical float format, and Merge folds snapshots
//     numerically in call order — so the merged metrics of a parallel
//     sweep, folded in enumeration order, are byte-identical at any
//     parallelism level (the same argument internal/runner makes for
//     results).
//
// Instruments are NOT internally synchronised: each single-threaded
// event loop (one eventsim.Server, one dispatcher) owns its own
// Collector, and engines merge per-owner snapshots in index order —
// concurrency is handled by ownership, exactly like the simulation state
// itself.
package metrics

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"symbiosched/internal/numeric"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	n    uint64
}

// Inc adds one. A nil counter (metrics disabled) is a no-op.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Add adds n events. A nil counter is a no-op.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n += n
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a time-weighted value: Observe(v, dt) integrates v over an
// interval of length dt, so Mean is the time average — the right
// semantics for quantities that are piecewise constant between events
// (queue length, busy contexts). The integral and total weight
// accumulate in Kahan sums, keeping long runs exact to the same standard
// as the simulators' own integrals.
type Gauge struct {
	name     string
	integral numeric.KahanSum
	weight   numeric.KahanSum
	last     float64
}

// Observe integrates value v over weight (duration) dt. A nil gauge is a
// no-op; non-positive weights are ignored (zero-length intervals carry
// no information and would only add float noise).
func (g *Gauge) Observe(v, dt float64) {
	if g == nil || dt <= 0 {
		return
	}
	g.integral.Add(v * dt)
	g.weight.Add(dt)
	g.last = v
}

// Mean returns the time-weighted average (0 before any observation).
func (g *Gauge) Mean() float64 {
	if g == nil || g.weight.Value() == 0 {
		return 0
	}
	return g.integral.Value() / g.weight.Value()
}

// Integral returns the accumulated value*dt integral.
func (g *Gauge) Integral() float64 {
	if g == nil {
		return 0
	}
	return g.integral.Value()
}

// Histogram is a fixed-log-bucket (base-2) weighted histogram: bucket e
// holds the total weight of observations with value in (2^(e-1), 2^e].
// The bucket index comes from math.Frexp — pure exponent extraction, no
// libm — so bucketing is exact and platform-independent. The bucket
// range is fixed at construction; out-of-range values clamp to the end
// buckets, and non-positive values land in the dedicated zero bucket.
type Histogram struct {
	name   string
	minExp int // bucket 0 covers (0, 2^minExp]
	w      []float64
	zero   float64 // weight of values <= 0
	count  uint64  // observations (not weight)
}

// histExp returns the bucket exponent e with v in (2^(e-1), 2^e].
func histExp(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if frac == 0.5 {
		return exp - 1 // exact power of two belongs to the lower bucket
	}
	return exp
}

// Observe adds weight w at value v. A nil histogram or non-positive
// weight is a no-op.
func (h *Histogram) Observe(v, w float64) {
	if h == nil || w <= 0 {
		return
	}
	h.count++
	if v <= 0 {
		h.zero += w
		return
	}
	b := histExp(v) - h.minExp
	if b < 0 {
		b = 0
	}
	if b >= len(h.w) {
		b = len(h.w) - 1
	}
	h.w[b] += w
}

// Series is a bounded time series with deterministic decimation: Append
// records every stride-th sample; when the buffer fills, the stride
// doubles and every second retained sample is dropped. The retained
// set is a pure function of the append sequence, so series recorded on
// deterministic event streams snapshot byte-identically however the
// simulation was executed.
type Series struct {
	name   string
	t, v   []float64
	limit  int
	stride int
	seen   int // samples seen since the last retained one
}

// Append records sample (t, v) subject to decimation. A nil series is a
// no-op.
func (s *Series) Append(t, v float64) {
	if s == nil {
		return
	}
	if s.seen%s.stride == 0 {
		if len(s.t) == s.limit {
			// Full: keep every second sample and double the stride.
			k := 0
			for i := 0; i < len(s.t); i += 2 {
				s.t[k], s.v[k] = s.t[i], s.v[i]
				k++
			}
			s.t, s.v = s.t[:k], s.v[:k]
			s.stride *= 2
			// The dropped tail shifts the decimation phase; restart the
			// stride count so the next retained sample is stride away
			// from the last kept one.
			s.seen = 0
			if s.seen%s.stride == 0 {
				s.t = append(s.t, t)
				s.v = append(s.v, v)
			}
			s.seen++
			return
		}
		s.t = append(s.t, t)
		s.v = append(s.v, v)
	}
	s.seen++
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.t)
}

// Collector registers named instruments and snapshots them. A nil
// Collector is the disabled state: every constructor returns a nil
// instrument, whose methods are no-ops.
type Collector struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
	order    []string
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// register panics on a cross-kind name collision: metric names are
// compile-time constants in the instrumented layers, so a duplicate is a
// bug, not data. (Same-kind lookups return the existing instrument
// before reaching here.)
func (c *Collector) register(name string) {
	_, a := c.counters[name]
	_, b := c.gauges[name]
	_, h := c.hists[name]
	_, s := c.series[name]
	if a || b || h || s {
		panic(fmt.Sprintf("metrics: duplicate instrument %q", name))
	}
	c.order = append(c.order, name)
}

// Counter returns the named counter, creating it on first use. A nil
// collector returns a nil counter.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	if ct, ok := c.counters[name]; ok {
		return ct
	}
	c.register(name)
	ct := &Counter{name: name}
	c.counters[name] = ct
	return ct
}

// Gauge returns the named time-weighted gauge, creating it on first use.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	if g, ok := c.gauges[name]; ok {
		return g
	}
	c.register(name)
	g := &Gauge{name: name}
	c.gauges[name] = g
	return g
}

// Histogram returns the named log2-bucket histogram over buckets
// (0, 2^minExp], ..., (2^(maxExp-1), 2^maxExp], creating it on first
// use (later calls ignore the exponent range).
func (c *Collector) Histogram(name string, minExp, maxExp int) *Histogram {
	if c == nil {
		return nil
	}
	if h, ok := c.hists[name]; ok {
		return h
	}
	if maxExp <= minExp {
		panic(fmt.Sprintf("metrics: histogram %q has empty exponent range [%d, %d]", name, minExp, maxExp))
	}
	c.register(name)
	h := &Histogram{name: name, minExp: minExp, w: make([]float64, maxExp-minExp+1)}
	c.hists[name] = h
	return h
}

// Series returns the named bounded series with the given retention
// limit, creating it on first use.
func (c *Collector) Series(name string, limit int) *Series {
	if c == nil {
		return nil
	}
	if s, ok := c.series[name]; ok {
		return s
	}
	if limit < 2 {
		limit = 2
	}
	c.register(name)
	s := &Series{name: name, limit: limit, stride: 1}
	c.series[name] = s
	return s
}

// Row is one snapshot line: a (metric, field) coordinate and its value.
// Kind is "counter", "gauge", "histogram" or "series"; ord orders fields
// within one metric (registration/bucket/sample order), keeping the
// serialised form stable and readable.
type Row struct {
	Metric string
	Kind   string
	Field  string
	Value  float64
	ord    int
}

// FormatValue renders a row's value canonically: counters as integers,
// everything else with the repo-wide 'g'/10 float format.
func (r Row) FormatValue() string {
	if r.Kind == "counter" {
		return strconv.FormatUint(uint64(r.Value), 10)
	}
	return strconv.FormatFloat(r.Value, 'g', 10, 64)
}

// Snapshot is an ordered, immutable export of a collector's state.
type Snapshot struct {
	Rows []Row
}

// bucketLabel names histogram bucket upper bounds: le_<2^exp> with the
// canonical float format (so "le_0.25", "le_8", "le_1024").
func bucketLabel(exp int) string {
	return "le_" + strconv.FormatFloat(math.Ldexp(1, exp), 'g', 10, 64)
}

// Snapshot exports every instrument as ordered rows: metrics sorted by
// name, fields in their natural order (a counter's single count, a
// gauge's integral/weight/mean, a histogram's zero + ascending buckets +
// count, a series' interleaved time/value samples). Zero-weight
// histogram buckets are elided — the bucket set is still deterministic,
// because it depends only on the observed values. A nil collector
// yields an empty snapshot.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{}
	if c == nil {
		return s
	}
	names := append([]string(nil), c.order...)
	sort.Strings(names)
	for _, name := range names {
		switch {
		case c.counters[name] != nil:
			ct := c.counters[name]
			s.Rows = append(s.Rows, Row{Metric: name, Kind: "counter", Field: "count", Value: float64(ct.n)})
		case c.gauges[name] != nil:
			g := c.gauges[name]
			s.Rows = append(s.Rows,
				Row{Metric: name, Kind: "gauge", Field: "integral", Value: g.integral.Value(), ord: 0},
				Row{Metric: name, Kind: "gauge", Field: "weight", Value: g.weight.Value(), ord: 1},
				Row{Metric: name, Kind: "gauge", Field: "mean", Value: g.Mean(), ord: 2},
			)
		case c.hists[name] != nil:
			h := c.hists[name]
			ord := 0
			if h.zero > 0 {
				s.Rows = append(s.Rows, Row{Metric: name, Kind: "histogram", Field: "le_0", Value: h.zero, ord: ord})
			}
			ord++
			for b, w := range h.w {
				if w > 0 {
					s.Rows = append(s.Rows, Row{Metric: name, Kind: "histogram",
						Field: bucketLabel(h.minExp + b), Value: w, ord: ord + b})
				}
			}
			s.Rows = append(s.Rows, Row{Metric: name, Kind: "histogram",
				Field: "count", Value: float64(h.count), ord: ord + len(h.w)})
		case c.series[name] != nil:
			se := c.series[name]
			for i := range se.t {
				s.Rows = append(s.Rows,
					Row{Metric: name, Kind: "series", Field: fmt.Sprintf("t%04d", i), Value: se.t[i], ord: 2 * i},
					Row{Metric: name, Kind: "series", Field: fmt.Sprintf("v%04d", i), Value: se.v[i], ord: 2*i + 1},
				)
			}
		}
	}
	return s
}

// Merge folds other into s numerically: rows matching on (metric, kind,
// field) add their values; unmatched rows are inserted. The result is
// re-sorted by (metric, ord, field), so merging any permutation-free
// sequence of snapshots in a fixed order yields byte-identical CSV —
// engines merge per-owner snapshots in index order for exactly this
// reason. Counter sums stay exact (integers below 2^53); float sums
// accumulate in call order.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	type key struct{ metric, kind, field string }
	at := make(map[key]int, len(s.Rows))
	for i, r := range s.Rows {
		at[key{r.Metric, r.Kind, r.Field}] = i
	}
	for _, r := range other.Rows {
		k := key{r.Metric, r.Kind, r.Field}
		if i, ok := at[k]; ok {
			s.Rows[i].Value += r.Value
		} else {
			at[k] = len(s.Rows)
			s.Rows = append(s.Rows, r)
		}
	}
	sort.SliceStable(s.Rows, func(i, j int) bool {
		a, b := s.Rows[i], s.Rows[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.ord != b.ord {
			return a.ord < b.ord
		}
		return a.Field < b.Field
	})
	// Merged gauge means are stale (integral and weight were summed);
	// recompute them from their siblings so the snapshot stays
	// self-consistent.
	for i := range s.Rows {
		if s.Rows[i].Kind == "gauge" && s.Rows[i].Field == "mean" {
			integral, weight := 0.0, 0.0
			for j := i - 2; j < i; j++ {
				if j >= 0 && s.Rows[j].Metric == s.Rows[i].Metric {
					switch s.Rows[j].Field {
					case "integral":
						integral = s.Rows[j].Value
					case "weight":
						weight = s.Rows[j].Value
					}
				}
			}
			if weight != 0 {
				s.Rows[i].Value = integral / weight
			}
		}
	}
}

// CSV serialises the snapshot as metric,kind,field,value rows (RFC 4180,
// one header line) — the byte form the determinism tests pin.
func (s *Snapshot) CSV() []byte {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"metric", "kind", "field", "value"})
	for _, r := range s.Rows {
		_ = w.Write([]string{r.Metric, r.Kind, r.Field, r.FormatValue()})
	}
	w.Flush()
	return []byte(b.String())
}

// Get returns the value at (metric, field), with ok reporting presence.
func (s *Snapshot) Get(metric, field string) (float64, bool) {
	for _, r := range s.Rows {
		if r.Metric == metric && r.Field == field {
			return r.Value, true
		}
	}
	return 0, false
}
