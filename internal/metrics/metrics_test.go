package metrics

import (
	"bytes"
	"math"
	"testing"
)

// TestNilSafety pins the disabled contract: a nil collector hands out
// nil instruments and every instrument method on them is a no-op.
func TestNilSafety(t *testing.T) {
	var c *Collector
	ct := c.Counter("x")
	g := c.Gauge("y")
	h := c.Histogram("z", -4, 4)
	se := c.Series("w", 16)
	if ct != nil || g != nil || h != nil || se != nil {
		t.Fatal("nil collector must return nil instruments")
	}
	ct.Inc()
	ct.Add(7)
	g.Observe(1, 2)
	h.Observe(3, 4)
	se.Append(5, 6)
	if ct.Value() != 0 || g.Mean() != 0 || g.Integral() != 0 || se.Len() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	snap := c.Snapshot()
	if len(snap.Rows) != 0 {
		t.Fatalf("nil collector snapshot has %d rows, want 0", len(snap.Rows))
	}
}

func TestCounterAndGauge(t *testing.T) {
	c := New()
	ct := c.Counter("events")
	ct.Inc()
	ct.Add(41)
	if got := ct.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := c.Counter("events"); again != ct {
		t.Fatal("Counter lookup must return the same instrument")
	}

	g := c.Gauge("busy")
	g.Observe(2, 1) // value 2 for 1s
	g.Observe(4, 3) // value 4 for 3s
	g.Observe(9, 0) // zero-length interval: ignored
	wantMean := (2*1 + 4*3) / 4.0
	if got := g.Mean(); math.Abs(got-wantMean) > 1e-12 {
		t.Fatalf("gauge mean = %g, want %g", got, wantMean)
	}
	if got := g.Integral(); got != 14 {
		t.Fatalf("gauge integral = %g, want 14", got)
	}
}

// TestHistogramBuckets pins the frexp bucketing: v lands in the bucket
// (2^(e-1), 2^e], powers of two on the boundary belong to the lower
// bucket, v <= 0 lands in the zero bucket, and out-of-range values
// clamp.
func TestHistogramBuckets(t *testing.T) {
	c := New()
	h := c.Histogram("occ", 0, 3) // buckets le_1, le_2, le_4, le_8
	cases := []struct {
		v     float64
		field string
	}{
		{0, "le_0"},
		{-1, "le_0"},
		{0.25, "le_1"}, // clamps below
		{1, "le_1"},    // exact power of two: lower bucket
		{1.5, "le_2"},
		{2, "le_2"},
		{3, "le_4"},
		{4, "le_4"},
		{5, "le_8"},
		{100, "le_8"}, // clamps above
	}
	for _, tc := range cases {
		h.Observe(tc.v, 1)
	}
	snap := c.Snapshot()
	want := map[string]float64{"le_0": 2, "le_1": 2, "le_2": 2, "le_4": 2, "le_8": 2, "count": 10}
	for field, w := range want {
		got, ok := snap.Get("occ", field)
		if !ok || got != w {
			t.Errorf("occ[%s] = %g (ok=%v), want %g", field, got, ok, w)
		}
	}
}

// TestSeriesDecimation pins that the retained sample set is a pure
// function of the append sequence and stays within the limit.
func TestSeriesDecimation(t *testing.T) {
	c := New()
	s := c.Series("q", 8)
	for i := 0; i < 1000; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() > 8 {
		t.Fatalf("series holds %d samples, limit 8", s.Len())
	}
	if s.Len() == 0 {
		t.Fatal("series retained nothing")
	}
	// Replay the identical sequence on a fresh series: byte-identical
	// snapshot.
	c2 := New()
	s2 := c2.Series("q", 8)
	for i := 0; i < 1000; i++ {
		s2.Append(float64(i), float64(i*i))
	}
	if !bytes.Equal(c.Snapshot().CSV(), c2.Snapshot().CSV()) {
		t.Fatal("identical append sequences must snapshot identically")
	}
}

// TestSnapshotOrderAndMerge pins the determinism story end to end:
// snapshots are name-ordered regardless of registration order, and
// merging A into B equals building the combined stream directly.
func TestSnapshotOrderAndMerge(t *testing.T) {
	build := func(names []string, scale float64) *Collector {
		c := New()
		for _, n := range names {
			c.Counter("n_" + n).Add(uint64(scale))
			c.Gauge("g_"+n).Observe(scale, 2)
		}
		return c
	}
	a := build([]string{"b", "a"}, 3)
	b := build([]string{"a", "c"}, 5)

	merged := a.Snapshot()
	merged.Merge(b.Snapshot())

	// The combined collector sees a's observations then b's.
	comb := New()
	for _, n := range []string{"b", "a"} {
		comb.Counter("n_" + n).Add(3)
		comb.Gauge("g_"+n).Observe(3, 2)
	}
	for _, n := range []string{"a", "c"} {
		comb.Counter("n_" + n).Add(5)
		comb.Gauge("g_"+n).Observe(5, 2)
	}
	if !bytes.Equal(merged.CSV(), comb.Snapshot().CSV()) {
		t.Fatalf("merge mismatch:\n%s\nvs\n%s", merged.CSV(), comb.Snapshot().CSV())
	}
	if v, _ := merged.Get("n_a", "count"); v != 8 {
		t.Fatalf("merged n_a = %g, want 8", v)
	}
	if v, _ := merged.Get("g_a", "mean"); v != (3*2+5*2)/4.0 {
		t.Fatalf("merged g_a mean = %g, want 4", v)
	}
}

func TestDuplicateInstrumentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind duplicate name must panic")
		}
	}()
	c := New()
	c.Counter("x")
	c.Gauge("x")
}
