package core

import (
	"symbiosched/internal/linalg"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// BottleneckError computes the paper's linear-bottleneck least-squares
// error for a workload (Section V-C.1b): find per-type full-resource rates
// R_b minimising
//
//	eps^2 = (1/|S|) * sum_s ( sum_b r_b(s)/R_b - 1 )^2 .
//
// Substituting u_b = 1/R_b makes the problem linear: minimise
// ||A u - 1||^2 with A[s][b] = r_b(s). An error of zero means a perfectly
// linear bottleneck — some critical shared resource is fully utilised in
// every coschedule and throughput is scheduler-independent (Eq. 7).
func BottleneckError(t *perfdb.Table, w workload.Workload) float64 {
	coscheds := workload.LocalCoschedules(w, t.K())
	m, n := len(coscheds), len(w)
	a := linalg.NewMatrix(m, n)
	rhs := make([]float64, m)
	for i, c := range coscheds {
		for j, b := range w {
			a.Set(i, j, t.TypeRate(c, b))
		}
		rhs[i] = 1
	}
	_, resid, err := linalg.LeastSquares(a, rhs)
	if err != nil {
		// Rank-deficient rate matrix (e.g. duplicated type behaviour):
		// treat as an exact bottleneck.
		return 0
	}
	return resid * resid / float64(m)
}

// LinearBottleneckThroughput returns the scheduler-independent average
// throughput of an exact linear bottleneck (paper Eq. 7):
// AT = N / sum_b (1/R_b), given the fitted R_b.
func LinearBottleneckThroughput(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	var inv float64
	for _, r := range rates {
		if r <= 0 {
			return 0
		}
		inv += 1 / r
	}
	return float64(len(rates)) / inv
}

// FitBottleneckRates returns the least-squares R_b of the linear
// bottleneck fit for a workload (the reciprocals of the fitted u_b).
// Types whose fitted u_b is non-positive (no consistent bottleneck share)
// yield +Inf-free zero entries and should be interpreted as "not part of
// the bottleneck".
func FitBottleneckRates(t *perfdb.Table, w workload.Workload) []float64 {
	coscheds := workload.LocalCoschedules(w, t.K())
	m, n := len(coscheds), len(w)
	a := linalg.NewMatrix(m, n)
	rhs := make([]float64, m)
	for i, c := range coscheds {
		for j, b := range w {
			a.Set(i, j, t.TypeRate(c, b))
		}
		rhs[i] = 1
	}
	u, _, err := linalg.LeastSquares(a, rhs)
	out := make([]float64, n)
	if err != nil {
		return out
	}
	for j, v := range u {
		if v > 1e-12 {
			out[j] = 1 / v
		}
	}
	return out
}

// TypeWIPCDiff returns the difference between the largest and smallest
// per-type average WIPC within a workload — the colour dimension of
// Figure 3 ("difference in average WIPC between the different job types").
// A high value flags workloads whose scheduler freedom is curtailed by the
// equal-work constraint (slow types dominate execution time).
func TypeWIPCDiff(t *perfdb.Table, w workload.Workload) float64 {
	coscheds := workload.LocalCoschedules(w, t.K())
	var lo, hi float64
	for i, b := range w {
		var sum float64
		var cnt int
		for _, c := range coscheds {
			if c.Count(b) > 0 {
				sum += t.JobWIPC(c, b)
				cnt++
			}
		}
		avg := sum / float64(cnt)
		if i == 0 || avg < lo {
			lo = avg
		}
		if i == 0 || avg > hi {
			hi = avg
		}
	}
	return hi - lo
}
