package core

import (
	"math"
	"testing"
	"testing/quick"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// homogeneousMixture builds the always-feasible schedule that runs only
// the N homogeneous coschedules: giving type b a time fraction
// proportional to 1/r_b(homo_b) makes every type's work rate equal. Its
// throughput is the harmonic-mean bound of paper Eq. 7 restricted to
// homogeneous coschedules — a feasible point the LP optimum must dominate
// and the LP minimum must not exceed.
func homogeneousMixture(t *perfdb.Table, w workload.Workload) float64 {
	var invSum float64
	rates := make([]float64, len(w))
	for i, b := range w {
		homo := make([]int, t.K())
		for j := range homo {
			homo[j] = b
		}
		rates[i] = t.TypeRate(workload.NewCoschedule(homo...), b)
		invSum += 1 / rates[i]
	}
	// x_b = (1/r_b) / invSum; throughput = sum x_b * r_b = N / invSum.
	return float64(len(w)) / invSum
}

func TestOptimalDominatesHomogeneousMixture(t *testing.T) {
	tab := table(t)
	for _, w := range workload.EnumerateWorkloads(len(tab.Suite()), 4) {
		opt, err := Optimal(tab, w)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := Worst(tab, w)
		if err != nil {
			t.Fatal(err)
		}
		homo := homogeneousMixture(tab, w)
		if opt.Throughput < homo-1e-7 {
			t.Errorf("workload %v: optimal %v below feasible homogeneous mixture %v",
				w, opt.Throughput, homo)
		}
		if worst.Throughput > homo+1e-7 {
			t.Errorf("workload %v: worst %v above feasible homogeneous mixture %v",
				w, worst.Throughput, homo)
		}
	}
}

// randomFeasibleSchedule perturbs the optimal basis: mix the optimal
// schedule with the homogeneous mixture by a random blend. Any convex
// combination of feasible schedules is feasible, so its throughput must
// stay inside the LP bounds.
func TestConvexBlendStaysWithinBounds(t *testing.T) {
	tab := table(t)
	rng := stats.NewRNG(77)
	ws := workload.EnumerateWorkloads(len(tab.Suite()), 4)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		w := ws[r.Intn(len(ws))]
		opt, err := Optimal(tab, w)
		if err != nil {
			return false
		}
		worst, err := Worst(tab, w)
		if err != nil {
			return false
		}
		alpha := r.Float64()
		blend := alpha*opt.Throughput + (1-alpha)*homogeneousMixture(tab, w)
		return blend <= opt.Throughput+1e-7 && blend >= worst.Throughput-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimal throughput is invariant under relabeling of the
// workload's types (the LP is symmetric in the type ordering).
func TestOptimalPermutationInvariance(t *testing.T) {
	tab := table(t)
	rng := stats.NewRNG(31)
	ws := workload.EnumerateWorkloads(len(tab.Suite()), 4)
	for trial := 0; trial < 20; trial++ {
		w := ws[rng.Intn(len(ws))]
		opt1, err := Optimal(tab, w)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(len(w))
		w2 := make(workload.Workload, len(w))
		for i, p := range perm {
			w2[i] = w[p]
		}
		opt2, err := Optimal(tab, w2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt1.Throughput-opt2.Throughput) > 1e-7 {
			t.Errorf("permuting %v -> %v changed optimal TP: %v vs %v",
				w, w2, opt1.Throughput, opt2.Throughput)
		}
	}
}

// Property: scaling every rate of the table by a WIPC override inside one
// coschedule can only change throughput through that coschedule — bounds
// for untouched workloads are unaffected.
func TestOverrideLocality(t *testing.T) {
	tab := table(t).Clone()
	// Disjoint N=3 workloads over the 6-benchmark test suite. The
	// equalisation touches only coschedules over `touched`'s types, so
	// `untouched`'s LP must not move at all.
	touched := workload.Workload{0, 1, 2}
	untouched := workload.Workload{3, 4, 5}
	before, err := Optimal(tab, untouched)
	if err != nil {
		t.Fatal(err)
	}
	// Equalise a coschedule over the touched types only (2+1+1 slots).
	cos := workload.NewCoschedule(touched[0], touched[0], touched[1], touched[2])
	mean := tab.InstTP(cos) / 4
	tab.Override(cos, map[int]float64{touched[0]: mean, touched[1]: mean, touched[2]: mean})
	after, err := Optimal(tab, untouched)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before.Throughput-after.Throughput) > 1e-12 {
		t.Errorf("override leaked into a disjoint workload: %v vs %v",
			before.Throughput, after.Throughput)
	}
}
