package core

import (
	"context"
	"fmt"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/runner"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// SpreadStats summarises, over all workloads (and job types where
// applicable), how far a quantity ranges above and below its per-workload
// reference, as plotted in Figure 1: the zero line is the reference
// (average, or FCFS for throughput), AvgBest/AvgWorst are the mean
// relative max/min, MaxBest/MinWorst the extremes across the suite.
type SpreadStats struct {
	AvgBest  float64 // mean over workloads of (max/ref - 1)
	AvgWorst float64 // mean over workloads of (min/ref - 1), negative
	MaxBest  float64 // largest (max/ref - 1) over the suite
	MinWorst float64 // smallest (min/ref - 1) over the suite, negative
}

// Variability is the paper's summary metric (Section V-B): the average of
// (max - min) / reference.
func (s SpreadStats) Variability() float64 { return s.AvgBest - s.AvgWorst }

func (s SpreadStats) String() string {
	return fmt.Sprintf("avg +%.1f%%/%.1f%%, extremes +%.1f%%/%.1f%%, variability %.1f%%",
		100*s.AvgBest, 100*s.AvgWorst, 100*s.MaxBest, 100*s.MinWorst, 100*s.Variability())
}

// WorkloadAnalysis bundles every per-workload quantity the figures need.
type WorkloadAnalysis struct {
	Workload workload.Workload
	// OptimalTP, WorstTP and FCFSTP are the average throughputs of the
	// three schedulers (WIPC units).
	OptimalTP, WorstTP, FCFSTP float64
	// OptimalSched and WorstSched carry the LP time fractions.
	OptimalSched, WorstSched *Schedule
	// FCFSFractions maps coschedule key to FCFS time fraction.
	FCFSFractions map[uint64]float64
	// JobIPCBest/JobIPCWorst are the per-type relative IPC extremes
	// (max/avg-1, min/avg-1) averaged over the workload's types.
	JobIPCBest, JobIPCWorst float64
	// JobIPCMaxBest/JobIPCMinWorst are the extreme per-type values.
	JobIPCMaxBest, JobIPCMinWorst float64
	// InstTPBest/InstTPWorst are the per-coschedule instantaneous
	// throughput extremes relative to the workload's mean.
	InstTPBest, InstTPWorst float64
	// BottleneckErr is the linear-bottleneck least-squares error (Fig. 3).
	BottleneckErr float64
	// TypeWIPCDiff is the difference between the highest and lowest
	// per-type average WIPC — the colour axis of Figure 3.
	TypeWIPCDiff float64
}

// AnalyzeConfig controls the per-workload analysis.
type AnalyzeConfig struct {
	// FCFS configures the FCFS simulation (see FCFSConfig defaults).
	FCFS FCFSConfig
	// SkipFCFS replaces the simulated FCFS throughput with the Markov
	// approximation (faster; used by tests).
	UseMarkovFCFS bool
	// Runner bounds the suite-sweep parallelism and carries progress
	// hooks; the zero value uses all CPUs. Results are independent of the
	// parallelism level.
	Runner runner.Config
}

// Analyze computes the full per-workload analysis for one workload.
func Analyze(t *perfdb.Table, w workload.Workload, cfg AnalyzeConfig) (*WorkloadAnalysis, error) {
	opt, err := Optimal(t, w)
	if err != nil {
		return nil, err
	}
	worst, err := Worst(t, w)
	if err != nil {
		return nil, err
	}
	a := &WorkloadAnalysis{
		Workload:     w,
		OptimalTP:    opt.Throughput,
		WorstTP:      worst.Throughput,
		OptimalSched: opt,
		WorstSched:   worst,
	}
	if cfg.UseMarkovFCFS {
		tp, err := MarkovFCFS(t, w)
		if err != nil {
			return nil, err
		}
		a.FCFSTP = tp
	} else {
		res := FCFS(t, w, cfg.FCFS)
		a.FCFSTP = res.Throughput
		a.FCFSFractions = res.TimeFraction
	}

	coscheds := workload.LocalCoschedules(w, t.K())

	// Per-job IPC spread: for each type, its per-job IPC across the
	// coschedules that contain it.
	first := true
	var bestSum, worstSum float64
	for _, b := range w {
		var ipcs []float64
		for _, c := range coscheds {
			if c.Count(b) > 0 {
				ipcs = append(ipcs, t.JobIPC(c, b))
			}
		}
		s := stats.Summarize(ipcs)
		best := s.Max/s.Mean - 1
		worstv := s.Min/s.Mean - 1
		bestSum += best
		worstSum += worstv
		if first || best > a.JobIPCMaxBest {
			a.JobIPCMaxBest = best
		}
		if first || worstv < a.JobIPCMinWorst {
			a.JobIPCMinWorst = worstv
		}
		first = false
	}
	a.JobIPCBest = bestSum / float64(len(w))
	a.JobIPCWorst = worstSum / float64(len(w))

	// Instantaneous throughput spread across the workload's coschedules.
	var itps []float64
	for _, c := range coscheds {
		itps = append(itps, t.InstTP(c))
	}
	s := stats.Summarize(itps)
	a.InstTPBest = s.Max/s.Mean - 1
	a.InstTPWorst = s.Min/s.Mean - 1

	// Linear-bottleneck least-squares error and per-type WIPC difference.
	a.BottleneckErr = BottleneckError(t, w)
	a.TypeWIPCDiff = TypeWIPCDiff(t, w)
	return a, nil
}

// SuiteAnalysis aggregates the per-workload analyses of a whole suite
// sweep (all C(suite, N) workloads), i.e. everything Figures 1-3 plot.
type SuiteAnalysis struct {
	Workloads []*WorkloadAnalysis
	JobIPC    SpreadStats // Figure 1, first bar
	InstTP    SpreadStats // Figure 1, second bar
	AvgTP     SpreadStats // Figure 1, third bar (reference: FCFS)
	// GapBridge is the mean of (FCFS-worst)/(optimal-worst): how much of
	// the worst-to-best gap FCFS closes (Section V-D quotes 76% for SMT
	// and 63% for the quad-core).
	GapBridge float64
	// Slope is the Figure 2 regression slope of FCFS/worst against
	// optimal/worst through (1,1) (paper: 0.73 SMT, 0.56 quad).
	Slope float64
	// BottleneckCorr is the Pearson correlation between the
	// linear-bottleneck error and the optimal/worst ratio (Figure 3).
	BottleneckCorr float64
}

// AnalyzeSuite runs Analyze for every workload of n distinct types over
// the table's suite, in parallel via the runner engine, and aggregates the
// spread statistics. The aggregation folds in workload-enumeration order,
// so the result is bit-identical at any parallelism level.
func AnalyzeSuite(t *perfdb.Table, n int, cfg AnalyzeConfig) (*SuiteAnalysis, error) {
	ws := workload.EnumerateWorkloads(len(t.Suite()), n)
	out := &SuiteAnalysis{Workloads: make([]*WorkloadAnalysis, len(ws))}
	err := runner.ForEach(context.Background(), cfg.Runner, len(ws), func(_ context.Context, i int) error {
		c := cfg
		if c.FCFS.Seed == 0 {
			c.FCFS.Seed = uint64(i) + 1 // distinct, deterministic streams
		}
		a, err := Analyze(t, ws[i], c)
		if err != nil {
			return fmt.Errorf("workload %v: %w", ws[i], err)
		}
		out.Workloads[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	aggregate(out)
	return out, nil
}

func aggregate(sa *SuiteAnalysis) {
	n := len(sa.Workloads)
	if n == 0 {
		return
	}
	var x, y []float64 // Figure 2 axes
	var eps, ratio []float64
	first := true
	for _, a := range sa.Workloads {
		sa.JobIPC.AvgBest += a.JobIPCBest / float64(n)
		sa.JobIPC.AvgWorst += a.JobIPCWorst / float64(n)
		sa.InstTP.AvgBest += a.InstTPBest / float64(n)
		sa.InstTP.AvgWorst += a.InstTPWorst / float64(n)
		optRel := a.OptimalTP/a.FCFSTP - 1
		worstRel := a.WorstTP/a.FCFSTP - 1
		sa.AvgTP.AvgBest += optRel / float64(n)
		sa.AvgTP.AvgWorst += worstRel / float64(n)
		if first || a.JobIPCMaxBest > sa.JobIPC.MaxBest {
			sa.JobIPC.MaxBest = a.JobIPCMaxBest
		}
		if first || a.JobIPCMinWorst < sa.JobIPC.MinWorst {
			sa.JobIPC.MinWorst = a.JobIPCMinWorst
		}
		if first || a.InstTPBest > sa.InstTP.MaxBest {
			sa.InstTP.MaxBest = a.InstTPBest
		}
		if first || a.InstTPWorst < sa.InstTP.MinWorst {
			sa.InstTP.MinWorst = a.InstTPWorst
		}
		if first || optRel > sa.AvgTP.MaxBest {
			sa.AvgTP.MaxBest = optRel
		}
		if first || worstRel < sa.AvgTP.MinWorst {
			sa.AvgTP.MinWorst = worstRel
		}
		first = false

		x = append(x, a.OptimalTP/a.WorstTP)
		y = append(y, a.FCFSTP/a.WorstTP)
		if gap := a.OptimalTP - a.WorstTP; gap > 1e-9 {
			sa.GapBridge += (a.FCFSTP - a.WorstTP) / gap
		} else {
			sa.GapBridge += 1 // no headroom: FCFS trivially closes it
		}
		eps = append(eps, a.BottleneckErr)
		ratio = append(ratio, a.OptimalTP/a.WorstTP)
	}
	sa.GapBridge /= float64(n)
	sa.Slope = stats.SlopeThroughOne(x, y)
	if len(eps) >= 2 {
		_, _, r := stats.LinearFit(eps, ratio)
		sa.BottleneckCorr = r
	}
}
