package core

import (
	"math"

	"symbiosched/internal/linalg"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// FCFSConfig parameterises the FCFS maximum-throughput experiment.
type FCFSConfig struct {
	// Jobs is the total number of jobs executed (default 30_000).
	Jobs int
	// JobSize is the work per job in solo-time units (default 1). Under
	// the paper's equal-work assumption all jobs share one size; the
	// long-run throughput is size-invariant.
	JobSize float64
	// Seed drives the random arrival order (default 1).
	Seed uint64
}

func (c FCFSConfig) withDefaults() FCFSConfig {
	if c.Jobs <= 0 {
		c.Jobs = 30_000
	}
	if c.JobSize <= 0 {
		c.JobSize = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FCFSResult is the outcome of an FCFS maximum-throughput experiment.
type FCFSResult struct {
	// Throughput is the long-run average throughput: total work divided
	// by makespan (WIPC units).
	Throughput float64
	// TimeFraction maps coschedule keys (perfdb.Key) to the fraction of
	// machine time spent in that coschedule. Partial coschedules from the
	// drain phase are included; with a long run their share is negligible.
	TimeFraction map[uint64]float64
	// Jobs and Makespan echo the experiment size.
	Jobs     int
	Makespan float64
}

// FCFS simulates the paper's baseline scheduler on workload w: a large
// pool of jobs with uniformly random types, executed in arrival order on
// the K contexts — "the coschedules selected by the FCFS scheduler result
// from a random process, where the next job is uniformly selected from the
// available job types" (Section V-D). The machine is fully loaded until
// the pool drains.
func FCFS(t *perfdb.Table, w workload.Workload, cfg FCFSConfig) *FCFSResult {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	k := t.K()

	type slot struct {
		typ int
		rem float64
	}
	slots := make([]slot, 0, k)
	jobsLeft := cfg.Jobs
	nextJob := func() (int, bool) {
		if jobsLeft == 0 {
			return 0, false
		}
		jobsLeft--
		return w[rng.Intn(len(w))], true
	}
	for len(slots) < k {
		typ, ok := nextJob()
		if !ok {
			break
		}
		slots = append(slots, slot{typ: typ, rem: cfg.JobSize})
	}

	timeFrac := make(map[uint64]float64)
	var elapsed float64
	cos := make(workload.Coschedule, 0, k)
	for len(slots) > 0 {
		// Current coschedule and per-slot rates.
		cos = cos[:0]
		for _, s := range slots {
			cos = append(cos, s.typ)
		}
		canon := workload.NewCoschedule(cos...)
		key := perfdb.Key(canon)
		// Time to first completion.
		dt := math.Inf(1)
		for _, s := range slots {
			rate := t.JobWIPC(canon, s.typ)
			if d := s.rem / rate; d < dt {
				dt = d
			}
		}
		elapsed += dt
		timeFrac[key] += dt
		// Advance and replace completed jobs.
		out := slots[:0]
		for _, s := range slots {
			s.rem -= t.JobWIPC(canon, s.typ) * dt
			if s.rem > 1e-12 {
				out = append(out, s)
				continue
			}
			if typ, ok := nextJob(); ok {
				out = append(out, slot{typ: typ, rem: cfg.JobSize})
			}
		}
		slots = out
	}
	for key := range timeFrac {
		timeFrac[key] /= elapsed
	}
	return &FCFSResult{
		Throughput:   float64(cfg.Jobs) * cfg.JobSize / elapsed,
		TimeFraction: timeFrac,
		Jobs:         cfg.Jobs,
		Makespan:     elapsed,
	}
}

// MarkovFCFS computes the FCFS average throughput analytically, assuming
// exponentially distributed job sizes: the occupied coschedule then evolves
// as a continuous-time Markov chain over the C(N+K-1, K) full coschedules,
// where a type-b job completes at rate WIPC_b(s)/meanSize and is replaced
// by a uniformly random type. The stationary distribution gives the
// time-weighted throughput. This is the closed-form counterpart of the
// FCFS simulation (cf. the TPCalc throughput metrics of Eyerman et al.,
// TACO 2014) and agrees with it to within the geometric-vs-deterministic
// job-size difference.
func MarkovFCFS(t *perfdb.Table, w workload.Workload) (float64, error) {
	k := t.K()
	n := len(w)
	states := workload.LocalCoschedules(w, k)
	index := make(map[uint64]int, len(states))
	for i, s := range states {
		index[perfdb.Key(s)] = i
	}
	m := len(states)
	// Generator: q[i][j] = rate i->j, i != j.
	q := linalg.NewMatrix(m, m)
	for i, s := range states {
		var total float64
		for _, b := range s.Types() {
			// Completion rate of one of the count_b type-b jobs times the
			// number of such jobs = total type rate r_b(s).
			rate := t.TypeRate(s, b)
			total += rate
			// The finished type-b job is replaced by a uniform type.
			for _, nb := range w {
				next := replaceOne(s, b, nb)
				j := index[perfdb.Key(next)]
				q.Set(i, j, q.At(i, j)+rate/float64(n))
			}
		}
		q.Set(i, i, q.At(i, i)-total)
	}
	// Stationary distribution: pi Q = 0, sum pi = 1. Solve Q^T pi = 0 with
	// the last equation replaced by normalisation.
	a := linalg.NewMatrix(m, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, q.At(j, i))
		}
	}
	for j := 0; j < m; j++ {
		a.Set(m-1, j, 1)
	}
	b[m-1] = 1
	pi, err := linalg.Solve(a, b)
	if err != nil {
		return 0, err
	}
	var tp float64
	for i, s := range states {
		p := pi[i]
		if p < 0 {
			p = 0 // tiny negative round-off on nearly unreachable states
		}
		tp += p * t.InstTP(s)
	}
	return tp, nil
}

// replaceOne returns coschedule s with one job of type old replaced by a
// job of type new.
func replaceOne(s workload.Coschedule, old, new int) workload.Coschedule {
	out := append(workload.Coschedule(nil), s...)
	for i, t := range out {
		if t == old {
			out[i] = new
			break
		}
	}
	return workload.NewCoschedule(out...)
}
