package core

import (
	"testing"

	"symbiosched/internal/workload"
)

func TestUnitViewConversion(t *testing.T) {
	tab := table(t)
	c := workload.NewCoschedule(0, 1, 2, 3)
	weighted := UnitView{T: tab, Unit: WeightedInstructions}
	raw := UnitView{T: tab, Unit: RawInstructions}
	for _, b := range c.Types() {
		wantRaw := tab.TypeRate(c, b) * tab.Solo[b]
		if got := raw.TypeRate(c, b); got != wantRaw {
			t.Errorf("raw rate %v, want %v", got, wantRaw)
		}
		if got := weighted.TypeRate(c, b); got != tab.TypeRate(c, b) {
			t.Errorf("weighted rate changed under view")
		}
	}
	if got := weighted.InstTP(c); got != tab.InstTP(c) {
		t.Errorf("weighted instTP changed under view")
	}
	// Raw instTP is the aggregate IPC.
	var wantIPC float64
	for _, b := range c.Types() {
		wantIPC += float64(c.Count(b)) * tab.JobIPC(c, b)
	}
	if got := raw.InstTP(c); got < wantIPC*0.999 || got > wantIPC*1.001 {
		t.Errorf("raw instTP %v, want aggregate IPC %v", got, wantIPC)
	}
}

func TestWeightedUnitDelegates(t *testing.T) {
	tab := table(t)
	w := w4()
	a, err := OptimalInUnit(tab, w, WeightedInstructions)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimal(tab, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput {
		t.Errorf("weighted unit should delegate to Optimal: %v vs %v", a.Throughput, b.Throughput)
	}
}

// The paper's robustness claim (Section III-B): "we checked that our
// qualitative conclusions also hold for the instruction as unit of work".
func TestQualitativeConclusionsHoldForRawInstructions(t *testing.T) {
	tab := table(t)
	var gains, spreads []float64
	for _, w := range workload.EnumerateWorkloads(len(tab.Suite()), 4) {
		opt, err := OptimalInUnit(tab, w, RawInstructions)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := WorstInUnit(tab, w, RawInstructions)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Throughput < worst.Throughput-1e-9 {
			t.Fatalf("workload %v: optimal %v < worst %v in raw units", w, opt.Throughput, worst.Throughput)
		}
		spreads = append(spreads, opt.Throughput/worst.Throughput-1)
		// Support bound still holds (same LP structure).
		if nz := opt.NonZero(1e-9); len(nz) > len(w) {
			t.Errorf("workload %v: support %d > N", w, len(nz))
		}
		gains = append(gains, opt.Throughput/worst.Throughput)
	}
	// Qualitative conclusion: scheduling headroom stays small on average
	// (well under the per-job IPC variability, ~30%).
	var mean float64
	for _, s := range spreads {
		mean += s / float64(len(spreads))
	}
	if mean > 0.25 {
		t.Errorf("raw-instruction opt/worst spread %v no longer small — paper's conclusion broken", mean)
	}
	_ = gains
}
