package core

import (
	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// HeteroClass aggregates Table II for one coschedule-heterogeneity class
// (number of distinct job types in the coschedule, 1..K).
type HeteroClass struct {
	// Heterogeneity is the number of unique job types (1 = homogeneous).
	Heterogeneity int
	// AvgInstTP is the mean instantaneous throughput of the class's
	// coschedules (unweighted over coschedules, averaged over workloads).
	AvgInstTP float64
	// FCFS, Optimal and Worst are the mean fractions of time the three
	// schedulers spend in this class.
	FCFS, Optimal, Worst float64
}

// HeterogeneityTable computes Table II from a set of per-workload analyses
// (which must carry FCFS time fractions, i.e. produced with the simulated
// FCFS). Rows are indexed 1..K.
func HeterogeneityTable(t *perfdb.Table, was []*WorkloadAnalysis) []HeteroClass {
	k := t.K()
	out := make([]HeteroClass, k)
	for h := 1; h <= k; h++ {
		out[h-1].Heterogeneity = h
	}
	if len(was) == 0 {
		return out
	}
	n := float64(len(was))
	for _, a := range was {
		coscheds := workload.LocalCoschedules(a.Workload, k)
		// Mean instantaneous throughput per class for this workload.
		sumTP := make([]float64, k+1)
		cnt := make([]int, k+1)
		for _, c := range coscheds {
			h := c.Heterogeneity()
			sumTP[h] += t.InstTP(c)
			cnt[h]++
		}
		for h := 1; h <= k; h++ {
			if cnt[h] > 0 {
				out[h-1].AvgInstTP += sumTP[h] / float64(cnt[h]) / n
			}
		}
		// Scheduler time fractions per class.
		for _, f := range a.OptimalSched.Fractions {
			out[f.Cos.Heterogeneity()-1].Optimal += f.X / n
		}
		for _, f := range a.WorstSched.Fractions {
			out[f.Cos.Heterogeneity()-1].Worst += f.X / n
		}
		var total float64
		for _, frac := range a.FCFSFractions {
			total += frac
		}
		if total > 0 {
			for key, frac := range a.FCFSFractions {
				c := decodeKey(key)
				if len(c) == k { // skip drain-phase partial coschedules
					out[c.Heterogeneity()-1].FCFS += frac / total / n
				}
			}
		}
	}
	return out
}

// decodeKey inverts perfdb.Key.
func decodeKey(key uint64) workload.Coschedule {
	var rev []int
	for key > 1 {
		rev = append(rev, int(key&0xff)-1)
		key >>= 8
	}
	out := make(workload.Coschedule, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// TheoreticalFCFSHeteroFractions returns the probability that K
// independent uniform draws from N types produce a coschedule with h
// distinct types, for h = 1..K — the paper's "theoretical values" for the
// FCFS fractions (2%, 33%, 56%, 9% for N=K=4).
func TheoreticalFCFSHeteroFractions(n, k int) []float64 {
	counts := make([]float64, k)
	var rec func(pos, maxType, distinct int, ways float64)
	// Enumerate ordered draws implicitly via multiset counting:
	// probability of a particular multiset is multinomial(k; counts)/n^k.
	for _, ms := range workload.Multisets(n, k) {
		h := ms.Heterogeneity()
		// Number of ordered sequences mapping to this multiset.
		perm := permutations(ms)
		counts[h-1] += perm
	}
	total := pow(float64(n), k)
	for i := range counts {
		counts[i] /= total
	}
	_ = rec
	return counts
}

func permutations(c workload.Coschedule) float64 {
	// k! / prod(count_t!)
	k := len(c)
	num := fact(k)
	den := 1.0
	run := 1
	for i := 1; i <= k; i++ {
		if i < k && c[i] == c[i-1] {
			run++
			continue
		}
		den *= fact(run)
		run = 1
	}
	return num / den
}

func fact(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

func pow(b float64, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
