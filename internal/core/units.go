package core

import (
	"fmt"

	"symbiosched/internal/lp"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// Unit selects the unit of work for throughput accounting (paper Section
// III-B). The paper presents results in weighted instructions — a job's
// rate is its IPC divided by its solo IPC, so equal-size jobs take equal
// time in isolation — and notes that "our qualitative conclusions also
// hold for the instruction as unit of work". RawInstructions enables that
// robustness check: rates are raw IPCs and it(s) is the plain aggregate
// IPC of the coschedule.
type Unit int

const (
	// WeightedInstructions is the paper's default unit (WIPC).
	WeightedInstructions Unit = iota
	// RawInstructions uses plain instructions (IPC).
	RawInstructions
)

// RateTable exposes the per-coschedule quantities the LP needs in a chosen
// unit of work. perfdb.Table natively serves WeightedInstructions; UnitView
// adapts it to either unit.
type UnitView struct {
	T    *perfdb.Table
	Unit Unit
}

// TypeRate returns r_b(s) in the selected unit.
func (v UnitView) TypeRate(c workload.Coschedule, b int) float64 {
	r := v.T.TypeRate(c, b)
	if v.Unit == RawInstructions {
		r *= v.T.Solo[b]
	}
	return r
}

// InstTP returns it(s) in the selected unit.
func (v UnitView) InstTP(c workload.Coschedule) float64 {
	if v.Unit == WeightedInstructions {
		return v.T.InstTP(c)
	}
	var sum float64
	for _, b := range c.Types() {
		sum += v.TypeRate(c, b)
	}
	return sum
}

// OptimalInUnit computes the optimal schedule with the chosen unit of
// work: maximise sum_s x_s it(s) under the equal-work constraint, where
// both it(s) and the per-type work rates are measured in that unit. With
// RawInstructions the constraint means every type commits the same number
// of instructions (the paper's alternative accounting).
func OptimalInUnit(t *perfdb.Table, w workload.Workload, u Unit) (*Schedule, error) {
	return solveUnit(t, w, u, true)
}

// WorstInUnit is the minimising counterpart of OptimalInUnit.
func WorstInUnit(t *perfdb.Table, w workload.Workload, u Unit) (*Schedule, error) {
	return solveUnit(t, w, u, false)
}

func solveUnit(t *perfdb.Table, w workload.Workload, u Unit, maximize bool) (*Schedule, error) {
	if u == WeightedInstructions {
		if maximize {
			return Optimal(t, w)
		}
		return Worst(t, w)
	}
	// Rebuild the paper's LP (Eq. 2-5) over the unit view.
	view := UnitView{T: t, Unit: u}
	coscheds := workload.LocalCoschedules(w, t.K())
	n := len(coscheds)
	p := &lp.Problem{Sense: lp.Minimize}
	if maximize {
		p.Sense = lp.Maximize
	}
	p.C = make([]float64, n)
	ones := make([]float64, n)
	for j, c := range coscheds {
		p.C[j] = view.InstTP(c)
		ones[j] = 1
	}
	p.A = append(p.A, ones)
	p.B = append(p.B, 1)
	for bi := 1; bi < len(w); bi++ {
		row := make([]float64, n)
		for j, c := range coscheds {
			row[j] = view.TypeRate(c, w[bi]) - view.TypeRate(c, w[0])
		}
		p.A = append(p.A, row)
		p.B = append(p.B, 0)
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("core: workload %v (unit %d): %w", w, u, err)
	}
	sched := &Schedule{Workload: w, Throughput: sol.Objective}
	sched.Fractions = make([]Fraction, n)
	for j, c := range coscheds {
		sched.Fractions[j] = Fraction{Cos: c, X: sol.X[j]}
	}
	return sched, nil
}
