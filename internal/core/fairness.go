package core

import (
	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// EqualizeHeterogeneousCoschedule implements the Section V-D counterfactual:
// "we artificially changed the performance of jobs in the single
// 4-heterogeneous coschedule ... by making them more fairly distributed,
// without changing the instantaneous throughput of the coschedule (i.e.,
// we gave slower jobs a higher IPC and faster jobs a lower IPC)."
//
// It returns a clone of the table in which, for the given workload's fully
// heterogeneous coschedule, every job runs at the same WIPC (the mean of
// the original per-job WIPCs, preserving it(s)), blended by fairness in
// [0, 1]: 0 leaves the coschedule unchanged, 1 equalises it completely.
func EqualizeHeterogeneousCoschedule(t *perfdb.Table, w workload.Workload, fairness float64) *perfdb.Table {
	if fairness < 0 || fairness > 1 {
		panic("core: fairness outside [0, 1]")
	}
	nt := t.Clone()
	c := workload.NewCoschedule(w...)
	if len(c) != t.K() || c.Heterogeneity() != len(w) {
		panic("core: workload does not define a single fully heterogeneous coschedule")
	}
	var mean float64
	for _, b := range w {
		mean += t.JobWIPC(c, b)
	}
	mean /= float64(len(w))
	newWIPC := make(map[int]float64, len(w))
	for _, b := range w {
		old := t.JobWIPC(c, b)
		newWIPC[b] = old + fairness*(mean-old)
	}
	nt.Override(c, newWIPC)
	return nt
}

// FairnessOutcome compares the three schedulers before and after the
// counterfactual.
type FairnessOutcome struct {
	// Baseline and Equalized are the (optimal, FCFS, worst) throughputs.
	BaselineOpt, BaselineFCFS, BaselineWorst    float64
	EqualizedOpt, EqualizedFCFS, EqualizedWorst float64
	// HeteroFractionBefore/After is the time fraction the optimal
	// scheduler gives the fully heterogeneous coschedule.
	HeteroFractionBefore, HeteroFractionAfter float64
}

// FairnessExperiment runs the Section V-D counterfactual for one workload.
func FairnessExperiment(t *perfdb.Table, w workload.Workload, fcfs FCFSConfig) (*FairnessOutcome, error) {
	hetero := workload.NewCoschedule(w...)
	heteroKey := perfdb.Key(hetero)

	measure := func(tab *perfdb.Table) (opt, fc, worst, heteroFrac float64, err error) {
		o, err := Optimal(tab, w)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		wst, err := Worst(tab, w)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		f := FCFS(tab, w, fcfs)
		for _, fr := range o.Fractions {
			if perfdb.Key(fr.Cos) == heteroKey {
				heteroFrac = fr.X
			}
		}
		return o.Throughput, f.Throughput, wst.Throughput, heteroFrac, nil
	}

	out := &FairnessOutcome{}
	var err error
	out.BaselineOpt, out.BaselineFCFS, out.BaselineWorst, out.HeteroFractionBefore, err = measure(t)
	if err != nil {
		return nil, err
	}
	eq := EqualizeHeterogeneousCoschedule(t, w, 1)
	out.EqualizedOpt, out.EqualizedFCFS, out.EqualizedWorst, out.HeteroFractionAfter, err = measure(eq)
	if err != nil {
		return nil, err
	}
	return out, nil
}
