package core

import (
	"testing"

	"symbiosched/internal/runner"
)

// TestAnalyzeSuiteDeterministicAcrossParallelism pins the runner contract:
// the suite sweep's aggregates are bit-identical at any parallelism level
// (the FCFS simulation included — each workload gets its own seeded
// stream, and the fold runs in enumeration order).
func TestAnalyzeSuiteDeterministicAcrossParallelism(t *testing.T) {
	tab := table(t)
	run := func(p int) *SuiteAnalysis {
		sa, err := AnalyzeSuite(tab, 4, AnalyzeConfig{
			FCFS:   FCFSConfig{Jobs: 2000},
			Runner: runner.Config{Parallelism: p},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sa
	}
	ref := run(1)
	for _, p := range []int{2, 8} {
		sa := run(p)
		if sa.Slope != ref.Slope || sa.GapBridge != ref.GapBridge || sa.BottleneckCorr != ref.BottleneckCorr {
			t.Fatalf("p=%d: aggregates differ: slope %v vs %v, bridge %v vs %v, corr %v vs %v",
				p, sa.Slope, ref.Slope, sa.GapBridge, ref.GapBridge, sa.BottleneckCorr, ref.BottleneckCorr)
		}
		if sa.JobIPC != ref.JobIPC || sa.InstTP != ref.InstTP || sa.AvgTP != ref.AvgTP {
			t.Fatalf("p=%d: spread stats differ from sequential sweep", p)
		}
		for i, a := range sa.Workloads {
			r := ref.Workloads[i]
			if a.OptimalTP != r.OptimalTP || a.WorstTP != r.WorstTP || a.FCFSTP != r.FCFSTP {
				t.Fatalf("p=%d: workload %v throughputs differ: %+v vs %+v", p, a.Workload, a, r)
			}
		}
	}
}
