// Package core implements the paper's primary contribution: computing the
// theoretically optimal (and worst) long-term average throughput of a
// fixed workload on a machine with shared resources, from per-coschedule
// performance data alone (Section IV), together with the analyses built on
// it — FCFS reference throughput, variability metrics (Fig. 1-2), the
// linear-bottleneck least-squares diagnostic (Fig. 3), coschedule
// heterogeneity profiles (Table II) and the Section V-D fairness
// counterfactual.
//
// Terminology follows the paper. A workload is a set of N job types with
// equal probabilities and equal total work. A coschedule s is a multiset
// of K jobs from those types. r_b(s) is the total execution rate of
// type-b jobs in s (in weighted instructions per cycle, WIPC), and the
// instantaneous throughput is it(s) = sum_b r_b(s). A scheduler is a set
// of time fractions x_s >= 0, sum x_s = 1; its average throughput is
// sum_s x_s it(s), subject to every type accumulating the same work:
// sum_s x_s r_b(s) equal for all b.
package core

import (
	"fmt"
	"sort"

	"symbiosched/internal/lp"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// Fraction is one coschedule's share of machine time in a schedule.
type Fraction struct {
	Cos workload.Coschedule
	X   float64
}

// Schedule is a (possibly optimal) steady-state schedule for a workload:
// per-coschedule time fractions and the resulting average throughput.
type Schedule struct {
	Workload   workload.Workload
	Fractions  []Fraction
	Throughput float64
}

// NonZero returns the fractions with X above tol, sorted descending by X.
func (s *Schedule) NonZero(tol float64) []Fraction {
	var out []Fraction
	for _, f := range s.Fractions {
		if f.X > tol {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X > out[j].X })
	return out
}

// buildLP constructs the paper's linear program (Eq. 2-5) for a workload
// over table t. Variables are the time fractions of the workload's
// coschedules (combinations with repetition of K slots over the N types).
func buildLP(t *perfdb.Table, w workload.Workload, sense lp.Sense) (*lp.Problem, []workload.Coschedule) {
	if len(w) < 1 {
		panic("core: empty workload")
	}
	coscheds := workload.LocalCoschedules(w, t.K())
	n := len(coscheds)
	p := &lp.Problem{Sense: sense}
	p.C = make([]float64, n)
	for j, c := range coscheds {
		p.C[j] = t.InstTP(c)
	}
	// Eq. 4: fractions sum to one.
	ones := make([]float64, n)
	for j := range ones {
		ones[j] = 1
	}
	p.A = append(p.A, ones)
	p.B = append(p.B, 1)
	// Eq. 5: each type performs the same total work as type w[0].
	for bi := 1; bi < len(w); bi++ {
		row := make([]float64, n)
		for j, c := range coscheds {
			row[j] = t.TypeRate(c, w[bi]) - t.TypeRate(c, w[0])
		}
		p.A = append(p.A, row)
		p.B = append(p.B, 0)
	}
	return p, coscheds
}

// Optimal computes the maximum-throughput schedule of workload w on the
// machine described by table t (paper Section IV).
func Optimal(t *perfdb.Table, w workload.Workload) (*Schedule, error) {
	return solve(t, w, lp.Maximize)
}

// Worst computes the minimum-throughput schedule — the deliberately bad
// scheduler used as the lower bound in Figures 1-3.
func Worst(t *perfdb.Table, w workload.Workload) (*Schedule, error) {
	return solve(t, w, lp.Minimize)
}

func solve(t *perfdb.Table, w workload.Workload, sense lp.Sense) (*Schedule, error) {
	p, coscheds := buildLP(t, w, sense)
	sol, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("core: workload %v: %w", w, err)
	}
	sched := &Schedule{Workload: w, Throughput: sol.Objective}
	sched.Fractions = make([]Fraction, len(coscheds))
	for j, c := range coscheds {
		sched.Fractions[j] = Fraction{Cos: c, X: sol.X[j]}
	}
	return sched, nil
}

// TypeWork returns the work rate each type receives under schedule s —
// useful to verify the equal-work constraint.
func TypeWork(t *perfdb.Table, s *Schedule) map[int]float64 {
	out := make(map[int]float64, len(s.Workload))
	for _, b := range s.Workload {
		var acc float64
		for _, f := range s.Fractions {
			acc += f.X * t.TypeRate(f.Cos, b)
		}
		out[b] = acc
	}
	return out
}
