package core

import (
	"math"
	"sync"
	"testing"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

var (
	buildOnce sync.Once
	smtTable  *perfdb.Table
)

// table builds (once) a 6-benchmark SMT table: enough diversity for
// meaningful schedules while keeping tests fast.
func table(t *testing.T) *perfdb.Table {
	t.Helper()
	buildOnce.Do(func() {
		suite := program.Suite()
		mini := []program.Profile{suite[1], suite[3], suite[5], suite[6], suite[7], suite[11]}
		smtTable = perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, mini)
	})
	return smtTable
}

func w4() workload.Workload { return workload.Workload{0, 2, 3, 4} } // gcc.g23? indices into mini suite

func TestOptimalSatisfiesLPConstraints(t *testing.T) {
	tab := table(t)
	opt, err := Optimal(tab, w4())
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	var sum float64
	for _, f := range opt.Fractions {
		if f.X < -1e-9 {
			t.Errorf("negative fraction %v", f)
		}
		sum += f.X
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("fractions sum to %v, want 1 (Eq. 4)", sum)
	}
	// Eq. 5: equal work per type.
	work := TypeWork(tab, opt)
	var ref float64
	first := true
	for _, b := range w4() {
		if first {
			ref = work[b]
			first = false
			continue
		}
		if math.Abs(work[b]-ref) > 1e-6*math.Max(1, ref) {
			t.Errorf("type %d work %v != %v (Eq. 5 violated)", b, work[b], ref)
		}
	}
}

func TestOptimalAtLeastWorst(t *testing.T) {
	tab := table(t)
	for _, w := range workload.EnumerateWorkloads(len(tab.Suite()), 4) {
		opt, err := Optimal(tab, w)
		if err != nil {
			t.Fatalf("Optimal(%v): %v", w, err)
		}
		worst, err := Worst(tab, w)
		if err != nil {
			t.Fatalf("Worst(%v): %v", w, err)
		}
		if opt.Throughput < worst.Throughput-1e-9 {
			t.Errorf("workload %v: optimal %v < worst %v", w, opt.Throughput, worst.Throughput)
		}
	}
}

func TestOptimalSupportBoundedByTypes(t *testing.T) {
	// Paper Section IV: an optimal basic solution uses at most N
	// coschedules (N equality constraints).
	tab := table(t)
	for _, w := range workload.EnumerateWorkloads(len(tab.Suite()), 4) {
		opt, err := Optimal(tab, w)
		if err != nil {
			t.Fatal(err)
		}
		if nz := opt.NonZero(1e-9); len(nz) > len(w) {
			t.Errorf("workload %v: %d non-zero fractions > N=%d", w, len(nz), len(w))
		}
	}
}

func TestFCFSBetweenBounds(t *testing.T) {
	tab := table(t)
	w := w4()
	opt, _ := Optimal(tab, w)
	worst, _ := Worst(tab, w)
	res := FCFS(tab, w, FCFSConfig{Jobs: 30_000, Seed: 7})
	// Allow a little simulation noise at the boundaries.
	if res.Throughput > opt.Throughput*1.005 || res.Throughput < worst.Throughput*0.995 {
		t.Errorf("FCFS throughput %v outside [%v, %v]", res.Throughput, worst.Throughput, opt.Throughput)
	}
}

func TestFCFSTimeFractionsSumToOne(t *testing.T) {
	tab := table(t)
	res := FCFS(tab, w4(), FCFSConfig{Jobs: 5000, Seed: 3})
	var sum float64
	for _, f := range res.TimeFraction {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("time fractions sum to %v", sum)
	}
}

func TestFCFSDeterministicPerSeed(t *testing.T) {
	tab := table(t)
	a := FCFS(tab, w4(), FCFSConfig{Jobs: 2000, Seed: 5})
	b := FCFS(tab, w4(), FCFSConfig{Jobs: 2000, Seed: 5})
	if a.Throughput != b.Throughput {
		t.Error("FCFS is not deterministic for a fixed seed")
	}
	c := FCFS(tab, w4(), FCFSConfig{Jobs: 2000, Seed: 6})
	if a.Throughput == c.Throughput {
		t.Error("different seeds should give (slightly) different runs")
	}
}

func TestMarkovFCFSAgreesWithSimulation(t *testing.T) {
	tab := table(t)
	w := w4()
	markov, err := MarkovFCFS(tab, w)
	if err != nil {
		t.Fatalf("MarkovFCFS: %v", err)
	}
	sim := FCFS(tab, w, FCFSConfig{Jobs: 60_000, Seed: 11})
	// Deterministic vs exponential job sizes differ slightly; 3% agreement
	// is the expected band.
	if rel := math.Abs(markov-sim.Throughput) / sim.Throughput; rel > 0.03 {
		t.Errorf("Markov %v vs simulated %v differ by %.1f%%", markov, sim.Throughput, 100*rel)
	}
}

func TestMarkovFCFSBetweenBounds(t *testing.T) {
	tab := table(t)
	for _, w := range workload.EnumerateWorkloads(len(tab.Suite()), 4) {
		opt, _ := Optimal(tab, w)
		worst, _ := Worst(tab, w)
		markov, err := MarkovFCFS(tab, w)
		if err != nil {
			t.Fatal(err)
		}
		if markov > opt.Throughput+1e-6 || markov < worst.Throughput-1e-6 {
			t.Errorf("workload %v: Markov FCFS %v outside [%v, %v]",
				w, markov, worst.Throughput, opt.Throughput)
		}
	}
}

func TestBottleneckErrorNonNegative(t *testing.T) {
	tab := table(t)
	for _, w := range workload.EnumerateWorkloads(len(tab.Suite()), 4) {
		if e := BottleneckError(tab, w); e < 0 {
			t.Errorf("workload %v: negative bottleneck error %v", w, e)
		}
	}
}

func TestBottleneckExactForSyntheticLinear(t *testing.T) {
	// Construct a table-like check indirectly: the identity in Eq. 6 means
	// the fitted rates reproduce AT = N / sum(1/R_b) (Eq. 7). For a
	// workload with a tiny bottleneck error, optimal and worst should be
	// close — the paper's core diagnostic.
	tab := table(t)
	type wl struct {
		w      workload.Workload
		err    float64
		spread float64
	}
	var all []wl
	for _, w := range workload.EnumerateWorkloads(len(tab.Suite()), 4) {
		opt, _ := Optimal(tab, w)
		worst, _ := Worst(tab, w)
		all = append(all, wl{w, BottleneckError(tab, w), opt.Throughput/worst.Throughput - 1})
	}
	// Among the 5 lowest-error workloads, spread must be modest compared
	// to the maximum spread.
	minErr, maxSpread := math.Inf(1), 0.0
	var minSpreadAtMinErr float64
	for _, x := range all {
		if x.spread > maxSpread {
			maxSpread = x.spread
		}
		if x.err < minErr {
			minErr = x.err
			minSpreadAtMinErr = x.spread
		}
	}
	if maxSpread > 0 && minSpreadAtMinErr > 0.8*maxSpread {
		t.Errorf("lowest-error workload has spread %v close to max %v; Fig. 3 correlation broken",
			minSpreadAtMinErr, maxSpread)
	}
}

func TestLinearBottleneckThroughput(t *testing.T) {
	// Eq. 7: N / sum(1/R_b).
	if got := LinearBottleneckThroughput([]float64{2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("AT = %v, want 2", got)
	}
	if got := LinearBottleneckThroughput([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("AT = %v, want 1.5", got)
	}
	if got := LinearBottleneckThroughput(nil); got != 0 {
		t.Errorf("AT(nil) = %v", got)
	}
	if got := LinearBottleneckThroughput([]float64{1, 0}); got != 0 {
		t.Errorf("AT with zero rate = %v", got)
	}
}

func TestTypeWIPCDiffNonNegative(t *testing.T) {
	tab := table(t)
	for _, w := range workload.EnumerateWorkloads(len(tab.Suite()), 4) {
		if d := TypeWIPCDiff(tab, w); d < 0 {
			t.Errorf("workload %v: negative WIPC diff %v", w, d)
		}
	}
}

func TestHeterogeneityTableFractions(t *testing.T) {
	tab := table(t)
	ws := workload.EnumerateWorkloads(len(tab.Suite()), 4)[:5]
	var was []*WorkloadAnalysis
	for i, w := range ws {
		a, err := Analyze(tab, w, AnalyzeConfig{FCFS: FCFSConfig{Jobs: 4000, Seed: uint64(i) + 1}})
		if err != nil {
			t.Fatal(err)
		}
		was = append(was, a)
	}
	rows := HeterogeneityTable(tab, was)
	if len(rows) != 4 {
		t.Fatalf("expected 4 heterogeneity classes, got %d", len(rows))
	}
	check := func(name string, get func(HeteroClass) float64) {
		var sum float64
		for _, r := range rows {
			v := get(r)
			if v < -1e-9 || v > 1+1e-9 {
				t.Errorf("%s fraction %v outside [0,1]", name, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 0.02 {
			t.Errorf("%s fractions sum to %v, want ~1", name, sum)
		}
	}
	check("FCFS", func(r HeteroClass) float64 { return r.FCFS })
	check("optimal", func(r HeteroClass) float64 { return r.Optimal })
	check("worst", func(r HeteroClass) float64 { return r.Worst })
}

func TestTheoreticalFCFSHeteroFractions(t *testing.T) {
	// Paper Section V-D: 2%, 33%, 56%, 9% for N=K=4.
	fr := TheoreticalFCFSHeteroFractions(4, 4)
	want := []float64{0.015625, 0.328125, 0.5625, 0.09375}
	var sum float64
	for i := range fr {
		if math.Abs(fr[i]-want[i]) > 1e-9 {
			t.Errorf("class %d: %v, want %v", i+1, fr[i], want[i])
		}
		sum += fr[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestFairnessCounterfactual(t *testing.T) {
	tab := table(t)
	w := w4()
	out, err := FairnessExperiment(tab, w, FCFSConfig{Jobs: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Equalising rates (same instTP) must not hurt the optimal scheduler
	// and must leave the worst scheduler's LP essentially unchanged or
	// better-bounded.
	if out.EqualizedOpt < out.BaselineOpt-1e-9 {
		t.Errorf("equalising reduced optimal TP: %v -> %v", out.BaselineOpt, out.EqualizedOpt)
	}
	if out.HeteroFractionAfter < out.HeteroFractionBefore {
		t.Errorf("hetero fraction should not drop: %v -> %v",
			out.HeteroFractionBefore, out.HeteroFractionAfter)
	}
}

func TestEqualizeValidation(t *testing.T) {
	tab := table(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad fairness")
		}
	}()
	EqualizeHeterogeneousCoschedule(tab, w4(), 2)
}

func TestAnalyzeSuiteSmall(t *testing.T) {
	tab := table(t)
	sa, err := AnalyzeSuite(tab, 4, AnalyzeConfig{UseMarkovFCFS: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sa.Workloads) != workload.Binomial(len(tab.Suite()), 4) {
		t.Fatalf("analysed %d workloads", len(sa.Workloads))
	}
	// Structural sanity: spreads ordered, slope in (0, 1.2], bridge in [0,1.05].
	if sa.AvgTP.AvgBest < 0 || sa.AvgTP.AvgWorst > 0 {
		t.Errorf("AvgTP stats inverted: %+v", sa.AvgTP)
	}
	if sa.Slope <= 0 || sa.Slope > 1.2 {
		t.Errorf("slope %v out of range", sa.Slope)
	}
	if sa.GapBridge < 0 || sa.GapBridge > 1.05 {
		t.Errorf("gap bridge %v out of range", sa.GapBridge)
	}
}
