package eventsim

import (
	"fmt"
	"math"
	"slices"

	"symbiosched/internal/numeric"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/sched"
	"symbiosched/internal/workload"
)

// Server is one machine's share of an event-driven experiment: a job
// queue, the scheduler that picks which jobs occupy the machine's K
// contexts, and the performance table that sets each running job's rate.
// It exposes the stepping primitives — reschedule, time-to-next-completion,
// advance — that event loops compose: the single-server loops in this
// package drive one Server, and internal/farm multiplexes many Servers on
// a shared clock.
//
// The table is the ground truth: jobs always progress at the true
// per-coschedule rates. Decisions may run on less: the scheduler decides
// over whatever rate source it was built with, and SetRates exposes a
// (possibly learned) source to symbiosis-aware dispatchers. SetObserver
// installs the online-learning measurement hook: after every advance the
// observer receives the interval's true coschedule, duration and per-slot
// progress — what hardware counters would report.
//
// The caller owns the clock. The protocol per event is:
//
//  1. Reschedule every server whose job set changed since the last event
//     (arrival or completion at that server).
//  2. dt = min over servers of TimeToNextCompletion(), capped by the next
//     arrival.
//  3. Advance every server by dt; completed jobs are returned.
//
// A Server accumulates its own busy/empty/work integrals so per-server
// utilisation survives multiplexing.
//
// The stepping path is allocation-free at steady state: the canonical
// coschedule, the per-slot rates (resolved once per reschedule through a
// single uint64-keyed table probe), the completion buffer and the
// time-to-next-completion are all held in per-server scratch. Reschedule
// computes the rates and the time to the next completion; Advance folds
// the refresh of that time into its progress loop — dividing the same
// decremented remaining work by the same cached rate, in the same job
// order, that a fresh scan would use, so the cached value is bit-identical
// to recomputation.
type Server struct {
	table    *perfdb.Table
	rates    online.RateSource
	sched    sched.Scheduler
	schedObs sched.Observer // sched, when it observes time; else nil
	obs      online.IntervalObserver

	jobs     []*sched.Job
	running  []int               // indices into jobs, valid after Reschedule
	canon    workload.Coschedule // canonical coschedule scratch of the running jobs
	canonKey uint64              // perfdb.Key(canon)
	runRate  []float64           // true WIPC of jobs[running[i]] in canon
	canonRt  []float64           // true WIPC per canon slot, for the observer
	ttc      float64             // cached time to next completion (+Inf when idle/stale)
	done     []*sched.Job        // completion scratch returned by Advance
	prog     []float64           // scratch per-slot progress for the observer

	// Marginal-InstTP dispatch cache: marg[b] is the decision-rate gain of
	// adding one type-b job next to the running coschedule, valid while
	// (margKey, margEp) still matches (canonKey, rates epoch). margSet
	// distinguishes "never filled" from the idle key 0.
	marg     []float64
	margOK   []bool
	margCand workload.Coschedule
	margKey  uint64
	margEp   uint64
	margSet  bool

	busy, empty, work numeric.KahanSum
	down              numeric.KahanSum // time spent failed (neither busy nor empty)
	failed            bool
	dispatched        int

	// met, when non-nil, receives the stepping instruments (busy/queue
	// integrals, occupancy distribution, marginal-cache hit rates). Nil —
	// the default — keeps the hot path uninstrumented.
	met *ServerMetrics
}

// NewServer returns an empty server over the given table and scheduler.
// The scheduler must not be shared with another server (MAXTP and the
// online estimators carry per-run state).
func NewServer(t *perfdb.Table, s sched.Scheduler) *Server {
	sv := &Server{table: t, rates: t, sched: s, ttc: math.Inf(1)}
	if o, ok := s.(sched.Observer); ok {
		sv.schedObs = o
	}
	return sv
}

// Table returns the server's ground-truth performance table.
func (sv *Server) Table() *perfdb.Table { return sv.table }

// Scheduler returns the server's scheduler.
func (sv *Server) Scheduler() sched.Scheduler { return sv.sched }

// Rates returns the rate source decision-makers outside the server
// (symbiosis-aware dispatchers) should probe: the learned estimator when
// one is installed, the oracle table otherwise.
func (sv *Server) Rates() online.RateSource { return sv.rates }

// SetRates replaces the decision-rate source exposed by Rates. It does
// not change the physics: jobs still progress at the table's true rates.
func (sv *Server) SetRates(rs online.RateSource) { sv.rates = rs }

// SetObserver installs the measurement hook fed by Advance. The observer
// must not retain the progress slice it is handed.
func (sv *Server) SetObserver(o online.IntervalObserver) { sv.obs = o }

// K returns the server's context count.
func (sv *Server) K() int { return sv.table.K() }

// JobsInSystem returns the number of jobs queued or running.
func (sv *Server) JobsInSystem() int { return len(sv.jobs) }

// Dispatched returns how many jobs have been added over the server's
// lifetime.
func (sv *Server) Dispatched() int { return sv.dispatched }

// Running returns the canonical coschedule currently occupying the
// contexts (empty when idle or not yet rescheduled). The slice is
// per-server scratch, valid only until the next Reschedule; the caller
// must not mutate or retain it. Symbiosis-aware dispatchers probe it
// against the table.
func (sv *Server) Running() workload.Coschedule { return sv.canon }

// MarginalInstTP returns the decision-rate gain of routing one job of
// type b here: Rates().InstTP of the running coschedule plus the job,
// minus Rates().InstTP of the running coschedule alone (for an idle
// server, just the job's solo score). It is the score symbiosis-aware
// dispatchers (farm's li and pd families) maximise, computed exactly as
// their old inline probes did — same canonical multisets, same
// subtraction — but cached per (running-coschedule key, rate epoch):
// the gain depends only on those two and b, so between events that touch
// neither, repeated arrivals hit the cache instead of re-probing the
// source. The scratch is per-server and lazily sized to the suite, so
// steady-state probes are allocation-free.
func (sv *Server) MarginalInstTP(b int) float64 {
	ep := sv.rates.Epoch()
	if !sv.margSet || sv.margKey != sv.canonKey || sv.margEp != ep {
		if sv.marg == nil {
			n := len(sv.table.Suite())
			sv.marg = make([]float64, n)
			sv.margOK = make([]bool, n)
		}
		clear(sv.margOK)
		sv.margKey, sv.margEp, sv.margSet = sv.canonKey, ep, true
	}
	if sv.margOK[b] {
		if sv.met != nil {
			sv.met.MargHit.Inc()
		}
		return sv.marg[b]
	}
	if sv.met != nil {
		sv.met.MargMiss.Inc()
	}
	// canon is sorted; inserting b keeps it canonical — the same multiset
	// the dispatchers' old per-arrival NewCoschedule built.
	sv.margCand = append(sv.margCand[:0], sv.canon...)
	sv.margCand = append(sv.margCand, b)
	for i := len(sv.margCand) - 1; i > 0 && sv.margCand[i-1] > b; i-- {
		sv.margCand[i], sv.margCand[i-1] = sv.margCand[i-1], sv.margCand[i]
	}
	gain := sv.rates.InstTP(sv.margCand)
	if len(sv.canon) > 0 {
		gain -= sv.rates.InstTP(sv.canon)
	}
	sv.marg[b], sv.margOK[b] = gain, true
	return gain
}

// Add enqueues a job. The server must be rescheduled before the next
// TimeToNextCompletion/Advance. Jobs must be added in nondecreasing ID
// order — the arrival-order invariant the schedulers rely on.
func (sv *Server) Add(j *sched.Job) {
	sv.jobs = append(sv.jobs, j)
	sv.dispatched++
}

// Reschedule re-runs the scheduler over the current job set, fixing the
// running coschedule, its per-slot rates and the time to the next
// completion until the next event. It is a no-op on an empty server and
// errors when the scheduler selects an invalid set.
func (sv *Server) Reschedule() error {
	if sv.met != nil {
		sv.met.Reschedules.Inc()
	}
	if len(sv.jobs) == 0 {
		sv.running, sv.canon = nil, sv.canon[:0]
		sv.canonKey, sv.ttc = 0, math.Inf(1)
		return nil
	}
	running := sv.sched.Select(sv.jobs, sv.table.K())
	if len(running) == 0 || len(running) > sv.table.K() {
		return fmt.Errorf("eventsim: scheduler %s selected %d jobs (k=%d, system=%d)",
			sv.sched.Name(), len(running), sv.table.K(), len(sv.jobs))
	}
	sv.running = running
	sv.canon = sv.canon[:0]
	for _, ji := range running {
		sv.canon = append(sv.canon, sv.jobs[ji].Type)
	}
	slices.Sort(sv.canon)
	sv.canonKey = perfdb.Key(sv.canon)
	// One keyed probe resolves every rate for the interval.
	e := sv.table.EntryByKey(sv.canonKey)
	sv.runRate = sv.runRate[:0]
	for _, ji := range running {
		sv.runRate = append(sv.runRate, e.TypeWIPC[sv.jobs[ji].Type])
	}
	sv.canonRt = sv.canonRt[:0]
	for _, typ := range sv.canon {
		sv.canonRt = append(sv.canonRt, e.TypeWIPC[typ])
	}
	dt := math.Inf(1)
	for i, ji := range running {
		if d := sv.jobs[ji].Remaining / sv.runRate[i]; d < dt {
			dt = d
		}
	}
	sv.ttc = dt
	return nil
}

// TimeToNextCompletion returns the time until the first running job
// completes at the current (true) rates, or +Inf for an idle server. The
// value is maintained by Reschedule and Advance; reading it is O(1).
func (sv *Server) TimeToNextCompletion() float64 { return sv.ttc }

// Advance progresses the running jobs by dt at their true per-coschedule
// rates, accumulates the busy/empty/work integrals, reports the interval
// to the installed observer and the scheduler, and removes and returns
// the jobs that completed (in queue order). The returned slice is
// per-server scratch, valid until the next Advance. When jobs complete
// the server must be rescheduled before the next event.
func (sv *Server) Advance(dt float64) []*sched.Job {
	if sv.met != nil {
		sv.met.advance(len(sv.jobs), len(sv.running), dt)
	}
	if sv.failed {
		sv.down.Add(dt)
		return nil
	}
	if len(sv.jobs) == 0 {
		sv.empty.Add(dt)
		return nil
	}
	sv.busy.Add(float64(len(sv.running)) * dt)
	next := math.Inf(1)
	for i, ji := range sv.running {
		j := sv.jobs[ji]
		adv := sv.runRate[i] * dt
		j.Remaining -= adv
		sv.work.Add(adv)
		if d := j.Remaining / sv.runRate[i]; d < next {
			next = d
		}
	}
	sv.ttc = next
	if sv.obs != nil && dt > 0 && len(sv.canon) > 0 {
		sv.prog = sv.prog[:0]
		for i := range sv.canon {
			sv.prog = append(sv.prog, sv.canonRt[i]*dt)
		}
		sv.obs.ObserveInterval(sv.canon, dt, sv.prog)
	}
	if sv.schedObs != nil {
		sv.schedObs.Observe(sv.canon, dt)
	}
	sv.done = sv.done[:0]
	kept := 0
	for _, j := range sv.jobs {
		if j.Remaining > eps {
			sv.jobs[kept] = j
			kept++
			continue
		}
		sv.done = append(sv.done, j)
	}
	if len(sv.done) > 0 {
		for i := kept; i < len(sv.jobs); i++ {
			sv.jobs[i] = nil // release completed jobs to the GC
		}
		sv.jobs = sv.jobs[:kept]
		// Stale until the next Reschedule.
		sv.running, sv.canon = nil, sv.canon[:0]
		sv.canonKey, sv.ttc = 0, math.Inf(1)
	}
	return sv.done
}

// Up reports whether the server is in service. A failed server holds no
// jobs, completes nothing, and accumulates down time until Repair.
func (sv *Server) Up() bool { return !sv.failed }

// Fail crashes the server: every queued and running job is evicted and
// returned in queue order for the caller's re-dispatch policy, and the
// server leaves service (Advance accumulates down time, completes
// nothing). The returned slice is the server's completion scratch,
// valid until the next Advance or Fail — callers must consume it
// synchronously. Jobs keep whatever Remaining they had at the crash;
// the caller applies the checkpoint policy.
func (sv *Server) Fail() []*sched.Job {
	sv.failed = true
	sv.done = append(sv.done[:0], sv.jobs...)
	for i := range sv.jobs {
		sv.jobs[i] = nil // release the evicted jobs to the GC
	}
	sv.jobs = sv.jobs[:0]
	sv.running, sv.canon = nil, sv.canon[:0]
	sv.canonKey, sv.ttc = 0, math.Inf(1)
	return sv.done
}

// Repair returns a failed server to service, empty. The caller is
// responsible for bumping the rate source's epoch if its knowledge may
// have gone stale across the outage.
func (sv *Server) Repair() { sv.failed = false }

// DownTime returns the total time the server spent failed.
func (sv *Server) DownTime() float64 { return sv.down.Value() }

// BusyTime returns the integral of the number of busy contexts over time.
func (sv *Server) BusyTime() float64 { return sv.busy.Value() }

// EmptyTime returns the total time the server had zero jobs in system.
func (sv *Server) EmptyTime() float64 { return sv.empty.Value() }

// WorkDone returns the total completed work in WIPC time units.
func (sv *Server) WorkDone() float64 { return sv.work.Value() }
