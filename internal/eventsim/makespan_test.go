package eventsim

import (
	"testing"

	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

func TestMakespanBasicInvariants(t *testing.T) {
	tb := table(t)
	res, err := Makespan(tb, w4(), &sched.FCFS{}, MakespanConfig{Batch: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("non-positive makespan %v", res.Makespan)
	}
	if res.MeanTurnaround > res.Makespan {
		t.Errorf("mean turnaround %v exceeds makespan %v", res.MeanTurnaround, res.Makespan)
	}
	if res.TailIdleFraction < 0 || res.TailIdleFraction >= 1 {
		t.Errorf("tail idle fraction %v outside [0,1)", res.TailIdleFraction)
	}
	// Small batches must show a non-trivial idle tail (the paper's point
	// about 8-16 job evaluations).
	if res.TailIdleFraction == 0 {
		t.Error("an 8-job batch should idle some context-cycles in the tail")
	}
}

func TestMakespanLowerBoundedByWork(t *testing.T) {
	tb := table(t)
	// With K contexts and max instantaneous throughput bounded by the best
	// coschedule, makespan >= totalWork / maxInstTP.
	res, err := Makespan(tb, w4(), &sched.MAXIT{Rates: tb}, MakespanConfig{Batch: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var maxTP float64
	for _, c := range workload.LocalCoschedules(w4(), tb.K()) {
		if tp := tb.InstTP(c); tp > maxTP {
			maxTP = tp
		}
	}
	if res.Makespan < 12.0/maxTP-1e-9 {
		t.Errorf("makespan %v below the work/maxTP bound %v", res.Makespan, 12.0/maxTP)
	}
}

func TestLJFBeatsSRPTOnMakespan(t *testing.T) {
	// The related-work observation (Xu et al.): for small batches run to
	// completion, long-job-first avoids the serial tail and tends to beat
	// shortest-remaining-first on makespan. With heterogeneous sizes this
	// should hold on average across seeds.
	tb := table(t)
	var ljfWins int
	const trials = 20
	for seed := uint64(1); seed <= trials; seed++ {
		cfg := MakespanConfig{Batch: 10, SizeShape: 1, Seed: seed}
		lj, err := Makespan(tb, w4(), sched.LJF{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Makespan(tb, w4(), &sched.SRPT{Rates: tb}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if lj.Makespan <= sr.Makespan {
			ljfWins++
		}
	}
	if ljfWins < trials/2 {
		t.Errorf("LJF won makespan only %d/%d trials against SRPT", ljfWins, trials)
	}
}

func TestSRPTBeatsLJFOnTurnaround(t *testing.T) {
	// The converse classic: SRPT minimises mean completion time.
	tb := table(t)
	var srptWins int
	const trials = 20
	for seed := uint64(1); seed <= trials; seed++ {
		cfg := MakespanConfig{Batch: 10, SizeShape: 1, Seed: seed}
		lj, err := Makespan(tb, w4(), sched.LJF{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Makespan(tb, w4(), &sched.SRPT{Rates: tb}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sr.MeanTurnaround <= lj.MeanTurnaround {
			srptWins++
		}
	}
	if srptWins < trials*3/4 {
		t.Errorf("SRPT won mean turnaround only %d/%d trials against LJF", srptWins, trials)
	}
}

func TestRandomSchedulerValid(t *testing.T) {
	tb := table(t)
	s := &sched.Random{RNG: stats.NewRNG(7)}
	res, err := Makespan(tb, w4(), s, MakespanConfig{Batch: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Errorf("random scheduler produced makespan %v", res.Makespan)
	}
}

func TestMakespanSchedulerComparison(t *testing.T) {
	// Sanity: MAXIT (symbiosis-aware) should not lose badly to Random on
	// the same batch.
	tb := table(t)
	cfg := MakespanConfig{Batch: 16, Seed: 11}
	maxit, err := Makespan(tb, w4(), &sched.MAXIT{Rates: tb}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Makespan(tb, w4(), &sched.Random{RNG: stats.NewRNG(1)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if maxit.Makespan > random.Makespan*1.1 {
		t.Errorf("MAXIT makespan %v far worse than random %v", maxit.Makespan, random.Makespan)
	}
}
