package eventsim

import "math"

// TimeHeap is an indexed binary min-heap over per-server event times. The
// serial farm event loop keys it by cached time-to-next-completion deltas;
// the sharded Group keys it by absolute next-completion times. It holds
// only busy servers (finite keys), Update is an O(1) no-op for servers
// whose key did not move (idle ones between events), and sifts are
// near-O(1) in the common case where every busy key shrinks by the same
// dt, preserving relative order. Ties order by server index, keeping the
// heap's internal layout — and therefore every event loop built on it —
// deterministic.
//
// Min returns exactly the minimum of the stored float64 keys, so replacing
// a scan over every server's next-completion time with a heap peek leaves
// every simulated event time bit-identical.
type TimeHeap struct {
	keys []float64 // key per server index (+Inf when absent)
	pos  []int     // heap position per server index, -1 when absent
	heap []int     // server indices, heap-ordered by (key, index)
}

// NewTimeHeap returns an empty heap over n server indices.
func NewTimeHeap(n int) *TimeHeap {
	h := &TimeHeap{
		keys: make([]float64, n),
		pos:  make([]int, n),
		heap: make([]int, 0, n),
	}
	for i := range h.pos {
		h.keys[i] = math.Inf(1)
		h.pos[i] = -1
	}
	return h
}

// Reset empties the heap and re-sizes it over n server indices, reusing
// the backing arrays — the scratch-reuse hook for callers that rebuild a
// heap per run (the sharded farm's per-shard event dirty-set).
func (h *TimeHeap) Reset(n int) {
	if cap(h.keys) < n {
		h.keys = make([]float64, n)
		h.pos = make([]int, n)
	}
	h.keys = h.keys[:n]
	h.pos = h.pos[:n]
	h.heap = h.heap[:0]
	for i := 0; i < n; i++ {
		h.keys[i] = math.Inf(1)
		h.pos[i] = -1
	}
}

// Len returns the number of servers currently in the heap (finite keys).
func (h *TimeHeap) Len() int { return len(h.heap) }

// Min returns the smallest stored key, or +Inf when no server is busy.
func (h *TimeHeap) Min() float64 {
	if len(h.heap) == 0 {
		return math.Inf(1)
	}
	return h.keys[h.heap[0]]
}

// MinIndex returns the server index holding the smallest key (lowest
// index on ties), or -1 when the heap is empty.
func (h *TimeHeap) MinIndex() int {
	if len(h.heap) == 0 {
		return -1
	}
	return h.heap[0]
}

// Key returns server i's stored key (+Inf when absent).
func (h *TimeHeap) Key(i int) float64 { return h.keys[i] }

// Update sets server i's key, inserting, removing (key +Inf) or
// repositioning it as needed. It is a cheap no-op when the key is
// unchanged (idle servers between events).
func (h *TimeHeap) Update(i int, key float64) {
	if key == h.keys[i] {
		return
	}
	inf := math.IsInf(key, 1)
	switch {
	case h.pos[i] == -1 && inf:
		return // stays absent
	case h.pos[i] == -1:
		h.keys[i] = key
		h.pos[i] = len(h.heap)
		h.heap = append(h.heap, i)
		h.up(h.pos[i])
	case inf:
		h.remove(i)
	default:
		up := key < h.keys[i]
		h.keys[i] = key
		if up {
			h.up(h.pos[i])
		} else {
			h.down(h.pos[i])
		}
	}
}

func (h *TimeHeap) remove(i int) {
	p, last := h.pos[i], len(h.heap)-1
	h.keys[i] = math.Inf(1)
	h.pos[i] = -1
	if p != last {
		moved := h.heap[last]
		h.heap[p] = moved
		h.pos[moved] = p
	}
	h.heap = h.heap[:last]
	if p != last {
		if !h.up(p) {
			h.down(p)
		}
	}
}

// less orders heap slots by (key, server index).
func (h *TimeHeap) less(a, b int) bool {
	ia, ib := h.heap[a], h.heap[b]
	if h.keys[ia] != h.keys[ib] {
		return h.keys[ia] < h.keys[ib]
	}
	return ia < ib
}

func (h *TimeHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

// up sifts slot p toward the root, reporting whether it moved.
func (h *TimeHeap) up(p int) bool {
	moved := false
	for p > 0 {
		parent := (p - 1) / 2
		if !h.less(p, parent) {
			break
		}
		h.swap(p, parent)
		p = parent
		moved = true
	}
	return moved
}

// down sifts slot p toward the leaves.
func (h *TimeHeap) down(p int) {
	for {
		l, r := 2*p+1, 2*p+2
		smallest := p
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == p {
			return
		}
		h.swap(p, smallest)
		p = smallest
	}
}
