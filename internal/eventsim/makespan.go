package eventsim

import (
	"fmt"
	"math"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// MakespanConfig parameterises a small-set makespan experiment: a fixed
// batch of jobs, all present at t = 0, run to completion — the evaluation
// style of Settle et al. and Xu et al. that the paper's related-work
// section discusses ("with such small workloads, the effect of idling
// cores cannot be neglected").
type MakespanConfig struct {
	// Batch is the number of jobs (default 2 * K, e.g. the paper cites
	// sets of 8-16 jobs).
	Batch int
	// JobSize is the mean work per job (default 1) and SizeShape its
	// distribution as in LatencyConfig.
	JobSize   float64
	SizeShape int
	// Seed drives job types and sizes (default 1).
	Seed uint64
}

// MakespanResult reports a batch run.
type MakespanResult struct {
	// Makespan is the completion time of the last job.
	Makespan float64
	// MeanTurnaround is the mean completion time (all arrivals at 0).
	MeanTurnaround float64
	// TailIdleFraction is the fraction of context-cycles idled after the
	// system drops below K jobs — the small-set effect the paper points
	// at.
	TailIdleFraction float64
}

// Makespan runs a batch of cfg.Batch jobs of uniformly random types from w
// under scheduler s, to completion, and reports the makespan.
func Makespan(t *perfdb.Table, w workload.Workload, s sched.Scheduler, cfg MakespanConfig) (*MakespanResult, error) {
	k := t.K()
	if cfg.Batch <= 0 {
		cfg.Batch = 2 * k
	}
	if cfg.JobSize <= 0 {
		cfg.JobSize = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rng := stats.NewRNG(cfg.Seed)
	observer, _ := s.(sched.Observer)
	system := make([]*sched.Job, cfg.Batch)
	for i := range system {
		size := cfg.JobSize
		if cfg.SizeShape >= 1 {
			size = 0
			for j := 0; j < cfg.SizeShape; j++ {
				size += rng.Exp(float64(cfg.SizeShape) / cfg.JobSize)
			}
		}
		system[i] = &sched.Job{ID: i, Type: w[rng.Intn(len(w))], Size: size, Remaining: size}
	}

	var now, turnaround, idleTail float64
	for len(system) > 0 {
		running := s.Select(system, k)
		if len(running) == 0 || len(running) > k {
			return nil, fmt.Errorf("eventsim: scheduler %s selected %d jobs", s.Name(), len(running))
		}
		cos := make(workload.Coschedule, len(running))
		for i, ji := range running {
			cos[i] = system[ji].Type
		}
		canon := workload.NewCoschedule(cos...)
		dt := math.Inf(1)
		for _, ji := range running {
			j := system[ji]
			if d := j.Remaining / t.JobWIPC(canon, j.Type); d < dt {
				dt = d
			}
		}
		now += dt
		idleTail += float64(k-len(running)) * dt
		for _, ji := range running {
			j := system[ji]
			j.Remaining -= t.JobWIPC(canon, j.Type) * dt
		}
		if observer != nil {
			observer.Observe(canon, dt)
		}
		var kept []*sched.Job
		for _, j := range system {
			if j.Remaining > eps {
				kept = append(kept, j)
				continue
			}
			turnaround += now
		}
		system = kept
	}
	return &MakespanResult{
		Makespan:         now,
		MeanTurnaround:   turnaround / float64(cfg.Batch),
		TailIdleFraction: idleTail / (now * float64(k)),
	}, nil
}
