package eventsim

import (
	"fmt"
	"math"

	"symbiosched/internal/sched"
)

// Completion is one finished job with its absolute completion time and
// the index (within the group) of the server that ran it.
type Completion struct {
	T      float64
	Server int
	Job    *sched.Job
}

// Group is a shard-steppable set of servers: each server keeps its own
// local clock and is advanced lazily, only at its own events — a
// completion, a delivered arrival, or a final settle. Server state is
// piecewise-constant between its own events, so skipping the intermediate
// global events changes nothing observable at this server; only the
// order in which the busy/empty/work Kahan integrals accumulate their
// (identical) interval terms differs from a lockstep loop, an
// ulp-magnitude effect.
//
// A TimeHeap keyed by absolute next-completion times orders the group's
// events; processing pops in (time, server index) order makes a group's
// event sequence a deterministic function of its inputs, independent of
// how the caller slices time into advance horizons. The sharded farm
// coordinator (internal/farm.SimulateSharded) builds one Group per shard
// and synchronises them on slab boundaries.
type Group struct {
	servers []*Server
	clock   []float64 // per-server local clock (absolute simulated time)
	h       *TimeHeap // absolute next-completion time per server
	buf     []Completion
}

// NewGroup returns a group over the given (freshly built, empty) servers.
// The group owns their stepping; the caller must not Advance them
// directly.
func NewGroup(servers []*Server) *Group {
	return &Group{
		servers: servers,
		clock:   make([]float64, len(servers)),
		h:       NewTimeHeap(len(servers)),
	}
}

// Len returns the number of servers in the group.
func (g *Group) Len() int { return len(g.servers) }

// Server returns the i-th server (for dispatch probes and final stats).
func (g *Group) Server(i int) *Server { return g.servers[i] }

// Clock returns server i's local clock.
func (g *Group) Clock(i int) float64 { return g.clock[i] }

// NextEvent returns the absolute time of the group's earliest pending
// completion, or +Inf when no server is busy.
func (g *Group) NextEvent() float64 { return g.h.Min() }

// refresh re-keys server i's heap entry from its cached time-to-next-
// completion at local time t. The one-ulp bump guards against float
// stagnation: at large t a positive ttc below one ulp would otherwise
// re-pop the same server forever with dt = 0.
func (g *Group) refresh(i int, t float64) {
	ttc := g.servers[i].TimeToNextCompletion()
	if math.IsInf(ttc, 1) {
		g.h.Update(i, math.Inf(1))
		return
	}
	key := t + ttc
	if key <= t {
		key = math.Nextafter(t, math.Inf(1))
	}
	g.h.Update(i, key)
}

// AdvanceTo processes every completion in the group with event time at
// most horizon, in (time, server index) order, advancing only the
// servers involved. It returns the completions in that order; the slice
// is group-owned scratch, valid until the next AdvanceTo/Deliver call.
func (g *Group) AdvanceTo(horizon float64) ([]Completion, error) {
	g.buf = g.buf[:0]
	for {
		t := g.h.Min()
		// An idle group (t = +Inf) terminates even against an infinite
		// drain horizon; a completion exactly at a finite horizon is
		// processed (inclusive bound — the serial tie rule).
		if math.IsInf(t, 1) || t > horizon {
			return g.buf, nil
		}
		i := g.h.MinIndex()
		sv := g.servers[i]
		dt := t - g.clock[i]
		if dt < 0 {
			dt = 0
		}
		done := sv.Advance(dt)
		g.clock[i] = t
		for _, j := range done {
			g.buf = append(g.buf, Completion{T: t, Server: i, Job: j})
		}
		if len(done) > 0 {
			if err := sv.Reschedule(); err != nil {
				return nil, err
			}
		}
		g.refresh(i, t)
	}
}

// advanceAt is the shared prologue of the group's point events
// (Deliver/Fail/Repair/SettleTo): bring server i's local clock to
// absolute time t and return the jobs that finished on the way — all at
// t itself, within the completion epsilon, exactly as a lockstep advance
// would complete them. The caller applies its event and refreshes the
// heap afterwards.
func (g *Group) advanceAt(i int, t float64) []*sched.Job {
	sv := g.servers[i]
	dt := t - g.clock[i]
	if dt < 0 {
		dt = 0
	}
	done := sv.Advance(dt)
	g.clock[i] = t
	return done
}

// Deliver routes job j to server i at absolute time t: the server is
// advanced to t (any job finishing within the completion epsilon at t is
// returned, exactly as a lockstep advance would complete it), the job is
// added and the server rescheduled. The caller must have processed all
// group events up to t first (AdvanceTo(t)). The returned slice shares
// the group's scratch buffer.
func (g *Group) Deliver(t float64, i int, j *sched.Job) ([]Completion, error) {
	if i < 0 || i >= len(g.servers) {
		return nil, fmt.Errorf("eventsim: deliver to server %d of %d", i, len(g.servers))
	}
	sv := g.servers[i]
	g.buf = g.buf[:0]
	for _, dj := range g.advanceAt(i, t) {
		g.buf = append(g.buf, Completion{T: t, Server: i, Job: dj})
	}
	sv.Add(j)
	if err := sv.Reschedule(); err != nil {
		return nil, err
	}
	g.refresh(i, t)
	return g.buf, nil
}

// Fail crashes server i at absolute time t: the server is first
// advanced to t (a job finishing within the completion epsilon at the
// crash instant completes normally, exactly as Deliver would complete
// it), then evicted and taken out of service. The completions and the
// evicted victims are returned; both share scratch buffers (the
// group's and the server's) and must be consumed before the next call
// into this group. The caller must have processed all group events up
// to t first (AdvanceTo(t)).
func (g *Group) Fail(t float64, i int) ([]Completion, []*sched.Job, error) {
	if i < 0 || i >= len(g.servers) {
		return nil, nil, fmt.Errorf("eventsim: fail server %d of %d", i, len(g.servers))
	}
	g.buf = g.buf[:0]
	for _, dj := range g.advanceAt(i, t) {
		g.buf = append(g.buf, Completion{T: t, Server: i, Job: dj})
	}
	victims := g.servers[i].Fail()
	g.refresh(i, t) // time-to-completion is now +Inf: leaves the heap
	return g.buf, victims, nil
}

// Repair returns server i to service at absolute time t, closing its
// down-time integral up to t. A failed server completes nothing, so
// crossing a completion here is a protocol violation.
func (g *Group) Repair(t float64, i int) error {
	if i < 0 || i >= len(g.servers) {
		return fmt.Errorf("eventsim: repair server %d of %d", i, len(g.servers))
	}
	if done := g.advanceAt(i, t); len(done) > 0 {
		return fmt.Errorf("eventsim: repair crossed %d completions at server %d", len(done), i)
	}
	g.servers[i].Repair()
	g.refresh(i, t)
	return nil
}

// SettleTo advances every server's local clock to t, closing the
// busy/empty integrals at a common end time. It is the end-of-run
// counterpart of AdvanceTo and must not cross any pending completion.
func (g *Group) SettleTo(t float64) error {
	for i := range g.servers {
		if t-g.clock[i] <= 0 {
			continue
		}
		if done := g.advanceAt(i, t); len(done) > 0 {
			return fmt.Errorf("eventsim: group settle crossed %d completions at server %d", len(done), i)
		}
		g.refresh(i, t)
	}
	return nil
}
