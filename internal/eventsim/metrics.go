package eventsim

import "symbiosched/internal/metrics"

// ServerMetrics is the server-layer instrument set. A nil *ServerMetrics
// (the default) is the disabled state: Advance, Reschedule and
// MarginalInstTP guard their single hook behind one nil check, keeping
// their 0 allocs/op pins and benchmark profile intact.
//
// Instruments are owned by one server's event loop and are not
// synchronised; engines that run servers concurrently give each server
// its own collector and merge the snapshots in server index order. All
// observations happen at the server's own events with the server's own
// dt, so the accumulated values are invariant to how the engine slices
// time across shards or workers (see the farm metrics determinism test).
type ServerMetrics struct {
	// Busy integrates the number of occupied contexts over time; Queue
	// integrates jobs in system (running + waiting) over time.
	Busy, Queue *metrics.Gauge
	// Occupancy is the time-weighted distribution of co-schedule sizes
	// (how much wall time the server spent running 0, 1, 2, ... jobs).
	Occupancy *metrics.Histogram
	// MargHit / MargMiss count MarginalInstTP probes served from the
	// per-(coschedule, epoch) cache vs recomputed against the source.
	MargHit, MargMiss *metrics.Counter
	// Reschedules and Advances count the stepping primitives.
	Reschedules, Advances *metrics.Counter
}

// NewServerMetrics registers the server instruments on c (nil c → nil
// ServerMetrics, the disabled state).
func NewServerMetrics(c *metrics.Collector) *ServerMetrics {
	if c == nil {
		return nil
	}
	return &ServerMetrics{
		Busy:        c.Gauge("server_busy"),
		Queue:       c.Gauge("server_queue"),
		Occupancy:   c.Histogram("server_occupancy", 0, 6),
		MargHit:     c.Counter("server_marg_hit"),
		MargMiss:    c.Counter("server_marg_miss"),
		Reschedules: c.Counter("server_reschedules"),
		Advances:    c.Counter("server_advances"),
	}
}

// advance records one Advance(dt) interval: jobs in system and contexts
// occupied, both weighted by the interval length.
func (sm *ServerMetrics) advance(jobs, running int, dt float64) {
	sm.Advances.Inc()
	sm.Queue.Observe(float64(jobs), dt)
	sm.Busy.Observe(float64(running), dt)
	sm.Occupancy.Observe(float64(running), dt)
}

// SetMetrics installs (or, with nil, removes) the server's instrument
// set. Call it before the run starts; the instruments only observe and
// never feed back into decisions.
func (sv *Server) SetMetrics(m *ServerMetrics) { sv.met = m }
