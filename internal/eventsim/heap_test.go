package eventsim

import (
	"math"
	"testing"

	"symbiosched/internal/stats"
)

// TestTimeHeapMatchesScan fuzzes the indexed heap against the reference
// min-scan it replaced: after every update — inserts, moves up and down,
// removals to +Inf, repeated no-ops — the heap's minimum must equal the
// scan's minimum over the same keys, bit for bit, and the index/position
// bookkeeping must stay consistent.
func TestTimeHeapMatchesScan(t *testing.T) {
	const n = 37
	rng := stats.NewRNG(5)
	h := NewTimeHeap(n)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = math.Inf(1)
	}
	scanMin := func() (float64, int) {
		m, mi := math.Inf(1), -1
		for i, k := range keys {
			if k < m {
				m, mi = k, i
			}
		}
		return m, mi
	}
	for step := 0; step < 20_000; step++ {
		i := rng.Intn(n)
		var k float64
		switch rng.Intn(5) {
		case 0:
			k = math.Inf(1) // remove (or keep absent)
		case 1:
			k = keys[i] // no-op
		case 2:
			k = keys[i] - rng.Float64() // shrink, the per-event common case
			if math.IsInf(k, 1) {
				k = 10 * rng.Float64()
			}
		default:
			k = 20 * rng.Float64()
		}
		keys[i] = k
		h.Update(i, k)
		if got, want := h.Min(), func() float64 { m, _ := scanMin(); return m }(); got != want {
			t.Fatalf("step %d: heap min %v, scan min %v", step, got, want)
		}
		if _, wi := scanMin(); wi >= 0 && h.MinIndex() != wi && h.Key(h.MinIndex()) != keys[wi] {
			t.Fatalf("step %d: heap min index %d (key %v), scan min index %d (key %v)",
				step, h.MinIndex(), h.Key(h.MinIndex()), wi, keys[wi])
		}
	}
	// Structural invariants at the end of the walk.
	for p := range h.heap {
		if h.pos[h.heap[p]] != p {
			t.Fatalf("pos/heap mismatch at slot %d", p)
		}
		if l := 2*p + 1; l < len(h.heap) && h.less(l, p) {
			t.Fatalf("heap order violated at slot %d (left child)", p)
		}
		if r := 2*p + 2; r < len(h.heap) && h.less(r, p) {
			t.Fatalf("heap order violated at slot %d (right child)", p)
		}
	}
	for i, k := range keys {
		if math.IsInf(k, 1) != (h.pos[i] == -1) {
			t.Fatalf("server %d: key %v but pos %d", i, k, h.pos[i])
		}
	}
}
