package eventsim

import (
	"math"
	"sync"
	"testing"

	"symbiosched/internal/core"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/queueing"
	"symbiosched/internal/sched"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

var (
	once sync.Once
	tab  *perfdb.Table
)

func table(t *testing.T) *perfdb.Table {
	t.Helper()
	once.Do(func() {
		suite := program.Suite()
		mini := []program.Profile{suite[1], suite[5], suite[6], suite[7]}
		tab = perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, mini)
	})
	return tab
}

func w4() workload.Workload { return workload.Workload{0, 1, 2, 3} }

func TestLatencyLowLoadTurnaroundNearServiceTime(t *testing.T) {
	tb := table(t)
	res, err := Latency(tb, w4(), &sched.FCFS{}, LatencyConfig{
		Lambda: 0.01, Jobs: 3000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At near-zero load every job runs alone: turnaround ~ 1/WIPC(solo) = 1.
	if res.MeanTurnaround < 0.95 || res.MeanTurnaround > 1.3 {
		t.Errorf("low-load turnaround %v, want ~1 (solo service time)", res.MeanTurnaround)
	}
	if res.EmptyFraction < 0.9 {
		t.Errorf("low-load empty fraction %v, want ~1", res.EmptyFraction)
	}
}

func TestLatencyThroughputEqualsArrivalRate(t *testing.T) {
	// Below saturation, long-run throughput equals the offered load
	// (Section III-A: "The average throughput equals the arrival rate").
	tb := table(t)
	fcfsMax := core.FCFS(tb, w4(), core.FCFSConfig{Jobs: 20_000, Seed: 3}).Throughput
	lambda := 0.7 * fcfsMax
	res, err := Latency(tb, w4(), &sched.FCFS{}, LatencyConfig{
		Lambda: lambda, Jobs: 20_000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Throughput-lambda) / lambda; rel > 0.05 {
		t.Errorf("throughput %v differs from arrival rate %v by %.1f%%", res.Throughput, lambda, 100*rel)
	}
}

func TestTurnaroundGrowsWithLoad(t *testing.T) {
	tb := table(t)
	fcfsMax := core.FCFS(tb, w4(), core.FCFSConfig{Jobs: 20_000, Seed: 3}).Throughput
	var prev float64
	for i, load := range []float64{0.5, 0.8, 0.95} {
		res, err := Latency(tb, w4(), &sched.FCFS{}, LatencyConfig{
			Lambda: load * fcfsMax, Jobs: 15_000, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.MeanTurnaround <= prev {
			t.Errorf("turnaround did not grow with load: %v at load %v", res.MeanTurnaround, load)
		}
		prev = res.MeanTurnaround
	}
}

func TestUtilisationBounded(t *testing.T) {
	tb := table(t)
	res, err := Latency(tb, w4(), &sched.FCFS{}, LatencyConfig{Lambda: 1, Jobs: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilisation < 0 || res.Utilisation > float64(tb.K()) {
		t.Errorf("utilisation %v outside [0, K]", res.Utilisation)
	}
	if res.EmptyFraction < 0 || res.EmptyFraction > 1 {
		t.Errorf("empty fraction %v outside [0,1]", res.EmptyFraction)
	}
}

func TestMaxThroughputMatchesFCFSReference(t *testing.T) {
	// The pooled max-throughput experiment under FCFS must agree with the
	// core.FCFS fully-loaded simulation (same process, different code path).
	tb := table(t)
	ref := core.FCFS(tb, w4(), core.FCFSConfig{Jobs: 30_000, Seed: 6}).Throughput
	res, err := MaxThroughput(tb, w4(), &sched.FCFS{}, MaxThroughputConfig{Jobs: 30_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Throughput-ref) / ref; rel > 0.02 {
		t.Errorf("pooled FCFS TP %v vs reference %v (%.1f%%)", res.Throughput, ref, 100*rel)
	}
}

func TestMAXTPApproachesOptimal(t *testing.T) {
	// Figure 6's headline: MAXTP's achieved throughput almost exactly
	// matches the LP maximum.
	tb := table(t)
	w := w4()
	opt, err := core.Optimal(tb, w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewMAXTP(tb, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxThroughput(tb, w, s, MaxThroughputConfig{Jobs: 30_000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > opt.Throughput*1.01 {
		t.Errorf("MAXTP %v exceeds LP optimum %v", res.Throughput, opt.Throughput)
	}
	if res.Throughput < opt.Throughput*0.98 {
		t.Errorf("MAXTP %v more than 2%% below LP optimum %v", res.Throughput, opt.Throughput)
	}
}

func TestSRPTMatchesFCFSMaxThroughput(t *testing.T) {
	// Paper, Figure 6: "The SRPT scheduler has the same maximum throughput
	// as the FCFS scheduler" (within noise).
	tb := table(t)
	fcfs, err := MaxThroughput(tb, w4(), &sched.FCFS{}, MaxThroughputConfig{Jobs: 25_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srpt, err := MaxThroughput(tb, w4(), &sched.SRPT{Rates: tab}, MaxThroughputConfig{Jobs: 25_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(srpt.Throughput-fcfs.Throughput) / fcfs.Throughput; rel > 0.03 {
		t.Errorf("SRPT TP %v vs FCFS %v differ by %.1f%%", srpt.Throughput, fcfs.Throughput, 100*rel)
	}
}

func TestErlangSizesMeanPreserved(t *testing.T) {
	tb := table(t)
	for _, shape := range []int{1, 4} {
		res, err := Latency(tb, w4(), &sched.FCFS{}, LatencyConfig{
			Lambda: 0.2, Jobs: 20_000, SizeShape: shape, Seed: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Work completed per job ~ mean size 1 regardless of shape.
		perJob := res.Throughput * res.Elapsed / float64(res.Completed)
		if math.Abs(perJob-1) > 0.05 {
			t.Errorf("shape %d: mean job size %v, want ~1", shape, perJob)
		}
	}
}

func TestLatencyAgainstMMCIntuition(t *testing.T) {
	// With exponential sizes the system resembles an M/M/K queue whose
	// service rate comes from the coschedule rates; the simulated
	// turnaround should be of the same order as the analytic prediction.
	tb := table(t)
	fcfsMax := core.FCFS(tb, w4(), core.FCFSConfig{Jobs: 20_000, Seed: 3}).Throughput
	load := 0.85
	res, err := Latency(tb, w4(), &sched.FCFS{}, LatencyConfig{
		Lambda: load * fcfsMax, Jobs: 25_000, SizeShape: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := queueing.MMC{Lambda: load * fcfsMax, Mu: fcfsMax / 4, C: 4}
	w, err := q.MeanTurnaround()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanTurnaround < w/3 || res.MeanTurnaround > w*3 {
		t.Errorf("simulated turnaround %v far from M/M/4 estimate %v", res.MeanTurnaround, w)
	}
}

func TestInvalidConfig(t *testing.T) {
	tb := table(t)
	if _, err := Latency(tb, w4(), &sched.FCFS{}, LatencyConfig{Lambda: 0}); err == nil {
		t.Error("expected error for zero arrival rate")
	}
}

func TestDeterminism(t *testing.T) {
	tb := table(t)
	cfg := LatencyConfig{Lambda: 0.8, Jobs: 3000, Seed: 12}
	a, err := Latency(tb, w4(), &sched.FCFS{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Latency(tb, w4(), &sched.FCFS{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanTurnaround != b.MeanTurnaround || a.Throughput != b.Throughput {
		t.Error("simulation is not deterministic for a fixed seed")
	}
}
