package eventsim

import (
	"math"
	"testing"

	"symbiosched/internal/sched"
	"symbiosched/internal/workload"
)

// badScheduler selects nothing, violating the work-conserving contract.
type badScheduler struct{}

func (badScheduler) Name() string                         { return "bad" }
func (badScheduler) Select([]*sched.Job, int) []int       { return nil }
func (badScheduler) Observe(workload.Coschedule, float64) {}

func TestServerStepping(t *testing.T) {
	tb := table(t)
	sv := NewServer(tb, sched.FCFS{})
	if sv.K() != tb.K() || sv.Table() != tb {
		t.Fatal("accessors broken")
	}
	// Idle: infinite horizon, advancing accumulates empty time only.
	if dt := sv.TimeToNextCompletion(); !math.IsInf(dt, 1) {
		t.Errorf("idle TimeToNextCompletion = %v, want +Inf", dt)
	}
	sv.Advance(2.5)
	if sv.EmptyTime() != 2.5 || sv.BusyTime() != 0 {
		t.Errorf("idle advance: empty %v busy %v", sv.EmptyTime(), sv.BusyTime())
	}
	// One job: runs solo at WIPC 1, so it completes in exactly Size.
	sv.Add(&sched.Job{ID: 0, Type: 0, Size: 2, Remaining: 2})
	if err := sv.Reschedule(); err != nil {
		t.Fatal(err)
	}
	if got := sv.Running(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Running = %v, want [0]", got)
	}
	dt := sv.TimeToNextCompletion()
	if math.Abs(dt-2) > 1e-9 {
		t.Errorf("solo TimeToNextCompletion = %v, want 2 (WIPC 1)", dt)
	}
	done := sv.Advance(dt)
	if len(done) != 1 || done[0].ID != 0 {
		t.Fatalf("Advance completed %v, want job 0", done)
	}
	if sv.JobsInSystem() != 0 || sv.Dispatched() != 1 {
		t.Errorf("after completion: jobs %d dispatched %d", sv.JobsInSystem(), sv.Dispatched())
	}
	if math.Abs(sv.WorkDone()-2) > 1e-9 || math.Abs(sv.BusyTime()-2) > 1e-9 {
		t.Errorf("integrals: work %v busy %v, want 2, 2", sv.WorkDone(), sv.BusyTime())
	}
}

func TestServerRescheduleRejectsBadScheduler(t *testing.T) {
	sv := NewServer(table(t), badScheduler{})
	sv.Add(&sched.Job{ID: 0, Type: 0, Size: 1, Remaining: 1})
	if err := sv.Reschedule(); err == nil {
		t.Error("empty selection accepted")
	}
}
