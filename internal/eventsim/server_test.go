package eventsim

import (
	"math"
	"testing"

	"symbiosched/internal/online"
	"symbiosched/internal/sched"
	"symbiosched/internal/workload"
)

// badScheduler selects nothing, violating the work-conserving contract.
type badScheduler struct{}

func (badScheduler) Name() string                   { return "bad" }
func (badScheduler) Select([]*sched.Job, int) []int { return nil }

// recordingObserver captures the measurement hook's reports.
type recordingObserver struct {
	cos      []workload.Coschedule
	dt       []float64
	progress [][]float64
}

func (r *recordingObserver) ObserveInterval(cos workload.Coschedule, dt float64, progress []float64) {
	r.cos = append(r.cos, append(workload.Coschedule(nil), cos...))
	r.dt = append(r.dt, dt)
	r.progress = append(r.progress, append([]float64(nil), progress...))
}

// TestServerObservationHook pins the online-learning feed: after every
// non-idle Advance the observer receives the canonical coschedule, the
// interval length and the true per-slot progress (WIPC * dt).
func TestServerObservationHook(t *testing.T) {
	tb := table(t)
	rec := &recordingObserver{}
	sv := NewServer(tb, &sched.FCFS{})
	sv.SetObserver(rec)
	sv.Advance(1) // idle: no observation
	sv.Add(&sched.Job{ID: 0, Type: 0, Size: 2, Remaining: 2})
	sv.Add(&sched.Job{ID: 1, Type: 1, Size: 2, Remaining: 2})
	if err := sv.Reschedule(); err != nil {
		t.Fatal(err)
	}
	sv.Advance(0.5)
	if len(rec.cos) != 1 {
		t.Fatalf("observer got %d intervals, want 1 (idle advance must not report)", len(rec.cos))
	}
	want := workload.NewCoschedule(0, 1)
	if rec.cos[0].Key() != want.Key() || rec.dt[0] != 0.5 {
		t.Errorf("observed (%v, %v), want (%v, 0.5)", rec.cos[0], rec.dt[0], want)
	}
	for i, typ := range want {
		exp := tb.JobWIPC(want, typ) * 0.5
		if got := rec.progress[0][i]; got != exp {
			t.Errorf("slot %d progress %v, want true WIPC*dt %v", i, got, exp)
		}
	}
}

// TestServerRatesDefaultToTable pins the decision-source plumbing.
func TestServerRatesDefaultToTable(t *testing.T) {
	tb := table(t)
	sv := NewServer(tb, &sched.FCFS{})
	if sv.Rates() != online.RateSource(tb) {
		t.Error("Rates() != table before SetRates")
	}
	est := online.Oracle{Table: tb}
	sv.SetRates(est)
	if sv.Rates() != online.RateSource(est) {
		t.Error("SetRates not exposed via Rates()")
	}
}

func TestServerStepping(t *testing.T) {
	tb := table(t)
	sv := NewServer(tb, &sched.FCFS{})
	if sv.K() != tb.K() || sv.Table() != tb {
		t.Fatal("accessors broken")
	}
	// Idle: infinite horizon, advancing accumulates empty time only.
	if dt := sv.TimeToNextCompletion(); !math.IsInf(dt, 1) {
		t.Errorf("idle TimeToNextCompletion = %v, want +Inf", dt)
	}
	sv.Advance(2.5)
	if sv.EmptyTime() != 2.5 || sv.BusyTime() != 0 {
		t.Errorf("idle advance: empty %v busy %v", sv.EmptyTime(), sv.BusyTime())
	}
	// One job: runs solo at WIPC 1, so it completes in exactly Size.
	sv.Add(&sched.Job{ID: 0, Type: 0, Size: 2, Remaining: 2})
	if err := sv.Reschedule(); err != nil {
		t.Fatal(err)
	}
	if got := sv.Running(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Running = %v, want [0]", got)
	}
	dt := sv.TimeToNextCompletion()
	if math.Abs(dt-2) > 1e-9 {
		t.Errorf("solo TimeToNextCompletion = %v, want 2 (WIPC 1)", dt)
	}
	done := sv.Advance(dt)
	if len(done) != 1 || done[0].ID != 0 {
		t.Fatalf("Advance completed %v, want job 0", done)
	}
	if sv.JobsInSystem() != 0 || sv.Dispatched() != 1 {
		t.Errorf("after completion: jobs %d dispatched %d", sv.JobsInSystem(), sv.Dispatched())
	}
	if math.Abs(sv.WorkDone()-2) > 1e-9 || math.Abs(sv.BusyTime()-2) > 1e-9 {
		t.Errorf("integrals: work %v busy %v, want 2, 2", sv.WorkDone(), sv.BusyTime())
	}
}

func TestServerRescheduleRejectsBadScheduler(t *testing.T) {
	sv := NewServer(table(t), badScheduler{})
	sv.Add(&sched.Job{ID: 0, Type: 0, Size: 1, Remaining: 1})
	if err := sv.Reschedule(); err == nil {
		t.Error("empty selection accepted")
	}
}
