package eventsim

import (
	"testing"

	"symbiosched/internal/sched"
)

// TestServerAdvanceZeroAllocs pins the stepping hot path: with no
// observer installed, advancing a busy server (including the fused
// next-completion refresh) must not allocate. Completions are excluded —
// they hand back the reusable done buffer and trigger a reschedule — so
// the run advances in slices far smaller than any job's remaining work.
func TestServerAdvanceZeroAllocs(t *testing.T) {
	tb := table(t)
	sv := NewServer(tb, &sched.MAXIT{Rates: tb})
	for i := 0; i < 6; i++ {
		sv.Add(&sched.Job{ID: i, Type: i % 4, Size: 1e9, Remaining: 1e9})
	}
	if err := sv.Reschedule(); err != nil {
		t.Fatal(err)
	}
	sv.Advance(0.25) // grow scratch once
	allocs := testing.AllocsPerRun(200, func() {
		sv.Advance(0.25)
	})
	if allocs != 0 {
		t.Errorf("Server.Advance allocates %v times per call, want 0", allocs)
	}
}

// TestServerRescheduleZeroAllocs pins the other half of the per-event
// path: re-running a memo-warm MAXIT and refreshing the cached rates and
// next-completion time is allocation-free too.
func TestServerRescheduleZeroAllocs(t *testing.T) {
	tb := table(t)
	sv := NewServer(tb, &sched.MAXIT{Rates: tb})
	for i := 0; i < 6; i++ {
		sv.Add(&sched.Job{ID: i, Type: i % 4, Size: 1e9, Remaining: 1e9})
	}
	if err := sv.Reschedule(); err != nil { // warm scratch and memo
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := sv.Reschedule(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Server.Reschedule allocates %v times per call, want 0", allocs)
	}
}
