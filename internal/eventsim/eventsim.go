// Package eventsim runs the paper's Section VI throughput and latency
// experiments as a continuous-time discrete-event simulation: jobs of
// uniformly random types arrive (Poisson for the latency experiment, a
// topped-up pool for the maximum-throughput experiment), a scheduler
// selects which jobs occupy the K contexts at every arrival/completion
// event with free preemption, and jobs progress at the per-coschedule
// rates from the performance database.
//
// Reported metrics follow the paper: mean turnaround time, processor
// utilisation (mean number of busy contexts) and the fraction of time the
// system is completely empty — the quantities of Figure 5 — plus the
// achieved throughput for the maximum-throughput experiment of Figure 6.
package eventsim

import (
	"fmt"

	"symbiosched/internal/numeric"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

const eps = 1e-9

// LatencyConfig parameterises a latency experiment.
type LatencyConfig struct {
	// Lambda is the Poisson arrival rate in jobs per time unit. With unit
	// job sizes it equals the offered load in work per time unit.
	Lambda float64
	// Jobs is the number of jobs to complete (default 20_000).
	Jobs int
	// Warmup jobs are excluded from the turnaround statistics
	// (default Jobs/10).
	Warmup int
	// JobSize is the mean work per job (default 1), matching the paper's
	// equal-work assumption.
	JobSize float64
	// SizeShape selects the job-size distribution around the JobSize
	// mean: 0 for deterministic sizes, 1 for exponential (the classic
	// Snavely-style setup), k >= 2 for Erlang-k (squared coefficient of
	// variation 1/k — "approximately the same size" as the paper puts it).
	SizeShape int
	// Seed drives arrivals, job types and sizes (default 1).
	Seed uint64
}

func (c LatencyConfig) withDefaults() LatencyConfig {
	if c.Jobs <= 0 {
		c.Jobs = 20_000
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Jobs / 10
	}
	if c.JobSize <= 0 {
		c.JobSize = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result summarises an experiment.
type Result struct {
	// MeanTurnaround is the mean time from arrival to completion over the
	// post-warmup jobs.
	MeanTurnaround float64
	// Utilisation is the time-averaged number of busy contexts.
	Utilisation float64
	// EmptyFraction is the fraction of time with zero jobs in the system.
	EmptyFraction float64
	// Throughput is completed work divided by elapsed time.
	Throughput float64
	// Completed is the number of completed jobs, Elapsed the simulated
	// time span.
	Completed int
	Elapsed   float64
	// MeanJobsInSystem is the time-averaged number of jobs in the system.
	MeanJobsInSystem float64
}

// Latency runs a latency experiment: Poisson arrivals at cfg.Lambda on
// workload w, scheduled by s on the K contexts of table t.
func Latency(t *perfdb.Table, w workload.Workload, s sched.Scheduler, cfg LatencyConfig) (*Result, error) {
	return LatencyObserved(t, w, s, nil, cfg)
}

// LatencyObserved is Latency with an interval observer installed on the
// server — the online-learning loop: the scheduler s typically decides
// over the estimator passed as obs, while the server measures the true
// rates of every simulated interval into it. With obs == nil (or the
// no-op online.Oracle) it is exactly Latency, bit for bit.
func LatencyObserved(t *perfdb.Table, w workload.Workload, s sched.Scheduler, obs online.IntervalObserver, cfg LatencyConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Lambda <= 0 {
		return nil, fmt.Errorf("eventsim: non-positive arrival rate %v", cfg.Lambda)
	}
	rng := stats.NewRNG(cfg.Seed)
	gen := func() float64 { return rng.Exp(cfg.Lambda) }
	return run(t, w, s, obs, cfg, gen, 0)
}

// MaxThroughputConfig parameterises a maximum-throughput experiment
// (arrival rate above the maximum service rate).
type MaxThroughputConfig struct {
	// Jobs is the number of jobs to complete (default 20_000).
	Jobs int
	// Pool is the number of jobs kept in the system (default 4*K),
	// mimicking an arrival rate permanently above the service rate with a
	// bounded queue.
	Pool int
	// JobSize is the fixed work per job (default 1).
	JobSize float64
	// Seed drives job types (default 1).
	Seed uint64
}

// MaxThroughput runs a maximum-throughput experiment: the system is kept
// topped up with Pool jobs of uniformly random types so the scheduler
// always has choices, and the long-run throughput is measured (Figure 6).
func MaxThroughput(t *perfdb.Table, w workload.Workload, s sched.Scheduler, cfg MaxThroughputConfig) (*Result, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 20_000
	}
	if cfg.Pool <= 0 {
		cfg.Pool = 4 * t.K()
	}
	if cfg.JobSize <= 0 {
		cfg.JobSize = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	lcfg := LatencyConfig{
		Jobs:    cfg.Jobs,
		Warmup:  cfg.Jobs / 10,
		JobSize: cfg.JobSize,
		Seed:    cfg.Seed,
		// Lambda unused by the pooled generator.
		Lambda: 1,
	}
	return run(t, w, s, nil, lcfg, nil, cfg.Pool)
}

// NewJobStream returns a deterministic job factory over workload w: types
// are drawn uniformly, sizes follow cfg's JobSize/SizeShape, and IDs
// increase with creation order. The stream is seeded exactly as the
// single-server experiments seed theirs, so a farm of one server fed by
// the same stream reproduces Latency bit for bit.
func NewJobStream(w workload.Workload, cfg LatencyConfig) func(now float64) *sched.Job {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
	nextID := 0
	return func(now float64) *sched.Job {
		size := cfg.JobSize
		if cfg.SizeShape >= 1 {
			// Erlang-k with mean JobSize (k = 1 is exponential).
			k := cfg.SizeShape
			size = 0
			for i := 0; i < k; i++ {
				size += rng.Exp(float64(k) / cfg.JobSize)
			}
		}
		j := &sched.Job{
			ID:      nextID,
			Type:    w[rng.Intn(len(w))],
			Size:    size,
			Arrival: now,
		}
		j.Remaining = j.Size
		nextID++
		return j
	}
}

// run is the shared event loop, driving one Server. interarrival == nil
// selects pooled mode: the system is refilled to pool jobs immediately
// (pool <= 0 defaults to 4*K). obs, when non-nil, receives every
// interval's ground-truth measurement.
func run(t *perfdb.Table, w workload.Workload, s sched.Scheduler, obs online.IntervalObserver, cfg LatencyConfig, interarrival func() float64, pool int) (*Result, error) {
	pooled := interarrival == nil
	if pool <= 0 {
		pool = 4 * t.K()
	}

	sv := NewServer(t, s)
	if obs != nil {
		sv.SetObserver(obs)
	}
	newJob := NewJobStream(w, cfg)

	var now float64
	var nextArrival float64
	arrivalsLeft := cfg.Jobs
	if pooled {
		for sv.JobsInSystem() < pool && arrivalsLeft > 0 {
			sv.Add(newJob(0))
			arrivalsLeft--
		}
	} else {
		nextArrival = interarrival()
	}

	var turnaround numeric.KahanSum
	completed, counted := 0, 0

	for completed < cfg.Jobs {
		if sv.JobsInSystem() == 0 {
			if pooled || arrivalsLeft == 0 {
				break // drained
			}
			// Idle until the next arrival.
			sv.Advance(nextArrival - now)
			now = nextArrival
			sv.Add(newJob(now))
			arrivalsLeft--
			nextArrival = now + interarrival()
			continue
		}
		if err := sv.Reschedule(); err != nil {
			return nil, err
		}
		// Time to the next completion, or the next arrival, whichever first.
		dt := sv.TimeToNextCompletion()
		arrivalDue := false
		if !pooled && arrivalsLeft > 0 && now+dt >= nextArrival {
			dt = nextArrival - now
			arrivalDue = true
		}
		if dt < 0 {
			dt = 0
		}
		now += dt
		for _, j := range sv.Advance(dt) {
			completed++
			if completed > cfg.Warmup {
				turnaround.Add(now - j.Arrival)
				counted++
			}
		}
		// Arrivals / pool refill.
		if arrivalDue {
			sv.Add(newJob(now))
			arrivalsLeft--
			if arrivalsLeft > 0 {
				nextArrival = now + interarrival()
			}
		}
		if pooled {
			for sv.JobsInSystem() < pool && arrivalsLeft > 0 {
				sv.Add(newJob(now))
				arrivalsLeft--
			}
		}
	}
	if now <= 0 {
		return nil, fmt.Errorf("eventsim: experiment completed no work")
	}
	res := &Result{
		Utilisation:   sv.BusyTime() / now,
		EmptyFraction: sv.EmptyTime() / now,
		Throughput:    sv.WorkDone() / now,
		Completed:     completed,
		Elapsed:       now,
	}
	res.MeanJobsInSystem = res.Utilisation // lower bound; refined below
	if counted > 0 {
		res.MeanTurnaround = turnaround.Value() / float64(counted)
		// Little's law over the counted window (approximate).
		res.MeanJobsInSystem = res.MeanTurnaround * float64(counted) / now
	}
	return res, nil
}
