// Package queueing provides the analytic M/M/c results the paper uses in
// Section VI to explain why small throughput gains translate into large
// turnaround-time reductions near saturation: for an M/M/4 queue at
// lambda = 3.5, mu = 1 there are on average 8.7 jobs in the system and the
// turnaround time is 2.5; raising mu by 3% drops them to 7.3 and 2.1 —
// a 16% turnaround reduction from a 3% throughput increase.
package queueing

import (
	"fmt"
	"math"
)

// MMC describes an M/M/c queue: Poisson arrivals at rate Lambda, c
// identical servers with exponential service rate Mu each.
type MMC struct {
	// Lambda is the arrival rate (jobs per unit time).
	Lambda float64
	// Mu is the per-server service rate.
	Mu float64
	// C is the number of servers.
	C int
}

// Offered returns the offered load a = lambda/mu (in Erlangs).
func (q MMC) Offered() float64 { return q.Lambda / q.Mu }

// Utilisation returns rho = lambda / (c*mu).
func (q MMC) Utilisation() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports whether the queue is stable (rho < 1).
func (q MMC) Stable() bool { return q.validate() == nil && q.Utilisation() < 1 }

func (q MMC) validate() error {
	if q.Lambda <= 0 || q.Mu <= 0 || q.C < 1 {
		return fmt.Errorf("queueing: invalid M/M/%d with lambda=%v mu=%v", q.C, q.Lambda, q.Mu)
	}
	return nil
}

// ErlangC returns the probability that an arriving job must wait
// (all servers busy), via the Erlang-C formula computed with a
// numerically stable iterative scheme.
func (q MMC) ErlangC() (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	rho := q.Utilisation()
	if rho >= 1 {
		return 1, nil
	}
	a := q.Offered()
	// Iteratively compute the Erlang-B blocking probability
	// B(c, a) = a*B(c-1, a) / (c + a*B(c-1, a)), B(0, a) = 1,
	// then convert: C = B / (1 - rho*(1-B)).
	b := 1.0
	for k := 1; k <= q.C; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b)), nil
}

// MeanJobs returns L, the mean number of jobs in the system
// (queue + service).
func (q MMC) MeanJobs() (float64, error) {
	pw, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	rho := q.Utilisation()
	if rho >= 1 {
		return math.Inf(1), nil
	}
	return q.Offered() + pw*rho/(1-rho), nil
}

// MeanTurnaround returns W, the mean time in system (waiting + service),
// by Little's law: W = L / lambda.
func (q MMC) MeanTurnaround() (float64, error) {
	l, err := q.MeanJobs()
	if err != nil {
		return 0, err
	}
	return l / q.Lambda, nil
}

// MeanWait returns Wq, the mean waiting time before service.
func (q MMC) MeanWait() (float64, error) {
	w, err := q.MeanTurnaround()
	if err != nil {
		return 0, err
	}
	return w - 1/q.Mu, nil
}

// TurnaroundCurvePoint is one point of the Figure 4 curve.
type TurnaroundCurvePoint struct {
	Lambda     float64
	Turnaround float64
	MeanJobs   float64
}

// TurnaroundCurve samples mean turnaround against arrival rate from
// loFrac to hiFrac of the saturation rate c*mu, in steps — the generic
// curve of Figure 4 whose vertical asymptote sits at the maximum
// throughput. Raising mu moves the asymptote right and drops the whole
// curve (the paper's dotted line).
func TurnaroundCurve(mu float64, c, points int, loFrac, hiFrac float64) ([]TurnaroundCurvePoint, error) {
	if points < 2 || loFrac <= 0 || hiFrac <= loFrac || hiFrac >= 1 {
		return nil, fmt.Errorf("queueing: invalid curve parameters")
	}
	sat := float64(c) * mu
	out := make([]TurnaroundCurvePoint, points)
	for i := range out {
		frac := loFrac + (hiFrac-loFrac)*float64(i)/float64(points-1)
		q := MMC{Lambda: frac * sat, Mu: mu, C: c}
		w, err := q.MeanTurnaround()
		if err != nil {
			return nil, err
		}
		l, err := q.MeanJobs()
		if err != nil {
			return nil, err
		}
		out[i] = TurnaroundCurvePoint{Lambda: q.Lambda, Turnaround: w, MeanJobs: l}
	}
	return out, nil
}
