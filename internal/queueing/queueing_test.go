package queueing

import (
	"math"
	"testing"
)

func TestPaperExample(t *testing.T) {
	// Section VI: "for an M/M/4 queuing system with lambda = 3.5 and
	// mu = 1, there are on average 8.7 jobs in the system, and the
	// turnaround time is 2.5. Increasing mu to 1.03 results in 7.3 jobs
	// and a turnaround time of 2.1, a 16% reduction."
	q1 := MMC{Lambda: 3.5, Mu: 1, C: 4}
	l1, err := q1.MeanJobs()
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := q1.MeanTurnaround()
	if math.Abs(l1-8.7) > 0.1 {
		t.Errorf("L = %v, paper: 8.7", l1)
	}
	if math.Abs(w1-2.5) > 0.05 {
		t.Errorf("W = %v, paper: 2.5", w1)
	}
	q2 := MMC{Lambda: 3.5, Mu: 1.03, C: 4}
	l2, _ := q2.MeanJobs()
	w2, _ := q2.MeanTurnaround()
	if math.Abs(l2-7.3) > 0.1 {
		t.Errorf("L' = %v, paper: 7.3", l2)
	}
	if math.Abs(w2-2.1) > 0.05 {
		t.Errorf("W' = %v, paper: 2.1", w2)
	}
	if red := 1 - w2/w1; math.Abs(red-0.16) > 0.01 {
		t.Errorf("turnaround reduction %v, paper: 16%%", red)
	}
}

func TestMM1ClosedForm(t *testing.T) {
	// M/M/1: W = 1/(mu - lambda).
	q := MMC{Lambda: 0.5, Mu: 1, C: 1}
	w, err := q.MeanTurnaround()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-2) > 1e-9 {
		t.Errorf("M/M/1 W = %v, want 2", w)
	}
	pw, _ := q.ErlangC()
	if math.Abs(pw-0.5) > 1e-9 {
		t.Errorf("M/M/1 P(wait) = %v, want rho = 0.5", pw)
	}
}

func TestErlangCRange(t *testing.T) {
	for _, lam := range []float64{0.5, 1, 2, 3, 3.9} {
		q := MMC{Lambda: lam, Mu: 1, C: 4}
		pw, err := q.ErlangC()
		if err != nil {
			t.Fatal(err)
		}
		if pw < 0 || pw > 1 {
			t.Errorf("lambda=%v: P(wait) = %v outside [0,1]", lam, pw)
		}
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for lam := 0.2; lam < 3.95; lam += 0.25 {
		pw, err := MMC{Lambda: lam, Mu: 1, C: 4}.ErlangC()
		if err != nil {
			t.Fatal(err)
		}
		if pw < prev {
			t.Errorf("ErlangC not monotone at lambda=%v", lam)
		}
		prev = pw
	}
}

func TestUnstableQueue(t *testing.T) {
	q := MMC{Lambda: 5, Mu: 1, C: 4}
	if q.Stable() {
		t.Error("rho > 1 should be unstable")
	}
	l, err := q.MeanJobs()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(l, 1) {
		t.Errorf("unstable queue L = %v, want +Inf", l)
	}
}

func TestValidation(t *testing.T) {
	bad := []MMC{
		{Lambda: 0, Mu: 1, C: 4},
		{Lambda: 1, Mu: 0, C: 4},
		{Lambda: 1, Mu: 1, C: 0},
	}
	for _, q := range bad {
		if _, err := q.ErlangC(); err == nil {
			t.Errorf("%+v: expected validation error", q)
		}
	}
}

func TestMeanWait(t *testing.T) {
	q := MMC{Lambda: 3.5, Mu: 1, C: 4}
	w, _ := q.MeanTurnaround()
	wq, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wq-(w-1)) > 1e-12 {
		t.Errorf("Wq = %v, want W - 1/mu = %v", wq, w-1)
	}
}

func TestTurnaroundCurve(t *testing.T) {
	pts, err := TurnaroundCurve(1, 4, 20, 0.1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("got %d points", len(pts))
	}
	// Monotone increasing turnaround (Figure 4's shape).
	for i := 1; i < len(pts); i++ {
		if pts[i].Turnaround < pts[i-1].Turnaround {
			t.Errorf("turnaround not monotone at point %d", i)
		}
	}
	// Asymptote: last point much larger than first.
	if pts[len(pts)-1].Turnaround < 3*pts[0].Turnaround {
		t.Errorf("no blow-up near saturation: %v vs %v",
			pts[len(pts)-1].Turnaround, pts[0].Turnaround)
	}
	// Higher mu lowers the curve everywhere (the dotted line).
	better, err := TurnaroundCurve(1.03, 4, 20, 0.1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		// Same load fraction, higher service rate -> lower turnaround.
		if better[i].Turnaround > pts[i].Turnaround {
			t.Errorf("point %d: mu=1.03 curve above mu=1 curve", i)
		}
	}
}

func TestTurnaroundCurveValidation(t *testing.T) {
	if _, err := TurnaroundCurve(1, 4, 1, 0.1, 0.9); err == nil {
		t.Error("expected error for too few points")
	}
	if _, err := TurnaroundCurve(1, 4, 10, 0.9, 0.5); err == nil {
		t.Error("expected error for inverted range")
	}
	if _, err := TurnaroundCurve(1, 4, 10, 0.5, 1.0); err == nil {
		t.Error("expected error for hiFrac >= 1")
	}
}
