package resultdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseBench parses `go test -bench` output into Bench entries, in
// input order. It reads the standard line shape
//
//	BenchmarkName-8    1234    143.1 ns/op    0 B/op    0 allocs/op
//
// tolerating absent B/op / allocs/op columns (recorded as -1) and
// ignoring everything that is not a benchmark line (headers, PASS/ok
// trailers, sub-benchmark logs). The trailing -<GOMAXPROCS> suffix is
// stripped so records compare across machines with different core
// counts.
func ParseBench(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		runs, err := strconv.Atoi(f[1])
		if err != nil {
			continue
		}
		b := Bench{Name: trimProcSuffix(f[0]), Runs: runs, BytesPerOp: -1, AllocsPerOp: -1}
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp, ok = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("resultdb: parse bench: %w", err)
	}
	return out, nil
}

// trimProcSuffix drops a trailing -<digits> GOMAXPROCS marker from a
// benchmark name; sub-benchmark slashes are left intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
