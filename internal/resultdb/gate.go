package resultdb

import (
	"fmt"
	"math"
	"strings"
)

// CalibrationBench is the name of the fixed pure-CPU benchmark
// (internal/sched's BenchmarkCalibration) both sides of a perf gate are
// expected to carry. Normalising every hot-path ns/op by the same
// record's calibration ns/op cancels machine speed: the gate then
// compares work-per-calibration-unit, so a baseline recorded on a fast
// workstation still gates a slower CI runner at the intended tolerance.
const CalibrationBench = "BenchmarkCalibration"

// GateResult is the outcome of one benchmark comparison within a gate.
type GateResult struct {
	Name string
	// BaseNs and CurNs are the raw ns/op on each side; Drift is the
	// calibration-normalised relative change (positive = regression).
	BaseNs, CurNs float64
	Drift         float64
	Failed        bool
}

// Gate compares the named hot-path benchmarks of cur against base,
// failing any whose calibration-normalised ns/op drifted up by more
// than tol (e.g. 0.10 for the CI 10% gate). Benchmarks named in names
// but missing on either side fail the gate outright — silently dropping
// a pinned benchmark must not pass. When both records carry
// CalibrationBench, drifts are normalised by the calibration ratio;
// otherwise raw ns/op ratios are compared (same-machine comparisons).
// Improvements (negative drift) never fail.
func Gate(base, cur *Record, names []string, tol float64) ([]GateResult, error) {
	bb := map[string]Bench{}
	for _, b := range base.Benches {
		bb[b.Name] = b
	}
	cb := map[string]Bench{}
	for _, b := range cur.Benches {
		cb[b.Name] = b
	}
	scale := 1.0
	if bc, ok1 := bb[CalibrationBench]; ok1 {
		if cc, ok2 := cb[CalibrationBench]; ok2 && bc.NsPerOp > 0 && cc.NsPerOp > 0 {
			// cur ns are worth (base_cal / cur_cal) base ns.
			scale = bc.NsPerOp / cc.NsPerOp
		}
	}
	var out []GateResult
	for _, name := range names {
		b, okB := bb[name]
		c, okC := cb[name]
		if !okB || !okC {
			out = append(out, GateResult{Name: name, Drift: math.Inf(1), Failed: true})
			continue
		}
		drift := (c.NsPerOp*scale)/b.NsPerOp - 1
		out = append(out, GateResult{
			Name: name, BaseNs: b.NsPerOp, CurNs: c.NsPerOp,
			Drift: drift, Failed: drift > tol,
		})
	}
	return out, nil
}

// FormatGate renders gate results; failed lines carry a FAIL marker so
// CI logs point straight at the regressing benchmark.
func FormatGate(rs []GateResult, tol float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf gate (tolerance %+.0f%%, calibration-normalised):\n", 100*tol)
	for _, r := range rs {
		status := "ok"
		if r.Failed {
			status = "FAIL"
		}
		if math.IsInf(r.Drift, 1) && r.BaseNs == 0 {
			fmt.Fprintf(&b, "  %-4s %-50s missing on one side\n", status, r.Name)
			continue
		}
		fmt.Fprintf(&b, "  %-4s %-50s %10.1f -> %10.1f ns/op (%+.1f%% normalised)\n",
			status, r.Name, r.BaseNs, r.CurNs, 100*r.Drift)
	}
	return b.String()
}

// Failed reports whether any gate result failed.
func Failed(rs []GateResult) bool {
	for _, r := range rs {
		if r.Failed {
			return true
		}
	}
	return false
}
