package resultdb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Delta is one difference between two records. Where identifies the
// datum ("table/cell", "metric", "bench"); Old and New are the two
// values; Rel is the relative change (new/old - 1, ±Inf when only one
// side has the datum and NaN comparisons never reach here).
type Delta struct {
	Kind  string // "table", "metric", "bench", "presence"
	Where string
	Old   string
	New   string
	Rel   float64
}

// DiffOptions tunes the comparison.
type DiffOptions struct {
	// Tol is the relative tolerance below which numeric differences are
	// not reported (default 0: report every byte difference).
	Tol float64
}

// relDelta compares two canonical cell strings: numerically when both
// parse as floats (relative to the old magnitude), else byte equality.
// The bool reports whether they differ beyond tol.
func relDelta(oldS, newS string, tol float64) (float64, bool) {
	if oldS == newS {
		return 0, false
	}
	ov, oerr := strconv.ParseFloat(oldS, 64)
	nv, nerr := strconv.ParseFloat(newS, 64)
	if oerr != nil || nerr != nil {
		return math.NaN(), true // non-numeric and unequal
	}
	if ov == nv {
		return 0, false
	}
	if ov == 0 {
		return math.Inf(sign(nv)), true
	}
	rel := nv/ov - 1
	return rel, math.Abs(rel) > tol
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Diff compares two records and returns the deltas beyond tolerance, in
// a fixed order (tables in a's order, then metrics, then benches), so
// the report is deterministic. Identical records yield no deltas at any
// tolerance.
func Diff(a, b *Record, opt DiffOptions) []Delta {
	var out []Delta
	present := func(kind, where, oldS, newS string) {
		out = append(out, Delta{Kind: "presence", Where: kind + " " + where, Old: oldS, New: newS, Rel: math.NaN()})
	}

	bt := map[string]*Table{}
	for i := range b.Tables {
		bt[b.Tables[i].Name] = &b.Tables[i]
	}
	for i := range a.Tables {
		ta := &a.Tables[i]
		tb, ok := bt[ta.Name]
		if !ok {
			present("table", ta.Name, "present", "missing")
			continue
		}
		delete(bt, ta.Name)
		if strings.Join(ta.Header, ",") != strings.Join(tb.Header, ",") {
			present("table header", ta.Name, strings.Join(ta.Header, ","), strings.Join(tb.Header, ","))
			continue
		}
		if len(ta.Rows) != len(tb.Rows) {
			present("table rows", ta.Name, fmt.Sprint(len(ta.Rows)), fmt.Sprint(len(tb.Rows)))
			continue
		}
		for ri := range ta.Rows {
			for ci := range ta.Rows[ri] {
				if ci >= len(tb.Rows[ri]) {
					break
				}
				if rel, differs := relDelta(ta.Rows[ri][ci], tb.Rows[ri][ci], opt.Tol); differs {
					col := "?"
					if ci < len(ta.Header) {
						col = ta.Header[ci]
					}
					out = append(out, Delta{
						Kind:  "table",
						Where: fmt.Sprintf("%s[%d].%s", ta.Name, ri, col),
						Old:   ta.Rows[ri][ci], New: tb.Rows[ri][ci], Rel: rel,
					})
				}
			}
		}
	}
	for name := range bt {
		present("table", name, "missing", "present")
	}

	bm := map[string]string{}
	for _, m := range b.Metrics {
		bm[m.Metric+"\x00"+m.Field] = m.Value
	}
	for _, m := range a.Metrics {
		k := m.Metric + "\x00" + m.Field
		nv, ok := bm[k]
		if !ok {
			present("metric", m.Metric+"."+m.Field, m.Value, "missing")
			continue
		}
		delete(bm, k)
		if rel, differs := relDelta(m.Value, nv, opt.Tol); differs {
			out = append(out, Delta{Kind: "metric", Where: m.Metric + "." + m.Field, Old: m.Value, New: nv, Rel: rel})
		}
	}
	for _, m := range b.Metrics {
		if _, ok := bm[m.Metric+"\x00"+m.Field]; ok {
			present("metric", m.Metric+"."+m.Field, "missing", m.Value)
		}
	}

	bb := map[string]Bench{}
	for _, bench := range b.Benches {
		bb[bench.Name] = bench
	}
	for _, bench := range a.Benches {
		nb, ok := bb[bench.Name]
		if !ok {
			present("bench", bench.Name, fmt.Sprintf("%g ns/op", bench.NsPerOp), "missing")
			continue
		}
		delete(bb, bench.Name)
		if bench.NsPerOp != nb.NsPerOp {
			rel := math.Inf(sign(nb.NsPerOp))
			if bench.NsPerOp != 0 {
				rel = nb.NsPerOp/bench.NsPerOp - 1
			}
			if math.Abs(rel) > opt.Tol {
				out = append(out, Delta{
					Kind: "bench", Where: bench.Name + " ns/op",
					Old: strconv.FormatFloat(bench.NsPerOp, 'g', 10, 64),
					New: strconv.FormatFloat(nb.NsPerOp, 'g', 10, 64),
					Rel: rel,
				})
			}
		}
		if bench.AllocsPerOp >= 0 && nb.AllocsPerOp >= 0 && bench.AllocsPerOp != nb.AllocsPerOp {
			out = append(out, Delta{
				Kind: "bench", Where: bench.Name + " allocs/op",
				Old: strconv.FormatFloat(bench.AllocsPerOp, 'g', 10, 64),
				New: strconv.FormatFloat(nb.AllocsPerOp, 'g', 10, 64),
				Rel: math.NaN(),
			})
		}
	}
	for _, bench := range b.Benches {
		if _, ok := bb[bench.Name]; ok {
			present("bench", bench.Name, "missing", fmt.Sprintf("%g ns/op", bench.NsPerOp))
		}
	}
	return out
}

// FormatDeltas renders a delta list for humans; an empty list renders as
// the explicit zero-deltas line so scripts can grep for it.
func FormatDeltas(ds []Delta) string {
	if len(ds) == 0 {
		return "no deltas\n"
	}
	var b strings.Builder
	for _, d := range ds {
		if math.IsNaN(d.Rel) {
			fmt.Fprintf(&b, "%-8s %-40s %s -> %s\n", d.Kind, d.Where, d.Old, d.New)
			continue
		}
		fmt.Fprintf(&b, "%-8s %-40s %s -> %s (%+.2f%%)\n", d.Kind, d.Where, d.Old, d.New, 100*d.Rel)
	}
	return b.String()
}
