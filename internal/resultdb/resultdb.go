// Package resultdb is the content-addressed run store behind the
// simulator's perf-trajectory tooling: each Record captures one run's
// scenario tables, metrics snapshot and benchmark numbers, keyed by
// (scenario, config hash, commit) and addressed by a content hash over
// its payload.
//
// The storage format extends internal/perfdb's cache idiom: only
// map-free mirror structs are gob-coded (gob serialises map iteration
// order, which is random), rows and entries are stored in fixed order,
// and files are written via atomic rename — so identical payloads
// produce byte-identical files, and the content hash is a pure function
// of the run's results. Two runs with equal results collide into one
// file, which is exactly the dedup a results database wants.
//
// On top of the store sit Diff — per-cell, per-metric and per-bench
// deltas with relative tolerance — and the calibration-normalised bench
// gate CI enforces (see gate.go).
package resultdb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrCorrupt marks a record file whose payload cannot be decoded — a
// truncated write, bit rot, or plain garbage under a .gob name. Get
// wraps it into the returned error (test with errors.Is), so callers
// iterating a store can skip the damaged file with a warning instead of
// aborting: one bad record must not take the whole database down.
var ErrCorrupt = errors.New("corrupt record")

// Version is the record schema version; bump it when the gob layout
// changes (mismatching files are reported, not silently misread).
const Version = 1

// Table is a map-free scenario table: the CSV header and the canonical
// cell strings, exactly the bytes scenario.Table writes.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// MetricRow is one metrics-snapshot row with its canonical value bytes.
type MetricRow struct {
	Metric, Kind, Field, Value string
}

// Bench is one benchmark result in `go test -bench` terms. The json
// tags shape the generated BENCH_*.json ledger (`symbiosim bench-record
// -ledger`); gob storage ignores them.
type Bench struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`  // -1 when the line carried no B/op column
	AllocsPerOp float64 `json:"allocs_per_op"` // -1 when the line carried no allocs/op column
}

// Record is one stored run. Scenario, ConfigHash and Commit form the
// logical key; the content hash over Tables, Metrics and Benches is the
// physical address. Note and When are annotations: they ride along but
// are excluded from the content hash, so re-recording an identical run
// at a later time still dedups.
type Record struct {
	Version    int
	Scenario   string
	ConfigHash string
	Commit     string
	When       string // RFC 3339, informational only
	Note       string // free-form annotation, informational only
	Tables     []Table
	Metrics    []MetricRow
	Benches    []Bench
}

// ContentHash returns the FNV-64a hash of the record's payload (tables,
// metrics, benches — not the annotations), the content half of the
// file's address. Every field is fed with explicit separators in slice
// order, so the hash is a pure function of the results.
func (r *Record) ContentHash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%s|%s|%s|", Version, r.Scenario, r.ConfigHash, r.Commit)
	for _, t := range r.Tables {
		fmt.Fprintf(h, "T%s|%d|", t.Name, len(t.Header))
		for _, c := range t.Header {
			fmt.Fprintf(h, "%s|", c)
		}
		for _, row := range t.Rows {
			for _, cell := range row {
				fmt.Fprintf(h, "%s|", cell)
			}
			fmt.Fprint(h, ";")
		}
	}
	for _, m := range r.Metrics {
		fmt.Fprintf(h, "M%s|%s|%s|%s|", m.Metric, m.Kind, m.Field, m.Value)
	}
	for _, b := range r.Benches {
		fmt.Fprintf(h, "B%s|%d|%g|%g|%g|", b.Name, b.Runs, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	return h.Sum64()
}

// short truncates a hex-ish token for the file name, keeping names
// readable while the full values live inside the record.
func short(s string, n int) string {
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		}
		return '-'
	}, s)
	if s == "" {
		s = "none"
	}
	if len(s) > n {
		s = s[:n]
	}
	return s
}

// FileName derives the record's file name:
// <scenario>_<cfg8>_<commit8>_<content16>.gob — the logical key up
// front for humans, the content hash at the end for addressing.
func (r *Record) FileName() string {
	return fmt.Sprintf("%s_%s_%s_%016x.gob",
		short(r.Scenario, 32), short(r.ConfigHash, 8), short(r.Commit, 8), r.ContentHash())
}

// Store is a directory of records.
type Store struct{ Dir string }

// Open returns a store over dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	return &Store{Dir: dir}, nil
}

// Put writes the record (gob, atomic rename) and returns its file name.
// Records are immutable: an existing file with the same address is
// already byte-identical, so Put leaves it alone.
func (s *Store) Put(r *Record) (string, error) {
	r.Version = Version
	name := r.FileName()
	path := filepath.Join(s.Dir, name)
	if _, err := os.Stat(path); err == nil {
		return name, nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("resultdb: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(r); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("resultdb: encode %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("resultdb: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("resultdb: %w", err)
	}
	return name, nil
}

// Get reads one record by exact file name. Decode failures come back
// wrapped in ErrCorrupt; a missing file or a schema-version mismatch is
// a distinct error (the file is intact, just absent or from another
// era).
func (s *Store) Get(name string) (*Record, error) {
	f, err := os.Open(filepath.Join(s.Dir, name))
	if err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	defer f.Close()
	var r Record
	if err := gob.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("resultdb: decode %s: %w: %w", name, ErrCorrupt, err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("resultdb: %s has schema version %d, want %d", name, r.Version, Version)
	}
	return &r, nil
}

// hashToken extracts the content-hash token from a record file name —
// the final _<hex>.gob segment of the FileName layout. Empty when the
// name carries no underscore-separated suffix.
func hashToken(name string) string {
	base := strings.TrimSuffix(name, ".gob")
	if i := strings.LastIndexByte(base, '_'); i >= 0 {
		return base[i+1:]
	}
	return ""
}

// List returns the store's record file names, newest first by
// modification time. Equal mtimes — routine on coarse-timestamp
// filesystems and for records written in one burst — tie-break by the
// record's content hash, then by full name, so the order is total and
// stable no matter how the files landed on disk; `latest~N` references
// and trend walks then resolve identically everywhere.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, fmt.Errorf("resultdb: %w", err)
	}
	type stamped struct {
		name string
		mod  int64
	}
	var recs []stamped
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".gob") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, stamped{e.Name(), info.ModTime().UnixNano()})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].mod != recs[j].mod {
			return recs[i].mod > recs[j].mod
		}
		if hi, hj := hashToken(recs[i].name), hashToken(recs[j].name); hi != hj {
			return hi < hj
		}
		return recs[i].name < recs[j].name
	})
	names := make([]string, len(recs))
	for i, r := range recs {
		names[i] = r.name
	}
	return names, nil
}

// Resolve maps a user-supplied reference to a record file name:
// "latest" (or "latest~N") walks the List order; anything else must
// prefix-match exactly one stored name (the ".gob" suffix is optional).
func (s *Store) Resolve(ref string) (string, error) {
	names, err := s.List()
	if err != nil {
		return "", err
	}
	if ref == "latest" || strings.HasPrefix(ref, "latest~") {
		n := 0
		if rest, ok := strings.CutPrefix(ref, "latest~"); ok {
			if _, err := fmt.Sscanf(rest, "%d", &n); err != nil || n < 0 {
				return "", fmt.Errorf("resultdb: bad reference %q", ref)
			}
		}
		if n >= len(names) {
			return "", fmt.Errorf("resultdb: %q refers %d back but the store holds %d records", ref, n, len(names))
		}
		return names[n], nil
	}
	ref = strings.TrimSuffix(ref, ".gob")
	var hits []string
	for _, n := range names {
		if strings.HasPrefix(n, ref) {
			hits = append(hits, n)
		}
	}
	switch len(hits) {
	case 1:
		return hits[0], nil
	case 0:
		return "", fmt.Errorf("resultdb: no record matches %q", ref)
	default:
		sort.Strings(hits)
		return "", fmt.Errorf("resultdb: %q is ambiguous (%s)", ref, strings.Join(hits, ", "))
	}
}
