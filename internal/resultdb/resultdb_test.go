package resultdb

import (
	"encoding/gob"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

func sampleRecord() *Record {
	return &Record{
		Scenario:   "farm",
		ConfigHash: "deadbeef",
		Commit:     "0123456789abcdef",
		When:       "2026-01-01T00:00:00Z",
		Tables: []Table{{
			Name:   "farm",
			Header: []string{"dispatcher", "load", "mean_turnaround"},
			Rows: [][]string{
				{"random", "0.5", "1.25"},
				{"li", "0.5", "1.10"},
			},
		}},
		Metrics: []MetricRow{
			{"sched_memo_hit", "counter", "count", "120"},
			{"server_busy", "gauge", "mean", "1.5"},
		},
		Benches: []Bench{
			{Name: "BenchmarkSchedulerSelect/MAXIT", Runs: 1000, NsPerOp: 143.1, BytesPerOp: 0, AllocsPerOp: 0},
			{Name: CalibrationBench, Runs: 100, NsPerOp: 1000, BytesPerOp: -1, AllocsPerOp: -1},
		},
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	name, err := st.Put(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentHash() != rec.ContentHash() {
		t.Fatal("roundtrip changed the content hash")
	}
	if len(got.Tables) != 1 || got.Tables[0].Rows[1][2] != "1.10" {
		t.Fatalf("roundtrip lost table data: %+v", got.Tables)
	}
	// Identical payload with different annotations dedups to the same
	// address.
	again := sampleRecord()
	again.Note = "re-recorded"
	name2, err := st.Put(again)
	if err != nil {
		t.Fatal(err)
	}
	if name2 != name {
		t.Fatalf("identical payloads stored at %s and %s, want one address", name, name2)
	}
}

func TestContentHashChangesWithPayload(t *testing.T) {
	a, b := sampleRecord(), sampleRecord()
	b.Tables[0].Rows[0][2] = "1.26"
	if a.ContentHash() == b.ContentHash() {
		t.Fatal("different payloads must hash differently")
	}
	c := sampleRecord()
	c.Note, c.When = "annotation", "2030-01-01T00:00:00Z"
	if a.ContentHash() != c.ContentHash() {
		t.Fatal("annotations must not affect the content hash")
	}
}

func TestResolve(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := sampleRecord()
	n1, err := st.Put(first)
	if err != nil {
		t.Fatal(err)
	}
	second := sampleRecord()
	second.Tables[0].Rows[0][2] = "9.99"
	n2, err := st.Put(second)
	if err != nil {
		t.Fatal(err)
	}
	// List orders by mtime; make the second strictly newer.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(st.Dir, n1), old, old); err != nil {
		t.Fatal(err)
	}

	latest, err := st.Resolve("latest")
	if err != nil {
		t.Fatal(err)
	}
	if latest != n2 {
		t.Fatalf("latest = %s, want %s", latest, n2)
	}
	prev, err := st.Resolve("latest~1")
	if err != nil {
		t.Fatal(err)
	}
	if prev != n1 {
		t.Fatalf("latest~1 = %s, want %s", prev, n1)
	}
	// A full name resolves to itself; the shared scenario prefix is
	// ambiguous.
	if got, err := st.Resolve(n2); err != nil || got != n2 {
		t.Fatalf("Resolve(%s) = %s, %v", n2, got, err)
	}
	if _, err := st.Resolve("farm"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("shared prefix should be ambiguous, got %v", err)
	}
	if _, err := st.Resolve("nosuch"); err == nil {
		t.Fatal("unknown reference should fail")
	}
}

// TestListEqualMtimeDeterministic pins the List tie-break: records
// whose mtimes collide — one burst of writes on a coarse-timestamp
// filesystem — must come back ordered by content-hash token, then full
// name, no matter what order the directory happens to yield. Without
// this, `latest~N` and trend walks resolve differently across machines.
func TestListEqualMtimeDeterministic(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 5; i++ {
		rec := sampleRecord()
		rec.Commit = strings.Repeat(string(rune('a'+i)), 8)
		n, err := st.Put(rec)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, n)
	}
	when := time.Now().Add(-time.Minute)
	for _, n := range names {
		if err := os.Chtimes(filepath.Join(st.Dir, n), when, when); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]string(nil), names...)
	sort.Slice(want, func(i, j int) bool {
		if hi, hj := hashToken(want[i]), hashToken(want[j]); hi != hj {
			return hi < hj
		}
		return want[i] < want[j]
	})
	for trial := 0; trial < 3; trial++ {
		got, err := st.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("List returned %d names, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: List[%d] = %s, want %s (hash-token order)", trial, i, got[i], want[i])
			}
		}
	}
}

// TestDiffIdenticalAndInjectedRegression is the acceptance pin: zero
// deltas for identical runs, and a 10% injected regression is detected
// at the CI tolerance.
func TestDiffIdenticalAndInjectedRegression(t *testing.T) {
	a, b := sampleRecord(), sampleRecord()
	if ds := Diff(a, b, DiffOptions{}); len(ds) != 0 {
		t.Fatalf("identical records diff to %d deltas: %s", len(ds), FormatDeltas(ds))
	}

	// Inject a 10% regression into a table cell, a metric and a bench.
	b.Tables[0].Rows[0][2] = "1.375" // 1.25 * 1.1
	b.Metrics[0].Value = "132"       // 120 * 1.1
	b.Benches[0].NsPerOp = 157.41    // 143.1 * 1.1

	ds := Diff(a, b, DiffOptions{Tol: 0.05})
	if len(ds) != 3 {
		t.Fatalf("want 3 deltas beyond 5%%, got %d:\n%s", len(ds), FormatDeltas(ds))
	}
	for _, d := range ds {
		if math.Abs(d.Rel-0.10) > 1e-6 {
			t.Errorf("%s %s: rel = %v, want ~0.10", d.Kind, d.Where, d.Rel)
		}
	}
	// At a 15% tolerance the same pair reports clean.
	if ds := Diff(a, b, DiffOptions{Tol: 0.15}); len(ds) != 0 {
		t.Fatalf("10%% drift beyond 15%% tolerance: %s", FormatDeltas(ds))
	}
}

func TestParseBench(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: symbiosched/internal/sched
cpu: AMD EPYC
BenchmarkSchedulerSelect/MAXIT/depth=32-16         	 8246792	       143.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerSelect/SRPT/depth=32-16          	  918222	      1300 ns/op	       0 B/op	       0 allocs/op
BenchmarkCalibration-16                            	    5000	    250000 ns/op
PASS
ok  	symbiosched/internal/sched	3.2s
`
	bs, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benches, want 3", len(bs))
	}
	if bs[0].Name != "BenchmarkSchedulerSelect/MAXIT/depth=32" {
		t.Fatalf("name = %q (proc suffix must be stripped)", bs[0].Name)
	}
	if bs[0].NsPerOp != 143.1 || bs[0].AllocsPerOp != 0 || bs[0].Runs != 8246792 {
		t.Fatalf("bench 0 = %+v", bs[0])
	}
	if bs[2].Name != CalibrationBench || bs[2].AllocsPerOp != -1 {
		t.Fatalf("bench 2 = %+v (missing columns must read -1)", bs[2])
	}
}

// TestGateCalibrationNormalised pins the machine-speed cancellation: a
// current record measured on a machine 2x slower (calibration 2000 vs
// 1000 ns) with hot-path numbers also 2x slower shows zero normalised
// drift, while a genuine 20% regression fails the 10% gate even through
// the speed difference.
func TestGateCalibrationNormalised(t *testing.T) {
	base := sampleRecord()
	cur := sampleRecord()
	for i := range cur.Benches {
		cur.Benches[i].NsPerOp *= 2 // slower machine, same code
	}
	names := []string{"BenchmarkSchedulerSelect/MAXIT"}
	rs, err := Gate(base, cur, names, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if Failed(rs) || math.Abs(rs[0].Drift) > 1e-9 {
		t.Fatalf("pure machine-speed change must not fail: %+v", rs)
	}

	cur.Benches[0].NsPerOp *= 1.2 // genuine 20% regression on top
	rs, err = Gate(base, cur, names, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !Failed(rs) {
		t.Fatalf("20%% normalised regression must fail the 10%% gate: %+v", rs)
	}
	if math.Abs(rs[0].Drift-0.2) > 1e-9 {
		t.Fatalf("drift = %v, want 0.2", rs[0].Drift)
	}

	// A missing pinned benchmark fails outright.
	rs, err = Gate(base, cur, []string{"BenchmarkNoSuch"}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !Failed(rs) {
		t.Fatal("missing pinned benchmark must fail the gate")
	}
}

// TestGetCorruptRecord pins the lenient-loading contract: a truncated
// or garbage .gob file fails with an error wrapping ErrCorrupt (so
// store iterators can skip it), while an intact file from a different
// schema version fails with a plain version error — the bytes are fine.
func TestGetCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	name, err := st.Put(sampleRecord())
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the written record to half its length: the gob stream
	// ends mid-value.
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	trunc := "farm_trunc_00000000_0000000000000000.gob"
	if err := os.WriteFile(filepath.Join(dir, trunc), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(trunc); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated record: Get = %v, want ErrCorrupt", err)
	}

	// Plain garbage under a .gob name is equally corrupt.
	junk := "farm_junk_00000000_0000000000000000.gob"
	if err := os.WriteFile(filepath.Join(dir, junk), []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(junk); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage record: Get = %v, want ErrCorrupt", err)
	}

	// List still surfaces every .gob file, damaged or not: skipping is
	// the reader's decision, not the directory scan's.
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Errorf("List = %v, want 3 entries", names)
	}

	// A future-version record decodes fine and must NOT read as corrupt.
	future := sampleRecord()
	fname, err := st.Put(future)
	if err != nil {
		t.Fatal(err)
	}
	_ = fname
	fut := &Record{Version: Version + 1, Scenario: "x"}
	fpath := filepath.Join(dir, "x_future_00000000_0000000000000000.gob")
	f, err := os.Create(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(fut); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = st.Get(filepath.Base(fpath))
	if err == nil || errors.Is(err, ErrCorrupt) {
		t.Errorf("version-mismatch record: Get = %v, want a non-corrupt version error", err)
	}
	// The good record still loads cleanly alongside the damage.
	if _, err := st.Get(name); err != nil {
		t.Errorf("intact record no longer loads: %v", err)
	}
}
