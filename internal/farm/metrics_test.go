package farm

import (
	"runtime"
	"testing"
)

// TestMetricsObserveOnly pins the instrumentation contract on both
// engines: a run with Config.Metrics produces a populated snapshot, and
// every simulation result field is bit-identical to the uninstrumented
// run — the collectors observe, they never participate.
func TestMetricsObserveOnly(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
	base := Config{Lambda: 3.5, Jobs: 3000, SizeShape: 4, Seed: 5}
	for _, engine := range []string{"serial", "sharded"} {
		var fps []string
		for _, met := range []bool{false, true} {
			cfg := base
			cfg.Metrics = met
			d, err := NewDispatcher("li")
			if err != nil {
				t.Fatal(err)
			}
			var res *Result
			if engine == "serial" {
				res, err = Simulate(specs, d, w4(), cfg)
			} else {
				res, err = SimulateSharded(specs, d, w4(), cfg, ShardConfig{Shards: 2, Workers: 2})
			}
			if err != nil {
				t.Fatalf("%s metrics=%v: %v", engine, met, err)
			}
			if met {
				if res.Metrics == nil || len(res.Metrics.Rows) == 0 {
					t.Fatalf("%s: Metrics run produced no snapshot rows", engine)
				}
				if _, ok := res.Metrics.Get("dispatch_picks", "count"); !ok {
					t.Errorf("%s: snapshot missing dispatch_picks", engine)
				}
			} else if res.Metrics != nil || res.EngineStats != nil {
				t.Fatalf("%s: uninstrumented run carries a snapshot", engine)
			}
			res.Metrics, res.EngineStats = nil, nil
			fps = append(fps, shardFingerprint(res))
		}
		if fps[0] != fps[1] {
			t.Errorf("%s: enabling metrics changed the result:\n--- off ---\n%s\n--- on ---\n%s",
				engine, fps[0], fps[1])
		}
	}
}

// TestMetricsInvariantToShardConfig extends the engine's bit-identity
// contract to the instrumentation: in the sharded engine every server
// advances only at its own events, so the merged Metrics snapshot is
// byte-identical across shard counts, worker counts and slab lengths.
// Execution-shape statistics (slab and merge counts) legitimately vary
// with the knobs, which is exactly why they live in the separate
// EngineStats snapshot.
func TestMetricsInvariantToShardConfig(t *testing.T) {
	tab := smtTable(t)
	specs := make([]ServerSpec, 5)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	cfg := Config{Lambda: 6.0, Jobs: 2000, SizeShape: 4, Seed: 17, Metrics: true}
	var ref string
	var refSC ShardConfig
	for _, sc := range []ShardConfig{
		{Shards: 1, Workers: 1},
		{Shards: 1, Workers: runtime.NumCPU()},
		{Shards: 2, Workers: 2, Slab: 0.5},
		{Shards: 5, Workers: runtime.NumCPU(), Slab: 0.05},
	} {
		d, err := NewDispatcher("pd2")
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateSharded(specs, d, w4(), cfg, sc)
		if err != nil {
			t.Fatalf("%+v: %v", sc, err)
		}
		if res.Metrics == nil || res.EngineStats == nil {
			t.Fatalf("%+v: missing snapshots", sc)
		}
		csv := string(res.Metrics.CSV())
		if ref == "" {
			ref, refSC = csv, sc
			continue
		}
		if csv != ref {
			t.Errorf("metrics CSV differs between %+v and %+v:\n--- ref ---\n%s\n--- got ---\n%s",
				refSC, sc, ref, csv)
		}
	}
}
