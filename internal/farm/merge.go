package farm

import (
	"math"

	"symbiosched/internal/eventsim"
)

// slabMerger is the k-way merge that restores global event order after a
// slab: the active shards' completion lists — each already sorted by
// (time, local server index) — are interleaved into one stream ordered
// by (time, global server index). It is a loser tree (tournament merge):
// the k stream heads play a single-elimination tournament once, and each
// emitted completion replays only the winner's path, O(log k) per
// completion instead of the linear scan's O(k). The emission order is
// index-identical to mergeScanReference, which is kept verbatim below as
// the oracle FuzzLoserTreeMerge replays against.
//
// All state lives in reusable arrays sized to the shard count, so a
// merge allocates nothing once the scratch has warmed up.
type slabMerger struct {
	k     int
	tree  []int32   // internal nodes 1..k-1 hold match losers; tree[0] the winner
	keyT  []float64 // per-stream head completion time (+Inf when exhausted)
	keyG  []int32   // per-stream head global server index (tie-break)
	pos   []int     // per-stream cursor
	lists [][]eventsim.Completion
	gbase []int // per-stream global index of the shard's first server
}

// reset points the merger at a fresh set of streams and rebuilds the
// tournament. lists[i] must be sorted by (T, Server); gbase[i] is the
// offset turning lists[i]'s local server indices into global ones.
func (m *slabMerger) reset(lists [][]eventsim.Completion, gbase []int) {
	k := len(lists)
	m.k = k
	m.lists, m.gbase = lists, gbase
	if cap(m.tree) < k {
		m.tree = make([]int32, k)
		m.keyT = make([]float64, k)
		m.keyG = make([]int32, k)
		m.pos = make([]int, k)
	}
	m.tree = m.tree[:k]
	m.keyT = m.keyT[:k]
	m.keyG = m.keyG[:k]
	m.pos = m.pos[:k]
	for i := 0; i < k; i++ {
		m.tree[i] = -1
		m.pos[i] = 0
		m.loadKey(i)
	}
	// Build by playing each stream up from its leaf: a stream parks at
	// the first empty node (no opponent yet), otherwise the match winner
	// continues and the loser stays. After all k insertions every
	// internal node holds exactly one loser and tree[0] the champion.
	for i := k - 1; i >= 0; i-- {
		s := int32(i)
		parked := false
		for t := (i + k) / 2; t > 0; t /= 2 {
			if m.tree[t] < 0 {
				m.tree[t] = s
				parked = true
				break
			}
			if m.beats(m.tree[t], s) {
				s, m.tree[t] = m.tree[t], s
			}
		}
		if !parked {
			m.tree[0] = s
		}
	}
}

// loadKey caches stream i's head key (+Inf sentinel when exhausted).
func (m *slabMerger) loadKey(i int) {
	if m.pos[i] >= len(m.lists[i]) {
		m.keyT[i] = math.Inf(1)
		m.keyG[i] = math.MaxInt32
		return
	}
	c := m.lists[i][m.pos[i]]
	m.keyT[i] = c.T
	m.keyG[i] = int32(m.gbase[i] + c.Server)
}

// beats reports whether stream a's head precedes stream b's head in
// global (time, server index) order. Global indices are unique, so the
// order is total over non-exhausted streams and the tournament is
// deterministic.
func (m *slabMerger) beats(a, b int32) bool {
	if m.keyT[a] != m.keyT[b] {
		return m.keyT[a] < m.keyT[b]
	}
	return m.keyG[a] < m.keyG[b]
}

// next pops the globally-next completion, replaying only the winner's
// leaf-to-root path. ok is false once every stream is exhausted.
func (m *slabMerger) next() (c eventsim.Completion, ok bool) {
	w := m.tree[0]
	if math.IsInf(m.keyT[w], 1) {
		return eventsim.Completion{}, false
	}
	c = m.lists[w][m.pos[w]]
	m.pos[w]++
	m.loadKey(int(w))
	s := w
	for t := (int(w) + m.k) / 2; t > 0; t /= 2 {
		if m.beats(m.tree[t], s) {
			s, m.tree[t] = m.tree[t], s
		}
	}
	m.tree[0] = s
	return c, true
}

// mergeScanReference is the pre-loser-tree merge, kept verbatim as the
// reference implementation: a linear scan over every stream head per
// emitted completion, O(k) per completion. FuzzLoserTreeMerge pins the
// tree's emission order index-identical to this scan; the engine itself
// no longer calls it.
func mergeScanReference(lists [][]eventsim.Completion, gbase []int, pos []int, emit func(eventsim.Completion)) {
	for i := range lists {
		pos[i] = 0
	}
	for {
		best := -1
		var bestT float64
		bestG := 0
		for i := range lists {
			if pos[i] >= len(lists[i]) {
				continue
			}
			c := lists[i][pos[i]]
			g := gbase[i] + c.Server
			if best < 0 || c.T < bestT || (c.T == bestT && g < bestG) {
				best, bestT, bestG = i, c.T, g
			}
		}
		if best < 0 {
			return
		}
		emit(lists[best][pos[best]])
		pos[best]++
	}
}
