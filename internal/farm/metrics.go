package farm

import (
	"symbiosched/internal/eventsim"
	"symbiosched/internal/metrics"
	"symbiosched/internal/online"
	"symbiosched/internal/sched"
)

// runMetrics is one simulation's instrumentation bundle, built when
// Config.Metrics is set. A nil *runMetrics is the disabled state: every
// hook method is a nil-receiver no-op, so the engines stay on their
// uninstrumented paths.
//
// Ownership mirrors the engines' concurrency: each server gets its own
// collector (shards advance servers concurrently, but one server is only
// ever touched by one goroutine), while the dispatch and engine
// collectors are only touched in the single-threaded coordinator
// sections. The merged simulation snapshot folds dispatch first, then
// the servers in index order — the same index-ordered reduction that
// keeps Results byte-identical — so it is invariant to Shards, Workers
// and Slab. Engine execution stats (slab and merge counts) legitimately
// depend on those knobs and are kept in a separate snapshot.
type runMetrics struct {
	serverCols []*metrics.Collector
	dispatch   *metrics.Collector
	picks      *metrics.Counter
	qlen       *metrics.Series

	engine *metrics.Collector
	events *metrics.Counter // serial: event-loop iterations
	slabs  *metrics.Counter // sharded: slabs run
	shards *metrics.Counter // sharded: shard-advance calls (sum of active set sizes)
	merged *metrics.Counter // sharded: completions k-way merged

	// Fault-injection instruments, on the dispatch collector (fault
	// transitions and re-dispatch both run in the single-threaded
	// coordinator sections). All stay zero when faults are disabled.
	crashes      *metrics.Counter // fault_crashes: server failures
	repairs      *metrics.Counter // fault_repairs: servers brought back up
	redispatches *metrics.Counter // fault_redispatches: crash victims placed again
	parks        *metrics.Counter // fault_parked: jobs shelved with every server down
}

// newRunMetrics instruments a freshly built fleet: per-server collectors
// carrying the server, scheduler and (when learning) estimator
// instruments, plus the dispatch-side picks counter and the
// jobs-in-system series sampled at every arrival.
func newRunMetrics(servers []*eventsim.Server) *runMetrics {
	rm := &runMetrics{dispatch: metrics.New(), engine: metrics.New()}
	rm.picks = rm.dispatch.Counter("dispatch_picks")
	rm.qlen = rm.dispatch.Series("farm_jobs_in_system", 256)
	rm.crashes = rm.dispatch.Counter("fault_crashes")
	rm.repairs = rm.dispatch.Counter("fault_repairs")
	rm.redispatches = rm.dispatch.Counter("fault_redispatches")
	rm.parks = rm.dispatch.Counter("fault_parked")
	rm.events = rm.engine.Counter("engine_events")
	rm.slabs = rm.engine.Counter("engine_slabs")
	rm.shards = rm.engine.Counter("engine_shard_advances")
	rm.merged = rm.engine.Counter("engine_merged_completions")
	for _, sv := range servers {
		c := metrics.New()
		sv.SetMetrics(eventsim.NewServerMetrics(c))
		sched.AttachMetrics(sv.Scheduler(), sched.NewMetrics(c))
		online.AttachMetrics(sv.Rates(), online.NewMetrics(c))
		rm.serverCols = append(rm.serverCols, c)
	}
	return rm
}

// pick records one dispatch decision: the pick itself and the farm
// population (dispatched minus completed, i.e. jobs in system including
// the new arrival) at the arrival's time.
func (rm *runMetrics) pick(t float64, inSystem int) {
	if rm != nil {
		rm.picks.Inc()
		rm.qlen.Append(t, float64(inSystem))
	}
}

// event counts one serial event-loop iteration.
func (rm *runMetrics) event() {
	if rm != nil {
		rm.events.Inc()
	}
}

// slab records one sharded synchronisation slab: the slab itself, how
// many shards were active in it, and how many completions its merge
// folded.
func (rm *runMetrics) slab(active, mergedComps int) {
	if rm != nil {
		rm.slabs.Inc()
		rm.shards.Add(uint64(active))
		rm.merged.Add(uint64(mergedComps))
	}
}

// crash counts one server failure.
func (rm *runMetrics) crash() {
	if rm != nil {
		rm.crashes.Inc()
	}
}

// repair counts one server repair.
func (rm *runMetrics) repair() {
	if rm != nil {
		rm.repairs.Inc()
	}
}

// redispatch counts one crash victim placed again.
func (rm *runMetrics) redispatch() {
	if rm != nil {
		rm.redispatches.Inc()
	}
}

// park counts one job shelved because every server was down.
func (rm *runMetrics) park() {
	if rm != nil {
		rm.parks.Inc()
	}
}

// snapshot merges the run's deterministic instruments: dispatch first,
// then every server in index order.
func (rm *runMetrics) snapshot() *metrics.Snapshot {
	snap := rm.dispatch.Snapshot()
	for _, c := range rm.serverCols {
		snap.Merge(c.Snapshot())
	}
	return snap
}

// finish attaches the run's snapshots to the assembled result.
func (rm *runMetrics) finish(res *Result) {
	if rm != nil {
		res.Metrics = rm.snapshot()
		res.EngineStats = rm.engine.Snapshot()
	}
}
