package farm

import (
	"symbiosched/internal/fault"
	"symbiosched/internal/numeric"
	"symbiosched/internal/sched"
)

// Meta-event kinds of the engines' event selection: at most one fires
// per loop iteration, and equal-time ties resolve in declaration order
// — fault transitions first (a crash at an arrival's instant evicts
// before the arrival is placed; a repair re-opens the server to a
// same-instant retry), then retry re-arrivals, then fresh arrivals.
// Completions are not meta events: both engines process every
// completion up to the meta event's time before handling it.
const (
	evNone = iota
	evFault
	evRetry
	evArrival
)

// faultRun is one simulation's fault-injection state, shared verbatim
// by the serial and sharded engines so the two apply byte-identical
// policy to the same fault trajectory. A nil *faultRun is the disabled
// state: the engines' fault hooks vanish and their event selection
// reduces exactly to the historical completion-vs-arrival race.
type faultRun struct {
	cfg fault.Config // with defaults applied
	inj *fault.Injector
	rq  *fault.RetryQueue
	// parked holds jobs that arrived (or retried) while every server was
	// down, in arrival order; the next repair drains it FIFO through the
	// normal dispatch path.
	parked []*sched.Job
	// up is the number of in-service servers, maintained O(1) at every
	// transition and handed to Dispatcher.Pick.
	up int
	// seq re-issues dispatch-order job IDs: with re-dispatch in play, a
	// retried job would otherwise re-enter a queue behind younger IDs and
	// break the schedulers' nondecreasing-ID arrival invariant. Every
	// placement (fresh, retry or park-drain) takes the next seq, which
	// reduces to the identity relabelling when faults are off.
	seq int

	redispatches int
	dropped      int
	parkedTotal  int
	wasted       numeric.KahanSum
	retries      []float64 // per counted completion: the job's crash count
}

// newFaultRun builds the run state for cfg's fault config over n
// servers, or nil when fault injection is disabled.
func newFaultRun(cfg Config, n int) *faultRun {
	if !cfg.Faults.Enabled() {
		return nil
	}
	fc := cfg.Faults.WithDefaults()
	expected := cfg.Jobs - cfg.Warmup
	if expected < 0 {
		expected = 0
	}
	return &faultRun{
		cfg:     fc,
		inj:     fault.NewInjector(fc, n, cfg.Seed),
		rq:      &fault.RetryQueue{},
		up:      n,
		retries: make([]float64, 0, expected),
	}
}

// droppedJobs is fr.dropped, nil-safe: the engines' termination
// condition counts completed + dropped against cfg.Jobs.
func (fr *faultRun) droppedJobs() int {
	if fr == nil {
		return 0
	}
	return fr.dropped
}

// crash applies the checkpoint and retry policy to the victims of a
// server failure at time t: under restart each victim forfeits its
// progress as wasted work; a victim past the retry cap is dropped (its
// surviving progress also wasted); the rest re-enter the farm through
// the retry queue after the deterministic backoff. Victims are
// processed in the queue order the failed server held them.
func (fr *faultRun) crash(t float64, victims []*sched.Job, rm *runMetrics) {
	fr.up--
	rm.crash()
	for _, j := range victims {
		if fr.cfg.Checkpoint == fault.Restart {
			fr.wasted.Add(j.Size - j.Remaining)
			j.Remaining = j.Size
		}
		j.Retries++
		if j.Retries > fr.cfg.MaxRetries {
			// Dropped: whatever progress survived the checkpoint policy
			// (all of it under resume) is wasted too.
			fr.wasted.Add(j.Size - j.Remaining)
			fr.dropped++
			continue
		}
		fr.rq.Push(j, t+fr.cfg.Backoff(j.Retries))
	}
}

// park shelves a job that found every server down; the next repair
// drains the shelf FIFO.
func (fr *faultRun) park(j *sched.Job, rm *runMetrics) {
	fr.parked = append(fr.parked, j)
	fr.parkedTotal++
	rm.park()
}
