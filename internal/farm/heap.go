package farm

import "math"

// ttcHeap is an indexed binary min-heap over the servers' cached
// time-to-next-completion values. It holds only busy servers (finite
// keys), Update is an O(1) no-op for servers whose key did not move
// (idle ones between events), and sifts are near-O(1) in the common case
// where every busy key shrinks by the same dt, preserving relative
// order. The event loop's physics sweep still advances every server per
// event — that per-event O(N) floor is the golden-output bit-identity
// contract (see DESIGN.md, "Hot path & memoization"); what the heap
// removes is the second full pass that recomputed and compared every
// server's completion time. Ties order by server index, keeping the
// heap's internal layout — and therefore the whole event loop —
// deterministic.
//
// Min returns exactly the minimum of the stored float64 keys, so
// replacing the former scan over every server's TimeToNextCompletion with
// a heap peek leaves every simulated event time bit-identical.
type ttcHeap struct {
	keys []float64 // key per server index (+Inf when absent)
	pos  []int     // heap position per server index, -1 when absent
	heap []int     // server indices, heap-ordered by (key, index)
}

func newTTCHeap(n int) *ttcHeap {
	h := &ttcHeap{
		keys: make([]float64, n),
		pos:  make([]int, n),
		heap: make([]int, 0, n),
	}
	for i := range h.pos {
		h.keys[i] = math.Inf(1)
		h.pos[i] = -1
	}
	return h
}

// Min returns the smallest stored key, or +Inf when no server is busy.
func (h *ttcHeap) Min() float64 {
	if len(h.heap) == 0 {
		return math.Inf(1)
	}
	return h.keys[h.heap[0]]
}

// Update sets server i's key, inserting, removing (key +Inf) or
// repositioning it as needed. It is a cheap no-op when the key is
// unchanged (idle servers between events).
func (h *ttcHeap) Update(i int, key float64) {
	if key == h.keys[i] {
		return
	}
	inf := math.IsInf(key, 1)
	switch {
	case h.pos[i] == -1 && inf:
		return // stays absent
	case h.pos[i] == -1:
		h.keys[i] = key
		h.pos[i] = len(h.heap)
		h.heap = append(h.heap, i)
		h.up(h.pos[i])
	case inf:
		h.remove(i)
	default:
		up := key < h.keys[i]
		h.keys[i] = key
		if up {
			h.up(h.pos[i])
		} else {
			h.down(h.pos[i])
		}
	}
}

func (h *ttcHeap) remove(i int) {
	p, last := h.pos[i], len(h.heap)-1
	h.keys[i] = math.Inf(1)
	h.pos[i] = -1
	if p != last {
		moved := h.heap[last]
		h.heap[p] = moved
		h.pos[moved] = p
	}
	h.heap = h.heap[:last]
	if p != last {
		if !h.up(p) {
			h.down(p)
		}
	}
}

// less orders heap slots by (key, server index).
func (h *ttcHeap) less(a, b int) bool {
	ia, ib := h.heap[a], h.heap[b]
	if h.keys[ia] != h.keys[ib] {
		return h.keys[ia] < h.keys[ib]
	}
	return ia < ib
}

func (h *ttcHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

// up sifts slot p toward the root, reporting whether it moved.
func (h *ttcHeap) up(p int) bool {
	moved := false
	for p > 0 {
		parent := (p - 1) / 2
		if !h.less(p, parent) {
			break
		}
		h.swap(p, parent)
		p = parent
		moved = true
	}
	return moved
}

// down sifts slot p toward the leaves.
func (h *ttcHeap) down(p int) {
	for {
		l, r := 2*p+1, 2*p+2
		smallest := p
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == p {
			return
		}
		h.swap(p, smallest)
		p = smallest
	}
}
