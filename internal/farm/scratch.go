package farm

import (
	"sync"

	"symbiosched/internal/eventsim"
)

// shardScratch is SimulateSharded's reusable coordinator state: the
// partition tables, the per-slab active/completion scratch, the k-way
// merge state and the shard-level next-event heap. A run checks one out
// of shardScratchPool and returns it on exit, so back-to-back runs — a
// Sweep's replications in particular, where each runner worker drives
// replications serially and sync.Pool's per-P caching makes the scratch
// effectively per-worker — stop re-allocating the O(servers) tables and
// O(shards) slab state every time.
type shardScratch struct {
	base    []int // shard s's first global server index; len shards+1
	shardOf []int // global server index -> owning shard
	active  []int // shards with an event inside the current slab
	comps   [][]eventsim.Completion
	errs    []error
	lists   [][]eventsim.Completion // merge streams, rebuilt per slab
	gbase   []int                   // global base per merge stream
	merger  slabMerger
	events  *eventsim.TimeHeap // per-shard next-event time (the dirty-set)
}

var shardScratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// getShardScratch checks a scratch out of the pool sized for shards
// partitions over servers, with the event heap emptied.
func getShardScratch(shards, servers int) *shardScratch {
	z := shardScratchPool.Get().(*shardScratch)
	if cap(z.base) < shards+1 {
		z.base = make([]int, shards+1)
	}
	z.base = z.base[:shards+1]
	if cap(z.shardOf) < servers {
		z.shardOf = make([]int, servers)
	}
	z.shardOf = z.shardOf[:servers]
	if cap(z.active) < shards {
		z.active = make([]int, 0, shards)
	}
	z.active = z.active[:0]
	if cap(z.comps) < shards {
		z.comps = make([][]eventsim.Completion, shards)
		z.errs = make([]error, shards)
	}
	z.comps = z.comps[:shards]
	z.errs = z.errs[:shards]
	if cap(z.lists) < shards {
		z.lists = make([][]eventsim.Completion, 0, shards)
		z.gbase = make([]int, 0, shards)
	}
	z.lists = z.lists[:0]
	z.gbase = z.gbase[:0]
	if z.events == nil {
		z.events = eventsim.NewTimeHeap(shards)
	} else {
		z.events.Reset(shards)
	}
	return z
}

// release drops every pointer the scratch captured from the finished run
// (completion lists alias group buffers holding *sched.Job) and returns
// it to the pool.
func (z *shardScratch) release() {
	for i := range z.comps {
		z.comps[i] = nil
		z.errs[i] = nil
	}
	for i := range z.lists {
		z.lists[i] = nil
	}
	z.lists = z.lists[:0]
	z.merger.lists = nil
	shardScratchPool.Put(z)
}
