package farm

import (
	"math"
	"testing"

	"symbiosched/internal/stats"
)

func TestScheduleValidation(t *testing.T) {
	tab := uniformTable(2)
	base := Config{Lambda: 1, Jobs: 50}
	bad := []struct {
		name  string
		phase []Phase
	}{
		{"zero duration", []Phase{{Duration: 0, Rate: 1}}},
		{"negative rate", []Phase{{Duration: 1, Rate: -0.5}}},
		{"all zero rates", []Phase{{Duration: 1, Rate: 0}, {Duration: 2, Rate: 0}}},
	}
	for _, tc := range bad {
		cfg := base
		cfg.Schedule = tc.phase
		if _, err := Simulate([]ServerSpec{fcfsSpec(tab)}, &RoundRobin{}, w4()[:1], cfg); err == nil {
			t.Errorf("%s: schedule accepted", tc.name)
		}
	}
}

// TestArrivalStreamBurst pins the time-varying arrival law: with an
// on/off schedule, every arrival lands in an on phase, and the long-run
// rate equals the cycle's mean rate.
func TestArrivalStreamBurst(t *testing.T) {
	cfg := Config{
		Lambda:   1, // nominal; the schedule governs
		Schedule: []Phase{{Duration: 10, Rate: 2}, {Duration: 10, Rate: 0}},
	}
	next := arrivalStream(cfg, stats.NewRNG(11))
	const n = 20000
	var tnow float64
	for i := 0; i < n; i++ {
		tnext := next(tnow)
		if tnext <= tnow {
			t.Fatalf("arrival %d not strictly increasing: %v -> %v", i, tnow, tnext)
		}
		pos := math.Mod(tnext, 20)
		if pos > 10+1e-9 {
			t.Fatalf("arrival %d at t=%v falls in the zero-rate phase (pos %v)", i, tnext, pos)
		}
		tnow = tnext
	}
	// Mean rate over the cycle is (2*10 + 0*10)/20 = 1.
	rate := n / tnow
	if rate < 0.95 || rate > 1.05 {
		t.Errorf("long-run arrival rate %v, want ~1 (schedule mean)", rate)
	}
}

// TestArrivalStreamConstantSchedule checks the restart-at-boundary
// construction against the analytic law: a single-phase schedule is a
// plain Poisson process at that rate, even though draws are discarded at
// every cycle boundary.
func TestArrivalStreamConstantSchedule(t *testing.T) {
	cfg := Config{Lambda: 1, Schedule: []Phase{{Duration: 3, Rate: 1.5}}}
	next := arrivalStream(cfg, stats.NewRNG(5))
	const n = 20000
	var tnow float64
	for i := 0; i < n; i++ {
		tnow = next(tnow)
	}
	rate := n / tnow
	if rate < 1.5*0.95 || rate > 1.5*1.05 {
		t.Errorf("long-run arrival rate %v, want ~1.5", rate)
	}
}

// TestSLOAttainment checks the attainment measurement against the
// turnaround quantiles of the same run: the attainment at the P50 (P95)
// threshold must sit at ~0.50 (~0.95), and extreme thresholds saturate.
func TestSLOAttainment(t *testing.T) {
	tab := uniformTable(2)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab)}
	w := w4()[:1]
	base := Config{Lambda: 2.5, Jobs: 4000, Seed: 3, SizeShape: 1}
	ref, err := Simulate(specs, JoinShortestQueue{}, w, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.SLOAttainment != 0 {
		t.Errorf("attainment %v reported with no SLO set", ref.SLOAttainment)
	}
	at := func(slo float64) float64 {
		cfg := base
		cfg.SLO = slo
		r, err := Simulate(specs, JoinShortestQueue{}, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.SLOAttainment
	}
	if got := at(ref.P50Turnaround); math.Abs(got-0.50) > 0.02 {
		t.Errorf("attainment at P50 threshold = %v, want ~0.50", got)
	}
	if got := at(ref.P95Turnaround); math.Abs(got-0.95) > 0.02 {
		t.Errorf("attainment at P95 threshold = %v, want ~0.95", got)
	}
	if got := at(1e9); got != 1 {
		t.Errorf("attainment at huge threshold = %v, want 1", got)
	}
	if got := at(1e-12); got > 0.01 {
		t.Errorf("attainment at tiny threshold = %v, want ~0", got)
	}
}

func TestAggregateSLOAttainment(t *testing.T) {
	runs := []Replication{
		{Seed: 1, Result: &Result{Dispatcher: "jsq", SLOAttainment: 0.4}},
		{Seed: 2, Result: &Result{Dispatcher: "jsq", SLOAttainment: 0.6}},
	}
	if got := Aggregate(runs).SLOAttainment; math.Abs(got-0.5) > 1e-15 {
		t.Errorf("aggregate attainment = %v, want 0.5", got)
	}
}
