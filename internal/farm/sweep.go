package farm

import (
	"context"
	"math"

	"symbiosched/internal/metrics"
	"symbiosched/internal/numeric"
	"symbiosched/internal/runner"
	"symbiosched/internal/workload"
)

// Replication is one seed's farm result within a sweep.
type Replication struct {
	Seed uint64
	*Result
}

// SweepResult aggregates R independent replications of one farm
// configuration: every scalar metric is the mean over replications, folded
// in replication order so the aggregate is bit-identical at any
// parallelism level.
type SweepResult struct {
	Dispatcher   string
	Replications int
	// Means over replications.
	MeanTurnaround, P50Turnaround float64
	P95Turnaround, P99Turnaround  float64
	Utilisation, EmptyFraction    float64
	Throughput, MeanJobsInSystem  float64
	// SLOAttainment is the mean fraction of jobs meeting the Config.SLO
	// turnaround objective (zero when no SLO was set).
	SLOAttainment float64
	// Fault-injection aggregates: Availability and Goodput are means over
	// replications (Availability 1, Goodput the throughput's completed
	// subset even without faults); WastedWork is the mean wasted work;
	// Redispatches, Dropped and Parked are totals across replications.
	Availability, Goodput, WastedWork float64
	Redispatches, Dropped, Parked     int
	// TurnaroundStd is the sample standard deviation of the per-replication
	// mean turnaround — the statistical confidence the cluster story needs.
	TurnaroundStd float64
	// Runs holds the individual replications, in seed order.
	Runs []Replication
	// Metrics and EngineStats are the replications' snapshots merged in
	// replication order (nil unless the runs were instrumented). Like
	// the scalar means, they are bit-identical at any parallelism.
	Metrics     *metrics.Snapshot
	EngineStats *metrics.Snapshot
}

// ReplicationSeed derives the i-th replication's seed from a base seed.
// The derivation depends only on (base, i), never on a shared RNG, so
// replications are independent of execution order. Callers flattening a
// larger grid through internal/runner (e.g. exp.Farm's dispatchers x
// loads x reps sweep) use it to give every grid item its stream.
func ReplicationSeed(base uint64, i int) uint64 {
	return base ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
}

// Aggregate folds replications into a SweepResult in slice order, so the
// aggregate is bit-identical however the runs were scheduled.
func Aggregate(runs []Replication) *SweepResult {
	out := &SweepResult{Replications: len(runs), Runs: runs}
	var turn, p50, p95, p99, util, empty, tp, pop, slo, avail, good, waste, turnSq numeric.KahanSum
	for _, r := range runs {
		out.Dispatcher = r.Dispatcher
		if r.Metrics != nil {
			if out.Metrics == nil {
				out.Metrics = &metrics.Snapshot{}
			}
			out.Metrics.Merge(r.Metrics)
		}
		if r.EngineStats != nil {
			if out.EngineStats == nil {
				out.EngineStats = &metrics.Snapshot{}
			}
			out.EngineStats.Merge(r.EngineStats)
		}
		turn.Add(r.MeanTurnaround)
		p50.Add(r.P50Turnaround)
		p95.Add(r.P95Turnaround)
		p99.Add(r.P99Turnaround)
		util.Add(r.Utilisation)
		empty.Add(r.EmptyFraction)
		tp.Add(r.Throughput)
		pop.Add(r.MeanJobsInSystem)
		slo.Add(r.SLOAttainment)
		avail.Add(r.Availability)
		good.Add(r.Goodput)
		waste.Add(r.WastedWork)
		out.Redispatches += r.Redispatches
		out.Dropped += r.Dropped
		out.Parked += r.Parked
	}
	n := float64(len(runs))
	if n == 0 {
		return out
	}
	out.MeanTurnaround = turn.Value() / n
	out.P50Turnaround = p50.Value() / n
	out.P95Turnaround = p95.Value() / n
	out.P99Turnaround = p99.Value() / n
	out.Utilisation = util.Value() / n
	out.EmptyFraction = empty.Value() / n
	out.Throughput = tp.Value() / n
	out.MeanJobsInSystem = pop.Value() / n
	out.SLOAttainment = slo.Value() / n
	out.Availability = avail.Value() / n
	out.Goodput = good.Value() / n
	out.WastedWork = waste.Value() / n
	if len(runs) > 1 {
		for _, r := range runs {
			d := r.MeanTurnaround - out.MeanTurnaround
			turnSq.Add(d * d)
		}
		out.TurnaroundStd = math.Sqrt(turnSq.Value() / float64(len(runs)-1))
	}
	return out
}

// Replicate runs one replication of the farm configuration with the i-th
// seed derived from cfg.Seed — the unit of work grid sweeps fan out.
func Replicate(specs []ServerSpec, disp string, w workload.Workload, cfg Config, i int) (Replication, error) {
	d, err := NewDispatcher(disp)
	if err != nil {
		return Replication{}, err
	}
	rcfg := cfg.withDefaults()
	rcfg.Seed = ReplicationSeed(rcfg.Seed, i)
	res, err := Simulate(specs, d, w, rcfg)
	if err != nil {
		return Replication{}, err
	}
	return Replication{Seed: rcfg.Seed, Result: res}, nil
}

// ReplicateSharded is Replicate on the sharded engine: the same
// dispatcher construction and per-replication seed derivation, executed
// by SimulateSharded under sc. Since the sharded engine's output is
// byte-identical at any ShardConfig, a sharded replication differs from
// its serial twin only by the engines' float-advance partitioning.
func ReplicateSharded(specs []ServerSpec, disp string, w workload.Workload, cfg Config, sc ShardConfig, i int) (Replication, error) {
	d, err := NewDispatcher(disp)
	if err != nil {
		return Replication{}, err
	}
	rcfg := cfg.withDefaults()
	rcfg.Seed = ReplicationSeed(rcfg.Seed, i)
	res, err := SimulateSharded(specs, d, w, rcfg, sc)
	if err != nil {
		return Replication{}, err
	}
	return Replication{Seed: rcfg.Seed, Result: res}, nil
}

// Sweep runs reps independent replications of the farm configuration
// (specs, dispatcher named disp, workload w, cfg with per-replication
// seeds derived from cfg.Seed) through the shared runner engine and
// aggregates them in index order.
func Sweep(ctx context.Context, rc runner.Config, specs []ServerSpec, disp string, w workload.Workload, cfg Config, reps int) (*SweepResult, error) {
	if reps <= 0 {
		reps = 1
	}
	runs, err := runner.Map(ctx, rc, reps, func(_ context.Context, i int) (Replication, error) {
		return Replicate(specs, disp, w, cfg, i)
	})
	if err != nil {
		return nil, err
	}
	return Aggregate(runs), nil
}
