package farm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
)

// Dispatcher routes each arriving job to one server. Pick runs at the
// job's arrival event and may inspect every server's queue length, table
// and currently running coschedule; rng is the dispatch stream (shared by
// no other component, so randomised policies stay deterministic per seed).
// Implementations must be deterministic given (job, server states, rng).
//
// Under fault injection servers can be out of service (Server.Up
// reports false): every policy must skip them — graceful degradation to
// the up-set. up is the number of in-service servers; the engines pass
// len(servers) when faults are disabled and never call Pick with
// up == 0 (an all-down farm parks arrivals instead of dispatching).
// With every server up the policies draw and pick bit-identically to
// the pre-fault dispatchers.
type Dispatcher interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the index of the destination (in-service) server.
	Pick(j *sched.Job, servers []*eventsim.Server, up int, rng *stats.RNG) int
}

// Random routes each job to a uniformly random up server, by rejection
// sampling over the full index range (with every server up the first
// draw always lands, so the stream is the historical single Intn).
type Random struct{}

// Name implements Dispatcher.
func (Random) Name() string { return "random" }

// Pick implements Dispatcher.
func (Random) Pick(_ *sched.Job, servers []*eventsim.Server, _ int, rng *stats.RNG) int {
	for {
		i := rng.Intn(len(servers))
		if servers[i].Up() {
			return i
		}
	}
}

// RoundRobin cycles through the servers in index order, passing over
// down servers (the cursor still advances past them, so a repaired
// server rejoins the rotation in its place).
type RoundRobin struct{ next int }

// Name implements Dispatcher.
func (*RoundRobin) Name() string { return "rr" }

// Pick implements Dispatcher.
func (d *RoundRobin) Pick(_ *sched.Job, servers []*eventsim.Server, _ int, _ *stats.RNG) int {
	for range servers {
		i := d.next % len(servers)
		d.next = (i + 1) % len(servers)
		if servers[i].Up() {
			return i
		}
	}
	return -1 // unreachable: the engines never Pick with up == 0
}

// JoinShortestQueue routes each job to the server with the fewest jobs in
// system; ties go to the lowest index.
type JoinShortestQueue struct{}

// Name implements Dispatcher.
func (JoinShortestQueue) Name() string { return "jsq" }

// Pick implements Dispatcher.
func (JoinShortestQueue) Pick(_ *sched.Job, servers []*eventsim.Server, _ int, _ *stats.RNG) int {
	best, bestLen := -1, 0
	for i, sv := range servers {
		if !sv.Up() {
			continue
		}
		if n := sv.JobsInSystem(); best < 0 || n < bestLen {
			best, bestLen = i, n
		}
	}
	return best
}

// LeastInterference is the symbiosis-aware policy: among servers with a
// free context it probes each server's rate source — the oracle table,
// or the learned estimator when the server runs online — for the marginal
// instantaneous throughput of adding the arriving job next to the jobs
// already running there — InstTP(running + job) - InstTP(running), the
// rate the farm actually gains — and picks the server where the job
// interferes least (an idle server scores the job's solo rate, WIPC 1).
// When every server is saturated it falls back to the shortest queue.
// Ties go to the lowest index, keeping the policy deterministic.
//
// The probe goes through eventsim.Server.MarginalInstTP, which computes
// exactly the score above and caches it per (running coschedule, rate
// epoch) in server-owned scratch — so a Pick allocates nothing and, at
// serving rates of one decision per arrival, unchanged servers answer
// from cache instead of re-walking the rate source.
type LeastInterference struct{}

// Name implements Dispatcher.
func (*LeastInterference) Name() string { return "li" }

// Pick implements Dispatcher.
func (*LeastInterference) Pick(j *sched.Job, servers []*eventsim.Server, up int, rng *stats.RNG) int {
	best, bestGain := -1, math.Inf(-1)
	for i, sv := range servers {
		if !sv.Up() || sv.JobsInSystem() >= sv.K() {
			continue
		}
		if gain := sv.MarginalInstTP(j.Type); gain > bestGain+1e-12 {
			best, bestGain = i, gain
		}
	}
	if best >= 0 {
		return best
	}
	// Every up server saturated: shortest queue over the up-set.
	return JoinShortestQueue{}.Pick(j, servers, up, rng)
}

// PowerOfD is the supermarket-model dispatcher: per arrival it probes D
// seeded-random distinct servers and places the job on the probed server
// where it interferes least, by exactly the marginal-InstTP score
// LeastInterference uses. It interpolates between the farm's extremes:
//
//   - D = 1 draws one uniform server index — bit-identical to Random
//     (same single Intn draw from the same dispatch stream).
//   - D >= N delegates to LeastInterference verbatim — bit-identical to
//     li (no RNG draw, same full probe in server index order).
//
// Probe sets are drawn from the dispatch stream by rejection sampling
// and kept sorted ascending, so ties inside the probe set resolve to the
// lowest server index, like li. When every probed server is saturated
// the job joins the shortest queue within the probe set — the supermarket
// model never looks beyond its sample.
//
// Under fault injection probes re-draw from the up-set (a down server
// rejects like a duplicate) and the probe count clamps to the number of
// up servers, so pd degrades to sampling among whatever is in service.
// The equivalences above hold verbatim while every server is up.
type PowerOfD struct {
	D int

	probes []int             // sorted probe-set scratch
	li     LeastInterference // shared full-probe path for d >= N
}

// norm returns the effective probe count: D clamped up to 1, so a
// zero-valued PowerOfD behaves — and reports itself — as pd1. Name and
// Pick both go through it, keeping the label and the behaviour in sync.
func (p *PowerOfD) norm() int { return max(p.D, 1) }

// Name implements Dispatcher.
func (p *PowerOfD) Name() string { return fmt.Sprintf("pd%d", p.norm()) }

// sample fills the probe scratch with d distinct uniform up-server
// indices, sorted ascending. Rejection sampling (down servers and
// duplicates redraw alike) keeps the d = 1 stream equal to Random's and
// stays O(d^2) per arrival for d << n; with every server up it is the
// historical distinct-index sampler draw for draw.
func (p *PowerOfD) sample(d int, servers []*eventsim.Server, rng *stats.RNG) []int {
	p.probes = p.probes[:0]
	for len(p.probes) < d {
		c := rng.Intn(len(servers))
		if !servers[c].Up() {
			continue // down: re-draw the probe from the up-set
		}
		at := 0
		for at < len(p.probes) && p.probes[at] < c {
			at++
		}
		if at < len(p.probes) && p.probes[at] == c {
			continue // duplicate: redraw
		}
		p.probes = append(p.probes, 0)
		copy(p.probes[at+1:], p.probes[at:])
		p.probes[at] = c
	}
	return p.probes
}

// Pick implements Dispatcher.
func (p *PowerOfD) Pick(j *sched.Job, servers []*eventsim.Server, up int, rng *stats.RNG) int {
	d := p.norm()
	if d > up {
		d = up // can't probe more distinct up servers than exist
	}
	if d >= len(servers) {
		return p.li.Pick(j, servers, up, rng)
	}
	probes := p.sample(d, servers, rng)
	best, bestGain := -1, math.Inf(-1)
	for _, i := range probes {
		sv := servers[i]
		if sv.JobsInSystem() >= sv.K() {
			continue
		}
		if gain := sv.MarginalInstTP(j.Type); gain > bestGain+1e-12 {
			best, bestGain = i, gain
		}
	}
	if best >= 0 {
		return best
	}
	// Every probed server is saturated: shortest queue within the probe
	// set; probes are sorted, so ties go to the lowest index.
	best, bestLen := probes[0], servers[probes[0]].JobsInSystem()
	for _, i := range probes[1:] {
		if n := servers[i].JobsInSystem(); n < bestLen {
			best, bestLen = i, n
		}
	}
	return best
}

// DispatcherNames lists the built-in policies in presentation order.
// The power-of-d family is named separately ("pd", "pd3", ...) so the
// default list — and every golden output swept over it — is stable.
var DispatcherNames = []string{"random", "rr", "jsq", "li"}

// NewDispatcher builds a fresh dispatcher by name. Stateful policies
// (round-robin, power-of-d scratch) must not be shared across
// simulations, so sweeps call this once per run.
func NewDispatcher(name string) (Dispatcher, error) {
	switch name {
	case "random":
		return Random{}, nil
	case "rr":
		return &RoundRobin{}, nil
	case "jsq":
		return JoinShortestQueue{}, nil
	case "li":
		return &LeastInterference{}, nil
	default:
		if rest, ok := strings.CutPrefix(name, "pd"); ok {
			d := 2
			if rest != "" {
				v, err := strconv.Atoi(rest)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("farm: bad probe count in dispatcher %q (want pd or pd<d> with d >= 1)", name)
				}
				d = v
			}
			return &PowerOfD{D: d}, nil
		}
		return nil, fmt.Errorf("farm: unknown dispatcher %q (want one of %s, or pd[<d>])",
			name, strings.Join(DispatcherNames, ", "))
	}
}
