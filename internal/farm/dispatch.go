package farm

import (
	"fmt"
	"math"
	"strings"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// Dispatcher routes each arriving job to one server. Pick runs at the
// job's arrival event and may inspect every server's queue length, table
// and currently running coschedule; rng is the dispatch stream (shared by
// no other component, so randomised policies stay deterministic per seed).
// Implementations must be deterministic given (job, server states, rng).
type Dispatcher interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the index of the destination server.
	Pick(j *sched.Job, servers []*eventsim.Server, rng *stats.RNG) int
}

// Random routes each job to a uniformly random server.
type Random struct{}

// Name implements Dispatcher.
func (Random) Name() string { return "random" }

// Pick implements Dispatcher.
func (Random) Pick(_ *sched.Job, servers []*eventsim.Server, rng *stats.RNG) int {
	return rng.Intn(len(servers))
}

// RoundRobin cycles through the servers in index order.
type RoundRobin struct{ next int }

// Name implements Dispatcher.
func (*RoundRobin) Name() string { return "rr" }

// Pick implements Dispatcher.
func (d *RoundRobin) Pick(_ *sched.Job, servers []*eventsim.Server, _ *stats.RNG) int {
	i := d.next % len(servers)
	d.next = (i + 1) % len(servers)
	return i
}

// JoinShortestQueue routes each job to the server with the fewest jobs in
// system; ties go to the lowest index.
type JoinShortestQueue struct{}

// Name implements Dispatcher.
func (JoinShortestQueue) Name() string { return "jsq" }

// Pick implements Dispatcher.
func (JoinShortestQueue) Pick(_ *sched.Job, servers []*eventsim.Server, _ *stats.RNG) int {
	best, bestLen := 0, servers[0].JobsInSystem()
	for i := 1; i < len(servers); i++ {
		if n := servers[i].JobsInSystem(); n < bestLen {
			best, bestLen = i, n
		}
	}
	return best
}

// LeastInterference is the symbiosis-aware policy: among servers with a
// free context it probes each server's rate source — the oracle table,
// or the learned estimator when the server runs online — for the marginal
// instantaneous throughput of adding the arriving job next to the jobs
// already running there — InstTP(running + job) - InstTP(running), the
// rate the farm actually gains — and picks the server where the job
// interferes least (an idle server scores the job's solo rate, WIPC 1).
// When every server is saturated it falls back to the shortest queue.
// Ties go to the lowest index, keeping the policy deterministic.
type LeastInterference struct{}

// Name implements Dispatcher.
func (LeastInterference) Name() string { return "li" }

// Pick implements Dispatcher.
func (LeastInterference) Pick(j *sched.Job, servers []*eventsim.Server, rng *stats.RNG) int {
	best, bestGain := -1, math.Inf(-1)
	for i, sv := range servers {
		if sv.JobsInSystem() >= sv.K() {
			continue
		}
		running := sv.Running()
		cand := make(workload.Coschedule, 0, len(running)+1)
		cand = append(cand, running...)
		cand = append(cand, j.Type)
		gain := sv.Rates().InstTP(workload.NewCoschedule(cand...))
		if len(running) > 0 {
			gain -= sv.Rates().InstTP(running)
		}
		if gain > bestGain+1e-12 {
			best, bestGain = i, gain
		}
	}
	if best >= 0 {
		return best
	}
	return JoinShortestQueue{}.Pick(j, servers, rng)
}

// DispatcherNames lists the built-in policies in presentation order.
var DispatcherNames = []string{"random", "rr", "jsq", "li"}

// NewDispatcher builds a fresh dispatcher by name. Stateful policies
// (round-robin) must not be shared across simulations, so sweeps call
// this once per run.
func NewDispatcher(name string) (Dispatcher, error) {
	switch name {
	case "random":
		return Random{}, nil
	case "rr":
		return &RoundRobin{}, nil
	case "jsq":
		return JoinShortestQueue{}, nil
	case "li":
		return LeastInterference{}, nil
	default:
		return nil, fmt.Errorf("farm: unknown dispatcher %q (want one of %s)",
			name, strings.Join(DispatcherNames, ", "))
	}
}
