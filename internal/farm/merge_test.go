package farm

import (
	"math/rand"
	"testing"

	"symbiosched/internal/eventsim"
)

// mergeCase builds k completion streams with tie-heavy timestamps: times
// are drawn from a coarse 1/8 grid so cross-shard ties are the norm, and
// each stream is generated directly in (T, local server) order the way a
// Group emits it. gbase is strictly increasing with random shard widths.
func mergeCase(rng *rand.Rand, k, maxLen int) (lists [][]eventsim.Completion, gbase []int) {
	lists = make([][]eventsim.Completion, k)
	gbase = make([]int, k)
	next := 0
	for s := 0; s < k; s++ {
		gbase[s] = next
		width := 1 + rng.Intn(4)
		next += width
		n := rng.Intn(maxLen + 1)
		t := float64(rng.Intn(4)) / 8
		for e := 0; e < n; e++ {
			// Nondecreasing times; on equal times the local index must
			// increase, matching the (time, server index) order AdvanceTo
			// produces. Start a fresh index run whenever time advances.
			var srv int
			if e > 0 && lists[s][e-1].T == t {
				srv = lists[s][e-1].Server + 1
				if srv >= width {
					t += float64(1+rng.Intn(8)) / 8
					srv = rng.Intn(width)
				}
			} else {
				srv = rng.Intn(width)
			}
			lists[s] = append(lists[s], eventsim.Completion{T: t, Server: srv})
			if rng.Intn(3) == 0 {
				t += float64(rng.Intn(16)) / 8
			}
		}
	}
	return lists, gbase
}

func mergeKey(c eventsim.Completion, gbase int) (float64, int) {
	return c.T, gbase + c.Server
}

// TestLoserTreeMergeDirected walks the tree through every small k,
// including the degenerate single-stream and all-empty shapes, against
// the scan reference.
func TestLoserTreeMergeDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m slabMerger
	for k := 1; k <= 12; k++ {
		for trial := 0; trial < 50; trial++ {
			lists, gbase := mergeCase(rng, k, 6)
			var want []eventsim.Completion
			pos := make([]int, k)
			mergeScanReference(lists, gbase, pos, func(c eventsim.Completion) {
				want = append(want, c)
			})
			m.reset(lists, gbase)
			for i, w := range want {
				c, ok := m.next()
				if !ok {
					t.Fatalf("k=%d trial=%d: tree exhausted at %d of %d", k, trial, i, len(want))
				}
				if c != w {
					wt, wg := mergeKey(w, 0)
					t.Fatalf("k=%d trial=%d: emission %d: tree %+v vs scan %+v (t=%v g=%v)",
						k, trial, i, c, w, wt, wg)
				}
			}
			if c, ok := m.next(); ok {
				t.Fatalf("k=%d trial=%d: tree emitted extra %+v", k, trial, c)
			}
		}
	}
}

// TestLoserTreeMergeReuse pins the scratch-reuse contract: one merger
// re-reset across differently sized stream sets must stay exact — the
// slab loop resets it every slab with whatever shard subset is active.
func TestLoserTreeMergeReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var m slabMerger
	for _, k := range []int{8, 2, 13, 1, 5} {
		lists, gbase := mergeCase(rng, k, 10)
		var want, got []eventsim.Completion
		pos := make([]int, k)
		mergeScanReference(lists, gbase, pos, func(c eventsim.Completion) { want = append(want, c) })
		m.reset(lists, gbase)
		for {
			c, ok := m.next()
			if !ok {
				break
			}
			got = append(got, c)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d emissions, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: emission %d: %+v vs %+v", k, i, got[i], want[i])
			}
		}
	}
}

// FuzzLoserTreeMerge drives random shard counts and tie-heavy
// timestamps through the loser tree and demands index-identical
// emission order against the verbatim pre-tree linear scan.
func FuzzLoserTreeMerge(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(4))
	f.Add(uint64(7), uint8(64), uint8(3))
	f.Add(uint64(42), uint8(1), uint8(9))
	f.Add(uint64(9000), uint8(17), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, kRaw, maxLen uint8) {
		k := int(kRaw%96) + 1
		rng := rand.New(rand.NewSource(int64(seed)))
		lists, gbase := mergeCase(rng, k, int(maxLen%12))
		var want []eventsim.Completion
		pos := make([]int, k)
		mergeScanReference(lists, gbase, pos, func(c eventsim.Completion) { want = append(want, c) })
		var m slabMerger
		m.reset(lists, gbase)
		for i, w := range want {
			c, ok := m.next()
			if !ok {
				t.Fatalf("tree exhausted at %d of %d", i, len(want))
			}
			if c != w {
				t.Fatalf("emission %d: tree %+v vs scan %+v", i, c, w)
			}
		}
		if c, ok := m.next(); ok {
			t.Fatalf("tree emitted extra %+v", c)
		}
	})
}
