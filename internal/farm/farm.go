// Package farm simulates a farm of symbiosis-aware servers behind one
// dispatcher — the cluster-scale extension of the paper's single-server
// Section VI study. A single Poisson stream of jobs arrives at the farm; a
// pluggable Dispatcher immediately routes each job to one of N (possibly
// heterogeneous) servers; each server runs its own scheduler over its own
// performance table via the per-server stepping primitives exported by
// internal/eventsim.
//
// The farm multiplexes all servers on one deterministic clock: every event
// (the globally earliest completion, or the next arrival) advances every
// server by the same dt, and servers are visited in index order — no map
// iteration, no goroutines — so a run is bit-reproducible from its seed.
// Replication sweeps run through internal/runner with index-ordered
// reduction, keeping aggregate results bit-identical at any parallelism.
//
// With one server the farm event loop reduces exactly to the single-server
// experiments: Simulate over a farm of one reproduces eventsim.Latency bit
// for bit (same RNG streams, same event arithmetic), which is pinned by a
// test. With interference disabled (perfdb.UniformModel) and exponential
// sizes it reduces to an M/M/K queue and is cross-validated against the
// Erlang-C analytics in internal/queueing.
package farm

import (
	"fmt"
	"math"
	"sort"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/fault"
	"symbiosched/internal/metrics"
	"symbiosched/internal/numeric"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// ServerSpec describes one server of the farm: its ground-truth
// performance table plus factories for its scheduler and (optionally) its
// online rate estimator. The factories run once per simulation so that
// stateful schedulers (MAXTP) and estimators never leak state across runs
// or servers.
type ServerSpec struct {
	Table *perfdb.Table
	// Sched builds the server's scheduler over the rate source rs — the
	// oracle Table itself unless Estimator is set, in which case rs is the
	// freshly built estimator and the scheduler decides over learned rates.
	Sched func(rs online.RateSource) (sched.Scheduler, error)
	// Estimator, when set, builds a fresh online estimator per simulation.
	// The server feeds it ground-truth interval measurements and exposes
	// it to symbiosis-aware dispatchers in place of the oracle table. The
	// seed is derived by Simulate from the run's seed and the server
	// index, so replications learn on independent streams.
	Estimator func(seed uint64) (online.Estimator, error)
}

// Phase is one piece of a piecewise-constant arrival-rate schedule: the
// Poisson rate Rate applies for Duration simulated time units.
type Phase struct {
	Duration float64
	Rate     float64
}

// Config parameterises one farm simulation. The fields mirror
// eventsim.LatencyConfig; Lambda is the total arrival rate offered to the
// whole farm.
type Config struct {
	// Lambda is the Poisson arrival rate to the farm in jobs per time unit.
	Lambda float64
	// Schedule, when non-empty, makes the arrival rate time-varying:
	// the phases apply in order from time zero and the schedule repeats
	// cyclically, replacing the constant Lambda (which then only has to
	// be positive and serves as the nominal rate in reports). Phase
	// durations must be positive; rates must be non-negative with at
	// least one positive. Arrivals are generated phase by phase with a
	// fresh exponential draw at every phase boundary — valid for Poisson
	// streams by memorylessness, and deterministic per seed.
	Schedule []Phase
	// SLO, when positive, is the turnaround-time service-level objective:
	// Result.SLOAttainment reports the fraction of post-warmup jobs whose
	// turnaround is at most SLO.
	SLO float64
	// Jobs is the number of jobs to complete (default 20_000).
	Jobs int
	// Warmup jobs are excluded from the turnaround statistics
	// (default Jobs/10).
	Warmup int
	// JobSize is the mean work per job (default 1).
	JobSize float64
	// SizeShape selects the job-size distribution: 0 deterministic,
	// 1 exponential, k >= 2 Erlang-k.
	SizeShape int
	// Seed drives arrivals, job types/sizes and randomised dispatchers
	// (default 1). Arrival and job streams are seeded exactly as
	// eventsim.Latency seeds them; the dispatcher draws from an
	// independent third stream so that all dispatch policies see the
	// same arrival process (common random numbers).
	Seed uint64
	// Faults, when enabled (MTBF > 0), injects deterministic server
	// failure/repair events into the run (internal/fault): crashed
	// servers evict their jobs under Faults.Checkpoint, victims re-enter
	// through the retry policy, dispatchers degrade to the up-set, and
	// Result grows the availability/goodput/retry statistics. The fault
	// streams are seeded per server index from Seed, so the trajectory is
	// common-random-numbers comparable across dispatchers and policies.
	// The zero value disables injection and reproduces the fault-free
	// engines byte-identically.
	Faults fault.Config
	// Metrics, when set, instruments the run (internal/metrics): server
	// occupancy and queue integrals, scheduler memo/prune counters,
	// estimator observation counts, dispatch picks and the jobs-in-system
	// series land in Result.Metrics; engine execution stats in
	// Result.EngineStats. Instruments only observe — enabling them never
	// changes a simulation's Result (pinned by test).
	Metrics bool
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 20_000
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Jobs / 10
	}
	if c.JobSize <= 0 {
		c.JobSize = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ServerStats is one server's share of a farm result.
type ServerStats struct {
	// Name is the server's table name plus scheduler name.
	Name string
	// Dispatched is the number of jobs the dispatcher routed here.
	Dispatched int
	// Utilisation is the time-averaged number of busy contexts (0..K).
	Utilisation float64
	// EmptyFraction is the fraction of time with zero jobs at this server.
	EmptyFraction float64
	// WorkDone is the completed work in WIPC time units.
	WorkDone float64
}

// Result summarises one farm simulation.
type Result struct {
	// Dispatcher and Servers identify the configuration.
	Dispatcher string
	Servers    int
	// MeanTurnaround and the P50/P95/P99 quantiles summarise the
	// post-warmup turnaround distribution (the tail quantiles are the
	// latency-SLO view of the same runs).
	MeanTurnaround float64
	P50Turnaround  float64
	P95Turnaround  float64
	P99Turnaround  float64
	// Utilisation is farm-wide busy contexts divided by total contexts
	// (a fraction in [0, 1]).
	Utilisation float64
	// EmptyFraction is the mean over servers of the per-server empty
	// fraction.
	EmptyFraction float64
	// Throughput is completed work divided by elapsed time, farm-wide.
	Throughput float64
	// SLOAttainment is the fraction of post-warmup jobs meeting the
	// Config.SLO turnaround objective (zero when no SLO is set).
	SLOAttainment float64
	// Completed counts completed jobs, Counted the post-warmup subset.
	Completed, Counted int
	// Elapsed is the simulated time span.
	Elapsed float64
	// Availability is 1 minus the fraction of server-time spent down
	// (exactly 1 when fault injection is disabled).
	Availability float64
	// Goodput is the completed jobs' total size divided by elapsed time:
	// work that reached a completion, counted once however often it was
	// redone. Throughput minus Goodput is the in-flight and wasted
	// residue.
	Goodput float64
	// WastedWork is the total work forfeited to crashes: progress lost to
	// the restart checkpoint policy plus the surviving progress of
	// dropped jobs.
	WastedWork float64
	// Redispatches counts crash victims placed again; Dropped counts
	// jobs abandoned past the retry cap (they count against Jobs but
	// never complete); Parked counts jobs that arrived while every
	// server was down and waited for a repair.
	Redispatches, Dropped, Parked int
	// RetryP50 and RetryP99 are quantiles of the counted jobs' crash
	// counts (zero without faults: no job ever retries).
	RetryP50, RetryP99 float64
	// MeanJobsInSystem is the farm-wide mean population by Little's law
	// over the counted window (approximate).
	MeanJobsInSystem float64
	// PerServer holds one entry per server, in server order.
	PerServer []ServerStats
	// Metrics is the run's merged instrumentation snapshot (nil unless
	// Config.Metrics): dispatch instruments first, then every server's,
	// merged in server index order. Like the Result scalars it is
	// byte-identical at any ShardConfig — pinned by test.
	Metrics *metrics.Snapshot
	// EngineStats holds engine execution counters (serial event count;
	// sharded slab, shard-advance and merge counts). They legitimately
	// vary with ShardConfig, which is why they are kept out of Metrics.
	EngineStats *metrics.Snapshot
}

// validate checks the (specs, workload, config) triple shared by the
// serial and sharded entry points. cfg must already carry its defaults.
func validate(specs []ServerSpec, w workload.Workload, cfg Config) error {
	if len(specs) == 0 {
		return fmt.Errorf("farm: no servers")
	}
	if cfg.Lambda <= 0 {
		return fmt.Errorf("farm: non-positive arrival rate %v", cfg.Lambda)
	}
	if len(cfg.Schedule) > 0 {
		positive := false
		for i, ph := range cfg.Schedule {
			if ph.Duration <= 0 {
				return fmt.Errorf("farm: schedule phase %d has non-positive duration %v", i, ph.Duration)
			}
			if ph.Rate < 0 {
				return fmt.Errorf("farm: schedule phase %d has negative rate %v", i, ph.Rate)
			}
			if ph.Rate > 0 {
				positive = true
			}
		}
		if !positive {
			return fmt.Errorf("farm: schedule has no positive-rate phase")
		}
	}
	if len(w) == 0 {
		return fmt.Errorf("farm: empty workload")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return fmt.Errorf("farm: %w", err)
	}
	return nil
}

// buildServers constructs one fresh server per spec — scheduler,
// estimator wiring and all — and returns them with the farm's total
// context count. Both Simulate and SimulateSharded build their fleets
// here, so a server's construction (and its estimator's seed) never
// depends on the engine driving it.
func buildServers(specs []ServerSpec, w workload.Workload, cfg Config) ([]*eventsim.Server, int, error) {
	servers := make([]*eventsim.Server, len(specs))
	totalContexts := 0
	for i, sp := range specs {
		if sp.Table == nil || sp.Sched == nil {
			return nil, 0, fmt.Errorf("farm: server %d has no table or scheduler", i)
		}
		for _, b := range w {
			if b < 0 || b >= len(sp.Table.Suite()) {
				return nil, 0, fmt.Errorf("farm: job type %d outside server %d's %d-benchmark table", b, i, len(sp.Table.Suite()))
			}
		}
		rs := online.RateSource(sp.Table)
		var est online.Estimator
		if sp.Estimator != nil {
			var err error
			// cfg.Seed is already replication-specific (ReplicationSeed),
			// so (replication, server) pairs learn on independent streams.
			if est, err = sp.Estimator(cfg.Seed + uint64(i+1)*0x9e3779b97f4a7c15); err != nil {
				return nil, 0, fmt.Errorf("farm: server %d estimator: %w", i, err)
			}
			rs = est
		}
		s, err := sp.Sched(rs)
		if err != nil {
			return nil, 0, fmt.Errorf("farm: server %d scheduler: %w", i, err)
		}
		servers[i] = eventsim.NewServer(sp.Table, s)
		if est != nil {
			servers[i].SetRates(est)
			servers[i].SetObserver(est)
		}
		totalContexts += sp.Table.K()
	}
	return servers, totalContexts, nil
}

// Simulate runs one farm experiment: Poisson arrivals at cfg.Lambda over
// workload w, routed by d over fresh servers built from specs.
func Simulate(specs []ServerSpec, d Dispatcher, w workload.Workload, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(specs, w, cfg); err != nil {
		return nil, err
	}
	servers, totalContexts, err := buildServers(specs, w, cfg)
	if err != nil {
		return nil, err
	}
	var rm *runMetrics
	if cfg.Metrics {
		rm = newRunMetrics(servers)
	}

	// Three independent streams, so every dispatcher sees the same
	// arrival process: arrivals (as eventsim.Latency), job types/sizes
	// (as eventsim's job stream), dispatch decisions.
	arng := stats.NewRNG(cfg.Seed)
	drng := stats.NewRNG(cfg.Seed ^ 0xd1b54a32d192ed03)
	newJob := eventsim.NewJobStream(w, eventsim.LatencyConfig{
		Lambda:    cfg.Lambda,
		Jobs:      cfg.Jobs,
		Warmup:    cfg.Warmup,
		JobSize:   cfg.JobSize,
		SizeShape: cfg.SizeShape,
		Seed:      cfg.Seed,
	})

	nextArrivalAfter := arrivalStream(cfg, arng)
	var now float64
	nextArrival := nextArrivalAfter(0)
	arrivalsLeft := cfg.Jobs

	var turnaround, goodput numeric.KahanSum
	expected := cfg.Jobs - cfg.Warmup
	if expected < 0 {
		expected = 0 // Warmup >= Jobs: legal, just counts nothing
	}
	turnarounds := make([]float64, 0, expected)
	completed, counted := 0, 0
	fr := newFaultRun(cfg, len(servers))

	// Indexed min-heap over the servers' cached next-completion times:
	// the globally earliest completion is a peek instead of a scan over
	// every server, and only servers whose completion horizon moved pay a
	// sift. The heap's minimum is the exact minimum of the same cached
	// values the former scan compared, so event times are bit-identical.
	// (The serial loop keys the shared eventsim.TimeHeap by relative
	// time-to-completion deltas; the sharded engine keys its per-group
	// heaps by absolute times.)
	h := eventsim.NewTimeHeap(len(servers))

	dispatched := 0
	dispatch := func(j *sched.Job) error {
		up := len(servers)
		if fr != nil {
			// Re-issue the job's ID in dispatch order: a crash victim
			// re-entering a queue behind younger jobs would otherwise break
			// the schedulers' nondecreasing-ID arrival invariant. Without
			// faults no job is ever re-placed and this is the identity.
			j.ID = fr.seq
			fr.seq++
			if j.Retries > 0 {
				fr.redispatches++
				rm.redispatch()
			}
			up = fr.up
		}
		ti := d.Pick(j, servers, up, drng)
		if ti < 0 || ti >= len(servers) {
			return fmt.Errorf("farm: dispatcher %s picked server %d of %d", d.Name(), ti, len(servers))
		}
		servers[ti].Add(j)
		if err := servers[ti].Reschedule(); err != nil {
			return err
		}
		h.Update(ti, servers[ti].TimeToNextCompletion())
		dispatched++
		rm.pick(now, dispatched-completed)
		return nil
	}

	for completed+fr.droppedJobs() < cfg.Jobs {
		rm.event()
		// Globally earliest completion across servers, or the earliest
		// meta event — fault transition, retry re-arrival, fresh arrival,
		// ties in that priority order — whichever first.
		dt := h.Min()
		ev := evNone
		var evT float64
		consider := func(t float64, kind int) {
			if ev == evNone {
				// First candidate against the completion horizon: the
				// historical arrival form, so with faults disabled the
				// selection is bit-identical to the pre-fault engine.
				if now+dt >= t {
					dt, ev, evT = t-now, kind, t
				}
			} else if t < evT {
				// Later candidates compare absolute times, strict <: an
				// equal-time later kind loses to the earlier-declared kind.
				dt, ev, evT = t-now, kind, t
			}
		}
		if fr != nil {
			consider(fr.inj.Next(), evFault)
			consider(fr.rq.Next(), evRetry)
		}
		if arrivalsLeft > 0 {
			consider(nextArrival, evArrival)
		}
		if math.IsInf(dt, 1) {
			break // drained: nothing running, no events left
		}
		if dt < 0 {
			dt = 0
		}
		now += dt
		// Advance every server on the shared clock; completions and
		// rescheduling happen in server index order.
		for i, sv := range servers {
			done := sv.Advance(dt)
			for _, j := range done {
				completed++
				goodput.Add(j.Size)
				if completed > cfg.Warmup {
					tr := now - j.Arrival
					turnaround.Add(tr)
					turnarounds = append(turnarounds, tr)
					counted++
					if fr != nil {
						fr.retries = append(fr.retries, float64(j.Retries))
					}
				}
			}
			if len(done) > 0 {
				if err := sv.Reschedule(); err != nil {
					return nil, err
				}
			}
			h.Update(i, sv.TimeToNextCompletion())
		}
		if fr != nil && completed+fr.dropped >= cfg.Jobs {
			// The sweep finished the run at the meta event's instant: stop
			// before handling it so Elapsed and the fault counters agree
			// with the sharded engine at such ties.
			break
		}
		switch ev {
		case evFault:
			fe := fr.inj.Pop()
			sv := servers[fe.Server]
			if fe.Down {
				victims := sv.Fail()
				h.Update(fe.Server, sv.TimeToNextCompletion())
				// Stamp the retry backoffs off the injector's absolute event
				// time, not the accumulated clock: the sharded engine does
				// the same, so retry due times match it exactly.
				fr.crash(fe.T, victims, rm)
			} else {
				sv.Repair()
				fr.up++
				rm.repair()
				if b, ok := sv.Rates().(online.EpochBumper); ok {
					// The server was out of service: force decisions memoized
					// over its learner to be re-derived, not served stale.
					b.BumpEpoch()
				}
				// A server is back: drain the parked shelf FIFO through the
				// normal dispatch path at the repair's instant.
				for len(fr.parked) > 0 {
					j := fr.parked[0]
					copy(fr.parked, fr.parked[1:])
					fr.parked[len(fr.parked)-1] = nil
					fr.parked = fr.parked[:len(fr.parked)-1]
					if err := dispatch(j); err != nil {
						return nil, err
					}
				}
			}
		case evRetry:
			j := fr.rq.Pop()
			if fr.up == 0 {
				fr.park(j, rm)
			} else if err := dispatch(j); err != nil {
				return nil, err
			}
		case evArrival:
			j := newJob(now)
			if fr != nil && fr.up == 0 {
				fr.park(j, rm)
			} else if err := dispatch(j); err != nil {
				return nil, err
			}
			arrivalsLeft--
			if arrivalsLeft > 0 {
				nextArrival = nextArrivalAfter(now)
			}
		}
	}
	if now <= 0 {
		return nil, fmt.Errorf("farm: experiment completed no work")
	}
	return assembleResult(d, servers, totalContexts, cfg, now, completed, counted, turnaround, goodput, turnarounds, fr, rm), nil
}

// assembleResult folds the per-server integrals and the turnaround
// sample into a Result. It is shared by the serial and sharded engines:
// the same Kahan fold in the same server order over the same inputs.
func assembleResult(d Dispatcher, servers []*eventsim.Server, totalContexts int, cfg Config, now float64, completed, counted int, turnaround, goodput numeric.KahanSum, turnarounds []float64, fr *faultRun, rm *runMetrics) *Result {
	res := &Result{
		Dispatcher: d.Name(),
		Servers:    len(servers),
		Completed:  completed,
		Counted:    counted,
		Elapsed:    now,
		PerServer:  make([]ServerStats, len(servers)),
	}
	var busy, empty, work, downT numeric.KahanSum
	for i, sv := range servers {
		busy.Add(sv.BusyTime())
		empty.Add(sv.EmptyTime() / now)
		work.Add(sv.WorkDone())
		downT.Add(sv.DownTime())
		name := fmt.Sprintf("%s/%s", sv.Table().Name(), sv.Scheduler().Name())
		if rs := sv.Rates(); rs != online.RateSource(sv.Table()) {
			name += "+" + rs.Name()
		}
		res.PerServer[i] = ServerStats{
			Name:          name,
			Dispatched:    sv.Dispatched(),
			Utilisation:   sv.BusyTime() / now,
			EmptyFraction: sv.EmptyTime() / now,
			WorkDone:      sv.WorkDone(),
		}
	}
	res.Utilisation = busy.Value() / now / float64(totalContexts)
	res.EmptyFraction = empty.Value() / float64(len(servers))
	res.Throughput = work.Value() / now
	res.Availability = 1 - downT.Value()/(float64(len(servers))*now)
	res.Goodput = goodput.Value() / now
	if fr != nil {
		res.WastedWork = fr.wasted.Value()
		res.Redispatches = fr.redispatches
		res.Dropped = fr.dropped
		res.Parked = fr.parkedTotal
		if len(fr.retries) > 0 {
			sort.Float64s(fr.retries)
			res.RetryP50 = stats.SortedQuantile(fr.retries, 0.50)
			res.RetryP99 = stats.SortedQuantile(fr.retries, 0.99)
		}
	}
	if counted > 0 {
		res.MeanTurnaround = turnaround.Value() / float64(counted)
		sort.Float64s(turnarounds) // sort once for all three order statistics
		res.P50Turnaround = stats.SortedQuantile(turnarounds, 0.50)
		res.P95Turnaround = stats.SortedQuantile(turnarounds, 0.95)
		res.P99Turnaround = stats.SortedQuantile(turnarounds, 0.99)
		res.MeanJobsInSystem = res.MeanTurnaround * float64(counted) / now
		if cfg.SLO > 0 {
			// turnarounds is sorted: the attainment is the rank of the
			// first value beyond the objective.
			met := sort.Search(len(turnarounds), func(i int) bool { return turnarounds[i] > cfg.SLO })
			res.SLOAttainment = float64(met) / float64(counted)
		}
	}
	rm.finish(res)
	return res
}

// arrivalStream returns the next-arrival generator over the arrival RNG:
// with an empty schedule it is the constant-rate exponential draw —
// bit-identical to the historical fixed-Lambda path — otherwise it walks
// the cyclic piecewise-constant schedule from t. Within a phase the draw
// is exponential at the phase's rate; a draw that lands past the phase
// boundary is discarded and redrawn from the boundary at the next phase's
// rate, which preserves the Poisson law by memorylessness.
func arrivalStream(cfg Config, arng *stats.RNG) func(t float64) float64 {
	if len(cfg.Schedule) == 0 {
		return func(t float64) float64 { return t + arng.Exp(cfg.Lambda) }
	}
	cycle := 0.0
	for _, ph := range cfg.Schedule {
		cycle += ph.Duration
	}
	return func(t float64) float64 {
		for {
			// Locate the phase containing t; pos ∈ [0, cycle).
			pos := math.Mod(t, cycle)
			start := t - pos
			var rate, end float64
			acc := 0.0
			for _, ph := range cfg.Schedule {
				if pos < acc+ph.Duration {
					rate = ph.Rate
					end = start + acc + ph.Duration
					break
				}
				acc += ph.Duration
			}
			// Guard the restart against float stagnation: once t is large
			// relative to the cycle, (end - t) can round below one ulp and
			// end == t would spin forever.
			if end <= t {
				end = math.Nextafter(t, math.Inf(1))
			}
			if rate > 0 {
				if cand := t + arng.Exp(rate); cand <= end {
					return cand
				}
			}
			// No arrival in this phase (zero rate, or the draw crossed
			// the boundary): restart from the phase end. Progress is
			// guaranteed — end > t — and some phase has a positive rate.
			t = end
		}
	}
}
