package farm

import (
	"fmt"
	"math"
	"runtime"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/numeric"
	"symbiosched/internal/online"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// ShardConfig parameterises the sharded farm engine. Every field is a
// pure execution knob: SimulateSharded's Result is byte-identical for
// any combination of Shards, Workers and Slab — the engine's output
// depends only on (specs, dispatcher, workload, Config).
type ShardConfig struct {
	// Shards is the number of contiguous server partitions advanced
	// independently between synchronization points (default 8, clamped
	// to the server count).
	Shards int
	// Workers bounds the goroutines advancing shards within one slab
	// (default GOMAXPROCS). Workers <= 1 runs the slab phase inline.
	Workers int
	// Slab shapes the synchronization slabs in simulated time. A
	// positive finite value caps each slab's length; +Inf disables
	// capping, so slabs run arrival to arrival; 0 (and any negative
	// value) selects adaptive sizing, which steers the cap toward a
	// fixed events-per-slab budget estimated from the event stream
	// itself. Slab boundaries are execution artefacts — shorter slabs
	// only add synchronization points, never change results.
	Slab float64
}

func (sc ShardConfig) withDefaults(n int) ShardConfig {
	if sc.Shards <= 0 {
		sc.Shards = 8
	}
	if sc.Shards > n {
		sc.Shards = n
	}
	if sc.Workers <= 0 {
		sc.Workers = runtime.GOMAXPROCS(0)
	}
	if sc.Slab < 0 || math.IsNaN(sc.Slab) {
		sc.Slab = 0 // adaptive
	}
	return sc
}

// Adaptive slab sizing (ShardConfig.Slab == 0) steers the slab cap
// toward autoSlabTarget completions per slab, using an event-density
// estimate (completions per unit simulated time) accumulated from the
// deterministic event stream alone. The estimate never observes worker
// counts, shard counts or wall time, so the cap sequence — and with it
// every slab boundary — is a pure function of the simulation inputs;
// and since slab boundaries are unobservable, any cap sequence yields
// the byte-identical Result. autoSlabWindow bounds the accumulators:
// past that many events both are halved, an exponential window that
// tracks load shifts (bursts, troughs) instead of averaging them away.
const (
	autoSlabTarget = 1024.0
	autoSlabWindow = 8192.0
)

// SimulateSharded runs one farm experiment on the sharded engine: the
// servers are partitioned into contiguous shards, each wrapped in an
// eventsim.Group with lazy per-server clocks, and the shards advance in
// parallel to a common horizon per time slab. A slab's horizon is the
// next arrival (so every dispatch decision happens at its exact time,
// with every completion up to it already applied — the serial tie rule),
// optionally capped by sc.Slab.
//
// Determinism does not come from lockstep advancement but from three
// ordering rules (see DESIGN.md, "Time-slab determinism"): each server
// advances only at its own events, so its float arithmetic is a function
// of its own event times; each shard processes completions in (time,
// server index) order; and the coordinator merges shard completion lists
// back into one global (time, server index) order before folding the
// turnaround statistics. The Result is therefore byte-identical at any
// Shards/Workers/Slab setting. Against the serial Simulate the advance
// partitioning differs, so results agree only to float tolerance — the
// serial engine remains the golden reference for the lockstep contract.
//
// Complexity per event is O(log n_shard) instead of the serial engine's
// O(N) advance sweep, which is what makes 100k-server farms feasible.
// The coordination layer is built not to get in that path's way: slabs
// are fed to a persistent worker pool through an epoch barrier (no
// per-slab goroutines), completions merge through a loser tree (O(log k)
// per completion), idle shards sit in a next-event heap instead of being
// scanned every slab, and the steady-state slab loop allocates nothing.
func SimulateSharded(specs []ServerSpec, d Dispatcher, w workload.Workload, cfg Config, sc ShardConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(specs, w, cfg); err != nil {
		return nil, err
	}
	servers, totalContexts, err := buildServers(specs, w, cfg)
	if err != nil {
		return nil, err
	}
	sc = sc.withDefaults(len(servers))
	var rm *runMetrics
	if cfg.Metrics {
		rm = newRunMetrics(servers)
	}

	z := getShardScratch(sc.Shards, len(servers))
	defer z.release()

	// Contiguous near-equal partition; shardOf maps a global server index
	// to its shard, base to the shard's first global index.
	base, shardOf := z.base, z.shardOf
	for s := 0; s <= sc.Shards; s++ {
		base[s] = s * len(servers) / sc.Shards
	}
	groups := make([]*eventsim.Group, sc.Shards)
	for s := 0; s < sc.Shards; s++ {
		groups[s] = eventsim.NewGroup(servers[base[s]:base[s+1]])
		for i := base[s]; i < base[s+1]; i++ {
			shardOf[i] = s
		}
	}
	// sh tracks each shard's next pending event time — the dirty-set
	// replacing a per-slab scan over every group. Its keys are refreshed
	// at exactly the points a group's state can change: slab advances,
	// deliveries, failures and repairs.
	sh := z.events

	// The same three RNG streams, seeded identically to Simulate, so both
	// engines see the same arrival process and dispatch draws.
	arng := stats.NewRNG(cfg.Seed)
	drng := stats.NewRNG(cfg.Seed ^ 0xd1b54a32d192ed03)
	newJob := eventsim.NewJobStream(w, eventsim.LatencyConfig{
		Lambda:    cfg.Lambda,
		Jobs:      cfg.Jobs,
		Warmup:    cfg.Warmup,
		JobSize:   cfg.JobSize,
		SizeShape: cfg.SizeShape,
		Seed:      cfg.Seed,
	})
	nextArrivalAfter := arrivalStream(cfg, arng)
	// now is the observable event clock: the time of the last folded
	// completion or dispatched arrival. It becomes Result.Elapsed, so it
	// must never touch a slab boundary (a pure execution artefact) —
	// frontier tracks those separately.
	var now, frontier float64
	nextArrival := nextArrivalAfter(0)
	arrivalsLeft := cfg.Jobs
	dispatched := 0

	var turnaround, goodput numeric.KahanSum
	expected := cfg.Jobs - cfg.Warmup
	if expected < 0 {
		expected = 0
	}
	turnarounds := make([]float64, 0, expected)
	completed, counted := 0, 0
	fr := newFaultRun(cfg, len(servers))

	// fold counts one completion into the turnaround statistics. Callers
	// must deliver completions in global (time, server index) order.
	fold := func(c eventsim.Completion) {
		completed++
		goodput.Add(c.Job.Size)
		if completed > cfg.Warmup {
			tr := c.T - c.Job.Arrival
			turnaround.Add(tr)
			turnarounds = append(turnarounds, tr)
			counted++
			if fr != nil {
				fr.retries = append(fr.retries, float64(c.Job.Retries))
			}
		}
		if c.T > now {
			now = c.T
		}
	}

	// place routes one job — fresh arrival, retry re-arrival or park-drain
	// — at time t: the fault-run ID relabelling and up-set count, the
	// dispatch draw, delivery into the destination shard, and the fold of
	// any completions within the delivery epsilon (still in global time
	// order: the slab's merge already ran).
	place := func(t float64, j *sched.Job) error {
		up := len(servers)
		if fr != nil {
			j.ID = fr.seq
			fr.seq++
			if j.Retries > 0 {
				fr.redispatches++
				rm.redispatch()
			}
			up = fr.up
		}
		ti := d.Pick(j, servers, up, drng)
		if ti < 0 || ti >= len(servers) {
			return fmt.Errorf("farm: dispatcher %s picked server %d of %d", d.Name(), ti, len(servers))
		}
		s := shardOf[ti]
		done, err := groups[s].Deliver(t, ti-base[s], j)
		if err != nil {
			return err
		}
		for _, c := range done {
			fold(c)
		}
		sh.Update(s, groups[s].NextEvent())
		dispatched++
		rm.pick(t, dispatched-completed)
		return nil
	}

	// Per-slab scratch: the active shard list, each active shard's
	// completion list (group-owned scratch, consumed before the next call
	// into that group) and its error slot.
	active := z.active
	comps, errs := z.comps, z.errs

	// The slab phase runs on a persistent pool: Workers-1 helpers spawned
	// once, fed through an epoch barrier, claiming shards off a shared
	// cursor. Thin slabs (fewer active shards than poolMinShards — every
	// active shard carries at least one event, so the active count lower-
	// bounds the slab's work) skip the barrier and run inline; an
	// arrival-bound farm in flow balance spends almost all slabs there,
	// and waking helpers for one completion costs more than the advance.
	var slabHorizon float64
	runOne := func(s int) {
		comps[s], errs[s] = groups[s].AdvanceTo(slabHorizon)
	}
	// Workers is clamped to GOMAXPROCS: helpers beyond the runtime's
	// parallelism can never advance shards concurrently, they only add
	// wake-ups — the overhead that used to make workers=8 slower than
	// workers=1 on a single-core host. The clamp is an execution detail;
	// the Result is identical either way.
	var pool *slabPool
	if workers := min(sc.Workers, sc.Shards, runtime.GOMAXPROCS(0)); workers > 1 && sc.Shards >= poolMinShards {
		pool = newSlabPool(workers, runOne)
		defer pool.close()
	}

	// runSlab advances every active shard to the horizon and merges the
	// shard completion lists back into one global (time, server index)
	// stream through the loser tree. Shards are data-independent within a
	// slab, so execution order is free; determinism is restored by the
	// merge. slabEvents reports the completion count to the adaptive slab
	// sizing below.
	slabEvents := 0
	runSlab := func(horizon float64) error {
		slabEvents = 0
		if len(active) == 0 {
			return nil
		}
		slabHorizon = horizon
		if pool != nil && len(active) >= poolMinShards {
			pool.dispatch(active)
		} else {
			for _, s := range active {
				runOne(s)
			}
		}
		total := 0
		for _, s := range active {
			if errs[s] != nil {
				return errs[s]
			}
			total += len(comps[s])
		}
		slabEvents = total
		if rm != nil {
			rm.slab(len(active), total)
		}
		if len(active) == 1 {
			s := active[0]
			for i := range comps[s] {
				fold(comps[s][i])
			}
		} else {
			lists, gbase := z.lists[:0], z.gbase[:0]
			for _, s := range active {
				lists = append(lists, comps[s])
				gbase = append(gbase, base[s])
			}
			z.merger.reset(lists, gbase)
			for {
				c, ok := z.merger.next()
				if !ok {
					break
				}
				fold(c)
			}
		}
		for _, s := range active {
			sh.Update(s, groups[s].NextEvent())
		}
		return nil
	}

	autoSlab := sc.Slab == 0
	slabCap := sc.Slab
	if autoSlab {
		slabCap = math.Inf(1) // uncapped until the first density estimate
	}
	var estEvents, estSpan float64

	for completed+fr.droppedJobs() < cfg.Jobs {
		// Choose the slab horizon: the earliest meta event — fault
		// transition, retry re-arrival, fresh arrival, equal-time ties in
		// that priority order (strict < keeps the first-tried kind) —
		// optionally capped by the slab length. Empty capped slabs (no
		// completion before the cap) are skipped wholesale — slab
		// boundaries with no events are unobservable, so jumping to the
		// next event changes nothing.
		horizon := math.Inf(1)
		ev := evNone
		try := func(t float64, kind int) {
			if t < horizon {
				horizon, ev = t, kind
			}
		}
		if fr != nil {
			try(fr.inj.Next(), evFault)
			try(fr.rq.Next(), evRetry)
		}
		if arrivalsLeft > 0 {
			try(nextArrival, evArrival)
		}
		if slabCap > 0 && ev != evNone && frontier+slabCap < horizon {
			if e := sh.Min(); e <= frontier+slabCap {
				horizon, ev = frontier+slabCap, evNone
			} else if e < horizon {
				horizon, ev = e, evNone
			}
		}
		// Pop the shards with an event inside the slab off the next-event
		// heap; runSlab re-keys them after the advance. Idle shards are
		// never touched.
		active = active[:0]
		for {
			e := sh.Min()
			if math.IsInf(e, 1) || e > horizon {
				break
			}
			s := sh.MinIndex()
			active = append(active, s)
			sh.Update(s, math.Inf(1))
		}
		if ev == evNone && len(active) == 0 {
			break // drained: nothing running, no events left
		}
		if err := runSlab(horizon); err != nil {
			return nil, err
		}
		if autoSlab && !math.IsInf(horizon, 1) {
			if span := horizon - frontier; span > 0 {
				estSpan += span
				estEvents += float64(slabEvents)
				if estEvents > 0 {
					slabCap = autoSlabTarget * estSpan / estEvents
				}
				if estEvents >= autoSlabWindow {
					estEvents *= 0.5
					estSpan *= 0.5
				}
			}
		}
		if !math.IsInf(horizon, 1) && horizon > frontier {
			frontier = horizon
		}
		if fr != nil && completed+fr.dropped >= cfg.Jobs {
			// The slab finished the run at the meta event's instant: stop
			// before handling it so Elapsed and the fault counters agree
			// with the serial engine at such ties.
			break
		}
		switch ev {
		case evFault:
			fe := fr.inj.Pop()
			if fe.T > now {
				now = fe.T // the transition is an observable event
			}
			s := shardOf[fe.Server]
			if fe.Down {
				done, victims, err := groups[s].Fail(fe.T, fe.Server-base[s])
				if err != nil {
					return nil, err
				}
				for _, c := range done {
					fold(c)
				}
				sh.Update(s, groups[s].NextEvent())
				fr.crash(fe.T, victims, rm)
			} else {
				if err := groups[s].Repair(fe.T, fe.Server-base[s]); err != nil {
					return nil, err
				}
				sh.Update(s, groups[s].NextEvent())
				fr.up++
				rm.repair()
				if b, ok := servers[fe.Server].Rates().(online.EpochBumper); ok {
					// The server was out of service: force decisions memoized
					// over its learner to be re-derived, not served stale.
					b.BumpEpoch()
				}
				// A server is back: drain the parked shelf FIFO through the
				// normal dispatch path at the repair's instant.
				for len(fr.parked) > 0 {
					j := fr.parked[0]
					copy(fr.parked, fr.parked[1:])
					fr.parked[len(fr.parked)-1] = nil
					fr.parked = fr.parked[:len(fr.parked)-1]
					if err := place(fe.T, j); err != nil {
						return nil, err
					}
				}
			}
		case evRetry:
			if horizon > now {
				now = horizon
			}
			j := fr.rq.Pop()
			if fr.up == 0 {
				fr.park(j, rm)
			} else if err := place(horizon, j); err != nil {
				return nil, err
			}
		case evArrival:
			now = nextArrival
			j := newJob(now)
			if fr != nil && fr.up == 0 {
				fr.park(j, rm)
			} else if err := place(now, j); err != nil {
				return nil, err
			}
			arrivalsLeft--
			if arrivalsLeft > 0 {
				nextArrival = nextArrivalAfter(now)
			}
		}
	}
	if now <= 0 {
		return nil, fmt.Errorf("farm: experiment completed no work")
	}
	// Close every server's busy/empty/down integral at the common end time.
	for s, g := range groups {
		if err := g.SettleTo(now); err != nil {
			return nil, fmt.Errorf("farm: shard %d: %w", s, err)
		}
	}
	return assembleResult(d, servers, totalContexts, cfg, now, completed, counted, turnaround, goodput, turnarounds, fr, rm), nil
}
