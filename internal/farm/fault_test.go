package farm

import (
	"fmt"
	"runtime"
	"testing"

	"symbiosched/internal/fault"
	"symbiosched/internal/online"
	"symbiosched/internal/sched"
)

// faultCfg is the shared fault configuration of the integration tests:
// frequent failures (MTBF ~ tens of jobs' worth of time) with quick
// repairs, a modest retry cap and a visible backoff.
func faultCfg() fault.Config {
	return fault.Config{MTBF: 40, MTTR: 3, MaxRetries: 5, RetryDelay: 0.25, Checkpoint: fault.Restart}
}

// TestFaultDisabledReproducesBaseline pins the zero-cost contract: a
// fault config with MTBF 0 — whatever the other fields say — is
// disabled, and both engines reproduce the no-fault run byte for byte.
func TestFaultDisabledReproducesBaseline(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
	cfg := Config{Lambda: 4.0, Jobs: 2000, SizeShape: 4, Seed: 5}
	off := cfg
	off.Faults = fault.Config{MTTR: 9, MaxRetries: 2, RetryDelay: 1, Checkpoint: fault.Resume}
	for _, disp := range []string{"li", "pd2", "rr"} {
		d1, _ := NewDispatcher(disp)
		base, err := Simulate(specs, d1, w4(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		d2, _ := NewDispatcher(disp)
		disabled, err := Simulate(specs, d2, w4(), off)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := fmt.Sprintf("%+v", base), fmt.Sprintf("%+v", disabled); a != b {
			t.Errorf("%s: MTBF=0 serial run differs from baseline:\n%s\nvs\n%s", disp, a, b)
		}
		d3, _ := NewDispatcher(disp)
		sbase, err := SimulateSharded(specs, d3, w4(), cfg, ShardConfig{Shards: 3, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		d4, _ := NewDispatcher(disp)
		sdis, err := SimulateSharded(specs, d4, w4(), off, ShardConfig{Shards: 3, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := fmt.Sprintf("%+v", sbase), fmt.Sprintf("%+v", sdis); a != b {
			t.Errorf("%s: MTBF=0 sharded run differs from baseline:\n%s\nvs\n%s", disp, a, b)
		}
		if base.Availability != 1 || base.Goodput <= 0 {
			t.Errorf("%s: fault-free availability %v goodput %v, want 1 and > 0",
				disp, base.Availability, base.Goodput)
		}
	}
}

// TestFaultSerialMatchesSharded cross-validates the engines under
// injection: same fault trajectory (CRN per server index), same policy,
// so the integer fault accounting must agree exactly and the float
// metrics to tight tolerance — for every dispatcher and both checkpoint
// policies.
func TestFaultSerialMatchesSharded(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
	for _, disp := range []string{"random", "rr", "jsq", "li", "pd2"} {
		for _, cp := range fault.Policies {
			cfg := Config{Lambda: 6.0, Jobs: 3000, SizeShape: 4, Seed: 11}
			cfg.Faults = faultCfg()
			cfg.Faults.Checkpoint = cp
			d1, _ := NewDispatcher(disp)
			serial, err := Simulate(specs, d1, w4(), cfg)
			if err != nil {
				t.Fatalf("%s/%s: serial: %v", disp, cp, err)
			}
			d2, _ := NewDispatcher(disp)
			sharded, err := SimulateSharded(specs, d2, w4(), cfg, ShardConfig{Shards: 3, Workers: 2})
			if err != nil {
				t.Fatalf("%s/%s: sharded: %v", disp, cp, err)
			}
			if serial.Redispatches == 0 {
				t.Errorf("%s/%s: no redispatches — faults not exercised", disp, cp)
			}
			ints := []struct {
				name      string
				got, want int
			}{
				{"completed", sharded.Completed, serial.Completed},
				{"counted", sharded.Counted, serial.Counted},
				{"redispatches", sharded.Redispatches, serial.Redispatches},
				{"dropped", sharded.Dropped, serial.Dropped},
				{"parked", sharded.Parked, serial.Parked},
			}
			for _, c := range ints {
				if c.got != c.want {
					t.Errorf("%s/%s: %s differs: sharded %d vs serial %d", disp, cp, c.name, c.got, c.want)
				}
			}
			floats := []struct {
				name      string
				got, want float64
			}{
				{"mean turnaround", sharded.MeanTurnaround, serial.MeanTurnaround},
				{"availability", sharded.Availability, serial.Availability},
				{"goodput", sharded.Goodput, serial.Goodput},
				{"wasted work", sharded.WastedWork, serial.WastedWork},
				{"retry p50", sharded.RetryP50, serial.RetryP50},
				{"retry p99", sharded.RetryP99, serial.RetryP99},
				{"elapsed", sharded.Elapsed, serial.Elapsed},
				{"throughput", sharded.Throughput, serial.Throughput},
			}
			for _, c := range floats {
				if relErr(c.got, c.want) > 1e-9 {
					t.Errorf("%s/%s: %s diverges: sharded %v vs serial %v", disp, cp, c.name, c.got, c.want)
				}
			}
			for i := range serial.PerServer {
				if sharded.PerServer[i].Dispatched != serial.PerServer[i].Dispatched {
					t.Errorf("%s/%s: server %d dispatched %d (sharded) vs %d (serial)",
						disp, cp, i, sharded.PerServer[i].Dispatched, serial.PerServer[i].Dispatched)
				}
			}
		}
	}
}

// TestFaultShardConfigInvariance extends the tentpole bit-identity
// contract to fault injection: the fault trajectory is a function of
// (Seed, server index) only, so Shards, Workers and Slab must not move
// a single bit of the Result.
func TestFaultShardConfigInvariance(t *testing.T) {
	tab := smtTable(t)
	specs := make([]ServerSpec, 7)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	cfg := Config{Lambda: 9.0, Jobs: 2500, SizeShape: 4, Seed: 13}
	cfg.Faults = faultCfg()
	var ref string
	var refSC ShardConfig
	for _, sc := range []ShardConfig{
		{Shards: 1, Workers: 1},
		{Shards: 1, Workers: runtime.NumCPU()},
		{Shards: 3, Workers: 1},
		{Shards: 3, Workers: runtime.NumCPU(), Slab: 0.05},
		{Shards: 7, Workers: 2, Slab: 1.7},
	} {
		d, _ := NewDispatcher("pd2")
		res, err := SimulateSharded(specs, d, w4(), cfg, sc)
		if err != nil {
			t.Fatalf("%+v: %v", sc, err)
		}
		fp := fmt.Sprintf("%+v", res)
		if ref == "" {
			ref, refSC = fp, sc
			continue
		}
		if fp != ref {
			t.Errorf("faulted result differs between %+v and %+v:\n%s\nvs\n%s", refSC, sc, ref, fp)
		}
	}
}

// TestFaultAccountingInvariants checks the conservation laws of the
// fault bookkeeping on a long faulted run: every arrival either
// completes or is dropped, availability sits strictly inside (0, 1)
// under injection, goodput never exceeds throughput, and some work is
// wasted under the restart policy.
func TestFaultAccountingInvariants(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
	cfg := Config{Lambda: 4.0, Jobs: 4000, SizeShape: 4, Seed: 29}
	cfg.Faults = faultCfg()
	d, _ := NewDispatcher("li")
	res, err := Simulate(specs, d, w4(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Dropped != cfg.Jobs {
		t.Errorf("completed %d + dropped %d != jobs %d", res.Completed, res.Dropped, cfg.Jobs)
	}
	if res.Availability <= 0 || res.Availability >= 1 {
		t.Errorf("availability %v, want strictly inside (0, 1) under injection", res.Availability)
	}
	if res.Goodput <= 0 || res.Goodput > res.Throughput+1e-12 {
		t.Errorf("goodput %v vs throughput %v: want 0 < goodput <= throughput", res.Goodput, res.Throughput)
	}
	if res.WastedWork <= 0 {
		t.Errorf("wasted work %v, want > 0 under the restart policy", res.WastedWork)
	}
	if res.RetryP99 < res.RetryP50 {
		t.Errorf("retry quantiles inverted: p50 %v > p99 %v", res.RetryP50, res.RetryP99)
	}
}

// TestFaultResumeWastesLessThanRestart pins the checkpoint policies
// against each other on a common fault trajectory (CRN: same seed, same
// failure/repair times): resume keeps completed work across a crash, so
// it can never waste more than restart.
func TestFaultResumeWastesLessThanRestart(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
	run := func(cp fault.Policy) *Result {
		cfg := Config{Lambda: 4.0, Jobs: 3000, SizeShape: 4, Seed: 17}
		cfg.Faults = faultCfg()
		cfg.Faults.Checkpoint = cp
		d, _ := NewDispatcher("li")
		res, err := Simulate(specs, d, w4(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	restart, resume := run(fault.Restart), run(fault.Resume)
	if restart.Redispatches == 0 {
		t.Fatal("no redispatches — faults not exercised")
	}
	if resume.WastedWork >= restart.WastedWork {
		t.Errorf("resume wasted %v >= restart wasted %v on the same fault trajectory",
			resume.WastedWork, restart.WastedWork)
	}
}

// TestFaultAllDownParksArrivals drives a one-server farm through
// outages: every arrival during an outage must park (never a Pick over
// zero up servers) and drain at the repair, with nothing lost.
func TestFaultAllDownParksArrivals(t *testing.T) {
	tab := uniformTable(1)
	cfg := Config{Lambda: 2.0, Jobs: 1500, SizeShape: 1, Seed: 3}
	cfg.Faults = fault.Config{MTBF: 10, MTTR: 4, MaxRetries: 8, RetryDelay: 0.1, Checkpoint: fault.Resume}
	d, _ := NewDispatcher("rr")
	serial, err := Simulate([]ServerSpec{fcfsSpec(tab)}, d, w4()[:1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Parked == 0 {
		t.Error("one-server farm with outages parked nothing")
	}
	if serial.Completed+serial.Dropped != cfg.Jobs {
		t.Errorf("completed %d + dropped %d != jobs %d", serial.Completed, serial.Dropped, cfg.Jobs)
	}
	d2, _ := NewDispatcher("rr")
	sharded, err := SimulateSharded([]ServerSpec{fcfsSpec(tab)}, d2, w4()[:1], cfg, ShardConfig{Shards: 1, Workers: 1, Slab: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Parked != serial.Parked || sharded.Dropped != serial.Dropped || sharded.Completed != serial.Completed {
		t.Errorf("engines disagree: sharded parked/dropped/completed %d/%d/%d vs serial %d/%d/%d",
			sharded.Parked, sharded.Dropped, sharded.Completed, serial.Parked, serial.Dropped, serial.Completed)
	}
}

// TestFaultRetryCapDrops pins the drop path: with MaxRetries 0 every
// crash victim is abandoned immediately — no redispatch ever happens,
// and the run still terminates with completed + dropped == Jobs.
func TestFaultRetryCapDrops(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab)}
	cfg := Config{Lambda: 3.0, Jobs: 2000, SizeShape: 4, Seed: 23}
	cfg.Faults = fault.Config{MTBF: 20, MTTR: 2, MaxRetries: 0, RetryDelay: 0.5}
	d, _ := NewDispatcher("jsq")
	res, err := Simulate(specs, d, w4(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("MaxRetries=0 run dropped nothing — faults not exercised")
	}
	if res.Redispatches != 0 {
		t.Errorf("MaxRetries=0 run redispatched %d jobs, want 0", res.Redispatches)
	}
	if res.Completed+res.Dropped != cfg.Jobs {
		t.Errorf("completed %d + dropped %d != jobs %d", res.Completed, res.Dropped, cfg.Jobs)
	}
	if res.RetryP50 != 0 || res.RetryP99 != 0 {
		t.Errorf("retry quantiles %v/%v, want 0/0: every retried job was dropped, never counted",
			res.RetryP50, res.RetryP99)
	}
}

// TestFaultInvalidConfigRejected checks that both engines reject a bad
// fault config up front, as a typed fault.ConfigError.
func TestFaultInvalidConfigRejected(t *testing.T) {
	tab := uniformTable(1)
	cfg := Config{Lambda: 1.0, Jobs: 10, SizeShape: 1}
	cfg.Faults = fault.Config{MTBF: 5} // MTTR missing
	d, _ := NewDispatcher("rr")
	if _, err := Simulate([]ServerSpec{fcfsSpec(tab)}, d, w4()[:1], cfg); err == nil {
		t.Error("serial engine accepted MTBF > 0 with MTTR 0")
	}
	if _, err := SimulateSharded([]ServerSpec{fcfsSpec(tab)}, d, w4()[:1], cfg, ShardConfig{}); err == nil {
		t.Error("sharded engine accepted MTBF > 0 with MTTR 0")
	}
}

// TestFaultEpochBumpOnRepair pins the stale-decision guard end to end:
// a repaired learning server's rate source must advance its epoch even
// though no observation arrived during the outage, so MAXIT's per-epoch
// memo re-derives its next decision. The farm run asserts the plumbing
// (learner servers complete a faulted run deterministically); the
// direct check pins the epoch arithmetic.
func TestFaultEpochBumpOnRepair(t *testing.T) {
	s := online.NewSampler(2, online.SamplerConfig{})
	if e0, e1 := s.Epoch(), func() uint64 { s.BumpEpoch(); return s.Epoch() }(); e1 != e0+1 {
		t.Errorf("sampler epoch %d -> %d after bump, want +1", e0, e1)
	}
	p := online.NewPairwise(2, 4, online.PairwiseConfig{})
	if e0, e1 := p.Epoch(), func() uint64 { p.BumpEpoch(); return p.Epoch() }(); e1 != e0+1 {
		t.Errorf("pairwise epoch %d -> %d after bump, want +1", e0, e1)
	}

	tab := smtTable(t)
	mk := func(rs online.RateSource) (sched.Scheduler, error) { return sched.New("MAXIT", rs, w4()) }
	est := func(k int) func(seed uint64) (online.Estimator, error) {
		return func(seed uint64) (online.Estimator, error) {
			return online.NewSampler(k, online.SamplerConfig{Seed: seed}), nil
		}
	}
	specs := []ServerSpec{
		{Table: tab, Sched: mk, Estimator: est(tab.K())},
		{Table: tab, Sched: mk, Estimator: est(tab.K())},
	}
	cfg := Config{Lambda: 2.5, Jobs: 1200, SizeShape: 4, Seed: 31}
	cfg.Faults = faultCfg()
	d1, _ := NewDispatcher("li")
	a, err := Simulate(specs, d1, w4(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDispatcher("li")
	b, err := Simulate(specs, d2, w4(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if x, y := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b); x != y {
		t.Errorf("faulted learner run not reproducible:\n%s\nvs\n%s", x, y)
	}
	if a.Redispatches == 0 {
		t.Error("learner run saw no redispatches — faults not exercised")
	}
}

// FuzzFaultInterleavings fuzzes failure/repair interleavings against
// the serial engine: random fault rates, slab geometries (crashes
// landing on slab boundaries) and checkpoint policies, asserting the
// exact integer accounting and tight float agreement between engines —
// plus worker-count bit-identity within the sharded engine.
func FuzzFaultInterleavings(f *testing.F) {
	f.Add(uint64(1), uint8(20), uint8(4), uint16(0), uint8(2), false)
	f.Add(uint64(7), uint8(5), uint8(2), uint16(250), uint8(3), true)
	f.Add(uint64(42), uint8(60), uint8(10), uint16(10), uint8(5), false)
	f.Add(uint64(9000), uint8(1), uint8(1), uint16(65535), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed uint64, mtbfQ, mttrQ uint8, slabMilli uint16, shards uint8, resume bool) {
		tab := smtTable(t)
		specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
		cfg := Config{Lambda: 5.0, Jobs: 500, SizeShape: 4, Seed: seed%1024 + 1}
		cfg.Faults = fault.Config{
			MTBF:       float64(mtbfQ%100) + 0.5,
			MTTR:       float64(mttrQ%20)/2 + 0.25,
			MaxRetries: int(seed % 7),
			RetryDelay: float64(seed%5) / 8,
		}
		if resume {
			cfg.Faults.Checkpoint = fault.Resume
		}
		d1, _ := NewDispatcher("li")
		serial, err := Simulate(specs, d1, w4(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Completed+serial.Dropped != cfg.Jobs {
			t.Fatalf("serial: completed %d + dropped %d != jobs %d", serial.Completed, serial.Dropped, cfg.Jobs)
		}
		sc := ShardConfig{Shards: int(shards%6) + 1, Workers: 1, Slab: float64(slabMilli) / 1000}
		d2, _ := NewDispatcher("li")
		sharded, err := SimulateSharded(specs, d2, w4(), cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		if sharded.Completed != serial.Completed || sharded.Counted != serial.Counted ||
			sharded.Redispatches != serial.Redispatches || sharded.Dropped != serial.Dropped ||
			sharded.Parked != serial.Parked {
			t.Fatalf("fault accounting diverges:\nsharded %+v\nserial  %+v", sharded, serial)
		}
		if relErr(sharded.MeanTurnaround, serial.MeanTurnaround) > 1e-6 ||
			relErr(sharded.Availability, serial.Availability) > 1e-6 ||
			relErr(sharded.Goodput, serial.Goodput) > 1e-6 ||
			relErr(sharded.WastedWork, serial.WastedWork) > 1e-6 ||
			relErr(sharded.Elapsed, serial.Elapsed) > 1e-6 {
			t.Fatalf("fault metrics diverge:\nsharded %+v\nserial  %+v", sharded, serial)
		}
		d3, _ := NewDispatcher("li")
		wide, err := SimulateSharded(specs, d3, w4(), cfg, ShardConfig{
			Shards: sc.Shards, Workers: runtime.NumCPU(), Slab: sc.Slab,
		})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := fmt.Sprintf("%+v", sharded), fmt.Sprintf("%+v", wide); a != b {
			t.Fatalf("workers 1 vs NumCPU differ under faults:\n%s\nvs\n%s", a, b)
		}
	})
}
