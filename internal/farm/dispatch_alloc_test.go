package farm

import (
	"fmt"
	"testing"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
)

// dispatchServers builds n FCFS servers over the SMT table at mixed
// occupancies — idle, partially filled and full — so a Pick sweep
// exercises the marginal-rate probe, its per-server cache and the
// saturation fallback exactly as a live farm would.
func dispatchServers(tb testing.TB, n int) []*eventsim.Server {
	tb.Helper()
	tab := smtTable(tb)
	servers := make([]*eventsim.Server, n)
	id := 0
	for i := range servers {
		sv := eventsim.NewServer(tab, &sched.FCFS{})
		for j := 0; j < i%(tab.K()+1); j++ {
			sv.Add(&sched.Job{ID: id, Type: (i + j) % tab.K(), Size: 10, Remaining: 10})
			id++
		}
		if err := sv.Reschedule(); err != nil {
			tb.Fatal(err)
		}
		servers[i] = sv
	}
	return servers
}

// TestDispatcherPickZeroAllocs pins every dispatcher's per-arrival cost
// at zero heap allocations. LeastInterference used to rebuild its probe
// state per Pick and PowerOfD used to copy its probe set; both now keep
// dispatcher-owned scratch, and this test keeps them honest.
func TestDispatcherPickZeroAllocs(t *testing.T) {
	servers := dispatchServers(t, 16)
	dispatchers := []Dispatcher{
		Random{},
		&RoundRobin{},
		JoinShortestQueue{},
		&LeastInterference{},
		&PowerOfD{D: 3},
		&PowerOfD{D: 0},                // clamps to pd1
		&PowerOfD{D: len(servers) * 2}, // full probe: delegates to li
	}
	for _, d := range dispatchers {
		rng := stats.NewRNG(11)
		j := &sched.Job{ID: 10_000, Type: 2, Size: 5, Remaining: 5}
		d.Pick(j, servers, len(servers), rng) // warm dispatcher scratch and server rate caches
		if got := testing.AllocsPerRun(200, func() { d.Pick(j, servers, len(servers), rng) }); got != 0 {
			t.Errorf("%s: Pick allocates %.1f times per arrival, want 0", d.Name(), got)
		}
	}
}

// TestPowerOfDZeroClamp pins the D <= 0 contract: the constructed policy
// is pd1 in name AND in behaviour (one dispatch-stream draw per arrival,
// identical picks to an explicit D=1 over the same stream). Before the
// clamp, Name() reported the raw "pd0" while Pick probed one server.
func TestPowerOfDZeroClamp(t *testing.T) {
	p0, p1 := &PowerOfD{D: 0}, &PowerOfD{D: 1}
	if got, want := p0.Name(), "pd1"; got != want {
		t.Errorf("PowerOfD{D:0}.Name() = %q, want %q", got, want)
	}
	if got, want := (&PowerOfD{D: -3}).Name(), "pd1"; got != want {
		t.Errorf("PowerOfD{D:-3}.Name() = %q, want %q", got, want)
	}
	servers := dispatchServers(t, 8)
	r0, r1 := stats.NewRNG(42), stats.NewRNG(42)
	j := &sched.Job{ID: 10_000, Type: 1, Size: 5, Remaining: 5}
	for i := 0; i < 500; i++ {
		a, b := p0.Pick(j, servers, len(servers), r0), p1.Pick(j, servers, len(servers), r1)
		if a != b {
			t.Fatalf("draw %d: pd0 picked %d, pd1 picked %d", i, a, b)
		}
	}
}

// BenchmarkDispatcherPick measures the per-arrival dispatch decision in
// isolation — the code that runs once per job on the farm's hot path.
func BenchmarkDispatcherPick(b *testing.B) {
	for _, n := range []int{64, 512} {
		servers := dispatchServers(b, n)
		for _, d := range []Dispatcher{&LeastInterference{}, &PowerOfD{D: 3}} {
			b.Run(fmt.Sprintf("%s/servers=%d", d.Name(), n), func(b *testing.B) {
				rng := stats.NewRNG(1)
				j := &sched.Job{ID: 10_000, Type: 2, Size: 5, Remaining: 5}
				d.Pick(j, servers, len(servers), rng)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Pick(j, servers, len(servers), rng)
				}
			})
		}
	}
}
