package farm

import (
	"math"
	"testing"

	"symbiosched/internal/stats"
)

// TestTTCHeapMatchesScan fuzzes the indexed heap against the reference
// min-scan it replaced: after every update — inserts, moves up and down,
// removals to +Inf, repeated no-ops — the heap's minimum must equal the
// scan's minimum over the same keys, bit for bit, and the index/position
// bookkeeping must stay consistent.
func TestTTCHeapMatchesScan(t *testing.T) {
	const n = 37
	rng := stats.NewRNG(5)
	h := newTTCHeap(n)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = math.Inf(1)
	}
	scanMin := func() float64 {
		m := math.Inf(1)
		for _, k := range keys {
			if k < m {
				m = k
			}
		}
		return m
	}
	for step := 0; step < 20_000; step++ {
		i := rng.Intn(n)
		var k float64
		switch rng.Intn(5) {
		case 0:
			k = math.Inf(1) // remove (or keep absent)
		case 1:
			k = keys[i] // no-op
		case 2:
			k = keys[i] - rng.Float64() // shrink, the per-event common case
			if math.IsInf(k, 1) {
				k = 10 * rng.Float64()
			}
		default:
			k = 20 * rng.Float64()
		}
		keys[i] = k
		h.Update(i, k)
		if got, want := h.Min(), scanMin(); got != want {
			t.Fatalf("step %d: heap min %v, scan min %v", step, got, want)
		}
	}
	// Structural invariants at the end of the walk.
	for p := range h.heap {
		if h.pos[h.heap[p]] != p {
			t.Fatalf("pos/heap mismatch at slot %d", p)
		}
		if l := 2*p + 1; l < len(h.heap) && h.less(l, p) {
			t.Fatalf("heap order violated at slot %d (left child)", p)
		}
		if r := 2*p + 2; r < len(h.heap) && h.less(r, p) {
			t.Fatalf("heap order violated at slot %d (right child)", p)
		}
	}
	for i, k := range keys {
		if math.IsInf(k, 1) != (h.pos[i] == -1) {
			t.Fatalf("server %d: key %v but pos %d", i, k, h.pos[i])
		}
	}
}
