package farm

import (
	"sync"
	"sync/atomic"
)

// poolMinShards is the engagement threshold for the pool: a slab whose
// active set is smaller runs inline on the coordinator. Every active
// shard carries at least one event, so the threshold also lower-bounds
// the parallelisable work per dispatch; below it the condvar round-trip
// costs more than the advance itself.
const poolMinShards = 4

// slabPool is the sharded engine's persistent worker crew: Workers-1
// helper goroutines spawned once per SimulateSharded, fed one slab at a
// time through an epoch barrier. Shards are claimed from a shared atomic
// cursor (power-of-two work stealing is pointless here — slabs are short
// and shards uniform), so a dispatch costs a few condvar signals instead
// of the per-slab go-func/WaitGroup churn the engine used to pay.
//
// The rendezvous is two-phase. dispatch publishes the work (active set +
// cursor), bumps the epoch and opens the gate; helpers that catch the
// epoch register in `inflight` before touching any shared state, drain
// the cursor, then deregister. dispatch drains alongside them, closes
// the gate, and waits for inflight to reach zero. Because dispatch only
// returns once no helper is inside a slab, the plain writes to active
// and the cursor reset at the top of the next dispatch can never race
// with a laggard helper — a helper that missed this epoch entirely finds
// the gate closed and goes back to sleep without touching anything.
type slabPool struct {
	run func(s int) // advance shard s to the published horizon

	mu       sync.Mutex
	work     *sync.Cond // helpers wait here for an open epoch
	done     *sync.Cond // dispatch waits here for inflight == 0
	epoch    uint64
	open     bool
	inflight int
	stop     bool

	helpers int
	active  []int
	cursor  atomic.Int64
}

// newSlabPool starts workers-1 helpers (the dispatching goroutine is the
// remaining worker). run must be safe to call concurrently for distinct
// shard indices.
func newSlabPool(workers int, run func(s int)) *slabPool {
	p := &slabPool{run: run, helpers: workers - 1}
	p.work = sync.NewCond(&p.mu)
	p.done = sync.NewCond(&p.mu)
	for i := 0; i < p.helpers; i++ {
		go p.helper()
	}
	return p
}

// dispatch runs run(s) for every s in active, spread across the pool,
// and returns only when all of them have finished.
func (p *slabPool) dispatch(active []int) {
	// Publish. No helper is inside a slab here (the previous dispatch
	// waited inflight out), so these plain writes are ordered before the
	// epoch bump below and become visible to helpers through p.mu.
	p.active = active
	p.cursor.Store(0)
	p.mu.Lock()
	p.epoch++
	p.open = true
	p.mu.Unlock()
	wake := len(active) - 1
	if wake > p.helpers {
		wake = p.helpers
	}
	for ; wake > 0; wake-- {
		p.work.Signal()
	}
	p.drain()
	// Join: close the gate so no new helper enters, then wait out the
	// ones already inside.
	p.mu.Lock()
	p.open = false
	for p.inflight > 0 {
		p.done.Wait()
	}
	p.mu.Unlock()
}

func (p *slabPool) helper() {
	var last uint64
	p.mu.Lock()
	for {
		for !p.stop && !(p.open && p.epoch != last) {
			p.work.Wait()
		}
		if p.stop {
			p.mu.Unlock()
			return
		}
		last = p.epoch
		p.inflight++
		p.mu.Unlock()
		p.drain()
		p.mu.Lock()
		p.inflight--
		if p.inflight == 0 && !p.open {
			p.done.Signal()
		}
	}
}

// drain claims shard indices off the shared cursor until none remain.
func (p *slabPool) drain() {
	n := int64(len(p.active))
	for {
		i := p.cursor.Add(1) - 1
		if i >= n {
			return
		}
		p.run(p.active[i])
	}
}

// close wakes every helper and lets it exit. Must not be called while a
// dispatch is in flight; safe to call more than once.
func (p *slabPool) close() {
	p.mu.Lock()
	p.stop = true
	p.mu.Unlock()
	p.work.Broadcast()
}
