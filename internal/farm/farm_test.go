package farm

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/queueing"
	"symbiosched/internal/runner"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

var (
	smtOnce sync.Once
	smtTab  *perfdb.Table
)

// smtTable builds (once) a 4-benchmark SMT table — the interference-rich
// configuration for the symbiosis tests.
func smtTable(t testing.TB) *perfdb.Table {
	t.Helper()
	smtOnce.Do(func() {
		suite := program.Suite()
		mini := []program.Profile{suite[1], suite[5], suite[6], suite[7]}
		smtTab = perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, mini)
	})
	return smtTab
}

// uniformTable builds a no-interference table with k contexts over a
// single job type: the M/M/k oracle machine.
func uniformTable(k int) *perfdb.Table {
	return perfdb.Build(perfdb.UniformModel{K: k}, program.Suite()[:1])
}

func fcfsSpec(tab *perfdb.Table) ServerSpec {
	return ServerSpec{Table: tab, Sched: func(online.RateSource) (sched.Scheduler, error) { return &sched.FCFS{}, nil }}
}

func w4() workload.Workload { return workload.Workload{0, 1, 2, 3} }

// TestFarmOfOneReproducesEventsimLatency pins the refactoring contract:
// a farm of one server is the single-server experiment, bit for bit —
// same RNG streams, same event arithmetic, same accumulators.
func TestFarmOfOneReproducesEventsimLatency(t *testing.T) {
	tab := smtTable(t)
	for _, name := range []string{"FCFS", "MAXIT", "SRPT"} {
		cfg := eventsim.LatencyConfig{Lambda: 1.5, Jobs: 4000, SizeShape: 4, Seed: 7}
		s, err := sched.New(name, tab, w4())
		if err != nil {
			t.Fatal(err)
		}
		single, err := eventsim.Latency(tab, w4(), s, cfg)
		if err != nil {
			t.Fatalf("%s: eventsim: %v", name, err)
		}
		mk := func(rs online.RateSource) (sched.Scheduler, error) { return sched.New(name, rs, w4()) }
		farm, err := Simulate([]ServerSpec{{Table: tab, Sched: mk}}, &RoundRobin{}, w4(), Config{
			Lambda: 1.5, Jobs: 4000, SizeShape: 4, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: farm: %v", name, err)
		}
		if farm.MeanTurnaround != single.MeanTurnaround {
			t.Errorf("%s: farm-of-1 turnaround %v != single-server %v",
				name, farm.MeanTurnaround, single.MeanTurnaround)
		}
		if farm.PerServer[0].Utilisation != single.Utilisation {
			t.Errorf("%s: farm-of-1 utilisation %v != single-server %v",
				name, farm.PerServer[0].Utilisation, single.Utilisation)
		}
		if farm.EmptyFraction != single.EmptyFraction {
			t.Errorf("%s: farm-of-1 empty fraction %v != single-server %v",
				name, farm.EmptyFraction, single.EmptyFraction)
		}
		if farm.Throughput != single.Throughput {
			t.Errorf("%s: farm-of-1 throughput %v != single-server %v",
				name, farm.Throughput, single.Throughput)
		}
	}
}

// TestFarmMatchesMMCAnalytics is the farm's correctness oracle (the
// ISSUE's cross-validation satellite): homogeneous jobs, interference
// disabled (uniform table), exponential sizes and FCFS reduce the farm to
// an M/M/c queue, whose mean turnaround internal/queueing computes
// analytically via Erlang-C. Simulated turnaround must match within a
// few percent across c in {1, 2, 4} and loads {0.5, 0.8, 0.95}.
func TestFarmMatchesMMCAnalytics(t *testing.T) {
	for _, c := range []int{1, 2, 4} {
		tab := uniformTable(c)
		for _, load := range []float64{0.5, 0.8, 0.95} {
			lambda := load * float64(c) // mu = 1 per context
			q := queueing.MMC{Lambda: lambda, Mu: 1, C: c}
			want, err := q.MeanTurnaround()
			if err != nil {
				t.Fatal(err)
			}
			// Average several replications through the sweep engine:
			// near saturation a single run's mean is too noisy to pin
			// tightly.
			res, err := Sweep(context.Background(), runner.Config{},
				[]ServerSpec{fcfsSpec(tab)}, "rr", workload.Workload{0},
				Config{Lambda: lambda, Jobs: 50_000, SizeShape: 1, Seed: 1}, 10)
			if err != nil {
				t.Fatalf("c=%d load=%v: %v", c, load, err)
			}
			rel := math.Abs(res.MeanTurnaround-want) / want
			if rel > 0.05 {
				t.Errorf("c=%d load=%v: farm turnaround %.4f vs M/M/%d analytic %.4f (rel err %.1f%%)",
					c, load, res.MeanTurnaround, c, want, 100*rel)
			}
		}
	}
}

// TestSweepDeterministicAcrossParallelism pins the acceptance criterion:
// replication sweeps are bit-identical at parallelism 1 and 8.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab)}
	var outs []string
	for _, p := range []int{1, 8} {
		res, err := Sweep(context.Background(), runner.Config{Parallelism: p},
			specs, "li", w4(), Config{Lambda: 2.5, Jobs: 3000, SizeShape: 4, Seed: 3}, 6)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, fmt.Sprintf("%v %v %v %v %v %v",
			res.MeanTurnaround, res.P95Turnaround, res.Utilisation,
			res.EmptyFraction, res.Throughput, res.TurnaroundStd))
	}
	if outs[0] != outs[1] {
		t.Errorf("sweep differs across parallelism:\np=1: %s\np=8: %s", outs[0], outs[1])
	}
}

// TestSimulateDeterministicRepeat: same seed, same everything.
func TestSimulateDeterministicRepeat(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab)}
	run := func() *Result {
		d, _ := NewDispatcher("random")
		res, err := Simulate(specs, d, w4(), Config{Lambda: 2.0, Jobs: 3000, SizeShape: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanTurnaround != b.MeanTurnaround || a.P95Turnaround != b.P95Turnaround ||
		a.Throughput != b.Throughput || a.PerServer[0].Dispatched != b.PerServer[0].Dispatched {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

// TestWarmupExceedsJobs: a warmup longer than the run is legal — nothing
// is counted and nothing panics (eventsim handles the same config the
// same way).
func TestWarmupExceedsJobs(t *testing.T) {
	tab := uniformTable(1)
	d, _ := NewDispatcher("rr")
	res, err := Simulate([]ServerSpec{fcfsSpec(tab)}, d, workload.Workload{0},
		Config{Lambda: 0.5, Jobs: 50, Warmup: 100, SizeShape: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counted != 0 || res.MeanTurnaround != 0 {
		t.Errorf("counted %d turnaround %v, want 0, 0", res.Counted, res.MeanTurnaround)
	}
	if res.Completed != 50 {
		t.Errorf("completed %d, want 50", res.Completed)
	}
}

// TestDispatchersRouteSensibly sanity-checks each policy's routing on a
// two-server farm.
func TestDispatchersRouteSensibly(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab)}
	for _, name := range DispatcherNames {
		d, err := NewDispatcher(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(specs, d, w4(), Config{Lambda: 2.0, Jobs: 4000, SizeShape: 4, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Dispatcher != name {
			t.Errorf("%s: result labelled %q", name, res.Dispatcher)
		}
		total := 0
		for _, ps := range res.PerServer {
			total += ps.Dispatched
			if ps.Dispatched == 0 {
				t.Errorf("%s: server %q received no jobs", name, ps.Name)
			}
		}
		if total != res.Completed {
			t.Errorf("%s: dispatched %d != completed %d", name, total, res.Completed)
		}
	}
	if _, err := NewDispatcher("bogus"); err == nil {
		t.Error("NewDispatcher(bogus) succeeded")
	}
}

// TestRoundRobinCycles verifies rr's routing order directly.
func TestRoundRobinCycles(t *testing.T) {
	tab := uniformTable(1)
	servers := []*eventsim.Server{
		eventsim.NewServer(tab, &sched.FCFS{}),
		eventsim.NewServer(tab, &sched.FCFS{}),
		eventsim.NewServer(tab, &sched.FCFS{}),
	}
	d := &RoundRobin{}
	rng := stats.NewRNG(1)
	j := &sched.Job{Type: 0}
	for i := 0; i < 7; i++ {
		if got := d.Pick(j, servers, len(servers), rng); got != i%3 {
			t.Fatalf("pick %d = %d, want %d", i, got, i%3)
		}
	}
}

// TestJSQPicksShortest verifies jsq against hand-loaded queues.
func TestJSQPicksShortest(t *testing.T) {
	tab := uniformTable(1)
	mk := func(n int) *eventsim.Server {
		sv := eventsim.NewServer(tab, &sched.FCFS{})
		for i := 0; i < n; i++ {
			sv.Add(&sched.Job{ID: i, Type: 0, Size: 1, Remaining: 1})
		}
		return sv
	}
	servers := []*eventsim.Server{mk(2), mk(0), mk(1)}
	if got := (JoinShortestQueue{}).Pick(&sched.Job{Type: 0}, servers, len(servers), stats.NewRNG(1)); got != 1 {
		t.Errorf("jsq picked %d, want 1 (empty server)", got)
	}
}

// TestLeastInterferencePrefersSymbiosis: with one server running a
// cache-hungry co-runner and another running a friendly one, li must send
// the arriving job where the probed marginal throughput is higher, and
// must prefer an idle server (marginal WIPC 1) over any interfering one.
func TestLeastInterferencePrefersSymbiosis(t *testing.T) {
	tab := smtTable(t)
	idle := eventsim.NewServer(tab, &sched.FCFS{})
	busy := eventsim.NewServer(tab, &sched.FCFS{})
	busy.Add(&sched.Job{ID: 0, Type: 1, Size: 1, Remaining: 1})
	if err := busy.Reschedule(); err != nil {
		t.Fatal(err)
	}
	j := &sched.Job{ID: 1, Type: 2}
	servers := []*eventsim.Server{busy, idle}
	if got := (&LeastInterference{}).Pick(j, servers, len(servers), stats.NewRNG(1)); got != 1 {
		// Marginal gain at the idle server is WIPC 1; next to an
		// interfering co-runner it is strictly less on the SMT model.
		t.Errorf("li picked busy server %d, want idle server 1", got)
	}
	// All saturated -> falls back to shortest queue.
	full := eventsim.NewServer(tab, &sched.FCFS{})
	for i := 0; i < tab.K(); i++ {
		full.Add(&sched.Job{ID: i, Type: 0, Size: 1, Remaining: 1})
	}
	if err := full.Reschedule(); err != nil {
		t.Fatal(err)
	}
	fuller := eventsim.NewServer(tab, &sched.FCFS{})
	for i := 0; i < tab.K()+2; i++ {
		fuller.Add(&sched.Job{ID: i, Type: 0, Size: 1, Remaining: 1})
	}
	if err := fuller.Reschedule(); err != nil {
		t.Fatal(err)
	}
	if got := (&LeastInterference{}).Pick(j, []*eventsim.Server{fuller, full}, 2, stats.NewRNG(1)); got != 1 {
		t.Errorf("saturated li picked %d, want 1 (shorter queue)", got)
	}
}

// TestHeterogeneousFarm runs SMT and no-interference servers side by
// side; both tables must cover the workload's four job types.
func TestHeterogeneousFarm(t *testing.T) {
	uni4 := perfdb.Build(perfdb.UniformModel{K: 4}, program.Suite()[:4])
	specs := []ServerSpec{fcfsSpec(smtTable(t)), fcfsSpec(uni4)}
	d, _ := NewDispatcher("li")
	res, err := Simulate(specs, d, w4(), Config{Lambda: 3.0, Jobs: 4000, SizeShape: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4000 {
		t.Errorf("completed %d, want 4000", res.Completed)
	}
	if res.Utilisation <= 0 || res.Utilisation > 1 {
		t.Errorf("farm utilisation %v outside (0,1]", res.Utilisation)
	}
}

// TestOnlineFarm wires the learning path end to end: servers built with
// an estimator factory run their scheduler and the li dispatcher over
// learned rates, complete the run, label themselves with the estimator,
// and stay deterministic per seed.
func TestOnlineFarm(t *testing.T) {
	tab := smtTable(t)
	spec := func() ServerSpec {
		return ServerSpec{
			Table:     tab,
			Sched:     func(rs online.RateSource) (sched.Scheduler, error) { return sched.New("MAXIT", rs, w4()) },
			Estimator: func(seed uint64) (online.Estimator, error) { return online.New("sampler", tab, seed) },
		}
	}
	run := func() *Result {
		d, _ := NewDispatcher("li")
		res, err := Simulate([]ServerSpec{spec(), spec()}, d, w4(), Config{
			Lambda: 2.5, Jobs: 3000, SizeShape: 4, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != 3000 {
		t.Errorf("completed %d, want 3000", a.Completed)
	}
	for _, ps := range a.PerServer {
		if !strings.Contains(ps.Name, "+sampler") {
			t.Errorf("server %q not labelled with its estimator", ps.Name)
		}
	}
	if a.MeanTurnaround != b.MeanTurnaround || a.P99Turnaround != b.P99Turnaround || a.Throughput != b.Throughput {
		t.Errorf("online farm runs differ across identical seeds: %+v vs %+v", a, b)
	}
}

// TestResultQuantilesOrdered pins the new turnaround quantiles: P50 <=
// mean-ish ordering is not guaranteed, but P50 <= P95 <= P99 always is.
func TestResultQuantilesOrdered(t *testing.T) {
	tab := smtTable(t)
	d, _ := NewDispatcher("rr")
	res, err := Simulate([]ServerSpec{fcfsSpec(tab)}, d, w4(), Config{
		Lambda: 2.0, Jobs: 4000, SizeShape: 4, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50Turnaround > 0 && res.P50Turnaround <= res.P95Turnaround && res.P95Turnaround <= res.P99Turnaround) {
		t.Errorf("quantiles out of order: p50 %v p95 %v p99 %v",
			res.P50Turnaround, res.P95Turnaround, res.P99Turnaround)
	}
	agg := Aggregate([]Replication{{Seed: 1, Result: res}, {Seed: 2, Result: res}})
	if agg.P50Turnaround != res.P50Turnaround || agg.P99Turnaround != res.P99Turnaround {
		t.Errorf("aggregate quantiles %v/%v != replication's %v/%v",
			agg.P50Turnaround, agg.P99Turnaround, res.P50Turnaround, res.P99Turnaround)
	}
}

// TestJSQBeatsRandomNearSaturation: queue-aware dispatch must cut mean
// turnaround versus blind random dispatch at high load.
func TestJSQBeatsRandomNearSaturation(t *testing.T) {
	tab := uniformTable(2)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
	cfg := Config{Lambda: 0.85 * 6, Jobs: 20_000, SizeShape: 1, Seed: 9}
	run := func(disp string) float64 {
		res, err := Sweep(context.Background(), runner.Config{}, specs, disp, workload.Workload{0}, cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanTurnaround
	}
	if jsq, rnd := run("jsq"), run("random"); jsq >= rnd {
		t.Errorf("JSQ turnaround %v not better than random %v at load 0.85", jsq, rnd)
	}
}
