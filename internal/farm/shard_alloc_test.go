package farm

import (
	"testing"
)

// TestShardedSlabLoopAllocs pins the zero-steady-state-allocation
// contract of the slab loop: the only per-job cost the engine is allowed
// is the job object itself (plus amortised queue growth inside servers).
// Per-run setup — servers, groups, scratch warm-up — allocates plenty,
// so the test differences two job counts at identical geometry: the
// setup terms cancel and what remains is the marginal allocation per
// additional job across all the slabs it flows through. Before the
// scratch/pool/merger reuse work this margin included per-slab goroutine
// and buffer churn; now it must stay within a small constant.
func TestShardedSlabLoopAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	tab := smtTable(t)
	const n = 64
	specs := make([]ServerSpec, n)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	run := func(jobs int) func() {
		return func() {
			d, err := NewDispatcher("pd2")
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Lambda: 1.5 * n, Jobs: jobs, SizeShape: 4, Seed: 3}
			if _, err := SimulateSharded(specs, d, w4(), cfg, ShardConfig{Shards: 16, Workers: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	const lo, hi = 2000, 8000
	aLo := testing.AllocsPerRun(5, run(lo))
	aHi := testing.AllocsPerRun(5, run(hi))
	perJob := (aHi - aLo) / float64(hi-lo)
	// One *sched.Job per arrival plus amortised scheduler-queue growth.
	// 2.5 is ~2x headroom over the measured margin; per-slab goroutine
	// spawns or merge-buffer churn would blow far past it (the pre-pool
	// engine measured >6 here at multi-worker configs).
	const maxPerJob = 2.5
	if perJob > maxPerJob {
		t.Fatalf("slab loop allocates %.2f per job (lo=%v hi=%v), want <= %v",
			perJob, aLo, aHi, maxPerJob)
	}
	t.Logf("marginal allocs per job: %.3f (lo=%.0f hi=%.0f)", perJob, aLo, aHi)
}
