package farm

import (
	"context"
	"math"
	"testing"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/queueing"
	"symbiosched/internal/runner"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// pdMixes returns the server mixes the pd identity properties sweep:
// a homogeneous SMT farm and a heterogeneous SMT/no-interference mix.
func pdMixes(t *testing.T) map[string][]ServerSpec {
	t.Helper()
	smt := smtTable(t)
	uni := perfdb.Build(perfdb.UniformModel{K: 4}, program.Suite()[:4])
	return map[string][]ServerSpec{
		"homogeneous": {fcfsSpec(smt), fcfsSpec(smt), fcfsSpec(smt)},
		"hetero":      {fcfsSpec(smt), fcfsSpec(uni), fcfsSpec(smt)},
	}
}

// TestPDFullProbeMatchesLI pins the ISSUE's identity property: pd with
// d = N (and beyond) probes every server, so it must reproduce li byte
// for byte — same dispatch stream, same decisions, same result struct up
// to the policy label — across seeds x loads x heterogeneous mixes.
func TestPDFullProbeMatchesLI(t *testing.T) {
	for mix, specs := range pdMixes(t) {
		for _, seed := range []uint64{3, 23, 101} {
			for _, load := range []float64{2.0, 4.5} {
				cfg := Config{Lambda: load, Jobs: 2000, SizeShape: 4, Seed: seed}
				li, err := Simulate(specs, &LeastInterference{}, w4(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range []int{len(specs), len(specs) + 3} {
					pd, err := Simulate(specs, &PowerOfD{D: d}, w4(), cfg)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := shardFingerprint(pd), shardFingerprint(li); got != want {
						t.Errorf("%s seed=%d load=%v: pd%d != li:\n%s\nvs\n%s", mix, seed, load, d, got, want)
					}
				}
			}
		}
	}
}

// TestPDOneMatchesRandom pins the other end of the probe range: pd with
// d = 1 draws exactly one index from the dispatch stream per arrival, so
// it must reproduce the random dispatcher byte for byte.
func TestPDOneMatchesRandom(t *testing.T) {
	for mix, specs := range pdMixes(t) {
		for _, seed := range []uint64{3, 23, 101} {
			for _, load := range []float64{2.0, 4.5} {
				cfg := Config{Lambda: load, Jobs: 2000, SizeShape: 4, Seed: seed}
				rnd, err := Simulate(specs, Random{}, w4(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				pd, err := Simulate(specs, &PowerOfD{D: 1}, w4(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := shardFingerprint(pd), shardFingerprint(rnd); got != want {
					t.Errorf("%s seed=%d load=%v: pd1 != random:\n%s\nvs\n%s", mix, seed, load, got, want)
				}
			}
		}
	}
}

// TestPDProbeSetProperties checks the sampled probe sets directly:
// in-range, duplicate-free (strictly increasing, since sample keeps them
// sorted), exactly d indices, and replayable from the seed alone — two
// generators derived the way Simulate derives the dispatch stream yield
// identical probe sequences.
func TestPDProbeSetProperties(t *testing.T) {
	const n = 23
	// sample only consults Up(), true on a fresh server, so bare servers
	// stand in for a fully in-service farm.
	servers := make([]*eventsim.Server, n)
	for i := range servers {
		servers[i] = new(eventsim.Server)
	}
	for _, seed := range []uint64{1, 9, 77} {
		// The dispatch stream as Simulate derives it from the run seed.
		ra := stats.NewRNG(seed ^ 0xd1b54a32d192ed03)
		rb := stats.NewRNG(seed ^ 0xd1b54a32d192ed03)
		pa := &PowerOfD{D: 4}
		pb := &PowerOfD{D: 4}
		for draw := 0; draw < 500; draw++ {
			a := pa.sample(pa.D, servers, ra)
			if len(a) != pa.D {
				t.Fatalf("seed=%d draw %d: %d probes, want %d", seed, draw, len(a), pa.D)
			}
			for i, v := range a {
				if v < 0 || v >= n {
					t.Fatalf("seed=%d draw %d: probe %d out of range [0,%d)", seed, draw, v, n)
				}
				if i > 0 && a[i-1] >= v {
					t.Fatalf("seed=%d draw %d: probes %v not strictly increasing (dup or unsorted)", seed, draw, a)
				}
			}
			b := pb.sample(pb.D, servers, rb)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed=%d draw %d: replay diverged: %v vs %v", seed, draw, a, b)
				}
			}
		}
	}
}

// TestPDSupermarketCrossValidation extends the M/M/c Erlang-C
// cross-validation (TestFarmMatchesMMCAnalytics) to the pd dispatcher
// under UniformModel. Four single-context no-interference servers behind
// pd1 split the Poisson stream uniformly: each queue is an independent
// M/M/1 at the per-server load, with the analytic Erlang-C mean
// turnaround — and pd1 must equal the random dispatcher's pinned
// turnaround bitwise. pd2 is the classic supermarket model and must land
// strictly between random and full-information jsq.
func TestPDSupermarketCrossValidation(t *testing.T) {
	const nServers = 4
	tab := uniformTable(1)
	specs := make([]ServerSpec, nServers)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	const load = 0.8
	lambda := load * nServers // mu = 1 per server
	cfg := Config{Lambda: lambda, Jobs: 40_000, SizeShape: 1, Seed: 1}
	run := func(disp string) *SweepResult {
		res, err := Sweep(context.Background(), runner.Config{}, specs, disp, workload.Workload{0}, cfg, 8)
		if err != nil {
			t.Fatalf("%s: %v", disp, err)
		}
		return res
	}
	rnd, pd1, pd2, jsq := run("random"), run("pd1"), run("pd2"), run("jsq")

	if pd1.MeanTurnaround != rnd.MeanTurnaround || pd1.P99Turnaround != rnd.P99Turnaround ||
		pd1.Utilisation != rnd.Utilisation || pd1.Throughput != rnd.Throughput {
		t.Errorf("pd1 does not reproduce random: %+v vs %+v", pd1, rnd)
	}
	// Uniform splitting of a Poisson stream is Poisson thinning: each
	// server is M/M/1 at rate lambda/n.
	q := queueing.MMC{Lambda: lambda / nServers, Mu: 1, C: 1}
	want, err := q.MeanTurnaround()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pd1.MeanTurnaround-want) / want; rel > 0.05 {
		t.Errorf("pd1 turnaround %.4f vs split-M/M/1 analytic %.4f (rel err %.1f%%)",
			pd1.MeanTurnaround, want, 100*rel)
	}
	// The supermarket ordering: two choices beat one by a wide margin at
	// load 0.8, and full information beats two choices.
	if !(pd2.MeanTurnaround < 0.9*pd1.MeanTurnaround) {
		t.Errorf("pd2 turnaround %.4f not clearly below pd1/random %.4f", pd2.MeanTurnaround, pd1.MeanTurnaround)
	}
	if !(jsq.MeanTurnaround < pd2.MeanTurnaround) {
		t.Errorf("jsq turnaround %.4f not below pd2 %.4f", jsq.MeanTurnaround, pd2.MeanTurnaround)
	}
}

// TestNewDispatcherPDParsing pins the pd name forms.
func TestNewDispatcherPDParsing(t *testing.T) {
	for name, want := range map[string]string{"pd": "pd2", "pd1": "pd1", "pd7": "pd7"} {
		d, err := NewDispatcher(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name() != want {
			t.Errorf("NewDispatcher(%q).Name() = %q, want %q", name, d.Name(), want)
		}
	}
	for _, bad := range []string{"pd0", "pd-1", "pdx", "pd2.5"} {
		if _, err := NewDispatcher(bad); err == nil {
			t.Errorf("NewDispatcher(%q) succeeded, want error", bad)
		}
	}
}
