package farm

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/workload"
)

// shardFingerprint renders every field of a Result except the dispatcher
// label, so runs of the same policy under different engines or labels
// can be diffed bit for bit.
func shardFingerprint(r *Result) string {
	c := *r
	c.Dispatcher = ""
	return fmt.Sprintf("%+v", c)
}

func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestShardedMatchesSerialFarm cross-validates the two engines: the
// sharded coordinator advances each server only at its own events, so
// its float arithmetic partitions intervals differently from the serial
// lockstep loop — but both process the same events with the same RNG
// streams, so every metric must agree to tight float tolerance and
// dispatch counts must agree exactly.
func TestShardedMatchesSerialFarm(t *testing.T) {
	tab := smtTable(t)
	specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
	for _, disp := range []string{"random", "rr", "jsq", "li", "pd2"} {
		cfg := Config{Lambda: 6.0, Jobs: 4000, SizeShape: 4, Seed: 11}
		ds, err := NewDispatcher(disp)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := Simulate(specs, ds, w4(), cfg)
		if err != nil {
			t.Fatalf("%s: serial: %v", disp, err)
		}
		dd, _ := NewDispatcher(disp)
		sharded, err := SimulateSharded(specs, dd, w4(), cfg, ShardConfig{Shards: 3, Workers: 2})
		if err != nil {
			t.Fatalf("%s: sharded: %v", disp, err)
		}
		if sharded.Completed != serial.Completed || sharded.Counted != serial.Counted {
			t.Errorf("%s: counts differ: sharded %d/%d vs serial %d/%d",
				disp, sharded.Completed, sharded.Counted, serial.Completed, serial.Counted)
		}
		for i := range serial.PerServer {
			if sharded.PerServer[i].Dispatched != serial.PerServer[i].Dispatched {
				t.Errorf("%s: server %d dispatched %d (sharded) vs %d (serial)",
					disp, i, sharded.PerServer[i].Dispatched, serial.PerServer[i].Dispatched)
			}
		}
		checks := []struct {
			name      string
			got, want float64
		}{
			{"mean turnaround", sharded.MeanTurnaround, serial.MeanTurnaround},
			{"p50", sharded.P50Turnaround, serial.P50Turnaround},
			{"p99", sharded.P99Turnaround, serial.P99Turnaround},
			{"utilisation", sharded.Utilisation, serial.Utilisation},
			{"empty fraction", sharded.EmptyFraction, serial.EmptyFraction},
			{"throughput", sharded.Throughput, serial.Throughput},
			{"elapsed", sharded.Elapsed, serial.Elapsed},
		}
		for _, c := range checks {
			if relErr(c.got, c.want) > 1e-9 {
				t.Errorf("%s: %s diverges: sharded %v vs serial %v", disp, c.name, c.got, c.want)
			}
		}
	}
}

// TestShardedInvariantToShardConfig pins the tentpole contract, and then
// some: the ISSUE demands byte-identical output at shard parallelism 1
// vs NumCPU, and the engine delivers bit-identity across the full knob
// space — shard counts, worker counts and slab lengths — because every
// server's float arithmetic is a function of its own event times only.
func TestShardedInvariantToShardConfig(t *testing.T) {
	tab := smtTable(t)
	specs := make([]ServerSpec, 7)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	cfg := Config{Lambda: 9.0, Jobs: 3000, SizeShape: 4, Seed: 13}
	var ref string
	var refSC ShardConfig
	for _, sc := range []ShardConfig{
		{Shards: 1, Workers: 1},
		{Shards: 1, Workers: runtime.NumCPU()},
		{Shards: 3, Workers: 1},
		{Shards: 3, Workers: runtime.NumCPU(), Slab: 0.05},
		{Shards: 7, Workers: 2, Slab: 1.7},
		{Shards: 64, Workers: runtime.NumCPU()}, // clamped to the server count
	} {
		d, _ := NewDispatcher("pd2")
		res, err := SimulateSharded(specs, d, w4(), cfg, sc)
		if err != nil {
			t.Fatalf("%+v: %v", sc, err)
		}
		fp := fmt.Sprintf("%+v", res)
		if ref == "" {
			ref, refSC = fp, sc
			continue
		}
		if fp != ref {
			t.Errorf("sharded result differs between %+v and %+v:\n%s\nvs\n%s", refSC, sc, ref, fp)
		}
	}
}

// TestShardedAutoSlabInvariance pins the adaptive slab mode (Slab == 0)
// against the fixed-slab contract: auto caps come from an event-density
// estimate, so the slab boundaries differ from any fixed setting — but
// boundaries are unobservable, so the Result must stay byte-identical to
// explicit slab lengths, to the uncapped +Inf escape hatch, and across
// worker counts. Negative Slab clamps to auto. The bursty schedule's
// troughs leave queued work draining far from the next arrival, which is
// exactly where the adaptive cap engages.
func TestShardedAutoSlabInvariance(t *testing.T) {
	tab := smtTable(t)
	specs := make([]ServerSpec, 9)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	cfg := Config{
		Lambda:    4.0,
		Schedule:  []Phase{{Duration: 0.5, Rate: 30.0}, {Duration: 3, Rate: 0.2}},
		Jobs:      4000,
		SizeShape: 4,
		Seed:      23,
	}
	var ref string
	var refSC ShardConfig
	for _, sc := range []ShardConfig{
		{Shards: 5, Workers: 1, Slab: 0},
		{Shards: 5, Workers: runtime.NumCPU(), Slab: 0},
		{Shards: 5, Workers: 1, Slab: math.Inf(1)},
		{Shards: 5, Workers: 1, Slab: 0.25},
		{Shards: 5, Workers: 2, Slab: -3}, // negative clamps to auto
	} {
		d, _ := NewDispatcher("pd2")
		res, err := SimulateSharded(specs, d, w4(), cfg, sc)
		if err != nil {
			t.Fatalf("%+v: %v", sc, err)
		}
		fp := fmt.Sprintf("%+v", res)
		if ref == "" {
			ref, refSC = fp, sc
			continue
		}
		if fp != ref {
			t.Errorf("auto-slab result differs between %+v and %+v:\n%s\nvs\n%s", refSC, sc, ref, fp)
		}
	}
}

// TestShardedDeterministicUnderGOMAXPROCS is the -race stress test: one
// process runs the sharded farm at GOMAXPROCS 1, 2 and NumCPU and diffs
// the full result structs. Under `go test -race` this also proves the
// slab barrier publishes every shard's state safely.
func TestShardedDeterministicUnderGOMAXPROCS(t *testing.T) {
	tab := smtTable(t)
	specs := make([]ServerSpec, 8)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	cfg := Config{Lambda: 10.0, Jobs: 3000, SizeShape: 4, Seed: 17}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var ref string
	var refP int
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(p)
		d, _ := NewDispatcher("li")
		res, err := SimulateSharded(specs, d, w4(), cfg, ShardConfig{Shards: 4, Workers: p})
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", p, err)
		}
		fp := fmt.Sprintf("%+v", res)
		if ref == "" {
			ref, refP = fp, p
			continue
		}
		if fp != ref {
			t.Errorf("result differs between GOMAXPROCS=%d and %d:\n%s\nvs\n%s", refP, p, ref, fp)
		}
	}
}

// TestShardedHeterogeneousAndScheduled exercises the coordinator off the
// happy path: heterogeneous tables and a bursty cyclic arrival schedule
// with a zero-rate trough (slab boundaries straddle phase boundaries).
func TestShardedHeterogeneousAndScheduled(t *testing.T) {
	uni := perfdb.Build(perfdb.UniformModel{K: 4}, program.Suite()[:4])
	specs := []ServerSpec{fcfsSpec(smtTable(t)), fcfsSpec(uni), fcfsSpec(smtTable(t))}
	cfg := Config{
		Lambda:    3.0,
		Schedule:  []Phase{{Duration: 2, Rate: 6.0}, {Duration: 1, Rate: 0}, {Duration: 3, Rate: 2.0}},
		Jobs:      3000,
		SizeShape: 4,
		Seed:      19,
	}
	d1, _ := NewDispatcher("li")
	serial, err := Simulate(specs, d1, w4(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDispatcher("li")
	sharded, err := SimulateSharded(specs, d2, w4(), cfg, ShardConfig{Shards: 3, Workers: 2, Slab: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Completed != serial.Completed {
		t.Errorf("completed %d (sharded) vs %d (serial)", sharded.Completed, serial.Completed)
	}
	if relErr(sharded.MeanTurnaround, serial.MeanTurnaround) > 1e-9 {
		t.Errorf("turnaround diverges: %v vs %v", sharded.MeanTurnaround, serial.MeanTurnaround)
	}
	if relErr(sharded.Elapsed, serial.Elapsed) > 1e-9 {
		t.Errorf("elapsed diverges: %v vs %v", sharded.Elapsed, serial.Elapsed)
	}
}

// FuzzShardSlabExchange fuzzes the shard-boundary exchange the way the
// heap is fuzzed against a reference scan: random slab lengths, shard
// counts and bursty schedules (arrival bursts straddling slab
// boundaries) against the unsharded event loop as the reference, plus
// the engine's own invariance between worker counts 1 and NumCPU.
func FuzzShardSlabExchange(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint8(2), uint8(4))
	f.Add(uint64(7), uint16(250), uint8(3), uint8(16))
	f.Add(uint64(42), uint16(10), uint8(5), uint8(1))
	f.Add(uint64(9000), uint16(65535), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, slabMilli uint16, shards, burst uint8) {
		tab := smtTable(t)
		specs := []ServerSpec{fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab), fcfsSpec(tab)}
		cfg := Config{Lambda: 5.0, Jobs: 600, SizeShape: 4, Seed: seed%1024 + 1}
		if burst > 0 {
			// A cyclic burst/trough schedule whose bursts straddle slab
			// boundaries: rate 1+burst for half a unit, silence after.
			cfg.Schedule = []Phase{
				{Duration: 0.5, Rate: float64(burst) + 1},
				{Duration: 0.25 + float64(seed%7)/4, Rate: 0.5},
			}
		}
		d1, _ := NewDispatcher("li")
		serial, err := Simulate(specs, d1, w4(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sc := ShardConfig{
			Shards:  int(shards%8) + 1,
			Workers: 1,
			Slab:    float64(slabMilli) / 1000,
		}
		d2, _ := NewDispatcher("li")
		sharded, err := SimulateSharded(specs, d2, w4(), cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		// Event-order equivalence with the unsharded farm: same events,
		// same dispatch stream, metrics equal to float tolerance.
		if sharded.Completed != serial.Completed || sharded.Counted != serial.Counted {
			t.Fatalf("counts differ: sharded %d/%d vs serial %d/%d",
				sharded.Completed, sharded.Counted, serial.Completed, serial.Counted)
		}
		for i := range serial.PerServer {
			if sharded.PerServer[i].Dispatched != serial.PerServer[i].Dispatched {
				t.Fatalf("server %d dispatched %d (sharded) vs %d (serial)",
					i, sharded.PerServer[i].Dispatched, serial.PerServer[i].Dispatched)
			}
		}
		if relErr(sharded.MeanTurnaround, serial.MeanTurnaround) > 1e-6 ||
			relErr(sharded.Elapsed, serial.Elapsed) > 1e-6 ||
			relErr(sharded.Throughput, serial.Throughput) > 1e-6 {
			t.Fatalf("metrics diverge:\nsharded %+v\nserial  %+v", sharded, serial)
		}
		// Bit-identity across worker counts for the same slab geometry.
		d3, _ := NewDispatcher("li")
		wide, err := SimulateSharded(specs, d3, w4(), cfg, ShardConfig{
			Shards: sc.Shards, Workers: runtime.NumCPU(), Slab: sc.Slab,
		})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := fmt.Sprintf("%+v", sharded), fmt.Sprintf("%+v", wide); a != b {
			t.Fatalf("workers 1 vs NumCPU differ:\n%s\nvs\n%s", a, b)
		}
	})
}

// TestShardedWarmupExceedsJobs mirrors the serial edge case.
func TestShardedWarmupExceedsJobs(t *testing.T) {
	tab := uniformTable(1)
	d, _ := NewDispatcher("rr")
	res, err := SimulateSharded([]ServerSpec{fcfsSpec(tab)}, d, workload.Workload{0},
		Config{Lambda: 0.5, Jobs: 50, Warmup: 100, SizeShape: 1}, ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counted != 0 || res.MeanTurnaround != 0 {
		t.Errorf("counted %d turnaround %v, want 0, 0", res.Counted, res.MeanTurnaround)
	}
	if res.Completed != 50 {
		t.Errorf("completed %d, want 50", res.Completed)
	}
}
