package farm

import (
	"fmt"
	"runtime"
	"testing"

	"symbiosched/internal/fault"
)

// BenchmarkFarmScaling measures one farm simulation as the server count
// grows with the offered load held at ~0.8 of aggregate capacity. The
// per-event cost of finding the next completion is what separates the
// implementations here; output is pinned identical across iterations, so
// the benchmark doubles as a determinism check at every size.
func BenchmarkFarmScaling(b *testing.B) {
	tab := smtTable(b)
	for _, n := range []int{4, 64, 512} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			specs := make([]ServerSpec, n)
			for i := range specs {
				specs[i] = fcfsSpec(tab)
			}
			cfg := Config{Lambda: 1.5 * float64(n), Jobs: 4000, SizeShape: 4, Seed: 1}
			var pin string
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Simulate(specs, &RoundRobin{}, w4(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				fp := fmt.Sprintf("%v/%v/%v/%v",
					res.MeanTurnaround, res.P99Turnaround, res.Throughput, res.Utilisation)
				if pin == "" {
					pin = fp
				} else if fp != pin {
					b.Fatalf("output drifted across iterations:\n%s\nvs\n%s", pin, fp)
				}
			}
		})
	}
}

// BenchmarkShardedWorkerScaling measures how the sharded engine's wall
// time responds to the worker count at a fixed shard geometry — the
// coordination-layer scaling story. The workload is a slice of the
// megafarm acceptance shape (many shards, pd2 dispatch, load ~0.8).
// Output is pinned identical across worker counts, so the benchmark
// doubles as the byte-identity check the ShardConfig contract makes.
func BenchmarkShardedWorkerScaling(b *testing.B) {
	tab := smtTable(b)
	const n = 8192
	specs := make([]ServerSpec, n)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	cfg := Config{Lambda: 1.5 * float64(n), Jobs: 4000, SizeShape: 4, Seed: 1}
	var pin string
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := NewDispatcher("pd2")
				if err != nil {
					b.Fatal(err)
				}
				res, err := SimulateSharded(specs, d, w4(), cfg, ShardConfig{Shards: 64, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				fp := fmt.Sprintf("%v/%v/%v/%v",
					res.MeanTurnaround, res.P99Turnaround, res.Throughput, res.Utilisation)
				if pin == "" {
					pin = fp
				} else if fp != pin {
					b.Fatalf("output drifted across iterations or worker counts:\n%s\nvs\n%s", pin, fp)
				}
			}
		})
	}
}

// BenchmarkFarmFaultOverhead pins the cost of the fault-enabled hot path:
// the same sharded simulation with faults off and with a busy
// failure/repair process (MTBF>0). The on/off ns/op ratio is the bounded
// factor BENCH_farm.json records — fault injection must stay a
// constant-factor tax on the event loop, not a new asymptotic term.
func BenchmarkFarmFaultOverhead(b *testing.B) {
	tab := smtTable(b)
	const n = 64
	specs := make([]ServerSpec, n)
	for i := range specs {
		specs[i] = fcfsSpec(tab)
	}
	cfg := Config{Lambda: 1.5 * float64(n), Jobs: 4000, SizeShape: 4, Seed: 1}
	for _, bc := range []struct {
		name string
		fc   fault.Config
	}{
		{"faults=off", fault.Config{}},
		{"faults=on", fault.Config{MTBF: 50, MTTR: 2.5, MaxRetries: 5, RetryDelay: 0.5, Checkpoint: fault.Restart}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := cfg
			c.Faults = bc.fc
			var pin string
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := NewDispatcher("pd2")
				if err != nil {
					b.Fatal(err)
				}
				res, err := SimulateSharded(specs, d, w4(), c, ShardConfig{Shards: 8, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				fp := fmt.Sprintf("%v/%v/%v", res.MeanTurnaround, res.Throughput, res.Availability)
				if pin == "" {
					pin = fp
				} else if fp != pin {
					b.Fatalf("output drifted across iterations:\n%s\nvs\n%s", pin, fp)
				}
			}
		})
	}
}

// BenchmarkFarmSharded measures the sharded time-slab engine against the
// same workload shape: shards=1/workers=1 isolates the lazy per-server
// advance (O(log n) per event vs the serial engine's O(N) sweep), the
// NumCPU variant adds slab parallelism on top. Output is pinned across
// iterations — and across the two shard configurations, since the sharded
// Result is byte-identical at any Shards/Workers setting.
func BenchmarkFarmSharded(b *testing.B) {
	tab := smtTable(b)
	ncpu := runtime.NumCPU()
	for _, n := range []int{512, 8192} {
		specs := make([]ServerSpec, n)
		for i := range specs {
			specs[i] = fcfsSpec(tab)
		}
		cfg := Config{Lambda: 1.5 * float64(n), Jobs: 4000, SizeShape: 4, Seed: 1}
		var pin string
		// On single-core machines the parallel variant still exercises the
		// multi-shard merge path, just without a second worker.
		wide := ShardConfig{Shards: ncpu, Workers: ncpu}
		if ncpu == 1 {
			wide = ShardConfig{Shards: 8, Workers: 1}
		}
		for _, sc := range []ShardConfig{{Shards: 1, Workers: 1}, wide} {
			b.Run(fmt.Sprintf("servers=%d/shards=%d/workers=%d", n, sc.Shards, sc.Workers), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := SimulateSharded(specs, &RoundRobin{}, w4(), cfg, sc)
					if err != nil {
						b.Fatal(err)
					}
					fp := fmt.Sprintf("%v/%v/%v/%v",
						res.MeanTurnaround, res.P99Turnaround, res.Throughput, res.Utilisation)
					if pin == "" {
						pin = fp
					} else if fp != pin {
						b.Fatalf("output drifted across iterations or shard configs:\n%s\nvs\n%s", pin, fp)
					}
				}
			})
		}
	}
}
