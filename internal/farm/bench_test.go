package farm

import (
	"fmt"
	"testing"
)

// BenchmarkFarmScaling measures one farm simulation as the server count
// grows with the offered load held at ~0.8 of aggregate capacity. The
// per-event cost of finding the next completion is what separates the
// implementations here; output is pinned identical across iterations, so
// the benchmark doubles as a determinism check at every size.
func BenchmarkFarmScaling(b *testing.B) {
	tab := smtTable(b)
	for _, n := range []int{4, 64, 512} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			specs := make([]ServerSpec, n)
			for i := range specs {
				specs[i] = fcfsSpec(tab)
			}
			cfg := Config{Lambda: 1.5 * float64(n), Jobs: 4000, SizeShape: 4, Seed: 1}
			var pin string
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Simulate(specs, &RoundRobin{}, w4(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				fp := fmt.Sprintf("%v/%v/%v/%v",
					res.MeanTurnaround, res.P99Turnaround, res.Throughput, res.Utilisation)
				if pin == "" {
					pin = fp
				} else if fp != pin {
					b.Fatalf("output drifted across iterations:\n%s\nvs\n%s", pin, fp)
				}
			}
		})
	}
}
