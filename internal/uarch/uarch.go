// Package uarch defines the machine configurations of the study: a 4-way
// SMT 4-wide out-of-order core and a quad-core with a shared last-level
// cache and shared memory bus (paper Section V-A), together with the SMT
// fetch and ROB-partitioning policies compared in Section VII.
package uarch

import "fmt"

// FetchPolicy selects how an SMT core divides front-end (fetch/dispatch)
// bandwidth between hardware threads.
type FetchPolicy int

const (
	// ICOUNT prioritises the thread with the fewest in-flight
	// instructions (Tullsen et al., ISCA 1996). It implicitly steers
	// front-end bandwidth towards fast-moving threads and throttles
	// threads blocked on long-latency misses.
	ICOUNT FetchPolicy = iota
	// RoundRobin cycles fetch between ready threads with equal weight.
	RoundRobin
)

// String implements fmt.Stringer.
func (f FetchPolicy) String() string {
	switch f {
	case ICOUNT:
		return "ICOUNT"
	case RoundRobin:
		return "RR"
	default:
		return fmt.Sprintf("FetchPolicy(%d)", int(f))
	}
}

// ROBPolicy selects how the reorder buffer (and, by extension, the other
// non-architectural buffers) is divided between SMT threads.
type ROBPolicy int

const (
	// DynamicROB lets threads share the ROB freely (Tullsen et al.);
	// stalled memory-bound threads can occupy a disproportionate share.
	DynamicROB ROBPolicy = iota
	// StaticROB gives each thread a fixed 1/K partition (Raasch &
	// Reinhardt, PACT 2003).
	StaticROB
)

// String implements fmt.Stringer.
func (r ROBPolicy) String() string {
	switch r {
	case DynamicROB:
		return "dynamic"
	case StaticROB:
		return "static"
	default:
		return fmt.Sprintf("ROBPolicy(%d)", int(r))
	}
}

// Core describes one 4-wide out-of-order core. The defaults (see
// DefaultCore) model the paper's Sniper configuration at the level of
// detail a mechanistic interval model needs.
type Core struct {
	// Width is the dispatch width in instructions per cycle.
	Width int
	// ROBSize is the reorder-buffer capacity in instructions.
	ROBSize int
	// BranchPenalty is the front-end refill penalty of a mispredicted
	// branch, in cycles.
	BranchPenalty float64
	// LLCHitLatency is the load-to-use latency of a hit in the last-level
	// cache, in cycles.
	LLCHitLatency float64
	// MemLatency is the unloaded (queue-free) DRAM access latency in
	// cycles.
	MemLatency float64
}

// DefaultCore returns the 4-wide out-of-order core used by both machine
// configurations.
func DefaultCore() Core {
	return Core{
		Width:         4,
		ROBSize:       224,
		BranchPenalty: 14,
		LLCHitLatency: 30,
		MemLatency:    230,
	}
}

// Bus describes the shared memory bus. Service time is the bus occupancy
// of one cache-line transfer; queueing delay on top of MemLatency is
// computed by internal/membus from the aggregate line rate.
type Bus struct {
	// ServiceCycles is the bus occupancy of a single 64-byte line
	// transfer, in core cycles.
	ServiceCycles float64
}

// DefaultBus returns the shared memory bus configuration (a single DDR3
// channel: ≈6.4 GB/s of sustainable bandwidth at 3.2 GHz with 64-byte
// lines), sized so that a single streaming benchmark uses roughly a third
// of the channel, as on the paper's Sniper setup.
func DefaultBus() Bus { return Bus{ServiceCycles: 40} }

// SMTMachine is the first configuration of Section V-A: one 4-wide
// out-of-order core running K hardware threads that share everything —
// front-end, ROB, caches and the memory bus.
type SMTMachine struct {
	Core Core
	// Threads is the number of hardware thread contexts (K = 4).
	Threads int
	// Fetch and ROB select the Section VII policies; the paper's default
	// is ICOUNT with dynamic ROB sharing.
	Fetch FetchPolicy
	ROB   ROBPolicy
	// SharedCacheKB is the capacity of the core's cache shared between
	// threads (a 1 MB last-level cache: an SMT core is a single core, so
	// all cache levels are shared; the L1s are folded into the profiles).
	SharedCacheKB int
	Bus           Bus
}

// DefaultSMT returns the paper's default SMT configuration: 4-way SMT,
// ICOUNT fetch, dynamic ROB sharing.
func DefaultSMT() SMTMachine {
	return SMTMachine{
		Core:          DefaultCore(),
		Threads:       4,
		Fetch:         ICOUNT,
		ROB:           DynamicROB,
		SharedCacheKB: 1024,
		Bus:           DefaultBus(),
	}
}

// String returns a compact description, e.g. "SMT4/ICOUNT/dynamic".
func (m SMTMachine) String() string {
	return fmt.Sprintf("SMT%d/%s/%s", m.Threads, m.Fetch, m.ROB)
}

// MulticoreMachine is the second configuration of Section V-A: K identical
// cores, each with private core resources and a private L2, sharing a
// last-level cache and the memory bus.
type MulticoreMachine struct {
	Core Core
	// Cores is the number of cores (K = 4).
	Cores int
	// PrivateL2KB is each core's private L2 capacity; it filters accesses
	// before they reach the shared LLC.
	PrivateL2KB int
	// SharedLLCKB is the shared last-level cache capacity (8 MB).
	SharedLLCKB int
	Bus         Bus
}

// DefaultMulticore returns the paper's quad-core configuration.
func DefaultMulticore() MulticoreMachine {
	return MulticoreMachine{
		Core:        DefaultCore(),
		Cores:       4,
		PrivateL2KB: 256,
		SharedLLCKB: 4096,
		Bus:         DefaultBus(),
	}
}

// String returns a compact description, e.g. "quad4/LLC8192KB".
func (m MulticoreMachine) String() string {
	return fmt.Sprintf("quad%d/LLC%dKB", m.Cores, m.SharedLLCKB)
}

// Validate checks an SMT machine for structurally invalid parameters.
func (m SMTMachine) Validate() error {
	if m.Threads < 1 {
		return fmt.Errorf("uarch: SMT machine needs >= 1 thread, got %d", m.Threads)
	}
	return validateCore(m.Core, m.SharedCacheKB)
}

// Validate checks a multicore machine for structurally invalid parameters.
func (m MulticoreMachine) Validate() error {
	if m.Cores < 1 {
		return fmt.Errorf("uarch: multicore machine needs >= 1 core, got %d", m.Cores)
	}
	if m.PrivateL2KB < 0 {
		return fmt.Errorf("uarch: negative private L2 size %d", m.PrivateL2KB)
	}
	return validateCore(m.Core, m.SharedLLCKB)
}

func validateCore(c Core, llcKB int) error {
	if c.Width < 1 || c.ROBSize < c.Width {
		return fmt.Errorf("uarch: invalid core width=%d rob=%d", c.Width, c.ROBSize)
	}
	if c.BranchPenalty < 0 || c.LLCHitLatency < 0 || c.MemLatency <= 0 {
		return fmt.Errorf("uarch: invalid core latencies %+v", c)
	}
	if llcKB <= 0 {
		return fmt.Errorf("uarch: invalid LLC size %d KB", llcKB)
	}
	return nil
}
