package uarch

import (
	"strings"
	"testing"
)

func TestDefaultsValidate(t *testing.T) {
	if err := DefaultSMT().Validate(); err != nil {
		t.Errorf("default SMT machine invalid: %v", err)
	}
	if err := DefaultMulticore().Validate(); err != nil {
		t.Errorf("default multicore machine invalid: %v", err)
	}
}

func TestPaperConfiguration(t *testing.T) {
	// Section V-A: a 4-way SMT 4-wide out-of-order core, and a multicore
	// of 4 4-wide cores with shared LLC and memory bus.
	smt := DefaultSMT()
	if smt.Threads != 4 || smt.Core.Width != 4 {
		t.Errorf("SMT config %+v is not 4-way/4-wide", smt)
	}
	if smt.Fetch != ICOUNT || smt.ROB != DynamicROB {
		t.Errorf("paper default is ICOUNT with dynamic ROB, got %s/%s", smt.Fetch, smt.ROB)
	}
	quad := DefaultMulticore()
	if quad.Cores != 4 || quad.Core.Width != 4 {
		t.Errorf("quad config %+v is not 4x4-wide", quad)
	}
	if quad.SharedLLCKB <= 0 || quad.Bus.ServiceCycles <= 0 {
		t.Errorf("quad must share an LLC and a bus: %+v", quad)
	}
}

func TestValidationCatchesBadConfigs(t *testing.T) {
	smt := DefaultSMT()
	smt.Threads = 0
	if smt.Validate() == nil {
		t.Error("zero threads must fail validation")
	}
	smt = DefaultSMT()
	smt.Core.Width = 0
	if smt.Validate() == nil {
		t.Error("zero width must fail validation")
	}
	smt = DefaultSMT()
	smt.SharedCacheKB = 0
	if smt.Validate() == nil {
		t.Error("zero cache must fail validation")
	}
	smt = DefaultSMT()
	smt.Core.MemLatency = 0
	if smt.Validate() == nil {
		t.Error("zero memory latency must fail validation")
	}
	quad := DefaultMulticore()
	quad.Cores = -1
	if quad.Validate() == nil {
		t.Error("negative cores must fail validation")
	}
	quad = DefaultMulticore()
	quad.PrivateL2KB = -1
	if quad.Validate() == nil {
		t.Error("negative L2 must fail validation")
	}
	quad = DefaultMulticore()
	quad.Core.ROBSize = 1
	if quad.Validate() == nil {
		t.Error("ROB smaller than width must fail validation")
	}
}

func TestStringers(t *testing.T) {
	if s := DefaultSMT().String(); !strings.Contains(s, "SMT4") || !strings.Contains(s, "ICOUNT") {
		t.Errorf("SMT String() = %q", s)
	}
	if s := DefaultMulticore().String(); !strings.Contains(s, "quad4") {
		t.Errorf("multicore String() = %q", s)
	}
	if ICOUNT.String() != "ICOUNT" || RoundRobin.String() != "RR" {
		t.Error("FetchPolicy stringer broken")
	}
	if DynamicROB.String() != "dynamic" || StaticROB.String() != "static" {
		t.Error("ROBPolicy stringer broken")
	}
	if FetchPolicy(9).String() == "" || ROBPolicy(9).String() == "" {
		t.Error("unknown policy values must still print")
	}
}
