package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"symbiosched/internal/stats"
)

func TestSolveIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{1, 2, 3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1 -> x = 2, y = 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := Solve(a, []float64{5, 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

// Property: Solve(A, A*x) recovers x for random well-conditioned A.
func TestSolveRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(42)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		n := 2 + r.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Float64()-0.5)
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Float64()*10 - 5
		}
		got, err := Solve(a, a.MulVec(want))
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square consistent system: residual must be ~0 and match Solve.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	want := []float64{1.5, -2}
	x, resid, err := LeastSquares(a, a.MulVec(want))
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if resid > 1e-10 {
		t.Errorf("resid = %v, want ~0", resid)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = c0 + c1*t through 4 points of an exact line plus symmetric
	// noise: the LS fit must recover the line exactly.
	ts := []float64{0, 1, 2, 3}
	noise := []float64{0.1, -0.1, -0.1, 0.1}
	a := NewMatrix(4, 2)
	b := make([]float64, 4)
	for i, tt := range ts {
		a.Set(i, 0, 1)
		a.Set(i, 1, tt)
		b[i] = 2 + 3*tt + noise[i]
	}
	x, resid, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("fit = %v, want [2 3]", x)
	}
	wantResid := Norm2(noise)
	if math.Abs(resid-wantResid) > 1e-9 {
		t.Errorf("resid = %v, want %v", resid, wantResid)
	}
}

// Property: the least-squares residual is orthogonal to the column space:
// A^T (A x - b) = 0.
func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	rng := stats.NewRNG(1234)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		m := 5 + r.Intn(20)
		n := 2 + r.Intn(3)
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Float64()*2-1)
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = r.Float64()*2 - 1
		}
		x, _, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw: skip
		}
		ax := a.MulVec(x)
		for j := 0; j < n; j++ {
			var dot float64
			for i := 0; i < m; i++ {
				dot += a.At(i, j) * (ax[i] - b[i])
			}
			if math.Abs(dot) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("expected error for underdetermined system")
	}
	b := NewMatrix(3, 2)
	if _, _, err := LeastSquares(b, []float64{1, 2}); err == nil {
		t.Error("expected error for rhs length mismatch")
	}
}

func TestDotAndNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}
