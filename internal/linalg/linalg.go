// Package linalg provides the small dense linear-algebra kernels the study
// needs: Gaussian elimination with partial pivoting and QR-based linear
// least squares. The matrices involved are tiny (at most a few hundred rows
// by a dozen columns), so clarity wins over blocking or SIMD tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system is (numerically) singular.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}

// Solve solves the square system A x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Solve requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: Solve rhs length %d != %d", len(b), a.Rows)
	}
	n := a.Rows
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, best := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				piv, best = r, v
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[piv*n+j] = m.Data[piv*n+j], m.Data[col*n+j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min_x ||A x - b||_2 for a full-column-rank A with
// Rows >= Cols using Householder QR. It returns the minimiser x and the
// residual norm ||A x - b||.
func LeastSquares(a *Matrix, b []float64) (x []float64, resid float64, err error) {
	if len(b) != a.Rows {
		return nil, 0, fmt.Errorf("linalg: LeastSquares rhs length %d != %d", len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, 0, fmt.Errorf("linalg: LeastSquares underdetermined %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	r := a.Clone()
	qtb := append([]float64(nil), b...)
	// Householder QR, applying reflectors to qtb on the fly.
	for k := 0; k < n; k++ {
		// Compute the norm of the k-th column below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-13 {
			return nil, 0, ErrSingular
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		// v = column; v[k] -= norm; normalise implicitly via beta.
		vk := r.At(k, k) - norm
		r.Set(k, k, norm)
		// Store the reflector tail in place of the eliminated entries.
		tail := make([]float64, m-k)
		tail[0] = vk
		for i := k + 1; i < m; i++ {
			tail[i-k] = r.At(i, k)
			r.Set(i, k, 0)
		}
		// Reflector H = I - 2 v v^T / (v^T v); with this sign choice
		// v^T v = -2*norm*vk, so H = I - v v^T / beta with beta = -norm*vk.
		beta := -vk * norm
		if beta == 0 {
			continue
		}
		// Apply (I - v v^T * (1/beta)) to remaining columns and to qtb.
		for j := k + 1; j < n; j++ {
			var dot float64
			dot += tail[0] * r.At(k, j)
			for i := k + 1; i < m; i++ {
				dot += tail[i-k] * r.At(i, j)
			}
			f := dot / beta
			r.Set(k, j, r.At(k, j)-f*tail[0])
			for i := k + 1; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*tail[i-k])
			}
		}
		var dot float64
		dot += tail[0] * qtb[k]
		for i := k + 1; i < m; i++ {
			dot += tail[i-k] * qtb[i]
		}
		f := dot / beta
		qtb[k] -= f * tail[0]
		for i := k + 1; i < m; i++ {
			qtb[i] -= f * tail[i-k]
		}
	}
	// Back-substitute R x = (Q^T b)[:n].
	x = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-13 {
			return nil, 0, ErrSingular
		}
		x[i] = s / d
	}
	var rs float64
	for i := n; i < m; i++ {
		rs += qtb[i] * qtb[i]
	}
	return x, math.Sqrt(rs), nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
