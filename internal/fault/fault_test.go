package fault

import (
	"errors"
	"math"
	"testing"

	"symbiosched/internal/sched"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // "" = valid
	}{
		{"zero value (disabled)", Config{}, ""},
		{"enabled, well formed", Config{MTBF: 10, MTTR: 1, MaxRetries: 3, RetryDelay: 0.5, Checkpoint: Restart}, ""},
		{"resume policy", Config{MTBF: 10, MTTR: 1, Checkpoint: Resume}, ""},
		{"empty policy defaults later", Config{MTBF: 10, MTTR: 1}, ""},
		{"negative MTBF", Config{MTBF: -1, MTTR: 1}, "MTBF"},
		{"NaN MTBF", Config{MTBF: math.NaN(), MTTR: 1}, "MTBF"},
		{"infinite MTBF", Config{MTBF: math.Inf(1), MTTR: 1}, "MTBF"},
		{"negative MTTR", Config{MTBF: 10, MTTR: -2}, "MTTR"},
		{"missing MTTR", Config{MTBF: 10}, "MTTR"},
		{"negative retry cap", Config{MTBF: 10, MTTR: 1, MaxRetries: -1}, "MaxRetries"},
		{"negative retry delay", Config{MTBF: 10, MTTR: 1, RetryDelay: -0.1}, "RetryDelay"},
		{"unknown checkpoint policy", Config{MTBF: 10, MTTR: 1, Checkpoint: "rollback"}, "Checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("Validate() flagged field %q, want %q", ce.Field, tc.field)
			}
		})
	}
}

func TestBackoff(t *testing.T) {
	c := Config{RetryDelay: 0.5}
	for attempt, want := range map[int]float64{0: 0, 1: 0.5, 2: 1, 3: 2, 4: 4} {
		if got := c.Backoff(attempt); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	if got := (Config{}).Backoff(5); got != 0 {
		t.Errorf("zero-delay Backoff = %v, want 0", got)
	}
	if got := c.Backoff(1000); math.IsInf(got, 1) || got <= 0 {
		t.Errorf("huge-attempt Backoff = %v, want finite positive", got)
	}
}

// TestInjectorAlternatesAndOrders pins the injector's semantics: every
// server alternates crash/repair starting with a crash, times are
// strictly increasing per server, and the merged stream is ordered by
// (time, server index).
func TestInjectorAlternatesAndOrders(t *testing.T) {
	cfg := Config{MTBF: 5, MTTR: 1}
	inj := NewInjector(cfg, 4, 1)
	lastT := 0.0
	perServerT := make([]float64, 4)
	perServerDown := make([]bool, 4)
	for i := 0; i < 200; i++ {
		ev := inj.Pop()
		if ev.T < lastT {
			t.Fatalf("event %d: time %v before previous %v", i, ev.T, lastT)
		}
		lastT = ev.T
		if ev.T <= perServerT[ev.Server] {
			t.Fatalf("server %d: transition at %v not after previous %v", ev.Server, ev.T, perServerT[ev.Server])
		}
		perServerT[ev.Server] = ev.T
		if ev.Down == perServerDown[ev.Server] {
			t.Fatalf("server %d: two consecutive transitions with Down=%v", ev.Server, ev.Down)
		}
		perServerDown[ev.Server] = ev.Down
	}
}

// TestInjectorShapeIndependence pins the CRN property the farm relies
// on: a server's fault trajectory depends only on (seed, server index),
// never on how many other servers exist.
func TestInjectorShapeIndependence(t *testing.T) {
	small := NewInjector(Config{MTBF: 5, MTTR: 1}, 2, 7)
	big := NewInjector(Config{MTBF: 5, MTTR: 1}, 16, 7)
	// Drain both and compare server 0 and 1's subsequences.
	collect := func(inj *Injector, n, upto int) map[int][]Event {
		out := make(map[int][]Event)
		for i := 0; i < upto; i++ {
			ev := inj.Pop()
			out[ev.Server] = append(out[ev.Server], ev)
		}
		return out
	}
	evSmall := collect(small, 2, 100)
	evBig := collect(big, 16, 800)
	for srv := 0; srv < 2; srv++ {
		a, b := evSmall[srv], evBig[srv]
		n := min(len(a), len(b))
		if n < 10 {
			t.Fatalf("server %d: too few events to compare (%d, %d)", srv, len(a), len(b))
		}
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				t.Fatalf("server %d event %d: %+v in 2-server farm vs %+v in 16-server farm", srv, i, a[i], b[i])
			}
		}
	}
}

func TestRetryQueueOrder(t *testing.T) {
	q := &RetryQueue{}
	if got := q.Next(); !math.IsInf(got, 1) {
		t.Fatalf("empty Next() = %v, want +Inf", got)
	}
	if q.Pop() != nil {
		t.Fatal("empty Pop() != nil")
	}
	j := func(id int) *sched.Job { return &sched.Job{ID: id} }
	q.Push(j(0), 3)
	q.Push(j(1), 1)
	q.Push(j(2), 2)
	q.Push(j(3), 1) // same due as job 1: insertion order breaks the tie
	if got := q.Next(); got != 1 {
		t.Fatalf("Next() = %v, want 1", got)
	}
	var order []int
	for q.Len() > 0 {
		order = append(order, q.Pop().ID)
	}
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}
