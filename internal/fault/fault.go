// Package fault supplies the deterministic failure model the farm
// engines inject: per-server alternating-renewal failure/repair
// processes (exponential MTBF/MTTR), a farm-level injector that orders
// their transitions into one (time, server index) event stream, and the
// retry queue re-dispatched jobs wait in.
//
// Determinism is the whole design: every server's process runs on its
// own RNG, seeded from (run seed, server index) alone — never from a
// shared stream — so the fault trajectory of server i is independent of
// farm size, engine (serial or sharded), shard layout and parallelism.
// Two runs of the same seed see the same crashes at the same times, and
// comparing checkpoint policies or dispatchers under churn is a
// common-random-numbers comparison.
package fault

import (
	"fmt"
	"math"

	"symbiosched/internal/eventsim"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
)

// Policy selects what happens to a crashed server's jobs.
type Policy string

const (
	// Restart forfeits each victim's progress: the job re-enters the farm
	// with its full size remaining, and the lost progress counts as
	// wasted work.
	Restart Policy = "restart"
	// Resume keeps each victim's completed work — the checkpointed-state
	// idealisation: only the failed server's future capacity is lost.
	Resume Policy = "resume"
)

// Policies lists the checkpoint policies in presentation order.
var Policies = []Policy{Restart, Resume}

// Config parameterises fault injection for one run. The zero value
// disables it (MTBF 0 — no failure process exists).
type Config struct {
	// MTBF is each server's mean up-time between failures, in simulated
	// time units. 0 disables fault injection entirely.
	MTBF float64
	// MTTR is each server's mean repair time. Required positive when
	// MTBF is set.
	MTTR float64
	// MaxRetries caps how often one job may be re-dispatched after a
	// crash; a job crashing beyond the cap is dropped (counted, never
	// completed). 0 drops victims on their first crash.
	MaxRetries int
	// RetryDelay is the base backoff before a crash victim re-arrives:
	// attempt k waits RetryDelay·2^(k-1). 0 re-dispatches at the crash
	// instant.
	RetryDelay float64
	// Checkpoint selects the victims' work policy (default Restart).
	Checkpoint Policy
}

// Enabled reports whether the config injects any faults.
func (c Config) Enabled() bool { return c.MTBF > 0 }

// WithDefaults fills the defaultable fields (only the checkpoint
// policy; the rates have no sensible default and must be explicit).
func (c Config) WithDefaults() Config {
	if c.Checkpoint == "" {
		c.Checkpoint = Restart
	}
	return c
}

// ConfigError is a typed fault-configuration error: the offending field
// and what is wrong with it. CLI flag validation and farm.Config
// validation both surface it, so a bad -mtbf fails fast instead of
// panicking mid-run.
type ConfigError struct {
	Field string
	Msg   string
}

func (e *ConfigError) Error() string { return fmt.Sprintf("fault: %s %s", e.Field, e.Msg) }

// Validate checks the config, returning a *ConfigError naming the first
// offending field. The disabled config (MTBF 0) is always valid as long
// as no field is outright negative or unknown.
func (c Config) Validate() error {
	if c.MTBF < 0 || math.IsNaN(c.MTBF) || math.IsInf(c.MTBF, 0) {
		return &ConfigError{"MTBF", fmt.Sprintf("must be a non-negative finite time, got %v", c.MTBF)}
	}
	if c.MTTR < 0 || math.IsNaN(c.MTTR) || math.IsInf(c.MTTR, 0) {
		return &ConfigError{"MTTR", fmt.Sprintf("must be a non-negative finite time, got %v", c.MTTR)}
	}
	if c.MTBF > 0 && c.MTTR <= 0 {
		return &ConfigError{"MTTR", fmt.Sprintf("must be positive when MTBF is set, got %v", c.MTTR)}
	}
	if c.MaxRetries < 0 {
		return &ConfigError{"MaxRetries", fmt.Sprintf("must be non-negative, got %d", c.MaxRetries)}
	}
	if c.RetryDelay < 0 || math.IsNaN(c.RetryDelay) || math.IsInf(c.RetryDelay, 0) {
		return &ConfigError{"RetryDelay", fmt.Sprintf("must be a non-negative finite time, got %v", c.RetryDelay)}
	}
	switch c.Checkpoint {
	case "", Restart, Resume:
	default:
		return &ConfigError{"Checkpoint", fmt.Sprintf("unknown policy %q (want %s or %s)", c.Checkpoint, Restart, Resume)}
	}
	return nil
}

// Backoff returns the deterministic re-arrival delay of a job's k-th
// retry (k >= 1): RetryDelay·2^(k-1), the usual exponential backoff.
// The doubling is capped so absurd retry counts cannot overflow to +Inf
// and stall the clock.
func (c Config) Backoff(attempt int) float64 {
	if c.RetryDelay <= 0 || attempt <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 60 {
		shift = 60
	}
	return c.RetryDelay * float64(uint64(1)<<shift)
}

// seedSalt decorrelates the fault streams from the engines' other RNG
// families (arrival = seed, job stream = seed^9e37…, dispatch =
// seed^d1b5…, estimators = seed + (i+1)·9e37…).
const seedSalt = 0x94d049bb133111eb

// ProcessSeed derives server i's fault-stream seed from the run seed.
// It depends only on (seed, i): adding servers, changing the dispatcher
// or switching engines never perturbs an existing server's fault times.
func ProcessSeed(seed uint64, server int) uint64 {
	return seed ^ seedSalt ^ (uint64(server)+1)*0x9e3779b97f4a7c15
}

// Event is one fault transition: server Server crashes (Down) or is
// repaired (!Down) at absolute time T.
type Event struct {
	T      float64
	Server int
	Down   bool
}

// process is one server's alternating-renewal failure/repair process.
type process struct {
	rng  *stats.RNG
	next float64 // absolute time of the next transition
	down bool    // state the NEXT transition moves out of
}

// Injector merges every server's failure/repair process into one
// deterministic event stream, ordered by (time, server index) — the
// same tie rule every event loop in this repo uses. All servers start
// up; each server alternates Exp(1/MTBF) up-periods with Exp(1/MTTR)
// down-periods forever.
type Injector struct {
	mtbf, mttr float64
	procs      []process
	h          *eventsim.TimeHeap
}

// NewInjector builds the injector for n servers under cfg (which must
// be enabled and validated), seeded from the run seed.
func NewInjector(cfg Config, n int, seed uint64) *Injector {
	inj := &Injector{mtbf: cfg.MTBF, mttr: cfg.MTTR, procs: make([]process, n), h: eventsim.NewTimeHeap(n)}
	for i := range inj.procs {
		p := &inj.procs[i]
		p.rng = stats.NewRNG(ProcessSeed(seed, i))
		p.next = p.rng.Exp(1 / cfg.MTBF)
		inj.h.Update(i, p.next)
	}
	return inj
}

// Next returns the absolute time of the earliest pending transition.
// Fault processes never end, so it is always finite.
func (inj *Injector) Next() float64 { return inj.h.Min() }

// Pop consumes and returns the earliest transition (lowest server index
// on ties) and schedules that server's next one.
func (inj *Injector) Pop() Event {
	i := inj.h.MinIndex()
	p := &inj.procs[i]
	t := p.next
	p.down = !p.down
	if p.down {
		p.next = t + p.rng.Exp(1/inj.mttr)
	} else {
		p.next = t + p.rng.Exp(1/inj.mtbf)
	}
	// Guard against float stagnation: at large t a draw below one ulp
	// would re-pop the same server forever at the same instant.
	if p.next <= t {
		p.next = math.Nextafter(t, math.Inf(1))
	}
	inj.h.Update(i, p.next)
	return Event{T: t, Server: i, Down: p.down}
}

// retryItem is one parked crash victim awaiting re-dispatch.
type retryItem struct {
	due float64
	seq int // insertion order, the deterministic tie-breaker
	job *sched.Job
}

// RetryQueue holds crash victims until their backoff expires, ordered
// by (due time, insertion order) — two victims of the same crash with
// the same backoff re-dispatch in the queue order they held on the
// failed server.
type RetryQueue struct {
	items []retryItem
	seq   int
}

// Len returns the number of queued victims.
func (q *RetryQueue) Len() int { return len(q.items) }

// Next returns the earliest due time, or +Inf when the queue is empty.
func (q *RetryQueue) Next() float64 {
	if len(q.items) == 0 {
		return math.Inf(1)
	}
	return q.items[0].due
}

// Push enqueues job j for re-dispatch at absolute time due.
func (q *RetryQueue) Push(j *sched.Job, due float64) {
	q.items = append(q.items, retryItem{due: due, seq: q.seq, job: j})
	q.seq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the earliest-due job (lowest insertion order
// on ties); nil when empty.
func (q *RetryQueue) Pop() *sched.Job {
	if len(q.items) == 0 {
		return nil
	}
	j := q.items[0].job
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = retryItem{} // release the job pointer
	q.items = q.items[:last]
	q.down(0)
	return j
}

func (q *RetryQueue) less(a, b int) bool {
	if q.items[a].due != q.items[b].due {
		return q.items[a].due < q.items[b].due
	}
	return q.items[a].seq < q.items[b].seq
}

func (q *RetryQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *RetryQueue) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.items) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.items) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
