package sched

import (
	"testing"

	"symbiosched/internal/workload"
)

// The allocation pins below are the tentpole's contract: at steady state
// (scratch grown, memo warm) the decision hot path must not touch the
// heap at all over the oracle table. A regression here silently taxes
// every simulated event of every experiment.

func allocQueues() [][]*Job {
	queues := make([][]*Job, 8)
	for qi := range queues {
		js := make([]*Job, 8)
		for i := range js {
			js[i] = &Job{
				ID:        qi*8 + i,
				Type:      (qi + i) % 4,
				Size:      1,
				Remaining: 0.1 + float64(i)*0.07,
			}
		}
		queues[qi] = js
	}
	return queues
}

func testSelectAllocs(t *testing.T, s Scheduler) {
	t.Helper()
	queues := allocQueues()
	for _, q := range queues {
		s.Select(q, 4)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.Select(queues[i%len(queues)], 4)
		i++
	})
	if allocs != 0 {
		t.Errorf("%s.Select allocates %v times per steady-state call, want 0", s.Name(), allocs)
	}
}

func TestMAXITSelectZeroAllocs(t *testing.T) {
	testSelectAllocs(t, &MAXIT{Rates: table(t)})
}

func TestSRPTSelectZeroAllocs(t *testing.T) {
	testSelectAllocs(t, &SRPT{Rates: table(t)})
}

func TestFCFSSelectZeroAllocs(t *testing.T) {
	testSelectAllocs(t, FCFS{})
}

func TestMAXTPSelectZeroAllocs(t *testing.T) {
	tb := table(t)
	m, err := NewMAXTP(tb, workload.Workload{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Give the LP support a positive deficit so the non-fallback path is
	// the one measured.
	m.Observe(workload.NewCoschedule(0, 0, 0, 0), 1)
	testSelectAllocs(t, m)
}
