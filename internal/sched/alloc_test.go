package sched

import (
	"testing"

	"symbiosched/internal/workload"
)

// The allocation pins below are the tentpole's contract: at steady state
// (scratch grown, memo warm) the decision hot path must not touch the
// heap at all over the oracle table. A regression here silently taxes
// every simulated event of every experiment.

func allocQueues() [][]*Job {
	queues := make([][]*Job, 8)
	for qi := range queues {
		js := make([]*Job, 8)
		for i := range js {
			js[i] = &Job{
				ID:        qi*8 + i,
				Type:      (qi + i) % 4,
				Size:      1,
				Remaining: 0.1 + float64(i)*0.07,
			}
		}
		queues[qi] = js
	}
	return queues
}

func testSelectAllocs(t *testing.T, s Scheduler) {
	t.Helper()
	queues := allocQueues()
	for _, q := range queues {
		s.Select(q, 4)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.Select(queues[i%len(queues)], 4)
		i++
	})
	if allocs != 0 {
		t.Errorf("%s.Select allocates %v times per steady-state call, want 0", s.Name(), allocs)
	}
}

func TestMAXITSelectZeroAllocs(t *testing.T) {
	testSelectAllocs(t, &MAXIT{Rates: table(t)})
}

func TestSRPTSelectZeroAllocs(t *testing.T) {
	testSelectAllocs(t, &SRPT{Rates: table(t)})
}

func TestFCFSSelectZeroAllocs(t *testing.T) {
	testSelectAllocs(t, &FCFS{})
}

// TestFCFSSelectDeepZeroAllocs pins FCFS past the shared 64-entry
// identity prefix: depth-128 selections must come from the scheduler's
// amortised extension, not a fresh slice per call (the regression this
// PR fixed), and must still be the identity permutation.
func TestFCFSSelectDeepZeroAllocs(t *testing.T) {
	jobs := make([]*Job, 128)
	for i := range jobs {
		jobs[i] = &Job{ID: i, Type: i % 4, Size: 1, Remaining: 1}
	}
	f := &FCFS{}
	got := f.Select(jobs, 128)
	if len(got) != 128 {
		t.Fatalf("Select returned %d indices, want 128", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("Select[%d] = %d, want identity", i, v)
		}
	}
	allocs := testing.AllocsPerRun(200, func() { f.Select(jobs, 128) })
	if allocs != 0 {
		t.Errorf("FCFS.Select at depth 128 allocates %v times per call, want 0", allocs)
	}
}

func TestMAXTPSelectZeroAllocs(t *testing.T) {
	tb := table(t)
	m, err := NewMAXTP(tb, workload.Workload{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Give the LP support a positive deficit so the non-fallback path is
	// the one measured.
	m.Observe(workload.NewCoschedule(0, 0, 0, 0), 1)
	testSelectAllocs(t, m)
}
