package sched

import (
	"sort"

	"symbiosched/internal/stats"
)

func allIndices(jobs []*Job) []int {
	idx := make([]int, len(jobs))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// LJF is the symbiosis-unaware long-job-first scheduler of Xu et al.
// (PACT 2010), which the paper's related-work section notes "outperforms
// their symbiosis-aware scheduler" when small sets of jobs are run to
// completion: running the longest remaining jobs first avoids a long
// serial tail at the end of the makespan.
type LJF struct{}

// Name implements Scheduler.
func (LJF) Name() string { return "LJF" }

// Select implements Scheduler: the min(k, n) jobs with the most remaining
// work, ties broken by age.
func (LJF) Select(jobs []*Job, k int) []int {
	idx := allIndices(jobs)
	sort.Slice(idx, func(a, b int) bool {
		ja, jb := jobs[idx[a]], jobs[idx[b]]
		if ja.Remaining != jb.Remaining {
			return ja.Remaining > jb.Remaining
		}
		return ja.ID < jb.ID
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	return idx
}

// Random selects a uniformly random feasible job set at every scheduling
// event — a noise floor for scheduler comparisons.
type Random struct {
	RNG *stats.RNG
}

// Name implements Scheduler.
func (r *Random) Name() string { return "Random" }

// Select implements Scheduler.
func (r *Random) Select(jobs []*Job, k int) []int {
	if r.RNG == nil {
		r.RNG = stats.NewRNG(1)
	}
	n := len(jobs)
	m := n
	if m > k {
		m = k
	}
	perm := r.RNG.Perm(n)
	return perm[:m]
}
