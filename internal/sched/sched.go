// Package sched implements the four online schedulers the paper compares
// in Section VI:
//
//   - FCFS: run the oldest jobs, no knowledge needed.
//   - MAXIT: run the job combination with the highest instantaneous
//     throughput; ties go to the oldest jobs.
//   - SRPT: run the combination with the smallest total remaining
//     execution time, accounting for each job's rate in that combination.
//   - MAXTP: follow the offline linear-programming schedule (internal/core)
//     by always picking the optimal coschedule that is furthest behind its
//     ideal time fraction; fall back to MAXIT when none is composable.
//
// Schedulers select jobs at every scheduling event (arrival or completion)
// with free preemption and zero context-switch cost, exactly as in the
// paper's idealised study.
//
// MAXIT and SRPT decide over an online.RateSource — the oracle performance
// table in the paper's perfect-knowledge setting, or a learned estimator
// from internal/online in the knowledge-gap experiments. MAXTP is
// inherently oracular: its offline linear-programming phase needs the full
// table, so it cannot run over a learned source.
//
// Select is the hot path of every experiment (it runs at every simulated
// arrival and completion), so the knowledge-driven schedulers carry
// per-instance scratch and enumerate candidates without allocating, prune
// dominated candidate subtrees against an admissible per-slot rate bound
// when the source exposes one, and MAXIT memoizes the winning multiset
// per queue signature for as long as the source's rate epoch stands (see
// DESIGN.md, "Hot path & memoization").
package sched

import (
	"fmt"
	"math"
	"strings"

	"symbiosched/internal/core"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// Job is a job in the system, as seen by schedulers.
type Job struct {
	// ID is unique per experiment and increases with arrival order.
	ID int
	// Type is the global benchmark index.
	Type int
	// Size is the job's total work, Remaining what is left.
	Size, Remaining float64
	// Arrival is the job's arrival time.
	Arrival float64
	// Retries counts how often the job was re-queued after a server
	// crash (internal/fault); zero for jobs that never saw one.
	Retries int
}

// Scheduler picks which jobs run on the K contexts.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Select returns the indices into jobs of the jobs to run, at most k.
	// Work-conserving schedulers return min(k, len(jobs)) indices.
	//
	// Contract: jobs arrive in nondecreasing ID order — the arrival order
	// every event loop in this repo maintains (queues append on arrival
	// and compact in place on completion). FCFS relies on it outright and
	// the others use it to keep within-type preference sorts cheap; it is
	// pinned by TestSelectRequiresArrivalOrder. The returned slice is
	// owned by the scheduler (or shared, for FCFS) and is only valid
	// until the next Select call; callers must not mutate or retain it.
	Select(jobs []*Job, k int) []int
}

// Observer is implemented by the schedulers that track simulated time:
// Observe informs them that the coschedule cos just ran for dt time units
// (MAXTP uses it to track its time fractions). Event loops assert for it
// at the call site, so stateless schedulers need no stub.
type Observer interface {
	Observe(cos workload.Coschedule, dt float64)
}

// keyedRates is the uint64 probe fast path: rate sources that can be
// queried by a perfdb.Key avoid re-deriving the key per candidate.
// *perfdb.Table and online.Oracle implement it.
type keyedRates interface {
	InstTPByKey(key uint64) float64
	JobWIPCByKey(key uint64, b int) float64
}

// denseRates is the batch probe fast path on top of keyedRates: one call
// returns every type's WIPC in the keyed coschedule as a dense slice (the
// same stored values JobWIPCByKey serves, so scores stay bit-identical),
// turning SRPT's per-type map probes into one probe per candidate.
// *perfdb.Table and online.Oracle implement it.
type denseRates interface {
	TypeWIPCsByKey(key uint64) []float64
}

// tieTol is the instantaneous-throughput tolerance within which MAXIT
// considers two candidates tied and defers to job age.
const tieTol = 1e-12

// Names lists the Section VI schedulers New constructs, in the paper's
// order.
var Names = []string{"FCFS", "MAXIT", "SRPT", "MAXTP"}

// New builds a fresh scheduler by name over the given rate source and
// workload (the workload is only needed by MAXTP's offline LP phase).
// Stateful schedulers (MAXIT/SRPT over a learning source, MAXTP always)
// must not be shared across runs or servers, so callers construct one per
// simulation. MAXTP requires perfect knowledge: rs must be the oracle
// table (or the online.Oracle wrapper around it).
func New(name string, rs online.RateSource, w workload.Workload) (Scheduler, error) {
	switch name {
	case "FCFS":
		return &FCFS{}, nil
	case "MAXIT":
		return &MAXIT{Rates: rs}, nil
	case "SRPT":
		return &SRPT{Rates: rs}, nil
	case "MAXTP":
		t, err := oracleTable(rs)
		if err != nil {
			return nil, err
		}
		return NewMAXTP(t, w)
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (want one of %s)",
			name, strings.Join(Names, ", "))
	}
}

// oracleTable unwraps the oracle performance table from a rate source, for
// the schedulers whose offline phase needs the full database.
func oracleTable(rs online.RateSource) (*perfdb.Table, error) {
	switch s := rs.(type) {
	case *perfdb.Table:
		return s, nil
	case online.Oracle:
		return s.Table, nil
	default:
		return nil, fmt.Errorf("sched: MAXTP needs the oracle table, not the %s estimator (its offline LP phase requires full knowledge)", rs.Name())
	}
}

// FCFS runs jobs strictly in arrival order. It carries a lazily grown
// per-instance prefix for machines wider than the shared one, so Select
// stays allocation-free at steady state at any width.
type FCFS struct {
	// idx extends the shared identity prefix beyond 64 entries; it grows
	// monotonically and is reused across Select calls.
	idx []int
}

// Name implements Scheduler.
func (*FCFS) Name() string { return "FCFS" }

// identity is the shared index prefix FCFS serves: with jobs already in
// arrival order (the Select contract), the oldest min(k, n) jobs are
// simply the first min(k, n) indices.
var identity = func() []int {
	ix := make([]int, 64)
	for i := range ix {
		ix[i] = i
	}
	return ix
}()

// Select implements Scheduler: the min(k, n) oldest jobs, which under the
// arrival-order contract is the identity prefix — no sort, and no
// allocation once the instance prefix has grown to the machine width.
func (f *FCFS) Select(jobs []*Job, k int) []int {
	n := min(k, len(jobs))
	if n <= len(identity) {
		return identity[:n]
	}
	for len(f.idx) < n {
		f.idx = append(f.idx, len(f.idx))
	}
	return f.idx[:n]
}

// MAXIT selects the combination with the highest instantaneous throughput
// according to its rate source; among equal-throughput combinations it
// prefers the oldest jobs. Over a learning source whose sample phase
// inflates under-measured coschedules, the same argmax implements
// SOS-style sampling.
//
// MAXIT carries per-instance scratch and a per-epoch decision memo;
// instances must not be shared across goroutines.
type MAXIT struct {
	Rates online.RateSource
	// Met, when non-nil, receives decision counters (memo hits/misses,
	// candidates scored, subtrees pruned, tie-band events). Nil — the
	// default — keeps Select on the uninstrumented path.
	Met *Metrics

	enum enumerator
	// memo caches the winning count vector per queue signature for one
	// rate epoch: the source answers identically within an epoch (the
	// oracle's never changes; a learner bumps it per observation), so
	// hits stay valid between observations and the map is cleared when
	// the epoch moves. Keys whose argmax involved a throughput tie are
	// never stored: ties are broken by job age, which depends on the
	// concrete job IDs behind the signature, not the signature alone.
	memo      map[uint64]uint64
	memoEpoch uint64
}

// Name implements Scheduler.
func (m *MAXIT) Name() string { return "MAXIT" }

// Select implements Scheduler.
func (m *MAXIT) Select(jobs []*Job, k int) []int {
	if len(jobs) == 0 {
		return nil
	}
	e := &m.enum
	e.prepare(jobs, false)
	return m.selectPrepared(e, jobs, k)
}

// selectPrepared runs the argmax over an enumerator already prepared for
// jobs (byRem false). MAXTP's fallback enters here with the enumerator it
// groups the queue into anyway, so a deferred LP pick costs one prepare,
// not two; the decision memo lives on the MAXIT instance either way.
func (m *MAXIT) selectPrepared(e *enumerator, jobs []*Job, k int) []int {
	memoKey, memoOK := e.memoKey(k)
	if memoOK {
		if ep := m.Rates.Epoch(); ep != m.memoEpoch {
			// The source's rates moved: every cached decision is stale.
			// clear keeps the buckets, so re-filling does not allocate.
			clear(m.memo)
			m.memoEpoch = ep
		}
		if v, hit := m.memo[memoKey]; hit {
			m.Met.hit()
			return e.materialize(e.unpackCounts(v))
		}
		m.Met.miss()
	}
	kr, keyed := m.Rates.(keyedRates)
	n := min(k, len(jobs))
	prune := e.setBounds(m.Rates, n)
	bestTP, bestAge := math.Inf(-1), math.Inf(1)
	tied := false
	var scored, pruned uint64
	for ok := e.firstCandidate(n); ok; {
		if prune {
			// A -Inf threshold never dominates a finite bound, so the
			// first candidate is always scored.
			if p, dom := e.dominatedTP(bestTP - tieTol); dom {
				pruned++
				ok = e.nextFrom(p)
				continue
			}
		}
		scored++
		var tp float64
		if keyed {
			e.buildKey()
			tp = kr.InstTPByKey(e.cosKey)
		} else {
			e.buildCos()
			tp = m.Rates.InstTP(e.cos)
		}
		// Job age only separates candidates inside the tie band, so it
		// is summed lazily; the update branches are the original ones.
		if tp > bestTP-tieTol {
			age := 0.0
			for ti, c := range e.counts {
				g := e.group(ti)
				for j := 0; j < c; j++ {
					age += float64(jobs[g[j]].ID)
				}
			}
			if tp > bestTP+tieTol {
				e.keepBest()
				bestTP, bestAge = tp, age
			} else {
				tied = true
				if age < bestAge {
					e.keepBest()
					bestTP, bestAge = tp, age
				}
			}
		}
		ok = e.next()
	}
	if m.Met != nil {
		m.Met.Scored.Add(scored)
		m.Met.Pruned.Add(pruned)
		if tied {
			m.Met.TieBand.Inc()
		}
	}
	if memoOK && !tied {
		if m.memo == nil {
			m.memo = make(map[uint64]uint64)
		}
		m.memo[memoKey] = packCounts(e.best)
	}
	return e.materialize(e.best)
}

// SRPT selects the combination with the smallest sum of remaining
// execution times, where each job's remaining execution time accounts for
// its rate in that particular combination (Section VI) — estimated rates
// when the source is a learner.
//
// SRPT carries per-instance scratch; instances must not be shared across
// goroutines. Its decision depends on the jobs' remaining work, not just
// the queued type counts, so it cannot reuse MAXIT's multiset memo.
type SRPT struct {
	Rates online.RateSource
	// Met, when non-nil, receives decision counters (candidates scored,
	// subtrees pruned). Nil — the default — keeps Select on the
	// uninstrumented path.
	Met *Metrics

	enum enumerator
}

// Name implements Scheduler.
func (s *SRPT) Name() string { return "SRPT" }

// Select implements Scheduler.
func (s *SRPT) Select(jobs []*Job, k int) []int {
	if len(jobs) == 0 {
		return nil
	}
	e := &s.enum
	e.prepare(jobs, true)
	kr, keyed := s.Rates.(keyedRates)
	dr, dense := s.Rates.(denseRates)
	if dense {
		e.primeRateCache(s.Rates.Epoch())
	}
	n := min(k, len(jobs))
	// With n == len(jobs) the walk visits exactly one candidate (counts
	// must equal the group caps), so the pruning machinery below can only
	// add overhead — skip it and score the lone candidate directly.
	prune := n < len(jobs) && e.setBounds(s.Rates, n)
	thr := math.Inf(1)
	var scored, pruned uint64
	if prune {
		e.setRemBounds(n)
		// Seed the pruning threshold from the greedy smallest-remaining
		// candidate, so subtrees that provably cannot reach its score are
		// dead from the very first dominance check instead of only after
		// the walk stumbles on a good candidate. The threshold sits one
		// ulp above the seed's score: every candidate scoring at or below
		// the seed — the winner among them — is still walked, so the pick
		// stays the first minimal candidate in enumeration order,
		// bit-identical to the unseeded walk.
		e.greedySeed(n)
		scored++
		thr = math.Nextafter(s.score(e, kr, keyed, dr, dense, math.Inf(1)), math.Inf(1))
	}
	bestSum := math.Inf(1)
	for ok := e.firstCandidate(n); ok; {
		if prune {
			// A +Inf threshold is never reached by a finite lower bound,
			// so the first candidate is always scored.
			if p, dom := e.dominatedSum(min(bestSum, thr)); dom {
				pruned++
				ok = e.nextFrom(p)
				continue
			}
		}
		scored++
		sum := s.score(e, kr, keyed, dr, dense, bestSum)
		if sum < bestSum {
			e.keepBest()
			bestSum = sum
		}
		ok = e.next()
	}
	if s.Met != nil {
		s.Met.Scored.Add(scored)
		s.Met.Pruned.Add(pruned)
	}
	return e.materialize(e.best)
}

// score prices the enumerator's current candidate: each job's remaining
// work divided by its type's rate in that coschedule. One rate probe per
// type — same-type jobs share their rate in a coschedule — and the
// per-job divisions accumulate in the original job order, so the sum is
// bit-identical to the pre-pruning walk's. Scoring may stop early once
// the partial sum reaches limit: remaining terms are non-negative, so the
// candidate cannot improve any more, and callers ignore non-improving
// scores.
func (s *SRPT) score(e *enumerator, kr keyedRates, keyed bool, dr denseRates, dense bool, limit float64) float64 {
	if keyed || dense {
		e.buildKey()
	} else {
		e.buildCos()
	}
	var rates []float64
	if dense {
		rates = e.ratesFor(dr, e.cosKey)
	}
	var sum float64
	for ti, c := range e.counts {
		if c == 0 {
			continue
		}
		var rate float64
		if dense {
			rate = rates[e.types[ti]]
		} else if keyed {
			rate = kr.JobWIPCByKey(e.cosKey, e.types[ti])
		} else {
			rate = s.Rates.JobWIPC(e.cos, e.types[ti])
		}
		lo := e.grpOff[ti]
		for j := lo; j < lo+c; j++ {
			sum += e.remAt[j] / rate
		}
		if sum >= limit {
			break
		}
	}
	return sum
}

// MAXTP implements the paper's practical use of the linear-programming
// methodology: an offline phase computes the optimal coschedules and their
// time fractions; at run time the scheduler selects, among the optimal
// coschedules composable from the jobs in the system, the one furthest
// behind its ideal fraction, falling back to MAXIT when none is
// composable.
type MAXTP struct {
	Table *perfdb.Table
	// fractions holds the LP support (non-zero optimal fractions);
	// fracTypes/fracCounts/fracKeys are its per-fraction type multiset and
	// perfdb key, precomputed so Select never re-derives them.
	fractions  []core.Fraction
	fracTypes  [][]int
	fracCounts [][]int
	fracKeys   []uint64
	selected   map[uint64]float64
	elapsed    float64
	fallback   *MAXIT

	enum enumerator
	out  []int
}

// NewMAXTP runs the offline phase for a workload and returns the scheduler.
func NewMAXTP(t *perfdb.Table, w workload.Workload) (*MAXTP, error) {
	opt, err := core.Optimal(t, w)
	if err != nil {
		return nil, err
	}
	m := &MAXTP{
		Table:     t,
		fractions: opt.NonZero(1e-9),
		selected:  make(map[uint64]float64),
		fallback:  &MAXIT{Rates: t},
	}
	for _, f := range m.fractions {
		types := f.Cos.Types()
		counts := make([]int, len(types))
		for i, b := range types {
			counts[i] = f.Cos.Count(b)
		}
		m.fracTypes = append(m.fracTypes, types)
		m.fracCounts = append(m.fracCounts, counts)
		m.fracKeys = append(m.fracKeys, perfdb.Key(f.Cos))
	}
	return m, nil
}

// Name implements Scheduler.
func (m *MAXTP) Name() string { return "MAXTP" }

// Select implements Scheduler.
func (m *MAXTP) Select(jobs []*Job, k int) []int {
	if len(jobs) == 0 {
		return nil
	}
	// Group the queue by type, oldest first, in reusable scratch.
	e := &m.enum
	e.prepare(jobs, false)
	bestIdx, bestDeficit := -1, math.Inf(-1)
	for fi, f := range m.fractions {
		if len(f.Cos) > len(jobs) {
			continue
		}
		composable := true
		for i, b := range m.fracTypes[fi] {
			if e.countOf(b) < m.fracCounts[fi][i] {
				composable = false
				break
			}
		}
		if !composable {
			continue
		}
		deficit := f.X*m.elapsed - m.selected[m.fracKeys[fi]]
		if deficit > bestDeficit {
			bestIdx, bestDeficit = fi, deficit
		}
	}
	// Use the optimal schedule only while it is behind its ideal fraction;
	// coschedules that are ahead of schedule would be run at the expense of
	// waiting jobs for no long-run throughput benefit, so defer to MAXIT —
	// over this enumerator, which already grouped the queue.
	if bestIdx < 0 || bestDeficit <= 0 {
		return m.fallback.selectPrepared(e, jobs, k)
	}
	m.out = m.out[:0]
	for i, b := range m.fracTypes[bestIdx] {
		g := e.group(e.typeIndex(b))
		for j := 0; j < m.fracCounts[bestIdx][i]; j++ {
			m.out = append(m.out, g[j])
		}
	}
	return m.out
}

// Observe implements Observer: track elapsed time and per-coschedule
// selected time.
func (m *MAXTP) Observe(cos workload.Coschedule, dt float64) {
	m.elapsed += dt
	m.selected[perfdb.Key(cos)] += dt
}
