// Package sched implements the four online schedulers the paper compares
// in Section VI:
//
//   - FCFS: run the oldest jobs, no knowledge needed.
//   - MAXIT: run the job combination with the highest instantaneous
//     throughput; ties go to the oldest jobs.
//   - SRPT: run the combination with the smallest total remaining
//     execution time, accounting for each job's rate in that combination.
//   - MAXTP: follow the offline linear-programming schedule (internal/core)
//     by always picking the optimal coschedule that is furthest behind its
//     ideal time fraction; fall back to MAXIT when none is composable.
//
// Schedulers select jobs at every scheduling event (arrival or completion)
// with free preemption and zero context-switch cost, exactly as in the
// paper's idealised study.
//
// MAXIT and SRPT decide over an online.RateSource — the oracle performance
// table in the paper's perfect-knowledge setting, or a learned estimator
// from internal/online in the knowledge-gap experiments. MAXTP is
// inherently oracular: its offline linear-programming phase needs the full
// table, so it cannot run over a learned source.
package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"symbiosched/internal/core"
	"symbiosched/internal/online"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// Job is a job in the system, as seen by schedulers.
type Job struct {
	// ID is unique per experiment and increases with arrival order.
	ID int
	// Type is the global benchmark index.
	Type int
	// Size is the job's total work, Remaining what is left.
	Size, Remaining float64
	// Arrival is the job's arrival time.
	Arrival float64
}

// Scheduler picks which jobs run on the K contexts.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Select returns the indices into jobs of the jobs to run, at most k.
	// Work-conserving schedulers return min(k, len(jobs)) indices.
	Select(jobs []*Job, k int) []int
}

// Observer is implemented by the schedulers that track simulated time:
// Observe informs them that the coschedule cos just ran for dt time units
// (MAXTP uses it to track its time fractions). Event loops assert for it
// at the call site, so stateless schedulers need no stub.
type Observer interface {
	Observe(cos workload.Coschedule, dt float64)
}

// Names lists the Section VI schedulers New constructs, in the paper's
// order.
var Names = []string{"FCFS", "MAXIT", "SRPT", "MAXTP"}

// New builds a fresh scheduler by name over the given rate source and
// workload (the workload is only needed by MAXTP's offline LP phase).
// Stateful schedulers (MAXIT/SRPT over a learning source, MAXTP always)
// must not be shared across runs or servers, so callers construct one per
// simulation. MAXTP requires perfect knowledge: rs must be the oracle
// table (or the online.Oracle wrapper around it).
func New(name string, rs online.RateSource, w workload.Workload) (Scheduler, error) {
	switch name {
	case "FCFS":
		return FCFS{}, nil
	case "MAXIT":
		return &MAXIT{Rates: rs}, nil
	case "SRPT":
		return &SRPT{Rates: rs}, nil
	case "MAXTP":
		t, err := oracleTable(rs)
		if err != nil {
			return nil, err
		}
		return NewMAXTP(t, w)
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (want one of %s)",
			name, strings.Join(Names, ", "))
	}
}

// oracleTable unwraps the oracle performance table from a rate source, for
// the schedulers whose offline phase needs the full database.
func oracleTable(rs online.RateSource) (*perfdb.Table, error) {
	switch s := rs.(type) {
	case *perfdb.Table:
		return s, nil
	case online.Oracle:
		return s.Table, nil
	default:
		return nil, fmt.Errorf("sched: MAXTP needs the oracle table, not the %s estimator (its offline LP phase requires full knowledge)", rs.Name())
	}
}

// FCFS runs jobs strictly in arrival order.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "FCFS" }

// Select implements Scheduler: the min(k, n) oldest jobs.
func (FCFS) Select(jobs []*Job, k int) []int {
	idx := allIndices(jobs)
	sort.Slice(idx, func(a, b int) bool { return jobs[idx[a]].ID < jobs[idx[b]].ID })
	if len(idx) > k {
		idx = idx[:k]
	}
	return idx
}

// composition is a feasible multiset of job types with concrete job
// choices attached.
type composition struct {
	cos  workload.Coschedule
	jobs []int // indices into the scheduler's jobs slice
}

// compositions enumerates every multiset of size m of the available jobs'
// types, picking concrete jobs within each type by the given preference
// order (pick receives the indices of one type's jobs, best first).
func compositions(jobs []*Job, m int, pick func(a, b *Job) bool) []composition {
	// Group job indices by type, each group sorted by preference.
	byType := map[int][]int{}
	var types []int
	for i, j := range jobs {
		if _, ok := byType[j.Type]; !ok {
			types = append(types, j.Type)
		}
		byType[j.Type] = append(byType[j.Type], i)
	}
	sort.Ints(types)
	for _, t := range types {
		g := byType[t]
		sort.Slice(g, func(a, b int) bool { return pick(jobs[g[a]], jobs[g[b]]) })
	}
	var out []composition
	counts := make([]int, len(types))
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if left == 0 {
			c := composition{}
			for ti, cnt := range counts {
				for j := 0; j < cnt; j++ {
					c.cos = append(c.cos, types[ti])
					c.jobs = append(c.jobs, byType[types[ti]][j])
				}
			}
			sort.Ints(c.cos)
			out = append(out, c)
			return
		}
		if pos == len(types) {
			return
		}
		max := len(byType[types[pos]])
		if max > left {
			max = left
		}
		for cnt := 0; cnt <= max; cnt++ {
			counts[pos] = cnt
			rec(pos+1, left-cnt)
		}
		counts[pos] = 0
	}
	m = min(m, len(jobs))
	rec(0, m)
	return out
}

func allIndices(jobs []*Job) []int {
	idx := make([]int, len(jobs))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func oldestFirst(a, b *Job) bool { return a.ID < b.ID }

// MAXIT selects the combination with the highest instantaneous throughput
// according to its rate source; among equal-throughput combinations it
// prefers the oldest jobs. Over a learning source whose sample phase
// inflates under-measured coschedules, the same argmax implements
// SOS-style sampling.
type MAXIT struct {
	Rates online.RateSource
}

// Name implements Scheduler.
func (m *MAXIT) Name() string { return "MAXIT" }

// Select implements Scheduler.
func (m *MAXIT) Select(jobs []*Job, k int) []int {
	if len(jobs) == 0 {
		return nil
	}
	comps := compositions(jobs, min(k, len(jobs)), oldestFirst)
	bestIdx, bestTP, bestAge := -1, math.Inf(-1), math.Inf(1)
	for ci, c := range comps {
		tp := m.Rates.InstTP(c.cos)
		age := 0.0
		for _, ji := range c.jobs {
			age += float64(jobs[ji].ID)
		}
		if tp > bestTP+1e-12 || (tp > bestTP-1e-12 && age < bestAge) {
			bestIdx, bestTP, bestAge = ci, tp, age
		}
	}
	return comps[bestIdx].jobs
}

// SRPT selects the combination with the smallest sum of remaining
// execution times, where each job's remaining execution time accounts for
// its rate in that particular combination (Section VI) — estimated rates
// when the source is a learner.
type SRPT struct {
	Rates online.RateSource
}

// Name implements Scheduler.
func (s *SRPT) Name() string { return "SRPT" }

// Select implements Scheduler.
func (s *SRPT) Select(jobs []*Job, k int) []int {
	if len(jobs) == 0 {
		return nil
	}
	shortestFirst := func(a, b *Job) bool {
		if a.Remaining != b.Remaining {
			return a.Remaining < b.Remaining
		}
		return a.ID < b.ID
	}
	comps := compositions(jobs, min(k, len(jobs)), shortestFirst)
	bestIdx, bestSum := -1, math.Inf(1)
	for ci, c := range comps {
		var sum float64
		for _, ji := range c.jobs {
			j := jobs[ji]
			rate := s.Rates.JobWIPC(c.cos, j.Type)
			sum += j.Remaining / rate
		}
		if sum < bestSum {
			bestIdx, bestSum = ci, sum
		}
	}
	return comps[bestIdx].jobs
}

// MAXTP implements the paper's practical use of the linear-programming
// methodology: an offline phase computes the optimal coschedules and their
// time fractions; at run time the scheduler selects, among the optimal
// coschedules composable from the jobs in the system, the one furthest
// behind its ideal fraction, falling back to MAXIT when none is
// composable.
type MAXTP struct {
	Table *perfdb.Table
	// fractions holds the LP support (non-zero optimal fractions).
	fractions []core.Fraction
	selected  map[uint64]float64
	elapsed   float64
	fallback  *MAXIT
}

// NewMAXTP runs the offline phase for a workload and returns the scheduler.
func NewMAXTP(t *perfdb.Table, w workload.Workload) (*MAXTP, error) {
	opt, err := core.Optimal(t, w)
	if err != nil {
		return nil, err
	}
	return &MAXTP{
		Table:     t,
		fractions: opt.NonZero(1e-9),
		selected:  make(map[uint64]float64),
		fallback:  &MAXIT{Rates: t},
	}, nil
}

// Name implements Scheduler.
func (m *MAXTP) Name() string { return "MAXTP" }

// Select implements Scheduler.
func (m *MAXTP) Select(jobs []*Job, k int) []int {
	if len(jobs) == 0 {
		return nil
	}
	// Available jobs per type, oldest first.
	byType := map[int][]int{}
	for i, j := range jobs {
		byType[j.Type] = append(byType[j.Type], i)
	}
	for _, g := range byType {
		sort.Slice(g, func(a, b int) bool { return jobs[g[a]].ID < jobs[g[b]].ID })
	}
	bestIdx, bestDeficit := -1, math.Inf(-1)
	for fi, f := range m.fractions {
		if len(f.Cos) > len(jobs) {
			continue
		}
		composable := true
		for _, b := range f.Cos.Types() {
			if len(byType[b]) < f.Cos.Count(b) {
				composable = false
				break
			}
		}
		if !composable {
			continue
		}
		deficit := f.X*m.elapsed - m.selected[perfdb.Key(f.Cos)]
		if deficit > bestDeficit {
			bestIdx, bestDeficit = fi, deficit
		}
	}
	// Use the optimal schedule only while it is behind its ideal fraction;
	// coschedules that are ahead of schedule would be run at the expense of
	// waiting jobs for no long-run throughput benefit, so defer to MAXIT.
	if bestIdx < 0 || bestDeficit <= 0 {
		return m.fallback.Select(jobs, k)
	}
	cos := m.fractions[bestIdx].Cos
	var out []int
	used := map[int]int{}
	for _, b := range cos {
		out = append(out, byType[b][used[b]])
		used[b]++
	}
	return out
}

// Observe implements Observer: track elapsed time and per-coschedule
// selected time.
func (m *MAXTP) Observe(cos workload.Coschedule, dt float64) {
	m.elapsed += dt
	m.selected[perfdb.Key(cos)] += dt
}
