package sched

import (
	"sync"
	"testing"

	"symbiosched/internal/core"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

var (
	once sync.Once
	tab  *perfdb.Table
)

func table(t testing.TB) *perfdb.Table {
	t.Helper()
	once.Do(func() {
		suite := program.Suite()
		mini := []program.Profile{suite[1], suite[5], suite[6], suite[7]} // calculix, hmmer, libq, mcf
		tab = perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, mini)
	})
	return tab
}

func jobs(types ...int) []*Job {
	out := make([]*Job, len(types))
	for i, typ := range types {
		out[i] = &Job{ID: i, Type: typ, Size: 1, Remaining: 1, Arrival: float64(i)}
	}
	return out
}

func TestFCFSOldestFirst(t *testing.T) {
	js := jobs(0, 1, 2, 3, 0, 1)
	sel := (&FCFS{}).Select(js, 4)
	if len(sel) != 4 {
		t.Fatalf("selected %d jobs", len(sel))
	}
	for i, idx := range sel {
		if js[idx].ID != i {
			t.Errorf("FCFS selected %v, want the 4 oldest", sel)
		}
	}
}

func TestFCFSFewerJobsThanContexts(t *testing.T) {
	js := jobs(0, 1)
	if sel := (&FCFS{}).Select(js, 4); len(sel) != 2 {
		t.Errorf("selected %d, want 2", len(sel))
	}
}

func TestMAXITPicksHighestInstTP(t *testing.T) {
	tb := table(t)
	m := &MAXIT{Rates: tb}
	// Offer every type twice; MAXIT must find the composition with the
	// highest instantaneous throughput among all multisets.
	js := jobs(0, 0, 1, 1, 2, 2, 3, 3)
	sel := m.Select(js, 4)
	if len(sel) != 4 {
		t.Fatalf("selected %d jobs", len(sel))
	}
	cos := make(workload.Coschedule, 0, 4)
	for _, idx := range sel {
		cos = append(cos, js[idx].Type)
	}
	got := tb.InstTP(workload.NewCoschedule(cos...))
	// Exhaustive check over all multisets of available types.
	best := 0.0
	for _, c := range workload.Multisets(4, 4) {
		feasible := true
		for _, typ := range c.Types() {
			if c.Count(typ) > 2 {
				feasible = false
			}
		}
		if feasible {
			if tp := tb.InstTP(c); tp > best {
				best = tp
			}
		}
	}
	if got < best-1e-9 {
		t.Errorf("MAXIT picked instTP %v, best feasible %v", got, best)
	}
}

func TestMAXITWorkConserving(t *testing.T) {
	tb := table(t)
	m := &MAXIT{Rates: tb}
	js := jobs(3, 3)
	if sel := m.Select(js, 4); len(sel) != 2 {
		t.Errorf("MAXIT selected %d of 2 jobs; must be work-conserving", len(sel))
	}
}

func TestSRPTPrefersShortJobs(t *testing.T) {
	tb := table(t)
	s := &SRPT{Rates: tb}
	// Five same-type jobs with distinct remaining sizes: the four shortest
	// must be picked.
	js := jobs(0, 0, 0, 0, 0)
	js[0].Remaining = 5
	js[1].Remaining = 1
	js[2].Remaining = 2
	js[3].Remaining = 3
	js[4].Remaining = 4
	sel := s.Select(js, 4)
	for _, idx := range sel {
		if idx == 0 {
			t.Errorf("SRPT selected the longest job")
		}
	}
}

func TestSRPTAccountsForRates(t *testing.T) {
	tb := table(t)
	s := &SRPT{Rates: tb}
	js := jobs(0, 1, 2, 3, 0, 1)
	sel := s.Select(js, 4)
	if len(sel) != 4 {
		t.Fatalf("selected %d jobs", len(sel))
	}
}

func TestMAXTPFollowsLPSupport(t *testing.T) {
	tb := table(t)
	w := workload.Workload{0, 1, 2, 3}
	m, err := NewMAXTP(tb, w)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Optimal(tb, w)
	if err != nil {
		t.Fatal(err)
	}
	support := map[uint64]bool{}
	for _, f := range opt.NonZero(1e-9) {
		support[perfdb.Key(f.Cos)] = true
	}
	// With all types amply available and positive elapsed deficit, MAXTP
	// must select a support coschedule.
	m.Observe(workload.NewCoschedule(0, 0, 0, 0), 1) // creates deficits for the support
	js := jobs(0, 0, 1, 1, 2, 2, 3, 3)
	sel := m.Select(js, 4)
	cos := make(workload.Coschedule, 0, 4)
	for _, idx := range sel {
		cos = append(cos, js[idx].Type)
	}
	if !support[perfdb.Key(workload.NewCoschedule(cos...))] {
		t.Errorf("MAXTP selected %v, not in LP support", cos)
	}
}

func TestMAXTPFallsBackWhenNotComposable(t *testing.T) {
	tb := table(t)
	w := workload.Workload{0, 1, 2, 3}
	m, err := NewMAXTP(tb, w)
	if err != nil {
		t.Fatal(err)
	}
	// Only two jobs in the system: no size-4 support coschedule is
	// composable, so MAXTP must fall back to MAXIT and still run them.
	js := jobs(0, 1)
	if sel := m.Select(js, 4); len(sel) != 2 {
		t.Errorf("fallback selected %d of 2 jobs", len(sel))
	}
}

func TestMAXTPObserveTracksTime(t *testing.T) {
	tb := table(t)
	w := workload.Workload{0, 1, 2, 3}
	m, err := NewMAXTP(tb, w)
	if err != nil {
		t.Fatal(err)
	}
	c := workload.NewCoschedule(0, 1, 2, 3)
	m.Observe(c, 2.5)
	if m.elapsed != 2.5 {
		t.Errorf("elapsed = %v", m.elapsed)
	}
	if m.selected[perfdb.Key(c)] != 2.5 {
		t.Errorf("selected time not tracked")
	}
}

func TestEnumeratorCountAndFeasibility(t *testing.T) {
	js := jobs(0, 0, 1, 2)
	var e enumerator
	e.prepare(js, false)
	// Multisets of size 3 with at most {0:2, 1:1, 2:1}:
	// enumerate: {0,0,1},{0,0,2},{0,1,2} = 3.
	n := 0
	for ok := e.firstCandidate(3); ok; ok = e.next() {
		e.buildCos()
		if len(e.cos) != 3 {
			t.Errorf("candidate %v has %d slots, want 3", e.cos, len(e.cos))
		}
		n++
	}
	if n != 3 {
		t.Errorf("enumerated %d candidates, want 3", n)
	}
}

func TestSchedulerNames(t *testing.T) {
	tb := table(t)
	w := workload.Workload{0, 1, 2, 3}
	m, _ := NewMAXTP(tb, w)
	for _, s := range []Scheduler{&FCFS{}, &MAXIT{Rates: tb}, &SRPT{Rates: tb}, m} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}
