package sched

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"symbiosched/internal/online"
	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// This file pins the allocation-free hot path to a naive reference: the
// pre-optimization recursive enumerator and argmax loops, kept verbatim
// below. The iterative enumerator must produce exactly the same candidate
// sequence, and the schedulers exactly the same picks — including
// oldest-first tie-breaks and memoized replays — across randomized
// queues, type universes and context counts.

// refComposition mirrors the old heap-allocated candidate.
type refComposition struct {
	cos  workload.Coschedule
	jobs []int
}

// refCompositions is the old recursive enumerator, verbatim.
func refCompositions(jobs []*Job, m int, pick func(a, b *Job) bool) []refComposition {
	byType := map[int][]int{}
	var types []int
	for i, j := range jobs {
		if _, ok := byType[j.Type]; !ok {
			types = append(types, j.Type)
		}
		byType[j.Type] = append(byType[j.Type], i)
	}
	sort.Ints(types)
	for _, t := range types {
		g := byType[t]
		sort.Slice(g, func(a, b int) bool { return pick(jobs[g[a]], jobs[g[b]]) })
	}
	var out []refComposition
	counts := make([]int, len(types))
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if left == 0 {
			c := refComposition{}
			for ti, cnt := range counts {
				for j := 0; j < cnt; j++ {
					c.cos = append(c.cos, types[ti])
					c.jobs = append(c.jobs, byType[types[ti]][j])
				}
			}
			sort.Ints(c.cos)
			out = append(out, c)
			return
		}
		if pos == len(types) {
			return
		}
		max := len(byType[types[pos]])
		if max > left {
			max = left
		}
		for cnt := 0; cnt <= max; cnt++ {
			counts[pos] = cnt
			rec(pos+1, left-cnt)
		}
		counts[pos] = 0
	}
	m = min(m, len(jobs))
	rec(0, m)
	return out
}

func refOldestFirst(a, b *Job) bool { return a.ID < b.ID }

// refMAXITSelect is the old MAXIT.Select, verbatim.
func refMAXITSelect(rs online.RateSource, jobs []*Job, k int) []int {
	if len(jobs) == 0 {
		return nil
	}
	comps := refCompositions(jobs, min(k, len(jobs)), refOldestFirst)
	bestIdx, bestTP, bestAge := -1, math.Inf(-1), math.Inf(1)
	for ci, c := range comps {
		tp := rs.InstTP(c.cos)
		age := 0.0
		for _, ji := range c.jobs {
			age += float64(jobs[ji].ID)
		}
		if tp > bestTP+1e-12 || (tp > bestTP-1e-12 && age < bestAge) {
			bestIdx, bestTP, bestAge = ci, tp, age
		}
	}
	return comps[bestIdx].jobs
}

// refSRPTSelect is the old SRPT.Select, verbatim.
func refSRPTSelect(rs online.RateSource, jobs []*Job, k int) []int {
	if len(jobs) == 0 {
		return nil
	}
	shortestFirst := func(a, b *Job) bool {
		if a.Remaining != b.Remaining {
			return a.Remaining < b.Remaining
		}
		return a.ID < b.ID
	}
	comps := refCompositions(jobs, min(k, len(jobs)), shortestFirst)
	bestIdx, bestSum := -1, math.Inf(1)
	for ci, c := range comps {
		var sum float64
		for _, ji := range c.jobs {
			j := jobs[ji]
			rate := rs.JobWIPC(c.cos, j.Type)
			sum += j.Remaining / rate
		}
		if sum < bestSum {
			bestIdx, bestSum = ci, sum
		}
	}
	return comps[bestIdx].jobs
}

// quantizedRates is a static synthetic source whose InstTP is coarsely
// quantized, manufacturing frequent exact throughput ties so the
// age-based tie-break (and the memo's refusal to cache tied keys) is
// exercised hard.
type quantizedRates struct{ k int }

func (quantizedRates) Name() string { return "quantized" }
func (q quantizedRates) K() int     { return q.k }
func (quantizedRates) JobWIPC(c workload.Coschedule, b int) float64 {
	return 1 / (1 + 0.25*float64(len(c)-1))
}
func (q quantizedRates) InstTP(c workload.Coschedule) float64 {
	// Only the candidate size matters: every same-size multiset ties.
	return float64(len(c))
}
func (quantizedRates) Epoch() uint64 { return 0 }

// randomQueue builds an ID-ordered queue (the Select contract) of depth
// up to maxDepth over nTypes types.
func randomQueue(rng *stats.RNG, nextID *int, nTypes, maxDepth int) []*Job {
	depth := 1 + rng.Intn(maxDepth)
	js := make([]*Job, depth)
	for i := range js {
		size := 0.25 + 2*rng.Float64()
		js[i] = &Job{
			ID:        *nextID,
			Type:      rng.Intn(nTypes),
			Size:      size,
			Remaining: size * rng.Float64(),
			Arrival:   float64(i),
		}
		*nextID++
	}
	return js
}

// TestEnumeratorMatchesNaive pins the candidate sequence: same multisets,
// same concrete job choices, same order as the recursive reference.
func TestEnumeratorMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(11)
	nextID := 0
	for trial := 0; trial < 300; trial++ {
		nTypes := 1 + rng.Intn(6)
		k := 1 + rng.Intn(5)
		js := randomQueue(rng, &nextID, nTypes, 9)
		for _, byRem := range []bool{false, true} {
			pick := refOldestFirst
			if byRem {
				pick = func(a, b *Job) bool {
					if a.Remaining != b.Remaining {
						return a.Remaining < b.Remaining
					}
					return a.ID < b.ID
				}
			}
			want := refCompositions(js, min(k, len(js)), pick)
			var e enumerator
			e.prepare(js, byRem)
			got := 0
			for ok := e.firstCandidate(min(k, len(js))); ok; ok = e.next() {
				if got >= len(want) {
					t.Fatalf("trial %d: enumerator yields more than %d candidates", trial, len(want))
				}
				e.buildCos()
				w := want[got]
				if fmt.Sprint(e.cos) != fmt.Sprint(w.cos) {
					t.Fatalf("trial %d candidate %d: cos %v, want %v", trial, got, e.cos, w.cos)
				}
				if fmt.Sprint(e.materialize(e.counts)) != fmt.Sprint(w.jobs) {
					t.Fatalf("trial %d candidate %d: jobs %v, want %v",
						trial, got, e.materialize(e.counts), w.jobs)
				}
				got++
			}
			if got != len(want) {
				t.Fatalf("trial %d: %d candidates, want %d", trial, got, len(want))
			}
		}
	}
}

// TestSelectMatchesNaive pins MAXIT and SRPT picks to the reference over
// the real oracle table (realistic rates) across randomized queues and k,
// replaying every queue twice so memo hits must reproduce cold argmaxes.
func TestSelectMatchesNaive(t *testing.T) {
	tb := table(t)
	rng := stats.NewRNG(23)
	nextID := 0
	maxit := &MAXIT{Rates: tb}
	srpt := &SRPT{Rates: tb}
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(tb.K()) // candidates above K are not in the table
		js := randomQueue(rng, &nextID, len(tb.Suite()), 10)
		for pass := 0; pass < 2; pass++ {
			wantM := refMAXITSelect(tb, js, k)
			if got := maxit.Select(js, k); fmt.Sprint(got) != fmt.Sprint(wantM) {
				t.Fatalf("trial %d pass %d k=%d: MAXIT %v, want %v", trial, pass, k, got, wantM)
			}
			wantS := refSRPTSelect(tb, js, k)
			if got := srpt.Select(js, k); fmt.Sprint(got) != fmt.Sprint(wantS) {
				t.Fatalf("trial %d pass %d k=%d: SRPT %v, want %v", trial, pass, k, got, wantS)
			}
		}
	}
}

// TestSelectMatchesNaiveUnderTies drives MAXIT over the quantized source
// where whole size classes tie exactly: the age tie-break must match the
// reference on every queue, and — because tied argmaxes depend on job
// IDs, not just type counts — the memo must not leak a previous queue's
// pick into a later queue with the same type-count signature.
func TestSelectMatchesNaiveUnderTies(t *testing.T) {
	rng := stats.NewRNG(37)
	nextID := 0
	src := quantizedRates{k: 4}
	m := &MAXIT{Rates: src}
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(4)
		js := randomQueue(rng, &nextID, 4, 8)
		want := refMAXITSelect(src, js, k)
		if got := m.Select(js, k); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d k=%d: MAXIT %v, want %v (jobs %v)", trial, k, got, want, js)
		}
	}
}

// boundedTieRates is a synthetic source built to stress the pruned
// enumeration: per-(coschedule, type) WIPCs are drawn deterministically
// from a hash and quantized to a four-step grid in [0.25, 1], so exact
// throughput ties are frequent, and it implements the MaxJobWIPC pruning
// bound (InstTP is the plain slot sum, every slot at most 1) — unlike
// quantizedRates, which opts out. Every Select over it runs with
// branch-and-bound active, so the reference comparison proves pruning
// never skips a candidate that could have won or tied.
type boundedTieRates struct{ k int }

func (boundedTieRates) Name() string { return "boundedTies" }
func (r boundedTieRates) K() int     { return r.k }
func (boundedTieRates) JobWIPC(c workload.Coschedule, b int) float64 {
	h := uint64(1469598103934665603)
	for _, t := range c {
		h = (h * 1099511628211) ^ uint64(t+1)
	}
	h = (h * 1099511628211) ^ uint64(b*2654435761+1)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return 0.25 + 0.25*float64((h>>33)%4)
}
func (r boundedTieRates) InstTP(c workload.Coschedule) float64 {
	var sum float64
	for _, typ := range c {
		sum += r.JobWIPC(c, typ)
	}
	return sum
}
func (boundedTieRates) Epoch() uint64               { return 0 }
func (boundedTieRates) MaxJobWIPC(int, int) float64 { return 1 }

// TestSelectMatchesNaiveBoundedTies drives both schedulers with pruning
// active over tie-band rates: identical picks (indices) to the verbatim
// old argmax loops, across randomized queues and k, replayed so memo
// hits are covered too.
func TestSelectMatchesNaiveBoundedTies(t *testing.T) {
	rng := stats.NewRNG(41)
	nextID := 0
	src := boundedTieRates{k: 4}
	maxit := &MAXIT{Rates: src}
	srpt := &SRPT{Rates: src}
	for trial := 0; trial < 400; trial++ {
		k := 1 + rng.Intn(4)
		js := randomQueue(rng, &nextID, 5, 10)
		for pass := 0; pass < 2; pass++ {
			wantM := refMAXITSelect(src, js, k)
			if got := maxit.Select(js, k); fmt.Sprint(got) != fmt.Sprint(wantM) {
				t.Fatalf("trial %d pass %d k=%d: MAXIT %v, want %v", trial, pass, k, got, wantM)
			}
			wantS := refSRPTSelect(src, js, k)
			if got := srpt.Select(js, k); fmt.Sprint(got) != fmt.Sprint(wantS) {
				t.Fatalf("trial %d pass %d k=%d: SRPT %v, want %v", trial, pass, k, got, wantS)
			}
		}
	}
}

// countingRates wraps a source and counts rate probes; withBound
// additionally forwards the pruning bound. Comparing probe counts with
// the bound on and off shows branch-and-bound actually skips work — and
// the shared reference check shows it skips only dominated work.
type countingRates struct {
	online.RateSource
	inst, wipc *int
}

func (c countingRates) InstTP(cos workload.Coschedule) float64 {
	*c.inst++
	return c.RateSource.InstTP(cos)
}
func (c countingRates) JobWIPC(cos workload.Coschedule, b int) float64 {
	*c.wipc++
	return c.RateSource.JobWIPC(cos, b)
}

type countingBoundedRates struct {
	countingRates
	bound rateBound
}

func (c countingBoundedRates) MaxJobWIPC(b, slots int) float64 { return c.bound.MaxJobWIPC(b, slots) }

// gradedRates is a slot-sum source with strong per-type rate asymmetry
// and a tight (exact) per-slot bound: type b in an s-slot coschedule
// always runs at base[b] scaled down 10% per co-runner. MAXIT's
// throughput bound only bites when types differ enough that candidates
// heavy in weak types are dominated by an already-scored strong-type
// candidate — near-symmetric rates (like the mini oracle table's) keep
// every candidate within the bound's slack, which is correct but prunes
// nothing, so the MAXIT half of the effectiveness test runs here.
type gradedRates struct {
	k    int
	base []float64
}

func (gradedRates) Name() string { return "graded" }
func (g gradedRates) K() int     { return g.k }
func (g gradedRates) JobWIPC(c workload.Coschedule, b int) float64 {
	return g.base[b] * (1 - 0.1*float64(len(c)-1))
}
func (g gradedRates) InstTP(c workload.Coschedule) float64 {
	var sum float64
	for _, typ := range c {
		sum += g.JobWIPC(c, typ)
	}
	return sum
}
func (gradedRates) Epoch() uint64 { return 0 }
func (g gradedRates) MaxJobWIPC(b, slots int) float64 {
	return g.base[b] * (1 - 0.1*float64(slots-1))
}

// TestPruningSkipsDominatedCandidates pins that the bound does real
// work: with it exposed, both schedulers make strictly fewer rate probes
// than the same Select with the bound hidden, while picking identical
// jobs. SRPT is driven over the oracle table (its remaining-work lower
// bound bites on any rates); MAXIT over the asymmetric graded source,
// where weak-type subtrees are provably dominated.
func TestPruningSkipsDominatedCandidates(t *testing.T) {
	tb := table(t)
	rng := stats.NewRNG(43)
	nextID := 0
	var prunedInst, prunedWIPC, plainInst, plainWIPC int
	graded := gradedRates{k: 4, base: []float64{0.2, 0.3, 0.9, 1.0}}
	prunedG := countingBoundedRates{countingRates{graded, &prunedInst, &prunedWIPC}, graded}
	plainG := countingRates{graded, &plainInst, &plainWIPC}
	prunedT := countingBoundedRates{countingRates{tb, &prunedInst, &prunedWIPC}, tb}
	plainT := countingRates{tb, &plainInst, &plainWIPC}
	for trial := 0; trial < 50; trial++ {
		k := tb.K()
		js := randomQueue(rng, &nextID, len(tb.Suite()), 14)
		gotP := fmt.Sprint((&MAXIT{Rates: prunedG}).Select(js, k))
		gotN := fmt.Sprint((&MAXIT{Rates: plainG}).Select(js, k))
		if gotP != gotN {
			t.Fatalf("trial %d: MAXIT with bound %s, without %s", trial, gotP, gotN)
		}
		gotP = fmt.Sprint((&SRPT{Rates: prunedT}).Select(js, k))
		gotN = fmt.Sprint((&SRPT{Rates: plainT}).Select(js, k))
		if gotP != gotN {
			t.Fatalf("trial %d: SRPT with bound %s, without %s", trial, gotP, gotN)
		}
	}
	if prunedInst >= plainInst {
		t.Errorf("MAXIT InstTP probes with bound %d, without %d — pruning skipped nothing", prunedInst, plainInst)
	}
	if prunedWIPC >= plainWIPC {
		t.Errorf("SRPT JobWIPC probes with bound %d, without %d — pruning skipped nothing", prunedWIPC, plainWIPC)
	}
}

// TestMAXITTiedSignatureNotLeakedAcrossQueues is the memo-soundness
// directed case: two queues share the type-count signature {A:2, B:1},
// every size-2 candidate ties on throughput, and the age tie-break picks
// a different multiset in each queue. A memo that cached the first tied
// argmax would replay {A,A} into the second queue.
func TestMAXITTiedSignatureNotLeakedAcrossQueues(t *testing.T) {
	src := quantizedRates{k: 2}
	m := &MAXIT{Rates: src}
	mk := func(ids [3]int, types [3]int) []*Job {
		js := make([]*Job, 3)
		for i := range js {
			js[i] = &Job{ID: ids[i], Type: types[i], Size: 1, Remaining: 1}
		}
		return js
	}
	// Queue 1: A0, A1, B2 — ages: {A,A}=1 < {A,B}=2, so AA wins.
	q1 := mk([3]int{0, 1, 2}, [3]int{0, 0, 1})
	// Queue 2: B3, A10, A11 — ages: {A,A}=21 > {A,B}=13, so AB wins.
	q2 := mk([3]int{3, 10, 11}, [3]int{1, 0, 0})
	for _, tc := range []struct {
		q    []*Job
		want string
	}{{q1, "[0 1]"}, {q2, "[1 0]"}} {
		want := refMAXITSelect(src, tc.q, 2)
		if fmt.Sprint(want) != tc.want {
			t.Fatalf("reference picked %v, want %s — test setup wrong", want, tc.want)
		}
		if got := m.Select(tc.q, 2); fmt.Sprint(got) != tc.want {
			t.Errorf("MAXIT picked %v, want %s (tied signature leaked through the memo?)", got, tc.want)
		}
	}
}

// TestMAXITMemoEpochInvalidation pins the epoch gate that replaced the
// old static-source-only memo: over a learner the memo is used between
// observations (same epoch → hit) and dropped the moment an observation
// bumps the source's epoch — a stale hit would replay a decision the
// learner no longer agrees with. The sampler is held in its sample phase
// (Epsilon 1), where InstTP steers toward the least-measured coschedule,
// so one observation verifiably flips the argmax.
func TestMAXITMemoEpochInvalidation(t *testing.T) {
	s := online.NewSampler(2, online.SamplerConfig{Epsilon: 1, Seed: 1})
	m := &MAXIT{Rates: s}
	js := jobs(0, 0, 1) // two type-0 jobs (IDs 0,1), one type-1 (ID 2)
	prog := []float64{1, 1}

	// Observe {0,1} so the unmeasured {0,0} outscores it during sampling.
	s.ObserveInterval(workload.NewCoschedule(0, 1), 1, prog)
	want1 := refMAXITSelect(s, js, 2)
	got1 := m.Select(js, 2)
	if fmt.Sprint(got1) != fmt.Sprint(want1) || fmt.Sprint(got1) != "[0 1]" {
		t.Fatalf("epoch 1: MAXIT %v, reference %v, want [0 1]", got1, want1)
	}
	if len(m.memo) != 1 {
		t.Fatalf("memo not populated over a learner: %d entries", len(m.memo))
	}
	if m.memoEpoch != s.Epoch() {
		t.Fatalf("memoEpoch %d, source epoch %d", m.memoEpoch, s.Epoch())
	}
	// Same epoch: the hit must reproduce the cold decision.
	if got := m.Select(js, 2); fmt.Sprint(got) != fmt.Sprint(got1) {
		t.Fatalf("same-epoch memo hit %v, want %v", got, got1)
	}

	// Observe {0,0} longer than {0,1}: now {0,1} is the least-measured
	// mix and the decision must flip. A memo not gated on the epoch would
	// replay [0 1] here.
	s.ObserveInterval(workload.NewCoschedule(0, 0), 1.5, prog)
	if s.Epoch() != 2 {
		t.Fatalf("sampler epoch %d after two observations, want 2", s.Epoch())
	}
	want2 := refMAXITSelect(s, js, 2)
	got2 := m.Select(js, 2)
	if fmt.Sprint(got2) != fmt.Sprint(want2) || fmt.Sprint(got2) != "[0 2]" {
		t.Fatalf("epoch 2: MAXIT %v, reference %v, want [0 2]", got2, want2)
	}
	if m.memoEpoch != 2 {
		t.Fatalf("memoEpoch %d after invalidation, want 2", m.memoEpoch)
	}
}

// TestSamplerPairwiseEpochs pins the epoch contract on both learners:
// constant until an effective observation, bumped by one per observation,
// and untouched by the degenerate intervals ObserveInterval ignores.
func TestSamplerPairwiseEpochs(t *testing.T) {
	prog := []float64{1, 1}
	cos := workload.NewCoschedule(0, 1)
	for _, src := range []interface {
		online.RateSource
		online.IntervalObserver
	}{
		online.NewSampler(2, online.SamplerConfig{Seed: 1}),
		online.NewPairwise(2, 4, online.PairwiseConfig{}),
	} {
		if src.Epoch() != 0 {
			t.Errorf("%s: fresh epoch %d, want 0", src.Name(), src.Epoch())
		}
		src.ObserveInterval(cos, 0, prog) // degenerate: dt <= 0
		src.ObserveInterval(nil, 1, nil)  // degenerate: empty coschedule
		if src.Epoch() != 0 {
			t.Errorf("%s: degenerate intervals bumped epoch to %d", src.Name(), src.Epoch())
		}
		src.ObserveInterval(cos, 1, prog)
		if src.Epoch() != 1 {
			t.Errorf("%s: epoch %d after one observation, want 1", src.Name(), src.Epoch())
		}
	}
}

// TestSelectRequiresArrivalOrder pins the documented queue invariant the
// schedulers rely on: every event loop hands Select an ID-ordered slice.
// (eventsim appends arrivals in ID order and compacts completions in
// place; this test is the contract's canary should that ever change.)
func TestSelectRequiresArrivalOrder(t *testing.T) {
	js := jobs(0, 1, 2, 3, 0, 1)
	for i := 1; i < len(js); i++ {
		if js[i].ID < js[i-1].ID {
			t.Fatal("test queue not ID-ordered")
		}
	}
	sel := (&FCFS{}).Select(js, 4)
	for i, idx := range sel {
		if idx != i {
			t.Errorf("FCFS over an ID-ordered queue must select the identity prefix, got %v", sel)
		}
	}
}
