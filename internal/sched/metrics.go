package sched

import "symbiosched/internal/metrics"

// Metrics is the scheduler-layer instrument set. A nil *Metrics is the
// disabled state: the hot loops count into branch-free locals and flush
// them behind a single nil guard after the argmax, so Select with
// metrics off keeps its 0 allocs/op pin and its benchmark profile (see
// the alloc and golden-identity tests).
type Metrics struct {
	// MemoHit / MemoMiss count MAXIT decision-memo outcomes (misses are
	// memoizable lookups that ran the full argmax).
	MemoHit, MemoMiss *metrics.Counter
	// Scored counts candidates actually priced against the rate source;
	// Pruned counts dominated subtrees skipped without scoring.
	Scored, Pruned *metrics.Counter
	// TieBand counts Select calls whose argmax hit the tieTol band (the
	// decisions job age settled, which the memo must not cache).
	TieBand *metrics.Counter
}

// NewMetrics registers the scheduler instruments on c (nil c → nil
// Metrics, the disabled state).
func NewMetrics(c *metrics.Collector) *Metrics {
	if c == nil {
		return nil
	}
	return &Metrics{
		MemoHit:  c.Counter("sched_memo_hit"),
		MemoMiss: c.Counter("sched_memo_miss"),
		Scored:   c.Counter("sched_scored"),
		Pruned:   c.Counter("sched_pruned"),
		TieBand:  c.Counter("sched_tie_band"),
	}
}

// hit and miss are nil-receiver-safe shims for the memo fast path,
// where the counter update sits directly on the lookup branches.
func (m *Metrics) hit() {
	if m != nil {
		m.MemoHit.Inc()
	}
}

func (m *Metrics) miss() {
	if m != nil {
		m.MemoMiss.Inc()
	}
}

// AttachMetrics hands the instrument set to a scheduler. FCFS has no
// decision internals worth counting; MAXTP counts through its MAXIT
// fallback (the only part of its Select that enumerates). Attaching nil
// restores the disabled state.
func AttachMetrics(s Scheduler, m *Metrics) {
	switch sc := s.(type) {
	case *MAXIT:
		sc.Met = m
	case *SRPT:
		sc.Met = m
	case *MAXTP:
		sc.fallback.Met = m
	}
}
