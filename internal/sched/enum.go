package sched

import (
	"math"
	"sort"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// enumerator is the allocation-free candidate machinery the
// knowledge-driven schedulers own: it groups a job queue by type, then
// walks every feasible type-count multiset of a given size in the exact
// lexicographic order the old recursive enumerator produced (count vector
// ascending, types ascending), materialising nothing until the winner is
// known. All buffers are reused across Select calls, so steady-state
// enumeration performs zero heap allocations.
//
// The enumeration order is load-bearing: MAXIT breaks instantaneous-
// throughput ties within a 1e-12 tolerance by job age, and on exact ties
// the first candidate in enumeration order wins, so golden outputs are
// only bit-identical if the order is preserved. Branch-and-bound pruning
// (dominatedTP/dominatedSum + nextFrom) respects the order: it only ever
// skips contiguous stretches of candidates that provably could not have
// updated the running best — or its tie state — had they been scored, so
// the surviving sequence of best updates is identical to the full walk's
// (see DESIGN.md, "Hot path & memoization").
type enumerator struct {
	jobs []*Job // the queue being enumerated, set by prepare

	idx    []int // all job indices, sorted by (type, preference)
	byRem  bool  // preference inside a type: remaining-then-ID, else ID
	types  []int // distinct types present, ascending
	grpOff []int // grpOff[i]..grpOff[i+1] bounds type i's run inside idx
	tcnt   []int // counting-sort scratch, indexed by job type

	// Dense per-queue-position mirrors of the job fields the hot loops
	// touch, filled by prepare's single pass over the job pointers so the
	// grouping and scoring loops read flat float64/int arrays instead of
	// chasing a heap pointer per probe. rem is indexed like jobs; remAt
	// mirrors it aligned with idx (remAt[i] == rem[idx[i]]), so scoring
	// walks group runs sequentially. Both are only filled when byRem.
	tbuf  []int
	rem   []float64
	remAt []float64

	counts []int               // current candidate: count per distinct type
	caps   []int               // available jobs per distinct type
	best   []int               // winning count vector (copied on improvement)
	cos    workload.Coschedule // scratch candidate multiset, sorted
	cosKey uint64              // perfdb.Key(cos), maintained by buildCos
	out    []int               // selection returned to the caller

	// Branch-and-bound state, valid after setBounds (and setRemBounds for
	// SRPT) until the next prepare. m is the candidate size fixed by
	// firstCandidate.
	m      int
	ub     []float64 // ub[ti]: admissible per-slot rate bound for types[ti]
	sufMax []float64 // sufMax[p]: max of ub[p:], sufMax[len(types)] = 0
	cumDiv []float64 // aligned with idx: per-group prefix sums of Remaining, pre-divided by the group's rate bound
	sufQ   []float64 // sufQ[p*(m+1)+r]: cost floor for r slots placed in groups >= p
	qbuf   []float64 // merge scratch for building sufQ

	// dominatedSum's incremental prefix state: bndPfx[p]/bndPlaced[p]
	// hold the bound prefix and slot count through position p for the
	// counts the last walk saw, valid for positions below dirty — the
	// first position counts has changed at since (maintained by
	// firstCandidate and nextFrom). Successive candidates share long
	// prefixes, so most dominance checks resume near the tail.
	bndPfx    []float64
	bndPlaced []int
	dirty     int

	// Dense-rate cache: a direct-mapped (key -> TypeWIPCsByKey result)
	// table serving repeated candidate probes without the map lookup.
	// Entries survive across Select calls for as long as the source's
	// rate epoch stands — the same soundness argument as MAXIT's decision
	// memo — and rcKey 0 marks an empty slot (real keys are never 0:
	// perfdb keys carry a leading length marker).
	rcKey   [1 << rcBits]uint64
	rcVal   [1 << rcBits][]float64
	rcEpoch uint64
	rcLive  bool
}

// rcBits sizes the dense-rate cache at 64 direct-mapped slots — enough
// for every candidate of the queue depths the hot paths see, at 2KiB of
// per-enumerator scratch.
const rcBits = 6

// Len, Less and Swap implement sort.Interface over idx so the sparse-type
// fallback of prepare can sort without any per-call closure or interface
// allocation.
func (e *enumerator) Len() int      { return len(e.idx) }
func (e *enumerator) Swap(a, b int) { e.idx[a], e.idx[b] = e.idx[b], e.idx[a] }
func (e *enumerator) Less(a, b int) bool {
	ja, jb := e.jobs[e.idx[a]], e.jobs[e.idx[b]]
	if ja.Type != jb.Type {
		return ja.Type < jb.Type
	}
	if e.byRem && ja.Remaining != jb.Remaining {
		return ja.Remaining < jb.Remaining
	}
	return ja.ID < jb.ID
}

// prepare groups jobs by type with the given within-type preference
// (byRem false: oldest first; true: shortest remaining first, ties to the
// oldest — SRPT's order). It reuses all scratch.
//
// The grouping key (type, preference, ID) is a total order (IDs are
// unique), so any sorting strategy yields the same idx. The fast path is
// a two-pass counting scatter: the queue is ID-ordered (the Select
// contract), so scattering in queue order is already (type, ID) order,
// and SRPT's preference needs only a per-group insertion sort on top.
// Types far beyond the queue length would inflate the counting array, so
// such queues take the comparison-sort fallback instead.
func (e *enumerator) prepare(jobs []*Job, byRem bool) {
	e.jobs, e.byRem = jobs, byRem
	if cap(e.idx) < len(jobs) {
		e.idx = make([]int, 0, len(jobs))
		e.tbuf = make([]int, 0, len(jobs))
		e.rem = make([]float64, 0, len(jobs))
		e.remAt = make([]float64, 0, len(jobs))
	}
	e.idx, e.tbuf = e.idx[:len(jobs)], e.tbuf[:len(jobs)]
	// One pass over the job pointers copies the fields every later loop
	// needs into dense scratch; everything below runs on flat arrays.
	maxT := 0
	if byRem {
		e.rem, e.remAt = e.rem[:len(jobs)], e.remAt[:len(jobs)]
		for i, j := range jobs {
			e.tbuf[i], e.rem[i] = j.Type, j.Remaining
			if j.Type > maxT {
				maxT = j.Type
			}
		}
	} else {
		for i, j := range jobs {
			e.tbuf[i] = j.Type
			if j.Type > maxT {
				maxT = j.Type
			}
		}
	}
	e.types, e.grpOff, e.caps = e.types[:0], e.grpOff[:0], e.caps[:0]
	if maxT < 256 || maxT < 4*len(jobs) {
		if cap(e.tcnt) < maxT+1 {
			e.tcnt = make([]int, maxT+1)
		}
		tcnt := e.tcnt[:maxT+1]
		clear(tcnt)
		for _, t := range e.tbuf {
			tcnt[t]++
		}
		// Group directory straight from the histogram, then exclusive
		// prefix sums in place for the scatter.
		sum := 0
		for t, c := range tcnt {
			if c > 0 {
				e.types = append(e.types, t)
				e.grpOff = append(e.grpOff, sum)
				e.caps = append(e.caps, c)
			}
			tcnt[t] = sum
			sum += c
		}
		e.grpOff = append(e.grpOff, len(jobs))
		if byRem {
			for i, t := range e.tbuf {
				s := tcnt[t]
				e.idx[s], e.remAt[s] = i, e.rem[i]
				tcnt[t] = s + 1
			}
		} else {
			for i, t := range e.tbuf {
				e.idx[tcnt[t]] = i
				tcnt[t]++
			}
		}
	} else {
		for i := range jobs {
			e.idx[i] = i
		}
		sort.Sort(e)
		for i, ji := range e.idx {
			if byRem {
				e.remAt[i] = e.rem[ji]
			}
			if t := e.tbuf[ji]; i == 0 || t != e.tbuf[e.idx[i-1]] {
				e.types = append(e.types, t)
				e.grpOff = append(e.grpOff, i)
			}
		}
		e.grpOff = append(e.grpOff, len(e.idx))
		for i := range e.types {
			e.caps = append(e.caps, e.grpOff[i+1]-e.grpOff[i])
		}
	}
	if byRem {
		// Groups are (type, ID)-ordered; SRPT wants (Remaining, ID). The
		// queue is ID-ordered, so the scatter left groups in ID order and
		// a stable insertion sort on Remaining alone preserves the ID
		// tie-break. idx and its remAt mirror move together.
		for ti := range e.types {
			lo, hi := e.grpOff[ti], e.grpOff[ti+1]
			for i := lo + 1; i < hi; i++ {
				v, rv := e.idx[i], e.remAt[i]
				j := i
				for j > lo && e.remAt[j-1] > rv {
					e.idx[j], e.remAt[j] = e.idx[j-1], e.remAt[j-1]
					j--
				}
				e.idx[j], e.remAt[j] = v, rv
			}
		}
	}
}

// group returns type slot ti's job indices, preference order.
func (e *enumerator) group(ti int) []int { return e.idx[e.grpOff[ti]:e.grpOff[ti+1]] }

// typeIndex returns the type-group slot of type b; it must be present.
func (e *enumerator) typeIndex(b int) int { return sort.SearchInts(e.types, b) }

// countOf returns how many queued jobs have type b (0 when absent).
func (e *enumerator) countOf(b int) int {
	ti := sort.SearchInts(e.types, b)
	if ti == len(e.types) || e.types[ti] != b {
		return 0
	}
	return e.caps[ti]
}

// firstCandidate resets counts to the lexicographically smallest vector
// summing to m (filled from the last types backward). It returns false
// when m is non-positive; m must not exceed the queue length. Callers
// that need the materialised multiset call buildCos before scoring.
func (e *enumerator) firstCandidate(m int) bool {
	if m <= 0 {
		return false
	}
	e.m = m
	e.dirty = 0
	if cap(e.counts) < len(e.types) {
		e.counts = make([]int, len(e.types))
	}
	e.counts = e.counts[:len(e.types)]
	rem := m
	for i := len(e.types) - 1; i >= 0; i-- {
		c := min(e.caps[i], rem)
		e.counts[i], rem = c, rem-c
	}
	return true
}

// next advances counts to the lexicographic successor, returning false
// when the enumeration is exhausted.
func (e *enumerator) next() bool { return e.nextFrom(len(e.counts) - 1) }

// nextFrom advances counts to the first lexicographic successor that
// differs at some position <= p — skipping the entire subtree of
// candidates sharing the current counts[0..p] prefix. Every candidate in
// that subtree carries the same prefix and the same total suffix mass,
// so the successor computed here is the same from any of them; with
// p = len(counts)-1 this is exactly the old single-step next.
func (e *enumerator) nextFrom(p int) bool {
	// Mass held by the positions being abandoned (those right of the
	// increment point) redistributes rightmost-packed — the
	// lexicographically smallest suffix, preserving enumeration order.
	counts, caps := e.counts, e.caps
	suffix := 0
	for i := len(counts) - 1; i > p; i-- {
		suffix += counts[i]
	}
	for q := p; q >= 0; q-- {
		if suffix >= 1 && counts[q] < caps[q] {
			counts[q]++
			if q < e.dirty {
				e.dirty = q
			}
			rem := suffix - 1
			for i := len(counts) - 1; i > q; i-- {
				c := min(caps[i], rem)
				counts[i], rem = c, rem-c
			}
			return true
		}
		suffix += counts[q]
	}
	return false
}

// buildCos materialises the current count vector as a sorted multiset and
// folds its perfdb.Key alongside (valid for keyed rate sources, whose
// tables enforce the key's type/length bounds).
func (e *enumerator) buildCos() {
	e.cos = e.cos[:0]
	e.cosKey = perfdb.EmptyKey
	for ti, c := range e.counts {
		for j := 0; j < c; j++ {
			e.cos = append(e.cos, e.types[ti])
			e.cosKey = perfdb.KeyAppend(e.cosKey, e.types[ti])
		}
	}
}

// buildKey folds just the perfdb.Key of the current count vector, leaving
// the cos scratch stale — the fast path for keyed rate sources, which
// never read the materialised multiset.
func (e *enumerator) buildKey() {
	e.cosKey = perfdb.EmptyKey
	for ti, c := range e.counts {
		for j := 0; j < c; j++ {
			e.cosKey = perfdb.KeyAppend(e.cosKey, e.types[ti])
		}
	}
}

// primeRateCache readies the dense-rate cache for one Select at source
// epoch ep, dropping every cached slice when the rates have moved.
func (e *enumerator) primeRateCache(ep uint64) {
	if e.rcLive && ep == e.rcEpoch {
		return
	}
	clear(e.rcKey[:])
	clear(e.rcVal[:])
	e.rcEpoch, e.rcLive = ep, true
}

// ratesFor serves dr.TypeWIPCsByKey(key) through the direct-mapped cache:
// queue compositions repeat heavily between scheduling events, so most
// candidates resolve to one uint64 compare instead of a map probe.
// primeRateCache must have run for the current epoch first.
func (e *enumerator) ratesFor(dr denseRates, key uint64) []float64 {
	s := (key * 0x9e3779b97f4a7c15) >> (64 - rcBits)
	if e.rcKey[s] == key {
		return e.rcVal[s]
	}
	r := dr.TypeWIPCsByKey(key)
	e.rcKey[s], e.rcVal[s] = key, r
	return r
}

// rateBound is the optional pruning capability on a rate source: an
// admissible per-slot rate bound. MaxJobWIPC(b, slots) must dominate
// JobWIPC(c, b) for every slots-slot coschedule c the source can be asked
// about, and InstTP must be the sum of its slots' JobWIPCs, so that
// count-weighted bound sums dominate candidate scores. The slot count is
// part of the contract because within one Select every candidate has the
// same fixed size, and for two or more slots a table can answer with its
// co-run maximum — strictly below the normalized solo WIPC of 1 whenever
// the type interferes at all, which is what gives the bound its teeth.
// *perfdb.Table (max over stored entries of the right size class),
// online.Oracle (delegation) and online.Pairwise (its MaxRate clamp)
// implement it; the Sampler deliberately does not — its sample-phase
// InstTP is an exploration score, not a slot sum, so no per-slot bound is
// admissible and MAXIT falls back to the full walk over it.
type rateBound interface {
	MaxJobWIPC(b, slots int) float64
}

// setBounds resolves the per-type rate bounds for candidates of m slots
// and their suffix maxima for branch-and-bound pruning, returning false
// (pruning disabled) when the source exposes no bound or a degenerate
// one.
func (e *enumerator) setBounds(rs any, m int) bool {
	rb, ok := rs.(rateBound)
	if !ok {
		return false
	}
	e.ub = e.ub[:0]
	for _, t := range e.types {
		b := rb.MaxJobWIPC(t, m)
		if !(b > 0) || math.IsInf(b, 1) {
			return false
		}
		e.ub = append(e.ub, b)
	}
	if cap(e.sufMax) < len(e.types)+1 {
		e.sufMax = make([]float64, len(e.types)+1)
	}
	e.sufMax = e.sufMax[:len(e.types)+1]
	e.sufMax[len(e.types)] = 0
	for i := len(e.types) - 1; i >= 0; i-- {
		e.sufMax[i] = max(e.ub[i], e.sufMax[i+1])
	}
	return true
}

// setRemBounds derives SRPT's per-group remaining-work prefix sums,
// pre-divided by the group's rate bound so dominatedSum adds a stored
// quotient instead of dividing per candidate, and the suffix cost floors
// for candidates of m slots. Groups are sorted by ascending Remaining
// (byRem), so group prefixes are the cheapest fills. setBounds must have
// succeeded first.
//
// sufQ[p*(m+1)+r] is the sum of the r smallest per-job quotients
// (Remaining at the bound rate) over all jobs in groups >= p, relaxing
// the per-group prefix structure — every real placement of r slots picks
// r distinct jobs there, so the unconstrained r-smallest selection is an
// admissible floor, and a far tighter one than r times the global
// minimum when remaining work is spread out. Rows are built back to
// front by merging each group's ascending quotient run into the running
// m-smallest list; infeasible r (more slots than suffix jobs) are +Inf,
// and the walk never asks for them.
func (e *enumerator) setRemBounds(m int) {
	if cap(e.cumDiv) < len(e.idx) {
		e.cumDiv = make([]float64, len(e.idx))
	}
	e.cumDiv = e.cumDiv[:len(e.idx)]
	for ti := range e.types {
		lo, hi := e.grpOff[ti], e.grpOff[ti+1]
		// One reciprocal per group instead of a division per job: the
		// quotients stray at most two ulps from exact division, far
		// inside the boundSlack margin the dominance checks demand, so
		// admissibility is unaffected.
		inv := 1 / e.ub[ti]
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += e.remAt[i]
			e.cumDiv[i] = sum * inv
		}
	}
	if cap(e.bndPfx) < len(e.types) {
		e.bndPfx = make([]float64, len(e.types))
		e.bndPlaced = make([]int, len(e.types))
	}
	e.bndPfx, e.bndPlaced = e.bndPfx[:len(e.types)], e.bndPlaced[:len(e.types)]
	T, stride := len(e.types), m+1
	if cap(e.sufQ) < (T+1)*stride {
		e.sufQ = make([]float64, (T+1)*stride)
	}
	e.sufQ = e.sufQ[:(T+1)*stride]
	if cap(e.qbuf) < 2*m {
		e.qbuf = make([]float64, 2*m)
	}
	cur, nxt := e.qbuf[:m], e.qbuf[m:2*m]
	cn := 0 // quotients valid in cur, sorted ascending
	last := e.sufQ[T*stride:]
	last[0] = 0
	for r := 1; r <= m; r++ {
		last[r] = math.Inf(1)
	}
	for p := T - 1; p >= 0; p-- {
		lo, hi := e.grpOff[p], e.grpOff[p+1]
		gl := min(hi-lo, m)
		inv := 1 / e.ub[p]
		i, j, k := 0, 0, 0
		for k < m && (i < cn || j < gl) {
			var gq float64
			if j < gl {
				gq = e.remAt[lo+j] * inv
			}
			if j >= gl || (i < cn && cur[i] <= gq) {
				nxt[k] = cur[i]
				i++
			} else {
				nxt[k] = gq
				j++
			}
			k++
		}
		cur, nxt = nxt, cur
		cn = k
		row := e.sufQ[p*stride : (p+1)*stride]
		row[0] = 0
		s := 0.0
		for r := 1; r <= m; r++ {
			if r <= cn {
				s += cur[r-1]
				row[r] = s
			} else {
				row[r] = math.Inf(1)
			}
		}
	}
}

// boundSlack is the relative margin the dominance checks demand before
// declaring a subtree dead. The bounds accumulate their terms in a
// different association order than the score loops (per-group totals vs
// per-job running sums), so a computed bound can stray a few ulps across
// the exactly-equal computed score when every rate sits at its bound.
// Requiring the bound to clear the threshold by 1e-12 relative — orders
// of magnitude above float64's summation error for any feasible slot
// count, and orders below any score difference the schedulers act on —
// keeps "dominated" certain, so pruning stays bit-identical to the full
// walk. Scores and bounds are non-negative, so relative scaling never
// flips a comparison.
const boundSlack = 1e-12

// dominatedTP reports the shortest prefix of the current count vector
// whose optimistic instantaneous throughput cannot exceed thr: the placed
// slots at their per-type bounds plus the unplaced slots at the best
// bound still ahead. When it returns true, every candidate sharing
// counts[0..p] is bounded by the same value (the bound depends only on
// the prefix and the suffix mass), so the whole subtree may be skipped
// with nextFrom(p). MAXIT passes thr = bestTP - tieTol: a candidate only
// matters if its score strictly exceeds that, so a subtree bounded at or
// below it would neither update the best nor set the tie flag.
func (e *enumerator) dominatedTP(thr float64) (int, bool) {
	thr /= 1 + boundSlack
	prefix, placed := 0.0, 0
	for p, c := range e.counts {
		prefix += float64(c) * e.ub[p]
		placed += c
		if prefix+float64(e.m-placed)*e.sufMax[p+1] <= thr {
			return p, true
		}
	}
	return 0, false
}

// dominatedSum is dominatedTP's SRPT dual: the shortest prefix whose
// optimistic (lower-bound) remaining-time sum already reaches thr. The
// placed slots contribute their exact remaining work at the bound rate
// (group prefixes, so the pre-divided cumDiv applies); the unplaced
// slots contribute at least the suffix cost floor sufQ — the sum of the
// r smallest quotients still ahead. SRPT improves only on sum < bestSum,
// so a subtree bounded at or above bestSum is inert and may be skipped.
func (e *enumerator) dominatedSum(thr float64) (int, bool) {
	thr *= 1 + boundSlack
	grpOff, cumDiv, sufQ := e.grpOff, e.cumDiv, e.sufQ
	counts := e.counts
	stride := e.m + 1
	prefix, placed := 0.0, 0
	p := e.dirty
	if p > 0 {
		prefix, placed = e.bndPfx[p-1], e.bndPlaced[p-1]
	}
	for ; p < len(counts); p++ {
		c := counts[p]
		if c > 0 {
			prefix += cumDiv[grpOff[p]+c-1]
		}
		placed += c
		e.bndPfx[p], e.bndPlaced[p] = prefix, placed
		if prefix+sufQ[(p+1)*stride+e.m-placed] >= thr {
			e.dirty = p + 1
			return p, true
		}
	}
	e.dirty = len(counts)
	return 0, false
}

// greedySeed fills counts with the candidate taking the m jobs with the
// smallest remaining work overall — groups are Remaining-sorted after a
// byRem prepare, so this is an m-step merge over the group heads. SRPT
// scores it to seed its branch-and-bound threshold before enumeration
// starts; the seed is a real candidate, so its score is always an upper
// bound on the true minimum, whatever the rates do.
func (e *enumerator) greedySeed(m int) {
	if cap(e.counts) < len(e.types) {
		e.counts = make([]int, len(e.types))
	}
	e.counts = e.counts[:len(e.types)]
	clear(e.counts)
	for placed := 0; placed < m; placed++ {
		bi, bv := -1, math.Inf(1)
		for ti := range e.types {
			if c := e.counts[ti]; c < e.caps[ti] {
				if v := e.remAt[e.grpOff[ti]+c]; v < bv {
					bi, bv = ti, v
				}
			}
		}
		e.counts[bi]++
	}
}

// materialize writes the selection for a count vector — the first
// counts[ti] jobs of each type group, preference order — into the shared
// out buffer. Callers must not retain the returned slice across Select
// calls.
func (e *enumerator) materialize(counts []int) []int {
	e.out = e.out[:0]
	for ti, c := range counts {
		g := e.group(ti)
		for j := 0; j < c; j++ {
			e.out = append(e.out, g[j])
		}
	}
	return e.out
}

// keepBest copies the current counts into best.
func (e *enumerator) keepBest() {
	e.best = append(e.best[:0], e.counts...)
}

// memoKeyBits packs (k, then per distinct type its identity and its count
// capped at k) into a uint64 decision-memo key, in the spirit of
// perfdb.Key. Capping is lossless for the argmax: no candidate can use
// more than min(k, queue length) jobs of one type, and the selection
// takes group prefixes, so queues agreeing on capped counts have the same
// candidate set and the same materialisation. ok is false when the
// signature does not fit 64 bits (more than four distinct types, a type
// above 255, or k above 15) — callers then skip the memo.
func (e *enumerator) memoKey(k int) (key uint64, ok bool) {
	if len(e.types) > 4 || k > 15 {
		return 0, false
	}
	key = 1 // leading 1 marks the length
	for ti, t := range e.types {
		if t > 255 {
			return 0, false
		}
		key = key<<12 | uint64(t)<<4 | uint64(min(e.caps[ti], k))
	}
	return key<<4 | uint64(k), true
}

// packCounts encodes a winning count vector (each entry <= 15, at most
// four entries when memoKey accepted the queue) for memo storage.
func packCounts(counts []int) uint64 {
	var v uint64 = 1
	for _, c := range counts {
		v = v<<4 | uint64(c)
	}
	return v
}

// unpackCounts decodes packCounts into the shared counts scratch, sized
// to the current type-group count.
func (e *enumerator) unpackCounts(v uint64) []int {
	if cap(e.counts) < len(e.types) {
		e.counts = make([]int, len(e.types))
	}
	e.counts = e.counts[:len(e.types)]
	for i := len(e.counts) - 1; i >= 0; i-- {
		e.counts[i] = int(v & 0xf)
		v >>= 4
	}
	return e.counts
}
