package sched

import (
	"sort"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/workload"
)

// enumerator is the allocation-free candidate machinery the
// knowledge-driven schedulers own: it groups a job queue by type, then
// walks every feasible type-count multiset of a given size in the exact
// lexicographic order the old recursive enumerator produced (count vector
// ascending, types ascending), materialising nothing until the winner is
// known. All buffers are reused across Select calls, so steady-state
// enumeration performs zero heap allocations.
//
// The enumeration order is load-bearing: MAXIT breaks instantaneous-
// throughput ties within a 1e-12 tolerance by job age, and on exact ties
// the first candidate in enumeration order wins, so golden outputs are
// only bit-identical if the order is preserved.
type enumerator struct {
	jobs []*Job // the queue being enumerated, set by prepare

	idx    []int // all job indices, sorted by (type, preference)
	byRem  bool  // preference inside a type: remaining-then-ID, else ID
	types  []int // distinct types present, ascending
	grpOff []int // grpOff[i]..grpOff[i+1] bounds type i's run inside idx

	counts []int               // current candidate: count per distinct type
	caps   []int               // available jobs per distinct type
	best   []int               // winning count vector (copied on improvement)
	cos    workload.Coschedule // scratch candidate multiset, sorted
	cosKey uint64              // perfdb.Key(cos), maintained by buildCos
	out    []int               // selection returned to the caller
}

// Len, Less and Swap implement sort.Interface over idx so prepare can
// sort without any per-call closure or interface allocation.
func (e *enumerator) Len() int      { return len(e.idx) }
func (e *enumerator) Swap(a, b int) { e.idx[a], e.idx[b] = e.idx[b], e.idx[a] }
func (e *enumerator) Less(a, b int) bool {
	ja, jb := e.jobs[e.idx[a]], e.jobs[e.idx[b]]
	if ja.Type != jb.Type {
		return ja.Type < jb.Type
	}
	if e.byRem && ja.Remaining != jb.Remaining {
		return ja.Remaining < jb.Remaining
	}
	return ja.ID < jb.ID
}

// prepare groups jobs by type with the given within-type preference
// (byRem false: oldest first; true: shortest remaining first, ties to the
// oldest — SRPT's order). It reuses all scratch.
func (e *enumerator) prepare(jobs []*Job, byRem bool) {
	e.jobs, e.byRem = jobs, byRem
	e.idx = e.idx[:0]
	for i := range jobs {
		e.idx = append(e.idx, i)
	}
	sort.Sort(e)
	e.types, e.grpOff, e.caps = e.types[:0], e.grpOff[:0], e.caps[:0]
	for i, ji := range e.idx {
		if t := jobs[ji].Type; i == 0 || t != jobs[e.idx[i-1]].Type {
			e.types = append(e.types, t)
			e.grpOff = append(e.grpOff, i)
		}
	}
	e.grpOff = append(e.grpOff, len(e.idx))
	for i := range e.types {
		e.caps = append(e.caps, e.grpOff[i+1]-e.grpOff[i])
	}
}

// group returns type slot ti's job indices, preference order.
func (e *enumerator) group(ti int) []int { return e.idx[e.grpOff[ti]:e.grpOff[ti+1]] }

// typeIndex returns the type-group slot of type b; it must be present.
func (e *enumerator) typeIndex(b int) int { return sort.SearchInts(e.types, b) }

// countOf returns how many queued jobs have type b (0 when absent).
func (e *enumerator) countOf(b int) int {
	ti := sort.SearchInts(e.types, b)
	if ti == len(e.types) || e.types[ti] != b {
		return 0
	}
	return e.caps[ti]
}

// firstCandidate resets counts to the lexicographically smallest vector
// summing to m (filled from the last types backward) and rebuilds cos. It
// returns false when m is non-positive; m must not exceed the queue
// length.
func (e *enumerator) firstCandidate(m int) bool {
	if m <= 0 {
		return false
	}
	if cap(e.counts) < len(e.types) {
		e.counts = make([]int, len(e.types))
	}
	e.counts = e.counts[:len(e.types)]
	rem := m
	for i := len(e.types) - 1; i >= 0; i-- {
		c := min(e.caps[i], rem)
		e.counts[i], rem = c, rem-c
	}
	e.buildCos()
	return true
}

// next advances counts to the lexicographic successor, returning false
// when the enumeration is exhausted.
func (e *enumerator) next() bool {
	// Find the rightmost position that can take one unit from its suffix.
	suffix := 0
	for p := len(e.counts) - 1; p >= 0; p-- {
		if suffix >= 1 && e.counts[p] < e.caps[p] {
			e.counts[p]++
			rem := suffix - 1
			for i := len(e.counts) - 1; i > p; i-- {
				c := min(e.caps[i], rem)
				e.counts[i], rem = c, rem-c
			}
			e.buildCos()
			return true
		}
		suffix += e.counts[p]
	}
	return false
}

// buildCos materialises the current count vector as a sorted multiset and
// folds its perfdb.Key alongside (valid for keyed rate sources, whose
// tables enforce the key's type/length bounds).
func (e *enumerator) buildCos() {
	e.cos = e.cos[:0]
	e.cosKey = perfdb.EmptyKey
	for ti, c := range e.counts {
		for j := 0; j < c; j++ {
			e.cos = append(e.cos, e.types[ti])
			e.cosKey = perfdb.KeyAppend(e.cosKey, e.types[ti])
		}
	}
}

// materialize writes the selection for a count vector — the first
// counts[ti] jobs of each type group, preference order — into the shared
// out buffer. Callers must not retain the returned slice across Select
// calls.
func (e *enumerator) materialize(counts []int) []int {
	e.out = e.out[:0]
	for ti, c := range counts {
		g := e.group(ti)
		for j := 0; j < c; j++ {
			e.out = append(e.out, g[j])
		}
	}
	return e.out
}

// keepBest copies the current counts into best.
func (e *enumerator) keepBest() {
	e.best = append(e.best[:0], e.counts...)
}

// memoKeyBits packs (k, then per distinct type its identity and its count
// capped at k) into a uint64 decision-memo key, in the spirit of
// perfdb.Key. Capping is lossless for the argmax: no candidate can use
// more than min(k, queue length) jobs of one type, and the selection
// takes group prefixes, so queues agreeing on capped counts have the same
// candidate set and the same materialisation. ok is false when the
// signature does not fit 64 bits (more than four distinct types, a type
// above 255, or k above 15) — callers then skip the memo.
func (e *enumerator) memoKey(k int) (key uint64, ok bool) {
	if len(e.types) > 4 || k > 15 {
		return 0, false
	}
	key = 1 // leading 1 marks the length
	for ti, t := range e.types {
		if t > 255 {
			return 0, false
		}
		key = key<<12 | uint64(t)<<4 | uint64(min(e.caps[ti], k))
	}
	return key<<4 | uint64(k), true
}

// packCounts encodes a winning count vector (each entry <= 15, at most
// four entries when memoKey accepted the queue) for memo storage.
func packCounts(counts []int) uint64 {
	var v uint64 = 1
	for _, c := range counts {
		v = v<<4 | uint64(c)
	}
	return v
}

// unpackCounts decodes packCounts into the shared counts scratch, sized
// to the current type-group count.
func (e *enumerator) unpackCounts(v uint64) []int {
	if cap(e.counts) < len(e.types) {
		e.counts = make([]int, len(e.types))
	}
	e.counts = e.counts[:len(e.types)]
	for i := len(e.counts) - 1; i >= 0; i-- {
		e.counts[i] = int(v & 0xf)
		v >>= 4
	}
	return e.counts
}
