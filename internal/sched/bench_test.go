package sched

import (
	"fmt"
	"testing"

	"symbiosched/internal/stats"
	"symbiosched/internal/workload"
)

// benchQueues builds nq deterministic ID-ordered job queues of the given
// depth over the 4-type mini table, with varied remaining work so SRPT's
// preference order is exercised. Queues rotate across iterations so the
// benchmark measures a mix of repeated and fresh count multisets — the
// steady-state shape of an event loop near saturation.
func benchQueues(nq, depth int) [][]*Job {
	rng := stats.NewRNG(42)
	queues := make([][]*Job, nq)
	for qi := range queues {
		js := make([]*Job, depth)
		for i := range js {
			size := 0.5 + rng.Float64()
			js[i] = &Job{
				ID:        qi*depth + i,
				Type:      rng.Intn(4),
				Size:      size,
				Remaining: size * (0.1 + 0.9*rng.Float64()),
				Arrival:   float64(i),
			}
		}
		queues[qi] = js
	}
	return queues
}

// BenchmarkSchedulerSelect measures the decision hot path: one Select
// call per event over the oracle table, across scheduler and queue depth.
// This is the innermost loop of every latency/throughput/farm experiment.
func BenchmarkSchedulerSelect(b *testing.B) {
	tb := table(b)
	w := workload.Workload{0, 1, 2, 3}
	for _, name := range []string{"FCFS", "MAXIT", "SRPT", "MAXTP"} {
		for _, depth := range []int{4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/depth=%d", name, depth), func(b *testing.B) {
				s, err := New(name, tb, w)
				if err != nil {
					b.Fatal(err)
				}
				queues := benchQueues(16, depth)
				// Warm once so memoized paths measure steady state.
				for _, q := range queues {
					if got := s.Select(q, tb.K()); len(got) == 0 {
						b.Fatal("empty selection")
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Select(queues[i%len(queues)], tb.K())
				}
			})
		}
	}
}

// calibSink keeps BenchmarkCalibration's loop observable so the compiler
// cannot elide it.
var calibSink uint64

// BenchmarkCalibration is the perf gate's machine-speed reference: a
// fixed pure-CPU integer loop with no memory traffic, table lookups or
// branches that data could steer. The resultdb gate divides every
// hot-path ns/op by this benchmark's ns/op on the same machine, so a
// baseline recorded on one machine still gates another at the intended
// tolerance (see internal/resultdb's Gate).
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := uint64(i) | 1
		for j := 0; j < 1024; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibSink += x
	}
}
