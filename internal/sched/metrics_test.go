package sched

import (
	"fmt"
	"testing"

	"symbiosched/internal/metrics"
	"symbiosched/internal/workload"
)

// TestSelectMetricsObserveOnly pins both halves of the scheduler
// instrumentation contract: attaching a collector never changes a single
// selection, and the counters actually move — memo hits and misses on
// the MAXIT fast path, scored and pruned candidates on the enumerators.
func TestSelectMetricsObserveOnly(t *testing.T) {
	tb := table(t)
	w := workload.Workload{0, 1, 2, 3}
	queues := allocQueues()
	for _, name := range []string{"MAXIT", "SRPT", "MAXTP"} {
		plain, err := New(name, tb, w)
		if err != nil {
			t.Fatal(err)
		}
		instr, err := New(name, tb, w)
		if err != nil {
			t.Fatal(err)
		}
		c := metrics.New()
		m := NewMetrics(c)
		AttachMetrics(instr, m)
		for round := 0; round < 3; round++ {
			for qi, q := range queues {
				a := fmt.Sprint(plain.Select(q, 4))
				b := fmt.Sprint(instr.Select(q, 4))
				if a != b {
					t.Fatalf("%s queue %d: selection changed with metrics attached: %s vs %s", name, qi, a, b)
				}
			}
		}
		snap := c.Snapshot()
		scored, _ := snap.Get("sched_scored", "count")
		if scored == 0 {
			t.Errorf("%s: sched_scored never moved", name)
		}
		if name == "MAXIT" {
			hits, _ := snap.Get("sched_memo_hit", "count")
			misses, _ := snap.Get("sched_memo_miss", "count")
			// Rounds 2 and 3 replay round 1's count multisets, so the memo
			// must both miss (cold) and hit (warm).
			if misses == 0 || hits == 0 {
				t.Errorf("MAXIT: memo counters hit=%v miss=%v, want both > 0", hits, misses)
			}
		}
	}
}

// TestAttachNilMetricsRestoresDisabled pins that AttachMetrics(s, nil)
// returns to the free path: the nil-receiver shims and nil instrument
// methods make every hook a no-op again.
func TestAttachNilMetricsRestoresDisabled(t *testing.T) {
	tb := table(t)
	s, err := New("MAXIT", tb, workload.Workload{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	AttachMetrics(s, NewMetrics(metrics.New()))
	AttachMetrics(s, nil)
	testSelectAllocs(t, s)
}
