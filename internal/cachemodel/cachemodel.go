// Package cachemodel models contention for a shared last-level cache.
//
// Under LRU-like replacement with no partitioning (the paper assumes "no
// programmable partitioning mechanisms"), a thread's steady-state occupancy
// of a shared cache is approximately proportional to its insertion rate —
// its misses per unit time (e.g. Suh et al., ICS 2001). This creates the
// classic pathology the paper's benchmarks exercise: a streaming job
// (libquantum) inserts at a huge rate, occupying capacity it does not
// benefit from and shrinking the share of cache-sensitive co-runners
// (mcf, xalancbmk).
//
// Shares and miss rates are mutually dependent — a bigger share lowers the
// miss rate, which lowers the insertion rate, which shrinks the share — so
// the model iterates to a damped fixed point. The iteration is a contraction
// in practice; a fixed iteration count with damping converges to well below
// solver noise.
package cachemodel

import (
	"symbiosched/internal/program"
)

// Demand describes one thread's pressure on the shared cache.
type Demand struct {
	// Profile is the thread's benchmark profile (miss-ratio curve).
	Profile *program.Profile
	// IPC is the thread's current instructions-per-cycle estimate; the
	// insertion rate is IPC * MemMPKI(share)/1000. Callers iterate the
	// outer performance model, so a stale IPC is fine.
	IPC float64
}

const (
	iterations = 30
	damping    = 0.5
	// minShareFrac prevents pathological starvation: even a thread that
	// misses rarely retains a sliver of occupancy (its hot set).
	minShareFrac = 0.02
)

// Shares computes the steady-state capacity shares (in KB, summing to
// totalKB) of the given demands on a shared cache. A nil or empty demand
// set returns nil. Single-thread "sharing" returns the whole cache.
func Shares(demands []Demand, totalKB float64) []float64 {
	n := len(demands)
	if n == 0 {
		return nil
	}
	shares := make([]float64, n)
	if n == 1 {
		shares[0] = totalKB
		return shares
	}
	// Start from an equal split.
	for i := range shares {
		shares[i] = totalKB / float64(n)
	}
	weights := make([]float64, n)
	for it := 0; it < iterations; it++ {
		var total float64
		for i, d := range demands {
			// Insertion rate: misses per cycle at the current share.
			ins := d.IPC * d.Profile.MemMPKI(shares[i]) / 1000
			// The occupancy weight floors at a small constant so that a
			// zero-miss thread keeps its hot set.
			w := ins
			if w < 1e-6 {
				w = 1e-6
			}
			weights[i] = w
			total += w
		}
		for i := range demands {
			target := totalKB * weights[i] / total
			if min := totalKB * minShareFrac; target < min {
				target = min
			}
			shares[i] = damping*shares[i] + (1-damping)*target
		}
		// Renormalise to the exact capacity (the floor can overshoot).
		var sum float64
		for _, s := range shares {
			sum += s
		}
		for i := range shares {
			shares[i] *= totalKB / sum
		}
	}
	return shares
}

// EqualShares returns a static equal partitioning of the cache — the
// ablation baseline for the occupancy model (see bench_test.go,
// BenchmarkAblationCacheModel).
func EqualShares(n int, totalKB float64) []float64 {
	if n <= 0 {
		return nil
	}
	shares := make([]float64, n)
	for i := range shares {
		shares[i] = totalKB / float64(n)
	}
	return shares
}
