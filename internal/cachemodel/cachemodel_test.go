package cachemodel

import (
	"testing"
	"testing/quick"

	"symbiosched/internal/program"
	"symbiosched/internal/stats"
)

func demand(t *testing.T, id string, ipc float64) Demand {
	t.Helper()
	p, _, ok := program.ByID(id)
	if !ok {
		t.Fatalf("unknown benchmark %s", id)
	}
	return Demand{Profile: &p, IPC: ipc}
}

func TestSingleThreadGetsAll(t *testing.T) {
	d := []Demand{demand(t, "mcf.ref", 0.3)}
	shares := Shares(d, 2048)
	if len(shares) != 1 || shares[0] != 2048 {
		t.Errorf("shares = %v, want [2048]", shares)
	}
}

func TestEmptyDemands(t *testing.T) {
	if s := Shares(nil, 2048); s != nil {
		t.Errorf("Shares(nil) = %v, want nil", s)
	}
}

func TestSymmetricDemandsSplitEqually(t *testing.T) {
	d := []Demand{demand(t, "mcf.ref", 0.3), demand(t, "mcf.ref", 0.3)}
	shares := Shares(d, 2048)
	if diff := shares[0] - shares[1]; diff > 1 || diff < -1 {
		t.Errorf("identical demands should split equally: %v", shares)
	}
}

func TestSharesSumToCapacity(t *testing.T) {
	d := []Demand{
		demand(t, "mcf.ref", 0.3),
		demand(t, "hmmer.nph3", 2.0),
		demand(t, "libquantum.ref", 0.4),
		demand(t, "gcc.g23", 0.6),
	}
	shares := Shares(d, 4096)
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if diff := sum - 4096; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("shares sum %v != capacity", sum)
	}
}

func TestHighInsertionRateWins(t *testing.T) {
	// libquantum (huge miss traffic) vs hmmer (negligible): occupancy
	// follows insertion rate under LRU-like replacement.
	d := []Demand{demand(t, "libquantum.ref", 0.4), demand(t, "hmmer.nph3", 2.0)}
	shares := Shares(d, 2048)
	if shares[0] < 4*shares[1] {
		t.Errorf("streaming job should dominate occupancy: %v", shares)
	}
}

func TestMinimumShareFloor(t *testing.T) {
	// Even a zero-IPC thread keeps a sliver of occupancy.
	d := []Demand{demand(t, "libquantum.ref", 0.4), demand(t, "hmmer.nph3", 0)}
	shares := Shares(d, 2048)
	if shares[1] <= 0 {
		t.Errorf("starved thread share = %v, want > 0", shares[1])
	}
}

func TestEqualShares(t *testing.T) {
	s := EqualShares(4, 2048)
	for _, v := range s {
		if v != 512 {
			t.Errorf("EqualShares = %v", s)
		}
	}
	if EqualShares(0, 100) != nil {
		t.Error("EqualShares(0) should be nil")
	}
}

// Property: shares are positive and sum to capacity for random demand sets.
func TestSharesInvariantProperty(t *testing.T) {
	suite := program.Suite()
	rng := stats.NewRNG(31)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		n := 2 + r.Intn(3)
		d := make([]Demand, n)
		for i := range d {
			d[i] = Demand{Profile: &suite[r.Intn(len(suite))], IPC: r.Float64() * 2}
		}
		total := 512 + float64(r.Intn(8192))
		shares := Shares(d, total)
		var sum float64
		for _, s := range shares {
			if s <= 0 {
				return false
			}
			sum += s
		}
		return sum > total*0.999 && sum < total*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
