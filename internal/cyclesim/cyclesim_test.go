package cyclesim

import (
	"sort"
	"testing"

	"symbiosched/internal/program"
	"symbiosched/internal/smtmodel"
	"symbiosched/internal/uarch"
)

func prof(t *testing.T, id string) *program.Profile {
	t.Helper()
	p, _, ok := program.ByID(id)
	if !ok {
		t.Fatalf("unknown benchmark %s", id)
	}
	return &p
}

func smtCfg(instr int64) Config {
	m := uarch.DefaultSMT()
	return Config{SMT: &m, Instructions: instr, Seed: 42}
}

func quadCfg(instr int64) Config {
	m := uarch.DefaultMulticore()
	return Config{Multicore: &m, Instructions: instr, Seed: 42}
}

func TestSoloIPCOrdering(t *testing.T) {
	// The cycle simulator must rank benchmarks like the analytical stack:
	// hmmer (high ILP, cache-resident) >> mcf (memory-bound).
	hm, err := Run(smtCfg(60_000), []*program.Profile{prof(t, "hmmer.nph3")})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Run(smtCfg(60_000), []*program.Profile{prof(t, "mcf.ref")})
	if err != nil {
		t.Fatal(err)
	}
	if hm.IPC[0] < 2*mc.IPC[0] {
		t.Errorf("hmmer %v should be far faster than mcf %v", hm.IPC[0], mc.IPC[0])
	}
	if hm.IPC[0] > 4 || mc.IPC[0] <= 0 {
		t.Errorf("IPCs out of range: %v, %v", hm.IPC[0], mc.IPC[0])
	}
}

func TestSMTSharingSlowsThreadsDown(t *testing.T) {
	p := prof(t, "hmmer.nph3")
	solo, err := Run(smtCfg(50_000), []*program.Profile{p})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(smtCfg(50_000), []*program.Profile{p, p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, x := range four.IPC {
		if x >= solo.IPC[0] {
			t.Errorf("shared thread IPC %v >= solo %v", x, solo.IPC[0])
		}
		total += x
	}
	if total > 4 {
		t.Errorf("aggregate IPC %v exceeds width", total)
	}
}

func TestMulticoreGentlerThanSMT(t *testing.T) {
	p := prof(t, "hmmer.nph3")
	smt, err := Run(smtCfg(50_000), []*program.Profile{p, p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Run(quadCfg(50_000), []*program.Profile{p, p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	if quad.IPC[0] <= smt.IPC[0] {
		t.Errorf("a private core (%v) should beat an SMT context (%v) for a compute job",
			quad.IPC[0], smt.IPC[0])
	}
}

func TestDeterminism(t *testing.T) {
	p := prof(t, "gcc.g23")
	a, err := Run(smtCfg(30_000), []*program.Profile{p, p})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smtCfg(30_000), []*program.Profile{p, p})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatal("simulation is not deterministic")
		}
	}
}

func TestCacheMissRatesOrdered(t *testing.T) {
	// A memory-bound benchmark must show a much higher L1 miss rate than a
	// cache-resident one.
	mc, err := Run(smtCfg(50_000), []*program.Profile{prof(t, "mcf.ref")})
	if err != nil {
		t.Fatal(err)
	}
	hm, err := Run(smtCfg(50_000), []*program.Profile{prof(t, "hmmer.nph3")})
	if err != nil {
		t.Fatal(err)
	}
	if mc.L1MissRate <= hm.L1MissRate {
		t.Errorf("mcf L1 miss rate %v should exceed hmmer's %v", mc.L1MissRate, hm.L1MissRate)
	}
}

func TestCrossValidationAgainstAnalyticalModel(t *testing.T) {
	// The headline validation: per-benchmark solo IPC from the cycle
	// simulator and the analytical SMT model must agree in rank order
	// (Spearman correlation) across a diverse benchmark subset.
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	ids := []string{"hmmer.nph3", "calculix.ref", "sjeng.ref", "bzip2.input.program",
		"gcc.g23", "xalancbmk.ref", "libquantum.ref", "mcf.ref"}
	machine := uarch.DefaultSMT()
	var sim, model []float64
	for _, id := range ids {
		p := prof(t, id)
		res, err := Run(smtCfg(60_000), []*program.Profile{p})
		if err != nil {
			t.Fatal(err)
		}
		sim = append(sim, res.IPC[0])
		model = append(model, smtmodel.SoloIPC(machine, p))
	}
	if rho := spearman(sim, model); rho < 0.8 {
		t.Errorf("solo IPC rank correlation %v < 0.8 between cyclesim and smtmodel\nsim=%v\nmodel=%v",
			rho, sim, model)
	}
}

func TestICOUNTvsRRInCycleSim(t *testing.T) {
	// ICOUNT should not lose to round-robin for a mixed coschedule in the
	// cycle-level simulator either.
	mix := []*program.Profile{prof(t, "hmmer.nph3"), prof(t, "mcf.ref"),
		prof(t, "calculix.ref"), prof(t, "libquantum.ref")}
	ic := uarch.DefaultSMT()
	rr := uarch.DefaultSMT()
	rr.Fetch = uarch.RoundRobin
	a, err := Run(Config{SMT: &ic, Instructions: 50_000, Seed: 7}, mix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{SMT: &rr, Instructions: 50_000, Seed: 7}, mix)
	if err != nil {
		t.Fatal(err)
	}
	var ta, tb float64
	for i := range a.IPC {
		ta += a.IPC[i]
		tb += b.IPC[i]
	}
	if ta < 0.9*tb {
		t.Errorf("ICOUNT total %v far below RR total %v", ta, tb)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("expected error for missing machine")
	}
	m := uarch.DefaultSMT()
	p := prof(t, "mcf.ref")
	if _, err := Run(Config{SMT: &m}, []*program.Profile{p, p, p, p, p}); err == nil {
		t.Error("expected error for too many threads")
	}
}

func TestModelAdapter(t *testing.T) {
	m := uarch.DefaultSMT()
	mod := Model{Cfg: Config{SMT: &m, Instructions: 5_000, Seed: 1}}
	if mod.Contexts() != 4 || mod.Name() == "" {
		t.Errorf("adapter metadata broken")
	}
	p := prof(t, "sjeng.ref")
	if got := mod.SlotIPC([]*program.Profile{p, p}); len(got) != 2 {
		t.Errorf("SlotIPC returned %d entries", len(got))
	}
	q := uarch.DefaultMulticore()
	mod2 := Model{Cfg: Config{Multicore: &q}}
	if mod2.Contexts() != 4 || mod2.Name() == "" {
		t.Errorf("multicore adapter metadata broken")
	}
}

// spearman computes the Spearman rank correlation of two samples.
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for r, i := range idx {
		out[i] = float64(r)
	}
	return out
}
