package cyclesim

// cache is a set-associative cache with LRU replacement, used for both the
// private L1s and the shared last-level cache. Tags carry the full line
// address (including the thread namespace bits the simulator adds), so a
// shared cache naturally exhibits inter-thread capacity contention.
type cache struct {
	sets   int
	ways   int
	shift  uint // log2(line size)
	tags   [][]uint64
	lru    [][]int64
	tick   int64
	hits   int64
	misses int64
}

// newCache builds a cache of sizeKB kilobytes with the given associativity
// and 64-byte lines. Size is rounded down to a power-of-two set count.
func newCache(sizeKB, ways int) *cache {
	const lineBytes = 64
	lines := sizeKB * 1024 / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	c := &cache{sets: sets, ways: ways, shift: 6}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.lru[i] = make([]int64, ways)
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint64(0)
		}
	}
	return c
}

// access looks up (and on miss, fills) the line containing addr. It
// returns true on a hit.
func (c *cache) access(addr uint64) bool {
	line := addr >> c.shift
	set := int(line) & (c.sets - 1)
	c.tick++
	tags := c.tags[set]
	lru := c.lru[set]
	for w, t := range tags {
		if t == line {
			lru[w] = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	// Evict the least recently used way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if lru[w] < lru[victim] {
			victim = w
		}
	}
	tags[victim] = line
	lru[victim] = c.tick
	return false
}

// missRate returns misses / accesses (0 when idle).
func (c *cache) missRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
