// Package cyclesim is a cycle-level, trace-driven simulator of the study's
// machines, built in the instruction-window-centric style of Sniper's core
// model (Carlson et al., TACO 2014): each thread owns a reorder-buffer
// window of in-flight instructions whose completion cycles are computed
// dataflow-style (dependencies + functional-unit/cache latencies), the
// shared front-end dispatches into the windows under a fetch policy, and
// in-order commit drains them.
//
// It exists to cross-validate the closed-form models (internal/smtmodel,
// internal/multicore): both consume the same program profiles, and the
// validation tests check that per-thread rates from the two stacks agree
// in ranking and magnitude. It can also stand in as a perfdb.Model
// (table building is then ~100x slower than the analytical models).
//
// Simplifications relative to real hardware, chosen to keep the simulator
// honest where the study needs it (shared front-end, window, cache
// capacity and bus bandwidth) and cheap where it does not: no wrong-path
// execution (a mispredicted branch stalls the thread's fetch until it
// resolves), unlimited functional units (dispatch width is the structural
// limit), and store buffers are ideal (stores complete at dispatch).
package cyclesim

import (
	"fmt"

	"symbiosched/internal/program"
	"symbiosched/internal/trace"
	"symbiosched/internal/uarch"
)

// Config parameterises a simulation.
type Config struct {
	// Machine topology: SMT shares the front-end and window; a multicore
	// gives each thread a private core and L1/L2 but shares the LLC.
	SMT *uarch.SMTMachine
	// Multicore is used when SMT is nil.
	Multicore *uarch.MulticoreMachine
	// Instructions is the per-thread instruction budget (default 200_000).
	Instructions int64
	// Warmup instructions per thread are excluded from the IPC measurement
	// (default Instructions/10).
	Warmup int64
	// Seed drives trace generation (default 1).
	Seed uint64
}

// Result reports per-thread performance.
type Result struct {
	// IPC is each thread's retired instructions per cycle over the
	// measurement window.
	IPC []float64
	// Cycles is the total simulated cycles.
	Cycles int64
	// L1MissRate and LLCMissRate are aggregate cache miss ratios.
	L1MissRate, LLCMissRate float64
}

const l1HitLatency = 3

// instState tracks one in-flight instruction.
type instState struct {
	done   int64 // completion cycle
	branch bool
	misp   bool
}

// thread is one hardware context.
type thread struct {
	gen        *trace.Generator
	rob        []instState
	head, tail int // ring indices
	count      int
	fetched    int64 // instructions dispatched
	retired    int64
	measured   int64 // retired inside the measurement window
	startCycle int64 // cycle at which measurement started
	endCycle   int64
	stallUntil int64 // front-end redirect (branch misprediction)
	done       bool
}

func (t *thread) robAt(i int) *instState { return &t.rob[i%len(t.rob)] }

// Run simulates the coschedule given by profiles and returns per-thread
// IPCs. len(profiles) must be between 1 and the machine's context count.
func Run(cfg Config, profiles []*program.Profile) (*Result, error) {
	if cfg.SMT == nil && cfg.Multicore == nil {
		return nil, fmt.Errorf("cyclesim: no machine configured")
	}
	if cfg.Instructions <= 0 {
		cfg.Instructions = 200_000
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Instructions / 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	n := len(profiles)

	var (
		core     uarch.Core
		contexts int
		shared   bool // shared front-end and window (SMT)
		fetchPol uarch.FetchPolicy
		robPol   uarch.ROBPolicy
		llcKB    int
		l2KB     int
		busSvc   float64
	)
	if cfg.SMT != nil {
		m := *cfg.SMT
		if err := m.Validate(); err != nil {
			return nil, err
		}
		core, contexts, shared = m.Core, m.Threads, true
		fetchPol, robPol = m.Fetch, m.ROB
		llcKB = m.SharedCacheKB
		busSvc = m.Bus.ServiceCycles
	} else {
		m := *cfg.Multicore
		if err := m.Validate(); err != nil {
			return nil, err
		}
		core, contexts, shared = m.Core, m.Cores, false
		llcKB = m.SharedLLCKB
		l2KB = m.PrivateL2KB
		busSvc = m.Bus.ServiceCycles
	}
	if n < 1 || n > contexts {
		return nil, fmt.Errorf("cyclesim: %d threads on a %d-context machine", n, contexts)
	}

	threads := make([]*thread, n)
	l1s := make([]*cache, n)
	var l2s []*cache
	robCap := core.ROBSize
	if shared && robPol == uarch.StaticROB {
		robCap = core.ROBSize / n
	}
	for i := range threads {
		threads[i] = &thread{
			gen: trace.New(profiles[i], cfg.Seed+uint64(i)*0x9e37),
			rob: make([]instState, core.ROBSize+1),
		}
		l1s[i] = newCache(32, 8)
	}
	if !shared && l2KB > 0 {
		l2s = make([]*cache, n)
		for i := range l2s {
			l2s[i] = newCache(l2KB, 8)
		}
	}
	llc := newCache(llcKB, 16)
	var busFree int64

	// memAccess returns the load-to-use latency of addr for thread ti at
	// the given cycle, walking the hierarchy and queueing on the bus.
	memAccess := func(ti int, addr uint64, now int64) int64 {
		// Namespace private data per thread so the shared LLC only shares
		// capacity, not contents.
		key := addr | uint64(ti)<<56
		if l1s[ti].access(key) {
			return l1HitLatency
		}
		if l2s != nil && l2s[ti].access(key) {
			return int64(core.LLCHitLatency) / 2
		}
		if llc.access(key) {
			return int64(core.LLCHitLatency)
		}
		// DRAM: serialise line transfers on the shared bus.
		start := now
		if busFree > start {
			start = busFree
		}
		busFree = start + int64(busSvc)
		return (start - now) + int64(core.MemLatency)
	}

	sharedCount := 0 // total in-flight instructions (dynamic SMT ROB)
	var cycle int64
	liveThreads := n
	order := make([]int, n)

	for liveThreads > 0 {
		// ---- Commit: each context retires up to Width ready instructions.
		for ti, t := range threads {
			if t.done {
				continue
			}
			for c := 0; c < core.Width && t.count > 0; c++ {
				in := t.robAt(t.head)
				if in.done > cycle {
					break
				}
				t.head++
				t.count--
				if shared {
					sharedCount--
				}
				t.retired++
				if t.retired == cfg.Warmup {
					t.startCycle = cycle
				}
				if t.retired > cfg.Warmup {
					t.measured++
				}
				if t.retired >= cfg.Instructions {
					t.endCycle = cycle
					t.done = true
					liveThreads--
					// Release the thread's remaining window so co-runners
					// can use it (dynamic SMT sharing).
					if shared {
						sharedCount -= t.count
					}
					t.count = 0
					_ = ti
					break
				}
			}
		}

		// ---- Dispatch: the front-end hands out Width slots per cycle.
		// SMT time-shares one front-end; a multicore gives every core its
		// own Width slots.
		for i := range order {
			order[i] = i
		}
		if shared && fetchPol == uarch.ICOUNT {
			// Fewest in-flight instructions first.
			for a := 1; a < n; a++ {
				for b := a; b > 0 && threads[order[b]].count < threads[order[b-1]].count; b-- {
					order[b], order[b-1] = order[b-1], order[b]
				}
			}
		} else if shared {
			// Round-robin rotation.
			rot := int(cycle) % n
			for i := range order {
				order[i] = (i + rot) % n
			}
		}
		slots := core.Width // shared pool for SMT
		for _, ti := range order {
			t := threads[ti]
			if t.done || t.stallUntil > cycle {
				continue
			}
			budget := core.Width
			if shared {
				budget = slots
			}
			for budget > 0 {
				if t.count >= robCap || (shared && robPol == uarch.DynamicROB && sharedCount >= core.ROBSize) {
					break
				}
				in := t.gen.Next()
				ready := cycle
				if in.DepDist > 0 && int(in.DepDist) <= t.count {
					dep := t.robAt(t.tail - int(in.DepDist))
					if dep.done > ready {
						ready = dep.done
					}
				}
				var lat int64
				switch in.Kind {
				case trace.Load:
					lat = memAccess(ti, in.Addr, ready)
				case trace.Store:
					// Ideal store buffer: retire-time visibility, but the
					// cache is still warmed for subsequent accesses.
					memAccess(ti, in.Addr, ready)
					lat = 1
				default:
					lat = 1
				}
				st := t.robAt(t.tail)
				st.done = ready + lat
				st.branch = in.Kind == trace.Branch
				st.misp = in.Mispredict
				t.tail++
				t.count++
				t.fetched++
				if shared {
					sharedCount++
					slots--
				}
				budget--
				if st.branch && st.misp {
					// Fetch stalls until the branch resolves, plus the
					// front-end refill penalty.
					t.stallUntil = st.done + int64(core.BranchPenalty)
					break
				}
			}
			if shared && slots == 0 {
				break
			}
		}
		cycle++
		if cycle > 1<<33 {
			return nil, fmt.Errorf("cyclesim: runaway simulation (deadlock?)")
		}
	}

	res := &Result{Cycles: cycle}
	res.IPC = make([]float64, n)
	for i, t := range threads {
		span := t.endCycle - t.startCycle
		if span <= 0 {
			span = 1
		}
		res.IPC[i] = float64(t.measured) / float64(span)
	}
	var l1h, l1m int64
	for _, c := range l1s {
		l1h += c.hits
		l1m += c.misses
	}
	if l1h+l1m > 0 {
		res.L1MissRate = float64(l1m) / float64(l1h+l1m)
	}
	res.LLCMissRate = llc.missRate()
	return res, nil
}

// Model adapts the cycle simulator to perfdb.Model so full performance
// tables can be built from it (slow: minutes rather than seconds).
type Model struct {
	Cfg Config
}

// Name implements perfdb.Model.
func (m Model) Name() string {
	if m.Cfg.SMT != nil {
		return "cyclesim/" + m.Cfg.SMT.String()
	}
	return "cyclesim/" + m.Cfg.Multicore.String()
}

// Contexts implements perfdb.Model.
func (m Model) Contexts() int {
	if m.Cfg.SMT != nil {
		return m.Cfg.SMT.Threads
	}
	return m.Cfg.Multicore.Cores
}

// SlotIPC implements perfdb.Model.
func (m Model) SlotIPC(jobs []*program.Profile) []float64 {
	res, err := Run(m.Cfg, jobs)
	if err != nil {
		panic(err)
	}
	return res.IPC
}
