// Package runner is the repo's single parallel-sweep engine. Every
// embarrassingly parallel fan-out — the perfdb co-schedule table fill, the
// Figure 1-3 suite sweeps, the Section VI event-simulation sweeps — runs
// through it instead of hand-rolling goroutines.
//
// The engine makes three guarantees the ad-hoc fan-outs did not all share:
//
//   - Determinism. Results are collected into an index-ordered slice and
//     reductions fold in index order, so the outcome is bit-identical to
//     the sequential path regardless of Parallelism or GOMAXPROCS (floats
//     are added in the same order every time).
//   - Deterministic first-error propagation. When several items fail, the
//     error of the lowest index is returned — the same error a sequential
//     loop would have hit first — and remaining work is cancelled.
//   - Bounded concurrency with cancellation. At most Parallelism items run
//     at once; context cancellation (or the first error) stops the sweep
//     promptly without leaking goroutines.
//
// Hooks provide per-sweep progress and timing without the call sites
// growing their own instrumentation.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Hooks observe a sweep. All callbacks are optional; the engine serialises
// calls, so implementations need not be safe for concurrent use.
type Hooks struct {
	// Start fires once before the first item, with the item count.
	Start func(total int)
	// Item fires after each item completes, with its index and duration.
	Item func(index int, d time.Duration)
	// Done fires once after the sweep, with the item count and wall time.
	Done func(total int, elapsed time.Duration)
}

// Config parameterises a sweep.
type Config struct {
	// Parallelism bounds the number of concurrently running items.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Parallelism int
	// Hooks observe progress; the zero value observes nothing.
	Hooks Hooks
}

// workers returns the effective pool size for n items.
func (c Config) workers(n int) int {
	p := c.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Map runs fn(ctx, i) for every i in [0, n) with bounded parallelism and
// returns the results in index order. Item i's result lands in slot i, so
// output is independent of scheduling. On failure the lowest-index error
// is returned (with a nil slice) and outstanding items are cancelled;
// cancellation errors recorded by items that were themselves cancelled as
// a consequence rank below the causing failure. If the context is
// cancelled externally, ctx's error is returned unless an item error
// precedes it.
func Map[T any](ctx context.Context, c Config, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	results := make([]T, n)
	errs := make([]error, n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	var hookMu sync.Mutex
	if c.Hooks.Start != nil {
		c.Hooks.Start(n)
	}

	// Workers pull the next index from a shared cursor; a mutex-guarded
	// int keeps the engine free of per-item channel traffic.
	var (
		cursorMu sync.Mutex
		cursor   int
	)
	next := func() int {
		cursorMu.Lock()
		defer cursorMu.Unlock()
		if cursor >= n {
			return -1
		}
		i := cursor
		cursor++
		return i
	}

	var wg sync.WaitGroup
	for w := 0; w < c.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := next()
				if i < 0 {
					return
				}
				itemStart := time.Now()
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					cancel() // stop handing out new items
					return
				}
				results[i] = v
				if c.Hooks.Item != nil {
					hookMu.Lock()
					c.Hooks.Item(i, time.Since(itemStart))
					hookMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Lowest index wins, deterministically. Prefer a real failure over a
	// bare cancellation: when an item's error cancels the sweep, nested
	// sweeps in other in-flight items observe the cancelled context and
	// record context.Canceled at possibly lower indices — those are
	// victims, not causes.
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return nil, err
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.Hooks.Done != nil {
		c.Hooks.Done(n, time.Since(start))
	}
	return results, nil
}

// ForEach is Map without results: it runs fn(ctx, i) for every i in
// [0, n) with the same determinism, cancellation and error guarantees.
// Callers that fill pre-allocated index-addressed slices (slot i written
// only by item i) remain deterministic by construction.
func ForEach(ctx context.Context, c Config, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, c, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Reduce maps every index through fn and folds the results into acc in
// strict index order. Because the fold is sequential and ordered, the
// reduction is bit-identical to a sequential loop even for
// non-associative operations such as floating-point accumulation.
func Reduce[A, T any](ctx context.Context, c Config, n int, acc A, fn func(ctx context.Context, i int) (T, error), fold func(acc A, i int, v T) A) (A, error) {
	results, err := Map(ctx, c, n, fn)
	if err != nil {
		return acc, err
	}
	for i, v := range results {
		acc = fold(acc, i, v)
	}
	return acc, nil
}
