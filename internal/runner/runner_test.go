package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResults(t *testing.T) {
	for _, p := range []int{1, 2, 8, 64} {
		got, err := Map(context.Background(), Config{Parallelism: p}, 100,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("p=%d: result[%d] = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), Config{}, 0,
		func(_ context.Context, i int) (int, error) { return 0, errors.New("must not run") })
	if err != nil || got != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", got, err)
	}
}

func TestMapBoundsParallelism(t *testing.T) {
	const p = 3
	var cur, peak atomic.Int32
	_, err := Map(context.Background(), Config{Parallelism: p}, 50,
		func(_ context.Context, i int) (int, error) {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > p {
		t.Fatalf("observed %d concurrent items, bound is %d", got, p)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Higher indices fail fast, a low index fails slow: the low-index
	// error must still win.
	errLow := errors.New("low")
	for run := 0; run < 10; run++ {
		_, err := Map(context.Background(), Config{Parallelism: 8}, 8,
			func(_ context.Context, i int) (int, error) {
				if i == 2 {
					time.Sleep(5 * time.Millisecond)
					return 0, errLow
				}
				if i >= 4 {
					return 0, fmt.Errorf("high %d", i)
				}
				return i, nil
			})
		if !errors.Is(err, errLow) {
			t.Fatalf("run %d: got %v, want lowest-index error", run, err)
		}
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, Config{Parallelism: 2}, 1000,
			func(ctx context.Context, i int) (int, error) {
				started.Add(1)
				select {
				case <-ctx.Done():
				case <-time.After(2 * time.Millisecond):
				}
				return i, nil
			})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	<-done
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the sweep (%d items ran)", n)
	}
}

func TestErrorCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	_, err := Map(context.Background(), Config{Parallelism: 2}, 1000,
		func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, boom
			}
			time.Sleep(time.Millisecond)
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("first error did not cancel the sweep (%d items ran)", n)
	}
}

func TestMapRealErrorOutranksCancellationVictim(t *testing.T) {
	// Item 2 fails; item 0, still in flight, observes the resulting
	// cancellation (as a nested sweep would) and records ctx.Err() at a
	// lower index. The cause must win over the victim.
	boom := errors.New("boom")
	for run := 0; run < 10; run++ {
		_, err := Map(context.Background(), Config{Parallelism: 4}, 4,
			func(ctx context.Context, i int) (int, error) {
				if i == 2 {
					time.Sleep(2 * time.Millisecond)
					return 0, boom
				}
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(20 * time.Millisecond):
					return i, nil
				}
			})
		if !errors.Is(err, boom) {
			t.Fatalf("run %d: got %v, want the causing error", run, err)
		}
	}
}

func TestForEachIndexAddressedWrites(t *testing.T) {
	out := make([]int, 200)
	if err := ForEach(context.Background(), Config{Parallelism: 16}, len(out),
		func(_ context.Context, i int) error {
			out[i] = i + 1
			return nil
		}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestReduceFoldsInIndexOrder(t *testing.T) {
	// A non-commutative fold exposes any ordering violation.
	got, err := Reduce(context.Background(), Config{Parallelism: 8}, 6, "",
		func(_ context.Context, i int) (string, error) { return fmt.Sprintf("%d", i), nil },
		func(acc string, _ int, v string) string { return acc + v })
	if err != nil {
		t.Fatal(err)
	}
	if got != "012345" {
		t.Fatalf("got %q, want %q", got, "012345")
	}
}

func TestReduceDeterministicFloatSum(t *testing.T) {
	// Bit-identical float accumulation across parallelism levels.
	sum := func(p int) float64 {
		s, err := Reduce(context.Background(), Config{Parallelism: p}, 10_000, 0.0,
			func(_ context.Context, i int) (float64, error) { return 1.0 / float64(i+3), nil },
			func(acc float64, _ int, v float64) float64 { return acc + v })
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := sum(1)
	for _, p := range []int{2, 4, 8, 32} {
		if got := sum(p); got != ref {
			t.Fatalf("p=%d: sum %v != sequential %v", p, got, ref)
		}
	}
}

func TestHooks(t *testing.T) {
	var mu sync.Mutex
	var startTotal, items, doneTotal int
	cfg := Config{
		Parallelism: 4,
		Hooks: Hooks{
			Start: func(total int) { startTotal = total },
			Item: func(index int, d time.Duration) {
				mu.Lock()
				items++
				mu.Unlock()
			},
			Done: func(total int, elapsed time.Duration) { doneTotal = total },
		},
	}
	if err := ForEach(context.Background(), cfg, 37, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if startTotal != 37 || items != 37 || doneTotal != 37 {
		t.Fatalf("hooks saw start=%d items=%d done=%d, want 37 each", startTotal, items, doneTotal)
	}
}
