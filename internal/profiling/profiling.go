// Package profiling wires the standard runtime/pprof file profiles into
// the CLIs: one call at startup, one deferred stop. It exists so
// cmd/symbiosim and cmd/farmsim share the exact flag semantics (and so
// the smoke tests can pin that a profile file really appears).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (empty = disabled). The
// returned stop function ends the CPU profile and, when memPath is
// non-empty, writes a heap profile there after a final GC so the
// numbers reflect live memory, not collection timing. stop is safe to
// call exactly once; with both paths empty it is a no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			runtime.GC() // materialise final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("profiling: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
