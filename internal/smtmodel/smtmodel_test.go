package smtmodel

import (
	"testing"

	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
)

func prof(t *testing.T, id string) *program.Profile {
	t.Helper()
	p, _, ok := program.ByID(id)
	if !ok {
		t.Fatalf("unknown benchmark %s", id)
	}
	return &p
}

func TestSoloMatchesSingleThread(t *testing.T) {
	m := uarch.DefaultSMT()
	for _, p := range program.Suite() {
		p := p
		res := Rates(m, []*program.Profile{&p})
		if len(res.IPC) != 1 || res.IPC[0] <= 0 {
			t.Fatalf("%s: invalid solo result %+v", p.ID(), res)
		}
		if res.IPC[0] > float64(m.Core.Width) {
			t.Errorf("%s: solo IPC %v exceeds width", p.ID(), res.IPC[0])
		}
	}
}

func TestSymmetry(t *testing.T) {
	m := uarch.DefaultSMT()
	a := prof(t, "hmmer.nph3")
	b := prof(t, "mcf.ref")
	r1 := Rates(m, []*program.Profile{a, b, a, b})
	r2 := Rates(m, []*program.Profile{b, a, b, a})
	// The damped fixed point converges to well below 1e-5 relative error;
	// permutations may differ by that convergence noise.
	if diff := r1.IPC[0]/r2.IPC[1] - 1; diff > 1e-5 || diff < -1e-5 {
		t.Errorf("permuting threads changed rates: %v vs %v", r1.IPC, r2.IPC)
	}
	// Same-type threads must converge to the same rate.
	if diff := r1.IPC[0]/r1.IPC[2] - 1; diff > 1e-5 || diff < -1e-5 {
		t.Errorf("same-type threads diverge: %v", r1.IPC)
	}
}

func TestSharingSlowsEveryoneDown(t *testing.T) {
	m := uarch.DefaultSMT()
	for _, id := range []string{"hmmer.nph3", "mcf.ref", "libquantum.ref", "gcc.g23"} {
		p := prof(t, id)
		solo := Rates(m, []*program.Profile{p}).IPC[0]
		shared := Rates(m, []*program.Profile{p, p, p, p})
		for i, x := range shared.IPC {
			if x >= solo {
				t.Errorf("%s: thread %d shared IPC %v >= solo %v", id, i, x, solo)
			}
		}
	}
}

func TestWidthBound(t *testing.T) {
	m := uarch.DefaultSMT()
	suite := program.Suite()
	threads := []*program.Profile{&suite[1], &suite[4], &suite[5], &suite[10]} // 4 high-ILP
	res := Rates(m, threads)
	var total float64
	for _, x := range res.IPC {
		total += x
	}
	if total > float64(m.Core.Width) {
		t.Errorf("aggregate IPC %v exceeds core width %d", total, m.Core.Width)
	}
}

func TestICOUNTBeatsRoundRobin(t *testing.T) {
	// ICOUNT should (weakly) beat RR in aggregate for mixed coschedules —
	// the design goal of the policy (Tullsen et al.).
	icount := uarch.DefaultSMT()
	rr := icount
	rr.Fetch = uarch.RoundRobin
	mixes := [][]string{
		{"hmmer.nph3", "mcf.ref", "libquantum.ref", "calculix.ref"},
		{"gcc.g23", "sjeng.ref", "xalancbmk.ref", "h264ref.foreman"},
		{"hmmer.nph3", "hmmer.nph3", "mcf.ref", "mcf.ref"},
	}
	for _, mix := range mixes {
		var threads []*program.Profile
		for _, id := range mix {
			threads = append(threads, prof(t, id))
		}
		var ti, tr float64
		for _, x := range Rates(icount, threads).IPC {
			ti += x
		}
		for _, x := range Rates(rr, threads).IPC {
			tr += x
		}
		if ti < tr*0.999 {
			t.Errorf("mix %v: ICOUNT total %v < RR total %v", mix, ti, tr)
		}
	}
}

func TestMemoryThreadsSufferMoreWindowPressure(t *testing.T) {
	// With dynamic ROB sharing, a blocked memory-bound thread holds more
	// window than its dispatch share alone would give it.
	m := uarch.DefaultSMT()
	threads := []*program.Profile{
		prof(t, "hmmer.nph3"), prof(t, "hmmer.nph3"),
		prof(t, "hmmer.nph3"), prof(t, "mcf.ref"),
	}
	res := Rates(m, threads)
	if res.WindowShare[3] <= res.WindowShare[0] {
		t.Errorf("mcf window %v should exceed hmmer window %v under dynamic ROB",
			res.WindowShare[3], res.WindowShare[0])
	}
}

func TestStaticROBEqualWindows(t *testing.T) {
	m := uarch.DefaultSMT()
	m.ROB = uarch.StaticROB
	threads := []*program.Profile{
		prof(t, "hmmer.nph3"), prof(t, "mcf.ref"),
		prof(t, "libquantum.ref"), prof(t, "sjeng.ref"),
	}
	res := Rates(m, threads)
	want := float64(m.Core.ROBSize) / 4
	for i, w := range res.WindowShare {
		if diff := w - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("thread %d window %v, want %v", i, w, want)
		}
	}
}

func TestCacheSharesSumToCapacity(t *testing.T) {
	m := uarch.DefaultSMT()
	threads := []*program.Profile{
		prof(t, "mcf.ref"), prof(t, "xalancbmk.ref"),
		prof(t, "libquantum.ref"), prof(t, "gcc.g23"),
	}
	res := Rates(m, threads)
	var sum float64
	for _, c := range res.CacheShareKB {
		sum += c
	}
	if diff := sum - float64(m.SharedCacheKB); diff > 1 || diff < -1 {
		t.Errorf("cache shares sum to %v, want %v", sum, m.SharedCacheKB)
	}
}

func TestStreamingJobStealsCache(t *testing.T) {
	// libquantum (streaming, huge insertion rate) should occupy more cache
	// than a tiny-footprint compute job despite not benefiting.
	m := uarch.DefaultSMT()
	threads := []*program.Profile{prof(t, "libquantum.ref"), prof(t, "hmmer.nph3")}
	res := Rates(m, threads)
	if res.CacheShareKB[0] <= res.CacheShareKB[1] {
		t.Errorf("libquantum share %v should exceed hmmer share %v",
			res.CacheShareKB[0], res.CacheShareKB[1])
	}
}

func TestBusUtilisationBounded(t *testing.T) {
	m := uarch.DefaultSMT()
	threads := []*program.Profile{
		prof(t, "libquantum.ref"), prof(t, "libquantum.ref"),
		prof(t, "libquantum.ref"), prof(t, "libquantum.ref"),
	}
	res := Rates(m, threads)
	if res.BusUtilisation < 0 || res.BusUtilisation >= 1 {
		t.Errorf("bus utilisation %v outside [0,1)", res.BusUtilisation)
	}
	if res.MemLatency < m.Core.MemLatency {
		t.Errorf("loaded latency %v below unloaded %v", res.MemLatency, m.Core.MemLatency)
	}
}

func TestMixedCoscheduleBeatsHomogeneousExtremes(t *testing.T) {
	// The central symbiosis effect (Table II): a fully heterogeneous
	// coschedule achieves higher total WIPC than homogeneous coschedules
	// of its constituents on average.
	m := uarch.DefaultSMT()
	ids := []string{"hmmer.nph3", "calculix.ref", "mcf.ref", "libquantum.ref"}
	var threads []*program.Profile
	solo := map[string]float64{}
	for _, id := range ids {
		p := prof(t, id)
		threads = append(threads, p)
		solo[id] = Rates(m, []*program.Profile{p}).IPC[0]
	}
	var mixedWIPC float64
	for i, x := range Rates(m, threads).IPC {
		mixedWIPC += x / solo[ids[i]]
	}
	var homoAvg float64
	for _, id := range ids {
		p := prof(t, id)
		res := Rates(m, []*program.Profile{p, p, p, p})
		var w float64
		for _, x := range res.IPC {
			w += x / solo[id]
		}
		homoAvg += w / float64(len(ids))
	}
	if mixedWIPC <= homoAvg {
		t.Errorf("mixed WIPC %v should exceed mean homogeneous WIPC %v", mixedWIPC, homoAvg)
	}
}

func TestPanicsOnInvalidInput(t *testing.T) {
	m := uarch.DefaultSMT()
	assertPanic(t, "no threads", func() { Rates(m, nil) })
	assertPanic(t, "too many threads", func() {
		p := prof(t, "mcf.ref")
		Rates(m, []*program.Profile{p, p, p, p, p})
	})
	assertPanic(t, "nil profile", func() { Rates(m, []*program.Profile{nil}) })
	bad := m
	bad.Threads = 0
	assertPanic(t, "invalid machine", func() { Rates(bad, []*program.Profile{prof(t, "mcf.ref")}) })
}

func assertPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
