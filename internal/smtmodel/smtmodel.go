// Package smtmodel computes per-thread execution rates for a coschedule
// running on a 4-way SMT out-of-order core, in the spirit of the
// probabilistic SMT symbiosis model of Eyerman & Eeckhout (ASPLOS 2010),
// which the paper cites as reference [10].
//
// Per thread i, the interval model (internal/interval) yields a CPI stack
// split into a dispatch-occupying part busy_i and a memory-stall part
// mem_i. The SMT front-end is modelled as a shared fetch-time budget
//
//	B = 1 + smtOverlap * (n-1)/n
//
// fetch cycles per cycle: more than 1 because multiple threads co-dispatch
// within a cycle, less than n because fetch serialises at cycle
// granularity. Two kinds of fetch demand compete for it:
//
//   - "Hard" demand busy_i * x_i: the fetch a thread needs to commit at
//     rate x_i.
//   - "Soft" demand w_i * mem_i * x_i: window-filling fetch issued while
//     the thread waits on DRAM (hunting for independent misses). It grows
//     with the thread's memory-level parallelism: a streaming job like
//     libquantum fetches almost continuously through its misses.
//
// Soft fetch overlaps readily with other threads' stalls, so it does not
// queue against itself; but it does steal cycles from hard demand — the
// dominant mechanism by which memory-bound co-runners slow down compute
// threads on real SMT hardware. The model therefore (1) taxes the budget
// with the total soft demand, then (2) shares the remainder between hard
// demands:
//
//	x_i = min( 1/(busy_i+mem_i), grant_i / busy_i ),
//	sum_i x_i * busy_i = B - softTax * sum_i w_i * mem_i * x_i.
//
// The fetch policy decides the grants. ICOUNT equalises in-flight counts,
// which in steady state means threads with small fetch demand (memory-bound
// threads that are mostly blocked) are served in full the moment they are
// ready, and the greedy threads water-fill the remainder — progressive
// filling (min-demand-first). ICOUNT also throttles the fetch of blocked
// threads, so its soft-demand tax is lower. Round-robin hands every thread
// an equal time slice and recycles unused slices only partially (a fixed
// rotation cannot perfectly reassign slots), and lets blocked threads burn
// their full slice on window-filling: equal shares, higher tax, imperfect
// recycling.
//
// Window (ROB) sharing, shared-cache occupancy and memory-bus queueing are
// mutually dependent with the rates, so the whole model iterates to a
// damped fixed point. Dynamic ROB sharing lets blocked threads hold more
// entries; static partitioning pins every thread at ROB/K entries but
// wastes capacity when demands are asymmetric (a small fragmentation
// penalty on the fetch budget).
package smtmodel

import (
	"fmt"

	"symbiosched/internal/cachemodel"
	"symbiosched/internal/interval"
	"symbiosched/internal/membus"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
)

// Model tunables. They are calibrated (see TestCalibration* in
// internal/exp) so that the suite-level statistics land in the regime the
// paper reports for its SMT configuration; the ablation benches vary them.
const (
	// smtOverlap sets the fetch-time budget B = 1 + smtOverlap*(n-1)/n:
	// how much front-end concurrency SMT extracts beyond a single thread.
	smtOverlap = 1.6
	// softTaxICOUNT and softTaxRR convert aggregate soft (window-filling)
	// fetch demand into lost hard fetch budget. ICOUNT was designed to
	// throttle exactly this fetch (blocked threads have high in-flight
	// counts and lose priority), so its tax is lower.
	softTaxICOUNT = 0.35
	softTaxRR     = 0.6
	// rrRecycle is the fraction of an unused round-robin fetch slice that
	// other threads can actually reclaim.
	rrRecycle = 0.6
	// stallFetchBase/stallFetchMLP set w_i, the fraction of a thread's
	// memory-stall time during which it still occupies fetch:
	// w = base + mlpFactor * (1 - 1/MLP). High-MLP threads fetch almost
	// continuously through their stalls.
	stallFetchBase = 0.20
	stallFetchMLP  = 0.7
	// staticStallFetchScale shrinks w under static ROB partitioning: a
	// fixed partition fills sooner, so a blocked thread stops fetching
	// earlier.
	staticStallFetchScale = 0.7
	// staticFragPenalty is the fetch-budget fraction lost to partition
	// fragmentation under static ROB partitioning.
	staticFragPenalty = 0.97
	// robStallHold is how much extra ROB occupancy a blocked thread holds
	// per unit of stall ratio under dynamic ROB sharing.
	robStallHold = 0.8
	// resourceContention inflates a thread's busy CPI per unit of
	// co-runner dispatch utilisation (shared issue queues, functional
	// units and L1 ports).
	resourceContention = 0.10
	// minWindow is the smallest effective per-thread window; a thread
	// always owns a few ROB entries.
	minWindow = 24.0
	// minHardBudget keeps the hard-demand budget positive even under
	// extreme soft pressure.
	minHardBudget = 0.3
	// iterations and damping control the outer fixed point.
	iterations = 50
	damping    = 0.55
)

// Result holds the converged per-thread operating point of a coschedule.
type Result struct {
	// IPC is each thread's instructions per cycle.
	IPC []float64
	// FetchShare is each thread's hard fetch-time consumption x_i*busy_i.
	FetchShare []float64
	// WindowShare is each thread's effective ROB share in instructions.
	WindowShare []float64
	// CacheShareKB is each thread's shared-cache occupancy in KB.
	CacheShareKB []float64
	// MemLatency is the converged loaded DRAM latency in cycles.
	MemLatency float64
	// BusUtilisation is the converged memory-bus utilisation in [0, 1).
	BusUtilisation float64
}

// Rates returns the converged Result for the given threads (1 to
// machine.Threads profiles) on the SMT machine.
func Rates(m uarch.SMTMachine, threads []*program.Profile) Result {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("smtmodel: invalid machine: %v", err))
	}
	n := len(threads)
	if n == 0 || n > m.Threads {
		panic(fmt.Sprintf("smtmodel: %d threads on a %d-context machine", n, m.Threads))
	}
	for _, p := range threads {
		if p == nil {
			panic("smtmodel: nil profile")
		}
	}

	bus := membus.New(m.Bus.ServiceCycles)
	totalCache := float64(m.SharedCacheKB)
	rob := float64(m.Core.ROBSize)

	// Fetch-time budget.
	budget := 1 + smtOverlap*float64(n-1)/float64(n)
	if m.ROB == uarch.StaticROB {
		budget *= staticFragPenalty
	}

	// Fixed-point state.
	window := make([]float64, n)
	cache := make([]float64, n)
	ipc := make([]float64, n)
	busy := make([]float64, n)
	mem := make([]float64, n)
	stallFetch := make([]float64, n)
	memLat := m.Core.MemLatency
	for i := range window {
		window[i] = rob / float64(n)
		cache[i] = totalCache / float64(n)
	}
	// Initial rate guess: equal share of budget over solo busy CPIs.
	for i, p := range threads {
		st := interval.Evaluate(p, m.Core, interval.Params{
			WindowSize: window[i], CacheKB: cache[i], MemLatency: memLat,
		})
		ipc[i] = st.IPC() / float64(n)
	}

	stacks := make([]interval.Stack, n)
	for it := 0; it < iterations; it++ {
		// 1. Per-thread CPI stacks at the current resource shares.
		for i, p := range threads {
			stacks[i] = interval.Evaluate(p, m.Core, interval.Params{
				WindowSize: window[i],
				CacheKB:    cache[i],
				MemLatency: memLat,
			})
		}
		// 2. Busy CPI inflated by co-runner resource contention.
		for i := range threads {
			others := 0.0
			for j := range threads {
				if j != i {
					others += ipc[j] * busyOr(stacks[j].BusyCPI(), busy[j])
				}
			}
			busy[i] = stacks[i].BusyCPI() * (1 + resourceContention*others)
			mem[i] = stacks[i].Mem
			w := stallFetchBase + stallFetchMLP*(1-1/threads[i].MLP(window[i]))
			if m.ROB == uarch.StaticROB {
				w *= staticStallFetchScale
			}
			stallFetch[i] = w
		}
		// 3. Front-end arbitration.
		newIPC := arbitrate(m.Fetch, budget, busy, mem, stallFetch, ipc, n)
		for i := range ipc {
			ipc[i] = damping*ipc[i] + (1-damping)*newIPC[i]
		}
		// 4. ROB shares.
		switch m.ROB {
		case uarch.StaticROB:
			for i := range window {
				window[i] = rob / float64(n)
			}
		default: // DynamicROB
			var tot float64
			weights := make([]float64, n)
			for i := range threads {
				stallRatio := mem[i] / busy[i]
				weights[i] = ipc[i] * busy[i] * (1 + robStallHold*stallRatio)
				if weights[i] < 1e-6 {
					weights[i] = 1e-6
				}
				tot += weights[i]
			}
			for i := range window {
				target := rob * weights[i] / tot
				if target < minWindow {
					target = minWindow
				}
				window[i] = damping*window[i] + (1-damping)*target
			}
		}
		// 5. Shared-cache occupancy.
		demands := make([]cachemodel.Demand, n)
		for i, p := range threads {
			demands[i] = cachemodel.Demand{Profile: p, IPC: ipc[i]}
		}
		newCache := cachemodel.Shares(demands, totalCache)
		for i := range cache {
			cache[i] = damping*cache[i] + (1-damping)*newCache[i]
		}
		// 6. Memory-bus queueing.
		var lineRate float64
		for i, p := range threads {
			lineRate += ipc[i] * p.MemMPKI(cache[i]) / 1000
		}
		memLat = damping*memLat + (1-damping)*bus.LoadedLatency(m.Core.MemLatency, lineRate)
	}

	var lineRate float64
	fetchShare := make([]float64, n)
	for i, p := range threads {
		lineRate += ipc[i] * p.MemMPKI(cache[i]) / 1000
		fetchShare[i] = ipc[i] * busy[i]
	}
	return Result{
		IPC:            ipc,
		FetchShare:     fetchShare,
		WindowShare:    window,
		CacheShareKB:   cache,
		MemLatency:     memLat,
		BusUtilisation: bus.Utilisation(lineRate),
	}
}

func busyOr(v, fallback float64) float64 {
	if fallback > 0 {
		return fallback
	}
	return v
}

// arbitrate performs the two-tier fetch allocation described in the
// package comment and returns the new per-thread IPCs.
func arbitrate(policy uarch.FetchPolicy, budget float64, busy, mem, stallFetch, curIPC []float64, n int) []float64 {
	out := make([]float64, n)
	xmax := make([]float64, n)
	for i := range xmax {
		xmax[i] = 1 / (busy[i] + mem[i])
	}
	if n == 1 {
		out[0] = xmax[0]
		return out
	}
	// Soft tax at the current operating point.
	tax := softTaxRR
	if policy == uarch.ICOUNT {
		tax = softTaxICOUNT
	}
	var soft float64
	for i := range curIPC {
		x := curIPC[i]
		if x > xmax[i] {
			x = xmax[i]
		}
		soft += x * stallFetch[i] * mem[i]
	}
	hardBudget := budget - tax*soft
	if hardBudget < minHardBudget {
		hardBudget = minHardBudget
	}
	// Per-thread hard fetch demand.
	demand := make([]float64, n)
	var totalDemand float64
	for i := range xmax {
		demand[i] = xmax[i] * busy[i]
		totalDemand += demand[i]
	}
	if totalDemand <= hardBudget {
		copy(out, xmax)
		return out
	}
	grants := make([]float64, n)
	switch policy {
	case uarch.RoundRobin:
		// Equal slices; unused slice capacity is only partially recycled.
		slice := hardBudget / float64(n)
		var leftover float64
		for i := range grants {
			g := demand[i]
			if g > slice {
				g = slice
			}
			grants[i] = g
			leftover += slice - g
		}
		// One recycling round, spread equally over unsatisfied threads.
		pool := rrRecycle * leftover
		for pool > 1e-12 {
			var unsat int
			for i := range grants {
				if grants[i] < demand[i]-1e-12 {
					unsat++
				}
			}
			if unsat == 0 {
				break
			}
			share := pool / float64(unsat)
			pool = 0
			for i := range grants {
				if grants[i] < demand[i]-1e-12 {
					g := grants[i] + share
					if g > demand[i] {
						pool += g - demand[i]
						g = demand[i]
					}
					grants[i] = g
				}
			}
		}
	default: // ICOUNT: progressive filling (water-filling), min demand first.
		waterFill(grants, demand, busy, hardBudget)
	}
	for i := range out {
		out[i] = grants[i] / busy[i]
	}
	return out
}

// waterFill allocates budget across demands by progressive filling: every
// thread's fetch time rises together (equal time rate for the greedy ones)
// and each thread stops at its own demand. This is the fluid limit of
// ICOUNT arbitration: cheap threads are always served, greedy threads end
// up with equal shares of what remains.
func waterFill(grants, demand, busy []float64, budget float64) {
	n := len(demand)
	remaining := budget
	satisfied := make([]bool, n)
	for round := 0; round < n; round++ {
		var unsat int
		for i := range demand {
			if !satisfied[i] {
				unsat++
			}
		}
		if unsat == 0 || remaining <= 1e-12 {
			break
		}
		level := remaining / float64(unsat)
		progressed := false
		for i := range demand {
			if satisfied[i] {
				continue
			}
			need := demand[i] - grants[i]
			if need <= level {
				grants[i] = demand[i]
				satisfied[i] = true
				remaining -= need
				progressed = true
			}
		}
		if !progressed {
			// No thread is satisfiable at this level: split remaining
			// budget equally among the unsatisfied and stop.
			for i := range demand {
				if !satisfied[i] {
					grants[i] += level
				}
			}
			remaining = 0
			break
		}
	}
	_ = busy
}

// SoloIPC returns the IPC of a single thread running alone on the machine
// (the reference for per-machine weighted speedups / WIPC).
func SoloIPC(m uarch.SMTMachine, p *program.Profile) float64 {
	res := Rates(m, []*program.Profile{p})
	return res.IPC[0]
}
