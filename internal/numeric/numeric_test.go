package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-12, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1.1, 1e-12, false},
		{1e12, 1e12 + 1, 1e-9, true}, // relative criterion
		{0, 1e-12, 1e-9, true},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp with lo > hi should panic")
		}
	}()
	Clamp(0, 2, 1)
}

func TestClampInt(t *testing.T) {
	if got := ClampInt(7, 1, 5); got != 5 {
		t.Errorf("ClampInt = %v", got)
	}
	if got := ClampInt(-7, 1, 5); got != 1 {
		t.Errorf("ClampInt = %v", got)
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// Summing many tiny values onto a large one: naive summation loses
	// them, Kahan keeps them.
	var k KahanSum
	k.Add(1e16)
	for i := 0; i < 10_000; i++ {
		k.Add(1.0)
	}
	want := 1e16 + 1e4
	if got := k.Value(); math.Abs(got-want) > 1 {
		t.Errorf("KahanSum = %v, want %v", got, want)
	}
}

func TestKahanSumReset(t *testing.T) {
	var k KahanSum
	k.Add(5)
	k.Reset()
	k.Add(2)
	if got := k.Value(); got != 2 {
		t.Errorf("after Reset, Value = %v, want 2", got)
	}
}

func TestSafeDiv(t *testing.T) {
	if got := SafeDiv(4, 2, -1); got != 2 {
		t.Errorf("SafeDiv(4,2) = %v", got)
	}
	if got := SafeDiv(4, 0, -1); got != -1 {
		t.Errorf("SafeDiv(4,0) = %v, want default", got)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Errorf("Lerp = %v", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Errorf("Lerp(t=0) = %v", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Errorf("Lerp(t=1) = %v", got)
	}
}

func TestMeans(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-15 {
		t.Errorf("HarmonicMean = %v", got)
	}
	if got := HarmonicMean([]float64{2, 2}); math.Abs(got-2) > 1e-15 {
		t.Errorf("HarmonicMean = %v", got)
	}
	if got := GeometricMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeometricMean = %v", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HarmonicMean(nil) = %v", got)
	}
}

// Property: harmonic <= geometric <= arithmetic mean for positive samples.
func TestMeanInequalityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x := math.Abs(x); x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		am := sum / float64(len(xs))
		gm := GeometricMean(xs)
		hm := HarmonicMean(xs)
		return hm <= gm*(1+1e-9) && gm <= am*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
