// Package numeric provides small shared numeric helpers used across the
// simulator and analysis code: tolerant floating-point comparison, clamping
// and compensated summation.
package numeric

import "math"

// Eps is the default absolute/relative tolerance used by the analysis code
// when comparing floating-point quantities that come out of the LP solver
// or the performance models.
const Eps = 1e-9

// AlmostEqual reports whether a and b are equal within tol, using a mixed
// absolute/relative criterion: |a-b| <= tol * max(1, |a|, |b|).
func AlmostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// Clamp bounds x into [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("numeric: Clamp with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt bounds x into [lo, hi]. It panics if lo > hi.
func ClampInt(x, lo, hi int) int {
	if lo > hi {
		panic("numeric: ClampInt with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// KahanSum accumulates a running sum with Neumaier's compensated summation,
// which keeps long accumulations (e.g. simulated virtual time over millions
// of events) accurate to within a few ulps.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates x into the sum.
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated sum.
func (k *KahanSum) Value() float64 { return k.sum + k.c }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// SafeDiv returns a/b, or def when |b| is (almost) zero. It is used where a
// rate or ratio may legitimately degenerate (e.g. empty-system fractions).
func SafeDiv(a, b, def float64) float64 {
	if math.Abs(b) < 1e-300 {
		return def
	}
	return a / b
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// HarmonicMean returns the harmonic mean of xs. All entries must be > 0;
// it returns 0 for an empty slice.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv KahanSum
	for _, x := range xs {
		if x <= 0 {
			panic("numeric: HarmonicMean requires positive values")
		}
		inv.Add(1 / x)
	}
	return float64(len(xs)) / inv.Value()
}

// GeometricMean returns the geometric mean of xs (all > 0), 0 when empty.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var lg KahanSum
	for _, x := range xs {
		if x <= 0 {
			panic("numeric: GeometricMean requires positive values")
		}
		lg.Add(math.Log(x))
	}
	return math.Exp(lg.Value() / float64(len(xs)))
}
