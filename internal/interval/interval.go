// Package interval implements a mechanistic interval performance model for
// a single thread on an out-of-order core, in the style of the
// instruction-window-centric core model the paper uses inside Sniper
// (Carlson et al., "An evaluation of high-level mechanistic core models",
// TACO 2014).
//
// The model decomposes execution time into a CPI stack:
//
//	CPI = CPI_base + CPI_branch + CPI_cache + CPI_mem
//
// where CPI_base is the ILP/width-limited dispatch component, CPI_branch
// the front-end refill penalty of mispredicted branches, CPI_cache the
// partially-overlapped latency of last-level-cache hits, and CPI_mem the
// MLP-compensated DRAM access penalty. The SMT and multicore models build
// on these per-thread stacks.
package interval

import (
	"fmt"

	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
)

// Stack is a CPI stack: cycles per instruction attributed to each
// mechanism. Base includes the width-limited dispatch component; Branch
// the misprediction refills; Cache the exposed LLC hit latency; Mem the
// exposed DRAM latency after MLP overlap.
type Stack struct {
	Base   float64
	Branch float64
	Cache  float64
	Mem    float64
}

// CPI returns the total cycles per instruction of the stack.
func (s Stack) CPI() float64 { return s.Base + s.Branch + s.Cache + s.Mem }

// IPC returns the instructions per cycle of the stack.
func (s Stack) IPC() float64 {
	c := s.CPI()
	if c <= 0 {
		return 0
	}
	return 1 / c
}

// BusyCPI returns the dispatch-occupying component of the stack: the
// cycles during which the thread actually consumes front-end/backend
// bandwidth (base + branch + cache). During Mem cycles the thread is
// blocked on DRAM and consumes no dispatch slots — the quantity that
// matters for SMT front-end sharing.
func (s Stack) BusyCPI() float64 { return s.Base + s.Branch + s.Cache }

// Params are the per-evaluation inputs of the model beyond the static core
// configuration: the window and cache capacity actually available to the
// thread (which the SMT and multicore sharing models vary), and the loaded
// memory latency including bus queueing.
type Params struct {
	// WindowSize is the effective ROB share in instructions.
	WindowSize float64
	// CacheKB is the effective cache capacity (beyond L1) available to
	// the thread, in kilobytes.
	CacheKB float64
	// MemLatency is the loaded DRAM latency in cycles (unloaded latency
	// plus bus queueing delay).
	MemLatency float64
	// CacheHitOverlap is the factor by which LLC hit latency is hidden by
	// out-of-order execution (>= 1); 2 means half the hit latency is
	// exposed. Defaults to 2 when zero.
	CacheHitOverlap float64
}

// Evaluate computes the CPI stack of a thread with profile p on core c
// under the given parameters.
func Evaluate(p *program.Profile, c uarch.Core, par Params) Stack {
	if par.WindowSize <= 0 {
		panic(fmt.Sprintf("interval: non-positive window %v", par.WindowSize))
	}
	if par.MemLatency <= 0 {
		panic(fmt.Sprintf("interval: non-positive memory latency %v", par.MemLatency))
	}
	overlap := par.CacheHitOverlap
	if overlap == 0 {
		overlap = 2
	}
	if overlap < 1 {
		overlap = 1
	}

	// Base: dispatch limited by both the core width and the ILP the
	// window can expose.
	ipcBase := p.BaseIPC(par.WindowSize)
	if w := float64(c.Width); ipcBase > w {
		ipcBase = w
	}
	base := 1 / ipcBase

	// Branch: each misprediction costs the front-end refill penalty plus
	// the (window-dependent) pipeline drain, approximated by the refill
	// penalty alone as in classic interval analysis.
	branch := p.BranchMPKI / 1000 * c.BranchPenalty

	// Cache: LLC hits expose a fraction of the hit latency.
	memMPKI := p.MemMPKI(par.CacheKB)
	hitPKI := p.CacheAPKI - memMPKI
	if hitPKI < 0 {
		hitPKI = 0
	}
	cache := hitPKI / 1000 * c.LLCHitLatency / overlap

	// Mem: DRAM misses overlap up to MLP(window) ways.
	mem := memMPKI / 1000 * par.MemLatency / p.MLP(par.WindowSize)

	return Stack{Base: base, Branch: branch, Cache: cache, Mem: mem}
}

// SoloParams returns the Params describing a thread running alone on a
// machine with the given total cache capacity: full window, full cache,
// unloaded memory latency.
func SoloParams(c uarch.Core, cacheKB int) Params {
	return Params{
		WindowSize: float64(c.ROBSize),
		CacheKB:    float64(cacheKB),
		MemLatency: c.MemLatency,
	}
}

// MissRate returns the memory misses per cycle implied by a stack for a
// thread with profile p under params par — the quantity the bus model
// integrates over threads. It equals IPC * MemMPKI/1000.
func MissRate(p *program.Profile, st Stack, par Params) float64 {
	return st.IPC() * p.MemMPKI(par.CacheKB) / 1000
}
