package interval

import (
	"testing"

	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
)

func params(cacheKB float64) Params {
	c := uarch.DefaultCore()
	return Params{WindowSize: float64(c.ROBSize), CacheKB: cacheKB, MemLatency: c.MemLatency}
}

func TestStackComponentsNonNegative(t *testing.T) {
	core := uarch.DefaultCore()
	for _, p := range program.Suite() {
		p := p
		st := Evaluate(&p, core, params(1024))
		if st.Base <= 0 || st.Branch < 0 || st.Cache < 0 || st.Mem < 0 {
			t.Errorf("%s: invalid stack %+v", p.ID(), st)
		}
		if st.IPC() <= 0 || st.IPC() > float64(core.Width) {
			t.Errorf("%s: IPC %v out of range", p.ID(), st.IPC())
		}
	}
}

func TestIPCIsReciprocalOfCPI(t *testing.T) {
	core := uarch.DefaultCore()
	p := program.Suite()[7] // mcf
	st := Evaluate(&p, core, params(512))
	if diff := st.IPC()*st.CPI() - 1; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("IPC * CPI = %v, want 1", st.IPC()*st.CPI())
	}
	if diff := st.BusyCPI() + st.Mem - st.CPI(); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("BusyCPI + Mem != CPI")
	}
}

func TestMoreCacheNeverHurts(t *testing.T) {
	core := uarch.DefaultCore()
	for _, p := range program.Suite() {
		p := p
		prev := Evaluate(&p, core, params(64)).IPC()
		for c := 128.0; c <= 16384; c *= 2 {
			cur := Evaluate(&p, core, params(c)).IPC()
			if cur < prev-1e-12 {
				t.Errorf("%s: IPC drops with more cache at %v KB", p.ID(), c)
			}
			prev = cur
		}
	}
}

func TestBiggerWindowNeverHurts(t *testing.T) {
	core := uarch.DefaultCore()
	for _, p := range program.Suite() {
		p := p
		par := params(1024)
		par.WindowSize = 16
		prev := Evaluate(&p, core, par).IPC()
		for w := 32.0; w <= 512; w *= 2 {
			par.WindowSize = w
			cur := Evaluate(&p, core, par).IPC()
			if cur < prev-1e-12 {
				t.Errorf("%s: IPC drops with bigger window at %v", p.ID(), w)
			}
			prev = cur
		}
	}
}

func TestHigherMemLatencyHurtsMemoryBound(t *testing.T) {
	core := uarch.DefaultCore()
	mcf, _, _ := program.ByID("mcf.ref")
	par := params(512)
	base := Evaluate(&mcf, core, par).IPC()
	par.MemLatency = 2 * core.MemLatency
	loaded := Evaluate(&mcf, core, par).IPC()
	if loaded >= base {
		t.Errorf("doubling memory latency should slow mcf: %v vs %v", loaded, base)
	}
}

func TestMemoryBoundVsComputeBoundStacks(t *testing.T) {
	core := uarch.DefaultCore()
	mcf, _, _ := program.ByID("mcf.ref")
	hmmer, _, _ := program.ByID("hmmer.nph3")
	mcfStack := Evaluate(&mcf, core, params(512))
	hmmerStack := Evaluate(&hmmer, core, params(512))
	if mcfStack.Mem <= hmmerStack.Mem {
		t.Errorf("mcf memory CPI %v should exceed hmmer's %v", mcfStack.Mem, hmmerStack.Mem)
	}
	if mcfStack.Mem < mcfStack.Base {
		t.Errorf("mcf should be memory-dominated: %+v", mcfStack)
	}
	if hmmerStack.Mem > hmmerStack.Base {
		t.Errorf("hmmer should be compute-dominated: %+v", hmmerStack)
	}
}

func TestSoloParams(t *testing.T) {
	core := uarch.DefaultCore()
	par := SoloParams(core, 2048)
	if par.WindowSize != float64(core.ROBSize) || par.CacheKB != 2048 || par.MemLatency != core.MemLatency {
		t.Errorf("SoloParams = %+v", par)
	}
}

func TestMissRate(t *testing.T) {
	core := uarch.DefaultCore()
	mcf, _, _ := program.ByID("mcf.ref")
	par := params(512)
	st := Evaluate(&mcf, core, par)
	mr := MissRate(&mcf, st, par)
	want := st.IPC() * mcf.MemMPKI(512) / 1000
	if diff := mr - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("MissRate = %v, want %v", mr, want)
	}
}

func TestEvaluatePanics(t *testing.T) {
	core := uarch.DefaultCore()
	p := program.Suite()[0]
	for name, par := range map[string]Params{
		"zero window":  {WindowSize: 0, CacheKB: 100, MemLatency: 200},
		"zero latency": {WindowSize: 100, CacheKB: 100, MemLatency: 0},
	} {
		par := par
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Evaluate(&p, core, par)
		}()
	}
}
