// Package program defines the synthetic benchmark profiles that stand in
// for the paper's 12 selected SPEC CPU2006 benchmarks (Table I).
//
// The paper simulated the real benchmarks with Sniper; those binaries and
// traces are not available here, so each benchmark is replaced by a
// statistical profile — intrinsic ILP, branch-misprediction rate, cache
// miss-ratio curve, memory-level parallelism and bandwidth demand — chosen
// to match the benchmark's published characterisation and, collectively,
// to cover the low- to high-interference space approximately uniformly,
// which is the property the paper selected its 12 benchmarks for. The
// mechanistic models in internal/interval, internal/smtmodel and
// internal/multicore consume these profiles to produce per-coschedule
// execution rates, which is the only input the study's analysis needs.
package program

import (
	"fmt"
	"math"
)

// Profile is a statistical characterisation of one benchmark (one "job
// type" in the paper's terminology).
type Profile struct {
	// Name and Input identify the benchmark as in Table I of the paper
	// (e.g. "gcc" with inputs "cp-decl.i" and "g23.i" are distinct types).
	Name  string
	Input string

	// IPCInf is the ILP-limited steady-state IPC with an unbounded
	// instruction window and a perfect memory hierarchy.
	IPCInf float64
	// WindowHalf is the window size (instructions) at which half of
	// IPCInf is reached: baseIPC(W) = IPCInf * W / (W + WindowHalf).
	WindowHalf float64

	// BranchMPKI is the number of mispredicted branches per 1000
	// instructions.
	BranchMPKI float64

	// CacheAPKI is the number of accesses per 1000 instructions that miss
	// the (private, per-thread) L1 and therefore reach the cache capacity
	// modelled by the miss-ratio curve below.
	CacheAPKI float64

	// MemMPKIMax and MemMPKIMin are the endpoints of the capacity
	// miss-ratio curve: misses-to-memory per 1000 instructions with (near)
	// zero cache and with unbounded cache, respectively.
	MemMPKIMax float64
	MemMPKIMin float64
	// CacheHalfKB is the cache capacity (KB) at which the curve sits
	// halfway between its endpoints, and CurveGamma its steepness:
	// MPKI(c) = Min + (Max-Min) / (1 + (c/CacheHalfKB)^CurveGamma).
	CacheHalfKB float64
	CurveGamma  float64

	// MLPMax is the maximum memory-level parallelism (overlapping
	// outstanding misses) the benchmark can expose with a full-size
	// window.
	MLPMax float64
}

// ID returns a unique benchmark identifier, e.g. "gcc.g23".
func (p *Profile) ID() string {
	if p.Input == "" {
		return p.Name
	}
	return p.Name + "." + p.Input
}

// MemMPKI evaluates the capacity miss-ratio curve at cacheKB kilobytes of
// available cache beyond the L1. The result is clamped to [MemMPKIMin,
// min(MemMPKIMax, CacheAPKI)].
func (p *Profile) MemMPKI(cacheKB float64) float64 {
	if cacheKB < 0 {
		cacheKB = 0
	}
	var v float64
	if cacheKB == 0 {
		v = p.MemMPKIMax
	} else {
		v = p.MemMPKIMin + (p.MemMPKIMax-p.MemMPKIMin)/(1+math.Pow(cacheKB/p.CacheHalfKB, p.CurveGamma))
	}
	if max := p.CacheAPKI; v > max {
		v = max
	}
	if v < p.MemMPKIMin {
		v = p.MemMPKIMin
	}
	return v
}

// BaseIPC returns the ILP-limited IPC for a window of w instructions,
// before any width cap (the interval model applies the dispatch-width cap).
func (p *Profile) BaseIPC(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return p.IPCInf * w / (w + p.WindowHalf)
}

// MLP returns the effective memory-level parallelism for a window of w
// instructions: MLP grows with the window because more independent misses
// fit in flight, saturating at MLPMax for a reference 192-entry window.
func (p *Profile) MLP(w float64) float64 {
	const refWindow = 128
	if w <= 0 {
		return 1
	}
	f := w / refWindow
	if f > 1 {
		f = 1
	}
	m := 1 + (p.MLPMax-1)*f
	if m < 1 {
		m = 1
	}
	return m
}

// CacheSensitivity reports how much the benchmark's memory miss rate
// responds to cache capacity between share KB and full KB: a value in
// [0, 1] where 0 means fully insensitive (streaming or cache-resident).
func (p *Profile) CacheSensitivity(shareKB, fullKB float64) float64 {
	hi := p.MemMPKI(shareKB)
	lo := p.MemMPKI(fullKB)
	if hi <= 0 {
		return 0
	}
	return (hi - lo) / hi
}

// Validate checks the profile for structurally impossible parameters.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("program: profile with empty name")
	case p.IPCInf <= 0 || p.IPCInf > 8:
		return fmt.Errorf("program: %s: IPCInf %v out of range", p.ID(), p.IPCInf)
	case p.WindowHalf <= 0:
		return fmt.Errorf("program: %s: WindowHalf %v out of range", p.ID(), p.WindowHalf)
	case p.BranchMPKI < 0 || p.BranchMPKI > 50:
		return fmt.Errorf("program: %s: BranchMPKI %v out of range", p.ID(), p.BranchMPKI)
	case p.CacheAPKI < 0 || p.CacheAPKI > 200:
		return fmt.Errorf("program: %s: CacheAPKI %v out of range", p.ID(), p.CacheAPKI)
	case p.MemMPKIMin < 0 || p.MemMPKIMax < p.MemMPKIMin:
		return fmt.Errorf("program: %s: mem MPKI range [%v, %v] invalid", p.ID(), p.MemMPKIMin, p.MemMPKIMax)
	case p.MemMPKIMax > p.CacheAPKI+1e-9:
		return fmt.Errorf("program: %s: MemMPKIMax %v exceeds CacheAPKI %v", p.ID(), p.MemMPKIMax, p.CacheAPKI)
	case p.CacheHalfKB <= 0 || p.CurveGamma <= 0:
		return fmt.Errorf("program: %s: miss curve params invalid", p.ID())
	case p.MLPMax < 1 || p.MLPMax > 8:
		return fmt.Errorf("program: %s: MLPMax %v out of range", p.ID(), p.MLPMax)
	}
	return nil
}
