package program

// Suite returns the 12 benchmark profiles of Table I, in the paper's
// (alphabetical) order. Indices into this slice are the global job-type
// indices used throughout the repository.
//
// The parameters are hand-calibrated against the published SPEC CPU2006
// characterisation literature so that the suite spans, approximately
// uniformly, the space from low-interference (small-footprint, high-ILP:
// hmmer, calculix, h264ref) to high-interference (memory-bound and
// bandwidth-hungry: mcf, libquantum, xalancbmk, gcc.g23) behaviour — the
// selection criterion the paper states for its 12 benchmarks.
func Suite() []Profile {
	return []Profile{
		{
			// Compression: integer, moderate ILP, mid-size working set.
			Name: "bzip2", Input: "input.program",
			IPCInf: 2.0, WindowHalf: 40,
			BranchMPKI: 4.5,
			CacheAPKI:  18, MemMPKIMax: 5.5, MemMPKIMin: 0.8,
			CacheHalfKB: 640, CurveGamma: 1.2,
			MLPMax: 2.0,
		},
		{
			// Structural FP solver: high ILP, cache-resident.
			Name: "calculix", Input: "ref",
			IPCInf: 3.2, WindowHalf: 30,
			BranchMPKI: 0.7,
			CacheAPKI:  6, MemMPKIMax: 1.2, MemMPKIMin: 0.2,
			CacheHalfKB: 512, CurveGamma: 1.2,
			MLPMax: 2.5,
		},
		{
			// Compiler, small input: branchy, moderate footprint.
			Name: "gcc", Input: "cp-decl",
			IPCInf: 1.9, WindowHalf: 45,
			BranchMPKI: 6.0,
			CacheAPKI:  22, MemMPKIMax: 7.5, MemMPKIMin: 1.0,
			CacheHalfKB: 512, CurveGamma: 1.2,
			MLPMax: 1.8,
		},
		{
			// Compiler, large input: cache-sensitive, larger footprint.
			Name: "gcc", Input: "g23",
			IPCInf: 1.7, WindowHalf: 50,
			BranchMPKI: 5.5,
			CacheAPKI:  30, MemMPKIMax: 15.0, MemMPKIMin: 2.0,
			CacheHalfKB: 896, CurveGamma: 1.25,
			MLPMax: 1.8,
		},
		{
			// Video encoder: high ILP, small working set.
			Name: "h264ref", Input: "foreman",
			IPCInf: 2.9, WindowHalf: 35,
			BranchMPKI: 1.8,
			CacheAPKI:  10, MemMPKIMax: 2.0, MemMPKIMin: 0.4,
			CacheHalfKB: 512, CurveGamma: 1.2,
			MLPMax: 2.2,
		},
		{
			// Sequence search: highest ILP in the suite, tiny footprint.
			Name: "hmmer", Input: "nph3",
			IPCInf: 3.4, WindowHalf: 25,
			BranchMPKI: 0.9,
			CacheAPKI:  8, MemMPKIMax: 1.0, MemMPKIMin: 0.1,
			CacheHalfKB: 256, CurveGamma: 1.5,
			MLPMax: 2.0,
		},
		{
			// Quantum simulation: pure streaming — a flat miss curve (the
			// working set never fits), extreme bandwidth demand, high MLP.
			Name: "libquantum", Input: "ref",
			IPCInf: 1.6, WindowHalf: 60,
			BranchMPKI: 0.3,
			CacheAPKI:  36, MemMPKIMax: 33.0, MemMPKIMin: 29.0,
			CacheHalfKB: 16384, CurveGamma: 0.8,
			MLPMax: 3.5,
		},
		{
			// Combinatorial optimisation: the memory-bound extreme, very
			// cache-sensitive with pointer-heavy access.
			Name: "mcf", Input: "ref",
			IPCInf: 1.0, WindowHalf: 80,
			BranchMPKI: 7.5,
			CacheAPKI:  70, MemMPKIMax: 46.0, MemMPKIMin: 8.0,
			CacheHalfKB: 1280, CurveGamma: 1.3,
			MLPMax: 3.0,
		},
		{
			// Interpreter: branchy, good ILP, modest footprint.
			Name: "perlbench", Input: "diffmail",
			IPCInf: 2.4, WindowHalf: 35,
			BranchMPKI: 4.0,
			CacheAPKI:  12, MemMPKIMax: 2.5, MemMPKIMin: 0.5,
			CacheHalfKB: 640, CurveGamma: 1.1,
			MLPMax: 1.8,
		},
		{
			// Chess search: highest branch-misprediction rate, small
			// working set.
			Name: "sjeng", Input: "ref",
			IPCInf: 2.1, WindowHalf: 40,
			BranchMPKI: 8.5,
			CacheAPKI:  9, MemMPKIMax: 1.5, MemMPKIMin: 0.3,
			CacheHalfKB: 384, CurveGamma: 1.2,
			MLPMax: 1.6,
		},
		{
			// Quantum chemistry FP: good ILP, moderate memory behaviour.
			Name: "tonto", Input: "ref",
			IPCInf: 2.7, WindowHalf: 35,
			BranchMPKI: 1.5,
			CacheAPKI:  9, MemMPKIMax: 2.2, MemMPKIMin: 0.5,
			CacheHalfKB: 768, CurveGamma: 1.1,
			MLPMax: 2.2,
		},
		{
			// XML transformation: pointer-chasing with low MLP, sizeable
			// cache-sensitive footprint.
			Name: "xalancbmk", Input: "ref",
			IPCInf: 1.8, WindowHalf: 55,
			BranchMPKI: 3.5,
			CacheAPKI:  28, MemMPKIMax: 17.0, MemMPKIMin: 2.0,
			CacheHalfKB: 1024, CurveGamma: 1.3,
			MLPMax: 1.4,
		},
	}
}

// SuiteSize is the number of benchmarks in the suite (Table I).
const SuiteSize = 12

// ByID returns the profile with the given ID (e.g. "gcc.g23") and its
// index in Suite(), or ok=false when absent.
func ByID(id string) (p Profile, index int, ok bool) {
	for i, prof := range Suite() {
		if prof.ID() == id {
			return prof, i, true
		}
	}
	return Profile{}, -1, false
}

// IDs returns the suite's benchmark identifiers in order.
func IDs() []string {
	suite := Suite()
	ids := make([]string, len(suite))
	for i := range suite {
		ids[i] = suite[i].ID()
	}
	return ids
}
