package program

import (
	"testing"
	"testing/quick"

	"symbiosched/internal/stats"
)

func TestSuiteSize(t *testing.T) {
	suite := Suite()
	if len(suite) != SuiteSize || SuiteSize != 12 {
		t.Fatalf("suite has %d benchmarks, want 12 (paper Table I)", len(suite))
	}
}

func TestSuiteTableIContents(t *testing.T) {
	// The paper's Table I selection, including both gcc inputs.
	wanted := []string{
		"bzip2.input.program", "calculix.ref", "gcc.cp-decl", "gcc.g23",
		"h264ref.foreman", "hmmer.nph3", "libquantum.ref", "mcf.ref",
		"perlbench.diffmail", "sjeng.ref", "tonto.ref", "xalancbmk.ref",
	}
	ids := IDs()
	for i, want := range wanted {
		if ids[i] != want {
			t.Errorf("suite[%d] = %s, want %s", i, ids[i], want)
		}
	}
}

func TestSuiteValidates(t *testing.T) {
	for _, p := range Suite() {
		p := p
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.ID(), err)
		}
	}
}

func TestByID(t *testing.T) {
	p, idx, ok := ByID("mcf.ref")
	if !ok || p.Name != "mcf" || idx != 7 {
		t.Errorf("ByID(mcf.ref) = %v, %d, %v", p.ID(), idx, ok)
	}
	if _, _, ok := ByID("nonexistent"); ok {
		t.Error("ByID should fail for unknown benchmark")
	}
}

func TestMissCurveMonotone(t *testing.T) {
	for _, p := range Suite() {
		p := p
		prev := p.MemMPKI(0)
		for c := 64.0; c <= 1<<15; c *= 2 {
			cur := p.MemMPKI(c)
			if cur > prev+1e-12 {
				t.Errorf("%s: MemMPKI not monotone at %v KB (%v -> %v)", p.ID(), c, prev, cur)
			}
			prev = cur
		}
	}
}

func TestMissCurveBounds(t *testing.T) {
	for _, p := range Suite() {
		p := p
		if got := p.MemMPKI(0); got > p.CacheAPKI+1e-9 {
			t.Errorf("%s: MPKI(0) = %v exceeds APKI %v", p.ID(), got, p.CacheAPKI)
		}
		if got := p.MemMPKI(1 << 20); got < p.MemMPKIMin-1e-9 {
			t.Errorf("%s: MPKI(inf) = %v below min %v", p.ID(), got, p.MemMPKIMin)
		}
	}
}

func TestBaseIPCSaturates(t *testing.T) {
	for _, p := range Suite() {
		p := p
		if got := p.BaseIPC(1e9); got > p.IPCInf+1e-9 {
			t.Errorf("%s: BaseIPC(inf) = %v exceeds IPCInf %v", p.ID(), got, p.IPCInf)
		}
		if got := p.BaseIPC(0); got != 0 {
			t.Errorf("%s: BaseIPC(0) = %v", p.ID(), got)
		}
		half := p.BaseIPC(p.WindowHalf)
		if diff := half - p.IPCInf/2; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: BaseIPC(WindowHalf) = %v, want IPCInf/2 = %v", p.ID(), half, p.IPCInf/2)
		}
	}
}

func TestMLPBounds(t *testing.T) {
	for _, p := range Suite() {
		p := p
		if got := p.MLP(0); got != 1 {
			t.Errorf("%s: MLP(0) = %v, want 1", p.ID(), got)
		}
		if got := p.MLP(1e9); got > p.MLPMax+1e-9 {
			t.Errorf("%s: MLP(inf) = %v exceeds MLPMax %v", p.ID(), got, p.MLPMax)
		}
	}
}

func TestCacheSensitivityRange(t *testing.T) {
	for _, p := range Suite() {
		p := p
		s := p.CacheSensitivity(256, 2048)
		if s < 0 || s > 1 {
			t.Errorf("%s: sensitivity %v outside [0,1]", p.ID(), s)
		}
	}
	// The suite must span the interference space: hmmer's absolute miss
	// traffic is negligible at any capacity, mcf's strongly capacity-
	// dependent.
	hmmer, _, _ := ByID("hmmer.nph3")
	mcf, _, _ := ByID("mcf.ref")
	if d := hmmer.MemMPKI(256) - hmmer.MemMPKI(2048); d > 1 {
		t.Errorf("hmmer absolute MPKI delta %v unexpectedly high", d)
	}
	if d := mcf.MemMPKI(256) - mcf.MemMPKI(2048); d < 5 {
		t.Errorf("mcf absolute MPKI delta %v unexpectedly low", d)
	}
}

func TestInterferenceCoverage(t *testing.T) {
	// Table I rationale: the suite should cover low to high interference
	// roughly uniformly. Use solo memory MPKI at 1 MB as the interference
	// proxy and require a wide spread.
	var lo, hi int
	for _, p := range Suite() {
		p := p
		m := p.MemMPKI(1024)
		if m < 2 {
			lo++
		}
		if m > 7 {
			hi++
		}
	}
	if lo < 3 || hi < 3 {
		t.Errorf("interference coverage too narrow: %d low, %d high", lo, hi)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Suite()[0]
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.IPCInf = 0 },
		func(p *Profile) { p.IPCInf = 100 },
		func(p *Profile) { p.WindowHalf = -1 },
		func(p *Profile) { p.BranchMPKI = -1 },
		func(p *Profile) { p.MemMPKIMin = 10; p.MemMPKIMax = 5 },
		func(p *Profile) { p.MemMPKIMax = p.CacheAPKI + 10 },
		func(p *Profile) { p.CacheHalfKB = 0 },
		func(p *Profile) { p.MLPMax = 0.5 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// Property: the miss curve is monotone non-increasing for random profiles.
func TestMissCurveMonotoneProperty(t *testing.T) {
	rng := stats.NewRNG(3)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		p := Profile{
			Name: "x", IPCInf: 1 + 2*r.Float64(), WindowHalf: 20 + 50*r.Float64(),
			CacheAPKI:  100,
			MemMPKIMax: 10 + 50*r.Float64(), MemMPKIMin: r.Float64() * 5,
			CacheHalfKB: 100 + 4000*r.Float64(), CurveGamma: 0.5 + 1.5*r.Float64(),
			MLPMax: 1 + 3*r.Float64(),
		}
		if p.MemMPKIMin > p.MemMPKIMax {
			p.MemMPKIMin, p.MemMPKIMax = p.MemMPKIMax, p.MemMPKIMin
		}
		prev := p.MemMPKI(0)
		for c := 1.0; c < 1e6; c *= 3 {
			cur := p.MemMPKI(c)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
