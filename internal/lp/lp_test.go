package lp

import (
	"math"
	"testing"
	"testing/quick"

	"symbiosched/internal/stats"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveSimpleMax(t *testing.T) {
	// maximize x1 + 2 x2 s.t. x1 + x2 = 1, x >= 0  -> x2 = 1, obj 2.
	p := &Problem{
		C:     []float64{1, 2},
		A:     [][]float64{{1, 1}},
		B:     []float64{1},
		Sense: Maximize,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Objective, 2, 1e-9) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
	if !almost(sol.X[1], 1, 1e-9) || !almost(sol.X[0], 0, 1e-9) {
		t.Errorf("x = %v, want [0 1]", sol.X)
	}
}

func TestSolveSimpleMin(t *testing.T) {
	p := &Problem{
		C:     []float64{1, 2},
		A:     [][]float64{{1, 1}},
		B:     []float64{1},
		Sense: Minimize,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Objective, 1, 1e-9) {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestSolveTwoConstraints(t *testing.T) {
	// maximize 3a + 2b + c
	// a + b + c = 1
	// a - b = 0           -> a = b
	// optimum: compare c=1 (obj 1) vs a=b=1/2 (obj 2.5) -> 2.5
	p := &Problem{
		C:     []float64{3, 2, 1},
		A:     [][]float64{{1, 1, 1}, {1, -1, 0}},
		B:     []float64{1, 0},
		Sense: Maximize,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Objective, 2.5, 1e-9) {
		t.Errorf("objective = %v, want 2.5", sol.Objective)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// x1 - x2 = -1, x1 + x2 = 3 -> x1=1, x2=2.
	p := &Problem{
		C:     []float64{1, 1},
		A:     [][]float64{{1, -1}, {1, 1}},
		B:     []float64{-1, 3},
		Sense: Minimize,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.X[0], 1, 1e-8) || !almost(sol.X[1], 2, 1e-8) {
		t.Errorf("x = %v, want [1 2]", sol.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x1 + x2 = 1 and x1 + x2 = 2 cannot both hold.
	p := &Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}, {1, 1}},
		B: []float64{1, 2},
	}
	if _, err := Solve(p); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// maximize x1 with x1 - x2 = 0: x1 = x2 can grow without bound.
	p := &Problem{
		C:     []float64{1, 0},
		A:     [][]float64{{1, -1}},
		B:     []float64{0},
		Sense: Maximize,
	}
	if _, err := Solve(p); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveRedundantConstraint(t *testing.T) {
	// Second row is twice the first: redundant but consistent.
	p := &Problem{
		C:     []float64{1, 2},
		A:     [][]float64{{1, 1}, {2, 2}},
		B:     []float64{1, 2},
		Sense: Maximize,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Objective, 2, 1e-9) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: multiple constraints intersect at x = (0, 1, 0).
	p := &Problem{
		C:     []float64{0, 1, 2},
		A:     [][]float64{{1, 1, 1}, {1, 0, 0}},
		B:     []float64{1, 0},
		Sense: Maximize,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almost(sol.Objective, 2, 1e-9) {
		t.Errorf("objective = %v, want 2 (x3 = 1)", sol.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Problem{
		{C: nil, A: [][]float64{{1}}, B: []float64{1}},
		{C: []float64{1}, A: nil, B: nil},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}},
		{C: []float64{math.NaN()}, A: [][]float64{{1}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{math.Inf(1)}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{math.NaN()}},
	}
	for i, p := range cases {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDantzigMatchesBland(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(10)
		m := 1 + rng.Intn(3)
		p := &Problem{Sense: Maximize}
		p.C = make([]float64, n)
		for j := range p.C {
			p.C[j] = rng.Float64() * 5
		}
		p.A = make([][]float64, m)
		p.B = make([]float64, m)
		// First constraint is a convex-combination row so the problem is
		// always feasible and bounded; extra rows tie pairs of variables.
		row := make([]float64, n)
		for j := range row {
			row[j] = 1
		}
		p.A[0], p.B[0] = row, 1
		for i := 1; i < m; i++ {
			r := make([]float64, n)
			a, b := rng.Intn(n), rng.Intn(n)
			for a == b {
				b = rng.Intn(n)
			}
			r[a], r[b] = 1, -1
			p.A[i], p.B[i] = r, 0
		}
		p.Rule = Bland
		s1, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d bland: %v", trial, err)
		}
		p.Rule = Dantzig
		s2, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d dantzig: %v", trial, err)
		}
		if !almost(s1.Objective, s2.Objective, 1e-7) {
			t.Fatalf("trial %d: bland %v != dantzig %v", trial, s1.Objective, s2.Objective)
		}
	}
}

// Property: any returned solution is primal feasible, and its objective is
// at least as good as every random feasible point we can construct.
func TestSolutionFeasibilityProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed ^ rng.Uint64())
		n := 4 + r.Intn(12)
		p := &Problem{Sense: Maximize}
		p.C = make([]float64, n)
		for j := range p.C {
			p.C[j] = r.Float64()*4 - 1
		}
		ones := make([]float64, n)
		for j := range ones {
			ones[j] = 1
		}
		p.A = [][]float64{ones}
		p.B = []float64{1}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		// Feasibility.
		var sum float64
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
			sum += x
		}
		if !almost(sum, 1, 1e-7) {
			return false
		}
		// Optimality against random simplex points.
		for trial := 0; trial < 20; trial++ {
			w := make([]float64, n)
			var tot float64
			for j := range w {
				w[j] = r.Float64()
				tot += w[j]
			}
			var obj float64
			for j := range w {
				obj += (w[j] / tot) * p.C[j]
			}
			if obj > sol.Objective+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The paper's key structural property: an optimal basic solution has at
// most as many non-zero variables as equality constraints (Section IV).
func TestSupportSizeBoundedByConstraints(t *testing.T) {
	rng := stats.NewRNG(123)
	for trial := 0; trial < 100; trial++ {
		n := 10 + rng.Intn(30)
		m := 2 + rng.Intn(4)
		p := &Problem{Sense: Maximize}
		p.C = make([]float64, n)
		for j := range p.C {
			p.C[j] = rng.Float64() * 3
		}
		p.A = make([][]float64, m)
		p.B = make([]float64, m)
		ones := make([]float64, n)
		for j := range ones {
			ones[j] = 1
		}
		p.A[0], p.B[0] = ones, 1
		for i := 1; i < m; i++ {
			r := make([]float64, n)
			for j := range r {
				r[j] = rng.Float64() - 0.5
			}
			p.A[i], p.B[i] = r, 0
		}
		sol, err := Solve(p)
		if err == ErrInfeasible {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nz := 0
		for _, x := range sol.X {
			if x > 1e-9 {
				nz++
			}
		}
		if nz > m {
			t.Errorf("trial %d: %d non-zeros > %d constraints", trial, nz, m)
		}
	}
}

func BenchmarkSolve35x4(b *testing.B) {
	// The shape of the paper's per-workload LP: 35 coschedule variables,
	// 4 equality constraints.
	rng := stats.NewRNG(5)
	n, m := 35, 4
	p := &Problem{Sense: Maximize}
	p.C = make([]float64, n)
	for j := range p.C {
		p.C[j] = 1 + rng.Float64()
	}
	ones := make([]float64, n)
	for j := range ones {
		ones[j] = 1
	}
	p.A = append(p.A, ones)
	p.B = append(p.B, 1)
	for i := 1; i < m; i++ {
		r := make([]float64, n)
		for j := range r {
			r[j] = rng.Float64() - 0.5
		}
		p.A = append(p.A, r)
		p.B = append(p.B, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil && err != ErrInfeasible {
			b.Fatal(err)
		}
	}
}
