// Package lp implements a dense two-phase primal simplex solver for linear
// programs in standard form. The paper (Section IV) solves, per workload, a
// linear program whose variables are per-coschedule time fractions x_s:
//
//	maximize   sum_s x_s * it(s)
//	subject to sum_s x_s = 1
//	           sum_s x_s (r_b(s) - r_1(s)) = 0   for b = 2..N
//	           x_s >= 0
//
// The paper used GNU glpk; this package is a from-scratch replacement.
// Problems are tiny (<= ~500 variables, <= ~8 equality constraints), so the
// solver favours robustness: phase-1 artificial variables, Bland's rule to
// preclude cycling (optionally Dantzig pricing for speed), and explicit
// infeasibility/unboundedness reporting.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects minimisation or maximisation of the objective.
type Sense int

const (
	// Minimize the objective.
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// PivotRule selects the entering-variable pricing rule.
type PivotRule int

const (
	// Bland chooses the lowest-index improving column; it guarantees
	// termination (no cycling) and is the default.
	Bland PivotRule = iota
	// Dantzig chooses the column with the most negative reduced cost.
	// Faster in practice, but can cycle on degenerate problems (ties are
	// broken by index, which is usually enough at our problem sizes).
	Dantzig
)

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterLimit  = errors.New("lp: iteration limit exceeded")
)

// Problem is a linear program over variables x >= 0 with equality
// constraints A x = B. Inequalities can be modelled by the caller with
// slack variables; the study needs only equalities.
type Problem struct {
	// C is the objective coefficient vector (length = number of variables).
	C []float64
	// A is the constraint matrix, one row per equality constraint.
	A [][]float64
	// B is the right-hand side, one entry per constraint. Entries may be
	// negative; the solver normalises signs internally.
	B []float64
	// Sense selects minimise (default) or maximise.
	Sense Sense
	// Rule selects the pivot rule (default Bland).
	Rule PivotRule
	// MaxIter bounds the number of simplex pivots (default 50_000).
	MaxIter int
}

// Solution is the result of a successful solve.
type Solution struct {
	// X is the optimal assignment (length = number of variables).
	X []float64
	// Objective is the optimal objective value in the problem's Sense.
	Objective float64
	// Iterations is the total number of simplex pivots (both phases).
	Iterations int
	// Basis is the final basic variable index set (diagnostic).
	Basis []int
}

const tol = 1e-9

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: no variables")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d rhs entries", len(p.A), len(p.B))
	}
	if len(p.A) == 0 {
		return errors.New("lp: no constraints")
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: constraint row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	for _, c := range p.C {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return errors.New("lp: non-finite objective coefficient")
		}
	}
	for i, row := range p.A {
		for _, a := range row {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("lp: non-finite coefficient in row %d", i)
			}
		}
		if math.IsNaN(p.B[i]) || math.IsInf(p.B[i], 0) {
			return fmt.Errorf("lp: non-finite rhs in row %d", i)
		}
	}
	return nil
}

// Solve runs the two-phase primal simplex method.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 50_000
	}
	n := len(p.C)
	m := len(p.A)

	// Internal objective: always minimise. Maximisation negates C.
	c := make([]float64, n)
	for j, v := range p.C {
		if p.Sense == Maximize {
			c[j] = -v
		} else {
			c[j] = v
		}
	}

	// Tableau over n structural + m artificial columns.
	// Row layout: m constraint rows, then the objective row.
	width := n + m + 1 // + rhs column
	t := make([][]float64, m+1)
	for i := range t {
		t[i] = make([]float64, width)
	}
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			t[i][j] = sign * p.A[i][j]
		}
		t[i][n+i] = 1 // artificial
		t[i][width-1] = sign * p.B[i]
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// ---- Phase 1: minimise the sum of artificials. ----
	// Objective row: sum of constraint rows negated for artificial columns
	// already in the basis.
	obj := t[m]
	for j := 0; j < width; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += t[i][j]
		}
		obj[j] = -s
	}
	for i := 0; i < m; i++ {
		obj[n+i] = 0 // basic artificials have zero reduced cost
	}
	iters, err := iterate(t, basis, n+m, p.Rule, maxIter)
	if err != nil {
		return nil, err
	}
	if -obj[width-1] > 1e-7 {
		return nil, ErrInfeasible
	}
	// Drive any remaining artificial variables out of the basis (degenerate
	// feasible problems can leave them basic at value 0).
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(t[i][j]) > tol {
				pivot(t, i, j)
				basis[i] = j
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant (all-zero over structural columns); it stays
			// with a zero-valued artificial, which is harmless in phase 2
			// because the artificial columns are frozen below.
			continue
		}
	}

	// ---- Phase 2: install the real objective and re-optimise. ----
	for j := 0; j < width; j++ {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = c[j]
	}
	// Price out basic variables.
	for i := 0; i < m; i++ {
		bj := basis[i]
		if bj >= n {
			continue
		}
		f := obj[bj]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			obj[j] -= f * t[i][j]
		}
	}
	// Freeze artificial columns so they can never re-enter.
	for i := 0; i < m; i++ {
		obj[n+i] = math.Inf(1)
	}
	it2, err := iterate(t, basis, n, p.Rule, maxIter-iters)
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			x[bj] = t[i][width-1]
		}
	}
	objVal := -obj[width-1]
	if p.Sense == Maximize {
		objVal = -objVal
	}
	return &Solution{
		X:          x,
		Objective:  objVal,
		Iterations: iters + it2,
		Basis:      append([]int(nil), basis...),
	}, nil
}

// iterate runs primal simplex pivots on the tableau until optimality.
// Columns with index >= limit are never considered for entering.
func iterate(t [][]float64, basis []int, limit int, rule PivotRule, maxIter int) (int, error) {
	m := len(basis)
	width := len(t[0])
	obj := t[m]
	for it := 0; ; it++ {
		if it >= maxIter {
			return it, ErrIterLimit
		}
		// Entering column.
		enter := -1
		switch rule {
		case Dantzig:
			best := -tol
			for j := 0; j < limit; j++ {
				if obj[j] < best {
					best, enter = obj[j], j
				}
			}
		default: // Bland
			for j := 0; j < limit; j++ {
				if obj[j] < -tol {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return it, nil // optimal
		}
		// Ratio test for the leaving row; Bland tie-break on basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t[i][enter]
			if a <= tol {
				continue
			}
			ratio := t[i][width-1] / a
			if ratio < bestRatio-tol || (ratio < bestRatio+tol && (leave < 0 || basis[i] < basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return it, ErrUnbounded
		}
		pivot(t, leave, enter)
		basis[leave] = enter
	}
}

// pivot performs a full Gauss-Jordan pivot on tableau element (row, col).
func pivot(t [][]float64, row, col int) {
	width := len(t[0])
	inv := 1 / t[row][col]
	pr := t[row]
	for j := 0; j < width; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		ri := t[i]
		if math.IsInf(f, 0) {
			// Frozen artificial columns in the objective row: leave them
			// frozen rather than propagating Inf through the row.
			continue
		}
		for j := 0; j < width; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // exact
	}
}
