// Command farmsim simulates a farm of symbiosis-aware servers behind one
// dispatcher: a single Poisson stream of jobs is routed over N (optionally
// heterogeneous) servers by each of the selected dispatch policies, and
// per-policy mean/p95 turnaround, utilisation and empty fraction are
// reported, averaged over R replications. Loads are offered relative to
// the farm's aggregate FCFS maximum throughput.
//
// Usage:
//
//	farmsim [-servers 4] [-hetero] [-sched FCFS] [-estimator oracle]
//	        [-dispatchers random,rr,jsq,li,pd] [-d 2] [-loads 0.5,0.8,0.95]
//	        [-jobs 20000] [-reps 3] [-seed 1] [-quantiles]
//	        [-mtbf 0] [-mttr 2.5] [-retries 5] [-retry-delay 0.5] [-checkpoint restart]
//	        [-shards 0] [-slab 0] [-parallel N] [-cache dir] [-csv dir] [-progress]
//
// -estimator replaces the oracle performance table with an online learner
// (sampler or pairwise, see internal/online): schedulers and the li
// dispatcher then decide over rates discovered at run time, while jobs
// still progress at the machine's true rates. -quantiles appends P50/P99
// turnaround panels to the report.
//
// The pd dispatcher is power-of-d-choices: it probes d random distinct
// servers per arrival and places on the least-interfering of those by the
// same marginal-throughput criterion li applies to every server. -d sets
// the probe count a bare "pd" in -dispatchers uses (an explicit pd3 etc.
// overrides it); pd with d >= N reproduces li exactly, pd1 reproduces
// random.
//
// -mtbf > 0 switches on deterministic fault injection (internal/fault):
// every server fails and repairs on its own exponential
// mean-time-between-failures / mean-time-to-repair process, evicted jobs
// re-dispatch under the -checkpoint policy ("restart" redoes the lost
// work, "resume" keeps it) with at most -retries attempts and a
// doubling backoff starting at -retry-delay. The report then grows
// availability, goodput and redispatch panels. Fault streams derive
// from the per-replication seeds and the server index only, so every
// dispatcher and load faces the same outage trajectory.
//
// -shards > 0 runs every simulation on the sharded time-slab engine
// (contiguous server partitions advanced in parallel between
// synchronization points; see internal/farm.SimulateSharded), which is
// what makes 100k-server farms tractable. -slab caps the slab length in
// simulated time; at the default 0 the engine adapts the cap to the
// observed event density (see internal/farm: the estimate reads only the
// deterministic event stream, never worker count or wall time, so the
// adaptive schedule is reproducible). Sharded results are byte-identical at any
// -shards/-slab/-parallel combination, but differ from the serial engine
// in float rounding.
//
// Replication sweeps run through the shared runner engine: output is
// byte-identical at any -parallel value.
//
// farmsim exits non-zero on SIGINT/SIGTERM: the sweep is cancelled, the
// partial grid is discarded and no CSV is written (CSV writes go through
// a temp file and rename, so an interrupted run never leaves a partial
// file behind).
//
// -metrics collects the internal/metrics instrumentation (scheduler memo
// and pruning counters, server busy/occupancy gauges, dispatcher probe
// counts, learner observation counts) merged over the whole grid;
// simulation results are byte-identical with or without it. With -csv
// the merged snapshot is written as farm_metrics.csv next to farm.csv.
// -cpuprofile and -memprofile write runtime/pprof profiles of the run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"symbiosched/internal/exp"
	"symbiosched/internal/farm"
	"symbiosched/internal/fault"
	"symbiosched/internal/online"
	"symbiosched/internal/profiling"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("farmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		servers     = fs.Int("servers", 4, "number of servers in the farm")
		hetero      = fs.Bool("hetero", false, "alternate SMT and quad-core servers (all-SMT otherwise)")
		schedName   = fs.String("sched", "FCFS", "per-server scheduler: FCFS, MAXIT, SRPT or MAXTP")
		estimator   = fs.String("estimator", "oracle", "per-server rate knowledge: "+strings.Join(online.Names, ", ")+" (non-oracle learns co-run rates online)")
		quantiles   = fs.Bool("quantiles", false, "also print P50/P99 turnaround panels")
		dispatchers = fs.String("dispatchers", strings.Join(farm.DispatcherNames, ","), "comma-separated dispatch policies (pd[<d>] = power-of-d-choices)")
		probeD      = fs.Int("d", 2, "probe count a bare pd dispatcher uses (pd1 = random, pd>=N = li)")
		loads       = fs.String("loads", "0.5,0.8,0.95", "comma-separated offered loads relative to farm capacity")
		jobs        = fs.Int("jobs", 20000, "jobs per simulation")
		reps        = fs.Int("reps", 3, "replications (independent seeds) per cell")
		seed        = fs.Uint64("seed", 1, "base random seed")
		mtbf        = fs.Float64("mtbf", 0, "mean time between per-server failures in simulated time (0 = no fault injection)")
		mttr        = fs.Float64("mttr", 2.5, "mean time to repair a failed server (used when -mtbf > 0)")
		retries     = fs.Int("retries", 5, "retry cap per job: a crash victim past this many attempts is dropped")
		retryDelay  = fs.Float64("retry-delay", 0.5, "base re-dispatch backoff; attempt k waits delay*2^(k-1)")
		checkpoint  = fs.String("checkpoint", string(fault.Restart), "crash checkpoint policy: restart (redo lost work) or resume (keep progress)")
		shards      = fs.Int("shards", 0, "run on the sharded time-slab engine with this many shards (0 = serial engine)")
		slab        = fs.Float64("slab", 0, "cap the sharded engine's slab length in simulated time (0 = adaptive, tuned from observed event density)")
		parallel    = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size (results are identical at any value)")
		cacheDir    = fs.String("cache", "", "cache built performance databases as gob files in this directory")
		csvDir      = fs.String("csv", "", "also write the result grid as a CSV file into this directory")
		progress    = fs.Bool("progress", false, "print per-sweep progress to stderr")
		metricsF    = fs.Bool("metrics", false, "collect internal instrumentation (results unchanged; -csv adds farm_metrics.csv)")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf     = fs.String("memprofile", "", "write a final heap profile of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *probeD < 1 {
		fmt.Fprintf(stderr, "farmsim: -d wants a probe count >= 1, got %d\n", *probeD)
		return 2
	}
	if *shards < 0 {
		fmt.Fprintf(stderr, "farmsim: -shards wants a count >= 0, got %d\n", *shards)
		return 2
	}
	if *slab < 0 || math.IsNaN(*slab) {
		fmt.Fprintf(stderr, "farmsim: -slab wants a duration >= 0 (0 = adaptive), got %v\n", *slab)
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "farmsim: -parallel wants a worker count >= 1, got %d\n", *parallel)
		return 2
	}
	var dispList []string
	for _, s := range strings.Split(*dispatchers, ",") {
		name := strings.TrimSpace(s)
		if name == "pd" {
			name = fmt.Sprintf("pd%d", *probeD)
		}
		dispList = append(dispList, name)
	}
	var loadList []float64
	for _, s := range strings.Split(*loads, ",") {
		l, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || l <= 0 || l >= 1 {
			fmt.Fprintf(stderr, "farmsim: -loads wants fractions in (0,1), got %q\n", s)
			return 2
		}
		loadList = append(loadList, l)
	}
	fcfg := fault.Config{
		MTBF:       *mtbf,
		MTTR:       *mttr,
		MaxRetries: *retries,
		RetryDelay: *retryDelay,
		Checkpoint: fault.Policy(*checkpoint),
	}
	if err := fcfg.Validate(); err != nil {
		fmt.Fprintf(stderr, "farmsim: %v\n", err)
		return 2
	}

	cfg := exp.DefaultConfig()
	cfg.SimJobs = *jobs
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	cfg.CacheDir = *cacheDir
	cfg.Metrics = *metricsF
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "farmsim: -cache %s: %v\n", cfg.CacheDir, err)
			return 1
		}
	}
	if *progress {
		cfg.Progress = func(sweep string, done, total int) {
			if done == total || done == 0 {
				fmt.Fprintf(stderr, "%-12s %d/%d\n", sweep, done, total)
			}
		}
	}
	env := exp.NewEnv(cfg)

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "farmsim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "farmsim: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	r, err := exp.Farm(ctx, env, exp.FarmOptions{
		Servers:      *servers,
		Hetero:       *hetero,
		Sched:        *schedName,
		Estimator:    *estimator,
		Dispatchers:  dispList,
		Loads:        loadList,
		Replications: *reps,
		Shards:       *shards,
		Slab:         *slab,
		Faults:       fcfg,
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(stderr, "farmsim: interrupted, partial results discarded: %v\n", err)
		} else {
			fmt.Fprintf(stderr, "farmsim: %v\n", err)
		}
		return 1
	}
	fmt.Fprint(stdout, r.Format())
	if *quantiles {
		fmt.Fprint(stdout, r.FormatQuantiles())
	}
	if *csvDir != "" {
		if err := exp.WriteCSV(*csvDir, "farm", r); err != nil {
			fmt.Fprintf(stderr, "farmsim: csv: %v\n", err)
			return 1
		}
	}
	if r.Metrics != nil {
		if *csvDir != "" {
			if err := exp.MetricsTable("farm_metrics", r.Metrics).WriteFile(*csvDir); err != nil {
				fmt.Fprintf(stderr, "farmsim: metrics csv: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "metrics: %d rows written to farm_metrics.csv\n", len(r.Metrics.Rows))
		} else {
			fmt.Fprintf(stdout, "metrics: %d rows collected (add -csv to export)\n", len(r.Metrics.Rows))
		}
	}
	return 0
}
