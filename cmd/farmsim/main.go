// Command farmsim simulates a farm of symbiosis-aware servers behind one
// dispatcher: a single Poisson stream of jobs is routed over N (optionally
// heterogeneous) servers by each of the selected dispatch policies, and
// per-policy mean/p95 turnaround, utilisation and empty fraction are
// reported, averaged over R replications. Loads are offered relative to
// the farm's aggregate FCFS maximum throughput.
//
// Usage:
//
//	farmsim [-servers 4] [-hetero] [-sched FCFS] [-estimator oracle]
//	        [-dispatchers random,rr,jsq,li] [-loads 0.5,0.8,0.95]
//	        [-jobs 20000] [-reps 3] [-seed 1] [-quantiles]
//	        [-parallel N] [-cache dir] [-csv dir] [-progress]
//
// -estimator replaces the oracle performance table with an online learner
// (sampler or pairwise, see internal/online): schedulers and the li
// dispatcher then decide over rates discovered at run time, while jobs
// still progress at the machine's true rates. -quantiles appends P50/P99
// turnaround panels to the report.
//
// Replication sweeps run through the shared runner engine: output is
// byte-identical at any -parallel value.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"symbiosched/internal/exp"
	"symbiosched/internal/farm"
	"symbiosched/internal/online"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("farmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		servers     = fs.Int("servers", 4, "number of servers in the farm")
		hetero      = fs.Bool("hetero", false, "alternate SMT and quad-core servers (all-SMT otherwise)")
		schedName   = fs.String("sched", "FCFS", "per-server scheduler: FCFS, MAXIT, SRPT or MAXTP")
		estimator   = fs.String("estimator", "oracle", "per-server rate knowledge: "+strings.Join(online.Names, ", ")+" (non-oracle learns co-run rates online)")
		quantiles   = fs.Bool("quantiles", false, "also print P50/P99 turnaround panels")
		dispatchers = fs.String("dispatchers", strings.Join(farm.DispatcherNames, ","), "comma-separated dispatch policies")
		loads       = fs.String("loads", "0.5,0.8,0.95", "comma-separated offered loads relative to farm capacity")
		jobs        = fs.Int("jobs", 20000, "jobs per simulation")
		reps        = fs.Int("reps", 3, "replications (independent seeds) per cell")
		seed        = fs.Uint64("seed", 1, "base random seed")
		parallel    = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size (results are identical at any value)")
		cacheDir    = fs.String("cache", "", "cache built performance databases as gob files in this directory")
		csvDir      = fs.String("csv", "", "also write the result grid as a CSV file into this directory")
		progress    = fs.Bool("progress", false, "print per-sweep progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	var dispList []string
	for _, s := range strings.Split(*dispatchers, ",") {
		dispList = append(dispList, strings.TrimSpace(s))
	}
	var loadList []float64
	for _, s := range strings.Split(*loads, ",") {
		l, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || l <= 0 || l >= 1 {
			fmt.Fprintf(stderr, "farmsim: -loads wants fractions in (0,1), got %q\n", s)
			return 2
		}
		loadList = append(loadList, l)
	}

	cfg := exp.DefaultConfig()
	cfg.SimJobs = *jobs
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	cfg.CacheDir = *cacheDir
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "farmsim: -cache %s: %v\n", cfg.CacheDir, err)
			return 1
		}
	}
	if *progress {
		cfg.Progress = func(sweep string, done, total int) {
			if done == total || done == 0 {
				fmt.Fprintf(stderr, "%-12s %d/%d\n", sweep, done, total)
			}
		}
	}
	env := exp.NewEnv(cfg)

	r, err := exp.Farm(env, exp.FarmOptions{
		Servers:      *servers,
		Hetero:       *hetero,
		Sched:        *schedName,
		Estimator:    *estimator,
		Dispatchers:  dispList,
		Loads:        loadList,
		Replications: *reps,
	})
	if err != nil {
		fmt.Fprintf(stderr, "farmsim: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, r.Format())
	if *quantiles {
		fmt.Fprint(stdout, r.FormatQuantiles())
	}
	if *csvDir != "" {
		if err := exp.WriteCSV(*csvDir, "farm", r); err != nil {
			fmt.Fprintf(stderr, "farmsim: csv: %v\n", err)
			return 1
		}
	}
	return 0
}
