package main

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestRunTinyFarm is the end-to-end smoke run: a 2-server farm, one
// dispatcher pair, one load, tiny job counts.
func TestRunTinyFarm(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-servers", "2", "-jobs", "800", "-reps", "2",
		"-dispatchers", "rr,li", "-loads", "0.8",
		"-parallel", "2", "-csv", dir,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"Server farm (2 x smt / FCFS)", "rr", "li", "load=0.80"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "farm.csv"))
	if err != nil {
		t.Fatalf("farm.csv: %v", err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 3 {
		t.Errorf("farm.csv has %d lines, want header + 2 cells:\n%s", len(lines), data)
	}
}

// TestRunOnlineEstimator smoke-runs the learning path: -estimator swaps
// the oracle table for an online learner and -quantiles appends the
// P50/P99 panels.
func TestRunOnlineEstimator(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"-servers", "2", "-jobs", "600", "-reps", "1", "-sched", "MAXIT",
		"-estimator", "sampler", "-quantiles",
		"-dispatchers", "li", "-loads", "0.8",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"@ sampler", "p50 turnaround", "p99 turnaround"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if code := run(context.Background(), []string{"-estimator", "psychic", "-jobs", "300", "-reps", "1", "-loads", "0.5"}, &out, &errb); code != 1 {
		t.Errorf("unknown estimator: run = %d, want 1", code)
	}
}

// TestRunDeterministicAcrossParallel pins the acceptance criterion at
// the CLI level: the full farmsim output is byte-identical at
// -parallel 1 and -parallel NumCPU (or 8 if larger).
func TestRunDeterministicAcrossParallel(t *testing.T) {
	wide := runtime.NumCPU()
	if wide < 8 {
		wide = 8
	}
	var outs []string
	for _, p := range []int{1, wide} {
		var out, errb strings.Builder
		code := run(context.Background(), []string{
			"-servers", "2", "-jobs", "600", "-reps", "4",
			"-dispatchers", "jsq,li", "-loads", "0.5,0.9",
			"-parallel", strconv.Itoa(p),
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("-parallel %d: run = %d, stderr: %s", p, code, errb.String())
		}
		outs = append(outs, out.String())
	}
	if outs[0] != outs[1] {
		t.Errorf("output differs between -parallel 1 and -parallel %d:\n--- p=1 ---\n%s\n--- p=%d ---\n%s",
			wide, outs[0], wide, outs[1])
	}
}

// TestRunShardedPD smoke-runs the sharded engine with power-of-d
// dispatch: a bare "pd" in -dispatchers picks up the -d probe count, and
// -shards routes every simulation through SimulateSharded. The sharded
// engine's byte-identity across worker counts is pinned here at the CLI
// level via -parallel.
func TestRunShardedPD(t *testing.T) {
	var outs []string
	for _, p := range []string{"1", strconv.Itoa(runtime.NumCPU())} {
		var out, errb strings.Builder
		code := run(context.Background(), []string{
			"-servers", "6", "-jobs", "800", "-reps", "2",
			"-dispatchers", "pd,pd1", "-d", "3", "-loads", "0.8",
			"-shards", "3", "-slab", "0.5", "-parallel", p,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("-parallel %s: run = %d, stderr: %s", p, code, errb.String())
		}
		outs = append(outs, out.String())
	}
	got := outs[0]
	for _, want := range []string{"[sharded x3]", "pd3", "pd1"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if outs[0] != outs[1] {
		t.Errorf("sharded output differs across -parallel:\n--- p=1 ---\n%s\n--- wide ---\n%s", outs[0], outs[1])
	}
}

// TestRunMetricsAndProfiles smoke-runs the observability surface: with
// -metrics the merged snapshot lands next to farm.csv, the simulation
// grid itself is byte-identical to a run without instrumentation, and
// -cpuprofile/-memprofile produce non-empty pprof files.
func TestRunMetricsAndProfiles(t *testing.T) {
	common := []string{
		"-servers", "2", "-jobs", "600", "-reps", "2",
		"-dispatchers", "rr,li", "-loads", "0.8",
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var plain, instr, errb strings.Builder
	if code := run(context.Background(), common, &plain, &errb); code != 0 {
		t.Fatalf("plain run = %d, stderr: %s", code, errb.String())
	}
	args := append([]string{"-metrics", "-csv", dir, "-cpuprofile", cpu, "-memprofile", mem}, common...)
	if code := run(context.Background(), args, &instr, &errb); code != 0 {
		t.Fatalf("instrumented run = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(instr.String(), "metrics: ") {
		t.Errorf("metrics summary line missing:\n%s", instr.String())
	}
	// Instrumentation only observes: the report grid is unchanged.
	if got := strings.Split(instr.String(), "metrics: ")[0]; got != plain.String() {
		t.Errorf("-metrics changed the report:\n--- plain ---\n%s\n--- instrumented ---\n%s", plain.String(), got)
	}
	data, err := os.ReadFile(filepath.Join(dir, "farm_metrics.csv"))
	if err != nil {
		t.Fatalf("farm_metrics.csv: %v", err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) < 10 ||
		lines[0] != "metric,kind,field,value" ||
		!strings.Contains(string(data), "sched_memo_") {
		t.Errorf("farm_metrics.csv unexpected:\n%s", data)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestMetricsCSVDeterministicAcrossParallel pins the snapshot-ordering
// contract at the CLI level: farm_metrics.csv is byte-identical at
// -parallel 1 and -parallel NumCPU.
func TestMetricsCSVDeterministicAcrossParallel(t *testing.T) {
	wide := runtime.NumCPU()
	if wide < 8 {
		wide = 8
	}
	var csvs []string
	for _, p := range []int{1, wide} {
		dir := t.TempDir()
		var out, errb strings.Builder
		code := run(context.Background(), []string{
			"-servers", "3", "-jobs", "600", "-reps", "3",
			"-dispatchers", "jsq,li", "-loads", "0.5,0.9",
			"-metrics", "-csv", dir, "-parallel", strconv.Itoa(p),
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("-parallel %d: run = %d, stderr: %s", p, code, errb.String())
		}
		data, err := os.ReadFile(filepath.Join(dir, "farm_metrics.csv"))
		if err != nil {
			t.Fatal(err)
		}
		csvs = append(csvs, string(data))
	}
	if csvs[0] != csvs[1] {
		t.Errorf("farm_metrics.csv differs across -parallel:\n--- p=1 ---\n%s\n--- wide ---\n%s", csvs[0], csvs[1])
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-loads", "1.5"}, &out, &errb); code != 2 {
		t.Errorf("out-of-range load: run = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: run = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-jobs", "300", "-reps", "1", "-loads", "0.5", "-sched", "NOPE"}, &out, &errb); code != 1 {
		t.Errorf("unknown scheduler: run = %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-d", "0"}, &out, &errb); code != 2 {
		t.Errorf("bad probe count: run = %d, want 2", code)
	}
}

// TestRunEngineFlagValidation pins the up-front exit-2 contract on the
// sharded-engine knobs: negative or non-finite geometry is a usage
// error caught before any simulation runs, while -slab 0 (adaptive) is
// a valid working configuration.
func TestRunEngineFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
		msg  string
	}{
		{"negative shards", []string{"-shards", "-1"}, 2, "-shards"},
		{"negative slab", []string{"-slab", "-0.5"}, 2, "-slab"},
		{"nan slab", []string{"-slab", "NaN"}, 2, "-slab"},
		{"zero parallel", []string{"-parallel", "0"}, 2, "-parallel"},
		{"negative parallel", []string{"-parallel", "-2"}, 2, "-parallel"},
		{"adaptive slab runs", []string{
			"-servers", "4", "-shards", "2", "-slab", "0",
			"-jobs", "400", "-reps", "1", "-dispatchers", "rr", "-loads", "0.5",
		}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(context.Background(), tc.args, &out, &errb); code != tc.want {
				t.Fatalf("run(%v) = %d, want %d; stderr: %s", tc.args, code, tc.want, errb.String())
			}
			if tc.msg != "" && !strings.Contains(errb.String(), tc.msg) {
				t.Errorf("stderr should name %s:\n%s", tc.msg, errb.String())
			}
		})
	}
}

// TestRunCancelledNoPartialCSV pins the graceful-shutdown satellite: a
// cancelled context (what SIGINT/SIGTERM produce via main) aborts the
// sweep with a non-zero exit, reports the interruption, and leaves no
// partial farm.csv behind.
func TestRunCancelledNoPartialCSV(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	code := run(ctx, []string{
		"-servers", "2", "-jobs", "800", "-reps", "2",
		"-dispatchers", "rr,li", "-loads", "0.8", "-csv", dir,
	}, &out, &errb)
	if code == 0 {
		t.Fatalf("cancelled run = 0, want non-zero; stdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Errorf("stderr does not report the interruption:\n%s", errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "farm.csv")); !os.IsNotExist(err) {
		t.Errorf("farm.csv exists after a cancelled run (stat err = %v)", err)
	}
}

// TestRunFaultFlags drives the fault-injection surface end to end: the
// report grows availability/goodput/redispatch panels, the CSV still
// carries the pinned farm grid, and the run stays byte-identical across
// -parallel.
func TestRunFaultFlags(t *testing.T) {
	var outs []string
	for _, p := range []string{"1", strconv.Itoa(runtime.NumCPU())} {
		var out, errb strings.Builder
		code := run(context.Background(), []string{
			"-servers", "3", "-jobs", "900", "-reps", "2",
			"-dispatchers", "jsq,li", "-loads", "0.8",
			"-mtbf", "30", "-mttr", "2", "-retries", "4",
			"-retry-delay", "0.25", "-checkpoint", "resume",
			"-parallel", p,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("-parallel %s: run = %d, stderr: %s", p, code, errb.String())
		}
		outs = append(outs, out.String())
	}
	got := outs[0]
	for _, want := range []string{"!mtbf=30", "availability", "goodput", "redispatches"} {
		if !strings.Contains(got, want) {
			t.Errorf("fault run output missing %q:\n%s", want, got)
		}
	}
	if outs[0] != outs[1] {
		t.Errorf("fault run differs across -parallel:\n--- p=1 ---\n%s\n--- wide ---\n%s", outs[0], outs[1])
	}
}

// TestRunFaultFlagValidation is the table-driven up-front rejection of
// inconsistent fault flags: every bad combination exits 2 before any
// simulation runs, with the offending flag named on stderr.
func TestRunFaultFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"negative mtbf", []string{"-mtbf", "-1"}, "MTBF"},
		{"mtbf without mttr", []string{"-mtbf", "10", "-mttr", "0"}, "MTTR"},
		{"negative mttr", []string{"-mtbf", "10", "-mttr", "-2"}, "MTTR"},
		{"negative retries", []string{"-mtbf", "10", "-retries", "-1"}, "MaxRetries"},
		{"negative retry delay", []string{"-mtbf", "10", "-retry-delay", "-0.5"}, "RetryDelay"},
		{"unknown checkpoint", []string{"-mtbf", "10", "-checkpoint", "rollback"}, "Checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			args := append(tc.args, "-jobs", "300", "-reps", "1", "-loads", "0.5")
			if code := run(context.Background(), args, &out, &errb); code != 2 {
				t.Fatalf("run = %d, want 2; stderr: %s", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", errb.String(), tc.want)
			}
		})
	}
}
