// This file implements `symbiosim trend`: the perf-trajectory view over
// a resultdb store. It walks the store's records for one scenario key
// across commits (oldest to newest) and renders every benchmark's ns/op
// and every recorded metric as a series — a text sparkline per series on
// stdout, and optionally the full long-format table as CSV.

package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"symbiosched/internal/resultdb"
	"symbiosched/internal/scenario"
)

// sparkLevels are the eight block glyphs a sparkline quantises into;
// sparkGap marks records where the series has no point.
const (
	sparkLevels = "▁▂▃▄▅▆▇█"
	sparkGap    = "·"
)

// sparkline renders vs (NaN = missing) as block glyphs, min-max
// normalised over the present points. A flat series renders mid-level:
// the interesting signal is change, not absolute height.
func sparkline(vs []float64) string {
	levels := []rune(sparkLevels)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if math.IsNaN(v) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vs {
		switch {
		case math.IsNaN(v):
			b.WriteString(sparkGap)
		case lo == hi:
			b.WriteRune(levels[3])
		default:
			b.WriteRune(levels[int((v-lo)/(hi-lo)*7.999)])
		}
	}
	return b.String()
}

// trendPoint is one record's position on the walked trajectory.
type trendPoint struct {
	commit string
	when   string
}

// trendSeries is one named value trajectory over the walked records;
// vals[i] belongs to the i-th (oldest-first) record, NaN when absent.
type trendSeries struct {
	name string
	vals []float64
}

// runTrendCmd implements `symbiosim trend`. Exit 0 on a rendered trend,
// 1 when the store holds no matching records, 2 on usage errors.
func runTrendCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symbiosim trend", flag.ContinueOnError)
	db := fs.String("db", defaultDB, "record store directory")
	scen := fs.String("scenario", "bench", "scenario key to walk (the bench-record default, or a -record scenario name)")
	benchF := fs.String("bench", "", "only benchmarks whose name contains this substring")
	metricF := fs.String("metric", "", "only metrics whose name contains this substring")
	last := fs.Int("last", 0, "walk only the most recent N records (0 = all)")
	csvDir := fs.String("csv", "", "also write the trend table as trend_<scenario>.csv into this directory")
	if ok, code := parseOrUsage(fs, args, "symbiosim trend [-db dir] [-scenario bench] [-bench substr] [-metric substr] [-last N] [-csv dir]", stderr); !ok {
		return code
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	if *last < 0 {
		fmt.Fprintf(stderr, "symbiosim: -last wants a count >= 0, got %d\n", *last)
		return 2
	}
	st, ok := openStore(*db, stderr)
	if !ok {
		return 2
	}
	names, err := st.List()
	if err != nil {
		fmt.Fprintf(stderr, "symbiosim: %v\n", err)
		return 1
	}
	// List is newest first; collect the scenario's records and reverse
	// into commit order (oldest first), bounding at -last newest.
	var points []trendPoint
	var recs []*resultdb.Record
	for _, n := range names {
		rec, err := st.Get(n)
		if err != nil {
			if errors.Is(err, resultdb.ErrCorrupt) {
				fmt.Fprintf(stderr, "symbiosim: warning: skipping %v\n", err)
				continue
			}
			fmt.Fprintf(stderr, "symbiosim: %v\n", err)
			return 1
		}
		if rec.Scenario != *scen {
			continue
		}
		points = append(points, trendPoint{commit: rec.Commit, when: rec.When})
		recs = append(recs, rec)
		if *last > 0 && len(recs) == *last {
			break
		}
	}
	if len(recs) == 0 {
		fmt.Fprintf(stderr, "symbiosim: no records for scenario %q in %s\n", *scen, *db)
		return 1
	}
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		points[i], points[j] = points[j], points[i]
		recs[i], recs[j] = recs[j], recs[i]
	}

	series := trendCollect(recs, *benchF, *metricF)
	if len(series) == 0 {
		fmt.Fprintf(stderr, "symbiosim: records match but no series passed the -bench/-metric filters\n")
		return 1
	}

	fmt.Fprintf(stdout, "trend: scenario %s, %d records (oldest to newest)\n", *scen, len(recs))
	for i, p := range points {
		fmt.Fprintf(stdout, "  %2d  %-8s  %s\n", i, short(p.commit, 8), p.when)
	}
	nameW := 0
	for _, s := range series {
		if len(s.name) > nameW {
			nameW = len(s.name)
		}
	}
	for _, s := range series {
		first, last := firstLast(s.vals)
		delta := "     n/a"
		if !math.IsNaN(first) && !math.IsNaN(last) && first != 0 {
			delta = fmt.Sprintf("%+7.1f%%", 100*(last-first)/first)
		}
		fmt.Fprintf(stdout, "%-*s  %s  %s  %s -> %s\n",
			nameW, s.name, sparkline(s.vals), delta, trendNum(first), trendNum(last))
	}

	if *csvDir != "" {
		tbl := scenario.NewTable("trend_"+short(*scen, 32),
			scenario.IntCol("seq"), scenario.StrCol("commit"), scenario.StrCol("when"),
			scenario.StrCol("series"), scenario.FloatCol("value"))
		for _, s := range series {
			for i, v := range s.vals {
				if math.IsNaN(v) {
					continue
				}
				tbl.Add(i, short(points[i].commit, 8), points[i].when, s.name, v)
			}
		}
		if err := tbl.WriteFile(*csvDir); err != nil {
			fmt.Fprintf(stderr, "symbiosim: csv: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trend table written to %s/%s.csv\n", *csvDir, tbl.Name)
	}
	return 0
}

// trendCollect builds the series over the oldest-first records: every
// benchmark's ns/op (as "bench <name>") and every metric row with a
// numeric value (as "metric <Metric>/<Field>"), in first-seen order.
func trendCollect(recs []*resultdb.Record, benchF, metricF string) []trendSeries {
	idx := map[string]int{}
	var series []trendSeries
	point := func(key string, i int, v float64) {
		si, ok := idx[key]
		if !ok {
			si = len(series)
			idx[key] = si
			vals := make([]float64, len(recs))
			for k := range vals {
				vals[k] = math.NaN()
			}
			series = append(series, trendSeries{name: key, vals: vals})
		}
		series[si].vals[i] = v
	}
	for i, rec := range recs {
		for _, b := range rec.Benches {
			if benchF != "" && !strings.Contains(b.Name, benchF) {
				continue
			}
			point("bench "+b.Name, i, b.NsPerOp)
		}
		for _, m := range rec.Metrics {
			name := m.Metric + "/" + m.Field
			if metricF != "" && !strings.Contains(name, metricF) {
				continue
			}
			v, err := strconv.ParseFloat(m.Value, 64)
			if err != nil {
				continue // non-numeric metric values carry no trajectory
			}
			point("metric "+name, i, v)
		}
	}
	return series
}

// firstLast returns the first and last non-NaN values of vs (NaN when
// the series is entirely empty).
func firstLast(vs []float64) (first, last float64) {
	first, last = math.NaN(), math.NaN()
	for _, v := range vs {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(first) {
			first = v
		}
		last = v
	}
	return first, last
}

// short truncates a token for display; "none" stands in for an empty
// one so table columns never collapse.
func short(s string, n int) string {
	if s == "" {
		return "none"
	}
	if len(s) > n {
		return s[:n]
	}
	return s
}

// trendNum renders a series endpoint compactly (4 significant digits).
func trendNum(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}
