package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFig4 is the tiny end-to-end smoke run: fig4 is purely analytic
// (M/M/c curves), so it exercises flag parsing, the experiment registry
// and the output path in milliseconds.
func TestRunFig4(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-parallel", "1", "fig4"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "Figure 4") || !strings.Contains(got, "fig4 took") {
		t.Errorf("fig4 output unexpected:\n%s", got)
	}
}

func TestRunFig4CSV(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	if code := run([]string{"-csv", dir, "fig4"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.csv")); err != nil {
		t.Errorf("fig4.csv not written: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no experiments: run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage: symbiosim") {
		t.Errorf("usage not printed: %s", errb.String())
	}
	if code := run([]string{"nonsense"}, &out, &errb); code != 2 {
		t.Errorf("unknown experiment: run = %d, want 2", code)
	}
}
