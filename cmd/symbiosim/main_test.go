package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFig4 is the tiny end-to-end smoke run: fig4 is purely analytic
// (M/M/c curves), so it exercises flag parsing, the scenario registry
// and the output path in milliseconds.
func TestRunFig4(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-parallel", "1", "run", "fig4"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "Figure 4") || !strings.Contains(got, "fig4 took") {
		t.Errorf("fig4 output unexpected:\n%s", got)
	}
}

func TestRunFig4CSV(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-csv", dir, "run", "fig4"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4.csv")); err != nil {
		t.Errorf("fig4.csv not written: %v", err)
	}
}

// TestList pins the registry surface the CLI exposes: every paper
// experiment plus the extension scenarios, one per line with a
// description.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"list"}, &out, &errb); code != 0 {
		t.Fatalf("list = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, name := range []string{
		"table1", "fig1", "fig2", "fig3", "table2", "n8", "fairness",
		"fig4", "fig5", "fig6", "uarch", "makespan", "farm", "online",
		"hetfarm", "burst", "slo",
	} {
		if !strings.Contains(got, name+" ") && !strings.Contains(got, name+"\n") {
			t.Errorf("list output missing scenario %q:\n%s", name, got)
		}
	}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		if len(strings.Fields(l)) < 2 {
			t.Errorf("list line %q has no description", l)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Errorf("no arguments: run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage: symbiosim") {
		t.Errorf("usage not printed: %s", errb.String())
	}
	errb.Reset()
	if code := run(context.Background(), []string{"nonsense"}, &out, &errb); code != 2 {
		t.Errorf("unknown command: run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown command") {
		t.Errorf("unknown command not reported: %s", errb.String())
	}
	errb.Reset()
	if code := run(context.Background(), []string{"run"}, &out, &errb); code != 2 {
		t.Errorf("run without scenarios: run = %d, want 2", code)
	}
	errb.Reset()
	if code := run(context.Background(), []string{"run", "nonsense"}, &out, &errb); code != 2 {
		t.Errorf("unknown scenario: run = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown scenario") {
		t.Errorf("unknown scenario not reported: %s", errb.String())
	}
	// Engine knobs are validated up front: negative geometry is a usage
	// error before any scenario runs.
	for _, bad := range [][]string{
		{"-parallel", "0", "run", "fig4"},
		{"-parallel", "-3", "run", "fig4"},
		{"-slab", "-1", "run", "megafarm"},
		{"-slab", "NaN", "run", "megafarm"},
	} {
		errb.Reset()
		if code := run(context.Background(), bad, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr: %s", bad, code, errb.String())
		}
	}
}

// TestRunCancelledNoPartialCSV pins the graceful-shutdown satellite on
// the scenario runner: a cancelled context aborts the scenario with a
// non-zero exit, reports the interruption, and writes no partial CSV.
func TestRunCancelledNoPartialCSV(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	code := run(ctx, []string{"-csv", dir, "run", "fig4"}, &out, &errb)
	if code == 0 {
		t.Fatalf("cancelled run = 0, want non-zero; stdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Errorf("stderr does not report the interruption:\n%s", errb.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("cancelled run left %s behind", e.Name())
	}
}
