// This file holds the resultdb-facing subcommands: diff, bench-record,
// resultdb (list/show) and perfgate. They are thin shells over
// internal/resultdb — reference resolution, record construction and exit
// codes live here; comparison and storage semantics live in the library.

package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"symbiosched/internal/resultdb"
	"symbiosched/internal/scenario"
)

// defaultDB is where the resultdb subcommands look for records unless
// -db says otherwise.
const defaultDB = "resultdb"

// defaultGateBenches are the hot-path benchmarks the perf gate pins by
// default: the deepest Select decision paths. BenchmarkCalibration rides
// along in every record as the machine-speed reference the gate
// normalises by; it is never gated itself.
const defaultGateBenches = "BenchmarkSchedulerSelect/MAXIT/depth=32,BenchmarkSchedulerSelect/SRPT/depth=32"

// currentCommit best-effort identifies the commit a record belongs to:
// the SYMBIOSIM_COMMIT / GITHUB_SHA environment (CI), else the .git HEAD
// resolved by hand (no git subprocess, so records work in bare
// containers), else "unknown".
func currentCommit() string {
	for _, k := range []string{"SYMBIOSIM_COMMIT", "GITHUB_SHA"} {
		if v := os.Getenv(k); v != "" {
			return v
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		return "unknown"
	}
	for {
		if c := commitFromGitDir(filepath.Join(dir, ".git")); c != "" {
			return c
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "unknown"
		}
		dir = parent
	}
}

// commitFromGitDir resolves HEAD inside one .git directory, following a
// symbolic ref through loose and packed refs. Empty means unresolved.
func commitFromGitDir(gitDir string) string {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	s := strings.TrimSpace(string(head))
	ref, ok := strings.CutPrefix(s, "ref: ")
	if !ok {
		return s // detached HEAD carries the hash directly
	}
	if b, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return strings.TrimSpace(string(b))
	}
	if pr, err := os.ReadFile(filepath.Join(gitDir, "packed-refs")); err == nil {
		for _, line := range strings.Split(string(pr), "\n") {
			if f := strings.Fields(line); len(f) == 2 && f[1] == ref {
				return f[0]
			}
		}
	}
	return ""
}

// configHash derives the record's config key from the result-affecting
// parts of the run configuration (FNV-64a, like the content hash).
func configHash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%s|", p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// recordTables converts scenario tables into the record's map-free
// mirrors. Tables named *_metrics are additionally mirrored into the
// record's Metrics rows, so `symbiosim diff` reports them per-metric
// rather than per-cell.
func recordTables(ts []*scenario.Table) ([]resultdb.Table, []resultdb.MetricRow) {
	var tables []resultdb.Table
	var mrows []resultdb.MetricRow
	for _, t := range ts {
		header := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			header[i] = c.Name
		}
		tables = append(tables, resultdb.Table{Name: t.Name, Header: header, Rows: t.Rows})
		if !strings.HasSuffix(t.Name, "_metrics") {
			continue
		}
		for _, row := range t.Rows {
			if len(row) == 4 {
				mrows = append(mrows, resultdb.MetricRow{Metric: row[0], Kind: row[1], Field: row[2], Value: row[3]})
			}
		}
	}
	return tables, mrows
}

// openStore opens (creating if needed) the record store at dir.
func openStore(dir string, stderr io.Writer) (*resultdb.Store, bool) {
	st, err := resultdb.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "symbiosim: %v\n", err)
		return nil, false
	}
	return st, true
}

// getByRef resolves and loads one record reference.
func getByRef(st *resultdb.Store, ref string, stderr io.Writer) (*resultdb.Record, bool) {
	name, err := st.Resolve(ref)
	if err != nil {
		fmt.Fprintf(stderr, "symbiosim: %v\n", err)
		return nil, false
	}
	rec, err := st.Get(name)
	if err != nil {
		fmt.Fprintf(stderr, "symbiosim: %v\n", err)
		return nil, false
	}
	return rec, true
}

func parseOrUsage(fs *flag.FlagSet, args []string, usage string, stderr io.Writer) (ok bool, code int) {
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s\n", usage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return false, 0
		}
		return false, 2
	}
	return true, 0
}

// runDiffCmd implements `symbiosim diff`: per-cell, per-metric and
// per-bench deltas between two stored records. Exit 0 means no deltas
// beyond tolerance, 1 means deltas, 2 means usage or lookup failure.
func runDiffCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symbiosim diff", flag.ContinueOnError)
	db := fs.String("db", defaultDB, "record store directory")
	tol := fs.Float64("tol", 0, "relative tolerance below which numeric deltas are not reported")
	if ok, code := parseOrUsage(fs, args, "symbiosim diff [-db dir] [-tol f] <ref> <ref>   (refs: latest, latest~N, name prefix)", stderr); !ok {
		return code
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	st, ok := openStore(*db, stderr)
	if !ok {
		return 2
	}
	a, ok := getByRef(st, fs.Arg(0), stderr)
	if !ok {
		return 2
	}
	b, ok := getByRef(st, fs.Arg(1), stderr)
	if !ok {
		return 2
	}
	ds := resultdb.Diff(a, b, resultdb.DiffOptions{Tol: *tol})
	fmt.Fprint(stdout, resultdb.FormatDeltas(ds))
	if len(ds) > 0 {
		return 1
	}
	return 0
}

// runBenchRecordCmd implements `symbiosim bench-record`: parse `go test
// -bench` output (stdin or -in) into a resultdb record, and optionally
// regenerate a human-readable JSON ledger next to the BENCH_*.json files.
func runBenchRecordCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symbiosim bench-record", flag.ContinueOnError)
	db := fs.String("db", defaultDB, "record store directory")
	in := fs.String("in", "-", "benchmark output file (- = stdin)")
	scen := fs.String("scenario", "bench", "scenario key to store the record under")
	note := fs.String("note", "", "free-form annotation (excluded from the content hash)")
	ledger := fs.String("ledger", "", "also write a human-readable JSON ledger to this file")
	if ok, code := parseOrUsage(fs, args, "symbiosim bench-record [-db dir] [-in file] [-scenario s] [-note s] [-ledger file] < bench-output", stderr); !ok {
		return code
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "symbiosim: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	benches, err := resultdb.ParseBench(r)
	if err != nil {
		fmt.Fprintf(stderr, "symbiosim: %v\n", err)
		return 1
	}
	if len(benches) == 0 {
		fmt.Fprintf(stderr, "symbiosim: no benchmark lines in input\n")
		return 1
	}
	rec := &resultdb.Record{
		Scenario:   *scen,
		ConfigHash: configHash("bench"),
		Commit:     currentCommit(),
		When:       time.Now().UTC().Format(time.RFC3339),
		Note:       *note,
		Benches:    benches,
	}
	st, ok := openStore(*db, stderr)
	if !ok {
		return 2
	}
	name, err := st.Put(rec)
	if err != nil {
		fmt.Fprintf(stderr, "symbiosim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "recorded %d benchmarks as %s\n", len(benches), name)
	if *ledger != "" {
		if err := writeLedger(*ledger, rec); err != nil {
			fmt.Fprintf(stderr, "symbiosim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "ledger written to %s\n", *ledger)
	}
	return 0
}

// benchLedger is the generated human-readable ledger shape — the
// machine-produced successor of the hand-written BENCH_*.json files.
type benchLedger struct {
	Date    string           `json:"date"`
	Commit  string           `json:"commit"`
	Note    string           `json:"note,omitempty"`
	Benches []resultdb.Bench `json:"benches"`
}

func writeLedger(path string, rec *resultdb.Record) error {
	b, err := json.MarshalIndent(benchLedger{
		Date: rec.When, Commit: rec.Commit, Note: rec.Note, Benches: rec.Benches,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runResultDBCmd implements `symbiosim resultdb list|show`.
func runResultDBCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symbiosim resultdb", flag.ContinueOnError)
	db := fs.String("db", defaultDB, "record store directory")
	if ok, code := parseOrUsage(fs, args, "symbiosim resultdb [-db dir] list | show <ref>", stderr); !ok {
		return code
	}
	st, ok := openStore(*db, stderr)
	if !ok {
		return 2
	}
	switch fs.Arg(0) {
	case "list":
		names, err := st.List()
		if err != nil {
			fmt.Fprintf(stderr, "symbiosim: %v\n", err)
			return 1
		}
		for _, n := range names {
			rec, err := st.Get(n)
			if err != nil {
				// A truncated or corrupt record must not hide the rest
				// of the store: warn and keep listing.
				if errors.Is(err, resultdb.ErrCorrupt) {
					fmt.Fprintf(stderr, "symbiosim: warning: skipping %v\n", err)
					continue
				}
				fmt.Fprintf(stderr, "symbiosim: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "%-20s %-8s %s  %s\n", rec.When, rec.Scenario, n, rec.Note)
		}
		return 0
	case "show":
		if fs.NArg() != 2 {
			fs.Usage()
			return 2
		}
		rec, ok := getByRef(st, fs.Arg(1), stderr)
		if !ok {
			return 2
		}
		fmt.Fprintf(stdout, "scenario: %s\nconfig:   %s\ncommit:   %s\nwhen:     %s\n",
			rec.Scenario, rec.ConfigHash, rec.Commit, rec.When)
		if rec.Note != "" {
			fmt.Fprintf(stdout, "note:     %s\n", rec.Note)
		}
		for _, t := range rec.Tables {
			fmt.Fprintf(stdout, "table %s: %d columns x %d rows\n", t.Name, len(t.Header), len(t.Rows))
		}
		if len(rec.Metrics) > 0 {
			fmt.Fprintf(stdout, "metrics: %d rows\n", len(rec.Metrics))
		}
		for _, b := range rec.Benches {
			fmt.Fprintf(stdout, "bench %-50s %12.1f ns/op\n", b.Name, b.NsPerOp)
		}
		return 0
	default:
		fs.Usage()
		return 2
	}
}

// runPerfGateCmd implements `symbiosim perfgate`: compare the pinned
// hot-path benchmarks of two records (possibly from different stores:
// -base-db holds the committed baseline, -db the fresh CI record),
// failing with exit 1 on calibration-normalised drift beyond -tol.
func runPerfGateCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symbiosim perfgate", flag.ContinueOnError)
	db := fs.String("db", defaultDB, "record store holding the current record")
	baseDB := fs.String("base-db", "", "record store holding the baseline record (default: -db)")
	tol := fs.Float64("tol", 0.10, "maximum tolerated normalised ns/op drift")
	benches := fs.String("bench", defaultGateBenches, "comma-separated benchmark names to gate")
	if ok, code := parseOrUsage(fs, args, "symbiosim perfgate [-db dir] [-base-db dir] [-tol 0.10] [-bench names] <base-ref> <cur-ref>", stderr); !ok {
		return code
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *baseDB == "" {
		*baseDB = *db
	}
	baseSt, ok := openStore(*baseDB, stderr)
	if !ok {
		return 2
	}
	curSt, ok := openStore(*db, stderr)
	if !ok {
		return 2
	}
	base, ok := getByRef(baseSt, fs.Arg(0), stderr)
	if !ok {
		return 2
	}
	cur, ok := getByRef(curSt, fs.Arg(1), stderr)
	if !ok {
		return 2
	}
	var names []string
	for _, n := range strings.Split(*benches, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	rs, err := resultdb.Gate(base, cur, names, *tol)
	if err != nil {
		fmt.Fprintf(stderr, "symbiosim: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, resultdb.FormatGate(rs, *tol))
	if resultdb.Failed(rs) {
		return 1
	}
	return 0
}
