// Command symbiosim reproduces the tables and figures of "Revisiting
// Symbiotic Job Scheduling" (Eyerman, Michaud, Rogiest; ISPASS 2015).
//
// Usage:
//
//	symbiosim [flags] <experiment> [<experiment>...]
//
// Experiments: table1, fig1, fig2, fig3, table2, n8, fairness, fig4,
// fig5, fig6, uarch, makespan, farm, online, all.
//
// -parallel bounds the worker pool of every sweep (results are identical
// at any value), -cache caches built performance databases on disk, and
// -progress reports per-sweep progress on stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"symbiosched/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symbiosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fcfsJobs = fs.Int("fcfs-jobs", 20000, "jobs per FCFS throughput simulation")
		simJobs  = fs.Int("sim-jobs", 20000, "jobs per Section VI event simulation")
		sample   = fs.Int("sample", 99, "workloads sampled for fig5/fig6/fairness (0 = all 495)")
		seed     = fs.Uint64("seed", 1, "random seed")
		csvDir   = fs.String("csv", "", "also write plottable series as CSV files into this directory")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for every sweep (results are identical at any value)")
		cacheDir = fs.String("cache", "", "cache built performance databases as gob files in this directory")
		progress = fs.Bool("progress", false, "print per-sweep progress to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: symbiosim [flags] <experiment>...\n")
		fmt.Fprintf(stderr, "experiments: %s\n", strings.Join(order, ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	cfg := exp.DefaultConfig()
	cfg.FCFSJobs = *fcfsJobs
	cfg.SimJobs = *simJobs
	cfg.SampleWorkloads = *sample
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	cfg.CacheDir = *cacheDir
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "symbiosim: -cache %s: %v\n", cfg.CacheDir, err)
			return 1
		}
	}
	if *progress {
		cfg.Progress = func(sweep string, done, total int) {
			// Print ~1%-granularity updates plus the endpoints.
			step := total / 100
			if step < 1 {
				step = 1
			}
			if done%step != 0 && done != total {
				return
			}
			fmt.Fprintf(stderr, "\r%-12s %d/%d", sweep, done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}
	env := exp.NewEnv(cfg)

	var names []string
	for _, arg := range fs.Args() {
		if arg == "all" {
			names = order
			break
		}
		names = append(names, arg)
	}
	for _, name := range names {
		drive, ok := experiments[name]
		if !ok {
			fmt.Fprintf(stderr, "symbiosim: unknown experiment %q (want one of %s)\n",
				name, strings.Join(order, ", "))
			return 2
		}
		start := time.Now()
		out, err := drive(env)
		if err != nil {
			fmt.Fprintf(stderr, "symbiosim: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprint(stdout, out)
		if *csvDir != "" {
			if err := writeCSVs(env, *csvDir, name); err != nil {
				fmt.Fprintf(stderr, "symbiosim: %s: csv: %v\n", name, err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

var order = []string{"table1", "fig1", "fig2", "fig3", "table2", "n8", "fairness", "fig4", "fig5", "fig6", "uarch", "makespan", "farm", "online"}

var experiments = map[string]func(*exp.Env) (string, error){
	"table1": func(e *exp.Env) (string, error) {
		return exp.FormatTable1(exp.Table1(e)), nil
	},
	"fig1": func(e *exp.Env) (string, error) {
		r, err := exp.Fig1(e)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"fig2": func(e *exp.Env) (string, error) {
		smt, quad, err := exp.Fig2(e)
		if err != nil {
			return "", err
		}
		return smt.Format() + quad.Format(), nil
	},
	"fig3": func(e *exp.Env) (string, error) {
		smt, quad, err := exp.Fig3(e)
		if err != nil {
			return "", err
		}
		return smt.Format() + quad.Format(), nil
	},
	"table2": func(e *exp.Env) (string, error) {
		smt, quad, err := exp.Table2(e)
		if err != nil {
			return "", err
		}
		return smt.Format() + quad.Format(), nil
	},
	"n8": func(e *exp.Env) (string, error) {
		r, err := exp.N8(e)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"fairness": func(e *exp.Env) (string, error) {
		r, err := exp.Fairness(e)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"fig4": func(e *exp.Env) (string, error) {
		r, err := exp.Fig4(e)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"fig5": func(e *exp.Env) (string, error) {
		r, err := exp.Fig5(e)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"fig6": func(e *exp.Env) (string, error) {
		r, err := exp.Fig6(e)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"uarch": func(e *exp.Env) (string, error) {
		r, err := exp.Uarch(e)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"farm": func(e *exp.Env) (string, error) {
		r, err := exp.Farm(e, exp.FarmOptions{})
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"online": func(e *exp.Env) (string, error) {
		r, err := exp.Online(e, exp.OnlineOptions{})
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	},
	"makespan": func(e *exp.Env) (string, error) {
		small, err := exp.MakespanExperiment(e, 8)
		if err != nil {
			return "", err
		}
		large, err := exp.MakespanExperiment(e, 16)
		if err != nil {
			return "", err
		}
		return small.Format() + large.Format(), nil
	},
}

// writeCSVs writes the plottable series of the named experiment under dir.
// Figures 2-4 reuse the Env's cached sweeps; figures 5/6 and makespan
// re-run their (deterministic) simulations, doubling their cost — CSV
// export is opt-in for that reason.
func writeCSVs(env *exp.Env, dir, name string) error {
	switch name {
	case "fig2":
		smt, quad, err := exp.Fig2(env)
		if err != nil {
			return err
		}
		if _, err := exp.WriteCSV(dir, exp.CSVName("fig2", "smt"), smt); err != nil {
			return err
		}
		_, err = exp.WriteCSV(dir, exp.CSVName("fig2", "quad"), quad)
		return err
	case "fig3":
		smt, quad, err := exp.Fig3(env)
		if err != nil {
			return err
		}
		if _, err := exp.WriteCSV(dir, exp.CSVName("fig3", "smt"), smt); err != nil {
			return err
		}
		_, err = exp.WriteCSV(dir, exp.CSVName("fig3", "quad"), quad)
		return err
	case "fig4":
		r, err := exp.Fig4(env)
		if err != nil {
			return err
		}
		_, err = exp.WriteCSV(dir, "fig4", r)
		return err
	case "fig5":
		r, err := exp.Fig5(env)
		if err != nil {
			return err
		}
		_, err = exp.WriteCSV(dir, "fig5", r)
		return err
	case "fig6":
		r, err := exp.Fig6(env)
		if err != nil {
			return err
		}
		_, err = exp.WriteCSV(dir, "fig6", r)
		return err
	case "makespan":
		r, err := exp.MakespanExperiment(env, 8)
		if err != nil {
			return err
		}
		_, err = exp.WriteCSV(dir, "makespan8", r)
		return err
	case "farm":
		r, err := exp.Farm(env, exp.FarmOptions{})
		if err != nil {
			return err
		}
		_, err = exp.WriteCSV(dir, "farm", r)
		return err
	case "online":
		r, err := exp.Online(env, exp.OnlineOptions{})
		if err != nil {
			return err
		}
		_, err = exp.WriteCSV(dir, "online", r)
		return err
	}
	return nil
}
