// Command symbiosim reproduces the tables and figures of "Revisiting
// Symbiotic Job Scheduling" (Eyerman, Michaud, Rogiest; ISPASS 2015) and
// runs the extension scenarios built on the same models.
//
// Usage:
//
//	symbiosim [flags] list
//	symbiosim [flags] run <scenario>... | all
//
// Scenarios come from the internal/scenario registry (see `symbiosim
// list`): the paper's table1/fig1-fig6/table2, the n8/fairness/uarch
// analyses, the makespan/farm/online extensions, and the hetfarm,
// megafarm (power-of-d dispatch on the sharded engine), burst and slo
// studies.
//
// -parallel bounds the worker pool of every sweep (results are identical
// at any value), -cache caches built performance databases on disk,
// -csv writes every scenario table as CSV, and -progress reports
// per-sweep progress on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"symbiosched/internal/exp"
	"symbiosched/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symbiosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fcfsJobs = fs.Int("fcfs-jobs", 20000, "jobs per FCFS throughput simulation")
		simJobs  = fs.Int("sim-jobs", 20000, "jobs per Section VI event simulation")
		sample   = fs.Int("sample", 99, "workloads sampled for fig5/fig6/fairness (0 = all 495)")
		seed     = fs.Uint64("seed", 1, "random seed")
		csvDir   = fs.String("csv", "", "also write every scenario table as a CSV file into this directory")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for every sweep (results are identical at any value)")
		cacheDir = fs.String("cache", "", "cache built performance databases as gob files in this directory")
		progress = fs.Bool("progress", false, "print per-sweep progress to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: symbiosim [flags] list | run <scenario>...\n")
		fmt.Fprintf(stderr, "scenarios: %s\n", strings.Join(scenario.Names(), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	switch cmd := fs.Arg(0); cmd {
	case "list":
		for _, s := range scenario.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", s.Name, s.Desc)
		}
		return 0
	case "run":
		// handled below
	default:
		fmt.Fprintf(stderr, "symbiosim: unknown command %q (want list or run)\n", cmd)
		fs.Usage()
		return 2
	}
	if fs.NArg() < 2 {
		fmt.Fprintf(stderr, "symbiosim: run wants at least one scenario name\n")
		fs.Usage()
		return 2
	}

	cfg := exp.DefaultConfig()
	cfg.FCFSJobs = *fcfsJobs
	cfg.SimJobs = *simJobs
	cfg.SampleWorkloads = *sample
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	cfg.CacheDir = *cacheDir
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "symbiosim: -cache %s: %v\n", cfg.CacheDir, err)
			return 1
		}
	}
	if *progress {
		cfg.Progress = func(sweep string, done, total int) {
			// Print ~1%-granularity updates plus the endpoints.
			step := total / 100
			if step < 1 {
				step = 1
			}
			if done%step != 0 && done != total {
				return
			}
			fmt.Fprintf(stderr, "\r%-12s %d/%d", sweep, done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}
	env := exp.NewEnv(cfg)

	var names []string
	for _, arg := range fs.Args()[1:] {
		if arg == "all" {
			names = scenario.Names()
			break
		}
		names = append(names, arg)
	}
	// Validate every name up front: a typo in the last scenario must not
	// surface only after the earlier ones spent minutes running.
	for _, name := range names {
		if _, ok := scenario.Lookup(name); !ok {
			fmt.Fprintf(stderr, "symbiosim: unknown scenario %q (want one of %s)\n",
				name, strings.Join(scenario.Names(), ", "))
			return 2
		}
	}
	for _, name := range names {
		start := time.Now()
		res, err := exp.RunScenario(context.Background(), env, name)
		if err != nil {
			fmt.Fprintf(stderr, "symbiosim: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprint(stdout, res.Text)
		if *csvDir != "" {
			for _, t := range res.Tables {
				if err := t.WriteFile(*csvDir); err != nil {
					fmt.Fprintf(stderr, "symbiosim: %s: csv: %v\n", name, err)
					return 1
				}
			}
		}
		fmt.Fprintf(stdout, "(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
