// Command symbiosim reproduces the tables and figures of "Revisiting
// Symbiotic Job Scheduling" (Eyerman, Michaud, Rogiest; ISPASS 2015) and
// runs the extension scenarios built on the same models.
//
// Usage:
//
//	symbiosim [flags] list
//	symbiosim [flags] run <scenario>... | all
//	symbiosim diff [-db dir] [-tol f] <ref> <ref>
//	symbiosim bench-record [-db dir] [-in file] [-ledger file]
//	symbiosim resultdb [-db dir] list | show <ref>
//	symbiosim perfgate [-db dir] [-base-db dir] [-tol 0.10] <base> <cur>
//	symbiosim trend [-db dir] [-scenario bench] [-bench substr] [-metric substr] [-last N] [-csv dir]
//
// Scenarios come from the internal/scenario registry (see `symbiosim
// list`): the paper's table1/fig1-fig6/table2, the n8/fairness/uarch
// analyses, the makespan/farm/online extensions, and the hetfarm,
// megafarm (power-of-d dispatch on the sharded engine), burst and slo
// studies.
//
// -parallel bounds the worker pool of every sweep (results are identical
// at any value), -slab caps the sharded scenarios' slab length in
// simulated time (0 = adaptive; results are likewise identical at any
// value), -cache caches built performance databases on disk,
// -csv writes every scenario table as CSV, and -progress reports
// per-sweep progress on stderr. -metrics turns on the internal/metrics
// instrumentation (scenarios that support it emit an extra *_metrics
// table; simulation results are byte-identical either way), -record
// stores each scenario's tables and metrics as a content-addressed
// record in the given resultdb directory, and -cpuprofile/-memprofile
// write runtime/pprof profiles of the run. The diff, bench-record,
// resultdb, perfgate and trend subcommands operate on the record store;
// see their -h output and internal/resultdb.
//
// symbiosim exits non-zero on SIGINT/SIGTERM: the in-flight scenario is
// cancelled and its partial work discarded. Scenario tables are written
// through a temp file and rename, so an interrupted run never leaves a
// partial CSV behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"symbiosched/internal/exp"
	"symbiosched/internal/profiling"
	"symbiosched/internal/resultdb"
	"symbiosched/internal/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	// The resultdb subcommands carry their own flag sets; dispatch them
	// before the scenario-runner flags are parsed.
	if len(args) > 0 {
		switch args[0] {
		case "diff":
			return runDiffCmd(args[1:], stdout, stderr)
		case "bench-record":
			return runBenchRecordCmd(args[1:], stdout, stderr)
		case "resultdb":
			return runResultDBCmd(args[1:], stdout, stderr)
		case "perfgate":
			return runPerfGateCmd(args[1:], stdout, stderr)
		case "trend":
			return runTrendCmd(args[1:], stdout, stderr)
		}
	}

	fs := flag.NewFlagSet("symbiosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fcfsJobs = fs.Int("fcfs-jobs", 20000, "jobs per FCFS throughput simulation")
		simJobs  = fs.Int("sim-jobs", 20000, "jobs per Section VI event simulation")
		sample   = fs.Int("sample", 99, "workloads sampled for fig5/fig6/fairness (0 = all 495)")
		seed     = fs.Uint64("seed", 1, "random seed")
		csvDir   = fs.String("csv", "", "also write every scenario table as a CSV file into this directory")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for every sweep (results are identical at any value)")
		slab     = fs.Float64("slab", 0, "slab-length cap for the sharded scenarios (0 = adaptive; results are identical at any value)")
		cacheDir = fs.String("cache", "", "cache built performance databases as gob files in this directory")
		progress = fs.Bool("progress", false, "print per-sweep progress to stderr")
		metricsF = fs.Bool("metrics", false, "collect internal instrumentation (extra *_metrics tables; results unchanged)")
		record   = fs.String("record", "", "store each scenario's tables and metrics as a record in this resultdb directory")
		note     = fs.String("note", "", "free-form annotation carried on -record records")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a final heap profile of the run to this file")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: symbiosim [flags] list | run <scenario>... | diff | bench-record | resultdb | perfgate | trend\n")
		fmt.Fprintf(stderr, "scenarios: %s\n", strings.Join(scenario.Names(), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "symbiosim: -parallel wants a worker count >= 1, got %d\n", *parallel)
		return 2
	}
	if *slab < 0 || math.IsNaN(*slab) {
		fmt.Fprintf(stderr, "symbiosim: -slab wants a duration >= 0 (0 = adaptive), got %v\n", *slab)
		return 2
	}

	switch cmd := fs.Arg(0); cmd {
	case "list":
		for _, s := range scenario.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", s.Name, s.Desc)
		}
		return 0
	case "run":
		// handled below
	default:
		fmt.Fprintf(stderr, "symbiosim: unknown command %q (want list, run, diff, bench-record, resultdb, perfgate or trend)\n", cmd)
		fs.Usage()
		return 2
	}
	if fs.NArg() < 2 {
		fmt.Fprintf(stderr, "symbiosim: run wants at least one scenario name\n")
		fs.Usage()
		return 2
	}

	cfg := exp.DefaultConfig()
	cfg.FCFSJobs = *fcfsJobs
	cfg.SimJobs = *simJobs
	cfg.SampleWorkloads = *sample
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	cfg.Slab = *slab
	cfg.CacheDir = *cacheDir
	cfg.Metrics = *metricsF
	if cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "symbiosim: -cache %s: %v\n", cfg.CacheDir, err)
			return 1
		}
	}
	if *progress {
		cfg.Progress = func(sweep string, done, total int) {
			// Print ~1%-granularity updates plus the endpoints.
			step := total / 100
			if step < 1 {
				step = 1
			}
			if done%step != 0 && done != total {
				return
			}
			fmt.Fprintf(stderr, "\r%-12s %d/%d", sweep, done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}
	env := exp.NewEnv(cfg)

	var names []string
	for _, arg := range fs.Args()[1:] {
		if arg == "all" {
			names = scenario.Names()
			break
		}
		names = append(names, arg)
	}
	// Validate every name up front: a typo in the last scenario must not
	// surface only after the earlier ones spent minutes running.
	for _, name := range names {
		if _, ok := scenario.Lookup(name); !ok {
			fmt.Fprintf(stderr, "symbiosim: unknown scenario %q (want one of %s)\n",
				name, strings.Join(scenario.Names(), ", "))
			return 2
		}
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(stderr, "symbiosim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "symbiosim: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	var store *resultdb.Store
	if *record != "" {
		var ok bool
		if store, ok = openStore(*record, stderr); !ok {
			return 1
		}
	}
	// The record key hashes the result-affecting configuration;
	// -parallel and -cache are excluded because results are identical at
	// any value.
	cfgHash := configHash("run",
		fmt.Sprint(*fcfsJobs), fmt.Sprint(*simJobs), fmt.Sprint(*sample),
		fmt.Sprint(*seed), fmt.Sprint(*metricsF))

	for _, name := range names {
		start := time.Now()
		res, err := exp.RunScenario(ctx, env, name)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(stderr, "symbiosim: %s: interrupted, partial results discarded: %v\n", name, err)
			} else {
				fmt.Fprintf(stderr, "symbiosim: %s: %v\n", name, err)
			}
			return 1
		}
		fmt.Fprint(stdout, res.Text)
		if *csvDir != "" {
			for _, t := range res.Tables {
				if err := t.WriteFile(*csvDir); err != nil {
					fmt.Fprintf(stderr, "symbiosim: %s: csv: %v\n", name, err)
					return 1
				}
			}
		}
		if store != nil {
			tables, mrows := recordTables(res.Tables)
			rec := &resultdb.Record{
				Scenario:   name,
				ConfigHash: cfgHash,
				Commit:     currentCommit(),
				When:       time.Now().UTC().Format(time.RFC3339),
				Note:       *note,
				Tables:     tables,
				Metrics:    mrows,
			}
			recName, err := store.Put(rec)
			if err != nil {
				fmt.Fprintf(stderr, "symbiosim: %s: record: %v\n", name, err)
				return 1
			}
			fmt.Fprintf(stdout, "recorded as %s\n", recName)
		}
		fmt.Fprintf(stdout, "(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
