package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestProfileSmoke pins the satellite contract: -cpuprofile and
// -memprofile produce non-empty pprof files for a normal run.
func TestProfileSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-cpuprofile", cpu, "-memprofile", mem, "run", "fig4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestRunRecord stores a scenario run in a resultdb store and reads it
// back through the resultdb and diff subcommands: an identical pair
// reports no deltas and exits 0.
func TestRunRecord(t *testing.T) {
	db := t.TempDir()
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-record", db, "-note", "smoke", "run", "fig4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run -record = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "recorded as fig4_") {
		t.Fatalf("record confirmation missing:\n%s", out.String())
	}

	out.Reset()
	if code := run(context.Background(), []string{"resultdb", "-db", db, "list"}, &out, &errb); code != 0 {
		t.Fatalf("resultdb list = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fig4") || !strings.Contains(out.String(), "smoke") {
		t.Errorf("list output unexpected:\n%s", out.String())
	}

	out.Reset()
	if code := run(context.Background(), []string{"resultdb", "-db", db, "show", "latest"}, &out, &errb); code != 0 {
		t.Fatalf("resultdb show = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scenario: fig4") || !strings.Contains(out.String(), "table fig4:") {
		t.Errorf("show output unexpected:\n%s", out.String())
	}

	out.Reset()
	if code := run(context.Background(), []string{"diff", "-db", db, "latest", "latest"}, &out, &errb); code != 0 {
		t.Fatalf("diff identical = %d, stderr: %s", code, errb.String())
	}
	if out.String() != "no deltas\n" {
		t.Errorf("identical diff output = %q", out.String())
	}
}

// benchOutput fabricates one `go test -bench` result block with the
// given MAXIT depth=32 ns/op, calibration held fixed so perfgate's
// normalisation is a no-op in this test.
func benchOutput(maxitNs string) string {
	return "goos: linux\n" +
		"BenchmarkSchedulerSelect/MAXIT/depth=32-8 \t 100 \t " + maxitNs + " ns/op \t 0 B/op \t 0 allocs/op\n" +
		"BenchmarkSchedulerSelect/SRPT/depth=32-8 \t 100 \t 1300 ns/op \t 0 B/op \t 0 allocs/op\n" +
		"BenchmarkCalibration-8 \t 100 \t 2000 ns/op\n" +
		"PASS\n"
}

// TestBenchRecordDiffAndGate drives the full perf-trajectory loop at the
// CLI level: record a baseline and a 25%-regressed run, see the diff,
// and watch perfgate fail the regression but pass the identical pair.
func TestBenchRecordDiffAndGate(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db")
	base := filepath.Join(dir, "base.txt")
	slow := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(base, []byte(benchOutput("100")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(slow, []byte(benchOutput("125")), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	ledger := filepath.Join(dir, "ledger.json")
	if code := run(context.Background(), []string{"bench-record", "-db", db, "-in", base, "-ledger", ledger}, &out, &errb); code != 0 {
		t.Fatalf("bench-record base = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "recorded 3 benchmarks") {
		t.Fatalf("bench-record output unexpected:\n%s", out.String())
	}
	data, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatalf("ledger not written: %v", err)
	}
	if !strings.Contains(string(data), "BenchmarkCalibration") {
		t.Errorf("ledger missing calibration entry:\n%s", data)
	}
	// Make the baseline strictly older so "latest"/"latest~1" order is
	// independent of filesystem timestamp granularity.
	entries, err := os.ReadDir(db)
	if err != nil || len(entries) != 1 {
		t.Fatalf("store after first record: %v, %d entries", err, len(entries))
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(db, entries[0].Name()), old, old); err != nil {
		t.Fatal(err)
	}
	if code := run(context.Background(), []string{"bench-record", "-db", db, "-in", slow}, &out, &errb); code != 0 {
		t.Fatalf("bench-record slow = %d, stderr: %s", code, errb.String())
	}

	// The regressed record differs from the baseline; diff says so and
	// exits 1, but a 30% tolerance swallows the 25% drift.
	out.Reset()
	if code := run(context.Background(), []string{"diff", "-db", db, "latest~1", "latest"}, &out, &errb); code != 1 {
		t.Fatalf("diff regressed = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "MAXIT/depth=32 ns/op") {
		t.Errorf("diff output missing the regressed bench:\n%s", out.String())
	}
	if code := run(context.Background(), []string{"diff", "-db", db, "-tol", "0.30", "latest~1", "latest"}, &out, &errb); code != 0 {
		t.Errorf("diff at 30%% tolerance = %d, want 0", code)
	}

	// perfgate: identical pair passes, the 25% regression fails the
	// default 10% gate, and the report names the failure.
	out.Reset()
	if code := run(context.Background(), []string{"perfgate", "-db", db, "latest~1", "latest~1"}, &out, &errb); code != 0 {
		t.Fatalf("perfgate identical = %d, stderr: %s", code, errb.String())
	}
	out.Reset()
	if code := run(context.Background(), []string{"perfgate", "-db", db, "latest~1", "latest"}, &out, &errb); code != 1 {
		t.Fatalf("perfgate regressed = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "+25.0%") {
		t.Errorf("gate report unexpected:\n%s", out.String())
	}
	// Cross-store comparison: -base-db may point at a separate baseline
	// store, the shape CI uses with a committed baseline.
	out.Reset()
	if code := run(context.Background(), []string{"perfgate", "-db", db, "-base-db", db, "latest~1", "latest"}, &out, &errb); code != 1 {
		t.Errorf("perfgate -base-db = %d, want 1", code)
	}
}

// TestSubcommandUsageErrors pins the exit-2 contract on malformed
// subcommand invocations.
func TestSubcommandUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"diff", "onlyone"}, &out, &errb); code != 2 {
		t.Errorf("diff with one ref = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"perfgate"}, &out, &errb); code != 2 {
		t.Errorf("perfgate without refs = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"resultdb", "-db", t.TempDir(), "bogus"}, &out, &errb); code != 2 {
		t.Errorf("resultdb bogus verb = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"diff", "-db", t.TempDir(), "latest", "latest"}, &out, &errb); code != 2 {
		t.Errorf("diff over empty store = %d, want 2", code)
	}
}

// TestResultDBListSkipsCorrupt pins the lenient-loading satellite at the
// CLI level: a truncated record in the store is skipped with a warning,
// and `resultdb list` still lists the intact records and exits 0.
func TestResultDBListSkipsCorrupt(t *testing.T) {
	db := t.TempDir()
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-record", db, "run", "fig4"}, &out, &errb); code != 0 {
		t.Fatalf("run -record = %d, stderr: %s", code, errb.String())
	}

	// Damage a copy of the stored record: half a gob stream under a
	// fresh .gob name, as a crashed writer or disk fault would leave.
	entries, err := os.ReadDir(db)
	if err != nil {
		t.Fatal(err)
	}
	var good string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".gob") {
			good = e.Name()
		}
	}
	if good == "" {
		t.Fatal("no record written")
	}
	data, err := os.ReadFile(filepath.Join(db, good))
	if err != nil {
		t.Fatal(err)
	}
	bad := "fig4_bad_00000000_0000000000000000.gob"
	if err := os.WriteFile(filepath.Join(db, bad), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errb.Reset()
	if code := run(context.Background(), []string{"resultdb", "-db", db, "list"}, &out, &errb); code != 0 {
		t.Fatalf("resultdb list with corrupt record = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), good) {
		t.Errorf("intact record %s missing from list:\n%s", good, out.String())
	}
	if strings.Contains(out.String(), bad) {
		t.Errorf("corrupt record %s listed as readable:\n%s", bad, out.String())
	}
	if !strings.Contains(errb.String(), "warning") || !strings.Contains(errb.String(), bad) {
		t.Errorf("no skip warning naming %s on stderr:\n%s", bad, errb.String())
	}
}
