package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"symbiosched/internal/resultdb"
	"symbiosched/internal/scenario"
)

// trendStore builds a store with three synthetic bench records at
// strictly increasing mtimes (oldest commit aaaa, newest cccc), plus
// one record under another scenario that trend must ignore.
func trendStore(t *testing.T) string {
	t.Helper()
	db := t.TempDir()
	st, err := resultdb.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	put := func(scen, commit string, ns, util float64, age time.Duration) {
		rec := &resultdb.Record{
			Scenario:   scen,
			ConfigHash: "cfg0",
			Commit:     commit,
			When:       base.Add(age).UTC().Format(time.RFC3339),
			Benches: []resultdb.Bench{
				{Name: "BenchmarkFarmSharded/n=8192", Runs: 3, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1},
			},
			Metrics: []resultdb.MetricRow{
				{Metric: "farm", Kind: "gauge", Field: "util", Value: scenario.FormatFloat(util)},
				{Metric: "farm", Kind: "gauge", Field: "note", Value: "text"},
			},
		}
		name, err := st.Put(rec)
		if err != nil {
			t.Fatal(err)
		}
		when := base.Add(age)
		if err := os.Chtimes(filepath.Join(db, name), when, when); err != nil {
			t.Fatal(err)
		}
	}
	put("bench", "aaaa1111", 100, 0.50, 0)
	put("bench", "bbbb2222", 150, 0.60, time.Second)
	put("bench", "cccc3333", 125, 0.55, 2*time.Second)
	put("other", "dddd4444", 999, 0.99, 3*time.Second)
	return db
}

// TestTrendSmoke drives the trend subcommand over three synthetic
// records: oldest-first walk, one series per bench and numeric metric,
// a sparkline per series, and the long-format CSV with -csv.
func TestTrendSmoke(t *testing.T) {
	db := trendStore(t)
	csv := t.TempDir()
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"trend", "-db", db, "-csv", csv}, &out, &errb); code != 0 {
		t.Fatalf("trend = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "3 records") {
		t.Errorf("trend did not count 3 records:\n%s", got)
	}
	// Oldest first: aaaa before bbbb before cccc, dddd's scenario excluded.
	ia, ib, ic := strings.Index(got, "aaaa1111"), strings.Index(got, "bbbb2222"), strings.Index(got, "cccc3333")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("records not in oldest-first order (%d %d %d):\n%s", ia, ib, ic, got)
	}
	if strings.Contains(got, "dddd4444") {
		t.Errorf("foreign scenario leaked into the walk:\n%s", got)
	}
	if !strings.Contains(got, "bench BenchmarkFarmSharded/n=8192") ||
		!strings.Contains(got, "metric farm/util") {
		t.Errorf("expected series missing:\n%s", got)
	}
	if strings.Contains(got, "farm/note") {
		t.Errorf("non-numeric metric grew a series:\n%s", got)
	}
	// ns/op went 100 -> 150 -> 125: min, max, then mid — the sparkline
	// must open at the bottom glyph and peak in the middle.
	if !strings.Contains(got, "▁█") {
		t.Errorf("sparkline shape missing (want low-then-high run):\n%s", got)
	}

	data, err := os.ReadFile(filepath.Join(csv, "trend_bench.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 3 bench points + 3 metric points.
	if len(lines) != 7 {
		t.Fatalf("trend CSV has %d lines, want 7:\n%s", len(lines), data)
	}
	if lines[0] != "seq,commit,when,series,value" {
		t.Errorf("trend CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "0,aaaa1111") || !strings.Contains(lines[1], ",100") {
		t.Errorf("first bench row unexpected: %q", lines[1])
	}
	if !strings.Contains(lines[3], "2,cccc3333") || !strings.Contains(lines[3], ",125") {
		t.Errorf("last bench row unexpected: %q", lines[3])
	}
}

// TestTrendFiltersAndErrors pins -last, the series filters, and the
// exit-code contract (1 = nothing to show, 2 = usage).
func TestTrendFiltersAndErrors(t *testing.T) {
	db := trendStore(t)
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"trend", "-db", db, "-last", "2", "-metric", "util"}, &out, &errb); code != 0 {
		t.Fatalf("trend -last 2 = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if strings.Contains(got, "aaaa1111") || !strings.Contains(got, "bbbb2222") {
		t.Errorf("-last 2 should keep only the two newest records:\n%s", got)
	}
	if !strings.Contains(got, "2 records") {
		t.Errorf("-last 2 record count wrong:\n%s", got)
	}

	out.Reset()
	if code := run(context.Background(), []string{"trend", "-db", db, "-bench", "NoSuch", "-metric", "NoSuch"}, &out, &errb); code != 1 {
		t.Errorf("trend with dead filters = %d, want 1", code)
	}
	if code := run(context.Background(), []string{"trend", "-db", t.TempDir(), "-scenario", "bench"}, &out, &errb); code != 1 {
		t.Errorf("trend over empty store = %d, want 1", code)
	}
	if code := run(context.Background(), []string{"trend", "-db", db, "-last", "-1"}, &out, &errb); code != 2 {
		t.Errorf("trend -last -1 = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"trend", "-db", db, "stray"}, &out, &errb); code != 2 {
		t.Errorf("trend with positional arg = %d, want 2", code)
	}
}
