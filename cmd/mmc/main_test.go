package main

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	// The paper's example: M/M/4 at lambda=3.5, mu=1 -> W~2.5; +3% mu
	// -> W~2.1, a ~16% reduction.
	for _, want := range []string{"M/M/4", "W=2.476", "W=2.081", "turnaround -15.9%"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCustomQueueAndFlagError(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-lambda", "0.5", "-mu", "1", "-c", "1", "-improve", "0"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	// M/M/1 at rho=0.5: W = 1/(mu-lambda) = 2.
	if !strings.Contains(out.String(), "W=2.000") {
		t.Errorf("M/M/1 output wrong:\n%s", out.String())
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: run = %d, want 2", code)
	}
}
