// Command mmc is an M/M/c queueing calculator for the Section VI analysis:
// it prints the waiting probability, mean jobs in system and mean
// turnaround for a given arrival rate, service rate and server count, and
// shows the effect of a relative service-rate improvement (the paper's
// "3% more throughput -> 16% less turnaround" argument).
//
// Usage:
//
//	mmc -lambda 3.5 -mu 1 -c 4 [-improve 0.03]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"symbiosched/internal/queueing"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lambda := fs.Float64("lambda", 3.5, "arrival rate (jobs per unit time)")
	mu := fs.Float64("mu", 1.0, "per-server service rate")
	c := fs.Int("c", 4, "number of servers")
	improve := fs.Float64("improve", 0.03, "relative service-rate improvement to compare against")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	show := func(q queueing.MMC) (w float64, err error) {
		pw, err := q.ErlangC()
		if err != nil {
			return 0, err
		}
		l, err := q.MeanJobs()
		if err != nil {
			return 0, err
		}
		w, err = q.MeanTurnaround()
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "M/M/%d lambda=%.3f mu=%.3f: rho=%.3f  P(wait)=%.3f  L=%.2f jobs  W=%.3f\n",
			q.C, q.Lambda, q.Mu, q.Utilisation(), pw, l, w)
		return w, nil
	}
	base, err := show(queueing.MMC{Lambda: *lambda, Mu: *mu, C: *c})
	if err != nil {
		fmt.Fprintf(stderr, "mmc: %v\n", err)
		return 1
	}
	if *improve > 0 {
		better, err := show(queueing.MMC{Lambda: *lambda, Mu: *mu * (1 + *improve), C: *c})
		if err != nil {
			fmt.Fprintf(stderr, "mmc: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "service rate %+.1f%%  ->  turnaround %+.1f%%\n",
			100**improve, 100*(better/base-1))
	}
	return 0
}
