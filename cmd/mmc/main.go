// Command mmc is an M/M/c queueing calculator for the Section VI analysis:
// it prints the waiting probability, mean jobs in system and mean
// turnaround for a given arrival rate, service rate and server count, and
// shows the effect of a relative service-rate improvement (the paper's
// "3% more throughput -> 16% less turnaround" argument).
//
// Usage:
//
//	mmc -lambda 3.5 -mu 1 -c 4 [-improve 0.03]
package main

import (
	"flag"
	"fmt"
	"os"

	"symbiosched/internal/queueing"
)

func main() {
	lambda := flag.Float64("lambda", 3.5, "arrival rate (jobs per unit time)")
	mu := flag.Float64("mu", 1.0, "per-server service rate")
	c := flag.Int("c", 4, "number of servers")
	improve := flag.Float64("improve", 0.03, "relative service-rate improvement to compare against")
	flag.Parse()

	show := func(q queueing.MMC) (w float64) {
		pw, err := q.ErlangC()
		fail(err)
		l, err := q.MeanJobs()
		fail(err)
		w, err = q.MeanTurnaround()
		fail(err)
		fmt.Printf("M/M/%d lambda=%.3f mu=%.3f: rho=%.3f  P(wait)=%.3f  L=%.2f jobs  W=%.3f\n",
			q.C, q.Lambda, q.Mu, q.Utilisation(), pw, l, w)
		return w
	}
	base := show(queueing.MMC{Lambda: *lambda, Mu: *mu, C: *c})
	if *improve > 0 {
		better := show(queueing.MMC{Lambda: *lambda, Mu: *mu * (1 + *improve), C: *c})
		fmt.Printf("service rate %+.1f%%  ->  turnaround %+.1f%%\n",
			100**improve, 100*(better/base-1))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmc: %v\n", err)
		os.Exit(1)
	}
}
