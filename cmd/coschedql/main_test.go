package main

import (
	"strings"
	"testing"

	"symbiosched/internal/program"
)

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(program.IDs()) {
		t.Errorf("-list printed %d benchmarks, want %d", len(lines), len(program.IDs()))
	}
}

func TestRunQuery(t *testing.T) {
	var out, errb strings.Builder
	ids := program.IDs()
	if code := run([]string{ids[0], ids[1]}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	// Both machine configurations, both benchmarks, and the throughput line.
	for _, want := range []string{ids[0], ids[1], "instantaneous throughput"} {
		if strings.Count(got, want) < 2 {
			t.Errorf("output mentions %q %d times, want >= 2 (both machines):\n%s",
				want, strings.Count(got, want), got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: run = %d, want 2", code)
	}
	if code := run([]string{"nonexistent.bench"}, &out, &errb); code != 2 {
		t.Errorf("unknown benchmark: run = %d, want 2", code)
	}
}
