// Command coschedql queries per-coschedule performance: give it up to K
// benchmark IDs and it prints each job's IPC, WIPC (weighted speedup
// component) and the coschedule's instantaneous throughput on both machine
// configurations.
//
// Usage:
//
//	coschedql [-list] <benchmark> [<benchmark>...]
//	coschedql hmmer.nph3 mcf.ref libquantum.ref calculix.ref
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coschedql", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the benchmark suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: coschedql [-list] <benchmark>...\nbenchmarks: %s\n",
			strings.Join(program.IDs(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, id := range program.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	suite := program.Suite()
	var types []int
	for _, arg := range fs.Args() {
		_, idx, ok := program.ByID(arg)
		if !ok {
			fmt.Fprintf(stderr, "coschedql: unknown benchmark %q (try -list)\n", arg)
			return 2
		}
		types = append(types, idx)
	}
	cos := workload.NewCoschedule(types...)

	for _, build := range []func() *perfdb.Table{
		func() *perfdb.Table { return perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, suite) },
		func() *perfdb.Table {
			return perfdb.Build(perfdb.MulticoreModel{Machine: uarch.DefaultMulticore()}, suite)
		},
	} {
		t := build()
		if len(cos) > t.K() {
			fmt.Fprintf(stderr, "coschedql: %d jobs exceed the machine's %d contexts\n", len(cos), t.K())
			return 2
		}
		e := t.Entry(cos)
		fmt.Fprintf(stdout, "%s:\n", t.Name())
		fmt.Fprintf(stdout, "  %-22s %8s %8s %8s\n", "job", "IPC", "soloIPC", "WIPC")
		for _, b := range cos.Types() {
			fmt.Fprintf(stdout, "  %-22s %8.3f %8.3f %8.3f", suite[b].ID(), t.JobIPC(cos, b), t.Solo[b], t.JobWIPC(cos, b))
			if n := cos.Count(b); n > 1 {
				fmt.Fprintf(stdout, "   (x%d)", n)
			}
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "  instantaneous throughput it(s) = %.3f WIPC (heterogeneity %d)\n\n",
			e.InstTP, cos.Heterogeneity())
	}
	return 0
}
