// Command coschedql queries per-coschedule performance: give it up to K
// benchmark IDs and it prints each job's IPC, WIPC (weighted speedup
// component) and the coschedule's instantaneous throughput on both machine
// configurations.
//
// Usage:
//
//	coschedql [-list] <benchmark> [<benchmark>...]
//	coschedql hmmer.nph3 mcf.ref libquantum.ref calculix.ref
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list the benchmark suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: coschedql [-list] <benchmark>...\nbenchmarks: %s\n",
			strings.Join(program.IDs(), ", "))
	}
	flag.Parse()
	if *list {
		for _, id := range program.IDs() {
			fmt.Println(id)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	suite := program.Suite()
	var types []int
	for _, arg := range flag.Args() {
		_, idx, ok := program.ByID(arg)
		if !ok {
			fmt.Fprintf(os.Stderr, "coschedql: unknown benchmark %q (try -list)\n", arg)
			os.Exit(2)
		}
		types = append(types, idx)
	}
	cos := workload.NewCoschedule(types...)

	for _, build := range []func() *perfdb.Table{
		func() *perfdb.Table { return perfdb.Build(perfdb.SMTModel{Machine: uarch.DefaultSMT()}, suite) },
		func() *perfdb.Table {
			return perfdb.Build(perfdb.MulticoreModel{Machine: uarch.DefaultMulticore()}, suite)
		},
	} {
		t := build()
		if len(cos) > t.K() {
			fmt.Fprintf(os.Stderr, "coschedql: %d jobs exceed the machine's %d contexts\n", len(cos), t.K())
			os.Exit(2)
		}
		e := t.Entry(cos)
		fmt.Printf("%s:\n", t.Name())
		fmt.Printf("  %-22s %8s %8s %8s\n", "job", "IPC", "soloIPC", "WIPC")
		for _, b := range cos.Types() {
			fmt.Printf("  %-22s %8.3f %8.3f %8.3f", suite[b].ID(), t.JobIPC(cos, b), t.Solo[b], t.JobWIPC(cos, b))
			if n := cos.Count(b); n > 1 {
				fmt.Printf("   (x%d)", n)
			}
			fmt.Println()
		}
		fmt.Printf("  instantaneous throughput it(s) = %.3f WIPC (heterogeneity %d)\n\n",
			e.InstTP, cos.Heterogeneity())
	}
}
