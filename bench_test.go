// Benchmarks: one per table and figure of the paper (regenerating the
// corresponding result via the internal/exp drivers) plus ablations of the
// design choices called out in DESIGN.md. Metrics of interest are attached
// with b.ReportMetric so `go test -bench . -benchmem` prints the same
// quantities the paper reports next to the usual ns/op.
//
// The per-figure benches run on a reduced setup (6-benchmark suite, small
// simulations) so the whole suite completes in a couple of minutes; the
// cmd/symbiosim binary runs the full-size experiments.
package symbiosched_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"symbiosched/internal/cachemodel"
	"symbiosched/internal/core"
	"symbiosched/internal/cyclesim"
	"symbiosched/internal/eventsim"
	"symbiosched/internal/exp"
	"symbiosched/internal/lp"
	"symbiosched/internal/membus"
	"symbiosched/internal/perfdb"
	"symbiosched/internal/program"
	"symbiosched/internal/sched"
	"symbiosched/internal/stats"
	"symbiosched/internal/uarch"
	"symbiosched/internal/workload"
)

var (
	benchOnce sync.Once
	benchEnv  *exp.Env
)

func env() *exp.Env {
	benchOnce.Do(func() {
		suite := program.Suite()
		cfg := exp.DefaultConfig()
		cfg.Suite = []program.Profile{suite[1], suite[3], suite[5], suite[6], suite[7], suite[11]}
		cfg.FCFSJobs = 5000
		cfg.SimJobs = 3000
		cfg.SampleWorkloads = 5
		benchEnv = exp.NewEnv(cfg)
	})
	return benchEnv
}

// ---- One benchmark per table/figure. ----

func BenchmarkTable1Profiles(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		rows := exp.Table1(e)
		if len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1Variability(b *testing.B) {
	e := env()
	var last *exp.Fig1Result
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig1(e)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(100*last.SMT.AvgTP.AvgBest, "optGain%")
	b.ReportMetric(100*last.SMT.JobIPC.Variability(), "jobIPCvar%")
}

func BenchmarkFig2Scatter(b *testing.B) {
	e := env()
	var slope float64
	for i := 0; i < b.N; i++ {
		smt, _, err := exp.Fig2(e)
		if err != nil {
			b.Fatal(err)
		}
		slope = smt.Slope
	}
	b.ReportMetric(slope, "slope")
}

func BenchmarkFig3Bottleneck(b *testing.B) {
	e := env()
	var corr float64
	for i := 0; i < b.N; i++ {
		smt, _, err := exp.Fig3(e)
		if err != nil {
			b.Fatal(err)
		}
		corr = smt.Corr
	}
	b.ReportMetric(corr, "corr")
}

func BenchmarkTable2Heterogeneity(b *testing.B) {
	e := env()
	var homoWorst float64
	for i := 0; i < b.N; i++ {
		smt, _, err := exp.Table2(e)
		if err != nil {
			b.Fatal(err)
		}
		homoWorst = smt.Rows[0].Worst
	}
	b.ReportMetric(100*homoWorst, "worstHomo%")
}

func BenchmarkFig4Queueing(b *testing.B) {
	e := env()
	var red float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig4(e)
		if err != nil {
			b.Fatal(err)
		}
		red = r.TurnaroundReduction
	}
	b.ReportMetric(100*red, "turnaroundCut%")
}

func BenchmarkFig5Schedulers(b *testing.B) {
	e := env()
	var maxtp float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig5(e)
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := r.Cell("MAXTP", 0.95); ok {
			maxtp = c.TurnaroundVsFCFS
		}
	}
	b.ReportMetric(maxtp, "maxtpTurnaround@0.95")
}

func BenchmarkFig6MaxThroughput(b *testing.B) {
	e := env()
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig6(e)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.MAXTPGapToOptimal
	}
	b.ReportMetric(100*gap, "maxtpGap%")
}

func BenchmarkN8Workloads(b *testing.B) {
	suite := program.Suite()
	cfg := exp.DefaultConfig()
	cfg.Suite = suite[:8]
	cfg.FCFSJobs = 4000
	e := exp.NewEnv(cfg)
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := exp.N8(e)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.OptGainN8
	}
	b.ReportMetric(100*gain, "optGainN8%")
}

func BenchmarkUarchStudy(b *testing.B) {
	e := env()
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Uarch(e)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.GainOverRRStaticFCFS
	}
	b.ReportMetric(100*gain, "icountDynGain%")
}

func BenchmarkFairnessCounterfactual(b *testing.B) {
	e := env()
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fairness(e)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.OptGain
	}
	b.ReportMetric(100*gain, "optGain%")
}

// ---- Building-block benchmarks. ----

func BenchmarkPerfdbBuildSMT(b *testing.B) {
	suite := program.Suite()[:6]
	model := perfdb.SMTModel{Machine: uarch.DefaultSMT()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perfdb.Build(model, suite)
	}
}

func BenchmarkLPOptimalSchedule(b *testing.B) {
	t := env().SMTTable()
	w := workload.Workload{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimal(t, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFCFSSimulation(b *testing.B) {
	t := env().SMTTable()
	w := workload.Workload{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.FCFS(t, w, core.FCFSConfig{Jobs: 5000, Seed: uint64(i) + 1})
	}
}

func BenchmarkCycleSimSMT(b *testing.B) {
	m := uarch.DefaultSMT()
	suite := program.Suite()
	jobs := []*program.Profile{&suite[5], &suite[7], &suite[6], &suite[1]}
	cfg := cyclesim.Config{SMT: &m, Instructions: 20_000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cyclesim.Run(cfg, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyExperiment(b *testing.B) {
	t := env().SMTTable()
	w := workload.Workload{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &sched.MAXIT{Rates: t}
		if _, err := eventsim.Latency(t, w, s, eventsim.LatencyConfig{
			Lambda: 1.0, Jobs: 3000, Seed: uint64(i) + 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations of DESIGN.md design choices. ----

// BenchmarkAblationCacheModel compares the occupancy fixed point against
// static equal partitioning: the metric is the cache share a streaming job
// (libquantum) takes from a cache-sensitive one (mcf) — the asymmetry the
// fixed point exists to capture.
func BenchmarkAblationCacheModel(b *testing.B) {
	suite := program.Suite()
	libq, mcf := &suite[6], &suite[7]
	demands := []cachemodel.Demand{{Profile: libq, IPC: 0.3}, {Profile: mcf, IPC: 0.2}}
	var fixedPoint, equal float64
	for i := 0; i < b.N; i++ {
		fixedPoint = cachemodel.Shares(demands, 2048)[0]
		equal = cachemodel.EqualShares(2, 2048)[0]
	}
	b.ReportMetric(fixedPoint/2048, "libqShareFP")
	b.ReportMetric(equal/2048, "libqShareEq")
}

// BenchmarkAblationMembus reports the loaded-latency penalty the M/D/1 bus
// model adds at a streaming gang's utilisation versus an unloaded bus.
func BenchmarkAblationMembus(b *testing.B) {
	bus := membus.New(uarch.DefaultBus().ServiceCycles)
	var loaded float64
	for i := 0; i < b.N; i++ {
		loaded = bus.LoadedLatency(230, 0.02) // ~4 streaming threads
	}
	b.ReportMetric(loaded-230, "queueDelayCycles")
}

// BenchmarkAblationFCFSModel compares the Markov-chain FCFS approximation
// against the discrete-event simulation, in both speed (ns/op of each
// branch alternates) and agreement (reported metric).
func BenchmarkAblationFCFSModel(b *testing.B) {
	t := env().SMTTable()
	w := workload.Workload{0, 1, 2, 3}
	var markov, sim float64
	for i := 0; i < b.N; i++ {
		m, err := core.MarkovFCFS(t, w)
		if err != nil {
			b.Fatal(err)
		}
		markov = m
		sim = core.FCFS(t, w, core.FCFSConfig{Jobs: 5000, Seed: 1}).Throughput
	}
	b.ReportMetric(100*(markov/sim-1), "markovVsSim%")
}

// BenchmarkAblationPivotRule compares Bland's rule against Dantzig pricing
// on the paper-shaped LP (35 variables, 4 constraints).
func BenchmarkAblationPivotRule(b *testing.B) {
	t := env().SMTTable()
	w := workload.Workload{0, 1, 2, 3}
	coscheds := workload.LocalCoschedules(w, t.K())
	build := func(rule lp.PivotRule) *lp.Problem {
		p := &lp.Problem{Sense: lp.Maximize, Rule: rule}
		p.C = make([]float64, len(coscheds))
		ones := make([]float64, len(coscheds))
		for j, c := range coscheds {
			p.C[j] = t.InstTP(c)
			ones[j] = 1
		}
		p.A = append(p.A, ones)
		p.B = append(p.B, 1)
		for bi := 1; bi < len(w); bi++ {
			row := make([]float64, len(coscheds))
			for j, c := range coscheds {
				row[j] = t.TypeRate(c, w[bi]) - t.TypeRate(c, w[0])
			}
			p.A = append(p.A, row)
			p.B = append(p.B, 0)
		}
		return p
	}
	var itersBland, itersDantzig int
	for i := 0; i < b.N; i++ {
		sb, err := lp.Solve(build(lp.Bland))
		if err != nil {
			b.Fatal(err)
		}
		sd, err := lp.Solve(build(lp.Dantzig))
		if err != nil {
			b.Fatal(err)
		}
		itersBland, itersDantzig = sb.Iterations, sd.Iterations
	}
	b.ReportMetric(float64(itersBland), "blandPivots")
	b.ReportMetric(float64(itersDantzig), "dantzigPivots")
}

// BenchmarkAblationMAXTPFallback measures how often MAXTP can follow the
// LP schedule versus falling back, by comparing achieved throughput with
// the pure-MAXIT scheduler on the same pooled experiment.
func BenchmarkAblationMAXTPFallback(b *testing.B) {
	t := env().SMTTable()
	w := workload.Workload{0, 1, 2, 3}
	var maxtpTP, maxitTP float64
	for i := 0; i < b.N; i++ {
		s, err := sched.NewMAXTP(t, w)
		if err != nil {
			b.Fatal(err)
		}
		cfg := eventsim.MaxThroughputConfig{Jobs: 4000, Seed: uint64(i) + 1}
		r1, err := eventsim.MaxThroughput(t, w, s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := eventsim.MaxThroughput(t, w, &sched.MAXIT{Rates: t}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		maxtpTP, maxitTP = r1.Throughput, r2.Throughput
	}
	b.ReportMetric(100*(maxtpTP/maxitTP-1), "maxtpVsMaxit%")
}

// BenchmarkAblationSMTFetchPolicy quantifies the ICOUNT-vs-RR aggregate
// throughput difference on a mixed coschedule — the Section VII contrast.
func BenchmarkAblationSMTFetchPolicy(b *testing.B) {
	suite := program.Suite()
	jobs := []*program.Profile{&suite[5], &suite[7], &suite[6], &suite[1]}
	ic := perfdb.SMTModel{Machine: uarch.DefaultSMT()}
	rrm := uarch.DefaultSMT()
	rrm.Fetch = uarch.RoundRobin
	rr := perfdb.SMTModel{Machine: rrm}
	var icTP, rrTP float64
	for i := 0; i < b.N; i++ {
		icTP, rrTP = 0, 0
		for _, x := range ic.SlotIPC(jobs) {
			icTP += x
		}
		for _, x := range rr.SlotIPC(jobs) {
			rrTP += x
		}
	}
	b.ReportMetric(100*(icTP/rrTP-1), "icountVsRR%")
}

// BenchmarkSectionVISweepParallelism measures the internal/runner payoff
// on the repo's hottest path: the Figure 5 latency sweep (workloads x
// loads x schedulers of event simulation) at Parallelism=1 versus all
// CPUs. The sub-benchmark names carry the pool size; output is asserted
// byte-identical across the two, which is the runner's determinism
// contract. Expect >= 1.5x wall-time improvement at GOMAXPROCS >= 4.
func BenchmarkSectionVISweepParallelism(b *testing.B) {
	var outputs [2]string
	for pi, p := range []int{1, runtime.GOMAXPROCS(0)} {
		pi, p := pi, p
		b.Run(fmt.Sprintf("parallel=%d", p), func(b *testing.B) {
			suite := program.Suite()
			cfg := exp.DefaultConfig()
			cfg.Suite = []program.Profile{suite[1], suite[3], suite[5], suite[6], suite[7], suite[11]}
			cfg.FCFSJobs = 5000
			cfg.SimJobs = 3000
			cfg.SampleWorkloads = 5
			cfg.Parallelism = p
			e := exp.NewEnv(cfg)
			// Pre-build the shared inputs (perfdb table, Figure 1-3 sweep)
			// so the timed region is exactly the Section VI event sweep.
			if _, err := e.SMTSweep(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := exp.Fig5(e)
				if err != nil {
					b.Fatal(err)
				}
				outputs[pi] = r.Format()
			}
		})
	}
	if outputs[0] != "" && outputs[1] != "" && outputs[0] != outputs[1] {
		b.Fatalf("Fig5 output differs across parallelism levels:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

// BenchmarkStatsRNG keeps the PRNG hot path visible in profiles.
func BenchmarkStatsRNG(b *testing.B) {
	r := stats.NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

// BenchmarkMakespanExtension regenerates the small-set makespan experiment
// (paper Section II / Xu et al. discussion): the reported metric is LJF's
// makespan advantage over the symbiosis-aware MAXIT.
func BenchmarkMakespanExtension(b *testing.B) {
	e := env()
	var ljfVsMaxit float64
	for i := 0; i < b.N; i++ {
		r, err := exp.MakespanExperiment(e, 8)
		if err != nil {
			b.Fatal(err)
		}
		ljfVsMaxit = r.MeanMakespan["LJF"] / r.MeanMakespan["MAXIT"]
	}
	b.ReportMetric(ljfVsMaxit, "ljfVsMaxitMakespan")
}
