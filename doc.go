// Package symbiosched reproduces "Revisiting Symbiotic Job Scheduling"
// (Eyerman, Michaud, Rogiest; ISPASS 2015) as a Go library and experiment
// suite.
//
// The implementation lives under internal/: the paper's contribution (the
// optimal-throughput linear program and its analyses) in internal/core,
// the machine performance models in internal/{interval,smtmodel,multicore,
// cachemodel,membus}, the cycle-level validation simulator in
// internal/{trace,cyclesim}, the Section VI schedulers and event simulator
// in internal/{sched,eventsim,queueing}, the cluster-scale multi-server
// farm simulator (pluggable dispatchers over per-server schedulers,
// cross-validated against M/M/c analytics) in internal/farm, the online
// rate-estimation subsystem that lets schedulers discover co-run rates at
// run time instead of consuming the oracle table in internal/online, the
// declarative scenario engine (axis grids, per-point CRN seed derivation,
// typed-column result tables and the registry cmd/symbiosim dispatches
// over) in internal/scenario, and one registered scenario per study in
// internal/exp — the paper's tables and figures plus the hetfarm, burst
// and slo extensions. Executables are under cmd/ (symbiosim, farmsim,
// coschedql, mmc) and runnable examples under examples/; `symbiosim list`
// enumerates every scenario and `symbiosim run <name>` executes it.
//
// All sweeps — the per-coschedule performance-database fill in
// internal/perfdb, the suite analyses in internal/core, and the Section
// VI event-simulation sweeps in internal/exp — run on internal/runner, a
// bounded worker pool with index-ordered reduction whose results are
// bit-identical at any parallelism level. The pool size is one knob
// (exp.Config.Parallelism, symbiosim's -parallel flag; default all
// CPUs), and built performance databases can be cached on disk as gob
// files (exp.Config.CacheDir, symbiosim's -cache flag) so the expensive
// database build amortises across runs.
//
// bench_test.go in this directory holds one benchmark per table and figure
// of the paper plus ablations of the design choices listed in DESIGN.md.
// See README.md for a walkthrough and EXPERIMENTS.md for paper-vs-measured
// numbers.
package symbiosched
