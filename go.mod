module symbiosched

go 1.24
